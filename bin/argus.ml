(* The argus command-line tool: check, query, render and analyse
   assurance cases written in the textual DSL; run the resolution
   engine; regenerate the paper's survey tables; run the Section VI
   experiment simulations. *)

module Dsl = Argus_dsl.Dsl
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Query = Argus_gsn.Query
module Hicase = Argus_gsn.Hicase
module Cae = Argus_cae.Cae
module Informal = Argus_fallacy.Informal
module Program = Argus_prolog.Program
module Engine = Argus_prolog.Engine
module Exec = Argus_prolog.Exec
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused
module Lterm = Argus_logic.Term
module Diagnostic = Argus_core.Diagnostic
module Json = Argus_core.Json
module Obs = Argus_obs.Obs
module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault
module Retry = Argus_rt.Retry
module Protocol = Argus_svc.Protocol
module Server = Argus_svc.Server
module Handlers = Argus_svc.Handlers
module Endpoint = Argus_svc.Endpoint
module Client = Argus_svc.Client
module Loadgen = Argus_svc.Loadgen
module Store = Argus_store.Store
module Durable = Argus_store.Durable
module Wal = Argus_store.Wal
open Cmdliner

(* Flag validation: resource knobs must be positive — a zero or
   negative value is a user error the CLI reports, never a crash (or a
   silently ignored limit) deep in the pool or the budget. *)
let positive_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "%s must be a positive integer" what))
  in
  Arg.conv (parse, Format.pp_print_int)

let nonneg_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | _ ->
        Error (`Msg (Printf.sprintf "%s must be a non-negative integer" what))
  in
  Arg.conv (parse, Format.pp_print_int)

let positive_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0. -> Ok f
    | _ -> Error (`Msg (Printf.sprintf "%s must be positive" what))
  in
  Arg.conv (parse, Format.pp_print_float)

(* --- observability plumbing ---

   Every subcommand accepts [--trace] (span tree + counters on stderr)
   and [--trace-json FILE] (JSONL events); [ARGUS_TRACE] /
   [ARGUS_TRACE_JSON] do the same from the environment.  The [query]
   subcommand predates this and already uses [--trace] for its
   traceability view, so it only takes [--trace-json].  Each command
   runs under a root span [argus.<cmd>] and the report is emitted once,
   after command evaluation, in [main]. *)

let obs_setup trace trace_json =
  Obs.configure_from_env ();
  if trace then Obs.configure ~trace:true ();
  match trace_json with
  | Some path -> Obs.configure ~trace_json:path ()
  | None -> ()

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL trace (spans, counters, histograms) to $(docv). \
           Also enabled by ARGUS_TRACE_JSON.")

let obs_t =
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Print a span tree and engine counters to stderr. Also enabled \
             by ARGUS_TRACE=1.")
  in
  Term.(const obs_setup $ trace $ trace_json_arg)

(* For [query], whose [--trace] means the traceability view. *)
let obs_json_only_t = Term.(const (obs_setup false) $ trace_json_arg)

let spanned name f = Argus_obs.Span.with_ ~name f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_case path =
  match Dsl.parse ~filename:path (read_file path) with
  | Ok case -> Ok case
  | Error ds ->
      Format.eprintf "%a" Diagnostic.pp_report ds;
      Error ()

let exit_of_diags ds = if Diagnostic.has_errors ds then 1 else 0

(* --- resource budgets ---

   Subcommands that run engines accept [--deadline MS] and [--fuel N]
   (env: ARGUS_DEADLINE_MS / ARGUS_FUEL; flags win).  Each unit of work
   gets a fresh budget built from the spec; exhaustion surfaces as an
   [rt/budget-exhausted] warning on that unit's report, never as a hang
   or a crash.  Exit codes follow the taxonomy: 0 clean, 1 findings
   (including budget truncations), 2 internal error (see DESIGN.md
   §10). *)

let budget_spec_t =
  let deadline =
    Arg.(
      value
      & opt (some (positive_float_conv "--deadline")) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Soft wall-clock limit per checked unit, in milliseconds. On \
             expiry the engines stop and report a partial result with an \
             rt/budget-exhausted warning. Also set by ARGUS_DEADLINE_MS.")
  in
  let fuel =
    Arg.(
      value
      & opt (some (positive_int_conv "--fuel")) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Engine step limit per checked unit. Also set by ARGUS_FUEL.")
  in
  let combine deadline_ms fuel =
    let env = Budget.spec_of_env () in
    {
      Budget.deadline_ms =
        (match deadline_ms with Some _ -> deadline_ms | None -> env.Budget.deadline_ms);
      fuel = (match fuel with Some _ -> fuel | None -> env.Budget.fuel);
      max_depth = None;
      max_solutions = None;
    }
  in
  Term.(const combine $ deadline $ fuel)

(* [Some budget] when the spec actually limits something, [None]
   otherwise — engines that keep an internal default cap (the informal
   lints) must see [None], not an unlimited budget that would disable
   it. *)
let budget_of_spec spec =
  if Budget.spec_is_unlimited spec then None else Some (Budget.of_spec spec)

let budget_diags = function
  | None -> []
  | Some b -> Budget.diagnostics b

(* --- check --- *)

let ruleset_conv =
  Arg.enum
    [ ("standard", Wellformed.Standard); ("denney-pai", Wellformed.Denney_pai_2013) ]

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Case file.")

let check_cmd =
  let run () ruleset with_lints format jobs spec paths =
    spanned "argus.check" @@ fun () ->
    let render_report ds =
      match format with
      | `Text -> Format.asprintf "%a" Diagnostic.pp_report ds
      | `Json ->
          Json.to_string ~indent:true (Diagnostic.report_to_json ds) ^ "\n"
    in
    (* One file's whole check, fully buffered as (stdout, stderr, exit
       code) so batch mode can run files on worker domains and still
       print byte-identical output in input order.  Each file gets a
       fresh budget from the spec, and the ["check.file"] fault probe
       (keyed by basename) fires before any work so tests can kill one
       file of a batch deterministically. *)
    let check_file ?pool path =
      Fault.point ~key:(Filename.basename path) "check.file";
      let budget = budget_of_spec spec in
      let report ds =
        let ds = ds @ budget_diags budget in
        (render_report ds, "", exit_of_diags ds)
      in
      let report_err ds =
        match format with
        | `Text -> ("", Format.asprintf "%a" Diagnostic.pp_report ds, 1)
        | `Json -> (render_report ds, "", 1)
      in
      let lint structure =
        if with_lints then Fused.lint ?budget (Caseir.intern structure)
        else []
      in
      match Dsl.parse_collection ~filename:path (read_file path) with
      | Error ds -> report_err ds
      | Ok [ case ] when case.Dsl.module_name = None ->
          (* The single-case fast path: intern once, run well-formedness
             and the lints as one fused pass over the IR. *)
          let fused =
            Fused.check ~ruleset ?budget ~lints:with_lints
              (Caseir.intern case.Dsl.structure)
          in
          let ds =
            fused.Fused.wf @ Dsl.validate_metadata case @ fused.Fused.informal
          in
          report ds
      | Ok cases -> (
          match Dsl.to_modular cases with
          | Error ds -> report_err ds
          | Ok collection ->
              let ds =
                Argus_gsn.Modular.check ?pool collection
                @ List.concat_map Dsl.validate_metadata cases
                @ List.concat_map (fun c -> lint c.Dsl.structure) cases
              in
              report ds)
    in
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Argus_par.Pool.default_jobs ()
    in
    (* Fault isolation: one file crashing (a bug, or an injected fault)
       becomes that file's own internal-error report with exit code 2;
       every other file in the batch is still checked and printed, in
       input order. *)
    let capture f =
      try Ok (f ())
      with e ->
        let backtrace = Printexc.get_raw_backtrace () in
        Error { Argus_par.Pool.exn = e; backtrace }
    in
    let results =
      if jobs <= 1 then
        List.map (fun p -> capture (fun () -> check_file p)) paths
      else
        Argus_par.Pool.with_pool ~jobs (fun pool ->
            match paths with
            | [ p ] ->
                (* A single file still uses the pool inside the
                   modular-collection check. *)
                [ capture (fun () -> check_file ~pool p) ]
            | _ -> Argus_par.Pool.map_list_result ~pool check_file paths)
    in
    let internal_error path (f : Argus_par.Pool.failure) =
      let d =
        Diagnostic.errorf ~code:"rt/internal-error"
          "internal error checking %s: %s" path (Printexc.to_string f.exn)
      in
      match format with
      | `Text -> ("", Format.asprintf "%a" Diagnostic.pp_report [ d ], 2)
      | `Json -> (render_report [ d ], "", 2)
    in
    List.fold_left2
      (fun code path result ->
        let out, err, c =
          match result with Ok r -> r | Error f -> internal_error path f
        in
        if out <> "" then begin
          print_string out;
          flush stdout
        end;
        if err <> "" then begin
          prerr_string err;
          flush stderr
        end;
        max code c)
      0 paths results
  in
  let ruleset =
    Arg.(value & opt ruleset_conv Wellformed.Standard
         & info [ "ruleset" ] ~doc:"Rule set: $(b,standard) or $(b,denney-pai).")
  in
  let lints =
    Arg.(value & flag & info [ "lints" ] ~doc:"Also run informal-fallacy lints.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ]
          ~doc:"Output format: $(b,text) or $(b,json) (machine-readable).")
  in
  let jobs =
    Arg.(
      value
      & opt (some (positive_int_conv "--jobs")) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Check files across $(docv) worker domains (default: \
             ARGUS_JOBS, else the machine's recommended domain count). \
             Diagnostics are printed in input order whatever $(docv) is.")
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Case file(s).")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check one or more cases for well-formedness")
    Term.(
      const run $ obs_t $ ruleset $ lints $ format $ jobs $ budget_spec_t
      $ files_arg)

(* --- render --- *)

let render_cmd =
  let run () dot depth path =
    spanned "argus.render" @@ fun () ->
    match load_case path with
    | Error () -> 1
    | Ok case ->
        let structure =
          match depth with
          | None -> case.Dsl.structure
          | Some d ->
              Hicase.visible
                (Hicase.collapse_to_depth d
                   (Hicase.of_structure case.Dsl.structure))
        in
        if dot then print_string (Structure.to_dot structure)
        else Format.printf "%a" Structure.pp_outline structure;
        0
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.") in
  let depth =
    Arg.(value & opt (some int) None
         & info [ "depth" ] ~docv:"N" ~doc:"Hicase view collapsed at depth $(docv).")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render a case as an outline or Graphviz")
    Term.(const run $ obs_t $ dot $ depth $ file_arg)

(* --- query --- *)

let query_cmd =
  let run () trace path query_text =
    spanned "argus.query" @@ fun () ->
    match load_case path with
    | Error () -> 1
    | Ok case -> (
        match Query.of_string query_text with
        | Error e ->
            Format.eprintf "query error: %s@." e;
            1
        | Ok q ->
            if trace then
              Format.printf "%a" Structure.pp_outline
                (Query.trace_view q case.Dsl.structure)
            else
              List.iter
                (fun n -> Format.printf "%a@." Argus_gsn.Node.pp n)
                (Query.select q case.Dsl.structure);
            0)
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"Print the traceability view instead of matches.")
  in
  let query_text =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query an annotated case (Denney-Naylor-Pai style)")
    Term.(const run $ obs_json_only_t $ trace $ file_arg $ query_text)

(* --- fallacies --- *)

let fallacies_cmd =
  let run () spec path =
    spanned "argus.fallacies" @@ fun () ->
    match load_case path with
    | Error () -> 1
    | Ok case ->
        let budget = budget_of_spec spec in
        let ds =
          Fused.lint ?budget (Caseir.intern case.Dsl.structure)
          @ budget_diags budget
        in
        Format.printf "%a" Diagnostic.pp_report ds;
        0
  in
  Cmd.v
    (Cmd.info "fallacies" ~doc:"Run the informal-fallacy lints over a case")
    Term.(const run $ obs_t $ budget_spec_t $ file_arg)

(* --- prove --- *)

let prove_cmd =
  let run () max_depth spec path goal_text =
    spanned "argus.prove" @@ fun () ->
    match Program.of_string (read_file path) with
    | Error e ->
        Format.eprintf "program error: %s@." e;
        1
    | Ok program -> (
        match Lterm.of_string goal_text with
        | Error e ->
            Format.eprintf "goal error: %s@." e;
            1
        | Ok goal ->
            let budget = budget_of_spec spec in
            let result =
              match budget with
              | None -> Exec.prove_term ~max_depth program goal
              | Some b -> Exec.prove_term ~max_depth ~budget:b program goal
            in
            let warn () =
              match budget_diags budget with
              | [] -> ()
              | ds -> Format.eprintf "%a" Diagnostic.pp_report ds
            in
            (match result with
            | Some derivation ->
                Format.printf "%a" Engine.pp_derivation derivation;
                warn ();
                0
            | None ->
                Format.printf "not derivable@.";
                warn ();
                1))
  in
  let max_depth =
    Arg.(value & opt int 64 & info [ "max-depth" ] ~docv:"N" ~doc:"Depth bound.")
  in
  let goal =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GOAL")
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Run SLD resolution over a Horn-clause program")
    Term.(const run $ obs_t $ max_depth $ budget_spec_t $ file_arg $ goal)

(* --- cae --- *)

let cae_cmd =
  let run () path =
    spanned "argus.cae" @@ fun () ->
    match load_case path with
    | Error () -> 1
    | Ok case ->
        let cae = Cae.of_gsn case.Dsl.structure in
        Format.printf "%a" Cae.pp_outline cae;
        exit_of_diags (Fused.check_cae (Fused.intern_cae cae))
  in
  Cmd.v
    (Cmd.info "cae" ~doc:"Translate a GSN case to Claims-Argument-Evidence")
    Term.(const run $ obs_t $ file_arg)

(* --- export / stats --- *)

let export_cmd =
  let run () path =
    spanned "argus.export" @@ fun () ->
    match load_case path with
    | Error () -> 1
    | Ok case ->
        print_string (Argus_gsn.Interchange.export case.Dsl.structure);
        print_newline ();
        0
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a case's structure as JSON")
    Term.(const run $ obs_t $ file_arg)

let import_cmd =
  let run () path =
    spanned "argus.import" @@ fun () ->
    match Argus_gsn.Interchange.import (read_file path) with
    | Error ds ->
        Format.eprintf "%a" Diagnostic.pp_report ds;
        1
    | Ok structure ->
        Format.printf "%a" Structure.pp_outline structure;
        exit_of_diags
          (Fused.check ~lints:false (Caseir.intern structure)).Fused.wf
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Import a JSON structure, render it and check well-formedness")
    Term.(const run $ obs_t $ file_arg)

let stats_cmd =
  let run () path =
    spanned "argus.stats" @@ fun () ->
    match load_case path with
    | Error () -> 1
    | Ok case ->
        Format.printf "%a" Argus_gsn.Metrics.pp
          (Argus_gsn.Metrics.measure case.Dsl.structure);
        0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print descriptive metrics of a case")
    Term.(const run $ obs_t $ file_arg)

(* --- probe --- *)

let probe_cmd =
  let run () spec path =
    spanned "argus.probe" @@ fun () ->
    let module Proof_text = Argus_logic.Proof_text in
    let module Natded = Argus_logic.Natded in
    let module Prop = Argus_logic.Prop in
    let module Confidence = Argus_confidence.Confidence in
    match Proof_text.parse (read_file path) with
    | Error e ->
        Format.eprintf "proof error: %s@." e;
        1
    | Ok proof -> (
        match Natded.check proof with
        | Error ds ->
            Format.eprintf "%a" Diagnostic.pp_report ds;
            1
        | Ok checked ->
            let budget = budget_of_spec spec in
            Format.printf "proof checks; it proves %s@.@."
              (Prop.to_string (Natded.theorem checked));
            Format.printf "what-if exploration (retract each premise):@.";
            List.iter
              (fun premise ->
                match
                  Confidence.probe_counterexample ?budget checked premise
                with
                | None ->
                    Format.printf "  %-30s conclusion survives@."
                      (Prop.to_string premise)
                | Some model ->
                    Format.printf "  %-30s LOAD-BEARING; countermodel: %s@."
                      (Prop.to_string premise)
                      (String.concat ", "
                         (List.map
                            (fun (v, b) ->
                              Printf.sprintf "%s=%b" v b)
                            model)))
              checked.Natded.premises;
            (match budget_diags budget with
            | [] -> 0
            | ds ->
                Format.eprintf "%a" Diagnostic.pp_report ds;
                1))
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:
         "Check a natural-deduction proof and run Rushby-style what-if \
          probing of its premises")
    Term.(const run $ obs_t $ budget_spec_t $ file_arg)

(* --- format --- *)

let format_cmd =
  let run () path =
    spanned "argus.format" @@ fun () ->
    match Dsl.parse_collection ~filename:path (read_file path) with
    | Error ds ->
        Format.eprintf "%a" Diagnostic.pp_report ds;
        1
    | Ok cases ->
        List.iteri
          (fun i case ->
            if i > 0 then print_newline ();
            print_string (Dsl.print case))
          cases;
        0
  in
  Cmd.v
    (Cmd.info "format" ~doc:"Reprint a case file in canonical form")
    Term.(const run $ obs_t $ file_arg)

(* --- equivocation --- *)

let equivocation_cmd =
  let run () path =
    spanned "argus.equivocation" @@ fun () ->
    match Program.of_string (read_file path) with
    | Error e ->
        Format.eprintf "program error: %s@." e;
        1
    | Ok program -> (
        match Informal.equivocation_candidates program with
        | [] ->
            Format.printf "no equivocation candidates@.";
            0
        | candidates ->
            List.iter
              (fun c ->
                Format.printf
                  "%s occupies multiple predicate roles; check it means one \
                   thing@."
                  c)
              candidates;
            0)
  in
  Cmd.v
    (Cmd.info "equivocation"
       ~doc:"Flag equivocation candidates in a Horn-clause program")
    Term.(const run $ obs_t $ file_arg)

(* --- survey --- *)

let survey_cmd =
  let run () papers =
    spanned "argus.survey" @@ fun () ->
    if papers then begin
      Format.printf "%a" Argus_survey.Report.pp_all ();
      0
    end
    else begin
    let table = Argus_survey.Selection.table1 Argus_survey.Selection.corpus in
    Format.printf "Table I (regenerated by the selection pipeline):@.%a@."
      Argus_survey.Selection.pp_table1 table;
    Format.printf "Papers surviving phase two: %d@.@."
      (Argus_survey.Selection.selected_after_phase2
         Argus_survey.Selection.corpus);
    Format.printf "Derived survey counts (computed vs reported):@.";
    List.iter
      (fun (what, computed, reported) ->
        Format.printf "  %-58s %3d  (paper: %d)%s@." what computed reported
          (if computed = reported then "" else "  MISMATCH"))
      (Argus_survey.Queries.report ());
    0
    end
  in
  let papers =
    Arg.(value & flag
         & info [ "papers" ]
             ~doc:"Print the per-paper characterisations instead of counts.")
  in
  Cmd.v
    (Cmd.info "survey" ~doc:"Regenerate Table I and the survey counts")
    Term.(const run $ obs_t $ papers)

(* --- experiments --- *)

let experiments_cmd =
  let open Argus_experiments in
  let run () which seed jobs =
    spanned "argus.experiments" @@ fun () ->
    let jobs =
      match jobs with
      | Some n -> max 1 n
      | None -> Argus_par.Pool.default_jobs ()
    in
    let with_pool f =
      (* Results are pool-independent by construction (per-trial PRNG
         streams); the pool only changes who runs the trials. *)
      if jobs <= 1 then f None
      else Argus_par.Pool.with_pool ~jobs (fun pool -> f (Some pool))
    in
    with_pool @@ fun pool ->
    let run_a () =
      Format.printf "%a@." Exp_a.pp
        (Exp_a.run ?pool { Exp_a.default_config with seed })
    and run_b () =
      Format.printf "%a@." Exp_b.pp
        (Exp_b.run ?pool { Exp_b.default_config with seed })
    and run_c () =
      Format.printf "%a@." Exp_c.pp
        (Exp_c.run ?pool { Exp_c.default_config with seed })
    and run_d () =
      Format.printf "%a@." Exp_d.pp
        (Exp_d.run ?pool { Exp_d.default_config with seed })
    and run_e () =
      Format.printf "%a@." Exp_e.pp
        (Exp_e.run ?pool { Exp_e.default_config with seed })
    in
    (match which with
    | "a" -> run_a ()
    | "b" -> run_b ()
    | "c" -> run_c ()
    | "d" -> run_d ()
    | "e" -> run_e ()
    | _ ->
        run_a ();
        run_b ();
        run_c ();
        run_d ();
        run_e ());
    0
  in
  let which =
    Arg.(value & pos 0 string "all" & info [] ~docv:"WHICH"
         ~doc:"Which experiment: a, b, c, d, e or all.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let jobs =
    Arg.(
      value
      & opt (some (positive_int_conv "--jobs")) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Split simulation trials across $(docv) worker domains \
             (default: ARGUS_JOBS, else the machine's recommended domain \
             count).  Results are bit-identical for any $(docv).")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the Section VI experiment simulations")
    Term.(const run $ obs_t $ which $ seed $ jobs)

(* --- serve / call ---

   [argus serve] runs the supervised always-on service (DESIGN.md §11);
   [argus call] is its line-protocol client — it retries the connect
   with deterministic backoff so scripts can start the daemon and call
   it immediately. *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix domain socket path the server listens on.")

let connect_arg =
  Arg.(
    value & opt_all string []
    & info [ "connect" ] ~docv:"ENDPOINT"
        ~doc:
          "Server endpoint: $(b,HOST:PORT) for TCP or a socket path.  \
           Repeatable — the client tries endpoints in order and fails \
           over to the next when one stops answering.")

(* Resolve --socket/--connect into the client's endpoint list: the
   Unix socket (when given) leads, --connect endpoints follow in
   order.  At least one is required. *)
let endpoints_of socket connects =
  let parsed =
    List.map
      (fun s ->
        match Endpoint.of_string s with
        | Ok e -> Ok e
        | Error e -> Error e)
      connects
  in
  match List.find_opt Result.is_error parsed with
  | Some (Error e) -> Error e
  | _ ->
      let eps = List.filter_map Result.to_option parsed in
      let eps =
        match socket with
        | Some p -> Endpoint.Unix_path p :: eps
        | None -> eps
      in
      if eps = [] then Error "no endpoint: give --socket or --connect"
      else Ok eps

let serve_cmd =
  let run () socket listen port_file max_conns idle_timeout read_deadline
      store data_dir sync sync_interval snapshot_every jobs queue_cap
      deadline max_deadline max_fuel drain_ms breaker_failures
      breaker_cooldown slow_ms =
    spanned "argus.serve" @@ fun () ->
    let jobs =
      match jobs with Some n -> n | None -> Argus_par.Pool.default_jobs ()
    in
    let env_spec = Budget.spec_of_env () in
    let cfg =
      {
        (Server.default_config
           ~socket_path:(Option.value ~default:"" socket))
        with
        Server.listen;
        port_file;
        max_conns;
        idle_timeout_ms = idle_timeout;
        read_deadline_ms = read_deadline;
        jobs;
        queue_capacity = queue_cap;
        default_deadline_ms =
          (match deadline with
          | Some _ -> deadline
          | None -> env_spec.Budget.deadline_ms);
        max_deadline_ms = max_deadline;
        max_fuel;
        drain_ms;
        breaker_failures;
        breaker_cooldown_ms = breaker_cooldown;
        slow_ms;
      }
    in
    if socket = None && listen = None then begin
      Printf.eprintf "argus serve: no listener (give --socket or --listen)\n%!";
      2
    end
    else if (not store) && data_dir <> None then begin
      Printf.eprintf "argus serve: --data-dir needs --store\n%!";
      2
    end
    else if store then begin
      let sync =
        match sync with
        | `Always -> Wal.Always
        | `Never -> Wal.Never
        | `Interval -> Wal.Interval sync_interval
      in
      match Durable.create ?dir:data_dir ~sync ~snapshot_every () with
      | Error diagnostic ->
          (* A refused recovery (mid-stream corruption, digest
             mismatch) must not be papered over by starting empty:
             surface it and let the operator decide. *)
          Printf.eprintf "argus serve: %s\n%!" diagnostic;
          2
      | Ok (durable, summary) ->
          Printf.eprintf "argus serve: %s\n%!" summary;
          Server.run
            ~handler:(Handlers.with_store durable)
            ~extra_stats:(fun () ->
              [ ("store", Durable.stats_json durable) ])
            ~on_drain:(fun () ->
              Durable.flush durable;
              Durable.close durable)
            cfg
    end
    else Server.run cfg
  in
  let store =
    Arg.(
      value & flag
      & info [ "store" ]
          ~doc:
            "Serve the stateful store ops (put, patch, verdict) from an \
             incremental case store shared by all workers.  Without this \
             flag those ops answer svc/bad-request.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Make the store durable: append every put/patch to a \
             checksummed write-ahead log under $(docv), compact with \
             periodic snapshots, and on startup recover the prior state \
             (replaying the WAL tail with digest verification).  A \
             corrupted log is refused with a diagnostic; a disk error at \
             runtime degrades the store to read-only instead of crashing.  \
             Requires --store.")
  in
  let sync =
    Arg.(
      value
      & opt
          (enum
             [ ("always", `Always); ("interval", `Interval); ("never", `Never) ])
          `Always
      & info [ "sync" ] ~docv:"POLICY"
          ~doc:
            "WAL fsync policy: $(b,always) fsyncs every append (an \
             acknowledged write is durable), $(b,interval) fsyncs at most \
             once per --sync-interval window, $(b,never) leaves flushing \
             to the kernel.")
  in
  let sync_interval =
    Arg.(
      value
      & opt (positive_float_conv "--sync-interval") 100.
      & info [ "sync-interval" ] ~docv:"MS"
          ~doc:"Fsync window for --sync interval, in milliseconds.")
  in
  let snapshot_every =
    Arg.(
      value
      & opt (nonneg_int_conv "--snapshot-every") 1024
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Write a compacting snapshot and reset the WAL every $(docv) \
             logged operations (0 disables snapshots).")
  in
  let jobs =
    Arg.(
      value
      & opt (some (positive_int_conv "--jobs")) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains serving requests (default: ARGUS_JOBS, else \
             the machine's recommended domain count).")
  in
  let queue_cap =
    Arg.(
      value
      & opt (nonneg_int_conv "--queue-cap") 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission queue high-water mark: past $(docv) queued \
             requests, new ones are shed with an immediate \
             svc/overloaded response.  0 sheds everything.")
  in
  let deadline =
    Arg.(
      value
      & opt (some (positive_float_conv "--deadline")) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline in milliseconds, applied when \
             the client sends none (clock starts at admission). Also set \
             by ARGUS_DEADLINE_MS.")
  in
  let max_deadline =
    Arg.(
      value
      & opt (some (positive_float_conv "--max-deadline")) None
      & info [ "max-deadline" ] ~docv:"MS"
          ~doc:"Upper clamp on client-requested deadlines.")
  in
  let max_fuel =
    Arg.(
      value
      & opt (some (positive_int_conv "--max-fuel")) None
      & info [ "max-fuel" ] ~docv:"N"
          ~doc:"Upper clamp on client-requested fuel.")
  in
  let drain_ms =
    Arg.(
      value
      & opt (positive_float_conv "--drain-ms") 5000.
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT, stop accepting and let in-flight work \
             finish for up to $(docv) milliseconds; exit 0 on a clean \
             drain, 1 if work had to be abandoned.")
  in
  let breaker_failures =
    Arg.(
      value
      & opt (nonneg_int_conv "--breaker-failures") 5
      & info [ "breaker-failures" ] ~docv:"N"
          ~doc:
            "Consecutive crashes of one request kind that open its \
             circuit breaker (0 disables the breakers).")
  in
  let breaker_cooldown =
    Arg.(
      value
      & opt (positive_float_conv "--breaker-cooldown") 1000.
      & info [ "breaker-cooldown" ] ~docv:"MS"
          ~doc:
            "Milliseconds an open breaker waits before letting a \
             half-open trial request through.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some (positive_float_conv "--slow-ms")) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Record requests slower than $(docv) milliseconds (admission \
             to reply) in the flight recorder.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Also (or instead) listen on TCP at $(docv); port 0 asks the \
             kernel for an ephemeral port (see --port-file).  Accepted \
             sockets get TCP_NODELAY; slow-loris and half-open clients \
             are bounded by --read-deadline and --idle-timeout.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound TCP port to $(docv) before serving — how \
             scripts find a --listen host:0 server.")
  in
  let max_conns =
    Arg.(
      value
      & opt (positive_int_conv "--max-conns") 4096
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Simultaneous-connection cap; at the cap new clients wait in \
             the listen backlog.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt (positive_float_conv "--idle-timeout") 60000.
      & info [ "idle-timeout" ] ~docv:"MS"
          ~doc:
            "Reap connections with no read activity, nothing buffered \
             and nothing in flight after $(docv) milliseconds.")
  in
  let read_deadline =
    Arg.(
      value
      & opt (positive_float_conv "--read-deadline") 10000.
      & info [ "read-deadline" ] ~docv:"MS"
          ~doc:
            "A partial request frame must complete within $(docv) \
             milliseconds of its first byte; the offender is answered \
             svc/bad-request and closed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the supervised always-on checking service on a Unix socket \
          and/or TCP")
    Term.(
      const run $ obs_t $ socket_arg $ listen $ port_file $ max_conns
      $ idle_timeout $ read_deadline $ store $ data_dir $ sync
      $ sync_interval $ snapshot_every $ jobs $ queue_cap $ deadline
      $ max_deadline $ max_fuel $ drain_ms $ breaker_failures
      $ breaker_cooldown $ slow_ms)

(* One request line, one response, through the resilient client: the
   server may still be binding (scripts start it in the background and
   call straight away — the seeded backoff covers that), may be killed
   mid-request (the retry fails over along the --connect list), or may
   dribble (per-attempt deadlines carved from the overall budget bound
   every read).  Shared by [call] and [top]. *)
let roundtrip ?op eps line =
  let client = Client.create eps in
  let result = Client.call ?op client line in
  Client.close client;
  match result with
  | Ok resp -> Ok resp
  | Error e -> Error (Client.error_message e)

(* The --edit mini-grammar, one edit per occurrence:
   set-text:ID=TEXT | add-node:TYPE:ID=TEXT | remove-node:ID |
   link:KIND:SRC:DST | unlink:KIND:SRC:DST with KIND one of
   supported-by, in-context-of. *)
let edit_conv =
  let split_eq s =
    match String.index_opt s '=' with
    | None -> None
    | Some i ->
        Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let id_of s what =
    match Argus_core.Id.of_string_opt s with
    | Some id -> Ok id
    | None -> Error (`Msg (Printf.sprintf "--edit: bad %s id %S" what s))
  in
  let link_of ctor rest =
    match String.split_on_char ':' rest with
    | [ kind; src; dst ] -> (
        let kind =
          match kind with
          | "supported-by" -> Some Structure.Supported_by
          | "in-context-of" -> Some Structure.In_context_of
          | _ -> None
        in
        match kind with
        | None ->
            Error
              (`Msg
                 (Printf.sprintf
                    "--edit: link kind must be supported-by or \
                     in-context-of, not %S"
                    rest))
        | Some kind -> (
            match (id_of src "source", id_of dst "destination") with
            | Ok src, Ok dst -> Ok (ctor kind src dst)
            | (Error _ as e), _ | _, (Error _ as e) -> e))
    | _ -> Error (`Msg "--edit: expected link:KIND:SRC:DST")
  in
  let parse s =
    match String.index_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "--edit: no operation in %S" s))
    | Some i -> (
        let op = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match op with
        | "set-text" -> (
            match split_eq rest with
            | None -> Error (`Msg "--edit: expected set-text:ID=TEXT")
            | Some (id, text) ->
                Result.map (fun id -> Store.Set_text (id, text))
                  (id_of id "node"))
        | "add-node" -> (
            match split_eq rest with
            | None -> Error (`Msg "--edit: expected add-node:TYPE:ID=TEXT")
            | Some (head, text) -> (
                match String.index_opt head ':' with
                | None -> Error (`Msg "--edit: expected add-node:TYPE:ID=TEXT")
                | Some j -> (
                    let ty = String.sub head 0 j in
                    let id =
                      String.sub head (j + 1) (String.length head - j - 1)
                    in
                    match Argus_gsn.Node.type_of_string ty with
                    | None ->
                        Error
                          (`Msg
                             (Printf.sprintf "--edit: unknown node type %S" ty))
                    | Some node_type ->
                        Result.map
                          (fun id ->
                            Store.Add_node
                              (Argus_gsn.Node.make ~id ~node_type text))
                          (id_of id "node"))))
        | "remove-node" ->
            Result.map (fun id -> Store.Remove_node id) (id_of rest "node")
        | "link" -> link_of (fun k s d -> Store.Link (k, s, d)) rest
        | "unlink" -> link_of (fun k s d -> Store.Unlink (k, s, d)) rest
        | _ -> Error (`Msg (Printf.sprintf "--edit: unknown operation %S" op)))
  in
  let pp ppf e =
    Format.pp_print_string ppf (Json.to_string (Protocol.edit_to_json e))
  in
  Arg.conv (parse, pp)

let call_cmd =
  let run () socket connects id op file goal ruleset lints spec raw
      trace wire_format digest edits =
    spanned "argus.call" @@ fun () ->
    let line =
      match raw with
      | Some json -> json
      | None ->
          let source, filename =
            match file with
            | Some path -> (read_file path, Filename.basename path)
            | None -> ("", "<request>")
          in
          let req =
            Protocol.request ?id ~source ~filename ?goal
              ~ruleset:
                (match ruleset with
                | Wellformed.Denney_pai_2013 -> "denney-pai"
                | Wellformed.Standard -> "standard")
              ~lints
              ?deadline_ms:spec.Budget.deadline_ms ?fuel:spec.Budget.fuel
              ~trace ?format:wire_format ?digest ~edits op
          in
          Json.to_string (Protocol.request_to_json req)
    in
    match
      match endpoints_of socket connects with
      | Error e -> Error e
      | Ok eps -> roundtrip ~op eps line
    with
    | Error msg ->
        Format.eprintf "argus call: %s@." msg;
        2
    | Ok resp -> (
        match resp.Protocol.outcome with
        | Ok (_, payload)
          when wire_format = Some "prometheus"
               && List.mem_assoc "body" payload -> (
            (* Prometheus exposition: print the text page raw, not
               wrapped in JSON. *)
            match List.assoc "body" payload with
            | Json.Str body ->
                print_string body;
                Protocol.exit_code_of_response resp
            | _ ->
                Format.eprintf "argus call: malformed stats body@.";
                2)
        | _ ->
            (* A returned span tree renders as an indented table on
               stderr; the machine-readable response stays on stdout
               without it (use --raw to see the wire form). *)
            let resp =
              match resp.Protocol.outcome with
              | Ok (code, payload) when List.mem_assoc "trace" payload ->
                  (match
                     Argus_obs.Trace.span_of_json (List.assoc "trace" payload)
                   with
                  | Some tree ->
                      Format.eprintf "== server trace (%s) ==@.%a"
                        (Option.value resp.Protocol.rtrace_id ~default:"?")
                        Argus_obs.Trace.pp_span_tree [ tree ]
                  | None -> ());
                  {
                    resp with
                    Protocol.outcome =
                      Ok (code, List.remove_assoc "trace" payload);
                  }
              | _ -> resp
            in
            print_string
              (Json.to_string ~indent:true (Protocol.response_to_json resp));
            print_newline ();
            Protocol.exit_code_of_response resp)
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Request id (correlates the response; the server assigns one \
             when absent).")
  in
  let op =
    let ops =
      [
        ("check", Protocol.Check);
        ("prove", Protocol.Prove);
        ("fallacies", Protocol.Fallacies);
        ("probe", Protocol.Probe);
        ("health", Protocol.Health);
        ("stats", Protocol.Stats);
        ("put", Protocol.Put);
        ("patch", Protocol.Patch);
        ("verdict", Protocol.Verdict);
      ]
    in
    Arg.(
      required
      & pos 0 (some (enum ops)) None
      & info [] ~docv:"OP"
          ~doc:
            "check, prove, fallacies, probe, health, stats, put, patch or \
             verdict (the last three need $(b,argus serve --store)).")
  in
  let file =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"FILE" ~doc:"Document to send as the request source.")
  in
  let goal =
    Arg.(
      value
      & opt (some string) None
      & info [ "goal" ] ~docv:"GOAL" ~doc:"Goal term (prove requests).")
  in
  let ruleset =
    Arg.(
      value & opt ruleset_conv Wellformed.Standard
      & info [ "ruleset" ] ~doc:"Rule set: $(b,standard) or $(b,denney-pai).")
  in
  let lints =
    Arg.(
      value & flag
      & info [ "lints" ] ~doc:"Also run informal-fallacy lints (check).")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"JSON"
          ~doc:"Send $(docv) verbatim as the request line instead.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Ask the server to capture this request's span tree and \
             render it on stderr (the tree is recorded on the worker \
             that ran the request).")
  in
  let wire_format =
    Arg.(
      value
      & opt (some string) None
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "stats only: $(b,json) (default) or $(b,prometheus) (text \
             exposition, printed raw).")
  in
  let digest =
    Arg.(
      value
      & opt (some string) None
      & info [ "digest" ] ~docv:"DIGEST"
          ~doc:"Case address for patch and verdict requests.")
  in
  let edits =
    Arg.(
      value
      & opt_all edit_conv []
      & info [ "edit" ] ~docv:"EDIT"
          ~doc:
            "Repeatable patch edit: $(b,set-text:ID=TEXT), \
             $(b,add-node:TYPE:ID=TEXT), $(b,remove-node:ID), \
             $(b,link:KIND:SRC:DST) or $(b,unlink:KIND:SRC:DST) with KIND \
             $(b,supported-by) or $(b,in-context-of).")
  in
  Cmd.v
    (Cmd.info "call" ~doc:"Send one request to a running argus serve")
    Term.(
      const run $ obs_json_only_t $ socket_arg $ connect_arg $ id $ op
      $ file $ goal $ ruleset $ lints $ budget_spec_t $ raw $ trace
      $ wire_format $ digest $ edits)

(* --- top ---

   A polling one-screen view over the daemon's queue-bypassing [stats]
   op: request rate (from the server's own counter deltas and clock, so
   client skew cannot distort it), queue depth, restarts, per-kind
   latency quantiles, breaker and worker states. *)

let top_cmd =
  let run () socket connects interval_ms once =
    spanned "argus.top" @@ fun () ->
    let stats_line =
      Json.to_string
        (Protocol.request_to_json (Protocol.request Protocol.Stats))
    in
    let eps =
      match endpoints_of socket connects with
      | Ok eps -> eps
      | Error e ->
          Format.eprintf "argus top: %s@." e;
          exit 2
    in
    let prev = ref None in
    let render payload =
      let member k = List.assoc_opt k payload in
      let num k = match member k with Some (Json.Num n) -> Some n | _ -> None in
      let obj k = match member k with Some (Json.Obj kvs) -> kvs | _ -> [] in
      let counters = obj "counters" in
      let counter k =
        match List.assoc_opt k counters with
        | Some (Json.Num n) -> n
        | _ -> 0.
      in
      let int_of k d =
        match num k with Some n -> int_of_float n | None -> d
      in
      let now_ms = Option.value (num "now_ms") ~default:0. in
      let accepted = counter "svc.accepted" in
      let rate =
        match !prev with
        | Some (t0, a0) when now_ms > t0 ->
            Printf.sprintf "%.1f"
              ((accepted -. a0) /. ((now_ms -. t0) /. 1000.))
        | _ -> "-"
      in
      prev := Some (now_ms, accepted);
      let ready =
        match member "ready" with Some (Json.Bool b) -> b | _ -> false
      in
      Format.printf "argus top — %s@."
        (String.concat ", " (List.map Endpoint.to_string eps));
      Format.printf
        "ready %b   queue %d/%d   jobs %d   restarts %d   req/s %s@."
        ready (int_of "queue_depth" 0)
        (int_of "queue_capacity" 0)
        (int_of "jobs" 0) (int_of "restarts" 0) rate;
      Format.printf
        "accepted %.0f   shed %.0f   breaker-open %.0f   flight events %d@."
        accepted (counter "svc.shed")
        (counter "svc.breaker_open")
        (int_of "flight_recorded" 0);
      let latency = obj "latency_ms" in
      if latency <> [] then begin
        Format.printf "@.%-12s %8s %9s %9s %9s %9s@." "latency (ms)" "count"
          "p50" "p90" "p99" "max";
        let q j k =
          match j with
          | Json.Obj kvs -> (
              match List.assoc_opt k kvs with
              | Some (Json.Num n) -> n
              | _ -> 0.)
          | _ -> 0.
        in
        (* The aggregate row leads; kinds follow alphabetically. *)
        let rows =
          List.sort
            (fun (a, _) (b, _) ->
              match (a, b) with
              | "all", "all" -> 0
              | "all", _ -> -1
              | _, "all" -> 1
              | _ -> compare a b)
            latency
        in
        List.iter
          (fun (name, j) ->
            Format.printf "%-12s %8.0f %9.2f %9.2f %9.2f %9.2f@." name
              (q j "count") (q j "p50") (q j "p90") (q j "p99") (q j "max"))
          rows
      end;
      (* The store line appears once the server has served a store op:
         live nodes (gauge) plus the reuse counters that tell whether
         the incremental machinery is earning its keep. *)
      let gauges = obj "gauges" in
      let gauge k =
        match List.assoc_opt k gauges with
        | Some (Json.Obj kvs) -> (
            match List.assoc_opt "value" kvs with
            | Some (Json.Num n) -> int_of_float n
            | _ -> 0)
        | _ -> 0
      in
      let store_nodes = gauge "store.nodes" in
      if
        store_nodes > 0
        || counter "store.reused_verdicts" > 0.
        || counter "store.dirty_cone" > 0.
      then
        Format.printf
          "store: nodes %d   node-hits %.0f   reused-verdicts %.0f   \
           dirty-cone %.0f@."
          store_nodes
          (counter "store.node_hits")
          (counter "store.reused_verdicts")
          (counter "store.dirty_cone");
      let breakers = obj "breakers" in
      if breakers <> [] then begin
        Format.printf "@.breakers:";
        List.iter
          (fun (op, st) ->
            match st with
            | Json.Str s -> Format.printf " %s=%s" op s
            | _ -> ())
          breakers;
        Format.printf "@."
      end;
      (match member "workers" with
      | Some (Json.List ws) ->
          Format.printf "workers:";
          List.iter
            (fun w ->
              match w with
              | Json.Obj kvs -> (
                  match List.assoc_opt "state" kvs with
                  | Some (Json.Str s) -> Format.printf " %s" s
                  | _ -> ())
              | _ -> ())
            ws;
          Format.printf "@."
      | _ -> ());
      Format.print_flush ()
    in
    let rec loop () =
      match roundtrip ~op:Protocol.Stats eps stats_line with
      | Error msg ->
          Format.eprintf "argus top: %s@." msg;
          2
      | Ok resp -> (
          match resp.Protocol.outcome with
          | Error (code, msg) ->
              Format.eprintf "argus top: %s: %s@." code msg;
              2
          | Ok (_, payload) ->
              if not once then print_string "\027[2J\027[H";
              render payload;
              if once then 0
              else begin
                Unix.sleepf (Float.max 0.05 (interval_ms /. 1000.));
                loop ()
              end)
    in
    loop ()
  in
  let interval =
    Arg.(
      value
      & opt (positive_float_conv "--interval") 1000.
      & info [ "interval" ] ~docv:"MS"
          ~doc:"Milliseconds between polls (default 1000).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print a single snapshot and exit (no screen clearing).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live one-screen telemetry view of a running argus serve")
    Term.(
      const run $ obs_json_only_t $ socket_arg $ connect_arg $ interval
      $ once)

(* --- bench-serve: the chaos load harness (DESIGN.md §16) --- *)

let bench_rm_rf dir =
  let rec go path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> go (Filename.concat path e)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  go dir

let bench_serve_cmd =
  let run () connects duration rate clients chaos seed kill_primary out =
    spanned "argus.bench-serve" @@ fun () ->
    let fail msg =
      Format.eprintf "argus bench-serve: %s@." msg;
      2
    in
    let parse_eps connects =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
            match Endpoint.of_string c with
            | Ok ep -> go (ep :: acc) rest
            | Error e -> Error e)
      in
      go [] connects
    in
    (* Self-host when no --connect endpoints are given: spawn two argus
       serve children on ephemeral loopback ports — a primary and the
       failover target — and, under chaos, SIGKILL the primary mid-run
       so the clients demonstrably fail over. *)
    let tmpdir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "argus-bench-serve-%d" (Unix.getpid ()))
    in
    let spawn_server i =
      let pf = Filename.concat tmpdir (Printf.sprintf "port%d" i) in
      (try Sys.remove pf with Sys_error _ -> ());
      let log =
        Unix.openfile
          (Filename.concat tmpdir (Printf.sprintf "server%d.log" i))
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o600
      in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let pid =
        Unix.create_process Sys.executable_name
          [|
            "argus"; "serve"; "--listen"; "127.0.0.1:0"; "--port-file"; pf;
            "--read-deadline"; "2000"; "--idle-timeout"; "10000";
          |]
          devnull log log
      in
      Unix.close devnull;
      Unix.close log;
      (pid, pf)
    in
    let wait_port pf =
      let deadline = Unix.gettimeofday () +. 10. in
      let rec go () =
        let port =
          match open_in pf with
          | ic ->
              let p =
                try int_of_string_opt (String.trim (input_line ic))
                with End_of_file -> None
              in
              close_in ic;
              p
          | exception Sys_error _ -> None
        in
        match port with
        | Some p -> Some p
        | None ->
            if Unix.gettimeofday () > deadline then None
            else begin
              Unix.sleepf 0.05;
              go ()
            end
      in
      go ()
    in
    let reap pid =
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
    in
    let eps_or_err, children =
      if connects <> [] then (parse_eps connects, [])
      else begin
        (try Unix.mkdir tmpdir 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let cs = [ spawn_server 0; spawn_server 1 ] in
        let ports = List.map (fun (_, pf) -> wait_port pf) cs in
        match ports with
        | [ Some p0; Some p1 ] ->
            (Ok [ Endpoint.Tcp ("127.0.0.1", p0); Endpoint.Tcp ("127.0.0.1", p1) ], cs)
        | _ ->
            List.iter (fun (pid, _) -> reap pid) cs;
            (Error "self-hosted servers did not come up within 10 s", cs)
      end
    in
    match eps_or_err with
    | Error e ->
        if children <> [] then bench_rm_rf tmpdir;
        fail e
    | Ok eps ->
        let cfg =
          {
            (Loadgen.default_config eps) with
            Loadgen.duration_s = duration;
            rate;
            clients;
            chaos;
            seed;
          }
        in
        (* The failover demonstration: SIGKILL the primary mid-run.
           Only meaningful in self-host mode, where the second server
           keeps answering. *)
        let assassin =
          match children with
          | (pid, _) :: _ :: _ when chaos || kill_primary ->
              Some
                (Domain.spawn (fun () ->
                     Unix.sleepf (duration /. 2.);
                     try Unix.kill pid Sys.sigkill
                     with Unix.Unix_error _ -> ()))
          | _ -> None
        in
        let result = Loadgen.run cfg in
        Option.iter Domain.join assassin;
        List.iter (fun (pid, _) -> reap pid) children;
        if children <> [] then bench_rm_rf tmpdir;
        Format.printf "%a" Loadgen.pp result;
        (* Publish the bench_serve section into the bench results file,
           preserving whatever the micro-benchmark harness wrote. *)
        let path =
          match out with
          | Some p -> p
          | None ->
              if Sys.file_exists "bench" && Sys.is_directory "bench" then
                Filename.concat "bench" "results.json"
              else "results.json"
        in
        let existing =
          match open_in path with
          | ic ->
              let len = in_channel_length ic in
              let s = really_input_string ic len in
              close_in ic;
              (match Json.of_string s with
              | Ok (Json.Obj kvs) -> kvs
              | _ -> [])
          | exception Sys_error _ -> []
        in
        let merged =
          List.filter (fun (k, _) -> k <> "bench_serve") existing
          @ [ ("bench_serve", Loadgen.result_to_json cfg result) ]
        in
        let merged =
          if List.mem_assoc "schema" merged then merged
          else ("schema", Json.Str "argus-bench/1") :: merged
        in
        (match open_out path with
        | oc ->
            output_string oc (Json.to_string ~indent:true (Json.Obj merged));
            output_char oc '\n';
            close_out oc;
            Format.printf "wrote %s@." path
        | exception Sys_error msg ->
            Format.eprintf "argus bench-serve: could not write %s: %s@." path
              msg);
        if result.Loadgen.resolved = result.Loadgen.offered then 0 else 1
  in
  let duration =
    Arg.(
      value
      & opt (positive_float_conv "--duration") 10.
      & info [ "duration" ] ~docv:"S" ~doc:"Run length in seconds.")
  in
  let rate =
    Arg.(
      value
      & opt (positive_float_conv "--rate") 200.
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Total offered load in requests per second (open-loop \
             Poisson arrivals: the schedule does not slow down when the \
             server does).")
  in
  let clients =
    Arg.(
      value
      & opt (positive_int_conv "--clients") 4
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Retrying client workers; one pipelining worker always runs \
             besides them.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Unleash the misbehaving clients (byte-dribbler, mid-frame \
             disconnector, never-reader, garbage-writer) and, in \
             self-host mode, SIGKILL the primary server mid-run to \
             demonstrate failover.")
  in
  let seed =
    Arg.(
      value
      & opt (nonneg_int_conv "--seed") 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Root seed for arrivals and misbehaviour schedules.")
  in
  let kill_primary =
    Arg.(
      value & flag
      & info [ "kill-primary" ]
          ~doc:
            "SIGKILL the first self-hosted server mid-run even without \
             --chaos.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Results file to merge the bench_serve section into \
             (default: bench/results.json when run from the repo root).")
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Chaos load harness: open-loop Poisson load, pipelined and \
          misbehaving clients, failover demonstration")
    Term.(
      const run $ obs_json_only_t $ connect_arg $ duration $ rate $ clients
      $ chaos $ seed $ kill_primary $ out)

(* A consumer that stopped reading (argus check ... | head) must end
   the process quietly, not as a SIGPIPE kill or an "internal error":
   SIGPIPE is ignored, so the write surfaces as EPIPE, which we map to
   a clean exit. *)
let is_broken_pipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error msg ->
      (* Stdlib channels wrap EPIPE as Sys_error with strerror text. *)
      let needle = "roken pipe" in
      let rec find i =
        i + String.length needle <= String.length msg
        && (String.sub msg i (String.length needle) = needle || find (i + 1))
      in
      find 0
  | _ -> false

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Fault.configure_from_env ();
  let doc = "assurance-argument toolkit (Graydon, DSN 2015, reproduced)" in
  let info = Cmd.info "argus" ~version:"1.0.0" ~doc in
  (* [~catch:false] so unexpected exceptions reach our handler: users get
     a one-line message and exit code 2, never a raw backtrace. *)
  let code =
    try
      Cmd.eval' ~catch:false
        (Cmd.group info
           [
             check_cmd;
             render_cmd;
             query_cmd;
             fallacies_cmd;
             prove_cmd;
             cae_cmd;
             probe_cmd;
             export_cmd;
             import_cmd;
             stats_cmd;
             format_cmd;
             equivocation_cmd;
             survey_cmd;
             experiments_cmd;
             serve_cmd;
             call_cmd;
             top_cmd;
             bench_serve_cmd;
           ])
    with
    | e when is_broken_pipe e -> 0
    | e ->
        Format.eprintf "argus: internal error: %s@." (Printexc.to_string e);
        2
  in
  (try Obs.finish () with e when is_broken_pipe e -> ());
  (* [exit] reruns the stdlib's at_exit flush of stdout; if the
     consumer is gone (| head) that flush re-raises from a buffer that
     can never drain, and the process would die loudly ("Fatal error")
     after we already mapped the pipe error to a clean status.  Flush
     here, and when the pipe is confirmed broken skip the at_exit
     machinery entirely. *)
  let flushed =
    try
      Format.pp_print_flush Format.std_formatter ();
      flush stdout;
      true
    with e when is_broken_pipe e -> false
  in
  if flushed then exit code
  else begin
    (try flush stderr with _ -> ());
    Unix._exit code
  end
