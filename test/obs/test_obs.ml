module Obs = Argus_obs.Obs
module Span = Argus_obs.Span
module Counter = Argus_obs.Counter
module Histogram = Argus_obs.Histogram
module Metrics = Argus_obs.Metrics
module Gauge = Argus_obs.Metrics.Gauge
module Ring = Argus_obs.Ring
module Prom = Argus_obs.Prom
module Trace = Argus_obs.Trace
module Json = Argus_core.Json

(* Every test starts from a clean slate: spans recording, data empty. *)
let fresh () =
  Obs.reset ();
  Span.set_enabled true

(* --- spans --- *)

let test_span_nesting () =
  fresh ();
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"first" (fun () -> ());
      Span.with_ ~name:"second" (fun () ->
          Span.with_ ~name:"inner" (fun () -> ())));
  Span.with_ ~name:"sibling" (fun () -> ());
  match Span.roots () with
  | [ outer; sibling ] ->
      Alcotest.(check string) "root order" "outer" outer.Span.name;
      Alcotest.(check string) "second root" "sibling" sibling.Span.name;
      Alcotest.(check (list string))
        "children in call order"
        [ "first"; "second" ]
        (List.map (fun s -> s.Span.name) outer.Span.children);
      let second = List.nth outer.Span.children 1 in
      Alcotest.(check (list string))
        "grandchild" [ "inner" ]
        (List.map (fun s -> s.Span.name) second.Span.children)
  | roots ->
      Alcotest.failf "expected 2 roots, got %d" (List.length roots)

let test_span_duration_contains_children () =
  fresh ();
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner" (fun () -> Unix.sleepf 0.002));
  match Span.roots () with
  | [ outer ] ->
      let inner = List.hd outer.Span.children in
      Alcotest.(check bool) "inner ran for some time" true (inner.Span.dur_ns > 0);
      Alcotest.(check bool)
        "outer covers inner" true
        (outer.Span.dur_ns >= inner.Span.dur_ns)
  | _ -> Alcotest.fail "expected one root"

let test_span_disabled_is_transparent () =
  Obs.reset ();
  Span.set_enabled false;
  let r = Span.with_ ~name:"ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.roots ()))

let test_span_exception_safety () =
  fresh ();
  (try
     Span.with_ ~name:"outer" (fun () ->
         Span.with_ ~name:"boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (match Span.roots () with
  | [ outer ] ->
      Alcotest.(check string) "outer recorded" "outer" outer.Span.name;
      Alcotest.(check (list string))
        "failing child recorded" [ "boom" ]
        (List.map (fun s -> s.Span.name) outer.Span.children)
  | _ -> Alcotest.fail "expected one root");
  (* The stack unwound: a new span is a fresh root, not a child. *)
  Span.with_ ~name:"after" (fun () -> ());
  Alcotest.(check int) "stack balanced" 2 (List.length (Span.roots ()))

(* --- counters and histograms --- *)

let test_counter_aggregation () =
  fresh ();
  let c = Counter.make "test.counter" in
  let c' = Counter.make "test.counter" in
  Counter.incr c;
  Counter.add c' 4;
  Alcotest.(check int) "same counter via name" 5 (Counter.value c);
  Alcotest.(check (option int))
    "visible in snapshot" (Some 5)
    (List.assoc_opt "test.counter" (Metrics.counters ()))

let test_histogram_aggregation () =
  fresh ();
  let h = Histogram.make "test.histogram" in
  List.iter (Histogram.observe h) [ 4.0; 1.0; 3.0; 2.0 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  let stats = List.assoc "test.histogram" (Metrics.histograms ()) in
  Alcotest.(check (float 1e-9)) "sum" 10.0 stats.Metrics.hsum;
  Alcotest.(check (float 1e-9)) "min" 1.0 stats.Metrics.hmin;
  Alcotest.(check (float 1e-9)) "max" 4.0 stats.Metrics.hmax;
  Alcotest.(check (float 1e-9)) "mean" 2.5 stats.Metrics.hmean;
  Alcotest.(check bool)
    "median within range" true
    (stats.Metrics.hp50 >= 1.0 && stats.Metrics.hp50 <= 4.0)

let test_reset_between_runs () =
  fresh ();
  let c = Counter.make "test.reset" in
  Counter.add c 7;
  let h = Histogram.make "test.reset.h" in
  Histogram.observe h 1.0;
  Span.with_ ~name:"gone" (fun () -> ());
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Counter.value c);
  Alcotest.(check int) "histogram emptied" 0 (Histogram.count h);
  Alcotest.(check int) "spans dropped" 0 (List.length (Span.roots ()));
  Alcotest.(check int)
    "empty histograms hidden" 0
    (List.length (Metrics.histograms ()))

let test_histogram_quantiles () =
  fresh ();
  let h = Histogram.make "test.quantiles" in
  for i = 1 to 1000 do
    Histogram.observe h (float_of_int i /. 100.0)
  done;
  let stats = List.assoc "test.quantiles" (Metrics.histograms ()) in
  (* Uniform 0.01..10.00: the quantiles are bucket interpolations, so
     allow the coarseness of log-spaced buckets (factor 2). *)
  Alcotest.(check bool)
    "p50 near the middle" true
    (stats.Metrics.hp50 > 2.5 && stats.Metrics.hp50 < 10.0);
  Alcotest.(check bool)
    "quantiles ordered" true
    (stats.Metrics.hp50 <= stats.Metrics.hp90
    && stats.Metrics.hp90 <= stats.Metrics.hp99);
  Alcotest.(check bool)
    "p99 clamped to observed max" true
    (stats.Metrics.hp99 <= stats.Metrics.hmax +. 1e-9)

let test_bucket_bounds_shape () =
  let bounds = Metrics.bucket_bounds () in
  Alcotest.(check bool) "has bounds" true (Array.length bounds > 2);
  Array.iteri
    (fun i b ->
      if i > 0 then
        Alcotest.(check bool) "strictly increasing" true (b > bounds.(i - 1)))
    bounds

let test_gauge_reset () =
  fresh ();
  let g = Gauge.make "test.gauge" in
  Gauge.set g 5;
  Gauge.set g 9;
  Gauge.set g 2;
  Alcotest.(check int) "value is last set" 2 (Gauge.value g);
  Alcotest.(check int) "max is high-watermark" 9 (Gauge.max_value g);
  Alcotest.(check (option (pair int int)))
    "snapshot carries (value, max)"
    (Some (2, 9))
    (List.assoc_opt "test.gauge" (Metrics.gauges ()));
  Obs.reset ();
  Alcotest.(check int) "value zeroed" 0 (Gauge.value g);
  Alcotest.(check int) "watermark zeroed" 0 (Gauge.max_value g)

(* --- flight-recorder ring --- *)

let test_ring_wrap_keeps_newest () =
  fresh ();
  let r = Ring.make ~name:"test.ring" ~capacity:4 in
  for i = 1 to 10 do
    Ring.record ~ts_ms:(float_of_int i) r ~kind:"tick"
      [ ("i", Json.int i) ]
  done;
  Alcotest.(check int) "total recorded" 10 (Ring.recorded r);
  let kept =
    List.map
      (fun (ev : Ring.event) ->
        match List.assoc "i" ev.Ring.fields with
        | Json.Num n -> int_of_float n
        | _ -> -1)
      (Ring.events r)
  in
  Alcotest.(check (list int)) "newest 4, oldest first" [ 7; 8; 9; 10 ] kept

let test_ring_reset_all () =
  fresh ();
  let r = Ring.make ~name:"test.ring.reset" ~capacity:8 in
  Ring.record r ~kind:"x" [];
  Obs.reset ();
  Alcotest.(check int) "ring cleared by Obs.reset" 0
    (List.length (Ring.events r));
  Alcotest.(check int) "recorded count rewound" 0 (Ring.recorded r)

let test_ring_event_json () =
  fresh ();
  let r = Ring.make ~name:"test.ring.json" ~capacity:2 in
  Ring.record ~ts_ms:1234.5 r ~kind:"shed" [ ("op", Json.Str "check") ];
  match Ring.to_jsonl r with
  | [ ev ] ->
      Alcotest.(check (option string))
        "tagged as flight" (Some "flight")
        (match Json.member "type" ev with
        | Some (Json.Str s) -> Some s
        | _ -> None);
      Alcotest.(check (option string))
        "kind survives" (Some "shed")
        (match Json.member "kind" ev with
        | Some (Json.Str s) -> Some s
        | _ -> None);
      Alcotest.(check bool) "fields spliced in" true
        (Json.member "op" ev = Some (Json.Str "check"))
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_ring_concurrent_records () =
  fresh ();
  let r = Ring.make ~name:"test.ring.domains" ~capacity:64 in
  let n_domains = 4 and per_domain = 5_000 in
  let workers =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Ring.record r ~kind:"w" []
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int)
    "no lost records"
    (n_domains * per_domain)
    (Ring.recorded r);
  Alcotest.(check int) "ring holds capacity" 64 (List.length (Ring.events r))

(* --- Prometheus exposition --- *)

let test_prom_metric_name () =
  Alcotest.(check string)
    "dots to underscores with prefix" "argus_svc_queue_depth"
    (Prom.metric_name "svc.queue-depth")

let test_prom_render () =
  fresh ();
  Counter.add (Counter.make "test.prom.counter") 3;
  Gauge.set (Gauge.make "test.prom.gauge") 7;
  Histogram.observe (Histogram.make "test.prom.h") 0.5;
  let page = Prom.render () in
  let has needle =
    let n = String.length needle and m = String.length page in
    let rec at i = i + n <= m && (String.sub page i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "counter sample" true
    (has "argus_test_prom_counter 3");
  Alcotest.(check bool) "gauge sample" true (has "argus_test_prom_gauge 7");
  Alcotest.(check bool) "gauge watermark" true
    (has "argus_test_prom_gauge_max 7");
  Alcotest.(check bool) "histogram count" true
    (has "argus_test_prom_h_count 1");
  Alcotest.(check bool) "cumulative +Inf bucket" true
    (has "le=\"+Inf\"} 1");
  Alcotest.(check bool) "type comments" true (has "# TYPE")

(* --- domain safety: counters, histograms and spans written from
   worker domains must merge exactly --- *)

let test_counter_concurrent_merge () =
  fresh ();
  let c = Counter.make "test.domains.counter" in
  let n_domains = 4 and per_domain = 50_000 in
  let workers =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Counter.incr c
            done))
  in
  Counter.add c 3;
  List.iter Domain.join workers;
  Alcotest.(check int)
    "no lost increments"
    ((n_domains * per_domain) + 3)
    (Counter.value c)

let test_histogram_concurrent_merge () =
  fresh ();
  let h = Histogram.make "test.domains.histogram" in
  let n_domains = 4 and per_domain = 10_000 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Histogram.observe h (float_of_int ((d * per_domain) + i))
            done))
  in
  List.iter Domain.join workers;
  let stats = List.assoc "test.domains.histogram" (Metrics.histograms ()) in
  let n = n_domains * per_domain in
  Alcotest.(check int) "count merged" n (Histogram.count h);
  Alcotest.(check (float 1e-3))
    "sum merged"
    (float_of_int (n * (n + 1)) /. 2.0)
    stats.Metrics.hsum;
  Alcotest.(check (float 1e-9)) "min across domains" 1.0 stats.Metrics.hmin;
  Alcotest.(check (float 1e-9))
    "max across domains" (float_of_int n) stats.Metrics.hmax

let test_spans_from_worker_domains () =
  fresh ();
  Span.with_ ~name:"main" (fun () -> ());
  let workers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            Span.with_
              ~name:(Printf.sprintf "worker%d" d)
              (fun () -> Span.with_ ~name:"child" (fun () -> ()))))
  in
  List.iter Domain.join workers;
  let roots = Span.roots () in
  let names = List.map (fun s -> s.Span.name) roots in
  Alcotest.(check int) "three roots survive the join" 3 (List.length roots);
  Alcotest.(check string) "main domain's span first" "main" (List.hd names);
  Alcotest.(check bool)
    "worker spans present" true
    (List.mem "worker0" names && List.mem "worker1" names);
  List.iter
    (fun s ->
      if s.Span.name <> "main" then
        Alcotest.(check (list string))
          "worker span keeps its children" [ "child" ]
          (List.map (fun c -> c.Span.name) s.Span.children))
    roots

(* --- request-scoped capture --- *)

let test_capture_returns_tree () =
  Obs.reset ();
  Span.set_enabled false;
  let v, tree =
    Span.capture ~name:"req" (fun () ->
        Span.with_ ~name:"step1" (fun () -> ());
        Span.with_ ~name:"step2" (fun () ->
            Span.with_ ~name:"leaf" (fun () -> ()));
        17)
  in
  Alcotest.(check int) "value passes through" 17 v;
  Alcotest.(check string) "root named" "req" tree.Span.name;
  Alcotest.(check (list string))
    "children in call order" [ "step1"; "step2" ]
    (List.map (fun s -> s.Span.name) tree.Span.children);
  Alcotest.(check bool) "durations recorded" true (tree.Span.dur_ns >= 0);
  (* Capture is private: nothing leaked into the global trace. *)
  Alcotest.(check int) "globally invisible" 0 (List.length (Span.roots ()))

let test_capture_restores_ambient_recording () =
  fresh ();
  Span.with_ ~name:"before" (fun () -> ());
  let (), _tree = Span.capture ~name:"req" (fun () ->
      Span.with_ ~name:"inside" (fun () -> ()))
  in
  Span.with_ ~name:"after" (fun () -> ());
  Alcotest.(check (list string))
    "ambient trace untouched by capture" [ "before"; "after" ]
    (List.map (fun s -> s.Span.name) (Span.roots ()))

let test_capture_exception_restores () =
  Obs.reset ();
  Span.set_enabled false;
  (try
     ignore (Span.capture ~name:"req" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* A later capture still works and the fast path is re-armed. *)
  let v, tree = Span.capture ~name:"again" (fun () -> 1) in
  Alcotest.(check int) "later capture works" 1 v;
  Alcotest.(check string) "later tree named" "again" tree.Span.name;
  Span.with_ ~name:"ghost" (fun () -> ());
  Alcotest.(check int)
    "disabled fast path back in force" 0
    (List.length (Span.roots ()))

let test_span_domain_ids () =
  fresh ();
  Span.with_ ~name:"main" (fun () -> ());
  let w =
    Domain.spawn (fun () ->
        Span.with_ ~name:"worker" (fun () -> ());
        (Domain.self () :> int))
  in
  let worker_id = Domain.join w in
  let find name =
    List.find (fun s -> s.Span.name = name) (Span.roots ())
  in
  Alcotest.(check int)
    "main span tagged with main domain"
    (Domain.self () :> int)
    (find "main").Span.domain;
  Alcotest.(check int)
    "worker span tagged with its domain" worker_id (find "worker").Span.domain;
  (* The jsonl view carries the id too. *)
  let domain_of name =
    List.find_map
      (fun ev ->
        match (Json.member "name" ev, Json.member "domain" ev) with
        | Some (Json.Str n), Some (Json.Num d) when n = name ->
            Some (int_of_float d)
        | _ -> None)
      (Trace.jsonl_events ())
  in
  Alcotest.(check (option int))
    "jsonl domain field" (Some worker_id) (domain_of "worker")

let test_span_json_round_trip () =
  Obs.reset ();
  Span.set_enabled false;
  let _, tree =
    Span.capture ~name:"req" (fun () ->
        Span.with_ ~name:"a" (fun () -> Span.with_ ~name:"b" (fun () -> ())))
  in
  let json = Trace.span_to_json tree in
  match Trace.span_of_json json with
  | None -> Alcotest.fail "span_of_json rejected its own output"
  | Some back ->
      Alcotest.(check string) "name survives" tree.Span.name back.Span.name;
      Alcotest.(check int) "domain survives" tree.Span.domain back.Span.domain;
      Alcotest.(check int)
        "children survive"
        (List.length tree.Span.children)
        (List.length back.Span.children);
      let a = List.hd back.Span.children in
      Alcotest.(check (list string))
        "grandchildren survive" [ "b" ]
        (List.map (fun s -> s.Span.name) a.Span.children);
      (* Tolerance: unknown fields ignored, missing numerics default. *)
      (match Trace.span_of_json (Json.Obj [ ("name", Json.Str "bare"); ("extra", Json.Bool true) ]) with
      | Some s ->
          Alcotest.(check string) "bare name accepted" "bare" s.Span.name;
          Alcotest.(check int) "missing dur defaults" 0 s.Span.dur_ns
      | None -> Alcotest.fail "tolerant parse failed");
      Alcotest.(check (option string))
        "nameless span rejected" None
        (Option.map
           (fun (s : Span.t) -> s.Span.name)
           (Trace.span_of_json (Json.Obj [ ("dur_ns", Json.int 3) ])))

(* --- JSONL --- *)

let test_jsonl_round_trip () =
  fresh ();
  Counter.add (Counter.make "test.jsonl.counter") 3;
  Histogram.observe (Histogram.make "test.jsonl.h") 2.5;
  Span.with_ ~name:"a" (fun () -> Span.with_ ~name:"b" (fun () -> ()));
  let events = Trace.jsonl_events () in
  Alcotest.(check bool) "has events" true (List.length events > 3);
  List.iter
    (fun ev ->
      let line = Json.to_string ev in
      match Json.of_string line with
      | Ok parsed ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trips: %s" line)
            true (Json.equal ev parsed)
      | Error e -> Alcotest.failf "unparseable line %s: %s" line e)
    events;
  (* The span events carry depths reflecting the tree. *)
  let depth_of name =
    List.find_map
      (fun ev ->
        match (Json.member "name" ev, Json.member "depth" ev) with
        | Some (Json.Str n), Some (Json.Num d) when n = name ->
            Some (int_of_float d)
        | _ -> None)
      events
  in
  Alcotest.(check (option int)) "root depth" (Some 0) (depth_of "a");
  Alcotest.(check (option int)) "child depth" (Some 1) (depth_of "b")

let test_metrics_to_json_parses () =
  fresh ();
  Counter.incr (Counter.make "test.json.counter");
  let s = Json.to_string ~indent:true (Metrics.to_json ()) in
  match Json.of_string s with
  | Ok (Json.Obj fields) ->
      Alcotest.(check bool)
        "has counters" true
        (List.mem_assoc "counters" fields)
  | Ok _ -> Alcotest.fail "expected an object"
  | Error e -> Alcotest.failf "unparseable: %s" e

let () =
  (* Leave global state clean for any test that runs after us. *)
  at_exit (fun () ->
      Obs.reset ();
      Span.set_enabled false);
  Alcotest.run "argus-obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "durations nest" `Quick
            test_span_duration_contains_children;
          Alcotest.test_case "disabled is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter aggregation" `Quick
            test_counter_aggregation;
          Alcotest.test_case "histogram aggregation" `Quick
            test_histogram_aggregation;
          Alcotest.test_case "reset between runs" `Quick
            test_reset_between_runs;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "bucket bounds shape" `Quick
            test_bucket_bounds_shape;
          Alcotest.test_case "gauge watermark and reset" `Quick
            test_gauge_reset;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wrap keeps newest" `Quick
            test_ring_wrap_keeps_newest;
          Alcotest.test_case "Obs.reset clears rings" `Quick
            test_ring_reset_all;
          Alcotest.test_case "event json shape" `Quick test_ring_event_json;
          Alcotest.test_case "concurrent records" `Quick
            test_ring_concurrent_records;
        ] );
      ( "prom",
        [
          Alcotest.test_case "metric name mapping" `Quick
            test_prom_metric_name;
          Alcotest.test_case "render exposition page" `Quick test_prom_render;
        ] );
      ( "capture",
        [
          Alcotest.test_case "returns value and tree" `Quick
            test_capture_returns_tree;
          Alcotest.test_case "restores ambient recording" `Quick
            test_capture_restores_ambient_recording;
          Alcotest.test_case "exception-safe restore" `Quick
            test_capture_exception_restores;
          Alcotest.test_case "span domain ids" `Quick test_span_domain_ids;
          Alcotest.test_case "span json round-trip" `Quick
            test_span_json_round_trip;
        ] );
      ( "domains",
        [
          Alcotest.test_case "counter merge is exact" `Quick
            test_counter_concurrent_merge;
          Alcotest.test_case "histogram merge is exact" `Quick
            test_histogram_concurrent_merge;
          Alcotest.test_case "worker spans survive join" `Quick
            test_spans_from_worker_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "metrics json parses" `Quick
            test_metrics_to_json_parses;
        ] );
    ]
