module Obs = Argus_obs.Obs
module Span = Argus_obs.Span
module Counter = Argus_obs.Counter
module Histogram = Argus_obs.Histogram
module Metrics = Argus_obs.Metrics
module Trace = Argus_obs.Trace
module Json = Argus_core.Json

(* Every test starts from a clean slate: spans recording, data empty. *)
let fresh () =
  Obs.reset ();
  Span.set_enabled true

(* --- spans --- *)

let test_span_nesting () =
  fresh ();
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"first" (fun () -> ());
      Span.with_ ~name:"second" (fun () ->
          Span.with_ ~name:"inner" (fun () -> ())));
  Span.with_ ~name:"sibling" (fun () -> ());
  match Span.roots () with
  | [ outer; sibling ] ->
      Alcotest.(check string) "root order" "outer" outer.Span.name;
      Alcotest.(check string) "second root" "sibling" sibling.Span.name;
      Alcotest.(check (list string))
        "children in call order"
        [ "first"; "second" ]
        (List.map (fun s -> s.Span.name) outer.Span.children);
      let second = List.nth outer.Span.children 1 in
      Alcotest.(check (list string))
        "grandchild" [ "inner" ]
        (List.map (fun s -> s.Span.name) second.Span.children)
  | roots ->
      Alcotest.failf "expected 2 roots, got %d" (List.length roots)

let test_span_duration_contains_children () =
  fresh ();
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner" (fun () -> Unix.sleepf 0.002));
  match Span.roots () with
  | [ outer ] ->
      let inner = List.hd outer.Span.children in
      Alcotest.(check bool) "inner ran for some time" true (inner.Span.dur_ns > 0);
      Alcotest.(check bool)
        "outer covers inner" true
        (outer.Span.dur_ns >= inner.Span.dur_ns)
  | _ -> Alcotest.fail "expected one root"

let test_span_disabled_is_transparent () =
  Obs.reset ();
  Span.set_enabled false;
  let r = Span.with_ ~name:"ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.roots ()))

let test_span_exception_safety () =
  fresh ();
  (try
     Span.with_ ~name:"outer" (fun () ->
         Span.with_ ~name:"boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (match Span.roots () with
  | [ outer ] ->
      Alcotest.(check string) "outer recorded" "outer" outer.Span.name;
      Alcotest.(check (list string))
        "failing child recorded" [ "boom" ]
        (List.map (fun s -> s.Span.name) outer.Span.children)
  | _ -> Alcotest.fail "expected one root");
  (* The stack unwound: a new span is a fresh root, not a child. *)
  Span.with_ ~name:"after" (fun () -> ());
  Alcotest.(check int) "stack balanced" 2 (List.length (Span.roots ()))

(* --- counters and histograms --- *)

let test_counter_aggregation () =
  fresh ();
  let c = Counter.make "test.counter" in
  let c' = Counter.make "test.counter" in
  Counter.incr c;
  Counter.add c' 4;
  Alcotest.(check int) "same counter via name" 5 (Counter.value c);
  Alcotest.(check (option int))
    "visible in snapshot" (Some 5)
    (List.assoc_opt "test.counter" (Metrics.counters ()))

let test_histogram_aggregation () =
  fresh ();
  let h = Histogram.make "test.histogram" in
  List.iter (Histogram.observe h) [ 4.0; 1.0; 3.0; 2.0 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  let stats = List.assoc "test.histogram" (Metrics.histograms ()) in
  Alcotest.(check (float 1e-9)) "sum" 10.0 stats.Metrics.hsum;
  Alcotest.(check (float 1e-9)) "min" 1.0 stats.Metrics.hmin;
  Alcotest.(check (float 1e-9)) "max" 4.0 stats.Metrics.hmax;
  Alcotest.(check (float 1e-9)) "mean" 2.5 stats.Metrics.hmean;
  Alcotest.(check bool)
    "median within range" true
    (stats.Metrics.hp50 >= 1.0 && stats.Metrics.hp50 <= 4.0)

let test_reset_between_runs () =
  fresh ();
  let c = Counter.make "test.reset" in
  Counter.add c 7;
  let h = Histogram.make "test.reset.h" in
  Histogram.observe h 1.0;
  Span.with_ ~name:"gone" (fun () -> ());
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Counter.value c);
  Alcotest.(check int) "histogram emptied" 0 (Histogram.count h);
  Alcotest.(check int) "spans dropped" 0 (List.length (Span.roots ()));
  Alcotest.(check int)
    "empty histograms hidden" 0
    (List.length (Metrics.histograms ()))

(* --- domain safety: counters, histograms and spans written from
   worker domains must merge exactly --- *)

let test_counter_concurrent_merge () =
  fresh ();
  let c = Counter.make "test.domains.counter" in
  let n_domains = 4 and per_domain = 50_000 in
  let workers =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Counter.incr c
            done))
  in
  Counter.add c 3;
  List.iter Domain.join workers;
  Alcotest.(check int)
    "no lost increments"
    ((n_domains * per_domain) + 3)
    (Counter.value c)

let test_histogram_concurrent_merge () =
  fresh ();
  let h = Histogram.make "test.domains.histogram" in
  let n_domains = 4 and per_domain = 10_000 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Histogram.observe h (float_of_int ((d * per_domain) + i))
            done))
  in
  List.iter Domain.join workers;
  let stats = List.assoc "test.domains.histogram" (Metrics.histograms ()) in
  let n = n_domains * per_domain in
  Alcotest.(check int) "count merged" n (Histogram.count h);
  Alcotest.(check (float 1e-3))
    "sum merged"
    (float_of_int (n * (n + 1)) /. 2.0)
    stats.Metrics.hsum;
  Alcotest.(check (float 1e-9)) "min across domains" 1.0 stats.Metrics.hmin;
  Alcotest.(check (float 1e-9))
    "max across domains" (float_of_int n) stats.Metrics.hmax

let test_spans_from_worker_domains () =
  fresh ();
  Span.with_ ~name:"main" (fun () -> ());
  let workers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            Span.with_
              ~name:(Printf.sprintf "worker%d" d)
              (fun () -> Span.with_ ~name:"child" (fun () -> ()))))
  in
  List.iter Domain.join workers;
  let roots = Span.roots () in
  let names = List.map (fun s -> s.Span.name) roots in
  Alcotest.(check int) "three roots survive the join" 3 (List.length roots);
  Alcotest.(check string) "main domain's span first" "main" (List.hd names);
  Alcotest.(check bool)
    "worker spans present" true
    (List.mem "worker0" names && List.mem "worker1" names);
  List.iter
    (fun s ->
      if s.Span.name <> "main" then
        Alcotest.(check (list string))
          "worker span keeps its children" [ "child" ]
          (List.map (fun c -> c.Span.name) s.Span.children))
    roots

(* --- JSONL --- *)

let test_jsonl_round_trip () =
  fresh ();
  Counter.add (Counter.make "test.jsonl.counter") 3;
  Histogram.observe (Histogram.make "test.jsonl.h") 2.5;
  Span.with_ ~name:"a" (fun () -> Span.with_ ~name:"b" (fun () -> ()));
  let events = Trace.jsonl_events () in
  Alcotest.(check bool) "has events" true (List.length events > 3);
  List.iter
    (fun ev ->
      let line = Json.to_string ev in
      match Json.of_string line with
      | Ok parsed ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trips: %s" line)
            true (Json.equal ev parsed)
      | Error e -> Alcotest.failf "unparseable line %s: %s" line e)
    events;
  (* The span events carry depths reflecting the tree. *)
  let depth_of name =
    List.find_map
      (fun ev ->
        match (Json.member "name" ev, Json.member "depth" ev) with
        | Some (Json.Str n), Some (Json.Num d) when n = name ->
            Some (int_of_float d)
        | _ -> None)
      events
  in
  Alcotest.(check (option int)) "root depth" (Some 0) (depth_of "a");
  Alcotest.(check (option int)) "child depth" (Some 1) (depth_of "b")

let test_metrics_to_json_parses () =
  fresh ();
  Counter.incr (Counter.make "test.json.counter");
  let s = Json.to_string ~indent:true (Metrics.to_json ()) in
  match Json.of_string s with
  | Ok (Json.Obj fields) ->
      Alcotest.(check bool)
        "has counters" true
        (List.mem_assoc "counters" fields)
  | Ok _ -> Alcotest.fail "expected an object"
  | Error e -> Alcotest.failf "unparseable: %s" e

let () =
  (* Leave global state clean for any test that runs after us. *)
  at_exit (fun () ->
      Obs.reset ();
      Span.set_enabled false);
  Alcotest.run "argus-obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "durations nest" `Quick
            test_span_duration_contains_children;
          Alcotest.test_case "disabled is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter aggregation" `Quick
            test_counter_aggregation;
          Alcotest.test_case "histogram aggregation" `Quick
            test_histogram_aggregation;
          Alcotest.test_case "reset between runs" `Quick
            test_reset_between_runs;
        ] );
      ( "domains",
        [
          Alcotest.test_case "counter merge is exact" `Quick
            test_counter_concurrent_merge;
          Alcotest.test_case "histogram merge is exact" `Quick
            test_histogram_concurrent_merge;
          Alcotest.test_case "worker spans survive join" `Quick
            test_spans_from_worker_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "metrics json parses" `Quick
            test_metrics_to_json_parses;
        ] );
    ]
