open Argus_dsl.Dsl
module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed
module Metadata = Argus_gsn.Metadata

let sample_text =
  {|
// A small but complete case exercising every construct.
case "Braking controller safety" {
  enum severity { catastrophic hazardous major minor }
  enum likelihood { frequent probable remote }
  attr hazard (string, severity, likelihood)
  attr sil (nat)

  evidence E1 analysis "Worst-case timing analysis"
    source "report T-42" strength statistical
  evidence E2 test-results "HIL test campaign"

  goal G1 "The controller is acceptably safe" {
    formal "safe_ctrl"
    in-context-of C1
    supported-by S1
  }
  strategy S1 "Argue over each identified hazard" {
    supported-by G2, G3
    in-context-of J1
  }
  goal G2 "Hazard H1 is mitigated" {
    meta "hazard \"H1\" catastrophic remote"
    meta "sil 4"
    supported-by Sn1
  }
  goal G3 "Hazard H2 is mitigated" { undeveloped }
  solution Sn1 "Timing analysis results" { evidence E1 }
  context C1 "Motorway driving only"
  justification J1 "Hazard list reviewed by the safety board"
}
|}

let sample = parse_exn sample_text

let test_parse_sample () =
  Alcotest.(check string) "title" "Braking controller safety" sample.title;
  Alcotest.(check int) "nodes" 7 (Structure.size sample.structure);
  Alcotest.(check int) "evidence" 2
    (List.length (Structure.evidence sample.structure));
  Alcotest.(check int) "enums" 2
    (List.length sample.ontology.Metadata.enums);
  Alcotest.(check int) "attrs" 2
    (List.length sample.ontology.Metadata.attributes);
  let g1 = Structure.find_exn (Id.of_string "G1") sample.structure in
  Alcotest.(check bool) "formal parsed" true (g1.Node.formal <> None);
  let g2 = Structure.find_exn (Id.of_string "G2") sample.structure in
  Alcotest.(check int) "two annotations" 2 (List.length g2.Node.annotations);
  Alcotest.(check (list string))
    "S1 children" [ "G2"; "G3" ]
    (List.map Id.to_string
       (Structure.children Structure.Supported_by (Id.of_string "S1")
          sample.structure))

let test_sample_well_formed () =
  Alcotest.(check (list string)) "well-formed" []
    (List.map
       (fun d -> d.Diagnostic.code)
       (Wellformed.check sample.structure))

let test_metadata_valid () =
  Alcotest.(check (list string)) "metadata valid" []
    (List.map (fun d -> d.Diagnostic.code) (validate_metadata sample))

let test_roundtrip () =
  let printed = print sample in
  let reparsed = parse_exn printed in
  Alcotest.(check string) "title" sample.title reparsed.title;
  Alcotest.(check bool) "structure equal" true
    (Structure.equal sample.structure reparsed.structure);
  Alcotest.(check bool) "ontology equal" true
    (sample.ontology = reparsed.ontology)

let test_away_goal_syntax () =
  let c =
    parse_exn
      {|case "modular" {
          away-goal(PowertrainModule) AG1 "Powertrain is safe" { undeveloped }
          module(PowertrainModule) M1 "Powertrain safety case"
          contract(PowertrainModule) K1 "Interface contract"
        }|}
  in
  let ag = Structure.find_exn (Id.of_string "AG1") c.structure in
  (match ag.Node.node_type with
  | Node.Away_goal m ->
      Alcotest.(check string) "module ref" "PowertrainModule" (Id.to_string m)
  | _ -> Alcotest.fail "expected away goal");
  let printed = print c in
  let reparsed = parse_exn printed in
  Alcotest.(check bool) "round-trip" true
    (Structure.equal c.structure reparsed.structure)

let expect_error code text =
  match parse text with
  | Ok _ -> Alcotest.failf "expected %s for %s" code text
  | Error ds ->
      let cs = List.map (fun d -> d.Diagnostic.code) ds in
      if not (List.mem code cs) then
        Alcotest.failf "expected %s, got [%s]" code (String.concat "; " cs)

let test_syntax_errors () =
  List.iter (expect_error "dsl/syntax")
    [
      "";
      "case {}";
      {|case "x"|};
      {|case "x" { goal }|};
      {|case "x" { goal G1 }|};
      {|case "x" { goal G1 "t" { supported-by } }|};
      {|case "x" { widget W1 "t" }|};
      {|case "x" { goal G1 "t" } trailing|};
      {|case "x" { attr a (bogus) }|};
    ]

(* Hardening: pathological input must produce a diagnostic, never a
   stack overflow or unbounded allocation. *)
let test_pathological_input () =
  let deep = 100_000 in
  (* 100k-deep nested braces after a valid case header. *)
  expect_error "dsl/syntax"
    ({|case "x" { goal G1 "t" |} ^ String.make deep '{');
  (* 100k-deep parenthesised formula: must be rejected before it
     reaches the recursive-descent formula parser. *)
  expect_error "dsl/bad-formula"
    (Printf.sprintf {|case "x" { goal G1 "t is safe" { formal "%sa%s" } }|}
       (String.make deep '(') (String.make deep ')'));
  (* Oversized input: a multi-MB file is refused up front. *)
  expect_error "dsl/syntax"
    ({|case "x" { goal G1 "t" { undeveloped } } // |}
    ^ String.make (9 * 1024 * 1024) 'x')

let test_semantic_errors () =
  expect_error "dsl/duplicate-id"
    {|case "x" { goal G1 "a is safe" { undeveloped } goal G1 "b is safe" { undeveloped } }|};
  expect_error "dsl/bad-formula"
    {|case "x" { goal G1 "t is safe" { undeveloped formal "a &" } }|};
  expect_error "dsl/bad-annotation"
    {|case "x" { goal G1 "t is safe" { undeveloped meta "" } }|};
  expect_error "dsl/bad-evidence-kind"
    {|case "x" { evidence E1 vibes "description" }|};
  expect_error "dsl/bad-strength"
    {|case "x" { evidence E1 analysis "d" strength maybe }|};
  expect_error "dsl/duplicate-enum"
    {|case "x" { enum a { b } enum a { c } }|}

let test_error_location () =
  match parse ~filename:"case.arg" "case \"x\" {\n  bogus\n}" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error [ d ] -> (
      match d.Diagnostic.loc with
      | Some loc ->
          Alcotest.(check int) "line 2" 2 loc.Argus_core.Loc.start.Argus_core.Loc.line
      | None -> Alcotest.fail "expected a location")
  | Error _ -> Alcotest.fail "expected exactly one diagnostic"

let test_comments_and_multiline_strings () =
  let c =
    parse_exn
      "case \"x\" { // comment\n goal G1 \"spans\nlines and is safe\" { undeveloped } }"
  in
  let g = Structure.find_exn (Id.of_string "G1") c.structure in
  Alcotest.(check bool) "newline preserved" true
    (String.contains g.Node.text '\n')

(* --- Multi-module collections --- *)

let modular_text =
  {|
case Powertrain "Powertrain safety" {
  evidence PE1 analysis "Torque path analysis"
  goal PG1 "The powertrain is acceptably safe" { supported-by PSn1 }
  solution PSn1 "Analysis results" { evidence PE1 }
}

case Vehicle "Vehicle safety" {
  evidence VE1 review "Integration review"
  goal VG1 "The vehicle is acceptably safe" { supported-by S1 }
  strategy S1 "Argue over subsystems" { supported-by PG1, VG2 }
  away-goal(Powertrain) PG1 "The powertrain is acceptably safe"
  goal VG2 "The body is acceptably safe" { supported-by VSn1 }
  solution VSn1 "Review results" { evidence VE1 }
}
|}

let test_parse_collection () =
  match parse_collection ~filename:"modular.arg" modular_text with
  | Error ds -> Alcotest.failf "%s" (Format.asprintf "%a" Diagnostic.pp_report ds)
  | Ok cases ->
      Alcotest.(check int) "two cases" 2 (List.length cases);
      let names =
        List.filter_map
          (fun c -> Option.map Id.to_string c.module_name)
          cases
      in
      Alcotest.(check (list string)) "module names" [ "Powertrain"; "Vehicle" ]
        names

let test_collection_to_modular () =
  let cases = Result.get_ok (parse_collection modular_text) in
  match to_modular cases with
  | Error ds -> Alcotest.failf "%s" (Format.asprintf "%a" Diagnostic.pp_report ds)
  | Ok collection ->
      Alcotest.(check (list string))
        "modules" [ "Powertrain"; "Vehicle" ]
        (List.map Id.to_string (Argus_gsn.Modular.module_names collection));
      Alcotest.(check (list string)) "clean" []
        (List.map
           (fun d -> d.Diagnostic.code)
           (Argus_gsn.Modular.check collection))

let test_collection_detects_bad_away_goal () =
  let broken =
    {|case A "a" {
        goal GA "A is acceptably safe" { supported-by GX }
        away-goal(Missing) GX "cited from nowhere"
      }|}
  in
  let cases = Result.get_ok (parse_collection broken) in
  (* A single anonymous... this one is named?  No name: single case ->
     module Main. *)
  let collection = Result.get_ok (to_modular cases) in
  Alcotest.(check bool) "unknown module reported" true
    (List.mem "modular/unknown-module"
       (List.map
          (fun d -> d.Diagnostic.code)
          (Argus_gsn.Modular.check collection)))

let test_unnamed_module_rejected () =
  let cases =
    Result.get_ok
      (parse_collection
         {|case "first" { goal G1 "g is safe" { undeveloped } }
           case Second "second" { goal G2 "h is safe" { undeveloped } }|})
  in
  match to_modular cases with
  | Error ds ->
      Alcotest.(check bool) "unnamed flagged" true
        (List.exists (fun d -> d.Diagnostic.code = "dsl/unnamed-module") ds)
  | Ok _ -> Alcotest.fail "expected an error"

let test_duplicate_module_rejected () =
  let cases =
    Result.get_ok
      (parse_collection
         {|case M "first" { goal G1 "g is safe" { undeveloped } }
           case M "second" { goal G2 "h is safe" { undeveloped } }|})
  in
  match to_modular cases with
  | Error ds ->
      Alcotest.(check bool) "duplicate flagged" true
        (List.exists (fun d -> d.Diagnostic.code = "dsl/duplicate-module") ds)
  | Ok _ -> Alcotest.fail "expected an error"

let test_module_name_roundtrip () =
  let cases = Result.get_ok (parse_collection modular_text) in
  let first = List.hd cases in
  let printed = print first in
  let reparsed = parse_exn printed in
  Alcotest.(check bool) "module name preserved" true
    (reparsed.module_name = first.module_name);
  Alcotest.(check bool) "structure preserved" true
    (Structure.equal reparsed.structure first.structure)

(* --- Round-trip property over generated cases --- *)

let gen_case =
  let open QCheck.Gen in
  let* n_goals = int_range 1 6 in
  let* with_formal = list_size (return n_goals) bool in
  let* statuses =
    list_size (return n_goals)
      (oneofl [ Node.Developed; Node.Undeveloped; Node.Uninstantiated ])
  in
  let goals =
    List.mapi
      (fun i (formal, status) ->
        let id = Printf.sprintf "G%d" i in
        let base =
          Node.make ~id:(Id.of_string id) ~node_type:Node.Goal ~status
            ?formal:
              (if formal then Some (Argus_logic.Prop.of_string_exn "a -> b")
               else None)
            (Printf.sprintf "Claim %d is acceptably safe" i)
        in
        base)
      (List.combine with_formal statuses)
  in
  (* Chain them: G0 <- G1 <- ... so the structure is connected. *)
  let links =
    List.init (n_goals - 1) (fun i ->
        (Structure.Supported_by,
         Printf.sprintf "G%d" i,
         Printf.sprintf "G%d" (i + 1)))
  in
  let structure =
    Structure.of_nodes
      ~links:
        (List.map
           (fun (k, a, b) -> (k, a, b))
           links)
      goals
  in
  return
    {
      module_name = None;
      title = "generated";
      ontology = Metadata.ontology [];
      structure;
    }

let roundtrip_property =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:200
    (QCheck.make ~print:print gen_case) (fun c ->
      match parse (print c) with
      | Ok c' ->
          c.title = c'.title
          && Structure.equal c.structure c'.structure
          && c.ontology = c'.ontology
      | Error _ -> false)

let () =
  Alcotest.run "argus-dsl"
    [
      ( "parsing",
        [
          Alcotest.test_case "sample case" `Quick test_parse_sample;
          Alcotest.test_case "sample well-formed" `Quick test_sample_well_formed;
          Alcotest.test_case "metadata valid" `Quick test_metadata_valid;
          Alcotest.test_case "away goals and modules" `Quick
            test_away_goal_syntax;
          Alcotest.test_case "comments and multiline strings" `Quick
            test_comments_and_multiline_strings;
        ] );
      ( "errors",
        [
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
          Alcotest.test_case "pathological input" `Quick
            test_pathological_input;
          Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
          Alcotest.test_case "error location" `Quick test_error_location;
        ] );
      ( "modular",
        [
          Alcotest.test_case "parse collection" `Quick test_parse_collection;
          Alcotest.test_case "to modular" `Quick test_collection_to_modular;
          Alcotest.test_case "bad away goal" `Quick
            test_collection_detects_bad_away_goal;
          Alcotest.test_case "unnamed module" `Quick test_unnamed_module_rejected;
          Alcotest.test_case "duplicate module" `Quick
            test_duplicate_module_rejected;
          Alcotest.test_case "module name round-trip" `Quick
            test_module_name_roundtrip;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "sample round-trip" `Quick test_roundtrip;
          QCheck_alcotest.to_alcotest roundtrip_property;
        ] );
    ]
