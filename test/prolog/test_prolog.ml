open Argus_prolog
module Term = Argus_logic.Term

let term s = Result.get_ok (Term.of_string s)

let desert_bank =
  Program.of_string_exn
    {|
      % Figure 1 of the paper: premises that are individually true but
      % equivocate on 'bank'.
      is_a(desert_bank, bank).
      adjacent(bank, river).
      adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).
    |}

let family =
  Program.of_string_exn
    {|
      parent(tom, bob).
      parent(bob, ann).
      parent(bob, pat).
      ancestor(X, Y) :- parent(X, Y).
      ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
    |}

(* --- Parsing --- *)

let test_parse_program () =
  Alcotest.(check int) "clauses" 3 (List.length desert_bank);
  Alcotest.(check int) "predicates" 2 (List.length (Program.predicates desert_bank));
  let r = List.nth desert_bank 2 in
  Alcotest.(check int) "rule body" 2 (List.length r.Program.body);
  Alcotest.(check (list string))
    "clause vars" [ "X"; "Y"; "Z" ]
    (Program.clause_vars r)

let test_parse_roundtrip () =
  let text = Program.to_string family in
  let family' = Program.of_string_exn text in
  Alcotest.(check int) "same clause count" (List.length family)
    (List.length family');
  Alcotest.(check string) "stable text" text (Program.to_string family')

let test_parse_errors () =
  List.iter
    (fun s ->
      match Program.of_string s with
      | Ok _ -> Alcotest.failf "should not parse: %S" s
      | Error _ -> ())
    [ "f(a)"; "f(a) :- ."; "f(a,)."; ":- g."; "f(a)) ." ]

let test_comments_ignored () =
  let p = Program.of_string_exn "% just a comment\nf(a). % trailing\n" in
  Alcotest.(check int) "one clause" 1 (List.length p)

(* --- Figure 1 --- *)

let test_desert_bank_derivable () =
  (* The paper's point: the flawed conclusion is formally derivable. *)
  Alcotest.(check bool) "adjacent(desert_bank, river) 'proved'" true
    (Engine.provable desert_bank (term "adjacent(desert_bank, river)"));
  match Engine.prove desert_bank (term "adjacent(desert_bank, river)") with
  | None -> Alcotest.fail "expected a derivation"
  | Some d ->
      Alcotest.(check int) "uses the recursive clause" 2 d.Engine.clause_index;
      Alcotest.(check int) "two sub-goals" 2 (List.length d.Engine.children);
      Alcotest.(check int) "derivation size" 3 (Engine.derivation_size d)

let test_desert_bank_not_everything () =
  Alcotest.(check bool) "unrelated goal fails" false
    (Engine.provable desert_bank (term "adjacent(river, desert_bank)"))

(* --- Resolution --- *)

let test_facts () =
  Alcotest.(check bool) "fact" true (Engine.provable family (term "parent(tom, bob)"));
  Alcotest.(check bool) "non-fact" false
    (Engine.provable family (term "parent(bob, tom)"))

let test_recursive_rule () =
  Alcotest.(check bool) "transitive" true
    (Engine.provable family (term "ancestor(tom, pat)"))

let test_solution_enumeration () =
  let sols = Engine.solutions family (term "ancestor(tom, X)") in
  let values =
    List.map
      (fun bindings ->
        match bindings with
        | [ ("X", t) ] -> Term.to_string t
        | _ -> "?")
      sols
  in
  List.iter
    (fun expected ->
      if not (List.mem expected values) then
        Alcotest.failf "missing solution %s (got: %s)" expected
          (String.concat ", " values))
    [ "bob"; "ann"; "pat" ];
  Alcotest.(check int) "exactly three" 3 (List.length values)

let test_conjunction () =
  let sols =
    Engine.solve family [ term "parent(tom, X)"; term "parent(X, Y)" ]
  in
  let first = Seq.uncons sols in
  match first with
  | Some ((subst, derivs), _) ->
      Alcotest.(check int) "two derivations" 2 (List.length derivs);
      let bindings =
        Engine.bindings_for [ term "parent(tom, X)"; term "parent(X, Y)" ] subst
      in
      Alcotest.(check bool) "X=bob" true
        (List.assoc "X" bindings = Term.const "bob")
  | None -> Alcotest.fail "expected a solution"

let test_depth_bound_terminates () =
  (* A left-recursive looping program must not diverge. *)
  let looping = Program.of_string_exn "p(X) :- p(X). p(a)." in
  Alcotest.(check bool) "still finds the fact" true
    (Engine.provable ~max_depth:16 looping (term "p(a)"));
  let no_fact = Program.of_string_exn "p(X) :- p(X)." in
  Alcotest.(check bool) "pure loop is unprovable" false
    (Engine.provable ~max_depth:16 no_fact (term "p(a)"))

let test_variable_query () =
  let sols = Engine.solutions ~limit:5 family (term "parent(P, C)") in
  Alcotest.(check int) "three parent facts" 3 (List.length sols)

let test_freshening () =
  (* Two uses of the same clause must not share variables: classic
     grandparent query via one rule with variables X, Y. *)
  let p =
    Program.of_string_exn
      "g(X, Y) :- parent(X, Z), parent(Z, Y). parent(a, b). parent(b, c)."
  in
  Alcotest.(check bool) "grandparent" true (Engine.provable p (term "g(a, c)"));
  Alcotest.(check bool) "not reflexive" false (Engine.provable p (term "g(a, b)"))

(* --- Properties --- *)

(* Random ground-fact databases: provable iff the fact is in the
   database. *)
let fact_db_complete =
  QCheck.Test.make ~name:"ground facts are provable iff present" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 15) (int_bound 9)) (int_bound 9))
    (fun (facts, probe) ->
      let program =
        List.map
          (fun i -> Program.fact (Term.app "f" [ Term.const (Printf.sprintf "c%d" i) ]))
          facts
      in
      let goal = Term.app "f" [ Term.const (Printf.sprintf "c%d" probe) ] in
      Bool.equal (Engine.provable program goal) (List.mem probe facts))

(* Chain programs: edge facts c0->c1->...->cn plus transitive closure;
   path(c0, ck) provable for every k in range. *)
let chain_reachability =
  QCheck.Test.make ~name:"transitive closure over chains" ~count:50
    QCheck.(int_range 1 8)
    (fun n ->
      let edges =
        List.init n (fun i ->
            Program.fact
              (Term.app "edge"
                 [
                   Term.const (Printf.sprintf "c%d" i);
                   Term.const (Printf.sprintf "c%d" (i + 1));
                 ]))
      in
      let rules =
        [
          Program.rule
            (Term.app "path" [ Term.var "X"; Term.var "Y" ])
            [ Term.app "edge" [ Term.var "X"; Term.var "Y" ] ];
          Program.rule
            (Term.app "path" [ Term.var "X"; Term.var "Y" ])
            [
              Term.app "edge" [ Term.var "X"; Term.var "Z" ];
              Term.app "path" [ Term.var "Z"; Term.var "Y" ];
            ];
        ]
      in
      let program = edges @ rules in
      List.for_all
        (fun k ->
          Engine.provable program
            (Term.app "path" [ Term.const "c0"; Term.const (Printf.sprintf "c%d" k) ]))
        (List.init n (fun i -> i + 1))
      && not
           (Engine.provable program
              (Term.app "path" [ Term.const "c1"; Term.const "c0" ])))

(* --- Indexed engine vs. the naive reference --- *)

(* The indexed engine only skips clauses whose head unification was
   guaranteed to fail, so its solution stream must equal the naive
   engine's — same bindings, same order — up to the names of freshened
   variables. *)
let rec term_similar t1 t2 =
  match (t1, t2) with
  | Term.Var _, Term.Var _ -> true
  | Term.App (f, a1), Term.App (g, a2) ->
      Argus_core.Symbol.equal f g
      && List.compare_lengths a1 a2 = 0
      && List.for_all2 term_similar a1 a2
  | _ -> false

let bindings_similar b1 b2 =
  List.compare_lengths b1 b2 = 0
  && List.for_all2
       (fun (v1, t1) (v2, t2) -> String.equal v1 v2 && term_similar t1 t2)
       b1 b2

let take_bindings goal limit seq =
  let rec go n seq =
    if n <= 0 then []
    else
      match Seq.uncons seq with
      | None -> []
      | Some ((subst, _), rest) ->
          Engine.bindings_for [ goal ] subst :: go (n - 1) rest
  in
  go limit seq

(* Random databases mixing predicates, arities, compound and constant
   first arguments — the shapes first-argument indexing discriminates
   on — plus optional variable-bodied rules, probed with goals whose
   arguments may be variables. *)
let gen_program_and_goal =
  let open QCheck.Gen in
  let const i = Term.const (Printf.sprintf "c%d" i) in
  let atom =
    oneof
      [
        map const (int_range 0 3);
        map (fun i -> Term.app "s" [ const i ]) (int_range 0 2);
      ]
  in
  let fact =
    map2
      (fun name args -> Program.fact (Term.app name args))
      (oneofl [ "p"; "q"; "r" ])
      (list_size (int_range 1 2) atom)
  in
  let rule_pool =
    [
      Program.rule
        (Term.app "t" [ Term.var "X" ])
        [ Term.app "p" [ Term.var "X" ] ];
      Program.rule
        (Term.app "t" [ Term.var "X" ])
        [ Term.app "q" [ Term.var "X"; Term.var "Y" ] ];
      Program.rule
        (Term.app "t" [ Term.var "X" ])
        [ Term.app "p" [ Term.var "X" ]; Term.app "r" [ Term.var "X" ] ];
    ]
  in
  let goal_arg = oneof [ atom; map Term.var (oneofl [ "G"; "H" ]) ] in
  pair
    (pair (list_size (int_range 2 12) fact) bool)
    (pair (oneofl [ "p"; "q"; "r"; "t" ]) (list_size (int_range 1 2) goal_arg))
  |> map (fun ((facts, use_rules), (gname, gargs)) ->
         ((if use_rules then facts @ rule_pool else facts),
          Term.app gname gargs))

let indexed_agrees_with_naive =
  QCheck.Test.make ~name:"indexed engine = naive engine (solutions, in order)"
    ~count:300
    (QCheck.make
       ~print:(fun (p, g) ->
         Program.to_string p ^ " ?- " ^ Term.to_string g)
       gen_program_and_goal)
    (fun (program, goal) ->
      let idx =
        take_bindings goal 12 (Engine.solve ~max_depth:24 program [ goal ])
      in
      let naive =
        take_bindings goal 12
          (Engine.solve_naive ~max_depth:24 program [ goal ])
      in
      List.compare_lengths idx naive = 0
      && List.for_all2 bindings_similar idx naive)

let chain_program n =
  List.init n (fun i ->
      Program.fact
        (Term.app "edge"
           [
             Term.const (Printf.sprintf "c%d" i);
             Term.const (Printf.sprintf "c%d" (i + 1));
           ]))
  @ [
      Program.rule
        (Term.app "path" [ Term.var "X"; Term.var "Y" ])
        [ Term.app "edge" [ Term.var "X"; Term.var "Y" ] ];
      Program.rule
        (Term.app "path" [ Term.var "X"; Term.var "Y" ])
        [
          Term.app "edge" [ Term.var "X"; Term.var "Z" ];
          Term.app "path" [ Term.var "Z"; Term.var "Y" ];
        ];
    ]

let indexed_agrees_on_recursion =
  QCheck.Test.make
    ~name:"indexed engine = naive engine (recursive provability)" ~count:80
    QCheck.(pair (int_range 1 6) (pair (int_bound 7) (int_bound 7)))
    (fun (n, (a, b)) ->
      let program = chain_program n in
      let goal =
        Term.app "path"
          [
            Term.const (Printf.sprintf "c%d" a);
            Term.const (Printf.sprintf "c%d" b);
          ]
      in
      Bool.equal
        (not (Seq.is_empty (Engine.solve ~max_depth:32 program [ goal ])))
        (not
           (Seq.is_empty (Engine.solve_naive ~max_depth:32 program [ goal ]))))

(* Counter invariants on the Figure 1 workload (the same query the
   test/cli/trace.t cram test pins exact values for): every index
   lookup accounts for the whole program as hits + misses, lazy answer
   streams can only try admitted clauses, and each try is exactly one
   unification. *)
let test_index_counter_invariants () =
  let hits = Argus_obs.Counter.make "prolog.index_hits"
  and misses = Argus_obs.Counter.make "prolog.index_misses"
  and tries = Argus_obs.Counter.make "prolog.clause_tries"
  and unifs = Argus_obs.Counter.make "prolog.unifications" in
  let snap () =
    ( Argus_obs.Counter.value hits,
      Argus_obs.Counter.value misses,
      Argus_obs.Counter.value tries,
      Argus_obs.Counter.value unifs )
  in
  let h0, m0, t0, u0 = snap () in
  let goal = term "adjacent(desert_bank, river)" in
  let n = Seq.length (Engine.solve desert_bank [ goal ]) in
  Alcotest.(check int) "one solution" 1 n;
  let h1, m1, t1, u1 = snap () in
  let dh = h1 - h0 and dm = m1 - m0 and dt = t1 - t0 and du = u1 - u0 in
  Alcotest.(check int) "hits + misses cover the program at every lookup" 0
    ((dh + dm) mod List.length desert_bank);
  Alcotest.(check bool) "tries never exceed admitted candidates" true
    (dt <= dh);
  Alcotest.(check int) "each try is exactly one unification" dt du;
  Alcotest.(check bool) "the index pruned something" true (dm > 0)

(* Derivations are sound: replaying a derivation bottom-up, each node's
   goal must unify with its clause's head under some instantiation. *)
let derivations_replayable =
  QCheck.Test.make ~name:"derivation nodes match their clauses" ~count:50
    QCheck.(int_range 1 6)
    (fun n ->
      let program =
        List.init n (fun i ->
            Program.fact (Term.app "q" [ Term.const (Printf.sprintf "k%d" i) ]))
        @ [
            Program.rule
              (Term.app "all_q" [ Term.var "X" ])
              [ Term.app "q" [ Term.var "X" ] ];
          ]
      in
      match Engine.prove program (Term.app "all_q" [ Term.var "W" ]) with
      | None -> false
      | Some d ->
          let rec sound d =
            let clause = List.nth program d.Engine.clause_index in
            Term.unify clause.Program.head d.Engine.goal <> None
            && List.length d.Engine.children = List.length clause.Program.body
            && List.for_all sound d.Engine.children
          in
          sound d)

(* --- Compiled executor vs. the interpreter --- *)

module Exec = Argus_prolog.Exec
module Budget = Argus_rt.Budget

(* The compiled executor performs exactly the interpreter's search, so
   the solution streams must agree — same bindings, same order — up to
   the names of variables a solution leaves unbound (the executor reads
   those back as fresh [_G<n>] names). *)
let compiled_agrees_with_interpreter =
  QCheck.Test.make ~name:"compiled executor = interpreter (solutions, in order)"
    ~count:300
    (QCheck.make
       ~print:(fun (p, g) -> Program.to_string p ^ " ?- " ^ Term.to_string g)
       gen_program_and_goal)
    (fun (program, goal) ->
      let interp =
        take_bindings goal 12 (Engine.solve ~max_depth:24 program [ goal ])
      in
      let compiled =
        Exec.solutions_term ~max_depth:24 ~limit:12 program goal
      in
      List.compare_lengths interp compiled = 0
      && List.for_all2 bindings_similar interp compiled)

let compiled_agrees_on_recursion =
  QCheck.Test.make
    ~name:"compiled executor = interpreter (recursive provability)" ~count:80
    QCheck.(pair (int_range 1 6) (pair (int_bound 7) (int_bound 7)))
    (fun (n, (a, b)) ->
      let program = chain_program n in
      let goal =
        Term.app "path"
          [
            Term.const (Printf.sprintf "c%d" a);
            Term.const (Printf.sprintf "c%d" b);
          ]
      in
      Bool.equal
        (Engine.provable ~max_depth:32 program goal)
        (Exec.provable_term ~max_depth:32 program goal))

(* Both engines tick the budget once per clause candidate tried and
   truncate at the same solution cap, so under the same fuel they must
   stop at the same step count with the same partial answer list. *)
let compiled_budget_parity =
  QCheck.Test.make
    ~name:"compiled executor ticks the budget like the interpreter" ~count:150
    (QCheck.make
       ~print:(fun ((p, g), fuel) ->
         Printf.sprintf "%s ?- %s  (fuel %d)" (Program.to_string p)
           (Term.to_string g) fuel)
       QCheck.Gen.(pair gen_program_and_goal (int_range 1 40)))
    (fun ((program, goal), fuel) ->
      let b1 = Budget.make ~fuel () in
      let b2 = Budget.make ~fuel () in
      let interp =
        Engine.solutions ~max_depth:24 ~budget:b1 ~limit:8 program goal
      in
      let compiled =
        Exec.solutions_term ~max_depth:24 ~budget:b2 ~limit:8 program goal
      in
      List.compare_lengths interp compiled = 0
      && List.for_all2 bindings_similar interp compiled
      && Budget.steps b1 = Budget.steps b2
      && Bool.equal (Budget.exhausted b1 <> None) (Budget.exhausted b2 <> None))

(* Regression for the one-entry compile cache: alternating between two
   programs must not recompile on every call (the original cache held a
   single entry, so A/B/A/B thrashed it). *)
let test_compile_cache_holds_alternating_programs () =
  let compilations = Argus_obs.Counter.make "prolog.compilations" in
  let g_bank = term "adjacent(desert_bank, river)" in
  let g_family = term "parent(tom, X)" in
  (* Warm both cache entries. *)
  ignore (Exec.provable_term desert_bank g_bank);
  ignore (Exec.provable_term family g_family);
  let c0 = Argus_obs.Counter.value compilations in
  for _ = 1 to 10 do
    ignore (Exec.provable_term desert_bank g_bank);
    ignore (Exec.provable_term family g_family)
  done;
  Alcotest.(check int) "alternating programs never recompile" 0
    (Argus_obs.Counter.value compilations - c0)

(* The compiled-calls counter attributes work to the executor. *)
let test_compiled_calls_counted () =
  let calls = Argus_obs.Counter.make "prolog.compiled_calls" in
  let c0 = Argus_obs.Counter.value calls in
  ignore (Exec.provable_term desert_bank (term "adjacent(desert_bank, river)"));
  Alcotest.(check bool) "prolog.compiled_calls advanced" true
    (Argus_obs.Counter.value calls > c0)

let () =
  Alcotest.run "argus-prolog"
    [
      ( "parsing",
        [
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_comments_ignored;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "desert bank derivable" `Quick
            test_desert_bank_derivable;
          Alcotest.test_case "engine is not trivial" `Quick
            test_desert_bank_not_everything;
        ] );
      ( "resolution",
        [
          Alcotest.test_case "facts" `Quick test_facts;
          Alcotest.test_case "recursive rules" `Quick test_recursive_rule;
          Alcotest.test_case "enumeration" `Quick test_solution_enumeration;
          Alcotest.test_case "conjunction" `Quick test_conjunction;
          Alcotest.test_case "depth bound" `Quick test_depth_bound_terminates;
          Alcotest.test_case "variable query" `Quick test_variable_query;
          Alcotest.test_case "clause freshening" `Quick test_freshening;
          QCheck_alcotest.to_alcotest fact_db_complete;
          QCheck_alcotest.to_alcotest chain_reachability;
          QCheck_alcotest.to_alcotest derivations_replayable;
        ] );
      ( "indexing",
        [
          QCheck_alcotest.to_alcotest indexed_agrees_with_naive;
          QCheck_alcotest.to_alcotest indexed_agrees_on_recursion;
          Alcotest.test_case "counter invariants" `Quick
            test_index_counter_invariants;
        ] );
      ( "compiled",
        [
          QCheck_alcotest.to_alcotest compiled_agrees_with_interpreter;
          QCheck_alcotest.to_alcotest compiled_agrees_on_recursion;
          QCheck_alcotest.to_alcotest compiled_budget_parity;
          Alcotest.test_case "cache holds alternating programs" `Quick
            test_compile_cache_holds_alternating_programs;
          Alcotest.test_case "compiled calls counted" `Quick
            test_compiled_calls_counted;
        ] );
    ]
