(* Network-layer tests: endpoint parsing, the readiness engine (both
   backends), line-framing fuzz against a live server, the resilient
   client (retry, stale-pool detection, failover, deadlines), the
   chaos probes, connection capacity past the FD_SETSIZE ceiling, and
   a loadgen smoke run. *)

module Json = Argus_core.Json
module Prng = Argus_core.Prng
module Fault = Argus_rt.Fault
module Retry = Argus_rt.Retry
module Protocol = Argus_svc.Protocol
module Endpoint = Argus_svc.Endpoint
module Readiness = Argus_svc.Readiness
module Server = Argus_svc.Server
module Client = Argus_svc.Client
module Loadgen = Argus_svc.Loadgen
module Handlers = Argus_svc.Handlers
module Durable = Argus_store.Durable
module Store = Argus_store.Store
module Id = Argus_core.Id

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* CI's chaos matrix re-runs this binary with ARGUS_FAULT arming a
   network probe at 30% — every test here is written to hold under
   those ambient faults (raw-socket round-trips reconnect and resend
   on a forfeited connection; client-driven ones retry by design). *)
let () = Fault.configure_from_env ()

let tmp_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "argus-net-%s-%d.sock" tag (Unix.getpid ()))

let echo_handler (req : Protocol.request) ~budget:_ =
  Protocol.ok ~id:req.Protocol.id ~exit_code:0 []

let req_health id = Protocol.request ~id Protocol.Health

let request_line req = Json.to_string (Protocol.request_to_json req) ^ "\n"

(* --- Endpoint --- *)

let test_endpoint_parse () =
  let tcp s h p =
    match Endpoint.of_string s with
    | Ok (Endpoint.Tcp (h', p')) ->
        Alcotest.(check string) (s ^ " host") h h';
        Alcotest.(check int) (s ^ " port") p p'
    | Ok (Endpoint.Unix_path u) -> Alcotest.failf "%s parsed as unix %s" s u
    | Error e -> Alcotest.failf "%s refused: %s" s e
  in
  let unix s path =
    match Endpoint.of_string s with
    | Ok (Endpoint.Unix_path u) -> Alcotest.(check string) s path u
    | Ok (Endpoint.Tcp _) -> Alcotest.failf "%s parsed as tcp" s
    | Error e -> Alcotest.failf "%s refused: %s" s e
  in
  let bad s =
    match Endpoint.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  tcp "127.0.0.1:7777" "127.0.0.1" 7777;
  tcp "localhost:0" "localhost" 0;
  unix "/tmp/argus.sock" "/tmp/argus.sock";
  unix "./rel.sock" "./rel.sock";
  (* A name with no slash and no numeric port is a socket path too. *)
  unix "plain.sock" "plain.sock";
  bad "";
  bad ":7777";
  bad "host:99999";
  (* to_string round-trips through of_string. *)
  List.iter
    (fun ep ->
      match Endpoint.of_string (Endpoint.to_string ep) with
      | Ok ep' ->
          Alcotest.(check bool)
            (Endpoint.to_string ep ^ " round-trips")
            true (ep = ep')
      | Error e -> Alcotest.failf "round-trip refused: %s" e)
    [ Endpoint.Tcp ("10.0.0.1", 80); Endpoint.Unix_path "/tmp/x.sock" ]

let test_endpoint_connect_refused () =
  (* Nothing listens here: connect must fail with Error, not hang. *)
  (match Endpoint.connect ~timeout_ms:500. (Endpoint.Unix_path "/nonexistent/no.sock") with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error _ -> ());
  (* Port 0 is listen-only. *)
  match Endpoint.connect (Endpoint.Tcp ("127.0.0.1", 0)) with
  | Ok _ -> Alcotest.fail "connected to port 0"
  | Error _ -> ()

(* --- Readiness --- *)

let backends () =
  if Readiness.poll_available () then [ Readiness.Poll; Readiness.Select ]
  else [ Readiness.Select ]

let test_readiness_basic () =
  List.iter
    (fun backend ->
      let e = Readiness.create ~backend () in
      let r, w = Unix.pipe () in
      let r2, w2 = Unix.pipe () in
      Readiness.add e r;
      Readiness.add e r2;
      Readiness.add e r2;
      (* duplicate add is a no-op *)
      Alcotest.(check int) "two registered" 2 (Readiness.registered e);
      Alcotest.(check bool) "mem" true (Readiness.mem e r);
      (* Nothing readable: timeout comes back empty. *)
      Alcotest.(check int)
        "timeout is empty" 0
        (List.length (Readiness.wait e ~timeout_ms:10.));
      ignore (Unix.write_substring w "x" 0 1);
      let ready = Readiness.wait e ~timeout_ms:1000. in
      Alcotest.(check bool) "r is ready" true (List.mem r ready);
      Alcotest.(check bool) "r2 is not" false (List.mem r2 ready);
      (* EOF counts as readable: the owner must be woken to reap. *)
      ignore (Unix.write_substring w2 "y" 0 1);
      Unix.close w2;
      let b = Bytes.create 8 in
      ignore (Unix.read r2 b 0 8);
      let ready2 = Readiness.wait e ~timeout_ms:1000. in
      Alcotest.(check bool) "hup is readable" true (List.mem r2 ready2);
      Readiness.remove e r;
      Readiness.remove e r;
      Alcotest.(check int) "one left" 1 (Readiness.registered e);
      Alcotest.(check bool) "removed" false (Readiness.mem e r);
      List.iter Unix.close [ r; w; r2 ])
    (backends ())

(* The two backends must agree on which descriptors are ready. *)
let test_readiness_differential () =
  if not (Readiness.poll_available ()) then ()
  else begin
    let rng = Prng.create 7 in
    let n = 16 in
    let pipes = Array.init n (fun _ -> Unix.pipe ()) in
    let poll = Readiness.create ~backend:Readiness.Poll () in
    let sel = Readiness.create ~backend:Readiness.Select () in
    Array.iter
      (fun (r, _) ->
        Readiness.add poll r;
        Readiness.add sel r)
      pipes;
    for _ = 1 to 20 do
      (* Make a random subset readable... *)
      let armed =
        Array.to_list pipes
        |> List.filter (fun (_, w) ->
               if Prng.bernoulli rng 0.4 then begin
                 ignore (Unix.write_substring w "z" 0 1);
                 true
               end
               else false)
        |> List.map fst
      in
      let sort = List.sort compare in
      let from_poll = sort (Readiness.wait poll ~timeout_ms:50.) in
      let from_sel = sort (Readiness.wait sel ~timeout_ms:50.) in
      Alcotest.(check bool) "backends agree" true (from_poll = from_sel);
      Alcotest.(check bool)
        "exactly the armed set" true
        (from_poll = sort armed);
      (* ...then drain it for the next round. *)
      let b = Bytes.create 8 in
      List.iter (fun r -> ignore (Unix.read r b 0 8)) armed
    done;
    Array.iter
      (fun (r, w) ->
        Unix.close r;
        Unix.close w)
      pipes
  end

let test_readiness_nofile_raise () =
  let got = Readiness.nofile_raise 4096 in
  Alcotest.(check bool)
    (Printf.sprintf "soft limit is positive (%d)" got)
    true (got > 0);
  (* Idempotent and monotone: asking again cannot lower it. *)
  let again = Readiness.nofile_raise 4096 in
  Alcotest.(check bool) "stable" true (again >= got)

(* --- framing fuzz against a live server --- *)

let read_all_lines fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> `Closed (Buffer.contents buf)
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Open (Buffer.contents buf)
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        `Closed (Buffer.contents buf)
  in
  go ()

let responses_of data =
  String.split_on_char '\n' data
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Protocol.response_of_line l with
         | Ok r -> r
         | Error e -> Alcotest.failf "unparseable response %S: %s" l e)

(* Every hostile input must end in a typed refusal or a clean close —
   never a crash, never a hang.  The server stays serviceable after
   each one (probed with a fresh healthy connection). *)
let test_framing_fuzz () =
  let path = tmp_sock "fuzz" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    {
      (Server.default_config ~socket_path:path) with
      Server.jobs = 1;
      max_line_bytes = 4096;
      read_deadline_ms = 400.;
      idle_timeout_ms = 2_000.;
    }
  in
  let h = Server.spawn ~handler:echo_handler cfg in
  Fun.protect ~finally:(fun () -> ignore (Server.stop h)) @@ fun () ->
  let rng = Prng.create 1234 in
  let valid = request_line (req_health "fz") in
  let inputs =
    [
      (* interleaved garbage between valid frames *)
      valid ^ "%%%garbage%%%\n" ^ valid;
      (* not JSON at all *)
      "hello server\n";
      (* JSON but not an object *)
      "[1,2,3]\n";
      (* object but no op *)
      "{\"id\": \"x\"}\n";
      (* unknown op *)
      "{\"op\": \"frobnicate\"}\n";
      (* oversized line: longer than max_line_bytes *)
      "{\"op\": \"health\", \"pad\": \"" ^ String.make 8192 'a' ^ "\"}\n";
      (* NUL bytes and control characters *)
      "\x00\x01\x02\xff\xfe\n";
      (* a truncated frame, then EOF (tested via close below) *)
      String.sub valid 0 (String.length valid / 2);
    ]
    @ (* seeded byte flips of a valid frame *)
    List.init 24 (fun _ ->
        let b = Bytes.of_string valid in
        let pos = Prng.int rng (Bytes.length b - 1) in
        Bytes.set b pos (Char.chr (Prng.int rng 256));
        Bytes.to_string b)
  in
  List.iter
    (fun input ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      (try ignore (Unix.write_substring fd input 0 (String.length input))
       with Unix.Unix_error _ -> ());
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ());
      (match read_all_lines fd with
      | `Open _ ->
          (* Never hang: with the write side shut the server must
             conclude — answer and/or close — within the read grace. *)
          Alcotest.failf "server left the connection dangling on %S"
            (String.sub input 0 (min 40 (String.length input)))
      | `Closed data ->
          (* Whatever came back parses, and error outcomes are typed
             bad-requests — malformed input never crashes a worker. *)
          List.iter
            (fun (r : Protocol.response) ->
              match r.Protocol.outcome with
              | Ok _ -> ()
              | Error (code, _) ->
                  Alcotest.(check string) "typed refusal" "svc/bad-request"
                    code)
            (responses_of data)))
    inputs;
  (* The server survived the whole menu.  (Client-driven so the probe
     holds under CI's ambient fault matrix too.) *)
  let client = Client.create [ Endpoint.Unix_path path ] in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  match Client.call_request client (req_health "after-menu") with
  | Ok resp ->
      Alcotest.(check string) "still serving after the fuzz menu"
        "after-menu" resp.Protocol.rid
  | Error e ->
      Alcotest.failf "server wedged after the fuzz menu: %s"
        (Client.error_message e)

(* The pure decoder never raises, whatever the bytes. *)
let test_decoder_fuzz_never_raises () =
  let rng = Prng.create 99 in
  let valid = Json.to_string (Protocol.request_to_json (req_health "d")) in
  for _ = 1 to 2000 do
    let b = Bytes.of_string valid in
    let flips = 1 + Prng.int rng 4 in
    for _ = 1 to flips do
      Bytes.set b
        (Prng.int rng (Bytes.length b))
        (Char.chr (Prng.int rng 256))
    done;
    match Protocol.request_of_line (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decoder raised %s on %S" (Printexc.to_string e)
          (Bytes.to_string b)
  done

(* A slow-loris drip never completes a frame: the read deadline fires
   and the connection is closed with a typed refusal, while a parallel
   healthy client stays unaffected. *)
let test_slow_loris_reaped () =
  let path = tmp_sock "loris" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    {
      (Server.default_config ~socket_path:path) with
      Server.jobs = 1;
      read_deadline_ms = 300.;
    }
  in
  let h = Server.spawn ~handler:echo_handler cfg in
  Fun.protect ~finally:(fun () -> ignore (Server.stop h)) @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let line = request_line (req_health "drip") in
  let t0 = Unix.gettimeofday () in
  let dripped = ref 0 in
  (* Drip a byte every 60 ms: each byte resets nothing — the deadline
     clocks from the FIRST byte — so the reap must land ~300 ms in. *)
  (try
     for i = 0 to min 40 (String.length line - 1) do
       ignore (Unix.write_substring fd (String.make 1 line.[i]) 0 1);
       incr dripped;
       Unix.sleepf 0.06
     done
   with Unix.Unix_error _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "dripping stopped early (%d bytes, %.2f s)" !dripped
       elapsed)
    true
    (elapsed < 2.0);
  (match read_all_lines fd with
  | `Closed data ->
      List.iter
        (fun (r : Protocol.response) ->
          match r.Protocol.outcome with
          | Error ("svc/bad-request", _) -> ()
          | _ -> Alcotest.fail "expected a bad-request refusal")
        (responses_of data)
  | `Open _ -> Alcotest.fail "slow-loris connection not reaped");
  (* The healthy world kept turning. *)
  let client = Client.create [ Endpoint.Unix_path path ] in
  (match Client.call_request client (req_health "after") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "server wedged after loris: %s"
                 (Client.error_message e));
  Client.close client

(* --- resilient client --- *)

let with_tcp_server ?(handler = echo_handler) ?(jobs = 1) f =
  let cfg =
    {
      (Server.default_config ~socket_path:"") with
      Server.listen = Some "127.0.0.1:0";
      jobs;
    }
  in
  let h = Server.spawn ~handler cfg in
  let port =
    match Server.tcp_port h with
    | Some p -> p
    | None -> Alcotest.fail "no bound TCP port"
  in
  Fun.protect ~finally:(fun () -> ignore (Server.stop h)) @@ fun () ->
  f h port

let test_client_roundtrip_tcp () =
  with_tcp_server @@ fun _h port ->
  let client = Client.create [ Endpoint.Tcp ("127.0.0.1", port) ] in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  for i = 1 to 10 do
    match Client.call_request client (req_health (Printf.sprintf "h%d" i)) with
    | Ok resp ->
        Alcotest.(check string) "id echoed" (Printf.sprintf "h%d" i)
          resp.Protocol.rid
    | Error e -> Alcotest.failf "call %d failed: %s" i (Client.error_message e)
  done

let test_client_stale_pool_detected () =
  let path = tmp_sock "stale" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    { (Server.default_config ~socket_path:path) with Server.jobs = 1 }
  in
  let h1 = Server.spawn ~handler:echo_handler cfg in
  let client = Client.create [ Endpoint.Unix_path path ] in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  (match Client.call_request client (req_health "one") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first call failed: %s" (Client.error_message e));
  (* The connection is pooled; restart the server behind its back. *)
  ignore (Server.stop h1);
  let h2 = Server.spawn ~handler:echo_handler cfg in
  Fun.protect ~finally:(fun () -> ignore (Server.stop h2)) @@ fun () ->
  match Client.call_request client (req_health "two") with
  | Ok resp ->
      Alcotest.(check string) "answered by the new server" "two"
        resp.Protocol.rid
  | Error e ->
      Alcotest.failf "stale pooled connection not recovered: %s"
        (Client.error_message e)

let test_client_failover () =
  with_tcp_server @@ fun _h1 port1 ->
  with_tcp_server @@ fun h2 port2 ->
  let eps = [ Endpoint.Tcp ("127.0.0.1", port2); Endpoint.Tcp ("127.0.0.1", port1) ] in
  (* Preferred endpoint first: h2 answers. *)
  let client = Client.create eps in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  (match Client.call_request client (req_health "a") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "warm call failed: %s" (Client.error_message e));
  (* Kill the preferred endpoint: calls must fail over to port1. *)
  ignore (Server.stop h2);
  match Client.call_request client (req_health "b") with
  | Ok resp ->
      Alcotest.(check string) "failover answered" "b" resp.Protocol.rid
  | Error e -> Alcotest.failf "failover failed: %s" (Client.error_message e)

let test_client_deadline_bounded () =
  (* A listener that accepts and then never answers: the call must
     resolve within (about) the overall deadline, not hang. *)
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 8;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  let stop = Atomic.make false in
  let sink =
    Domain.spawn (fun () ->
        let conns = ref [] in
        while not (Atomic.get stop) do
          match Unix.select [ srv ] [] [] 0.1 with
          | [ _ ], _, _ ->
              let fd, _ = Unix.accept srv in
              conns := fd :: !conns
          | _ -> ()
        done;
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !conns)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join sink;
      Unix.close srv)
  @@ fun () ->
  let client =
    Client.create
      ~policy:
        {
          Retry.default_policy with
          Retry.max_attempts = 3;
          base_delay_ms = 25.;
          max_delay_ms = 100.;
        }
      ~overall_deadline_ms:1_500.
      [ Endpoint.Tcp ("127.0.0.1", port) ]
  in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match Client.call_request client (req_health "mute") with
  | Ok _ -> Alcotest.fail "a mute server cannot answer"
  | Error e -> (
      match e with
      | Client.Timeout _ | Client.Closed _ | Client.Connect_failed _ -> ()
      | Client.Bad_response m -> Alcotest.failf "unexpected bad-response: %s" m));
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "bounded by the budget (%.2f s)" elapsed)
    true (elapsed < 6.)

(* Every acked mutation advances the audit cursor, and the acks echo
   it — the client's duplicate-commit audit for retried patches. *)
let test_seq_echo_in_acks () =
  let store =
    match Durable.create () with
    | Ok (store, _) -> store
    | Error e -> Alcotest.failf "store create failed: %s" e
  in
  let handle = Handlers.with_store store in
  let source =
    {|case "t" {
  goal G1 "The system is acceptably safe" { supported-by S1 }
  strategy S1 "Argue over hazards" { supported-by G2 }
  goal G2 "Hazard H1 is mitigated"
}|}
  in
  let seq_of payload =
    match List.assoc_opt "seq" payload with
    | Some (Json.Num n) -> int_of_float n
    | _ -> Alcotest.fail "ack carries no seq"
  in
  let digest, s1 =
    match
      (handle (Protocol.request ~id:"p" ~source Protocol.Put) ~budget:None)
        .Protocol.outcome
    with
    | Ok (0, payload) ->
        ( (match List.assoc_opt "digest" payload with
          | Some (Json.Str d) -> d
          | _ -> Alcotest.fail "no digest"),
          seq_of payload )
    | _ -> Alcotest.fail "put failed"
  in
  Alcotest.(check int) "put advanced to 1" 1 s1;
  Alcotest.(check int) "Durable.seq agrees" 1 (Durable.seq store);
  let s2 =
    match
      (handle
         (Protocol.request ~id:"q" ~digest
            ~edits:[ Store.Set_text (Id.of_string "G2", "Hazard H1 is controlled") ]
            Protocol.Patch)
         ~budget:None)
        .Protocol.outcome
    with
    | Ok (0, payload) -> seq_of payload
    | _ -> Alcotest.fail "patch failed"
  in
  Alcotest.(check int) "patch advanced to 2" 2 s2;
  Alcotest.(check int) "Durable.seq advanced" 2 (Durable.seq store)

(* --- chaos probes: injected network faults never hang a client --- *)

let test_net_read_fault_resolves () =
  (* svc.net.read at 30%: each bite forfeits one connection before any
     bytes are consumed, so a retrying client always converges. *)
  Fault.with_spec
    { Fault.probe = "svc.net.read"; key = None; rate = 0.3; seed = 11 }
    (fun () ->
      with_tcp_server @@ fun _h port ->
      let client = Client.create [ Endpoint.Tcp ("127.0.0.1", port) ] in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      for i = 1 to 40 do
        match
          Client.call_request client (req_health (Printf.sprintf "c%d" i))
        with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "call %d lost under read faults: %s" i
              (Client.error_message e)
      done)

let test_net_accept_fault_resolves () =
  Fault.with_spec
    { Fault.probe = "svc.net.accept"; key = None; rate = 0.3; seed = 5 }
    (fun () ->
      with_tcp_server @@ fun _h port ->
      let client = Client.create [ Endpoint.Tcp ("127.0.0.1", port) ] in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      for i = 1 to 25 do
        match
          Client.call_request client (req_health (Printf.sprintf "a%d" i))
        with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "call %d lost under accept faults: %s" i
              (Client.error_message e)
      done)

(* --- capacity: past the FD_SETSIZE ceiling --- *)

let connect_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let roundtrip_raw fd id =
  let line = request_line (req_health id) in
  match Unix.write_substring fd line 0 (String.length line) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | _ ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      let buf = Buffer.create 128 in
      let chunk = Bytes.create 1024 in
      let rec go () =
        if String.contains (Buffer.contents buf) '\n' then
          Protocol.response_of_line
            (List.hd (String.split_on_char '\n' (Buffer.contents buf)))
        else
          match Unix.read fd chunk 0 1024 with
          | 0 -> Error "closed"
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              Error "timeout"
          | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
      in
      go ()

(* One serviced round-trip, reconnecting and resending on a forfeited
   connection (CI's ambient faults close conns at random); returns the
   descriptor that finally answered so the caller can keep holding
   it. *)
let rec served_conn ?(attempts = 15) port fd i =
  match roundtrip_raw fd (Printf.sprintf "cap%d-%d" i attempts) with
  | Ok _ -> fd
  | Error e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempts <= 1 then Alcotest.failf "conn %d unserved: %s" i e
      else served_conn ~attempts:(attempts - 1) port (connect_tcp port) i

(* More than 512 simultaneous TCP connections, every one of them
   serviced: the acceptance bar for dropping the FD_SETSIZE ceiling.
   Needs the poll backend and headroom in RLIMIT_NOFILE. *)
let test_over_512_conns () =
  let want = 560 in
  let limit = Readiness.nofile_raise 4096 in
  (* Server and harness share the process: each held connection costs
     two descriptors. *)
  if not (Readiness.poll_available ()) then Alcotest.skip ()
  else if limit < (2 * want) + 128 then Alcotest.skip ()
  else
    with_tcp_server ~jobs:2 @@ fun _h port ->
    let conns = ref [] in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !conns)
    @@ fun () ->
    for _ = 1 to want do
      conns := connect_tcp port :: !conns
    done;
    Alcotest.(check int) "all connections open" want (List.length !conns);
    (* Every single one must round-trip — the server really is holding
       (and serving) >512 concurrent conns, not quietly shedding. *)
    conns := List.mapi (fun i fd -> served_conn port fd i) !conns;
    Alcotest.(check int) "every connection serviced" want
      (List.length !conns)

(* Accept bookkeeping stays O(1) amortized as the held-connection count
   grows to 1k: opening-and-serving the second 500 must not be
   drastically slower than the first 500 (the old loop paid
   List.length + a full deadline scan per event, which curves this
   up).  The bound is deliberately loose — this is a complexity
   regression guard, not a latency benchmark. *)
let test_accept_o1_amortized_1k () =
  let total = 1000 in
  let limit = Readiness.nofile_raise 4096 in
  if not (Readiness.poll_available ()) then Alcotest.skip ()
  else if limit < (2 * total) + 128 then Alcotest.skip ()
  else
    with_tcp_server ~jobs:2 @@ fun _h port ->
    let conns = ref [] in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !conns)
    @@ fun () ->
    let batch n0 n1 =
      let t0 = Unix.gettimeofday () in
      for i = n0 to n1 - 1 do
        conns := served_conn port (connect_tcp port) i :: !conns
      done;
      Unix.gettimeofday () -. t0
    in
    let first = batch 0 (total / 2) in
    let second = batch (total / 2) total in
    Alcotest.(check bool)
      (Printf.sprintf
         "second 500 conns not superlinear (first %.3f s, second %.3f s)"
         first second)
      true
      (second < (8. *. Float.max first 0.05))

(* --- loadgen smoke --- *)

let test_loadgen_smoke () =
  with_tcp_server ~jobs:2 @@ fun _h port ->
  let cfg =
    {
      (Loadgen.default_config [ Endpoint.Tcp ("127.0.0.1", port) ]) with
      Loadgen.duration_s = 1.0;
      rate = 80.;
      clients = 2;
      chaos = true;
      seed = 7;
    }
  in
  let r = Loadgen.run cfg in
  Alcotest.(check int) "every request resolved" r.Loadgen.offered
    r.Loadgen.resolved;
  Alcotest.(check bool) "issued some load" true (r.Loadgen.offered > 10);
  Alcotest.(check bool) "mostly served" true
    (r.Loadgen.ok > r.Loadgen.offered / 2);
  Alcotest.(check bool) "misbehavers connected" true (r.Loadgen.chaos_conns > 0);
  (* The section the CLI publishes parses back as JSON. *)
  match Json.of_string (Json.to_string (Loadgen.result_to_json cfg r)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bench_serve section unparseable: %s" e

let () =
  Alcotest.run "argus-net"
    [
      ( "endpoint",
        [
          Alcotest.test_case "parse and round-trip" `Quick test_endpoint_parse;
          Alcotest.test_case "connect failures are typed" `Quick
            test_endpoint_connect_refused;
        ] );
      ( "readiness",
        [
          Alcotest.test_case "add/remove/wait on both backends" `Quick
            test_readiness_basic;
          Alcotest.test_case "poll and select agree" `Quick
            test_readiness_differential;
          Alcotest.test_case "nofile raise" `Quick test_readiness_nofile_raise;
        ] );
      ( "framing",
        [
          Alcotest.test_case "hostile frames refused or closed" `Quick
            test_framing_fuzz;
          Alcotest.test_case "decoder never raises" `Quick
            test_decoder_fuzz_never_raises;
          Alcotest.test_case "slow-loris reaped at the read deadline" `Quick
            test_slow_loris_reaped;
        ] );
      ( "client",
        [
          Alcotest.test_case "tcp round-trips" `Quick test_client_roundtrip_tcp;
          Alcotest.test_case "stale pooled connection recovered" `Quick
            test_client_stale_pool_detected;
          Alcotest.test_case "failover to the second endpoint" `Quick
            test_client_failover;
          Alcotest.test_case "deadline bounds a mute server" `Quick
            test_client_deadline_bounded;
          Alcotest.test_case "mutation acks echo seq" `Quick
            test_seq_echo_in_acks;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "read faults never lose a call" `Quick
            test_net_read_fault_resolves;
          Alcotest.test_case "accept faults never lose a call" `Quick
            test_net_accept_fault_resolves;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "serves >512 concurrent conns" `Quick
            test_over_512_conns;
          Alcotest.test_case "accept O(1) amortized at 1k conns" `Quick
            test_accept_o1_amortized_1k;
        ] );
      ( "loadgen",
        [ Alcotest.test_case "chaos smoke run" `Quick test_loadgen_smoke ] );
    ]
