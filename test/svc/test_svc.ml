module Json = Argus_core.Json
module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault
module Retry = Argus_rt.Retry
module Breaker = Argus_rt.Breaker
module Queue = Argus_svc.Queue
module Protocol = Argus_svc.Protocol
module Supervisor = Argus_svc.Supervisor

(* --- Queue --- *)

let test_queue_basic () =
  let q = Queue.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Queue.capacity q);
  Alcotest.(check bool) "push a" true (Queue.push q "a" = `Accepted);
  Alcotest.(check bool) "push b" true (Queue.push q "b" = `Accepted);
  Alcotest.(check bool) "push c shed at high-water" true
    (Queue.push q "c" = `Shed);
  Alcotest.(check (option string)) "fifo" (Some "a") (Queue.pop q);
  Alcotest.(check bool) "room again" true (Queue.push q "c" = `Accepted);
  Queue.close q;
  Alcotest.(check bool) "push after close sheds" true
    (Queue.push q "d" = `Shed);
  Alcotest.(check (option string)) "drains b" (Some "b") (Queue.pop q);
  Alcotest.(check (option string)) "drains c" (Some "c") (Queue.pop q);
  Alcotest.(check (option string)) "then empty" None (Queue.pop q);
  Alcotest.(check bool) "closed" true (Queue.is_closed q)

let test_queue_zero_capacity () =
  let q = Queue.create ~capacity:0 in
  Alcotest.(check bool) "sheds everything" true (Queue.push q 1 = `Shed);
  let q' = Queue.create ~capacity:(-3) in
  Alcotest.(check int) "negative clamps to 0" 0 (Queue.capacity q');
  Alcotest.(check bool) "negative sheds too" true (Queue.push q' 1 = `Shed)

(* --- Retry --- *)

let test_retry_delay_deterministic () =
  let p = { Retry.default_policy with seed = 11 } in
  for attempt = 1 to 8 do
    let d1 = Retry.delay_ms p ~key:"k" ~attempt in
    let d2 = Retry.delay_ms p ~key:"k" ~attempt in
    Alcotest.(check (float 0.)) "pure in (policy, key, attempt)" d1 d2;
    Alcotest.(check bool) "within cap" true (d1 <= p.Retry.max_delay_ms);
    Alcotest.(check bool) "positive" true (d1 > 0.)
  done;
  let near = Retry.delay_ms p ~key:"k" ~attempt:1 in
  let far = Retry.delay_ms p ~key:"other" ~attempt:1 in
  (* Different keys draw different jitter (with these constants). *)
  Alcotest.(check bool) "keyed jitter" true (near <> far)

let test_retry_run_recovers () =
  let p =
    { Retry.max_attempts = 5; base_delay_ms = 10.; max_delay_ms = 1000.;
      multiplier = 2.0; jitter = 0.5; seed = 3 }
  in
  let sleeps = ref [] in
  let sleep_ms d = sleeps := d :: !sleeps in
  let calls = ref 0 in
  let r =
    Retry.run ~policy:p ~sleep_ms ~key:"connect" (fun () ->
        incr calls;
        if !calls < 3 then failwith "transient";
        "up")
  in
  Alcotest.(check bool) "succeeds" true (r = Ok "up");
  Alcotest.(check int) "third attempt" 3 !calls;
  let expected =
    [ Retry.delay_ms p ~key:"connect" ~attempt:1;
      Retry.delay_ms p ~key:"connect" ~attempt:2 ]
  in
  Alcotest.(check (list (float 0.))) "slept the schedule" expected
    (List.rev !sleeps)

let test_retry_run_gives_up () =
  let p = { Retry.default_policy with max_attempts = 3 } in
  let calls = ref 0 in
  let r =
    Retry.run ~policy:p ~sleep_ms:ignore ~key:"k" (fun () ->
        incr calls;
        failwith "down")
  in
  (match r with
  | Error (Failure _) -> ()
  | _ -> Alcotest.fail "expected the last exception");
  Alcotest.(check int) "all attempts used" 3 !calls

let test_retry_non_retryable () =
  let calls = ref 0 in
  let r =
    Retry.run ~sleep_ms:ignore
      ~retryable:(function Failure _ -> false | _ -> true)
      ~key:"k"
      (fun () ->
        incr calls;
        failwith "fatal")
  in
  Alcotest.(check bool) "aborted" true (Result.is_error r);
  Alcotest.(check int) "single attempt" 1 !calls

(* --- Breaker --- *)

let test_breaker_transitions () =
  let clock = ref 0. in
  let b =
    Breaker.make ~failures:2 ~cooldown_ms:100. ~now_ms:(fun () -> !clock)
      ~name:"check" ()
  in
  Alcotest.(check bool) "closed admits" true (Breaker.admit b);
  Breaker.failure b;
  Alcotest.(check bool) "one failure still closed" true
    (Breaker.state b = Breaker.Closed);
  Breaker.failure b;
  Alcotest.(check bool) "threshold opens" true (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open refuses" false (Breaker.admit b);
  clock := 99.;
  Alcotest.(check bool) "cooldown not elapsed" false (Breaker.admit b);
  clock := 101.;
  Alcotest.(check bool) "half-open admits one trial" true (Breaker.admit b);
  Alcotest.(check bool) "trial in flight refuses" false (Breaker.admit b);
  Breaker.success b;
  Alcotest.(check bool) "trial success closes" true
    (Breaker.state b = Breaker.Closed);
  (* Success reset the consecutive count: two more failures to re-open. *)
  Breaker.failure b;
  Breaker.failure b;
  Alcotest.(check bool) "re-opens" true (Breaker.state b = Breaker.Open);
  clock := 250.;
  Alcotest.(check bool) "half-open again" true (Breaker.admit b);
  Breaker.failure b;
  Alcotest.(check bool) "trial failure re-opens" true
    (Breaker.state b = Breaker.Open);
  clock := 400.;
  Alcotest.(check bool) "trial granted" true (Breaker.admit b);
  Breaker.cancel b;
  Alcotest.(check bool) "cancelled trial grantable again" true
    (Breaker.admit b);
  Breaker.success b;
  Alcotest.(check bool) "closed at the end" true
    (Breaker.state b = Breaker.Closed)

let test_breaker_disabled () =
  let b = Breaker.make ~failures:0 ~name:"any" () in
  for _ = 1 to 100 do
    Breaker.failure b
  done;
  Alcotest.(check bool) "never opens" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "always admits" true (Breaker.admit b)

(* --- Protocol --- *)

let test_protocol_roundtrip () =
  let req =
    Protocol.request ~id:"r7" ~source:{|case "t" {}|} ~filename:"t.arg"
      ~goal:"safe" ~ruleset:"denney-pai" ~lints:true ~deadline_ms:250.
      ~fuel:9000 Protocol.Prove
  in
  let line = Json.to_string (Protocol.request_to_json req) in
  (match Protocol.request_of_line line with
  | Ok req' -> Alcotest.(check bool) "request round-trips" true (req = req')
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let minimal = Protocol.request Protocol.Health in
  (match
     Protocol.request_of_line
       (Json.to_string (Protocol.request_to_json minimal))
   with
  | Ok m ->
      Alcotest.(check string) "default filename" "<request>"
        m.Protocol.filename;
      Alcotest.(check string) "default ruleset" "standard" m.Protocol.ruleset
  | Error e -> Alcotest.failf "minimal decode failed: %s" e);
  let ok = Protocol.ok ~id:"r7" ~exit_code:1 [ ("n", Json.int 3) ] in
  (match Protocol.response_of_line (Protocol.response_to_line ok) with
  | Ok r ->
      Alcotest.(check bool) "ok response round-trips" true (r = ok);
      Alcotest.(check int) "exit from payload" 1
        (Protocol.exit_code_of_response r)
  | Error e -> Alcotest.failf "response decode failed: %s" e);
  let err = Protocol.error ~id:"r8" ~code:"svc/overloaded" "queue full" in
  (match Protocol.response_of_line (Protocol.response_to_line err) with
  | Ok r ->
      Alcotest.(check bool) "error response round-trips" true (r = err);
      Alcotest.(check int) "errors exit 2" 2 (Protocol.exit_code_of_response r)
  | Error e -> Alcotest.failf "error decode failed: %s" e)

let test_protocol_rejects () =
  let bad s =
    match Protocol.request_of_line s with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error _ -> ()
  in
  bad "not json";
  bad {|["op", "check"]|};
  bad {|{"id": "r1"}|};
  bad {|{"op": "frobnicate"}|};
  bad {|{"op": "check", "deadline_ms": "soon"}|};
  bad {|{"op": "check", "deadline_ms": -5}|};
  (* fuel must be a non-negative integral number in range:
     int_of_float on anything else would mint a bogus budget. *)
  bad {|{"op": "check", "fuel": "lots"}|};
  bad {|{"op": "check", "fuel": -3}|};
  bad {|{"op": "check", "fuel": 1.5}|};
  bad {|{"op": "check", "fuel": 1e300}|}

let test_protocol_telemetry_fields () =
  (* trace / trace_id / format survive the wire. *)
  let req =
    Protocol.request ~id:"t1" ~source:"" ~trace:true ~trace_id:"abc"
      ~format:"json" Protocol.Stats
  in
  (match
     Protocol.request_of_line (Json.to_string (Protocol.request_to_json req))
   with
  | Ok r ->
      Alcotest.(check bool) "trace flag" true r.Protocol.trace;
      Alcotest.(check (option string))
        "trace_id" (Some "abc") r.Protocol.trace_id;
      Alcotest.(check (option string)) "format" (Some "json") r.Protocol.format
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* Omitted fields default: no trace, no id, no format — and the
     request line does not mention them at all. *)
  let minimal = Protocol.request ~source:"" Protocol.Check in
  let line = Json.to_string (Protocol.request_to_json minimal) in
  (match Protocol.request_of_line line with
  | Ok r ->
      Alcotest.(check bool) "no trace by default" false r.Protocol.trace;
      Alcotest.(check (option string)) "no trace_id" None r.Protocol.trace_id
  | Error e -> Alcotest.failf "minimal decode failed: %s" e);
  (match Json.of_string line with
  | Ok j ->
      Alcotest.(check bool) "quiet when off" true
        (Json.member "trace" j = None && Json.member "trace_id" j = None)
  | Error e -> Alcotest.failf "unparseable line: %s" e);
  (* Unknown fields are tolerated — an older server must accept
     requests from a newer client. *)
  (match
     Protocol.request_of_line
       {|{"op": "check", "trace_id": "z9", "hologram": true, "shards": [3]}|}
   with
  | Ok r ->
      Alcotest.(check (option string))
        "known fields still parse" (Some "z9") r.Protocol.trace_id
  | Error e -> Alcotest.failf "unknown fields rejected: %s" e);
  (* Responses: the echoed trace id round-trips and stays out of the
     payload proper. *)
  let ok = Protocol.ok ~trace_id:"t7" ~id:"r1" ~exit_code:0 [ ("n", Json.int 1) ] in
  (match Protocol.response_of_line (Protocol.response_to_line ok) with
  | Ok r ->
      Alcotest.(check (option string))
        "ok trace id echoed" (Some "t7") r.Protocol.rtrace_id;
      (match r.Protocol.outcome with
      | Ok (_, payload) ->
          Alcotest.(check bool) "trace_id not in payload" false
            (List.mem_assoc "trace_id" payload);
          Alcotest.(check bool) "payload intact" true
            (List.assoc_opt "n" payload = Some (Json.int 1))
      | Error _ -> Alcotest.fail "expected ok outcome")
  | Error e -> Alcotest.failf "response decode failed: %s" e);
  let err =
    Protocol.with_trace_id (Some "t8")
      (Protocol.error ~id:"r2" ~code:"svc/overloaded" "busy")
  in
  (match Protocol.response_of_line (Protocol.response_to_line err) with
  | Ok r ->
      Alcotest.(check (option string))
        "error trace id stamped" (Some "t8") r.Protocol.rtrace_id
  | Error e -> Alcotest.failf "error decode failed: %s" e)

(* --- Supervisor --- *)

(* Replies arrive on worker domains; collect them under a lock. *)
let make_sink () =
  let mu = Mutex.create () in
  let acc = ref [] in
  let reply r = Mutex.protect mu (fun () -> acc := r :: !acc) in
  let all () = Mutex.protect mu (fun () -> List.rev !acc) in
  (reply, all)

let echo_handler (req : Protocol.request) ~budget:_ =
  Protocol.ok ~id:req.Protocol.id ~exit_code:0 []

let req_check id = Protocol.request ~id ~source:"" Protocol.Check

let is_internal_error (r : Protocol.response) =
  match r.Protocol.outcome with
  | Error ("rt/internal-error", _) -> true
  | _ -> false

let config ~jobs ?(queue_capacity = 64) ?(breaker_failures = 5)
    ?(breaker_cooldown_ms = 1000.) ?budget () =
  let budget =
    match budget with
    | Some b -> b
    | None ->
        { Supervisor.default_deadline_ms = None; max_deadline_ms = None;
          max_fuel = None }
  in
  { Supervisor.default_config with
    Supervisor.jobs; queue_capacity; breaker_failures; breaker_cooldown_ms;
    budget }

let test_supervisor_echo () =
  List.iter
    (fun jobs ->
      let sup =
        Supervisor.create ~config:(config ~jobs ()) ~handler:echo_handler ()
      in
      let reply, all = make_sink () in
      for i = 1 to 20 do
        Supervisor.submit sup (req_check (Printf.sprintf "r%d" i)) ~reply
      done;
      Supervisor.await_idle sup;
      let rs = all () in
      Alcotest.(check int)
        (Printf.sprintf "all replied at jobs=%d" jobs)
        20 (List.length rs);
      List.iter
        (fun r ->
          Alcotest.(check int) "ok" 0 (Protocol.exit_code_of_response r))
        rs;
      Alcotest.(check int) "no restarts" 0 (Supervisor.restarts sup);
      Alcotest.(check bool) "clean drain" true
        (Supervisor.drain sup ~deadline_ms:60_000.))
    [ 1; 2; 8 ]

(* The acceptance scenario: a fault injected at the [svc.request] probe,
   keyed by request id, kills the worker handling the victim.  The
   victim gets a typed error, every other queued request completes, the
   restart counter records exactly one restart — at any parallelism. *)
let test_supervisor_crash_victim () =
  List.iter
    (fun jobs ->
      Fault.with_spec
        { Fault.probe = "svc.request"; key = Some "boom"; rate = 1.; seed = 42 }
        (fun () ->
          let sup =
            Supervisor.create ~config:(config ~jobs ()) ~handler:echo_handler ()
          in
          let reply, all = make_sink () in
          for i = 1 to 5 do
            Supervisor.submit sup (req_check (Printf.sprintf "r%d" i)) ~reply
          done;
          Supervisor.submit sup (req_check "boom") ~reply;
          for i = 6 to 10 do
            Supervisor.submit sup (req_check (Printf.sprintf "r%d" i)) ~reply
          done;
          Supervisor.await_idle sup;
          let rs = all () in
          Alcotest.(check int)
            (Printf.sprintf "all replied at jobs=%d" jobs)
            11 (List.length rs);
          let victims, survivors =
            List.partition is_internal_error rs
          in
          Alcotest.(check int) "one victim" 1 (List.length victims);
          Alcotest.(check string) "the keyed request" "boom"
            (List.hd victims).Protocol.rid;
          List.iter
            (fun r ->
              Alcotest.(check int) "survivor ok" 0
                (Protocol.exit_code_of_response r))
            survivors;
          Alcotest.(check int) "exactly one restart" 1
            (Supervisor.restarts sup);
          Alcotest.(check bool) "drains after the crash" true
            (Supervisor.drain sup ~deadline_ms:60_000.)))
    [ 1; 2; 8 ]

(* Rate-based injection draws purely from (seed, probe, request id): the
   set of victims — and so the restart count — is identical whatever the
   parallelism.  Breakers are disabled so a run of consecutive victims
   cannot turn into refusals. *)
let test_supervisor_fault_schedule_deterministic () =
  let ids = List.init 20 (fun i -> Printf.sprintf "req-%02d" i) in
  let run jobs =
    Fault.with_spec
      { Fault.probe = "svc.request"; key = None; rate = 0.5; seed = 7 }
      (fun () ->
        let sup =
          Supervisor.create
            ~config:(config ~jobs ~breaker_failures:0 ())
            ~handler:echo_handler ()
        in
        let reply, all = make_sink () in
        List.iter (fun id -> Supervisor.submit sup (req_check id) ~reply) ids;
        Supervisor.await_idle sup;
        let victims =
          all () |> List.filter is_internal_error
          |> List.map (fun r -> r.Protocol.rid)
          |> List.sort compare
        in
        let restarts = Supervisor.restarts sup in
        ignore (Supervisor.drain sup ~deadline_ms:60_000.);
        (victims, restarts))
  in
  let victims1, restarts1 = run 1 in
  Alcotest.(check bool) "schedule fires somewhere" true (victims1 <> []);
  Alcotest.(check bool) "and spares somewhere" true
    (List.length victims1 < List.length ids);
  Alcotest.(check int) "restarts = victims" (List.length victims1) restarts1;
  List.iter
    (fun jobs ->
      let victims, restarts = run jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "same victims at jobs=%d" jobs)
        victims1 victims;
      Alcotest.(check int)
        (Printf.sprintf "same restarts at jobs=%d" jobs)
        restarts1 restarts)
    [ 2; 8 ]

let test_supervisor_sheds () =
  let sup =
    Supervisor.create
      ~config:(config ~jobs:2 ~queue_capacity:0 ())
      ~handler:echo_handler ()
  in
  let reply, all = make_sink () in
  for i = 1 to 4 do
    Supervisor.submit sup (req_check (Printf.sprintf "r%d" i)) ~reply
  done;
  (* Shedding replies synchronously: no need to wait. *)
  let rs = all () in
  Alcotest.(check int) "all shed" 4 (List.length rs);
  List.iter
    (fun (r : Protocol.response) ->
      match r.Protocol.outcome with
      | Error ("svc/overloaded", _) -> ()
      | _ -> Alcotest.fail "expected svc/overloaded")
    rs;
  Alcotest.(check bool) "drains" true (Supervisor.drain sup ~deadline_ms:60_000.)

let test_supervisor_breaker () =
  Fault.with_spec
    { Fault.probe = "svc.request"; key = Some "bad"; rate = 1.; seed = 1 }
    (fun () ->
      let clock = Atomic.make 0. in
      let cfg =
        { Supervisor.default_config with
          Supervisor.jobs = 1; queue_capacity = 16; breaker_failures = 2;
          breaker_cooldown_ms = 100.;
          now_ms = (fun () -> Atomic.get clock);
          (* Sleeping (worker backoff) does not advance the clock here:
             the cooldown is driven explicitly below. *)
          sleep_ms = (fun _ -> ()) }
      in
      let sup = Supervisor.create ~config:cfg ~handler:echo_handler () in
      let reply, all = make_sink () in
      let submit_and_wait id =
        Supervisor.submit sup (req_check id) ~reply;
        Supervisor.await_idle sup
      in
      submit_and_wait "bad";
      submit_and_wait "bad";
      Alcotest.(check bool) "breaker opened for check" true
        (List.mem_assoc "check" (Supervisor.breaker_states sup)
        && List.assoc "check" (Supervisor.breaker_states sup) = Breaker.Open);
      submit_and_wait "fine";
      (match all () with
      | [ _; _; r3 ] -> (
          match r3.Protocol.outcome with
          | Error ("svc/breaker-open", _) -> ()
          | _ -> Alcotest.fail "expected svc/breaker-open while open")
      | rs -> Alcotest.failf "expected 3 replies, got %d" (List.length rs));
      Atomic.set clock 150.;
      submit_and_wait "fine2";
      submit_and_wait "fine3";
      (match List.rev (all ()) with
      | r5 :: r4 :: _ ->
          Alcotest.(check int) "half-open trial succeeded" 0
            (Protocol.exit_code_of_response r4);
          Alcotest.(check int) "breaker closed again" 0
            (Protocol.exit_code_of_response r5)
      | _ -> Alcotest.fail "missing replies");
      Alcotest.(check bool) "closed in health" true
        (List.assoc "check" (Supervisor.breaker_states sup) = Breaker.Closed);
      ignore (Supervisor.drain sup ~deadline_ms:60_000.))

(* Server-side fuel clamp: the handler sees a budget already clamped to
   the policy maximum, however much the client asked for. *)
let test_supervisor_budget_clamp () =
  let ticks_handler (req : Protocol.request) ~budget =
    let n = ref 0 in
    (match budget with
    | None -> n := -1
    | Some b ->
        while Budget.tick b ~engine:"svc-test" && !n < 10_000 do
          incr n
        done);
    Protocol.ok ~id:req.Protocol.id ~exit_code:0 [ ("ticks", Json.int !n) ]
  in
  let budget =
    { Supervisor.default_deadline_ms = None; max_deadline_ms = None;
      max_fuel = Some 100 }
  in
  let sup =
    Supervisor.create ~config:(config ~jobs:1 ~budget ()) ~handler:ticks_handler
      ()
  in
  let reply, all = make_sink () in
  let ticks_of (r : Protocol.response) =
    match r.Protocol.outcome with
    | Ok (_, payload) -> (
        match List.assoc_opt "ticks" payload with
        | Some (Json.Num n) -> int_of_float n
        | _ -> Alcotest.fail "no ticks in payload")
    | Error _ -> Alcotest.fail "unexpected error"
  in
  Supervisor.submit sup
    (Protocol.request ~id:"greedy" ~fuel:1_000_000 Protocol.Check)
    ~reply;
  Supervisor.await_idle sup;
  Supervisor.submit sup
    (Protocol.request ~id:"modest" ~fuel:50 Protocol.Check)
    ~reply;
  Supervisor.await_idle sup;
  Supervisor.submit sup (Protocol.request ~id:"none" Protocol.Check) ~reply;
  Supervisor.await_idle sup;
  (match all () with
  | [ greedy; modest; none ] ->
      Alcotest.(check int) "client fuel clamped by server max" 100
        (ticks_of greedy);
      Alcotest.(check int) "smaller client fuel honoured" 50 (ticks_of modest);
      Alcotest.(check int) "no fuel, no budget" (-1) (ticks_of none)
  | rs -> Alcotest.failf "expected 3 replies, got %d" (List.length rs));
  ignore (Supervisor.drain sup ~deadline_ms:60_000.)

let test_supervisor_drain () =
  let sup =
    Supervisor.create ~config:(config ~jobs:2 ()) ~handler:echo_handler ()
  in
  let reply, all = make_sink () in
  for i = 1 to 8 do
    Supervisor.submit sup (req_check (Printf.sprintf "r%d" i)) ~reply
  done;
  Alcotest.(check bool) "drain completes" true
    (Supervisor.drain sup ~deadline_ms:60_000.);
  Alcotest.(check int) "queued work finished before exit" 8
    (List.length (all ()));
  Alcotest.(check bool) "no longer accepting" false (Supervisor.accepting sup);
  Supervisor.submit sup (req_check "late") ~reply;
  (match List.rev (all ()) with
  | last :: _ -> (
      match last.Protocol.outcome with
      | Error ("svc/draining", _) -> ()
      | _ -> Alcotest.fail "expected svc/draining after drain")
  | [] -> Alcotest.fail "no replies");
  Alcotest.(check bool) "drain idempotent" true
    (Supervisor.drain sup ~deadline_ms:60_000.)

(* --- Server --- *)

module Server = Argus_svc.Server

(* Regression for the half-close path: a client that shuts down its
   write side after sending (shutdown(SHUT_WR)) must still receive a
   response for every request it got in.  The server treats EOF as
   no-more-requests — the fd stays open until nothing is in flight on
   that connection, then the acceptor closes it (which is what ends the
   read loop below). *)
let test_server_half_close () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "argus-svc-hc-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    { (Server.default_config ~socket_path:path) with Server.jobs = 1 }
  in
  let h = Server.spawn ~handler:echo_handler cfg in
  Fun.protect ~finally:(fun () -> ignore (Server.stop h)) @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  let send r =
    let s = Json.to_string (Protocol.request_to_json r) ^ "\n" in
    ignore (Unix.write_substring fd s 0 (String.length s))
  in
  send (req_check "hc1");
  send (req_check "hc2");
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec read_all () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_all ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Alcotest.fail "timed out waiting for replies after half-close"
  in
  read_all ();
  let ids =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match Protocol.response_of_line l with
           | Ok r -> r.Protocol.rid
           | Error e -> Alcotest.failf "bad response line %S: %s" l e)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "both replies delivered, then EOF"
    [ "hc1"; "hc2" ] ids

(* A tiny line-oriented client against a spawned server: send request
   values, read one response line per request. *)
let with_server ?(jobs = 1) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "argus-svc-tm-%d-%d.sock" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1000.) mod 100000))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg = { (Server.default_config ~socket_path:path) with Server.jobs } in
  let h = Server.spawn ~handler:echo_handler cfg in
  Fun.protect ~finally:(fun () -> ignore (Server.stop h)) @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  let ic = Unix.in_channel_of_descr fd in
  let roundtrip req =
    let s = Json.to_string (Protocol.request_to_json req) ^ "\n" in
    ignore (Unix.write_substring fd s 0 (String.length s));
    match input_line ic with
    | line -> (
        match Protocol.response_of_line line with
        | Ok r -> r
        | Error e -> Alcotest.failf "bad response line %S: %s" line e)
    | exception End_of_file -> Alcotest.fail "server closed early"
  in
  f roundtrip

let test_server_trace_ids () =
  with_server @@ fun roundtrip ->
  (* Without a client id the server mints a deterministic sequence... *)
  let r1 = roundtrip (req_check "a") in
  let r2 = roundtrip (Protocol.request Protocol.Health) in
  Alcotest.(check (option string)) "minted t1" (Some "t1") r1.Protocol.rtrace_id;
  Alcotest.(check (option string))
    "health gets one too" (Some "t2") r2.Protocol.rtrace_id;
  (* ...and a client-supplied id is echoed untouched. *)
  let r3 =
    roundtrip (Protocol.request ~id:"c" ~source:"" ~trace_id:"corr-42"
                 Protocol.Check)
  in
  Alcotest.(check (option string))
    "client id echoed" (Some "corr-42") r3.Protocol.rtrace_id

let test_server_stats_schema () =
  with_server @@ fun roundtrip ->
  ignore (roundtrip (req_check "warm"));
  let r = roundtrip (Protocol.request Protocol.Stats) in
  (match r.Protocol.outcome with
  | Error (code, msg) -> Alcotest.failf "stats failed: %s %s" code msg
  | Ok (_, payload) ->
      let has k = List.mem_assoc k payload in
      List.iter
        (fun k ->
          Alcotest.(check bool) (Printf.sprintf "payload has %s" k) true
            (has k))
        [ "ready"; "queue_depth"; "queue_capacity"; "jobs"; "restarts";
          "workers"; "breakers"; "counters"; "gauges"; "latency_ms";
          "flight_recorded"; "now_ms" ];
      (match List.assoc "latency_ms" payload with
      | Json.Obj by_op ->
          (* The warm-up check was observed under both the aggregate
             and its per-op key. *)
          List.iter
            (fun key ->
              match List.assoc_opt key by_op with
              | Some (Json.Obj stats) ->
                  List.iter
                    (fun f ->
                      Alcotest.(check bool)
                        (Printf.sprintf "%s has %s" key f)
                        true (List.mem_assoc f stats))
                    [ "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
              | _ -> Alcotest.failf "latency_ms missing %s" key)
            [ "all"; "check" ]
      | _ -> Alcotest.fail "latency_ms is not an object");
      (* The whole payload survives a JSON round-trip. *)
      let j = Json.Obj payload in
      (match Json.of_string (Json.to_string j) with
      | Ok j' ->
          Alcotest.(check bool) "stats json round-trips" true (Json.equal j j')
      | Error e -> Alcotest.failf "stats json unparseable: %s" e));
  (* Prometheus format: raw exposition text in the payload body. *)
  let rp = roundtrip (Protocol.request ~format:"prometheus" Protocol.Stats) in
  (match rp.Protocol.outcome with
  | Ok (_, payload) -> (
      match List.assoc_opt "body" payload with
      | Some (Json.Str body) ->
          Alcotest.(check bool) "exposition text" true
            (String.length body > 0 && String.sub body 0 6 = "# TYPE")
      | _ -> Alcotest.fail "prometheus body missing")
  | Error (code, msg) -> Alcotest.failf "prometheus failed: %s %s" code msg);
  (* An unknown format is a typed client error, not a crash. *)
  let rb = roundtrip (Protocol.request ~format:"xml" Protocol.Stats) in
  match rb.Protocol.outcome with
  | Error ("svc/bad-request", _) -> ()
  | _ -> Alcotest.fail "unknown format should be svc/bad-request"

let test_server_traced_request () =
  with_server @@ fun roundtrip ->
  let r = roundtrip (Protocol.request ~id:"tr" ~source:"" ~trace:true
                       Protocol.Check)
  in
  match r.Protocol.outcome with
  | Error (code, msg) -> Alcotest.failf "traced check failed: %s %s" code msg
  | Ok (_, payload) -> (
      match List.assoc_opt "trace" payload with
      | None -> Alcotest.fail "traced request carries no trace"
      | Some tj -> (
          match Argus_obs.Trace.span_of_json tj with
          | None -> Alcotest.fail "trace does not parse as a span tree"
          | Some span ->
              Alcotest.(check string)
                "root span is the op" "svc.check"
                span.Argus_obs.Span.name;
              Alcotest.(check bool)
                "span has a duration" true
                (span.Argus_obs.Span.dur_ns >= 0)))

(* --- store ops: protocol codec, stateless rejection, stateful mode --- *)

module Store = Argus_store.Store
module Durable = Argus_store.Durable
module Handlers = Argus_svc.Handlers
module Id = Argus_core.Id

let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_protocol_edits_roundtrip () =
  let edits =
    [
      Store.Set_text (Id.of_string "G1", "new text");
      Store.Add_node
        (Argus_gsn.Node.make ~id:(Id.of_string "Sn1")
           ~node_type:Argus_gsn.Node.Solution
           ~status:Argus_gsn.Node.Undeveloped
           ~evidence:(Id.of_string "E1") "Test report");
      Store.Remove_node (Id.of_string "G2");
      Store.Link
        (Argus_gsn.Structure.Supported_by, Id.of_string "G1",
         Id.of_string "Sn1");
      Store.Unlink
        (Argus_gsn.Structure.In_context_of, Id.of_string "G1",
         Id.of_string "C1");
    ]
  in
  let req = Protocol.request ~digest:"abc123" ~edits Protocol.Patch in
  (match
     Protocol.request_of_line (Json.to_string (Protocol.request_to_json req))
   with
  | Ok r ->
      Alcotest.(check (option string))
        "digest survives the wire" (Some "abc123") r.Protocol.digest;
      Alcotest.(check bool) "edits round-trip" true (r.Protocol.edits = edits)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let bad s =
    match Protocol.request_of_line s with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error _ -> ()
  in
  bad {|{"op": "patch", "edits": "not a list"}|};
  bad {|{"op": "patch", "edits": [{"op": "explode"}]}|};
  bad {|{"op": "patch", "edits": [{"op": "set-text", "id": "G1"}]}|};
  bad {|{"op": "patch", "edits": [{"op": "add-node", "id": "X", "type": "widget", "text": "t"}]}|};
  bad {|{"op": "patch", "edits": [{"op": "link", "kind": "sideways", "src": "a", "dst": "b"}]}|}

(* A server without a store must reject the stateful ops with a clear
   bad-request, not crash or hang. *)
let test_stateless_rejects_store_ops () =
  List.iter
    (fun op ->
      let req = Protocol.request ~id:"r1" op in
      match (Handlers.handle req ~budget:None).Protocol.outcome with
      | Error (code, msg) ->
          Alcotest.(check string)
            (Protocol.op_to_string op ^ " code")
            "svc/bad-request" code;
          Alcotest.(check bool)
            (Protocol.op_to_string op ^ " says how to enable")
            true
            (string_contains msg "--store")
      | Ok _ ->
          Alcotest.failf "stateless %s must be rejected"
            (Protocol.op_to_string op))
    [ Protocol.Put; Protocol.Patch; Protocol.Verdict ]

let source =
  {|case "t" {
  goal G1 "The system is acceptably safe" { supported-by S1 }
  strategy S1 "Argue over hazards" { supported-by G2 }
  goal G2 "Hazard H1 is mitigated"
}|}

let payload_str payload k =
  match List.assoc_opt k payload with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "payload misses string %S" k

let memory_store () =
  match Durable.create () with
  | Ok (store, _) -> store
  | Error e -> Alcotest.failf "in-memory durable create failed: %s" e

let test_with_store_lifecycle () =
  let store = memory_store () in
  let handle = Handlers.with_store store in
  let put = Protocol.request ~id:"p1" ~source Protocol.Put in
  let digest =
    match (handle put ~budget:None).Protocol.outcome with
    | Ok (0, payload) -> payload_str payload "digest"
    | Ok (n, _) -> Alcotest.failf "put exited %d" n
    | Error (c, m) -> Alcotest.failf "put failed: %s %s" c m
  in
  (* check still works through the stateful handler (delegation). *)
  (match
     (handle (Protocol.request ~id:"c1" ~source Protocol.Check) ~budget:None)
       .Protocol.outcome
   with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "delegated check failed: %s %s" c m);
  let patch =
    Protocol.request ~id:"p2" ~digest
      ~edits:[ Store.Set_text (Id.of_string "G2", "Hazard H1 is controlled") ]
      Protocol.Patch
  in
  let digest' =
    match (handle patch ~budget:None).Protocol.outcome with
    | Ok (0, payload) -> payload_str payload "digest"
    | Ok (n, _) -> Alcotest.failf "patch exited %d" n
    | Error (c, m) -> Alcotest.failf "patch failed: %s %s" c m
  in
  Alcotest.(check bool) "patch moves the digest" true (digest <> digest');
  (match
     (handle (Protocol.request ~id:"v1" ~digest:digest' Protocol.Verdict)
        ~budget:None)
       .Protocol.outcome
   with
  | Ok (_, payload) ->
      Alcotest.(check bool)
        "verdict has a report" true
        (List.mem_assoc "report" payload);
      Alcotest.(check bool)
        "verdict has a confidence" true
        (List.mem_assoc "confidence" payload)
  | Error (c, m) -> Alcotest.failf "verdict failed: %s %s" c m);
  (* Unknown digests carry their own code; digest-less requests are
     malformed input, a bad request. *)
  (match
     (handle (Protocol.request ~id:"v2" ~digest:"feedface" Protocol.Verdict)
        ~budget:None)
       .Protocol.outcome
   with
  | Error ("svc/unknown-digest", _) -> ()
  | Error (code, _) ->
      Alcotest.failf "unknown digest must be svc/unknown-digest, got %s" code
  | Ok _ -> Alcotest.fail "unknown digest must be an error");
  match
    (handle (Protocol.request ~id:"v3" Protocol.Verdict) ~budget:None)
      .Protocol.outcome
  with
  | Error ("svc/bad-request", _) -> ()
  | _ -> Alcotest.fail "digest-less verdict must be svc/bad-request"

(* Each store refusal keeps its own wire code end-to-end: unknown
   digest, malformed batch, and the read-only degraded mode are three
   different client situations (re-put, fix the batch, wait for an
   operator) and must be distinguishable without parsing prose. *)
let test_store_wire_errors () =
  let store = memory_store () in
  let handle = Handlers.with_store store in
  let digest =
    match
      (handle (Protocol.request ~id:"p" ~source Protocol.Put) ~budget:None)
        .Protocol.outcome
    with
    | Ok (0, payload) -> payload_str payload "digest"
    | _ -> Alcotest.fail "put failed"
  in
  (* patch against a digest nobody ever stored *)
  (match
     (handle
        (Protocol.request ~id:"e1" ~digest:"feedface"
           ~edits:[ Store.Set_text (Id.of_string "G1", "x") ]
           Protocol.Patch)
        ~budget:None)
       .Protocol.outcome
   with
  | Error ("svc/unknown-digest", msg) ->
      Alcotest.(check bool) "names the digest" true
        (string_contains msg "feedface")
  | Error (code, _) -> Alcotest.failf "expected svc/unknown-digest, got %s" code
  | Ok _ -> Alcotest.fail "patch of unknown digest must fail");
  (* a batch referencing a node the case does not have *)
  (match
     (handle
        (Protocol.request ~id:"e2" ~digest
           ~edits:[ Store.Set_text (Id.of_string "G999", "x") ]
           Protocol.Patch)
        ~budget:None)
       .Protocol.outcome
   with
  | Error ("svc/bad-request", _) -> ()
  | Error (code, _) -> Alcotest.failf "expected svc/bad-request, got %s" code
  | Ok _ -> Alcotest.fail "bad edit batch must fail");
  Alcotest.(check bool)
    "store refusals leave the store active" true
    (Durable.mode store = Durable.Active)

(* An I/O failure on the durable write path trips read-only: the write
   answers svc/store-read-only with the cause, reads keep working, and
   the mode is sticky. *)
let test_store_read_only_wire_error () =
  let dir =
    Filename.temp_file "argus-svc-ro" "" |> fun f ->
    Sys.remove f;
    f
  in
  let store =
    match Durable.create ~dir ~sync:Argus_store.Wal.Always () with
    | Ok (store, _) -> store
    | Error e -> Alcotest.failf "durable create failed: %s" e
  in
  let handle = Handlers.with_store store in
  let digest =
    match
      (handle (Protocol.request ~id:"p" ~source Protocol.Put) ~budget:None)
        .Protocol.outcome
    with
    | Ok (0, payload) -> payload_str payload "digest"
    | _ -> Alcotest.fail "put failed"
  in
  (* Inject a WAL failure on the next append (seq 2). *)
  let spec =
    match Argus_rt.Fault.parse_spec "store.wal.append@2:1:7" with
    | Ok s -> s
    | Error e -> Alcotest.failf "bad fault spec: %s" e
  in
  Argus_rt.Fault.with_spec spec (fun () ->
      match
        (handle
           (Protocol.request ~id:"w" ~digest
              ~edits:[ Store.Set_text (Id.of_string "G2", "x") ]
              Protocol.Patch)
           ~budget:None)
          .Protocol.outcome
      with
      | Error ("svc/store-read-only", msg) ->
          Alcotest.(check bool) "carries the cause" true
            (string_contains msg "store.wal.append")
      | Error (code, m) ->
          Alcotest.failf "expected svc/store-read-only, got %s (%s)" code m
      | Ok _ -> Alcotest.fail "write after disk fault must fail");
  (* Sticky: the fault is gone but the mode stays, and says so. *)
  (match
     (handle
        (Protocol.request ~id:"w2" ~digest
           ~edits:[ Store.Set_text (Id.of_string "G2", "y") ]
           Protocol.Patch)
        ~budget:None)
       .Protocol.outcome
   with
  | Error ("svc/store-read-only", _) -> ()
  | _ -> Alcotest.fail "read-only mode must be sticky");
  (* Reads still answer from the consistent in-memory state. *)
  (match
     (handle (Protocol.request ~id:"v" ~digest Protocol.Verdict) ~budget:None)
       .Protocol.outcome
   with
  | Ok (_, payload) ->
      Alcotest.(check string) "verdict digest" digest
        (payload_str payload "digest")
  | Error (c, m) -> Alcotest.failf "read in read-only mode failed: %s %s" c m);
  (* The stats surface exposes the mode and the cause. *)
  (match Durable.stats_json store with
  | Json.Obj fields ->
      Alcotest.(check bool) "mode is read-only" true
        (List.assoc_opt "mode" fields = Some (Json.Str "read-only"));
      (match List.assoc_opt "cause" fields with
      | Some (Json.Str cause) ->
          Alcotest.(check bool) "cause names the probe" true
            (string_contains cause "store.wal.append")
      | _ -> Alcotest.fail "read-only stats must carry a cause")
  | _ -> Alcotest.fail "stats_json must be an object");
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let () =
  Alcotest.run "argus-svc"
    [
      ( "queue",
        [
          Alcotest.test_case "bounded fifo" `Quick test_queue_basic;
          Alcotest.test_case "zero capacity" `Quick test_queue_zero_capacity;
        ] );
      ( "retry",
        [
          Alcotest.test_case "deterministic delays" `Quick
            test_retry_delay_deterministic;
          Alcotest.test_case "recovers" `Quick test_retry_run_recovers;
          Alcotest.test_case "gives up" `Quick test_retry_run_gives_up;
          Alcotest.test_case "non-retryable" `Quick test_retry_non_retryable;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "transitions" `Quick test_breaker_transitions;
          Alcotest.test_case "disabled" `Quick test_breaker_disabled;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "rejects bad requests" `Quick
            test_protocol_rejects;
          Alcotest.test_case "telemetry fields" `Quick
            test_protocol_telemetry_fields;
          Alcotest.test_case "edit codec round-trips and rejects" `Quick
            test_protocol_edits_roundtrip;
        ] );
      ( "store-ops",
        [
          Alcotest.test_case "stateless server rejects store ops" `Quick
            test_stateless_rejects_store_ops;
          Alcotest.test_case "put/patch/verdict lifecycle" `Quick
            test_with_store_lifecycle;
          Alcotest.test_case "typed wire errors" `Quick
            test_store_wire_errors;
          Alcotest.test_case "read-only degraded mode on the wire" `Quick
            test_store_read_only_wire_error;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "echo at jobs 1/2/8" `Quick test_supervisor_echo;
          Alcotest.test_case "crash victim gets typed error" `Quick
            test_supervisor_crash_victim;
          Alcotest.test_case "fault schedule deterministic" `Quick
            test_supervisor_fault_schedule_deterministic;
          Alcotest.test_case "load shedding" `Quick test_supervisor_sheds;
          Alcotest.test_case "breaker open/half-open/close" `Quick
            test_supervisor_breaker;
          Alcotest.test_case "budget clamping" `Quick
            test_supervisor_budget_clamp;
          Alcotest.test_case "graceful drain" `Quick test_supervisor_drain;
        ] );
      ( "server",
        [
          Alcotest.test_case "half-close still gets replies" `Quick
            test_server_half_close;
          Alcotest.test_case "trace ids minted and echoed" `Quick
            test_server_trace_ids;
          Alcotest.test_case "stats schema round-trips" `Quick
            test_server_stats_schema;
          Alcotest.test_case "traced request returns span tree" `Quick
            test_server_traced_request;
        ] );
    ]
