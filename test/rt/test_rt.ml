module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

(* --- Budget --- *)

let test_unlimited () =
  let b = Budget.unlimited in
  Alcotest.(check bool) "not limited" false (Budget.is_limited b);
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "tick always ok" true (Budget.tick b ~engine:"t")
  done;
  Alcotest.(check bool)
    "note_solution always ok" true
    (Budget.note_solution b ~engine:"t");
  Alcotest.(check int) "depth cap absent" max_int (Budget.depth_cap b);
  Alcotest.(check bool) "never exhausted" true (Budget.exhausted b = None);
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map
       (fun d -> Argus_core.Diagnostic.(d.message))
       (Budget.diagnostics b))

let test_fuel () =
  let b = Budget.make ~fuel:5 () in
  Alcotest.(check bool) "limited" true (Budget.is_limited b);
  for _ = 1 to 5 do
    Alcotest.(check bool) "within fuel" true (Budget.tick b ~engine:"t")
  done;
  Alcotest.(check bool) "fuel gone" false (Budget.tick b ~engine:"t");
  Alcotest.(check bool) "stays exhausted" false (Budget.tick b ~engine:"t");
  (match Budget.exhausted b with
  | Some { Budget.reason = Budget.Fuel; engine = "t"; _ } -> ()
  | Some e ->
      Alcotest.failf "wrong reason %s" (Budget.reason_to_string e.Budget.reason)
  | None -> Alcotest.fail "not exhausted");
  match Budget.diagnostics b with
  | [ d ] ->
      Alcotest.(check string)
        "code" "rt/budget-exhausted" d.Argus_core.Diagnostic.code
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_deadline () =
  (* An already-passed deadline: the first wall-clock consultation
     (every 256 ticks) must stop the run. *)
  let b = Budget.make ~deadline_ms:0.000001 () in
  let stopped = ref false in
  (try
     for _ = 1 to 100_000 do
       if not (Budget.tick b ~engine:"t") then begin
         stopped := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "deadline stops ticking" true !stopped;
  match Budget.exhausted b with
  | Some { Budget.reason = Budget.Deadline; _ } -> ()
  | _ -> Alcotest.fail "expected deadline exhaustion"

let test_solutions () =
  let b = Budget.make ~max_solutions:2 () in
  Alcotest.(check bool) "first" true (Budget.note_solution b ~engine:"t");
  Alcotest.(check bool) "cap hit" false (Budget.note_solution b ~engine:"t");
  match Budget.exhausted b with
  | Some { Budget.reason = Budget.Solutions; _ } -> ()
  | _ -> Alcotest.fail "expected solution-cap exhaustion"

let test_depth_nonfatal () =
  let b = Budget.make ~max_depth:3 () in
  Alcotest.(check int) "cap" 3 (Budget.depth_cap b);
  Budget.note_depth b ~engine:"t";
  Alcotest.(check bool) "pruned" true (Budget.depth_pruned b);
  Alcotest.(check bool)
    "depth is non-fatal" true
    (Budget.tick b ~engine:"t");
  Alcotest.(check bool) "no fatal exhaustion" true (Budget.exhausted b = None);
  Alcotest.(check int) "one warning" 1 (List.length (Budget.diagnostics b))

let test_spec () =
  Alcotest.(check bool)
    "unlimited spec" true
    (Budget.spec_is_unlimited Budget.spec_unlimited);
  let spec = { Budget.spec_unlimited with Budget.fuel = Some 7 } in
  Alcotest.(check bool) "fuel spec limited" false (Budget.spec_is_unlimited spec);
  let b = Budget.of_spec spec in
  for _ = 1 to 7 do
    ignore (Budget.tick b ~engine:"t")
  done;
  Alcotest.(check bool) "of_spec honours fuel" false (Budget.tick b ~engine:"t")

let test_nonpositive_limits_absent () =
  let b = Budget.make ~fuel:0 ~max_depth:(-1) () in
  Alcotest.(check bool) "zero fuel means no fuel limit" false
    (Budget.is_limited b);
  Alcotest.(check int) "negative depth means no cap" max_int
    (Budget.depth_cap b)

(* --- Fault --- *)

let test_parse_spec () =
  (match Fault.parse_spec "pool.chunk:0.5:7" with
  | Ok { Fault.probe = "pool.chunk"; key = None; rate; seed = 7 }
    when rate = 0.5 ->
      ()
  | Ok _ -> Alcotest.fail "wrong fields"
  | Error e -> Alcotest.fail e);
  (match Fault.parse_spec "check.file@g3.arg:1:42" with
  | Ok { Fault.probe = "check.file"; key = Some "g3.arg"; rate; seed = 42 }
    when rate = 1.0 ->
      ()
  | Ok _ -> Alcotest.fail "wrong keyed fields"
  | Error e -> Alcotest.fail e);
  (match Fault.parse_spec "sat.decide:0.25" with
  | Ok { Fault.seed = 0; rate; _ } when rate = 0.25 -> ()
  | _ -> Alcotest.fail "seed should default to 0");
  List.iter
    (fun s ->
      match Fault.parse_spec s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ ""; "probe"; "probe:x"; "probe:-0.5"; ":1"; "probe:1:zzz"; "a:1:2:3" ]

let test_point_off_is_noop () =
  Fault.set None;
  Fault.point "anything";
  Fault.point ~key:"k" "anything"

let test_point_fires () =
  let spec = { Fault.probe = "p"; key = None; rate = 1.0; seed = 0 } in
  Fault.with_spec spec (fun () ->
      Alcotest.check_raises "unkeyed fires" (Fault.Injected "p") (fun () ->
          Fault.point "p");
      (* A non-matching probe name never fires. *)
      Fault.point "q");
  Alcotest.(check bool) "spec restored" true (Fault.current () = None)

let test_point_keyed () =
  let spec =
    { Fault.probe = "p"; key = Some "hit"; rate = 1.0; seed = 0 }
  in
  Fault.with_spec spec (fun () ->
      Fault.point ~key:"miss" "p";
      (* An unkeyed call never matches a keyed spec. *)
      Fault.point "p";
      Alcotest.check_raises "matching key fires" (Fault.Injected "p")
        (fun () -> Fault.point ~key:"hit" "p"))

let test_keyed_draw_deterministic () =
  (* For a fractional rate the decision for a given key is a pure
     function of (seed, probe, key): repeated runs agree exactly. *)
  let spec = { Fault.probe = "p"; key = None; rate = 0.5; seed = 13 } in
  let fires () =
    List.filter
      (fun k ->
        Fault.with_spec spec (fun () ->
            try
              Fault.point ~key:k "p";
              false
            with Fault.Injected _ -> true))
      (List.init 64 string_of_int)
  in
  let a = fires () and b = fires () in
  Alcotest.(check (list string)) "same keys fire every run" a b;
  Alcotest.(check bool) "roughly half fire" true
    (List.length a > 16 && List.length a < 48)

let test_rate_zero_never_fires () =
  let spec = { Fault.probe = "p"; key = None; rate = 0.0; seed = 1 } in
  Fault.with_spec spec (fun () ->
      for i = 1 to 200 do
        Fault.point ~key:(string_of_int i) "p"
      done)

let () =
  Alcotest.run "argus-rt"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_unlimited;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "solution cap" `Quick test_solutions;
          Alcotest.test_case "depth non-fatal" `Quick test_depth_nonfatal;
          Alcotest.test_case "spec round-trip" `Quick test_spec;
          Alcotest.test_case "non-positive limits" `Quick
            test_nonpositive_limits_absent;
        ] );
      ( "fault",
        [
          Alcotest.test_case "parse_spec" `Quick test_parse_spec;
          Alcotest.test_case "off is no-op" `Quick test_point_off_is_noop;
          Alcotest.test_case "fires at rate 1" `Quick test_point_fires;
          Alcotest.test_case "keyed matching" `Quick test_point_keyed;
          Alcotest.test_case "keyed draws deterministic" `Quick
            test_keyed_draw_deterministic;
          Alcotest.test_case "rate 0 never fires" `Quick
            test_rate_zero_never_fires;
        ] );
    ]
