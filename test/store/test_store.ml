(* The incremental store against its oracle: after every [put] and
   every [patch], [Store.verdict] must render byte-identically to a
   from-scratch [Fused.check ~lints:true] of the same structure — the
   memo, the dirty-cone re-checking and the digest bookkeeping must
   never show through in the report.  Digests must be insensitive to
   insertion order, bounded memo eviction must never change results,
   and one store must serve concurrent domains. *)

module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused
module Pool = Argus_par.Pool
module Store = Argus_store.Store

let render ds = Format.asprintf "%a" Diagnostic.pp_report ds

(* The oracle: a full re-intern and fused pass, lints on. *)
let oracle ?(ruleset = Wellformed.Standard) s =
  Fused.check ~ruleset ~lints:true (Caseir.intern s)

let check_verdict ?ruleset store digest shadow =
  match Store.verdict store ~digest with
  | Error e -> Error ("verdict: " ^ Store.error_message e)
  | Ok v ->
      let full = oracle ?ruleset shadow in
      let got_wf = render v.Store.result.Fused.wf in
      let want_wf = render full.Fused.wf in
      let got_inf = render v.Store.result.Fused.informal in
      let want_inf = render full.Fused.informal in
      if got_wf <> want_wf then
        Error
          (Printf.sprintf "wf drift\n-- store --\n%s\n-- full --\n%s" got_wf
             want_wf)
      else if got_inf <> want_inf then
        Error
          (Printf.sprintf "informal drift\n-- store --\n%s\n-- full --\n%s"
             got_inf want_inf)
      else if Store.digest_of shadow <> digest then
        Error "store digest disagrees with digest_of the shadow structure"
      else Ok ()

(* --- generators --- *)

let texts =
  [|
    "The system is acceptably safe";
    "There is no evidence that failures occur";
    "The river bank erosion control scheme performs well";
    "All inputs are always validated";
    "Deadlock is impossible in every mode";
    "";
    "Claim {TBD} is pending";
    "Argue over hazards";
    "Test report";
  |]

let evidence_table =
  [
    Evidence.make ~id:(Id.of_string "E0") ~kind:Evidence.Test_results "tests";
    Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Expert_judgement
      "opinion";
  ]

let mk_node i tcode scode text ecode =
  let node_type =
    match tcode with
    | 0 | 1 -> Node.Goal
    | 2 -> Node.Strategy
    | 3 -> Node.Solution
    | 4 -> Node.Context
    | 5 -> Node.Assumption
    | _ -> Node.Away_goal (Id.of_string "M1")
  in
  let status =
    match scode with
    | 0 | 1 -> Node.Developed
    | 2 -> Node.Undeveloped
    | 3 -> Node.Uninstantiated
    | _ -> Node.Undeveloped_uninstantiated
  in
  let evidence =
    if node_type = Node.Solution then
      match ecode with
      | 0 -> Some (Id.of_string "E0")
      | 1 -> Some (Id.of_string "E1")
      | 2 -> Some (Id.of_string "Emissing")
      | _ -> None
    else None
  in
  Node.make
    ~id:(Id.of_string (Printf.sprintf "N%d" i))
    ~node_type ~status ?evidence
    texts.(text mod Array.length texts)

let gen_node i =
  let open QCheck.Gen in
  map2
    (fun (tcode, scode) (text, ecode) -> mk_node i tcode scode text ecode)
    (pair (int_bound 6) (int_bound 4))
    (pair (int_bound (Array.length texts - 1)) (int_bound 3))

let gen_link n =
  let open QCheck.Gen in
  map2
    (fun (kind, dangle) (a, b) ->
      let name j = Printf.sprintf "N%d" j in
      let src = if dangle = 0 then "Nowhere" else name (a mod n) in
      let dst = if dangle = 1 then "Nada" else name (b mod n) in
      ( (if kind then Structure.Supported_by else Structure.In_context_of),
        src,
        dst ))
    (pair bool (int_bound 11))
    (pair (int_bound (n - 1)) (int_bound (n - 1)))

let gen_structure =
  let open QCheck.Gen in
  int_range 1 8 >>= fun n ->
  pair (flatten_l (List.init n gen_node)) (list_size (int_range 0 12) (gen_link n))
  |> map (fun (nodes, links) ->
         Structure.of_nodes ~links ~evidence:evidence_table nodes)

(* A random edit against a pool of n node names.  Set-texts target
   existing nodes; shape edits may hit anything, including nodes that
   are not there (rejected batches must leave the store untouched). *)
let gen_edit n =
  let open QCheck.Gen in
  let name = map (fun j -> Id.of_string (Printf.sprintf "N%d" (j mod n))) in
  int_bound 9 >>= function
  | 0 | 1 | 2 | 3 ->
      map2
        (fun id t -> Store.Set_text (id, texts.(t mod Array.length texts)))
        (name (int_bound (n - 1)))
        (int_bound (Array.length texts - 1))
  | 4 ->
      map2
        (fun (tcode, scode) (text, ecode) ->
          Store.Add_node (mk_node (n + (text mod 3)) tcode scode text ecode))
        (pair (int_bound 6) (int_bound 4))
        (pair (int_bound (Array.length texts - 1)) (int_bound 3))
  | 5 -> map (fun id -> Store.Remove_node id) (name (int_bound (2 * n)))
  | 6 | 7 ->
      map2
        (fun k (a, b) ->
          Store.Link
            ((if k then Structure.Supported_by else Structure.In_context_of),
             a, b))
        bool
        (pair (name (int_bound (n - 1))) (name (int_bound (n + 2))))
  | _ ->
      map2
        (fun k (a, b) ->
          Store.Unlink
            ((if k then Structure.Supported_by else Structure.In_context_of),
             a, b))
        bool
        (pair (name (int_bound (n - 1))) (name (int_bound (n + 2))))

(* Batches of 1-3 edits, 4-8 batches per case. *)
let gen_case_and_edits =
  let open QCheck.Gen in
  gen_structure >>= fun s ->
  let n = max 1 (Structure.size s) in
  list_size (int_range 4 8) (list_size (int_range 1 3) (gen_edit n))
  >>= fun batches -> return (s, batches)

let print_scenario (s, batches) =
  Format.asprintf "%a (then %d batches)" Structure.pp_outline s
    (List.length batches)

(* Drive one scenario against one store; the shadow structure is the
   oracle's view.  Rejected batches must leave digest and state
   alone. *)
let drive store (s, batches) =
  let ( let* ) = Result.bind in
  let digest0 = Store.put store s in
  let* () = check_verdict store digest0 s in
  let apply_shadow shadow batch =
    List.fold_left
      (fun acc e ->
        match e with
        | Store.Set_text (id, text) -> (
            match Structure.find id acc with
            | None -> acc
            | Some n ->
                Structure.add_node
                  (Node.make ~id ~node_type:n.Node.node_type
                     ~status:n.Node.status ?formal:n.Node.formal
                     ~annotations:n.Node.annotations ?evidence:n.Node.evidence
                     text)
                  acc)
        | Store.Add_node n -> Structure.add_node n acc
        | Store.Remove_node id -> Structure.remove_node id acc
        | Store.Link (k, src, dst) -> Structure.connect k ~src ~dst acc
        | Store.Unlink (k, src, dst) -> Structure.disconnect k ~src ~dst acc)
      shadow batch
  in
  let rec go shadow digest = function
    | [] -> Ok ()
    | batch :: rest -> (
        match Store.patch store ~digest batch with
        | Error (Store.Unknown_digest _ as e) ->
            Error ("patch: " ^ Store.error_message e)
        | Error (Store.Bad_edit _) ->
            let* () = check_verdict store digest shadow in
            go shadow digest rest
        | Ok digest' ->
            let shadow' = apply_shadow shadow batch in
            let* () = check_verdict store digest' shadow' in
            go shadow' digest' rest)
  in
  go s digest0 batches

let incremental_matches_full =
  QCheck.Test.make
    ~name:"incremental verdict = full fused check (random edit sequences)"
    ~count:200
    (QCheck.make ~print:print_scenario gen_case_and_edits)
    (fun scenario ->
      let store = Store.create () in
      match drive store scenario with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* A tiny memo forces constant eviction; results must not move. *)
let eviction_never_changes_results =
  QCheck.Test.make ~name:"bounded memo eviction never changes results"
    ~count:60
    (QCheck.make ~print:print_scenario gen_case_and_edits)
    (fun scenario ->
      let store = Store.create ~memo_capacity:1 () in
      match drive store scenario with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* Rebuild the structure with nodes, links and evidence inserted in
   reverse order: structurally equal, so digests must agree. *)
let reversed s =
  let s' =
    List.fold_left
      (fun acc n -> Structure.add_node n acc)
      Structure.empty
      (List.rev (Structure.nodes s))
  in
  let s' =
    List.fold_left
      (fun acc (k, src, dst) -> Structure.connect k ~src ~dst acc)
      s'
      (List.rev (Structure.links s))
  in
  List.fold_left
    (fun acc ev -> Structure.add_evidence ev acc)
    s'
    (List.rev (Structure.evidence s))

let digest_order_independent =
  QCheck.Test.make ~name:"digests ignore insertion order" ~count:300
    (QCheck.make
       ~print:(fun s -> Format.asprintf "%a" Structure.pp_outline s)
       gen_structure)
    (fun s ->
      let s' = reversed s in
      if not (Structure.equal s s') then
        QCheck.Test.fail_report "reversal changed the structure"
      else if Store.digest_of s <> Store.digest_of s' then
        QCheck.Test.fail_report "insertion order leaked into the digest"
      else true)

(* Distinct structures should (essentially always) digest apart; catch
   gross collisions like ignoring links or texts. *)
let digest_separates =
  let s1 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "G2") ]
      [ Node.goal "G1" "A holds"; Node.goal "G2" "B holds" ]
  in
  let s2 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G2", "G1") ]
      [ Node.goal "G1" "A holds"; Node.goal "G2" "B holds" ]
  in
  let s3 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "G2") ]
      [ Node.goal "G1" "A holds"; Node.goal "G2" "C holds" ]
  in
  (* Links out of dangling entities must be visible to the digest. *)
  let d1 =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "Gx");
          (Structure.Supported_by, "Gx", "Gy");
        ]
      [ Node.goal "G1" "A holds" ]
  in
  let d2 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "Gx") ]
      [ Node.goal "G1" "A holds" ]
  in
  fun () ->
    let all = [ s1; s2; s3; d1; d2 ] in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j then
              Alcotest.(check bool)
                (Printf.sprintf "digests of distinct cases %d/%d differ" i j)
                false
                (Store.digest_of a = Store.digest_of b))
          all)
      all

(* The same case is the same case: re-putting is idempotent and a
   patch cycle that undoes itself returns to the original digest. *)
let test_digest_roundtrip () =
  let s =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "S1");
          (Structure.Supported_by, "S1", "G2");
        ]
      [
        Node.goal "G1" "The system is acceptably safe";
        Node.strategy "S1" "Argue over hazards";
        Node.goal "G2" "Hazard H1 is mitigated";
      ]
  in
  let store = Store.create () in
  let d0 = Store.put store s in
  Alcotest.(check string) "idempotent put" d0 (Store.put store s);
  let g2 = Id.of_string "G2" in
  let d1 =
    match Store.patch store ~digest:d0 [ Store.Set_text (g2, "Changed") ] with
    | Ok d -> d
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check bool) "edit moved the digest" true (d0 <> d1);
  let d2 =
    match
      Store.patch store ~digest:d1
        [ Store.Set_text (g2, "Hazard H1 is mitigated") ]
    with
    | Ok d -> d
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check string) "undo returns to the original digest" d0 d2

let test_errors () =
  let store = Store.create () in
  (match Store.patch store ~digest:"nope" [] with
  | Error (Store.Unknown_digest _) -> ()
  | _ -> Alcotest.fail "patch of unknown digest must fail");
  (match Store.verdict store ~digest:"nope" with
  | Error (Store.Unknown_digest _) -> ()
  | _ -> Alcotest.fail "verdict of unknown digest must fail");
  let s = Structure.of_nodes [ Node.goal "G1" "A holds" ] in
  let d = Store.put store s in
  match
    Store.patch store ~digest:d
      [ Store.Set_text (Id.of_string "Gmissing", "x") ]
  with
  | Error (Store.Bad_edit _) ->
      Alcotest.(check bool) "store untouched" true (Store.mem store d)
  | _ -> Alcotest.fail "set-text of a missing node must fail"

(* Verdict caching: the second verdict of an unchanged case comes from
   the assembled cache; confidence survives a pure text edit. *)
let test_memoization () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "Sn1") ]
      ~evidence:
        [
          Evidence.make ~id:(Id.of_string "E0") ~kind:Evidence.Test_results
            "tests";
        ]
      [
        Node.goal "G1" "The system is acceptably safe";
        Node.solution ~evidence:"E0" "Sn1" "Test report";
      ]
  in
  let store = Store.create () in
  let d = Store.put store s in
  let v1 =
    match Store.verdict store ~digest:d with
    | Ok v -> v
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check bool) "first verdict is assembled" false v1.Store.from_memo;
  let v2 =
    match Store.verdict store ~digest:d with
    | Ok v -> v
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check bool) "second verdict is cached" true v2.Store.from_memo;
  Alcotest.(check (float 0.)) "same confidence" v1.Store.confidence
    v2.Store.confidence

(* One store, many domains: disjoint scenarios driven concurrently
   through a shared store must all hold the differential property. *)
let concurrent_differential jobs () =
  let scenarios =
    let seed = ref 42 in
    Array.init 16 (fun i ->
        seed := (!seed * 25214903917) + i;
        let rand = Random.State.make [| !seed; i |] in
        QCheck.Gen.generate1 ~rand gen_case_and_edits)
  in
  let store = Store.create () in
  let results =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_array ~pool (fun sc -> drive store sc) scenarios)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "scenario %d: %s" i msg))
    results

let () =
  Alcotest.run "argus-store"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest incremental_matches_full;
          QCheck_alcotest.to_alcotest eviction_never_changes_results;
        ] );
      ( "digest",
        [
          QCheck_alcotest.to_alcotest digest_order_independent;
          Alcotest.test_case "distinct cases digest apart" `Quick
            digest_separates;
          Alcotest.test_case "put idempotent, patch invertible" `Quick
            test_digest_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "unknown digests and bad edits" `Quick
            test_errors;
          Alcotest.test_case "verdict memoization" `Quick test_memoization;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "shared store, 1 domain" `Quick
            (concurrent_differential 1);
          Alcotest.test_case "shared store, 2 domains" `Quick
            (concurrent_differential 2);
          Alcotest.test_case "shared store, 8 domains" `Quick
            (concurrent_differential 8);
        ] );
    ]
