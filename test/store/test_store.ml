(* The incremental store against its oracle: after every [put] and
   every [patch], [Store.verdict] must render byte-identically to a
   from-scratch [Fused.check ~lints:true] of the same structure — the
   memo, the dirty-cone re-checking and the digest bookkeeping must
   never show through in the report.  Digests must be insensitive to
   insertion order, bounded memo eviction must never change results,
   and one store must serve concurrent domains. *)

module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused
module Pool = Argus_par.Pool
module Store = Argus_store.Store
module Wal = Argus_store.Wal
module Snapshot = Argus_store.Snapshot
module Recover = Argus_store.Recover
module Durable = Argus_store.Durable
module Fault = Argus_rt.Fault

let render ds = Format.asprintf "%a" Diagnostic.pp_report ds

(* The oracle: a full re-intern and fused pass, lints on. *)
let oracle ?(ruleset = Wellformed.Standard) s =
  Fused.check ~ruleset ~lints:true (Caseir.intern s)

let check_verdict ?ruleset store digest shadow =
  match Store.verdict store ~digest with
  | Error e -> Error ("verdict: " ^ Store.error_message e)
  | Ok v ->
      let full = oracle ?ruleset shadow in
      let got_wf = render v.Store.result.Fused.wf in
      let want_wf = render full.Fused.wf in
      let got_inf = render v.Store.result.Fused.informal in
      let want_inf = render full.Fused.informal in
      if got_wf <> want_wf then
        Error
          (Printf.sprintf "wf drift\n-- store --\n%s\n-- full --\n%s" got_wf
             want_wf)
      else if got_inf <> want_inf then
        Error
          (Printf.sprintf "informal drift\n-- store --\n%s\n-- full --\n%s"
             got_inf want_inf)
      else if Store.digest_of shadow <> digest then
        Error "store digest disagrees with digest_of the shadow structure"
      else Ok ()

(* --- generators --- *)

let texts =
  [|
    "The system is acceptably safe";
    "There is no evidence that failures occur";
    "The river bank erosion control scheme performs well";
    "All inputs are always validated";
    "Deadlock is impossible in every mode";
    "";
    "Claim {TBD} is pending";
    "Argue over hazards";
    "Test report";
  |]

let evidence_table =
  [
    Evidence.make ~id:(Id.of_string "E0") ~kind:Evidence.Test_results "tests";
    Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Expert_judgement
      "opinion";
  ]

let mk_node i tcode scode text ecode =
  let node_type =
    match tcode with
    | 0 | 1 -> Node.Goal
    | 2 -> Node.Strategy
    | 3 -> Node.Solution
    | 4 -> Node.Context
    | 5 -> Node.Assumption
    | _ -> Node.Away_goal (Id.of_string "M1")
  in
  let status =
    match scode with
    | 0 | 1 -> Node.Developed
    | 2 -> Node.Undeveloped
    | 3 -> Node.Uninstantiated
    | _ -> Node.Undeveloped_uninstantiated
  in
  let evidence =
    if node_type = Node.Solution then
      match ecode with
      | 0 -> Some (Id.of_string "E0")
      | 1 -> Some (Id.of_string "E1")
      | 2 -> Some (Id.of_string "Emissing")
      | _ -> None
    else None
  in
  Node.make
    ~id:(Id.of_string (Printf.sprintf "N%d" i))
    ~node_type ~status ?evidence
    texts.(text mod Array.length texts)

let gen_node i =
  let open QCheck.Gen in
  map2
    (fun (tcode, scode) (text, ecode) -> mk_node i tcode scode text ecode)
    (pair (int_bound 6) (int_bound 4))
    (pair (int_bound (Array.length texts - 1)) (int_bound 3))

let gen_link n =
  let open QCheck.Gen in
  map2
    (fun (kind, dangle) (a, b) ->
      let name j = Printf.sprintf "N%d" j in
      let src = if dangle = 0 then "Nowhere" else name (a mod n) in
      let dst = if dangle = 1 then "Nada" else name (b mod n) in
      ( (if kind then Structure.Supported_by else Structure.In_context_of),
        src,
        dst ))
    (pair bool (int_bound 11))
    (pair (int_bound (n - 1)) (int_bound (n - 1)))

let gen_structure =
  let open QCheck.Gen in
  int_range 1 8 >>= fun n ->
  pair (flatten_l (List.init n gen_node)) (list_size (int_range 0 12) (gen_link n))
  |> map (fun (nodes, links) ->
         Structure.of_nodes ~links ~evidence:evidence_table nodes)

(* A random edit against a pool of n node names.  Set-texts target
   existing nodes; shape edits may hit anything, including nodes that
   are not there (rejected batches must leave the store untouched). *)
let gen_edit n =
  let open QCheck.Gen in
  let name = map (fun j -> Id.of_string (Printf.sprintf "N%d" (j mod n))) in
  int_bound 9 >>= function
  | 0 | 1 | 2 | 3 ->
      map2
        (fun id t -> Store.Set_text (id, texts.(t mod Array.length texts)))
        (name (int_bound (n - 1)))
        (int_bound (Array.length texts - 1))
  | 4 ->
      map2
        (fun (tcode, scode) (text, ecode) ->
          Store.Add_node (mk_node (n + (text mod 3)) tcode scode text ecode))
        (pair (int_bound 6) (int_bound 4))
        (pair (int_bound (Array.length texts - 1)) (int_bound 3))
  | 5 -> map (fun id -> Store.Remove_node id) (name (int_bound (2 * n)))
  | 6 | 7 ->
      map2
        (fun k (a, b) ->
          Store.Link
            ((if k then Structure.Supported_by else Structure.In_context_of),
             a, b))
        bool
        (pair (name (int_bound (n - 1))) (name (int_bound (n + 2))))
  | _ ->
      map2
        (fun k (a, b) ->
          Store.Unlink
            ((if k then Structure.Supported_by else Structure.In_context_of),
             a, b))
        bool
        (pair (name (int_bound (n - 1))) (name (int_bound (n + 2))))

(* Batches of 1-3 edits, 4-8 batches per case. *)
let gen_case_and_edits =
  let open QCheck.Gen in
  gen_structure >>= fun s ->
  let n = max 1 (Structure.size s) in
  list_size (int_range 4 8) (list_size (int_range 1 3) (gen_edit n))
  >>= fun batches -> return (s, batches)

let print_scenario (s, batches) =
  Format.asprintf "%a (then %d batches)" Structure.pp_outline s
    (List.length batches)

(* Drive one scenario against one store; the shadow structure is the
   oracle's view.  Rejected batches must leave digest and state
   alone. *)
let drive store (s, batches) =
  let ( let* ) = Result.bind in
  let digest0 = Store.put store s in
  let* () = check_verdict store digest0 s in
  let apply_shadow shadow batch =
    List.fold_left
      (fun acc e ->
        match e with
        | Store.Set_text (id, text) -> (
            match Structure.find id acc with
            | None -> acc
            | Some n ->
                Structure.add_node
                  (Node.make ~id ~node_type:n.Node.node_type
                     ~status:n.Node.status ?formal:n.Node.formal
                     ~annotations:n.Node.annotations ?evidence:n.Node.evidence
                     text)
                  acc)
        | Store.Add_node n -> Structure.add_node n acc
        | Store.Remove_node id -> Structure.remove_node id acc
        | Store.Link (k, src, dst) -> Structure.connect k ~src ~dst acc
        | Store.Unlink (k, src, dst) -> Structure.disconnect k ~src ~dst acc)
      shadow batch
  in
  let rec go shadow digest = function
    | [] -> Ok ()
    | batch :: rest -> (
        match Store.patch store ~digest batch with
        | Error (Store.Unknown_digest _ as e) ->
            Error ("patch: " ^ Store.error_message e)
        | Error (Store.Bad_edit _) ->
            let* () = check_verdict store digest shadow in
            go shadow digest rest
        | Ok digest' ->
            let shadow' = apply_shadow shadow batch in
            let* () = check_verdict store digest' shadow' in
            go shadow' digest' rest)
  in
  go s digest0 batches

let incremental_matches_full =
  QCheck.Test.make
    ~name:"incremental verdict = full fused check (random edit sequences)"
    ~count:200
    (QCheck.make ~print:print_scenario gen_case_and_edits)
    (fun scenario ->
      let store = Store.create () in
      match drive store scenario with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* A tiny memo forces constant eviction; results must not move. *)
let eviction_never_changes_results =
  QCheck.Test.make ~name:"bounded memo eviction never changes results"
    ~count:60
    (QCheck.make ~print:print_scenario gen_case_and_edits)
    (fun scenario ->
      let store = Store.create ~memo_capacity:1 () in
      match drive store scenario with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* Rebuild the structure with nodes, links and evidence inserted in
   reverse order: structurally equal, so digests must agree. *)
let reversed s =
  let s' =
    List.fold_left
      (fun acc n -> Structure.add_node n acc)
      Structure.empty
      (List.rev (Structure.nodes s))
  in
  let s' =
    List.fold_left
      (fun acc (k, src, dst) -> Structure.connect k ~src ~dst acc)
      s'
      (List.rev (Structure.links s))
  in
  List.fold_left
    (fun acc ev -> Structure.add_evidence ev acc)
    s'
    (List.rev (Structure.evidence s))

let digest_order_independent =
  QCheck.Test.make ~name:"digests ignore insertion order" ~count:300
    (QCheck.make
       ~print:(fun s -> Format.asprintf "%a" Structure.pp_outline s)
       gen_structure)
    (fun s ->
      let s' = reversed s in
      if not (Structure.equal s s') then
        QCheck.Test.fail_report "reversal changed the structure"
      else if Store.digest_of s <> Store.digest_of s' then
        QCheck.Test.fail_report "insertion order leaked into the digest"
      else true)

(* Distinct structures should (essentially always) digest apart; catch
   gross collisions like ignoring links or texts. *)
let digest_separates =
  let s1 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "G2") ]
      [ Node.goal "G1" "A holds"; Node.goal "G2" "B holds" ]
  in
  let s2 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G2", "G1") ]
      [ Node.goal "G1" "A holds"; Node.goal "G2" "B holds" ]
  in
  let s3 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "G2") ]
      [ Node.goal "G1" "A holds"; Node.goal "G2" "C holds" ]
  in
  (* Links out of dangling entities must be visible to the digest. *)
  let d1 =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "Gx");
          (Structure.Supported_by, "Gx", "Gy");
        ]
      [ Node.goal "G1" "A holds" ]
  in
  let d2 =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "Gx") ]
      [ Node.goal "G1" "A holds" ]
  in
  fun () ->
    let all = [ s1; s2; s3; d1; d2 ] in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j then
              Alcotest.(check bool)
                (Printf.sprintf "digests of distinct cases %d/%d differ" i j)
                false
                (Store.digest_of a = Store.digest_of b))
          all)
      all

(* The same case is the same case: re-putting is idempotent and a
   patch cycle that undoes itself returns to the original digest. *)
let test_digest_roundtrip () =
  let s =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "S1");
          (Structure.Supported_by, "S1", "G2");
        ]
      [
        Node.goal "G1" "The system is acceptably safe";
        Node.strategy "S1" "Argue over hazards";
        Node.goal "G2" "Hazard H1 is mitigated";
      ]
  in
  let store = Store.create () in
  let d0 = Store.put store s in
  Alcotest.(check string) "idempotent put" d0 (Store.put store s);
  let g2 = Id.of_string "G2" in
  let d1 =
    match Store.patch store ~digest:d0 [ Store.Set_text (g2, "Changed") ] with
    | Ok d -> d
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check bool) "edit moved the digest" true (d0 <> d1);
  let d2 =
    match
      Store.patch store ~digest:d1
        [ Store.Set_text (g2, "Hazard H1 is mitigated") ]
    with
    | Ok d -> d
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check string) "undo returns to the original digest" d0 d2

let test_errors () =
  let store = Store.create () in
  (match Store.patch store ~digest:"nope" [] with
  | Error (Store.Unknown_digest _) -> ()
  | _ -> Alcotest.fail "patch of unknown digest must fail");
  (match Store.verdict store ~digest:"nope" with
  | Error (Store.Unknown_digest _) -> ()
  | _ -> Alcotest.fail "verdict of unknown digest must fail");
  let s = Structure.of_nodes [ Node.goal "G1" "A holds" ] in
  let d = Store.put store s in
  match
    Store.patch store ~digest:d
      [ Store.Set_text (Id.of_string "Gmissing", "x") ]
  with
  | Error (Store.Bad_edit _) ->
      Alcotest.(check bool) "store untouched" true (Store.mem store d)
  | _ -> Alcotest.fail "set-text of a missing node must fail"

(* Verdict caching: the second verdict of an unchanged case comes from
   the assembled cache; confidence survives a pure text edit. *)
let test_memoization () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "Sn1") ]
      ~evidence:
        [
          Evidence.make ~id:(Id.of_string "E0") ~kind:Evidence.Test_results
            "tests";
        ]
      [
        Node.goal "G1" "The system is acceptably safe";
        Node.solution ~evidence:"E0" "Sn1" "Test report";
      ]
  in
  let store = Store.create () in
  let d = Store.put store s in
  let v1 =
    match Store.verdict store ~digest:d with
    | Ok v -> v
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check bool) "first verdict is assembled" false v1.Store.from_memo;
  let v2 =
    match Store.verdict store ~digest:d with
    | Ok v -> v
    | Error e -> Alcotest.fail (Store.error_message e)
  in
  Alcotest.(check bool) "second verdict is cached" true v2.Store.from_memo;
  Alcotest.(check (float 0.)) "same confidence" v1.Store.confidence
    v2.Store.confidence

(* One store, many domains: disjoint scenarios driven concurrently
   through a shared store must all hold the differential property. *)
let concurrent_differential jobs () =
  let scenarios =
    let seed = ref 42 in
    Array.init 16 (fun i ->
        seed := (!seed * 25214903917) + i;
        let rand = Random.State.make [| !seed; i |] in
        QCheck.Gen.generate1 ~rand gen_case_and_edits)
  in
  let store = Store.create () in
  let results =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_array ~pool (fun sc -> drive store sc) scenarios)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "scenario %d: %s" i msg))
    results

(* --- durability: WAL + snapshots + recovery + degraded mode --- *)

let temp_dir () =
  let f = Filename.temp_file "argus-store-test" "" in
  Sys.remove f;
  f

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let with_dir f =
  let dir = temp_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* The corruption fuzz injects its own deterministic damage; ambient
   fault injection (the CI fault matrix) would make its setup phases
   flaky, so it is masked for the scope of each fuzz test. *)
let without_faults f =
  let saved = Fault.current () in
  Fault.set None;
  Fun.protect ~finally:(fun () -> Fault.set saved) f

let base_structure =
  Structure.of_nodes
    ~links:
      [
        (Structure.Supported_by, "G1", "S1");
        (Structure.Supported_by, "S1", "G2");
        (Structure.Supported_by, "S1", "G3");
      ]
    [
      Node.goal "G1" "The system is acceptably safe";
      Node.strategy "S1" "Argue over hazards";
      Node.goal "G2" "Hazard H1 is mitigated";
      Node.goal "G3" "Hazard H2 is mitigated";
    ]

let nth_edit i =
  [ Store.Set_text (Id.of_string "G2", Printf.sprintf "Revision %d" i) ]

(* Build a durable dir with [ops] set-text patches after the initial
   put, sync always so every record is complete on disk.  Returns the
   acked digest sequence (put first) and the shadow structure at each
   step, plus the WAL size after each record — the record boundaries
   the torn-tail fuzz cuts at. *)
let build_history ?snapshot_every ~ops dir =
  let durable, _ =
    match Durable.create ~dir ~sync:Wal.Always ?snapshot_every () with
    | Ok x -> x
    | Error e -> Alcotest.failf "durable create failed: %s" e
  in
  let wal = Recover.wal_path dir in
  let wal_size () = (Unix.stat wal).Unix.st_size in
  let d0 =
    match Durable.put durable base_structure with
    | Ok d -> d
    | Error e -> Alcotest.failf "put failed: %s" (Durable.error_message e)
  in
  let digests = ref [ d0 ] in
  let shadows = ref [ base_structure ] in
  let sizes = ref [ wal_size () ] in
  let apply_shadow shadow = function
    | [ Store.Set_text (id, text) ] ->
        let n = Option.get (Structure.find id shadow) in
        Structure.add_node
          (Node.make ~id ~node_type:n.Node.node_type ~status:n.Node.status
             ?formal:n.Node.formal ~annotations:n.Node.annotations
             ?evidence:n.Node.evidence text)
          shadow
    | _ -> assert false
  in
  for i = 1 to ops do
    let batch = nth_edit i in
    match Durable.patch durable ~digest:(List.hd !digests) batch with
    | Error e -> Alcotest.failf "patch %d failed: %s" i (Durable.error_message e)
    | Ok d ->
        digests := d :: !digests;
        shadows := apply_shadow (List.hd !shadows) batch :: !shadows;
        sizes := wal_size () :: !sizes
  done;
  Durable.close durable;
  (List.rev !digests, List.rev !shadows, List.rev !sizes)

(* Recover a dir and demand exactly one live case, byte-identical in
   verdict to the full fused check of the shadow it should hold. *)
let check_recovered ?(msg = "recovered") dir expected_digest shadow =
  match Recover.load ~dir () with
  | Error e -> Alcotest.failf "%s: recovery refused: %s" msg e
  | Ok outcome ->
      let store = outcome.Recover.store in
      (match Store.cases store with
      | [ (d, _, _) ] ->
          Alcotest.(check string) (msg ^ ": digest") expected_digest d
      | cases ->
          Alcotest.failf "%s: expected 1 case, recovered %d" msg
            (List.length cases));
      (match check_verdict store expected_digest shadow with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" msg e)

let test_recover_roundtrip () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let digests, shadows, _ = build_history ~ops:6 dir in
  let final_digest = List.nth digests 6 in
  let final_shadow = List.nth shadows 6 in
  check_recovered ~msg:"clean restart" dir final_digest final_shadow;
  (* Recovery is idempotent: a second restart sees the same state. *)
  check_recovered ~msg:"second restart" dir final_digest final_shadow;
  (* And reopening through Durable keeps accepting writes. *)
  match Durable.create ~dir ~sync:Wal.Always () with
  | Error e -> Alcotest.failf "reopen failed: %s" e
  | Ok (durable, _) -> (
      match Durable.patch durable ~digest:final_digest (nth_edit 99) with
      | Error e ->
          Alcotest.failf "patch after recovery failed: %s"
            (Durable.error_message e)
      | Ok _ -> Durable.close durable)

let test_snapshot_compaction () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let digests, shadows, _ = build_history ~snapshot_every:4 ~ops:10 dir in
  Alcotest.(check bool)
    "a snapshot was written" true
    (Snapshot.latest dir <> None);
  (* The WAL was reset at the snapshot: it holds only the tail. *)
  (match Recover.load ~dir () with
  | Error e -> Alcotest.failf "recovery refused: %s" e
  | Ok outcome ->
      Alcotest.(check bool)
        "snapshot carries most of the history" true
        (outcome.Recover.snapshot_seq >= 4);
      Alcotest.(check bool)
        "only the tail replays" true
        (outcome.Recover.replayed <= 11 - outcome.Recover.snapshot_seq));
  check_recovered ~msg:"snapshot + tail" dir (List.nth digests 10)
    (List.nth shadows 10)

(* Torn-tail fuzz: cut the WAL at every byte offset inside the final
   record; recovery must restore the state just before it, truncate
   the torn bytes on disk, and leave the shortened log clean. *)
let test_torn_tail_every_offset () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let digests, shadows, sizes = build_history ~ops:4 dir in
  let wal = Recover.wal_path dir in
  let pristine = In_channel.with_open_bin wal In_channel.input_all in
  let last_start = List.nth sizes 3 in
  let last_end = List.nth sizes 4 in
  Alcotest.(check int) "history is intact" last_end (String.length pristine);
  for cut = last_start to last_end - 1 do
    with_dir @@ fun dir' ->
    Out_channel.with_open_bin (Recover.wal_path dir') (fun oc ->
        Out_channel.output_string oc (String.sub pristine 0 cut));
    check_recovered
      ~msg:(Printf.sprintf "cut at byte %d" cut)
      dir' (List.nth digests 3) (List.nth shadows 3);
    (* The torn bytes are gone from disk: the next recovery parses a
       clean log. *)
    match Recover.load ~dir:dir' () with
    | Error e -> Alcotest.failf "re-recovery at %d refused: %s" cut e
    | Ok o ->
        Alcotest.(check int)
          (Printf.sprintf "no torn bytes left after cut %d" cut)
          0 o.Recover.truncated
  done

(* Bit-flip fuzz: flip one byte at every offset of the final record
   (covering its length, checksum and payload regions) and one byte
   per region of an interior record.  Each damaged log must either
   recover a checksum-valid prefix of the committed history or be
   refused with the corruption diagnostic — never crash, hang, or
   resurrect a state that was never committed. *)
let test_bit_flip_fuzz () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let digests, shadows, sizes = build_history ~ops:4 dir in
  let wal = Recover.wal_path dir in
  let pristine = In_channel.with_open_bin wal In_channel.input_all in
  let check_flip ~expect_refusal offset =
    with_dir @@ fun dir' ->
    let damaged = Bytes.of_string pristine in
    Bytes.set damaged offset
      (Char.chr (Char.code (Bytes.get damaged offset) lxor 0x40));
    Out_channel.with_open_bin (Recover.wal_path dir') (fun oc ->
        Out_channel.output_bytes oc damaged);
    match Recover.load ~dir:dir' () with
    | Error diagnostic ->
        Alcotest.(check bool)
          (Printf.sprintf "flip at %d: diagnostic names the problem" offset)
          true
          (String.length diagnostic > 0)
    | Ok outcome ->
        if expect_refusal then
          Alcotest.failf
            "flip at %d (interior record) must refuse, recovered %d cases"
            offset
            (Store.size outcome.Recover.store);
        (* A survivable flip must land on a committed prefix, verdicts
           intact. *)
        let store = outcome.Recover.store in
        (match Store.cases store with
        | [ (d, _, _) ] -> (
            match
              List.find_index (fun x -> String.equal x d) digests
            with
            | None ->
                Alcotest.failf
                  "flip at %d resurrected digest %s that was never committed"
                  offset d
            | Some i -> (
                match check_verdict store d (List.nth shadows i) with
                | Ok () -> ()
                | Error e -> Alcotest.failf "flip at %d: %s" offset e))
        | [] -> ()
        | cases ->
            Alcotest.failf "flip at %d: recovered %d cases from 1-case history"
              offset (List.length cases))
  in
  (* Every byte of the final record. *)
  let last_start = List.nth sizes 3 in
  let last_end = List.nth sizes 4 in
  for offset = last_start to last_end - 1 do
    check_flip ~expect_refusal:false offset
  done;
  (* Interior record (records follow it, so a checksum failure there
     is mid-stream corruption): its payload must refuse outright. *)
  let mid_start = List.nth sizes 1 in
  check_flip ~expect_refusal:true (mid_start + 8);
  check_flip ~expect_refusal:true (mid_start + 12);
  (* An interior length/checksum flip may reclassify the damage as a
     torn tail (shorter prefix) — allowed — but must never crash or
     invent state; [expect_refusal:false] still forbids uncommitted
     digests. *)
  check_flip ~expect_refusal:false mid_start;
  check_flip ~expect_refusal:false (mid_start + 4)

(* A log corrupted mid-stream must also refuse end-to-end: reopening
   through Durable (what `argus serve --data-dir` does) reports the
   diagnostic instead of starting empty. *)
let test_corrupt_refused_end_to_end () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let _, _, sizes = build_history ~ops:4 dir in
  let wal = Recover.wal_path dir in
  let data = Bytes.of_string (In_channel.with_open_bin wal In_channel.input_all) in
  let mid = List.nth sizes 1 + 8 in
  Bytes.set data mid (Char.chr (Char.code (Bytes.get data mid) lxor 0xff));
  Out_channel.with_open_bin wal (fun oc -> Out_channel.output_bytes oc data);
  match Durable.create ~dir ~sync:Wal.Always () with
  | Ok _ -> Alcotest.fail "corrupted log must refuse to open"
  | Error diagnostic ->
      Alcotest.(check bool)
        "diagnostic says mid-stream" true
        (let has needle =
           let nh = String.length diagnostic and nn = String.length needle in
           let rec go i =
             i + nn <= nh
             && (String.sub diagnostic i nn = needle || go (i + 1))
           in
           go 0
         in
         has "mid-stream" || has "checksum")

(* Injected I/O faults trip read-only, stick, and never lose acked
   state: after reopening the dir, everything acked before the fault
   is back and verdicts are byte-identical. *)
let test_fault_trips_read_only () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let durable, _ =
    match Durable.create ~dir ~sync:Wal.Always () with
    | Ok x -> x
    | Error e -> Alcotest.failf "create failed: %s" e
  in
  let d0 =
    match Durable.put durable base_structure with
    | Ok d -> d
    | Error e -> Alcotest.failf "put failed: %s" (Durable.error_message e)
  in
  let spec =
    match Fault.parse_spec "store.wal.append@2:1:5" with
    | Ok s -> s
    | Error e -> Alcotest.failf "bad spec: %s" e
  in
  (match
     Fault.with_spec spec (fun () ->
         Durable.patch durable ~digest:d0 (nth_edit 1))
   with
  | Error (Durable.Read_only cause) ->
      Alcotest.(check bool)
        "cause names the probe" true
        (String.length cause > 0)
  | Error e -> Alcotest.failf "expected read-only, got %s" (Durable.error_message e)
  | Ok _ -> Alcotest.fail "append fault must refuse the write");
  (* Sticky after the fault window closes; the rolled-back patch left
     the acked digest live. *)
  (match Durable.patch durable ~digest:d0 (nth_edit 2) with
  | Error (Durable.Read_only _) -> ()
  | _ -> Alcotest.fail "read-only must stick");
  (match Durable.verdict durable ~digest:d0 with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "read in degraded mode failed: %s"
        (Durable.error_message e));
  Durable.close durable;
  check_recovered ~msg:"after degraded shutdown" dir d0 base_structure

(* A snapshot failure must degrade without losing the operation that
   triggered it — the WAL still holds every record. *)
let test_snapshot_fault_degrades () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let durable, _ =
    match Durable.create ~dir ~sync:Wal.Always ~snapshot_every:1 () with
    | Ok x -> x
    | Error e -> Alcotest.failf "create failed: %s" e
  in
  let spec =
    match Fault.parse_spec "store.snapshot.write:1:5" with
    | Ok s -> s
    | Error e -> Alcotest.failf "bad spec: %s" e
  in
  let d0 =
    match
      Fault.with_spec spec (fun () -> Durable.put durable base_structure)
    with
    | Ok d -> d
    | Error e ->
        Alcotest.failf "the logged op itself must ack: %s"
          (Durable.error_message e)
  in
  Alcotest.(check bool)
    "snapshot fault degrades" true
    (match Durable.mode durable with
    | Durable.Read_only _ -> true
    | Durable.Active -> false);
  Durable.close durable;
  check_recovered ~msg:"WAL survives the failed snapshot" dir d0
    base_structure

(* A fault while reading during recovery surfaces as a diagnostic, not
   a crash or a silently empty store. *)
let test_recover_read_fault () =
  without_faults @@ fun () ->
  with_dir @@ fun dir ->
  let _ = build_history ~ops:2 dir in
  let spec =
    match Fault.parse_spec "store.recover.read@wal:1:5" with
    | Ok s -> s
    | Error e -> Alcotest.failf "bad spec: %s" e
  in
  match Fault.with_spec spec (fun () -> Durable.create ~dir ()) with
  | Ok _ -> Alcotest.fail "recovery under a read fault must refuse"
  | Error diagnostic ->
      Alcotest.(check bool)
        "diagnostic names the injected fault" true
        (let needle = "injected fault" in
         let nh = String.length diagnostic and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub diagnostic i nn = needle || go (i + 1))
         in
         go 0)

(* The durable differential: scenarios driven through Durable handles
   (one data dir each) across domains.  Under ambient fault injection
   (the CI fault matrix sets ARGUS_FAULT for each store probe) writes
   may trip read-only at any point; the property is that every ack is
   honest — whatever was acked is byte-identical after recovery — and
   nothing ever crashes.  Without ambient faults it degenerates to a
   full durability round-trip per scenario. *)
let durable_differential jobs () =
  let scenarios = Array.init 8 (fun i -> 3 + (i mod 4)) in
  let run_one ops =
    with_dir @@ fun dir ->
    match Durable.create ~dir ~sync:Wal.Always () with
    | Error e ->
        (* Only an injected recovery fault may refuse a fresh dir. *)
        if Fault.current () = None then
          Alcotest.failf "fresh create refused: %s" e
    | Ok (durable, _) ->
        let acked = ref [] in
        let shadow = ref base_structure in
        (match Durable.put durable base_structure with
        | Ok d -> acked := [ (d, base_structure) ]
        | Error (Durable.Read_only _) -> ()
        | Error e -> Alcotest.failf "put: %s" (Durable.error_message e));
        (try
           for i = 1 to ops do
             match !acked with
             | [] -> raise Exit
             | (digest, _) :: _ -> (
                 match Durable.patch durable ~digest (nth_edit i) with
                 | Ok d ->
                     let n =
                       Option.get (Structure.find (Id.of_string "G2") !shadow)
                     in
                     shadow :=
                       Structure.add_node
                         (Node.make ~id:(Id.of_string "G2")
                            ~node_type:n.Node.node_type ~status:n.Node.status
                            ?formal:n.Node.formal
                            ~annotations:n.Node.annotations
                            ?evidence:n.Node.evidence
                            (Printf.sprintf "Revision %d" i))
                         !shadow;
                     acked := (d, !shadow) :: !acked
                 | Error (Durable.Read_only _) ->
                     (* Degraded: acked reads must still be consistent,
                        then this scenario is done writing. *)
                     (match !acked with
                     | (d, s) :: _ -> (
                         match
                           check_verdict (Durable.store durable) d s
                         with
                         | Ok () -> ()
                         | Error e ->
                             Alcotest.failf "degraded read drifted: %s" e)
                     | [] -> ());
                     raise Exit
                 | Error e ->
                     Alcotest.failf "patch: %s" (Durable.error_message e))
           done
         with Exit -> ());
        Durable.close durable;
        (* Recovery under ambient faults may refuse (injected read
           fault) — that is a diagnostic, not a loss.  When it
           answers, the recovered state must be internally verified
           (recover re-checks every digest) and verdicts must be
           byte-identical to the fused oracle of the recovered
           structure. *)
        (match Recover.load ~dir () with
        | Error e ->
            if Fault.current () = None then
              Alcotest.failf "recovery refused without faults: %s" e
        | Ok outcome -> (
            let store = outcome.Recover.store in
            List.iter
              (fun (d, _, structure) ->
                match check_verdict store d structure with
                | Ok () -> ()
                | Error e ->
                    Alcotest.failf "recovered verdict drifted: %s" e)
              (Store.cases store);
            (* Without ambient faults every ack must be back. *)
            if Fault.current () = None then
              match (!acked, Store.cases store) with
              | (d, _) :: _, [ (d', _, _) ] ->
                  Alcotest.(check string) "last ack recovered" d d'
              | (_, _) :: _, cases ->
                  Alcotest.failf "expected 1 recovered case, got %d"
                    (List.length cases)
              | [], _ -> ()))
  in
  Pool.with_pool ~jobs (fun pool ->
      ignore (Pool.map_array ~pool run_one scenarios))

let () =
  Fault.configure_from_env ();
  Alcotest.run "argus-store"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest incremental_matches_full;
          QCheck_alcotest.to_alcotest eviction_never_changes_results;
        ] );
      ( "digest",
        [
          QCheck_alcotest.to_alcotest digest_order_independent;
          Alcotest.test_case "distinct cases digest apart" `Quick
            digest_separates;
          Alcotest.test_case "put idempotent, patch invertible" `Quick
            test_digest_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "unknown digests and bad edits" `Quick
            test_errors;
          Alcotest.test_case "verdict memoization" `Quick test_memoization;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "shared store, 1 domain" `Quick
            (concurrent_differential 1);
          Alcotest.test_case "shared store, 2 domains" `Quick
            (concurrent_differential 2);
          Alcotest.test_case "shared store, 8 domains" `Quick
            (concurrent_differential 8);
        ] );
      ( "durability",
        [
          Alcotest.test_case "recover round-trip" `Quick
            test_recover_roundtrip;
          Alcotest.test_case "snapshot compaction" `Quick
            test_snapshot_compaction;
          Alcotest.test_case "torn tail at every offset" `Quick
            test_torn_tail_every_offset;
          Alcotest.test_case "bit-flip fuzz" `Quick test_bit_flip_fuzz;
          Alcotest.test_case "mid-stream corruption refused end-to-end"
            `Quick test_corrupt_refused_end_to_end;
          Alcotest.test_case "disk fault trips read-only" `Quick
            test_fault_trips_read_only;
          Alcotest.test_case "snapshot fault degrades without loss" `Quick
            test_snapshot_fault_degrades;
          Alcotest.test_case "recovery read fault refuses" `Quick
            test_recover_read_fault;
          Alcotest.test_case "durable differential, 1 domain" `Quick
            (durable_differential 1);
          Alcotest.test_case "durable differential, 8 domains" `Quick
            (durable_differential 8);
        ] );
    ]
