(* The fused array-IR checker against its legacy oracles: for every
   structure, Fused.check must render byte-identically to
   Wellformed.check + Informal.check_structure (same findings, same
   order, same budget ticks), and Fused.check_cae to Cae.check. *)

module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Budget = Argus_rt.Budget
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Informal = Argus_fallacy.Informal
module Cae = Argus_cae.Cae
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused

let render ds = Format.asprintf "%a" Diagnostic.pp_report ds
let rulesets = [ Wellformed.Standard; Wellformed.Denney_pai_2013 ]
let fuels = [ 1; 2; 3; 5; 100 ]

(* --- The adversarial case battery --- *)

let battery : (string * Structure.t) list =
  [
    ( "clean",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "S1");
            (Structure.Supported_by, "S1", "G2");
            (Structure.Supported_by, "G2", "Sn1");
            (Structure.In_context_of, "G1", "C1");
          ]
        ~evidence:
          [
            Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Test_results
              "tests";
          ]
        [
          Node.goal "G1" "The system is acceptably safe";
          Node.strategy "S1" "Argue over hazards";
          Node.goal "G2" "Hazard H1 is mitigated";
          Node.solution ~evidence:"E1" "Sn1" "Test report";
          Node.context "C1" "Operating context";
        ] );
    ( "dangling",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "Gmissing");
            (Structure.Supported_by, "Gmissing", "Gmissing2");
            (Structure.Supported_by, "Gzz", "G1");
            (Structure.In_context_of, "Cnope", "G1");
          ]
        [ Node.goal "G1" "Claim one holds" ] );
    ( "cycle",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "G2");
            (Structure.Supported_by, "G2", "G3");
            (Structure.Supported_by, "G3", "G1");
          ]
        [
          Node.goal "G1" "A holds";
          Node.goal "G2" "B holds";
          Node.goal "G3" "C holds";
        ] );
    ( "cycle-dangling",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "Gx");
            (Structure.Supported_by, "Gx", "G1");
          ]
        [ Node.goal "G1" "A holds" ] );
    ( "badlinks",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "C1", "G1");
            (Structure.Supported_by, "Sn1", "G1");
            (Structure.Supported_by, "S1", "Sn1");
            (Structure.In_context_of, "AG1", "Sn1");
            (Structure.In_context_of, "Sn1", "C1");
            (Structure.In_context_of, "G1", "G2");
          ]
        [
          Node.goal "G1" "All inputs are validated always";
          Node.goal "G2" "Another goal is here";
          Node.strategy "S1" "Argue by cases";
          Node.solution "Sn1" "Evidence doc";
          Node.context "C1" "Some context";
          Node.make ~id:(Id.of_string "AG1")
            ~node_type:(Node.Away_goal (Id.of_string "M1"))
            "Away goal claim text";
        ] );
    ( "statuses",
      Structure.of_nodes
        ~links:[ (Structure.Supported_by, "G1", "G2") ]
        [
          Node.make ~id:(Id.of_string "G1") ~node_type:Node.Goal
            ~status:Node.Undeveloped "Top claim {TBD} is safe";
          Node.make ~id:(Id.of_string "G2") ~node_type:Node.Goal
            ~status:Node.Uninstantiated "Formal proof of Quat4::quat";
          Node.make ~id:(Id.of_string "G3") ~node_type:Node.Goal
            ~status:Node.Undeveloped_uninstantiated "";
          Node.strategy "S1" "   ";
        ] );
    ( "weak-evidence",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "Sn1");
            (Structure.Supported_by, "G2", "Sn1");
            (Structure.Supported_by, "G1", "G2");
          ]
        ~evidence:
          [
            Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Test_results
              "a test";
          ]
        [
          Node.goal "G1" "The system never deadlocks";
          Node.goal "G2" "Deadlock is impossible in every mode";
          Node.solution ~evidence:"E1" "Sn1" "Test log";
        ] );
    ( "evidence-refs",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "Sn1");
            (Structure.Supported_by, "G1", "Sn2");
          ]
        [
          Node.goal "G1" "Claims are supported";
          Node.solution ~evidence:"Enope" "Sn1" "Missing evidence";
          Node.solution "Sn2" "No evidence cited";
        ] );
    ( "informal",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "S1");
            (Structure.Supported_by, "S1", "G2");
            (Structure.Supported_by, "S1", "G3");
            (Structure.Supported_by, "G2", "G4");
            (Structure.Supported_by, "G1", "G5");
            (Structure.Supported_by, "G5", "G6");
          ]
        [
          Node.goal "G1" "The system is acceptably safe to operate";
          Node.strategy "S1" "Argue over banks";
          Node.goal "G2" "The river bank erosion control scheme performs well";
          Node.goal "G3" "The bank branch office ledger computation is audited";
          Node.goal "G4" "There is no evidence that failures occur";
          Node.goal "G5" "Intermediate claim stands firmly";
          Node.goal "G6" "The system is acceptably safe to operate";
        ] );
    ( "multi-root",
      Structure.of_nodes [ Node.goal "G1" "A is true"; Node.goal "G2" "B is true" ]
    );
    ( "root-not-goal",
      Structure.of_nodes
        ~links:[ (Structure.Supported_by, "S1", "G1") ]
        [ Node.strategy "S1" "Argue somehow"; Node.goal "G1" "A claim is made" ]
    );
    ( "no-root",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "G2");
            (Structure.Supported_by, "G2", "G1");
          ]
        [ Node.goal "G1" "A holds"; Node.goal "G2" "B holds" ] );
    ("empty", Structure.of_nodes []);
    ( "unreachable",
      Structure.of_nodes
        ~links:
          [
            (Structure.Supported_by, "G1", "G2");
            (Structure.Supported_by, "G3", "G3b");
            (Structure.Supported_by, "G3b", "G3");
            (Structure.In_context_of, "G2", "C1");
          ]
        [
          Node.goal "G1" "Root claim is here";
          Node.goal "G2" "Child claim is here";
          Node.goal "G3" "Island claim floats";
          Node.goal "G3b" "Island partner floats";
          Node.context "C1" "Reachable context";
        ] );
  ]

(* Full parity on one structure: wf and informal for both rulesets,
   budgeted informal with identical step accounting, and CAE.  Returns
   an error description, or None when everything matches. *)
let parity_failure name s =
  let fail = ref None in
  let record fmt = Printf.ksprintf (fun m -> if !fail = None then fail := Some m) fmt in
  List.iter
    (fun ruleset ->
      let legacy_wf = Wellformed.check ~ruleset s in
      let fused = Fused.check ~ruleset (Caseir.intern s) in
      if render legacy_wf <> render fused.Fused.wf then
        record "%s: wf mismatch\n--- legacy:\n%s--- fused:\n%s" name
          (render legacy_wf) (render fused.Fused.wf);
      let legacy_inf = Informal.check_structure s in
      if render legacy_inf <> render fused.Fused.informal then
        record "%s: informal mismatch\n--- legacy:\n%s--- fused:\n%s" name
          (render legacy_inf) (render fused.Fused.informal);
      List.iter
        (fun fuel ->
          let b1 = Budget.make ~fuel () in
          let b2 = Budget.make ~fuel () in
          let legacy_b = Informal.check_structure ~budget:b1 s in
          let fused_b = Fused.check ~ruleset ~budget:b2 (Caseir.intern s) in
          if render legacy_b <> render fused_b.Fused.informal then
            record "%s: budgeted informal mismatch at fuel %d" name fuel;
          if Budget.steps b1 <> Budget.steps b2 then
            record "%s: step mismatch at fuel %d (legacy %d, fused %d)" name
              fuel (Budget.steps b1) (Budget.steps b2))
        fuels)
    rulesets;
  let cae = Cae.of_gsn s in
  let legacy_cae = Cae.check cae in
  let fused_cae = Fused.check_cae (Fused.intern_cae cae) in
  if render legacy_cae <> render fused_cae then
    record "%s: CAE mismatch\n--- legacy:\n%s--- fused:\n%s" name
      (render legacy_cae) (render fused_cae);
  let lint = Fused.lint (Caseir.intern s) in
  if render (Informal.check_structure s) <> render lint then
    record "%s: Fused.lint mismatch" name;
  !fail

let test_battery () =
  List.iter
    (fun (name, s) ->
      match parity_failure name s with
      | None -> ()
      | Some msg -> Alcotest.fail msg)
    battery

(* ~lints:false must skip the lints entirely — and hence never touch
   the budget, matching a caller that never invoked the legacy lint
   entry point. *)
let test_lints_off_leaves_budget_untouched () =
  let s = List.assoc "informal" battery in
  let b = Budget.make ~fuel:50 () in
  let r = Fused.check ~budget:b ~lints:false (Caseir.intern s) in
  Alcotest.(check int) "no informal findings" 0 (List.length r.Fused.informal);
  Alcotest.(check int) "no budget ticks" 0 (Budget.steps b);
  Alcotest.(check string) "wf unchanged" (render (Wellformed.check s))
    (render r.Fused.wf)

let test_ir_counters_advance () =
  let interned = Argus_obs.Counter.make "ir.interned"
  and passes = Argus_obs.Counter.make "ir.fused_passes" in
  let i0 = Argus_obs.Counter.value interned
  and p0 = Argus_obs.Counter.value passes in
  let s = List.assoc "clean" battery in
  let ir = Caseir.intern s in
  ignore (Fused.check ir);
  ignore (Fused.lint ir);
  Alcotest.(check bool) "ir.interned advanced" true
    (Argus_obs.Counter.value interned > i0);
  Alcotest.(check bool) "ir.fused_passes counted both passes" true
    (Argus_obs.Counter.value passes >= p0 + 2)

(* --- Random structures --- *)

(* Texts chosen to tickle every lint: ignorance phrases, shared-word
   equivocation among goal siblings, universal claims, placeholders,
   blanks, non-propositional goal text. *)
let texts =
  [|
    "The system is acceptably safe";
    "There is no evidence that failures occur";
    "The river bank erosion control scheme performs well";
    "The bank branch office ledger computation is audited";
    "All inputs are always validated";
    "Deadlock is impossible in every mode";
    "";
    "Claim {TBD} is pending";
    "Formal proof of Quat4::quat";
    "Argue over hazards";
    "Test report";
  |]

let gen_structure =
  let open QCheck.Gen in
  let node i =
    map2
      (fun (tcode, scode) text ->
        let node_type =
          match tcode with
          | 0 | 1 -> Node.Goal
          | 2 -> Node.Strategy
          | 3 -> Node.Solution
          | 4 -> Node.Context
          | 5 -> Node.Assumption
          | _ -> Node.Away_goal (Id.of_string "M1")
        in
        let status =
          match scode with
          | 0 | 1 -> Node.Developed
          | 2 -> Node.Undeveloped
          | 3 -> Node.Uninstantiated
          | _ -> Node.Undeveloped_uninstantiated
        in
        Node.make
          ~id:(Id.of_string (Printf.sprintf "N%d" i))
          ~node_type ~status
          texts.(text mod Array.length texts))
      (pair (int_bound 6) (int_bound 4))
      (int_bound (Array.length texts - 1))
  in
  let link n =
    map2
      (fun (kind, dangle) (a, b) ->
        let name j = Printf.sprintf "N%d" j in
        let src = if dangle = 0 then "Nowhere" else name (a mod n) in
        let dst = if dangle = 1 then "Nada" else name (b mod n) in
        ((if kind then Structure.Supported_by else Structure.In_context_of),
         src, dst))
      (pair bool (int_bound 11))
      (pair (int_bound (n - 1)) (int_bound (n - 1)))
  in
  int_range 1 8 >>= fun n ->
  pair
    (flatten_l (List.init n node))
    (list_size (int_range 0 12) (link n))
  |> map (fun (nodes, links) -> Structure.of_nodes ~links nodes)

let print_structure s =
  String.concat "; "
    (List.map
       (fun (n : Node.t) ->
         Printf.sprintf "%s %s %S" (Id.to_string n.Node.id)
           (Node.type_to_string n.Node.node_type)
           n.Node.text)
       (Structure.nodes s))

let fused_matches_legacy_on_random_structures =
  QCheck.Test.make ~name:"fused checker = legacy checkers (random structures)"
    ~count:300
    (QCheck.make ~print:print_structure gen_structure)
    (fun s ->
      match parity_failure "random" s with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* --- incremental re-interning: set_node = full re-intern --- *)

(* Replace one node's text in place; checking the patched IR must be
   byte-identical to checking a fresh intern of the edited
   structure. *)
let set_node_parity =
  QCheck.Test.make ~name:"set_node = full re-intern (random text edits)"
    ~count:300
    (QCheck.make
       ~print:(fun (s, _, _) -> print_structure s)
       QCheck.Gen.(
         gen_structure >>= fun s ->
         let n = List.length (Structure.nodes s) in
         pair (int_bound (max 0 (n - 1))) (int_bound (Array.length texts - 1))
         >>= fun (pick, text) -> return (s, pick, text)))
    (fun (s, pick, text) ->
      let ir = Caseir.intern s in
      let nodes = Structure.nodes s in
      let node = List.nth nodes (pick mod List.length nodes) in
      let n' =
        Node.make ~id:node.Node.id ~node_type:node.Node.node_type
          ~status:node.Node.status ?formal:node.Node.formal
          ~annotations:node.Node.annotations ?evidence:node.Node.evidence
          texts.(text)
      in
      let s' = Structure.add_node n' s in
      let i =
        match Caseir.entity_index ir node.Node.id with
        | Some i -> i
        | None -> QCheck.Test.fail_report "node lost its entity index"
      in
      let patched = Caseir.set_node ir s' i n' in
      let a = Fused.check ~lints:true patched in
      let b = Fused.check ~lints:true (Caseir.intern s') in
      let show r =
        render r.Fused.wf ^ "\x00" ^ render r.Fused.informal
      in
      if show a <> show b then
        QCheck.Test.fail_report
          (Printf.sprintf "patched IR drifted\n-- patched --\n%s\n-- fresh --\n%s"
             (show a) (show b))
      else true)

(* --- the compiled modular checker --- *)

module Modular = Argus_gsn.Modular

let gen_collection =
  let open QCheck.Gen in
  int_range 1 4 >>= fun m ->
  flatten_l
    (List.init m (fun k ->
         gen_structure >>= fun s -> return (Id.of_string (Printf.sprintf "M%d" k), s)))
  |> map
       (List.fold_left
          (fun acc (name, s) -> Modular.add_module ~name s acc)
          Modular.empty)

let check_modular_matches_legacy =
  QCheck.Test.make
    ~name:"Fused.check_modular = Modular.check (random collections)"
    ~count:200
    (QCheck.make
       ~print:(fun c ->
         String.concat ", " (List.map Id.to_string (Modular.module_names c)))
       gen_collection)
    (fun c ->
      let a = render (Fused.check_modular c) in
      let b = render (Modular.check c) in
      if a <> b then
        QCheck.Test.fail_report
          (Printf.sprintf "modular drift\n-- fused --\n%s\n-- legacy --\n%s" a b)
      else true)

let () =
  Alcotest.run "argus-ir"
    [
      ( "parity",
        [
          Alcotest.test_case "adversarial battery" `Quick test_battery;
          Alcotest.test_case "lints off leaves budget untouched" `Quick
            test_lints_off_leaves_budget_untouched;
          Alcotest.test_case "counters advance" `Quick test_ir_counters_advance;
          QCheck_alcotest.to_alcotest fused_matches_legacy_on_random_structures;
          QCheck_alcotest.to_alcotest set_node_parity;
          QCheck_alcotest.to_alcotest check_modular_matches_legacy;
        ] );
    ]
