The supervised always-on service (DESIGN.md section 11): request
round-trip, worker crash isolation with restart, overload shedding and
graceful drain.

A well-formed case file:

  $ printf 'case "t" {\n  evidence E1 analysis "a"\n  goal G1 "t holds" { supported-by Sn1 }\n  solution Sn1 "s" { evidence E1 }\n}\n' > ok.arg

Unix socket paths are length-limited; keep them short:

  $ S=${TMPDIR:-/tmp}/argus-$$.sock

Start a one-worker server with a deterministic fault armed for the
request id "boom" (the svc.request probe is keyed by id, so only that
request is hit, whatever the parallelism).  The client retries its
connect with backoff, so no readiness polling is needed:

  $ ARGUS_FAULT='svc.request@boom:1:42' argus serve --socket "$S" --jobs 1 2>/dev/null &
  $ SERVE_PID=$!

A normal request round-trips:

  $ argus call --socket "$S" --id r1 check ok.arg
  {
    "id": "r1",
    "trace_id": "t1",
    "status": "ok",
    "exit": 0,
    "report": {
      "diagnostics": [],
      "errors": 0,
      "warnings": 0,
      "infos": 0
    }
  }

The "boom" request crashes its worker mid-handling.  The victim gets a
typed internal error (exit 2), not a hung connection:

  $ argus call --socket "$S" --id boom check ok.arg
  {
    "id": "boom",
    "trace_id": "t2",
    "status": "error",
    "code": "rt/internal-error",
    "message": "injected fault at probe svc.request"
  }
  [2]

The supervisor restarted the worker with backoff; the very next
request succeeds:

  $ argus call --socket "$S" --id r2 check ok.arg > /dev/null

health reports the restart and that the server is still ready:

  $ argus call --socket "$S" health | grep -E '"(ready|restarts)"'
    "ready": true,
    "restarts": 1,

SIGTERM stops admission, drains in-flight work and exits 0:

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID

Overload: a zero-capacity queue sheds every request immediately with a
typed svc/overloaded answer, and the server still drains cleanly:

  $ argus serve --socket "$S" --jobs 1 --queue-cap 0 2>/dev/null &
  $ SHED_PID=$!
  $ argus call --socket "$S" --id r1 check ok.arg
  {
    "id": "r1",
    "trace_id": "t1",
    "status": "error",
    "code": "svc/overloaded",
    "message": "queue full (0 waiting); request shed"
  }
  [2]
  $ kill -TERM $SHED_PID
  $ wait $SHED_PID

Flag validation is strict — a zero worker count is a usage error, not
a hung server:

  $ argus serve --socket "$S" --jobs 0 2>&1 | head -1
  argus: option '--jobs': --jobs must be a positive integer
