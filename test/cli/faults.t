Fault isolation and resource budgets at the CLI (DESIGN.md section 10).

Eight well-formed case files:

  $ for i in 1 2 3 4 5 6 7 8; do
  >   printf 'case "g%s" {\n  evidence E1 analysis "a"\n  goal G1 "claim %s holds" { supported-by Sn1 }\n  solution Sn1 "s" { evidence E1 }\n}\n' $i $i > g$i.arg
  > done

A deterministic fault injected into the check of g3.arg (keyed by file
basename, so the draw is independent of --jobs) is confined to that
file: the other seven files are still checked, results stay in input
order, and the batch exits 2 (internal error) rather than crashing:

  $ ARGUS_FAULT='check.file@g3.arg:1:42' argus check --jobs 4 \
  >   g1.arg g2.arg g3.arg g4.arg g5.arg g6.arg g7.arg g8.arg
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  error [rt/internal-error] internal error checking g3.arg: injected fault at probe check.file
  1 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  [2]

The same batch sequentially — identical outcome:

  $ ARGUS_FAULT='check.file@g3.arg:1:42' argus check \
  >   g1.arg g2.arg g3.arg g4.arg g5.arg g6.arg g7.arg g8.arg
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  error [rt/internal-error] internal error checking g3.arg: injected fault at probe check.file
  1 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  [2]

Without the fault the batch is clean:

  $ argus check --jobs 4 g1.arg g2.arg g3.arg g4.arg g5.arg g6.arg g7.arg g8.arg
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info

A malformed ARGUS_FAULT spec is reported and ignored, not fatal:

  $ ARGUS_FAULT='not-a-spec' argus check g1.arg
  argus: ignoring ARGUS_FAULT: malformed fault spec "not-a-spec" (expected probe[@key]:rate[:seed])
  0 error(s), 0 warning(s), 0 info

Resource budgets: this program loops forever under SLD resolution
(exponential search below the depth bound), so an unbudgeted prove
would hang.  A fuel budget stops it deterministically:

  $ printf 'p :- p, p.\np :- p.\n' > loop.pl
  $ argus prove --fuel 1000 loop.pl p
  not derivable
  warning [rt/budget-exhausted] budget-exhausted: prolog after 1001 steps (fuel); result may be incomplete
  0 error(s), 1 warning(s), 0 info
  [1]

A wall-clock deadline also stops it; the step count at which the
deadline fires varies run to run, so it is normalised here:

  $ argus prove --deadline 1 loop.pl p 2>&1 \
  >   | sed 's/after [0-9][0-9]* steps/after N steps/'
  not derivable
  warning [rt/budget-exhausted] budget-exhausted: prolog after N steps (deadline); result may be incomplete
  0 error(s), 1 warning(s), 0 info

The budget flags read their defaults from the environment:

  $ ARGUS_FUEL=1000 argus prove loop.pl p
  not derivable
  warning [rt/budget-exhausted] budget-exhausted: prolog after 1001 steps (fuel); result may be incomplete
  0 error(s), 1 warning(s), 0 info
  [1]
