Batch checking fans files out across domains with --jobs; stdout,
stderr and the exit code must be byte-identical to a sequential run,
with per-file reports in input order.

  $ argus check press.arg modular.arg > seq.out 2> seq.err
  $ argus check --jobs 2 press.arg modular.arg > par.out 2> par.err
  $ diff seq.out par.out
  $ diff seq.err par.err
  $ cat par.out
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info

A failing file fails the batch in either mode, and its diagnostics
stay attached to its slot in the input order:

  $ argus check press.arg broken.arg modular.arg > seq.out 2> seq.err; echo "exit $?"
  exit 1
  $ argus check --jobs 2 press.arg broken.arg modular.arg > par.out 2> par.err; echo "exit $?"
  exit 1
  $ diff seq.out par.out
  $ diff seq.err par.err

ARGUS_JOBS sets the default worker count; an explicit --jobs wins:

  $ ARGUS_JOBS=2 argus check press.arg modular.arg
  0 error(s), 0 warning(s), 0 info
  0 error(s), 0 warning(s), 0 info
  $ ARGUS_JOBS=not-a-number argus check --jobs 1 modular.arg
  0 error(s), 0 warning(s), 0 info

JSON output is unaffected by the worker count:

  $ argus check --format json --jobs 4 modular.arg
  {
    "diagnostics": [],
    "errors": 0,
    "warnings": 0,
    "infos": 0
  }
