The incremental case store behind argus serve --store: put a case,
patch it by digest, fetch verdicts that match a from-scratch check.

A clean case file:

  $ printf 'case "t" {\n  evidence E1 analysis "a"\n  goal G1 "t holds" { supported-by S1 }\n  strategy S1 "argue by parts" { supported-by G2, G3 }\n  goal G2 "part two holds" { undeveloped }\n  goal G3 "part three holds" { supported-by Sn1 }\n  solution Sn1 "analysis results" { evidence E1 }\n}\n' > case.arg

  $ S=${TMPDIR:-/tmp}/argus-store-$$.sock

Without --store the stateful ops are rejected with a clear error:

  $ argus serve --socket "$S" --jobs 1 2>/dev/null &
  $ PLAIN_PID=$!
  $ argus call --socket "$S" --id r1 put case.arg
  {
    "id": "r1",
    "trace_id": "t1",
    "status": "error",
    "code": "svc/bad-request",
    "message": "put needs a stateful server: start it with \"argus serve --store\""
  }
  [2]
  $ kill -TERM $PLAIN_PID
  $ wait $PLAIN_PID

With --store, put answers the case digest (content-addressed, so it is
stable across runs):

  $ argus serve --socket "$S" --store --jobs 1 2>/dev/null &
  $ SERVE_PID=$!
  $ argus call --socket "$S" --id p1 put case.arg
  {
    "id": "p1",
    "trace_id": "t1",
    "status": "ok",
    "exit": 0,
    "digest": "1c198abab2986f691fcc80cc493e0a48",
    "seq": 1
  }
  $ D=$(argus call --socket "$S" put case.arg | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')

The stored case is clean, so its verdict is clean too:

  $ argus call --socket "$S" --id v1 verdict --digest "$D" | grep -E '"(exit|errors)"'
    "exit": 0,
      "errors": 0,

Patch a goal's text by digest; the op answers the new address:

  $ D2=$(argus call --socket "$S" patch --digest "$D" --edit 'set-text:G3=part three holds after rework' | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
  $ test "$D" != "$D2" && echo moved
  moved

A shape edit that orphans G3 shows up in the next verdict, exactly as
a stateless check of the same case would report it:

  $ D3=$(argus call --socket "$S" patch --digest "$D2" --edit 'unlink:supported-by:G3:Sn1' | sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p')
  $ argus call --socket "$S" --id v2 verdict --digest "$D3" | grep -E '"exit"|unsupported-goal'
    "exit": 1,
          "code": "gsn/unsupported-goal",

Unknown digests and malformed edits each carry their own error code —
a client can tell "re-put the case" from "fix the batch" without
parsing prose:

  $ argus call --socket "$S" verdict --digest feedface | grep '"code"'
    "code": "svc/unknown-digest",
  $ argus call --socket "$S" patch --digest "$D3" --edit 'set-text:Gmissing=x' | grep -E '"(code|message)"'
    "code": "svc/bad-request",
    "message": "set-text: no node Gmissing"

The server's stats expose the store gauge and reuse counters, plus the
store's durability surface (in-memory here: active, not durable):

  $ argus call --socket "$S" stats | grep -cE '"store\.(nodes|node_hits|reused_verdicts|dirty_cone)"'
  4
  $ argus call --socket "$S" stats | grep -E '"(mode|durable)"'
      "mode": "active",
      "durable": false,

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
