Hostile-network serving (DESIGN.md section 16): a TCP listener on an
ephemeral port discovered through --port-file, every op round-tripped
over --connect, and a SIGKILL'd primary survived by failing over to a
second endpoint.

A well-formed case file:

  $ printf 'case "t" {\n  evidence E1 analysis "a"\n  goal G1 "t holds" { supported-by Sn1 }\n  solution Sn1 "s" { evidence E1 }\n}\n' > ok.arg

Start a store-backed server on an ephemeral port.  The port file is
written before the listener is advertised, so polling it is enough:

  $ argus serve --listen 127.0.0.1:0 --port-file port --store --jobs 1 2>/dev/null &
  $ SERVE_PID=$!
  $ for i in $(seq 100); do [ -s port ] && break; sleep 0.1; done
  $ PORT=$(cat port)

check round-trips over TCP exactly as over the Unix socket:

  $ argus call --connect 127.0.0.1:$PORT --id r1 check ok.arg
  {
    "id": "r1",
    "trace_id": "t1",
    "status": "ok",
    "exit": 0,
    "report": {
      "diagnostics": [],
      "errors": 0,
      "warnings": 0,
      "infos": 0
    }
  }

prove, fallacies and probe:

  $ argus call --connect 127.0.0.1:$PORT --id r2 prove desert_bank.pl --goal 'adjacent(desert_bank, river)' | grep '"derivable"'
    "derivable": true,

  $ argus call --connect 127.0.0.1:$PORT --id r3 fallacies ok.arg > /dev/null

  $ argus call --connect 127.0.0.1:$PORT --id r4 probe haley.nd | grep -c '"load_bearing": true'
  3

health and stats:

  $ argus call --connect 127.0.0.1:$PORT health | grep '"ready"'
    "ready": true,

  $ argus call --connect 127.0.0.1:$PORT stats | grep -c '"queue_depth"'
  1

The store ops.  put answers the case's content address and the store's
sequence cursor (never pinned here: under retries the cursor may
legitimately advance past the obvious count):

  $ argus call --connect 127.0.0.1:$PORT put ok.arg > put.json
  $ grep -c '"digest"' put.json
  1
  $ grep -c '"seq"' put.json
  1
  $ D=$(sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' put.json)

patch moves the digest; the ack echoes the new one plus the cursor:

  $ argus call --connect 127.0.0.1:$PORT patch --digest "$D" --edit 'set-text:G1=t still holds' > patch.json
  $ grep -c '"digest"\|"seq"' patch.json
  2
  $ D2=$(sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' patch.json)
  $ [ "$D" != "$D2" ] && echo moved
  moved

verdict answers the stored case's report and confidence:

  $ argus call --connect 127.0.0.1:$PORT verdict --digest "$D2" | grep -c '"confidence"'
  1

Failover.  A second server, then SIGKILL the primary — no drain, no
goodbye, the TCP peer just vanishes.  The client walks the --connect
list and completes on the survivor within its deadline:

  $ argus serve --listen 127.0.0.1:0 --port-file port2 --jobs 1 2>/dev/null &
  $ PID2=$!
  $ for i in $(seq 100); do [ -s port2 ] && break; sleep 0.1; done
  $ PORT2=$(cat port2)

  $ kill -9 $SERVE_PID

  $ argus call --connect 127.0.0.1:$PORT --connect 127.0.0.1:$PORT2 --id f1 check ok.arg | grep '"exit"'
    "exit": 0,

The survivor drains cleanly:

  $ kill -TERM $PID2
  $ wait $PID2

A connect against the dead primary alone stays bounded — a typed
client error, not a hang:

  $ argus call --connect 127.0.0.1:$PORT --id f2 health 2>&1 | head -1 | sed "s/$PORT/PORT/"
  argus call: cannot connect: connect 127.0.0.1:PORT: Connection refused
