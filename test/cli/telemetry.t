Service telemetry (DESIGN.md section 12): request-scoped traces over
the wire, the flight recorder, and the one-screen top view.

A well-formed case file and a short socket path:

  $ printf 'case "t" {\n  evidence E1 analysis "a"\n  goal G1 "t holds" { supported-by Sn1 }\n  solution Sn1 "s" { evidence E1 }\n}\n' > ok.arg
  $ S=${TMPDIR:-/tmp}/argus-tm-$$.sock

A server with a very low slow-request threshold, so the flight
recorder sees every request as slow:

  $ argus serve --socket "$S" --jobs 1 --slow-ms 0.0001 2>flight.log &
  $ SERVE_PID=$!

--trace asks the server to capture the request's span tree and ship it
back in the response; the client renders it to stderr.  Timings vary
run to run, so strip them:

  $ argus call --socket "$S" --id r1 --trace check ok.arg > /dev/null 2> trace.err
  $ sed -E 's/ +[0-9.]+ (ns|us|ms|s)$//' trace.err
  == server trace (t1) ==
    svc.check
      gsn.wellformed
        gsn.wellformed.links
        gsn.wellformed.cycles
        gsn.wellformed.nodes

SIGUSR1 dumps the flight recorder as JSONL on stderr without
disturbing the server; the follow-up health round-trip proves it is
still serving and gives the acceptor a loop turn to write the dump:

  $ kill -USR1 $SERVE_PID
  $ argus call --socket "$S" health > /dev/null
  $ sleep 0.3
  $ grep -o '"type":"flight"' flight.log | sort -u
  "type":"flight"
  $ grep -o '"kind":"admit","id":"r1","op":"check"' flight.log | sort -u
  "kind":"admit","id":"r1","op":"check"
  $ grep -o '"kind":"slow","id":"r1","op":"check"' flight.log | sort -u
  "kind":"slow","id":"r1","op":"check"

argus top renders a one-screen snapshot from the queue-bypassing stats
op.  The numbers vary; the shape does not:

  $ argus top --once --socket "$S" > top.out
  $ grep -c '^argus top' top.out
  1
  $ grep -o 'ready true' top.out
  ready true
  $ awk '$1 == "all" || $1 == "check" { print $1 }' top.out
  all
  check
  $ grep -o 'breakers: check=closed' top.out
  breakers: check=closed

Drain dumps the recorder one last time, with the drain event as the
final entry:

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ grep -o '"kind":"drain"' flight.log | sort -u
  "kind":"drain"

A crashed worker leaves a restart event behind (the deterministic
"boom" fault crashes the worker mid-request, as in serve.t):

  $ ARGUS_FAULT='svc.request@boom:1:42' argus serve --socket "$S" --jobs 1 2>crash.log &
  $ CRASH_PID=$!
  $ argus call --socket "$S" --id boom check ok.arg > /dev/null 2>&1
  [2]
  $ kill -TERM $CRASH_PID
  $ wait $CRASH_PID
  $ grep -o '"kind":"restart","worker":0,"attempt":1,"id":"boom"' crash.log | sort -u
  "kind":"restart","worker":0,"attempt":1,"id":"boom"

And shed requests (zero-capacity queue) are recorded too:

  $ argus serve --socket "$S" --jobs 1 --queue-cap 0 2>shed.log &
  $ SHED_PID=$!
  $ argus call --socket "$S" --id r9 check ok.arg > /dev/null 2>&1
  [2]
  $ kill -TERM $SHED_PID
  $ wait $SHED_PID
  $ grep -o '"kind":"shed","id":"r9","op":"check"' shed.log | sort -u
  "kind":"shed","id":"r9","op":"check"
