Crash recovery end-to-end: kill -9 a durable store server mid
patch-storm, restart it on the same data dir, and check that what it
recovered is a checksum-valid prefix of the committed history — with
one verdict render byte-identical to an uninterrupted oracle run.

  $ DATA=${ARGUS_DURABILITY_DATA:-/tmp/argus-durability-cram}
  $ rm -rf "$DATA"
  $ S=${TMPDIR:-/tmp}/argus-dur-$$.sock
  $ O=${TMPDIR:-/tmp}/argus-dur-oracle-$$.sock
  $ printf 'case "storm" {\n  evidence E1 analysis "a"\n  goal G1 "t holds" { supported-by S1 }\n  strategy S1 "argue by parts" { supported-by G2 }\n  goal G2 "part two holds" { supported-by Sn1 }\n  solution Sn1 "analysis results" { evidence E1 }\n}\n' > storm.arg
  $ digest_of() { sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p'; }

Start the durable server (sync always: an acked patch is fsynced
before the client hears about it) and put the storm case:

  $ argus serve --socket "$S" --store --data-dir "$DATA" --sync always --jobs 1 2>server.log &
  $ SERVE_PID=$!
  $ D0=$(argus call --socket "$S" put storm.arg | digest_of)
  $ test -n "$D0" && echo put-acked
  put-acked

The storm: a client chains patches, recording every acked digest.
Once a handful are acked the server is killed -9 — no drain, no
flush, whatever was mid-write stays mid-written:

  $ (dig="$D0"; i=1; while [ $i -le 200 ]; do out=$(argus call --socket "$S" patch --digest "$dig" --edit "set-text:G2=storm revision $i" 2>/dev/null) || break; dig=$(printf '%s' "$out" | digest_of); [ -n "$dig" ] || break; echo "$dig" >> acks.log; i=$((i+1)); done) &
  $ STORM_PID=$!
  $ while [ ! -s acks.log ] || [ "$(wc -l < acks.log)" -lt 5 ]; do sleep 0.05; done
  $ kill -9 $SERVE_PID
  $ wait $STORM_PID
  $ wait $SERVE_PID
  [137]
  $ ACKED=$(wc -l < acks.log)
  $ test "$ACKED" -ge 5 && echo storm-acked
  storm-acked

Restart on the same data dir: recovery replays the WAL, verifying
every record's digest, and reports what it restored:

  $ argus serve --socket "$S" --store --data-dir "$DATA" --sync always --jobs 1 2>recover.log &
  $ SERVE2_PID=$!
  $ argus call --socket "$S" health | grep -E '"(mode|durable)"'
      "mode": "active",
      "durable": true,
  $ grep -c 'recovered 1 case' recover.log
  1

The recovered digest must be a committed point of the history: at or
after the last acked patch (an appended-but-unacked record can be
durable — the ack is what promises it), never behind it, never a
digest that no run of the storm could produce.  The oracle replays
the same deterministic edit sequence uninterrupted and records every
digest it passes through:

  $ R=$(argus call --socket "$S" stats | grep -A1 '"digests"' | tail -1 | tr -cd '0-9a-f')
  $ test -n "$R" && echo recovered-digest
  recovered-digest
  $ argus serve --socket "$O" --store --jobs 1 2>/dev/null &
  $ ORACLE_PID=$!
  $ OD=$(argus call --socket "$O" put storm.arg | digest_of)
  $ test "$OD" = "$D0" && echo same-root
  same-root
  $ dig="$OD"; i=1; while [ $i -le 200 ]; do dig=$(argus call --socket "$O" patch --digest "$dig" --edit "set-text:G2=storm revision $i" | digest_of); echo "$dig" >> oracle.log; i=$((i+1)); done
  $ kill -TERM $ORACLE_PID
  $ wait $ORACLE_PID
  $ K=$(grep -n "^$R\$" oracle.log | cut -d: -f1)
  $ test -n "$K" && echo recovered-point-is-committed
  recovered-point-is-committed
  $ test "$K" -ge "$ACKED" && echo no-acked-patch-lost
  no-acked-patch-lost

Byte-identical verdicts across the crash: a fresh oracle run stopped
at exactly the recovered point must render the same verdict, byte for
byte (ids pinned so the comparison is exact):

  $ argus call --socket "$S" --raw "{\"id\":\"v\",\"trace_id\":\"T\",\"op\":\"verdict\",\"digest\":\"$R\"}" verdict > recovered.json
  $ argus serve --socket "$O" --store --jobs 1 2>/dev/null &
  $ ORACLE2_PID=$!
  $ dig=$(argus call --socket "$O" put storm.arg | digest_of); i=1; while [ $i -le "$K" ]; do dig=$(argus call --socket "$O" patch --digest "$dig" --edit "set-text:G2=storm revision $i" | digest_of); i=$((i+1)); done
  $ test "$dig" = "$R" && echo oracle-converged
  oracle-converged
  $ argus call --socket "$O" --raw "{\"id\":\"v\",\"trace_id\":\"T\",\"op\":\"verdict\",\"digest\":\"$R\"}" verdict > oracle.json
  $ kill -TERM $ORACLE2_PID
  $ wait $ORACLE2_PID
  $ cmp recovered.json oracle.json && echo byte-identical
  byte-identical

The recovered server keeps serving writes, and this time drains
gracefully — flushing the WAL on the way out:

  $ argus call --socket "$S" patch --digest "$R" --edit 'set-text:G2=after the crash' | grep '"status"'
    "status": "ok",
  $ kill -TERM $SERVE2_PID
  $ wait $SERVE2_PID
  $ rm -rf "$DATA"
