Tracing: ARGUS_TRACE=1 prints a span tree and engine counters on stderr
while the command's normal output and exit code are untouched.

  $ ARGUS_TRACE=1 argus check press.arg 2>trace.err
  0 error(s), 0 warning(s), 0 info
  $ grep -c "^  argus.check " trace.err
  1
  $ grep -c "gsn.wellformed.links" trace.err
  2
  $ grep "gsn.wf.nodes_visited" trace.err | awk '{print $1, $2}'
  gsn.wf.nodes_visited 7
  $ grep "gsn.wf.links_checked" trace.err | awk '{print $1, $2}'
  gsn.wf.links_checked 6

The --trace flag does the same without the environment variable:

  $ argus check press.arg --trace 2>trace2.err
  0 error(s), 0 warning(s), 0 info
  $ grep -c "== argus trace ==" trace2.err
  1

--trace-json writes one JSON event per line; the resolution engine
counters come out nonzero for a derivable goal:

  $ argus prove desert_bank.pl 'adjacent(desert_bank, river)' --trace-json trace.jsonl
  adjacent(desert_bank, river)   [clause 2]
    is_a(desert_bank, bank)   [clause 0]
    adjacent(bank, river)   [clause 1]
  $ grep '"name":"prolog.unifications"' trace.jsonl
  {"type":"counter","name":"prolog.unifications","value":3}
  $ grep '"name":"prolog.backtracks"' trace.jsonl
  {"type":"counter","name":"prolog.backtracks","value":0}
  $ grep '"name":"prolog.solutions"' trace.jsonl
  {"type":"counter","name":"prolog.solutions","value":1}

The dispatch index rules clauses out before they are freshened or
unified.  Three index lookups over the three-clause program account
for every clause: hits + misses = 9, and only 4 of 9 candidates
survive the predicate and first-argument filters (of which 3 are
actually tried — the answer stream is lazy):

  $ grep '"name":"prolog.index_hits"' trace.jsonl
  {"type":"counter","name":"prolog.index_hits","value":4}
  $ grep '"name":"prolog.index_misses"' trace.jsonl
  {"type":"counter","name":"prolog.index_misses","value":5}
  $ grep '"name":"prolog.clause_tries"' trace.jsonl
  {"type":"counter","name":"prolog.clause_tries","value":3}
  $ grep -c '"type":"span"' trace.jsonl
  2

Machine-readable diagnostics share the same JSON story:

  $ argus check broken.arg --format json | head -8
  {
    "diagnostics": [
      {
        "severity": "error",
        "code": "gsn/bad-support-link",
        "message": "a goal cannot be supported by a context",
        "loc": null,
        "subjects": [
