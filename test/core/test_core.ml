open Argus_core

(* --- Id --- *)

let test_id_valid () =
  Alcotest.(check string)
    "round-trip" "G1.sub-goal_2"
    (Id.to_string (Id.of_string "G1.sub-goal_2"));
  Alcotest.(check bool) "letter start required" false (Id.is_valid "1abc");
  Alcotest.(check bool) "empty invalid" false (Id.is_valid "");
  Alcotest.(check bool) "space invalid" false (Id.is_valid "a b");
  Alcotest.(check bool) "simple valid" true (Id.is_valid "G1")

let test_id_invalid_raises () =
  Alcotest.check_raises "raises Invalid" (Id.Invalid "!bad") (fun () ->
      ignore (Id.of_string "!bad"))

let test_id_opt () =
  Alcotest.(check bool) "some" true (Id.of_string_opt "ok" <> None);
  Alcotest.(check bool) "none" true (Id.of_string_opt "" = None)

let test_id_gen () =
  let g = Id.Gen.create ~prefix:"G" () in
  let a = Id.Gen.fresh g and b = Id.Gen.fresh g in
  Alcotest.(check string) "first" "G1" (Id.to_string a);
  Alcotest.(check string) "second" "G2" (Id.to_string b);
  let used = Id.Set.of_list [ Id.of_string "G3"; Id.of_string "G4" ] in
  let c = Id.Gen.fresh_avoiding g used in
  Alcotest.(check string) "skips used" "G5" (Id.to_string c)

let test_id_gen_bad_prefix () =
  Alcotest.check_raises "bad prefix" (Id.Invalid "9") (fun () ->
      ignore (Id.Gen.create ~prefix:"9" ()))

let id_gen_distinct =
  QCheck.Test.make ~name:"generator never repeats" ~count:100
    QCheck.(int_bound 50)
    (fun n ->
      let g = Id.Gen.create () in
      let ids = List.init (n + 2) (fun _ -> Id.Gen.fresh g) in
      List.length (Id.Set.elements (Id.Set.of_list ids)) = n + 2)

(* --- Loc --- *)

let test_loc_merge () =
  let p1 = Loc.pos ~line:1 ~col:0 () and p2 = Loc.pos ~line:2 ~col:5 () in
  let p3 = Loc.pos ~line:3 ~col:1 () in
  let a = Loc.make p1 p2 and b = Loc.make p2 p3 in
  let m = Loc.merge a b in
  Alcotest.(check bool) "start" true (m.Loc.start = p1);
  Alcotest.(check bool) "stop" true (m.Loc.stop = p3);
  let m' = Loc.merge b a in
  Alcotest.(check bool) "merge commutes" true (Loc.equal m m')

let test_loc_dummy () =
  Alcotest.(check bool) "dummy is dummy" true (Loc.is_dummy Loc.dummy);
  let real = Loc.point (Loc.pos ~line:1 ~col:0 ()) in
  Alcotest.(check bool) "real is not" false (Loc.is_dummy real)

let test_loc_pp () =
  let l = Loc.point (Loc.pos ~file:"f.arg" ~line:3 ~col:7 ()) in
  Alcotest.(check string) "point" "f.arg:3.7" (Format.asprintf "%a" Loc.pp l);
  let s =
    Loc.make (Loc.pos ~file:"f" ~line:1 ~col:0 ()) (Loc.pos ~file:"f" ~line:2 ~col:4 ())
  in
  Alcotest.(check string) "span" "f:1.0-2.4" (Format.asprintf "%a" Loc.pp s)

(* --- Diagnostic --- *)

let test_diag_ordering () =
  let e = Diagnostic.error ~code:"z" "zz" in
  let w = Diagnostic.warning ~code:"a" "aa" in
  let i = Diagnostic.info ~code:"a" "aa" in
  let sorted = Diagnostic.sort [ i; w; e ] in
  Alcotest.(check (list string))
    "severity-major order" [ "z"; "a"; "a" ]
    (List.map (fun d -> d.Diagnostic.code) sorted)

let test_diag_counts () =
  let ds =
    [
      Diagnostic.error ~code:"x" "m";
      Diagnostic.warning ~code:"y" "m";
      Diagnostic.warning ~code:"y" "m2";
    ]
  in
  Alcotest.(check bool) "has errors" true (Diagnostic.has_errors ds);
  Alcotest.(check int) "warnings" 2 (Diagnostic.count Diagnostic.Warning ds);
  Alcotest.(check bool)
    "no errors" false
    (Diagnostic.has_errors (List.tl ds))

let test_diag_format () =
  let d =
    Diagnostic.errorf ~code:"gsn/x" ~subjects:[ Id.of_string "G1" ]
      "bad node %d" 7
  in
  let s = Format.asprintf "%a" Diagnostic.pp d in
  Alcotest.(check string) "rendering" "error [gsn/x] bad node 7 (G1)" s

(* --- Evidence --- *)

let test_evidence_support () =
  Alcotest.(check bool)
    "proof supports universal" true
    Evidence.(supports_kind Formal_proof Universal);
  Alcotest.(check bool)
    "tests do not support universal" false
    Evidence.(supports_kind Test_results Universal);
  Alcotest.(check bool)
    "expert judgement only existential" false
    Evidence.(supports_kind Expert_judgement Statistical);
  Alcotest.(check bool)
    "field data supports statistical" true
    Evidence.(supports_kind Field_data Statistical)

let test_evidence_strings () =
  List.iter
    (fun k ->
      match Evidence.kind_of_string (Evidence.kind_to_string k) with
      | Some k' when k = k' -> ()
      | _ -> Alcotest.failf "kind round-trip failed")
    Evidence.all_kinds

(* --- Lifecycle --- *)

let test_lifecycle_literacy_range () =
  List.iter
    (fun r ->
      let p = Lifecycle.logic_literacy r in
      if p < 0.0 || p > 1.0 then Alcotest.failf "literacy out of range")
    Lifecycle.all_roles

let test_lifecycle_engineers_most_literate () =
  let eng = Lifecycle.logic_literacy Lifecycle.Design_engineer in
  List.iter
    (fun r ->
      if r <> Lifecycle.Design_engineer && Lifecycle.logic_literacy r > eng
      then Alcotest.failf "a role outranks design engineers in logic literacy")
    Lifecycle.all_roles

let test_lifecycle_each_phase_has_reader () =
  List.iter
    (fun phase ->
      if
        not
          (List.exists
             (fun r -> Lifecycle.reads_in_phase r phase)
             Lifecycle.all_roles)
      then Alcotest.failf "phase with no reader")
    Lifecycle.all_phases

let test_role_round_trip () =
  List.iter
    (fun r ->
      match Lifecycle.role_of_string (Lifecycle.role_to_string r) with
      | Some r' when r = r' -> ()
      | _ -> Alcotest.failf "role round-trip failed")
    Lifecycle.all_roles

(* --- Textutil --- *)

let test_words () =
  Alcotest.(check (list string))
    "splits" [ "The"; "thrust"; "reversers" ]
    (Textutil.words "The thrust-reversers!")

let test_normalise () =
  Alcotest.(check string) "plural" "bank" (Textutil.normalise_word "Banks");
  Alcotest.(check string) "keeps ss" "class" (Textutil.normalise_word "class");
  Alcotest.(check string) "short kept" "is" (Textutil.normalise_word "is")

let test_sentences () =
  Alcotest.(check int) "count" 2
    (List.length (Textutil.sentences "All is well. Honest!"))

let test_syllables () =
  Alcotest.(check int) "mortal" 2 (Textutil.syllables "mortal");
  Alcotest.(check int) "safe (silent e)" 1 (Textutil.syllables "safe");
  Alcotest.(check int) "a" 1 (Textutil.syllables "a")

let test_flesch_ordering () =
  let easy = "The cat sat. The dog ran. All is well." in
  let hard =
    "Notwithstanding comprehensive organisational considerations, \
     internationalisation necessitates interdepartmental coordination \
     methodologies."
  in
  Alcotest.(check bool)
    "easy scores higher" true
    (Textutil.flesch_reading_ease easy > Textutil.flesch_reading_ease hard)

let test_levenshtein () =
  Alcotest.(check int) "identity" 0 (Textutil.levenshtein "abc" "abc");
  Alcotest.(check int) "kitten" 3 (Textutil.levenshtein "kitten" "sitting");
  Alcotest.(check int) "empty" 3 (Textutil.levenshtein "" "abc")

let levenshtein_symmetry =
  QCheck.Test.make ~name:"levenshtein is symmetric" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 12)) (string_of_size (QCheck.Gen.int_bound 12)))
    (fun (a, b) -> Textutil.levenshtein a b = Textutil.levenshtein b a)

let levenshtein_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    QCheck.(triple (string_of_size (QCheck.Gen.int_bound 8)) (string_of_size (QCheck.Gen.int_bound 8)) (string_of_size (QCheck.Gen.int_bound 8)))
    (fun (a, b, c) ->
      Textutil.levenshtein a c
      <= Textutil.levenshtein a b + Textutil.levenshtein b c)

let test_symbolic_detection () =
  Alcotest.(check bool)
    "natural text" false
    (Textutil.contains_symbolic_notation
       "the thrust reversers are inhibited when the aircraft is not on the ground");
  Alcotest.(check bool)
    "arrow formula" true
    (Textutil.contains_symbolic_notation "~on_grnd -> ~threv_en");
  Alcotest.(check bool)
    "applied term" true
    (Textutil.contains_symbolic_notation "wcet(task_1, 250) holds");
  Alcotest.(check bool)
    "ampersand" true
    (Textutil.contains_symbolic_notation "code_reviewed & unit_tests_passed")

(* --- Json --- *)

let test_json_print () =
  let j =
    Json.Obj
      [
        ("name", Json.Str "G1");
        ("n", Json.int 3);
        ("ok", Json.Bool true);
        ("xs", Json.List [ Json.Null; Json.Num 1.5 ]);
      ]
  in
  Alcotest.(check string) "compact"
    {|{"name":"G1","n":3,"ok":true,"xs":[null,1.5]}|}
    (Json.to_string j)

let test_json_parse () =
  (match Json.of_string {| { "a": [1, 2, -3.5e1], "b": "x\ny", "c": {} } |} with
  | Ok j ->
      Alcotest.(check bool) "member a" true
        (Json.member "a" j = Some (Json.List [ Json.Num 1.0; Json.Num 2.0; Json.Num (-35.0) ]));
      Alcotest.(check bool) "escape decoded" true
        (Json.member "b" j = Some (Json.Str "x\ny"))
  | Error e -> Alcotest.fail e);
  (match Json.of_string {|"Aé"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode parse")

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "should not parse: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{'a':1}" ]

let json_roundtrip =
  let gen =
    QCheck.Gen.(
      sized (fun n ->
          fix
            (fun self n ->
              if n <= 0 then
                oneof
                  [
                    return Json.Null;
                    map (fun b -> Json.Bool b) bool;
                    map (fun i -> Json.int i) (int_range (-1000) 1000);
                    map (fun s -> Json.Str s)
                      (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
                  ]
              else
                oneof
                  [
                    map (fun xs -> Json.List xs)
                      (list_size (int_bound 4) (self (n / 2)));
                    map
                      (fun kvs ->
                        Json.Obj
                          (List.mapi
                             (fun i (_, v) -> (Printf.sprintf "k%d" i, v))
                             kvs))
                      (list_size (int_bound 4)
                         (pair unit (self (n / 2))));
                  ])
            (min n 6)))
  in
  QCheck.Test.make ~name:"json print/parse round-trip" ~count:300
    (QCheck.make ~print:Json.to_string gen) (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> Json.equal j j'
      | Error _ -> false)

let json_roundtrip_indented =
  QCheck.Test.make ~name:"indented output parses back" ~count:100
    (QCheck.make
       QCheck.Gen.(
         map
           (fun i -> Json.Obj [ ("x", Json.int i); ("y", Json.List [ Json.Bool true ]) ])
           (int_bound 100)))
    (fun j ->
      match Json.of_string (Json.to_string ~indent:true j) with
      | Ok j' -> Json.equal j j'
      | Error _ -> false)

(* --- Symbol --- *)

let test_symbol_roundtrip () =
  let s = Symbol.intern "desert_bank" in
  Alcotest.(check string) "name round-trips" "desert_bank" (Symbol.name s);
  Alcotest.(check bool)
    "re-interning returns the same handle" true
    (Symbol.equal s (Symbol.intern "desert_bank"));
  Alcotest.(check int)
    "equal handles compare equal" 0
    (Symbol.compare s (Symbol.intern "desert_bank"))

let test_symbol_distinct () =
  let a = Symbol.intern "alpha_sym_test" in
  let b = Symbol.intern "beta_sym_test" in
  Alcotest.(check bool) "distinct names differ" false (Symbol.equal a b);
  Alcotest.(check bool)
    "interning order gives the order" true
    (Symbol.compare a b < 0);
  Alcotest.(check string) "pp prints the name" "alpha_sym_test"
    (Format.asprintf "%a" Symbol.pp a)

let test_symbol_count () =
  let before = Symbol.count () in
  ignore (Symbol.intern "sym_count_probe_1");
  ignore (Symbol.intern "sym_count_probe_1");
  Alcotest.(check int) "re-interning does not grow" (before + 1)
    (Symbol.count ());
  ignore (Symbol.intern "sym_count_probe_2");
  Alcotest.(check int) "fresh name grows by one" (before + 2)
    (Symbol.count ())

let () =
  Alcotest.run "argus-core"
    [
      ( "id",
        [
          Alcotest.test_case "valid" `Quick test_id_valid;
          Alcotest.test_case "invalid raises" `Quick test_id_invalid_raises;
          Alcotest.test_case "option" `Quick test_id_opt;
          Alcotest.test_case "generator" `Quick test_id_gen;
          Alcotest.test_case "generator bad prefix" `Quick test_id_gen_bad_prefix;
          QCheck_alcotest.to_alcotest id_gen_distinct;
        ] );
      ( "loc",
        [
          Alcotest.test_case "merge" `Quick test_loc_merge;
          Alcotest.test_case "dummy" `Quick test_loc_dummy;
          Alcotest.test_case "pp" `Quick test_loc_pp;
        ] );
      ( "diagnostic",
        [
          Alcotest.test_case "ordering" `Quick test_diag_ordering;
          Alcotest.test_case "counts" `Quick test_diag_counts;
          Alcotest.test_case "format" `Quick test_diag_format;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "support table" `Quick test_evidence_support;
          Alcotest.test_case "kind strings" `Quick test_evidence_strings;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "literacy in range" `Quick
            test_lifecycle_literacy_range;
          Alcotest.test_case "engineers most literate" `Quick
            test_lifecycle_engineers_most_literate;
          Alcotest.test_case "every phase has a reader" `Quick
            test_lifecycle_each_phase_has_reader;
          Alcotest.test_case "role strings" `Quick test_role_round_trip;
        ] );
      ( "textutil",
        [
          Alcotest.test_case "words" `Quick test_words;
          Alcotest.test_case "normalise" `Quick test_normalise;
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "syllables" `Quick test_syllables;
          Alcotest.test_case "flesch ordering" `Quick test_flesch_ordering;
          Alcotest.test_case "levenshtein" `Quick test_levenshtein;
          QCheck_alcotest.to_alcotest levenshtein_symmetry;
          QCheck_alcotest.to_alcotest levenshtein_triangle;
          Alcotest.test_case "symbolic detection" `Quick test_symbolic_detection;
        ] );
      ( "symbol",
        [
          Alcotest.test_case "intern round-trip" `Quick test_symbol_roundtrip;
          Alcotest.test_case "distinct names" `Quick test_symbol_distinct;
          Alcotest.test_case "count" `Quick test_symbol_count;
        ] );
      ( "json",
        [
          Alcotest.test_case "printing" `Quick test_json_print;
          Alcotest.test_case "parsing" `Quick test_json_parse;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          QCheck_alcotest.to_alcotest json_roundtrip;
          QCheck_alcotest.to_alcotest json_roundtrip_indented;
        ] );
    ]
