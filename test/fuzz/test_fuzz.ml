(* Robustness: every parser returns a result (never raises) on arbitrary
   input, and every checker is total on arbitrary structures — the
   failure-injection half of the test plan.  Inputs here are adversarial
   by construction: random printable garbage, half-mutated valid
   documents, and randomly-wired graphs with every node type. *)

module Id = Argus_core.Id
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Wellformed = Argus_gsn.Wellformed
module Diagnostic = Argus_core.Diagnostic

let printable_char = QCheck.Gen.(map Char.chr (int_range 32 126))

let garbage = QCheck.Gen.(string_size ~gen:printable_char (int_bound 200))

(* Mutate a valid document: splice garbage into the middle. *)
let mutated base =
  QCheck.Gen.(
    let* splice = string_size ~gen:printable_char (int_bound 20) in
    let* pos = int_bound (max 1 (String.length base - 1)) in
    return
      (String.sub base 0 pos ^ splice
      ^ String.sub base pos (String.length base - pos)))

let valid_case =
  {|case "x" {
     evidence E1 analysis "a"
     goal G1 "g is safe" { supported-by Sn1 }
     solution Sn1 "s" { evidence E1 }
   }|}

let total name f gen =
  QCheck.Test.make ~name ~count:500 (QCheck.make gen) (fun input ->
      match f input with _ -> true | exception _ -> false)

let parser_totality =
  [
    total "Prop.of_string is total" Argus_logic.Prop.of_string garbage;
    total "Term.of_string is total" Argus_logic.Term.of_string garbage;
    total "Ltl.of_string is total" Argus_ltl.Ltl.of_string garbage;
    total "Program.of_string is total" Argus_prolog.Program.of_string garbage;
    total "Toulmin.of_string is total" Argus_toulmin.Toulmin.of_string garbage;
    total "Dsl.parse is total on garbage" Argus_dsl.Dsl.parse garbage;
    total "Dsl.parse is total on mutated cases" Argus_dsl.Dsl.parse
      (mutated valid_case);
    total "Dsl.parse_collection is total" Argus_dsl.Dsl.parse_collection
      (mutated (valid_case ^ "\n" ^ valid_case));
    total "Query.of_string is total" Argus_gsn.Query.of_string garbage;
    total "Metadata.annotation_of_string is total"
      Argus_gsn.Metadata.annotation_of_string garbage;
    total "Proof_text.parse is total" Argus_logic.Proof_text.parse garbage;
  ]

(* Random structures wired arbitrarily: any node type, any link,
   dangling endpoints, self-loops, cycles. *)
let gen_chaotic_structure =
  let open QCheck.Gen in
  let* n_nodes = int_range 0 12 in
  let* n_links = int_range 0 25 in
  let node_type i =
    match i mod 9 with
    | 0 -> Node.Goal
    | 1 -> Node.Strategy
    | 2 -> Node.Solution
    | 3 -> Node.Context
    | 4 -> Node.Assumption
    | 5 -> Node.Justification
    | 6 -> Node.Away_goal (Id.of_string "M")
    | 7 -> Node.Module_ref (Id.of_string "M")
    | _ -> Node.Contract (Id.of_string "M")
  in
  let* type_seeds = list_size (return n_nodes) (int_bound 8) in
  let* statuses =
    list_size (return n_nodes)
      (oneofl
         [
           Node.Developed; Node.Undeveloped; Node.Uninstantiated;
           Node.Undeveloped_uninstantiated;
         ])
  in
  let nodes =
    List.mapi
      (fun i (seed, status) ->
        Node.make
          ~id:(Id.of_string (Printf.sprintf "n%d" i))
          ~node_type:(node_type seed) ~status
          (if i mod 3 = 0 then "" else Printf.sprintf "node %d text {x}" i))
      (List.combine type_seeds statuses)
  in
  let* link_pairs =
    list_size (return n_links)
      (triple (int_bound (max 1 n_nodes + 2)) (int_bound (max 1 n_nodes + 2)) bool)
  in
  let structure = List.fold_left (fun s n -> Structure.add_node n s) Structure.empty nodes in
  let structure =
    List.fold_left
      (fun s (a, b, ctx) ->
        Structure.connect
          (if ctx then Structure.In_context_of else Structure.Supported_by)
          ~src:(Id.of_string (Printf.sprintf "n%d" a))
          ~dst:(Id.of_string (Printf.sprintf "n%d" b))
          s)
      structure link_pairs
  in
  return structure

let checker_totality =
  [
    QCheck.Test.make ~name:"Wellformed.check is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Wellformed.check s with _ -> true | exception _ -> false);
    QCheck.Test.make ~name:"strict ruleset is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Wellformed.check ~ruleset:Wellformed.Denney_pai_2013 s with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"informal lints are total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Argus_fallacy.Informal.check_structure s with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"CAE conversion+check total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Argus_cae.Cae.check (Argus_cae.Cae.of_gsn s) with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"has_cycle is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Structure.has_cycle s with _ -> true | exception _ -> false);
    QCheck.Test.make ~name:"outline printing is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Format.asprintf "%a" Structure.pp_outline s with
        | _ -> true
        | exception _ -> false);
    QCheck.Test.make ~name:"dot rendering is total on chaos" ~count:300
      (QCheck.make gen_chaotic_structure) (fun s ->
        match Structure.to_dot s with _ -> true | exception _ -> false);
  ]

(* --- Budget soundness ---

   For any budget, a budgeted engine call must either (a) finish within
   the budget and return a result identical to the unbudgeted run, or
   (b) record exhaustion and produce a non-empty diagnostic — and in no
   case raise.  A wrong answer without an exhaustion mark is the bug
   these properties hunt. *)

module Budget = Argus_rt.Budget
module Prop = Argus_logic.Prop
module Sat = Argus_logic.Sat

let gen_prop =
  let open QCheck.Gen in
  let var = map (fun i -> Prop.Var (Printf.sprintf "v%d" i)) (int_bound 6) in
  fix
    (fun self depth ->
      if depth = 0 then var
      else
        frequency
          [
            (2, var);
            (1, return Prop.Top);
            (1, return Prop.Bot);
            (2, map (fun p -> Prop.Not p) (self (depth - 1)));
            ( 3,
              map2 (fun a b -> Prop.And (a, b)) (self (depth - 1))
                (self (depth - 1)) );
            ( 3,
              map2 (fun a b -> Prop.Or (a, b)) (self (depth - 1))
                (self (depth - 1)) );
            ( 2,
              map2
                (fun a b -> Prop.Implies (a, b))
                (self (depth - 1))
                (self (depth - 1)) );
          ])
    5

let gen_fuel = QCheck.Gen.int_range 1 2000

(* Complete-or-marked: the shared shape of every property below. *)
let complete_or_marked b ~same =
  match Budget.exhausted b with
  | None -> same () && not (Budget.depth_pruned b)
  | Some _ -> Budget.diagnostics b <> []

let budget_sat =
  QCheck.Test.make ~name:"budgeted SAT: complete or marked" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_prop gen_fuel))
    (fun (f, fuel) ->
      let b = Budget.make ~fuel () in
      match Sat.satisfiable ~budget:b f with
      | r -> complete_or_marked b ~same:(fun () -> r = Sat.satisfiable f)
      | exception _ -> false)

let budget_count_models =
  QCheck.Test.make ~name:"budgeted count_models: exact or truncated"
    ~count:300
    (QCheck.make QCheck.Gen.(triple gen_prop gen_fuel (int_range 1 10)))
    (fun (f, fuel, cap) ->
      let b = Budget.make ~fuel ~max_solutions:cap () in
      match Sat.count_models ~budget:b f with
      | exception _ -> false
      | Sat.At_least n ->
          (* A truncated count is always a sound lower bound and is
             always marked. *)
          Budget.exhausted b <> None
          && Budget.diagnostics b <> []
          && (match Sat.count_models f with
             | Sat.Exact m -> n <= m
             | Sat.At_least _ -> false)
      | Sat.Exact n -> (
          Budget.exhausted b = None
          && match Sat.count_models f with Sat.Exact m -> n = m | _ -> false))

let prolog_program =
  match
    Argus_prolog.Program.of_string
      {|edge(a, b). edge(b, c). edge(c, a). edge(c, d).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        blocked(X) :- blocked(X), blocked(X).
        blocked(X) :- blocked(X).|}
  with
  | Ok p -> p
  | Error e -> failwith e

let budget_prolog =
  let goals =
    [| "path(a, d)"; "path(d, a)"; "path(a, X)"; "blocked(q)"; "path(X, X)" |]
  in
  QCheck.Test.make ~name:"budgeted provable: complete or marked" ~count:200
    (QCheck.make
       QCheck.Gen.(pair (int_bound (Array.length goals - 1)) gen_fuel))
    (fun (gi, fuel) ->
      let goal =
        match Argus_logic.Term.of_string goals.(gi) with
        | Ok t -> t
        | Error e -> failwith e
      in
      let b = Budget.make ~fuel () in
      match Argus_prolog.Engine.provable ~budget:b prolog_program goal with
      | r ->
          complete_or_marked b ~same:(fun () ->
              r = Argus_prolog.Engine.provable prolog_program goal)
      | exception _ -> false)

let gen_ltl =
  let open QCheck.Gen in
  let module L = Argus_ltl.Ltl in
  let var = map (fun i -> L.Atom (Printf.sprintf "a%d" i)) (int_bound 3) in
  fix
    (fun self depth ->
      if depth = 0 then var
      else
        frequency
          [
            (2, var);
            (2, map (fun p -> L.Not p) (self (depth - 1)));
            ( 2,
              map2 (fun a b -> L.And (a, b)) (self (depth - 1))
                (self (depth - 1)) );
            ( 2,
              map2 (fun a b -> L.Or (a, b)) (self (depth - 1))
                (self (depth - 1)) );
            (2, map (fun p -> L.Next p) (self (depth - 1)));
            ( 2,
              map2 (fun a b -> L.Until (a, b)) (self (depth - 1))
                (self (depth - 1)) );
            (2, map (fun p -> L.Eventually p) (self (depth - 1)));
            (2, map (fun p -> L.Always p) (self (depth - 1)));
          ])
    4

let gen_trace =
  let open QCheck.Gen in
  let state = list_size (int_bound 3) (map (Printf.sprintf "a%d") (int_bound 3)) in
  let* prefix = list_size (int_bound 4) state in
  let* loop = list_size (int_range 1 4) state in
  return (Argus_ltl.Ltl.Trace.make ~prefix ~loop)

let budget_ltl =
  QCheck.Test.make ~name:"budgeted LTL holds: complete or marked" ~count:500
    (QCheck.make QCheck.Gen.(triple gen_ltl gen_trace gen_fuel))
    (fun (f, tr, fuel) ->
      let b = Budget.make ~fuel () in
      match Argus_ltl.Ltl.holds ~budget:b tr f with
      | r ->
          complete_or_marked b ~same:(fun () -> r = Argus_ltl.Ltl.holds tr f)
      | exception _ -> false)

let budget_soundness =
  [ budget_sat; budget_count_models; budget_prolog; budget_ltl ]

(* Cross-check: a structure with an error diagnostic is never reported
   well-formed, and vice versa. *)
let wellformed_consistency =
  QCheck.Test.make ~name:"is_well_formed agrees with check" ~count:300
    (QCheck.make gen_chaotic_structure) (fun s ->
      Bool.equal (Wellformed.is_well_formed s)
        (not (Diagnostic.has_errors (Wellformed.check s))))

let () =
  Alcotest.run "argus-fuzz"
    [
      ("parser-totality", List.map QCheck_alcotest.to_alcotest parser_totality);
      ( "checker-totality",
        List.map QCheck_alcotest.to_alcotest checker_totality );
      ( "budget-soundness",
        List.map QCheck_alcotest.to_alcotest budget_soundness );
      ( "consistency",
        [ QCheck_alcotest.to_alcotest wellformed_consistency ] );
    ]
