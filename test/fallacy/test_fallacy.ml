open Argus_fallacy
module Prop = Argus_logic.Prop
module Syllogism = Argus_logic.Syllogism
module Engine = Argus_prolog.Engine
module Term = Argus_logic.Term
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Diagnostic = Argus_core.Diagnostic

let p = Prop.of_string_exn

(* --- Formal fallacies 1-5 (propositional) --- *)

let test_begging_the_question () =
  let arg = { Formal.premises = [ p "c"; p "a" ]; conclusion = p "c" } in
  Alcotest.(check bool) "flagged" true
    (List.mem Formal.Begging_the_question (Formal.check_propositional arg));
  (* Equivalent-but-not-equal premise also counts. *)
  let arg2 = { Formal.premises = [ p "~~c" ]; conclusion = p "c" } in
  Alcotest.(check bool) "up to equivalence" true
    (List.mem Formal.Begging_the_question (Formal.check_propositional arg2))

let test_incompatible_premises () =
  let arg =
    { Formal.premises = [ p "a"; p "~a" ]; conclusion = p "q" }
  in
  Alcotest.(check bool) "flagged" true
    (List.mem Formal.Incompatible_premises (Formal.check_propositional arg))

let test_premise_conclusion_contradiction () =
  let arg = { Formal.premises = [ p "a" ]; conclusion = p "~a" } in
  Alcotest.(check bool) "flagged" true
    (List.mem Formal.Premise_conclusion_contradiction
       (Formal.check_propositional arg))

let test_denying_antecedent () =
  let arg =
    { Formal.premises = [ p "a -> b"; p "~a" ]; conclusion = p "~b" }
  in
  Alcotest.(check bool) "flagged" true
    (List.mem Formal.Denying_the_antecedent (Formal.check_propositional arg))

let test_affirming_consequent () =
  let arg = { Formal.premises = [ p "a -> b"; p "b" ]; conclusion = p "a" } in
  Alcotest.(check bool) "flagged" true
    (List.mem Formal.Affirming_the_consequent (Formal.check_propositional arg))

let test_valid_conditional_not_flagged () =
  (* With the converse also present the inference is valid, so no
     conditional-shape fallacy should be reported. *)
  let arg =
    {
      Formal.premises = [ p "a -> b"; p "b -> a"; p "b" ];
      conclusion = p "a";
    }
  in
  Alcotest.(check (list string)) "clean" []
    (List.map Formal.finding_to_string (Formal.check_propositional arg))

let test_modus_ponens_clean () =
  let arg = { Formal.premises = [ p "a -> b"; p "a" ]; conclusion = p "b" } in
  Alcotest.(check (list string)) "clean" []
    (List.map Formal.finding_to_string (Formal.check_propositional arg));
  Alcotest.(check bool) "valid" true (Formal.is_valid_propositional arg)

(* --- Formal fallacies 6-8 (categorical) --- *)

let test_false_conversion () =
  let from = Syllogism.prop Syllogism.A "banks" "riverside_things" in
  let conv = { Formal.from; to_ = Syllogism.converse from } in
  Alcotest.(check bool) "A-conversion flagged" true
    (List.mem Formal.False_conversion (Formal.check_conversion conv));
  let from_e = Syllogism.prop Syllogism.E "fish" "mammals" in
  let conv_e = { Formal.from = from_e; to_ = Syllogism.converse from_e } in
  Alcotest.(check (list string)) "E-conversion clean" []
    (List.map Formal.finding_to_string (Formal.check_conversion conv_e))

let test_syllogistic_findings () =
  let undistributed =
    Syllogism.
      {
        major = prop A "dogs" "animals";
        minor = prop A "cats" "animals";
        conclusion = prop A "cats" "dogs";
      }
  in
  Alcotest.(check bool) "undistributed middle" true
    (List.mem Formal.Undistributed_middle (Formal.check_syllogism undistributed));
  let illicit =
    Syllogism.
      {
        major = prop A "m" "p";
        minor = prop E "s" "m";
        conclusion = prop E "s" "p";
      }
  in
  Alcotest.(check bool) "illicit distribution" true
    (List.mem Formal.Illicit_distribution (Formal.check_syllogism illicit));
  let barbara =
    Syllogism.
      {
        major = prop A "men" "mortal";
        minor = prop A "socrates" "men";
        conclusion = prop A "socrates" "mortal";
      }
  in
  Alcotest.(check (list string)) "Barbara clean" []
    (List.map Formal.finding_to_string (Formal.check_syllogism barbara))

(* --- Greenwell corpus: the Section V.B reproduction --- *)

let test_corpus_counts_match_paper () =
  List.iter
    (fun (kind, reported) ->
      let computed = List.assoc kind Greenwell.corpus_counts in
      if computed <> reported then
        Alcotest.failf "%s: corpus has %d, paper reports %d"
          (Greenwell.kind_to_string kind)
          computed reported)
    Greenwell.reported_counts;
  Alcotest.(check int) "45 total" 45 (List.length Greenwell.corpus)

let test_no_kind_is_strictly_formal () =
  List.iter
    (fun k ->
      if Greenwell.is_strictly_formal k then
        Alcotest.failf "%s claimed formal" (Greenwell.kind_to_string k))
    Greenwell.all_kinds

let test_formal_checker_blind_to_corpus () =
  (* The paper's claim, executably: every Greenwell-style instance
     passes formal validation. *)
  List.iter
    (fun (i : Greenwell.instance) ->
      (match Formal.check_propositional i.Greenwell.argument with
      | [] -> ()
      | fs ->
          Alcotest.failf "formal checker flagged %s (%s): %s"
            i.Greenwell.system
            (Greenwell.kind_to_string i.Greenwell.kind)
            (String.concat ", " (List.map Formal.finding_to_string fs)));
      if not (Formal.is_valid_propositional i.Greenwell.argument) then
        Alcotest.failf "corpus argument for %s is not deductively valid"
          i.Greenwell.system)
    Greenwell.corpus

let test_machine_help_nonempty () =
  List.iter
    (fun k ->
      if String.length (Greenwell.machine_help k) < 20 then
        Alcotest.failf "missing analysis for %s" (Greenwell.kind_to_string k))
    Greenwell.all_kinds

(* --- Figure 1: equivocation --- *)

let test_desert_bank_proves_but_lint_flags () =
  let goal = Result.get_ok (Term.of_string "adjacent(desert_bank, river)") in
  Alcotest.(check bool) "formally derivable" true
    (Engine.provable Informal.desert_bank goal);
  Alcotest.(check (list string))
    "equivocation candidate is exactly 'bank'" [ "bank" ]
    (Informal.equivocation_candidates Informal.desert_bank)

let test_equivocation_requires_two_roles () =
  let clean =
    Argus_prolog.Program.of_string_exn
      "parent(tom, bob). parent(bob, ann). male(tom)."
  in
  (* tom occurs in parent/2 arg 0 and male/1 arg 0: two roles -> it IS a
     candidate under the heuristic; use genuinely single-role constants. *)
  let single =
    Argus_prolog.Program.of_string_exn "edge(a, b). edge(b, c)."
  in
  Alcotest.(check (list string)) "b bridges two positions" [ "b" ]
    (Informal.equivocation_candidates single);
  Alcotest.(check bool) "tom flagged (two predicates)" true
    (List.mem "tom" (Informal.equivocation_candidates clean))

(* --- Structure lints --- *)

let test_circular_support () =
  let s =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "G2");
          (Structure.Supported_by, "G2", "G3");
        ]
      [
        Node.goal "G1" "The pump is acceptably safe";
        Node.goal "G2" "Dosing errors are prevented";
        { (Node.goal "G3" "The pump is acceptably safe") with
          Node.status = Node.Undeveloped };
      ]
  in
  let cs = List.map (fun d -> d.Diagnostic.code) (Informal.check_structure s) in
  Alcotest.(check bool) "flagged" true
    (List.mem "informal/circular-support" cs)

let test_argument_from_ignorance () =
  let s =
    Structure.of_nodes
      [
        {
          (Node.goal "G1"
             "There is no evidence that the failure mode can occur")
          with
          Node.status = Node.Undeveloped;
        };
      ]
  in
  let cs = List.map (fun d -> d.Diagnostic.code) (Informal.check_structure s) in
  Alcotest.(check bool) "flagged" true
    (List.mem "informal/argument-from-ignorance" cs)

let test_equivocation_candidate_in_structure () =
  let s =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "G2");
          (Structure.Supported_by, "G1", "G3");
        ]
      [
        Node.goal "G1" "The site is acceptably safe";
        {
          (Node.goal "G2" "The bank holds customer deposits securely overnight")
          with
          Node.status = Node.Undeveloped;
        };
        {
          (Node.goal "G3" "The bank slopes gently toward the river shoreline")
          with
          Node.status = Node.Undeveloped;
        };
      ]
  in
  let cs = List.map (fun d -> d.Diagnostic.code) (Informal.check_structure s) in
  Alcotest.(check bool) "flagged" true
    (List.mem "informal/equivocation-candidate" cs)

let test_clean_structure_no_lints () =
  let s =
    Structure.of_nodes
      ~links:[ (Structure.Supported_by, "G1", "G2") ]
      [
        Node.goal "G1" "The controller is acceptably safe";
        {
          (Node.goal "G2" "Hazard H1 is mitigated by interlock I3")
          with
          Node.status = Node.Undeveloped;
        };
      ]
  in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun d -> d.Diagnostic.code) (Informal.check_structure s))

(* --- Properties --- *)

(* Valid modus-ponens-style chains are never flagged by the formal
   detector. *)
let valid_chains_clean =
  QCheck.Test.make ~name:"valid implication chains are clean" ~count:100
    QCheck.(int_range 1 6)
    (fun n ->
      let atom i = Prop.Var (Printf.sprintf "x%d" i) in
      let rules =
        List.init n (fun i -> Prop.Implies (atom i, atom (i + 1)))
      in
      let arg =
        { Formal.premises = atom 0 :: rules; conclusion = atom n }
      in
      Formal.check_propositional arg = []
      && Formal.is_valid_propositional arg)

(* Syllogistic detector agrees with validity: a valid syllogism never
   yields distribution findings. *)
let valid_syllogisms_clean =
  QCheck.Test.make ~name:"valid syllogisms yield no findings" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun s ->
          if Syllogism.is_valid s then Formal.check_syllogism s = []
          else true)
        (Syllogism.all_moods_figures ()))

(* --- Truth-table masks vs. DPLL --- *)

module Propmask = Argus_logic.Propmask
module Sat = Argus_logic.Sat
module Budget = Argus_rt.Budget

(* Random formulas over at most Propmask.max_vars variables, so the
   mask environment always builds. *)
let gen_prop =
  let open QCheck.Gen in
  let var = map (fun i -> Prop.Var (Printf.sprintf "v%d" i)) (int_range 0 4) in
  let leaf = oneof [ var; return Prop.Top; return Prop.Bot ] in
  sized_size (int_range 0 12)
    (fix (fun self n ->
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           oneof
             [
               leaf;
               map Prop.neg (self (n - 1));
               map2 (fun a b -> Prop.And (a, b)) sub sub;
               map2 (fun a b -> Prop.Or (a, b)) sub sub;
               map2 (fun a b -> Prop.Implies (a, b)) sub sub;
               map2 (fun a b -> Prop.Iff (a, b)) sub sub;
             ]))

(* A truth table IS the propositional semantics, so every mask decision
   procedure must agree with the SAT solver wherever both apply. *)
let propmask_agrees_with_sat =
  QCheck.Test.make ~name:"truth-table masks agree with DPLL" ~count:500
    (QCheck.make
       ~print:(fun (a, b) ->
         Prop.to_string a ^ "  /  " ^ Prop.to_string b)
       QCheck.Gen.(pair gen_prop gen_prop))
    (fun (a, b) ->
      match Propmask.env [ a; b ] with
      | None -> false (* ≤ 5 variables by construction *)
      | Some env ->
          Bool.equal (Propmask.satisfiable env a) (Sat.satisfiable a)
          && Bool.equal (Propmask.valid env a) (Sat.valid a)
          && Bool.equal (Propmask.equivalent env a b) (Sat.equivalent a b)
          && Bool.equal
               (Propmask.entails env [ a ] b)
               (Sat.entails [ a ] b))

(* The formal-fallacy detector answers identically whether its SAT
   queries run on the mask fast path (unbudgeted) or the DPLL path (any
   limited budget forces it; a generous fuel never exhausts, so the
   findings must coincide exactly). *)
let formal_findings_path_independent =
  QCheck.Test.make ~name:"formal findings agree between mask and DPLL paths"
    ~count:200
    (QCheck.make
       ~print:(fun (ps, c) ->
         String.concat ", " (List.map Prop.to_string ps)
         ^ " |- " ^ Prop.to_string c)
       QCheck.Gen.(pair (list_size (int_range 1 3) gen_prop) gen_prop))
    (fun (premises, conclusion) ->
      let arg = { Formal.premises; conclusion } in
      let unbudgeted = Formal.check_propositional arg in
      let b = Budget.make ~fuel:(max_int - 1) () in
      let budgeted = Formal.check_propositional ~budget:b arg in
      unbudgeted = budgeted
      && Bool.equal
           (Formal.is_valid_propositional arg)
           (Formal.is_valid_propositional
              ~budget:(Budget.make ~fuel:(max_int - 1) ())
              arg))

(* The whole Greenwell corpus, both paths: the corpus sweep is the
   greenwell-corpus-check bench kernel's workload, so the mask fast
   path must answer it exactly as the DPLL path does. *)
let test_corpus_path_independent () =
  List.iter
    (fun (i : Greenwell.instance) ->
      let unbudgeted = Formal.check_propositional i.Greenwell.argument in
      let budgeted =
        Formal.check_propositional
          ~budget:(Budget.make ~fuel:(max_int - 1) ())
          i.Greenwell.argument
      in
      if unbudgeted <> budgeted then
        Alcotest.failf "%s: mask and DPLL paths disagree" i.Greenwell.system)
    Greenwell.corpus

let () =
  Alcotest.run "argus-fallacy"
    [
      ( "formal-propositional",
        [
          Alcotest.test_case "begging the question" `Quick
            test_begging_the_question;
          Alcotest.test_case "incompatible premises" `Quick
            test_incompatible_premises;
          Alcotest.test_case "premise/conclusion contradiction" `Quick
            test_premise_conclusion_contradiction;
          Alcotest.test_case "denying the antecedent" `Quick
            test_denying_antecedent;
          Alcotest.test_case "affirming the consequent" `Quick
            test_affirming_consequent;
          Alcotest.test_case "valid conditional not flagged" `Quick
            test_valid_conditional_not_flagged;
          Alcotest.test_case "modus ponens clean" `Quick test_modus_ponens_clean;
          QCheck_alcotest.to_alcotest valid_chains_clean;
        ] );
      ( "formal-categorical",
        [
          Alcotest.test_case "false conversion" `Quick test_false_conversion;
          Alcotest.test_case "syllogistic findings" `Quick
            test_syllogistic_findings;
          QCheck_alcotest.to_alcotest valid_syllogisms_clean;
        ] );
      ( "greenwell",
        [
          Alcotest.test_case "counts match the paper" `Quick
            test_corpus_counts_match_paper;
          Alcotest.test_case "no kind is strictly formal" `Quick
            test_no_kind_is_strictly_formal;
          Alcotest.test_case "formal checker is blind to all 45" `Quick
            test_formal_checker_blind_to_corpus;
          Alcotest.test_case "analysis text present" `Quick
            test_machine_help_nonempty;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "derivable yet equivocal" `Quick
            test_desert_bank_proves_but_lint_flags;
          Alcotest.test_case "role-based candidates" `Quick
            test_equivocation_requires_two_roles;
        ] );
      ( "structure-lints",
        [
          Alcotest.test_case "circular support" `Quick test_circular_support;
          Alcotest.test_case "argument from ignorance" `Quick
            test_argument_from_ignorance;
          Alcotest.test_case "equivocation candidate" `Quick
            test_equivocation_candidate_in_structure;
          Alcotest.test_case "clean structure" `Quick
            test_clean_structure_no_lints;
        ] );
      ( "propmask",
        [
          QCheck_alcotest.to_alcotest propmask_agrees_with_sat;
          QCheck_alcotest.to_alcotest formal_findings_path_independent;
          Alcotest.test_case "greenwell corpus path-independent" `Quick
            test_corpus_path_independent;
        ] );
    ]
