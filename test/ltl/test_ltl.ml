open Argus_ltl

(* --- Generators --- *)

let gen_formula =
  let open QCheck.Gen in
  let atom_gen = map (fun i -> Ltl.Atom (Printf.sprintf "a%d" i)) (int_bound 3) in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof [ return Ltl.True; return Ltl.False; atom_gen ]
          else
            frequency
              [
                (1, atom_gen);
                (1, map (fun f -> Ltl.Not f) (self (n / 2)));
                (1, map2 (fun a b -> Ltl.And (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun a b -> Ltl.Or (a, b)) (self (n / 2)) (self (n / 2)));
                ( 1,
                  map2
                    (fun a b -> Ltl.Implies (a, b))
                    (self (n / 2)) (self (n / 2)) );
                (1, map (fun f -> Ltl.Next f) (self (n / 2)));
                (1, map (fun f -> Ltl.Eventually f) (self (n / 2)));
                (1, map (fun f -> Ltl.Always f) (self (n / 2)));
                ( 1,
                  map2 (fun a b -> Ltl.Until (a, b)) (self (n / 2)) (self (n / 2))
                );
                ( 1,
                  map2
                    (fun a b -> Ltl.Release (a, b))
                    (self (n / 2)) (self (n / 2)) );
              ])
        (min n 8))

let arb_formula = QCheck.make ~print:Ltl.to_string gen_formula

let gen_state =
  QCheck.Gen.(
    map
      (fun bits ->
        List.filteri (fun i _ -> bits land (1 lsl i) <> 0) [ "a0"; "a1"; "a2"; "a3" ]
        |> List.map (fun a -> a))
      (int_bound 15))

let gen_trace =
  QCheck.Gen.(
    let* prefix = list_size (int_bound 4) gen_state in
    let* loop = list_size (int_range 1 4) gen_state in
    return (Ltl.Trace.make ~prefix ~loop))

let arb_formula_trace =
  QCheck.make
    ~print:(fun (f, _) -> Ltl.to_string f)
    QCheck.Gen.(pair gen_formula gen_trace)

(* Reference semantics: evaluate on a long unrolled finite prefix with a
   recursive bounded evaluator that exploits the lasso for G/F/U/R by
   checking positions up to prefix + 2*loop (sufficient because truth of
   any subformula is periodic beyond the prefix with the loop's period). *)
let naive_holds tr f =
  let p = Array.length tr.Ltl.Trace.prefix in
  let l = Array.length tr.Ltl.Trace.loop in
  let horizon = p + (2 * l) in
  let rec at i f =
    let norm i = if i < p then i else p + ((i - p) mod l) in
    match f with
    | Ltl.True -> true
    | Ltl.False -> false
    | Ltl.Atom a -> List.mem a (Ltl.Trace.state tr i)
    | Ltl.Not g -> not (at i g)
    | Ltl.And (a, b) -> at i a && at i b
    | Ltl.Or (a, b) -> at i a || at i b
    | Ltl.Implies (a, b) -> (not (at i a)) || at i b
    | Ltl.Next g -> at (norm (i + 1)) g
    | Ltl.Eventually g ->
        let rec ex j = j < i + horizon && (at (norm j) g || ex (j + 1)) in
        ex i
    | Ltl.Always g ->
        let rec fa j = j >= i + horizon || (at (norm j) g && fa (j + 1)) in
        fa i
    | Ltl.Until (a, b) ->
        let rec un j =
          j < i + horizon && (at (norm j) b || (at (norm j) a && un (j + 1)))
        in
        un i
    | Ltl.Release (a, b) -> not (at i (Ltl.Until (Ltl.Not a, Ltl.Not b)))
  in
  at 0 f

(* --- Unit tests --- *)

let t_make prefix loop = Ltl.Trace.make ~prefix ~loop

let test_always_on_loop () =
  let tr = t_make [ [ "p" ] ] [ [ "p" ]; [ "p" ] ] in
  Alcotest.(check bool) "G p holds" true (Ltl.holds tr (Ltl.of_string_exn "G p"));
  let tr2 = t_make [ [ "p" ] ] [ [ "p" ]; [] ] in
  Alcotest.(check bool) "G p fails" false (Ltl.holds tr2 (Ltl.of_string_exn "G p"))

let test_eventually () =
  let tr = t_make [ []; [] ] [ [ "q" ]; [] ] in
  Alcotest.(check bool) "F q holds" true (Ltl.holds tr (Ltl.of_string_exn "F q"));
  let tr2 = t_make [ [ "q" ] ] [ [] ] in
  Alcotest.(check bool)
    "F q holds via prefix" true
    (Ltl.holds tr2 (Ltl.of_string_exn "F q"));
  Alcotest.(check bool)
    "G F q fails when q only in prefix" false
    (Ltl.holds tr2 (Ltl.of_string_exn "G F q"))

let test_until () =
  let tr = t_make [ [ "a" ]; [ "a" ]; [ "b" ] ] [ [] ] in
  Alcotest.(check bool) "a U b" true (Ltl.holds tr (Ltl.of_string_exn "a U b"));
  let tr2 = t_make [ [ "a" ] ] [ [ "a" ] ] in
  Alcotest.(check bool)
    "a U b fails when b never comes" false
    (Ltl.holds tr2 (Ltl.of_string_exn "a U b"))

let test_brunel_cazin_claim () =
  (* G (obstacle_close -> (obstacle_present U obstacle_clear)): the
     Detect-and-Avoid correctness claim shape from the paper. *)
  let claim =
    Ltl.of_string_exn "G (obstacle_close -> (obstacle_present U obstacle_clear))"
  in
  let good =
    t_make
      [ [ "obstacle_close"; "obstacle_present" ]; [ "obstacle_present" ] ]
      [ [ "obstacle_clear" ] ]
  in
  Alcotest.(check bool) "correct DAA trace" true (Ltl.holds good claim);
  let bad =
    t_make [ [ "obstacle_close"; "obstacle_present" ] ] [ [] ]
  in
  Alcotest.(check bool) "broken DAA trace" false (Ltl.holds bad claim)

let test_holds_at () =
  let tr = t_make [ [ "p" ] ] [ [] ] in
  Alcotest.(check bool) "p at 0" true (Ltl.holds_at tr 0 (Ltl.Atom "p"));
  Alcotest.(check bool) "p at 1" false (Ltl.holds_at tr 1 (Ltl.Atom "p"));
  Alcotest.(check bool) "deep position wraps" false
    (Ltl.holds_at tr 1000 (Ltl.Atom "p"))

let test_finite_semantics () =
  let tr = [ [ "a" ]; [ "a" ]; [ "b" ] ] in
  Alcotest.(check bool) "finite until" true
    (Ltl.holds_finite tr (Ltl.of_string_exn "a U b"));
  Alcotest.(check bool) "strong next at end" false
    (Ltl.holds_finite [ [ "a" ] ] (Ltl.of_string_exn "X true"));
  Alcotest.(check bool) "always on finite" true
    (Ltl.holds_finite [ [ "a" ]; [ "a" ] ] (Ltl.of_string_exn "G a"));
  Alcotest.check_raises "empty trace rejected"
    (Invalid_argument "Ltl.holds_finite: empty trace") (fun () ->
      ignore (Ltl.holds_finite [] Ltl.True))

let test_empty_loop_rejected () =
  Alcotest.check_raises "empty loop"
    (Invalid_argument "Ltl.Trace.make: empty loop") (fun () ->
      ignore (Ltl.Trace.make ~prefix:[ [] ] ~loop:[]))

let test_parse_print () =
  List.iter
    (fun s ->
      let f = Ltl.of_string_exn s in
      let f' = Ltl.of_string_exn (Ltl.to_string f) in
      if not (Ltl.equal f f') then Alcotest.failf "round-trip changed %S" s)
    [
      "G (a -> F b)";
      "a U b U c";
      "(a & b) U c";
      "~X a | F (b R c)";
      "G F heartbeat -> F G stable";
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Ltl.of_string s with
      | Ok _ -> Alcotest.failf "should not parse: %S" s
      | Error _ -> ())
    [ ""; "G"; "a U"; "(a"; "a b"; "a ? b" ]

let test_simplify_examples () =
  let cases =
    [
      ("F F a", "F a");
      ("G G a", "G a");
      ("a & a", "a");
      ("true U b", "F b");
      ("false R b", "G b");
      ("X true", "true");
      ("a -> false", "~a");
    ]
  in
  List.iter
    (fun (input, expected) ->
      let got = Ltl.simplify (Ltl.of_string_exn input) in
      let want = Ltl.of_string_exn expected in
      if not (Ltl.equal got want) then
        Alcotest.failf "simplify %S gave %s, wanted %s" input
          (Ltl.to_string got) (Ltl.to_string want))
    cases

(* --- Property tests --- *)

let label_agrees_with_naive =
  QCheck.Test.make ~name:"fixpoint labelling agrees with bounded unrolling"
    ~count:500 arb_formula_trace (fun (f, tr) ->
      Bool.equal (Ltl.holds tr f) (naive_holds tr f))

let nnf_preserves_semantics =
  QCheck.Test.make ~name:"nnf preserves lasso semantics" ~count:300
    arb_formula_trace (fun (f, tr) ->
      Bool.equal (Ltl.holds tr f) (Ltl.holds tr (Ltl.nnf f)))

let nnf_negations_on_atoms =
  QCheck.Test.make ~name:"nnf pushes negation to atoms" ~count:300 arb_formula
    (fun f ->
      let rec ok = function
        | Ltl.True | Ltl.False | Ltl.Atom _ -> true
        | Ltl.Not (Ltl.Atom _) -> true
        | Ltl.Not _ -> false
        | Ltl.Implies _ | Ltl.Eventually _ | Ltl.Always _ -> false
        | Ltl.And (a, b) | Ltl.Or (a, b) | Ltl.Until (a, b) | Ltl.Release (a, b)
          ->
            ok a && ok b
        | Ltl.Next g -> ok g
      in
      ok (Ltl.nnf f))

let simplify_preserves_semantics =
  QCheck.Test.make ~name:"simplify preserves lasso semantics" ~count:300
    arb_formula_trace (fun (f, tr) ->
      Bool.equal (Ltl.holds tr f) (Ltl.holds tr (Ltl.simplify f)))

let simplify_never_grows =
  QCheck.Test.make ~name:"simplify never grows the formula" ~count:300
    arb_formula (fun f -> Ltl.size (Ltl.simplify f) <= Ltl.size f)

let print_parse_roundtrip =
  QCheck.Test.make ~name:"pp/of_string round-trip" ~count:300 arb_formula
    (fun f ->
      match Ltl.of_string (Ltl.to_string f) with
      | Ok f' -> Ltl.equal f f'
      | Error _ -> false)

(* --- memoized labelling (the [memo_threshold] gate) --- *)

let memo_hits () =
  match
    List.assoc_opt "ltl.memo_hits" (Argus_obs.Metrics.counters ())
  with
  | Some n -> n
  | None -> 0

let test_memo_gate () =
  let tr = t_make [ [ "close" ] ] [ [ "close"; "clear" ]; [] ] in
  (* A combined refutation query in the Argus_kaos style: a conjunction
     of goal formulas sharing atoms.  Size is past the gate and [close]
     / [F clear] recur, so the memo must register hits. *)
  let big =
    Ltl.of_string_exn
      "(G (close -> F clear)) & ((G (close -> tracked)) & !(G (tracked -> F clear)))"
  in
  Argus_obs.Obs.reset ();
  ignore (Ltl.holds tr big);
  Alcotest.(check bool)
    (Printf.sprintf "repeated subterms hit the memo (got %d)" (memo_hits ()))
    true (memo_hits () > 0);
  (* A small formula stays on the direct path: no table, no hits. *)
  Argus_obs.Obs.reset ();
  ignore (Ltl.holds tr (Ltl.of_string_exn "G (close -> F clear)"));
  Alcotest.(check int) "small formulas skip the memo" 0 (memo_hits ())

let () =
  Alcotest.run "argus-ltl"
    [
      ( "semantics",
        [
          Alcotest.test_case "always on loop" `Quick test_always_on_loop;
          Alcotest.test_case "eventually" `Quick test_eventually;
          Alcotest.test_case "until" `Quick test_until;
          Alcotest.test_case "Brunel-Cazin claim" `Quick test_brunel_cazin_claim;
          Alcotest.test_case "holds_at" `Quick test_holds_at;
          Alcotest.test_case "finite semantics" `Quick test_finite_semantics;
          Alcotest.test_case "empty loop rejected" `Quick
            test_empty_loop_rejected;
          QCheck_alcotest.to_alcotest label_agrees_with_naive;
        ] );
      ( "transformations",
        [
          QCheck_alcotest.to_alcotest nnf_preserves_semantics;
          QCheck_alcotest.to_alcotest nnf_negations_on_atoms;
          QCheck_alcotest.to_alcotest simplify_preserves_semantics;
          QCheck_alcotest.to_alcotest simplify_never_grows;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "parse/print cases" `Quick test_parse_print;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "simplify examples" `Quick test_simplify_examples;
          QCheck_alcotest.to_alcotest print_parse_roundtrip;
        ] );
      ( "memo",
        [ Alcotest.test_case "threshold gate" `Quick test_memo_gate ] );
    ]
