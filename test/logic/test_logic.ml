open Argus_logic

(* --- Generators --- *)

let gen_prop =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Prop.Top;
                return Prop.Bot;
                map (fun i -> Prop.Var (Printf.sprintf "v%d" i)) (int_bound 5);
              ]
          else
            frequency
              [
                (1, map (fun i -> Prop.Var (Printf.sprintf "v%d" i)) (int_bound 5));
                (2, map (fun f -> Prop.Not f) (self (n / 2)));
                ( 2,
                  map2 (fun a b -> Prop.And (a, b)) (self (n / 2)) (self (n / 2))
                );
                ( 2,
                  map2 (fun a b -> Prop.Or (a, b)) (self (n / 2)) (self (n / 2))
                );
                ( 2,
                  map2
                    (fun a b -> Prop.Implies (a, b))
                    (self (n / 2)) (self (n / 2)) );
                ( 1,
                  map2 (fun a b -> Prop.Iff (a, b)) (self (n / 2)) (self (n / 2))
                );
              ])
        (min n 8))

let arb_prop = QCheck.make ~print:Prop.to_string gen_prop

let all_valuations vars =
  let n = List.length vars in
  List.init (1 lsl n) (fun mask v ->
      let rec index i = function
        | [] -> raise Not_found
        | x :: _ when x = v -> i
        | _ :: rest -> index (i + 1) rest
      in
      mask land (1 lsl index 0 vars) <> 0)

let brute_force_sat f =
  let vars = Prop.vars f in
  List.exists (fun v -> Prop.eval v f) (all_valuations vars)

let brute_force_valid f =
  let vars = Prop.vars f in
  List.for_all (fun v -> Prop.eval v f) (all_valuations vars)

(* --- Prop --- *)

let test_prop_parse_print () =
  let cases =
    [
      "a & b -> c";
      "~(a | b) <-> ~a & ~b";
      "a -> b -> c";
      "(a -> b) -> c";
      "true | false";
      "~~a";
    ]
  in
  List.iter
    (fun s ->
      let f = Prop.of_string_exn s in
      let s' = Prop.to_string f in
      let f' = Prop.of_string_exn s' in
      if not (Prop.equal f f') then
        Alcotest.failf "round-trip changed %s -> %s" s s')
    cases

let test_prop_parse_synonyms () =
  let a = Prop.of_string_exn "not x and y or z => w <=> v" in
  let b = Prop.of_string_exn "~x & y | z -> w <-> v" in
  Alcotest.(check bool) "synonyms parse alike" true (Prop.equal a b)

let test_prop_parse_errors () =
  List.iter
    (fun s ->
      match Prop.of_string s with
      | Ok _ -> Alcotest.failf "should not parse: %s" s
      | Error _ -> ())
    [ ""; "a &"; "(a"; "a b"; "->"; "a ? b" ]

let test_prop_vars_order () =
  let f = Prop.of_string_exn "b & a | b -> c" in
  Alcotest.(check (list string)) "first occurrence" [ "b"; "a"; "c" ]
    (Prop.vars f)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"pp/of_string round-trip" ~count:300 arb_prop (fun f ->
      match Prop.of_string (Prop.to_string f) with
      | Ok f' -> Prop.equal f f'
      | Error _ -> false)

let nnf_preserves_semantics =
  QCheck.Test.make ~name:"nnf preserves semantics" ~count:300 arb_prop (fun f ->
      let g = Prop.nnf f in
      let vars = Prop.vars f @ Prop.vars g in
      List.for_all
        (fun v -> Bool.equal (Prop.eval v f) (Prop.eval v g))
        (all_valuations vars))

let nnf_is_nnf =
  QCheck.Test.make ~name:"nnf output has negations on atoms only" ~count:300
    arb_prop (fun f ->
      let rec ok = function
        | Prop.Top | Prop.Bot | Prop.Var _ -> true
        | Prop.Not (Prop.Var _) -> true
        | Prop.Not _ -> false
        | Prop.And (a, b) | Prop.Or (a, b) -> ok a && ok b
        | Prop.Implies _ | Prop.Iff _ -> false
      in
      ok (Prop.nnf f))

let test_subst () =
  let f = Prop.of_string_exn "a -> b" in
  let g =
    Prop.subst (function "a" -> Some (Prop.of_string_exn "x & y") | _ -> None) f
  in
  Alcotest.(check string) "substituted" "x & y -> b" (Prop.to_string g)

(* --- Sat --- *)

let dpll_agrees_with_bruteforce =
  QCheck.Test.make ~name:"DPLL satisfiability agrees with brute force"
    ~count:300 arb_prop (fun f ->
      Bool.equal (Sat.satisfiable f) (brute_force_sat f))

let validity_agrees_with_bruteforce =
  QCheck.Test.make ~name:"validity agrees with brute force" ~count:300 arb_prop
    (fun f -> Bool.equal (Sat.valid f) (brute_force_valid f))

let direct_cnf_equisatisfiable =
  QCheck.Test.make ~name:"direct CNF agrees with Tseitin" ~count:200 arb_prop
    (fun f ->
      Bool.equal (Sat.solve (Sat.cnf_of_prop f) <> None) (Sat.satisfiable f))

let sat_counter name =
  match List.assoc_opt name (Argus_obs.Metrics.counters ()) with
  | Some n -> n
  | None -> 0

let test_pure_literal_elimination () =
  (* [p] and [q] appear only positively in this direct CNF, so DPLL
     must assign them by pure-literal elimination rather than
     branching.  (Tseitin-encoded queries never reach this code: the
     definitional clauses mention every introduced variable in both
     polarities — see DESIGN.md.) *)
  Argus_obs.Obs.reset ();
  let cnf =
    Sat.cnf_of_prop
      (Prop.of_string_exn "(p | a) & (p | ~a) & (q | a) & (q | ~b) & (b | ~a)")
  in
  Alcotest.(check bool) "satisfiable" true (Sat.solve cnf <> None);
  Alcotest.(check bool)
    (Printf.sprintf "pure literals eliminated (got %d)"
       (sat_counter "sat.pure_eliminations"))
    true
    (sat_counter "sat.pure_eliminations" > 0)

let test_quick_witness_and_memo () =
  Argus_obs.Obs.reset ();
  let f = Prop.of_string_exn "(a -> b) & (b -> c) & a" in
  (* All-true satisfies [f]: the witness prefilter answers without
     touching DPLL. *)
  Alcotest.(check bool) "satisfiable" true (Sat.satisfiable f);
  Alcotest.(check int) "witness prefilter fired" 1
    (sat_counter "sat.quick_wins");
  Alcotest.(check int) "first ask is not a memo hit" 0
    (sat_counter "sat.memo_hits");
  (* Asking again about a structurally equal formula hits the memo and
     runs neither the prefilter nor DPLL. *)
  Alcotest.(check bool)
    "same answer" true
    (Sat.satisfiable (Prop.of_string_exn "(a -> b) & (b -> c) & a"));
  Alcotest.(check int) "second ask hits the memo" 1
    (sat_counter "sat.memo_hits");
  Alcotest.(check int) "prefilter not re-run" 1
    (sat_counter "sat.quick_wins")

let model_satisfies =
  QCheck.Test.make ~name:"returned model satisfies the formula" ~count:300
    arb_prop (fun f ->
      match Sat.models f with
      | None -> not (brute_force_sat f)
      | Some asg ->
          let v x =
            match List.assoc_opt x asg with Some b -> b | None -> true
          in
          Prop.eval v f)

let entailment_reflexive =
  QCheck.Test.make ~name:"entailment is reflexive" ~count:200 arb_prop (fun f ->
      Sat.entails [ f ] f)

let entailment_monotone =
  QCheck.Test.make ~name:"entailment is monotone" ~count:200
    (QCheck.pair arb_prop arb_prop) (fun (f, g) ->
      if Sat.entails [ f ] g then Sat.entails [ f; Prop.Var "fresh_v" ] g
      else true)

let test_entails_basic () =
  let p = Prop.of_string_exn in
  Alcotest.(check bool) "mp" true (Sat.entails [ p "a -> b"; p "a" ] (p "b"));
  Alcotest.(check bool)
    "affirming consequent is not entailment" false
    (Sat.entails [ p "a -> b"; p "b" ] (p "a"));
  Alcotest.(check bool)
    "incompatible premises entail anything" true
    (Sat.entails [ p "a"; p "~a" ] (p "q"))

(* The array solver must agree with the retained naive reference on
   both CNF conversions, and its models must actually satisfy the
   clauses it was given. *)
let array_dpll_agrees_with_naive_tseitin =
  QCheck.Test.make ~name:"array DPLL agrees with naive DPLL (Tseitin CNF)"
    ~count:300 arb_prop (fun f ->
      let cnf = Sat.tseitin f in
      Bool.equal (Sat.solve cnf <> None) (Sat.Naive.solve cnf <> None))

let array_dpll_agrees_with_naive_direct =
  QCheck.Test.make ~name:"array DPLL agrees with naive DPLL (direct CNF)"
    ~count:300 arb_prop (fun f ->
      let cnf = Sat.cnf_of_prop f in
      Bool.equal (Sat.solve cnf <> None) (Sat.Naive.solve cnf <> None))

let array_dpll_model_satisfies_cnf =
  QCheck.Test.make ~name:"array DPLL models satisfy the CNF" ~count:300
    arb_prop (fun f ->
      let cnf = Sat.cnf_of_prop f in
      match Sat.solve cnf with
      | None -> true
      | Some asg ->
          List.for_all
            (fun c ->
              List.exists
                (fun l ->
                  match List.assoc_opt l.Sat.var asg with
                  | Some b -> Bool.equal b l.Sat.sign
                  | None -> false)
                c)
            cnf)

let exact_count f =
  match Sat.count_models f with
  | Sat.Exact n -> n
  | Sat.At_least n ->
      Alcotest.failf "count_models truncated at %d without a budget" n

let test_count_models () =
  let p = Prop.of_string_exn in
  Alcotest.(check int) "a | b" 3 (exact_count (p "a | b"));
  Alcotest.(check int) "a & ~a" 0 (exact_count (p "a & ~a"));
  Alcotest.(check int) "xor" 2 (exact_count (p "a <-> ~b"));
  (* A budget's solution cap turns the count into a lower bound, never
     a silently-wrong exact answer. *)
  let b = Argus_rt.Budget.make ~max_solutions:2 () in
  (match Sat.count_models ~budget:b (p "a | b | c") with
  | Sat.At_least n -> Alcotest.(check int) "capped lower bound" 2 n
  | Sat.Exact n -> Alcotest.failf "cap hit reported as exact %d" n);
  Alcotest.(check bool)
    "capped budget is exhausted" true
    (Argus_rt.Budget.exhausted b <> None)

(* --- Term --- *)

let gen_term =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Term.Var (Printf.sprintf "X%d" i)) (int_bound 3);
                map (fun i -> Term.const (Printf.sprintf "c%d" i)) (int_bound 3);
              ]
          else
            frequency
              [
                (1, map (fun i -> Term.Var (Printf.sprintf "X%d" i)) (int_bound 3));
                ( 3,
                  map2
                    (fun f args -> Term.app (Printf.sprintf "f%d" f) args)
                    (int_bound 2)
                    (list_size (int_range 1 3) (self (n / 2))) );
              ])
        (min n 6))

let arb_term = QCheck.make ~print:Term.to_string gen_term

let unify_produces_unifier =
  QCheck.Test.make ~name:"unify result equalises the terms" ~count:300
    (QCheck.pair arb_term arb_term) (fun (t1, t2) ->
      match Term.unify t1 t2 with
      | None -> true
      | Some s ->
          Term.equal (Term.Subst.apply s t1) (Term.Subst.apply s t2))

let unify_reflexive =
  QCheck.Test.make ~name:"every term unifies with itself" ~count:200 arb_term
    (fun t ->
      match Term.unify t t with
      | Some s ->
          (* The unifier must not bind variables to anything but variables
             (a most-general unifier of t with itself is a renaming). *)
          List.for_all
            (fun (_, u) -> match u with Term.Var _ -> true | _ -> false)
            (Term.Subst.bindings s)
      | None -> false)

let test_unify_basic () =
  let t s = Result.get_ok (Term.of_string s) in
  (match Term.unify (t "f(X, b)") (t "f(a, Y)") with
  | Some s ->
      Alcotest.(check bool)
        "X=a" true
        (Term.Subst.find "X" s = Some (Term.const "a"));
      Alcotest.(check bool)
        "Y=b" true
        (Term.Subst.find "Y" s = Some (Term.const "b"))
  | None -> Alcotest.fail "should unify");
  Alcotest.(check bool) "clash" true (Term.unify (t "f(a)") (t "g(a)") = None);
  Alcotest.(check bool)
    "arity clash" true
    (Term.unify (t "f(a)") (t "f(a, b)") = None)

let test_occurs_check () =
  let x = Term.var "X" in
  let fx = Term.app "f" [ Term.var "X" ] in
  Alcotest.(check bool) "occurs check rejects X = f(X)" true
    (Term.unify x fx = None)

let test_term_parse () =
  (match Term.of_string "adjacent(desert_bank, river)" with
  | Ok t ->
      Alcotest.(check bool) "parse shape" true
        (Term.equal t
           (Term.app "adjacent" [ Term.const "desert_bank"; Term.const "river" ]))
  | Error e -> Alcotest.fail e);
  (match Term.of_string "f(X, g(Y, c))" with
  | Ok t ->
      Alcotest.(check (list string)) "vars" [ "X"; "Y" ] (Term.vars t)
  | Error e -> Alcotest.fail e);
  match Term.of_string "f(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should not parse"

let term_print_parse_roundtrip =
  QCheck.Test.make ~name:"term pp/of_string round-trip" ~count:300 arb_term
    (fun t ->
      match Term.of_string (Term.to_string t) with
      | Ok t' -> Term.equal t t'
      | Error _ -> false)

let subst_compose_is_sequential =
  QCheck.Test.make ~name:"compose applies right-then-left" ~count:200
    (QCheck.triple arb_term arb_term arb_term) (fun (t, a, b) ->
      match (Term.unify t a, Term.unify t b) with
      | Some s1, Some s2 ->
          Term.equal
            (Term.Subst.apply (Term.Subst.compose s2 s1) t)
            (Term.Subst.apply s2 (Term.Subst.apply s1 t))
      | _ -> true)

(* --- Natded --- *)

let haley_proof =
  (* The eleven-step proof from Haley et al. 2008 (Section III.K):
     I->V, C->H, Y->V&C, D->Y, D |- D->H *)
  let p = Prop.of_string_exn in
  Natded.
    [
      { formula = p "i -> v"; rule = Premise };
      { formula = p "c -> h"; rule = Premise };
      { formula = p "y -> v & c"; rule = Premise };
      { formula = p "d -> y"; rule = Premise };
      { formula = p "d"; rule = Premise };
      { formula = p "y"; rule = Imp_elim (4, 5) };
      { formula = p "v & c"; rule = Imp_elim (3, 6) };
      { formula = p "v"; rule = And_elim_left 7 };
      { formula = p "c"; rule = And_elim_right 7 };
      { formula = p "h"; rule = Imp_elim (2, 9) };
      { formula = p "d -> h"; rule = Imp_intro (5, 10) };
    ]

let test_haley_proof_checks () =
  match Natded.check haley_proof with
  | Error ds ->
      Alcotest.failf "Haley proof rejected: %s"
        (Format.asprintf "%a" Argus_core.Diagnostic.pp_report ds)
  | Ok c ->
      Alcotest.(check string)
        "conclusion" "d -> h"
        (Prop.to_string c.Natded.conclusion);
      (* Premise 5 (D) is discharged; premises 1-4 remain, but only those
         the conclusion depends on: I->V is never used... it IS used via
         step 8?  No: step 8 derives V from step 7; premise 1 is unused. *)
      Alcotest.(check bool)
        "discharged D" true
        (not (List.mem (Prop.of_string_exn "d") c.Natded.premises));
      Alcotest.(check bool) "sound" true (Natded.semantically_sound c)

let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub hay i nn = needle || go (i + 1)
  in
  go 0

let test_haley_pretty_print () =
  let s = Format.asprintf "%a" Natded.pp haley_proof in
  Alcotest.(check bool) "mentions Detach" true (string_contains s "Detach");
  Alcotest.(check bool) "mentions Conclusion" true
    (string_contains s "Conclusion")

let test_bad_citation () =
  let p = Prop.of_string_exn in
  let proof =
    Natded.[ { formula = p "a"; rule = Reiterate 5 } ]
  in
  match Natded.check proof with
  | Error [ d ] ->
      Alcotest.(check string) "code" "natded/bad-citation" d.Argus_core.Diagnostic.code
  | _ -> Alcotest.fail "expected one bad-citation error"

let test_rule_mismatch () =
  let p = Prop.of_string_exn in
  (* Affirming the consequent: a->b, b |- a must be rejected. *)
  let proof =
    Natded.
      [
        { formula = p "a -> b"; rule = Premise };
        { formula = p "b"; rule = Premise };
        { formula = p "a"; rule = Imp_elim (1, 2) };
      ]
  in
  match Natded.check proof with
  | Error (d :: _) ->
      Alcotest.(check string) "code" "natded/rule-mismatch"
        d.Argus_core.Diagnostic.code
  | _ -> Alcotest.fail "expected rule-mismatch"

let test_empty_proof () =
  match Natded.check [] with
  | Error [ d ] ->
      Alcotest.(check string) "code" "natded/empty-proof"
        d.Argus_core.Diagnostic.code
  | _ -> Alcotest.fail "expected empty-proof error"

let test_reductio () =
  let p = Prop.of_string_exn in
  let proof =
    Natded.
      [
        { formula = p "a -> b"; rule = Premise };
        { formula = p "~b"; rule = Premise };
        { formula = p "a"; rule = Assumption };
        { formula = p "b"; rule = Imp_elim (1, 3) };
        { formula = p "false"; rule = Not_elim (4, 2) };
        { formula = p "~a"; rule = Not_intro (3, 5) };
      ]
  in
  match Natded.check proof with
  | Ok c ->
      Alcotest.(check string) "modus tollens" "~a" (Prop.to_string c.Natded.conclusion);
      Alcotest.(check int) "two premises remain" 2 (List.length c.Natded.premises);
      Alcotest.(check bool) "sound" true (Natded.semantically_sound c)
  | Error ds ->
      Alcotest.failf "rejected: %s"
        (Format.asprintf "%a" Argus_core.Diagnostic.pp_report ds)

let test_or_elim () =
  let p = Prop.of_string_exn in
  let proof =
    Natded.
      [
        { formula = p "a | b"; rule = Premise };
        { formula = p "a -> c"; rule = Premise };
        { formula = p "b -> c"; rule = Premise };
        { formula = p "c"; rule = Or_elim (1, 2, 3) };
      ]
  in
  Alcotest.(check bool) "or-elim accepted" true (Natded.is_valid proof)

let test_excluded_middle () =
  let p = Prop.of_string_exn in
  let good = Natded.[ { formula = p "a | ~a"; rule = Excluded_middle } ] in
  let bad = Natded.[ { formula = p "a | ~b"; rule = Excluded_middle } ] in
  Alcotest.(check bool) "good" true (Natded.is_valid good);
  Alcotest.(check bool) "bad" false (Natded.is_valid bad)

(* Mutating any single step formula of a valid proof to something
   syntactically different should make the checker reject it (the rules
   pin formulas exactly). *)
let test_mutation_rejected () =
  List.iteri
    (fun k _ ->
      let mutated =
        List.mapi
          (fun i (s : Natded.step) ->
            if i = k then { s with Natded.formula = Prop.Var "zz_mutant" }
            else s)
          haley_proof
      in
      (* Mutating a premise still yields a valid proof shape unless cited
         formulas stop matching; every step of this proof is cited, so
         all mutations except of step 1 break it.  Step 1 (i -> v) is
         never cited, so mutating it is still checkable. *)
      if k <> 0 && Natded.is_valid mutated then
        Alcotest.failf "mutation of step %d was accepted" (k + 1))
    haley_proof

(* Generate random valid proofs by forward application of rules and check
   they are accepted and semantically sound. *)
let gen_valid_proof =
  let open QCheck.Gen in
  let* n_prem = int_range 1 4 in
  let premises =
    List.init n_prem (fun i ->
        Natded.{ formula = Prop.Var (Printf.sprintf "p%d" i); rule = Premise })
  in
  let* n_steps = int_range 1 6 in
  let rec extend proof k =
    if k = 0 then return (List.rev proof)
    else
      let len = List.length proof in
      let nth_formula i = (List.nth (List.rev proof) (i - 1)).Natded.formula in
      let* i = int_range 1 len in
      let* j = int_range 1 len in
      let* choice = int_bound 2 in
      let step =
        match choice with
        | 0 ->
            Natded.
              {
                formula = Prop.And (nth_formula i, nth_formula j);
                rule = And_intro (i, j);
              }
        | 1 ->
            Natded.
              {
                formula = Prop.Or (nth_formula i, Prop.Var "w");
                rule = Or_intro_left i;
              }
        | _ -> Natded.{ formula = nth_formula i; rule = Reiterate i }
      in
      extend (step :: proof) (k - 1)
  in
  extend (List.rev premises) n_steps

let generated_proofs_check =
  QCheck.Test.make ~name:"generated proofs are accepted and sound" ~count:200
    (QCheck.make gen_valid_proof) (fun proof ->
      match Natded.check proof with
      | Ok c -> Natded.semantically_sound c
      | Error _ -> false)

(* --- Proof_text --- *)

let haley_text =
  {|# the Haley outer argument
1. i -> v      premise
2. c -> h      premise
3. y -> v & c  premise
4. d -> y      premise
5. d           premise
6. y           detach 4 5
7. v & c       detach 3 6
8. v           split-left 7
9. c           split-right 7
10. h          detach 2 9
11. d -> h     conclusion 5 10
|}

let test_proof_text_parse () =
  let proof = Proof_text.parse_exn haley_text in
  Alcotest.(check bool) "equals the programmatic proof" true
    (proof = haley_proof);
  Alcotest.(check bool) "checks" true (Natded.is_valid proof)

let test_proof_text_numbering_optional () =
  let unnumbered = "a premise\nb premise\na & b join 1 2" in
  Alcotest.(check bool) "parses" true
    (Result.is_ok (Proof_text.parse unnumbered))

let test_proof_text_errors () =
  List.iter
    (fun (text, fragment) ->
      match Proof_text.parse text with
      | Ok _ -> Alcotest.failf "should not parse: %s" text
      | Error e ->
          if
            not
              (let nh = String.length e and nn = String.length fragment in
               let rec go i =
                 if i + nn > nh then false
                 else String.sub e i nn = fragment || go (i + 1)
               in
               go 0)
          then Alcotest.failf "error %S does not mention %S" e fragment)
    [
      ("", "empty");
      ("a zap", "unknown rule");
      ("2. a premise", "numbered 2 but is step 1");
      ("a & premise", "cannot parse formula");
      ("a detach 1", "takes 2 citation(s)");
      ("a premise 1", "takes 0 citation(s)");
    ]

let test_proof_text_rule_coverage () =
  (* Every keyword round-trips through a one-rule proof skeleton. *)
  Alcotest.(check int) "18 rule keywords" 18
    (List.length Proof_text.rule_keywords)

let proof_text_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip on generated proofs"
    ~count:200 (QCheck.make gen_valid_proof) (fun proof ->
      match Proof_text.parse (Proof_text.print proof) with
      | Ok proof' -> proof = proof'
      | Error _ -> false)

let test_proof_text_haley_roundtrip () =
  let printed = Proof_text.print haley_proof in
  Alcotest.(check bool) "round-trip" true
    (Proof_text.parse_exn printed = haley_proof)

(* --- Syllogism --- *)

let test_exactly_fifteen_valid_forms () =
  let valid = List.filter Syllogism.is_valid (Syllogism.all_moods_figures ()) in
  Alcotest.(check int) "15 valid forms" 15 (List.length valid);
  List.iter
    (fun s ->
      match Syllogism.name_of s with
      | Some _ -> ()
      | None -> Alcotest.failf "valid but unnamed syllogism")
    valid

let test_named_forms_are_valid () =
  Alcotest.(check int) "name list has 15" 15
    (List.length Syllogism.valid_form_names)

let test_barbara () =
  (* All men are mortal; Socrates is a man (as: all Socrates are men);
     therefore Socrates is mortal. *)
  let s =
    Syllogism.
      {
        major = prop A "men" "mortal";
        minor = prop A "socrates" "men";
        conclusion = prop A "socrates" "mortal";
      }
  in
  Alcotest.(check bool) "valid" true (Syllogism.is_valid s);
  Alcotest.(check (option string)) "named" (Some "Barbara") (Syllogism.name_of s);
  Alcotest.(check (option int)) "figure 1" (Some 1) (Syllogism.figure s)

let test_undistributed_middle () =
  (* All banks are adjacent-to-rivers; Desert Bank is a bank... the
     valid version.  The classic undistributed middle: All P are M, All
     S are M |- All S are P. *)
  let s =
    Syllogism.
      {
        major = prop A "dogs" "animals";
        minor = prop A "cats" "animals";
        conclusion = prop A "cats" "dogs";
      }
  in
  Alcotest.(check bool) "invalid" false (Syllogism.is_valid s);
  Alcotest.(check bool) "diagnosed" true
    (List.mem Syllogism.Undistributed_middle (Syllogism.violations s))

let test_illicit_major () =
  (* All M are P; No S are M |- No S are P: P distributed in conclusion
     (E) but not in major premise (A-predicate). *)
  let s =
    Syllogism.
      {
        major = prop A "m" "p";
        minor = prop E "s" "m";
        conclusion = prop E "s" "p";
      }
  in
  Alcotest.(check bool) "invalid" false (Syllogism.is_valid s);
  Alcotest.(check bool) "diagnosed" true
    (List.mem Syllogism.Illicit_major (Syllogism.violations s))

let test_exclusive_premises () =
  let s =
    Syllogism.
      {
        major = prop E "m" "p";
        minor = prop O "s" "m";
        conclusion = prop O "s" "p";
      }
  in
  Alcotest.(check bool) "diagnosed" true
    (List.mem Syllogism.Exclusive_premises (Syllogism.violations s))

let test_malformed () =
  let s =
    Syllogism.
      {
        major = prop A "x" "y";
        minor = prop A "z" "w";
        conclusion = prop A "q" "r";
      }
  in
  match Syllogism.violations s with
  | [ Syllogism.Malformed _ ] -> ()
  | _ -> Alcotest.fail "expected a malformed diagnosis"

let test_conversion () =
  Alcotest.(check bool) "E converts" true (Syllogism.conversion_valid Syllogism.E);
  Alcotest.(check bool) "I converts" true (Syllogism.conversion_valid Syllogism.I);
  Alcotest.(check bool) "A does not" false (Syllogism.conversion_valid Syllogism.A);
  Alcotest.(check bool) "O does not" false (Syllogism.conversion_valid Syllogism.O);
  let p = Syllogism.prop Syllogism.A "banks" "riverside_things" in
  let c = Syllogism.converse p in
  Alcotest.(check string) "swap" "riverside_things" c.Syllogism.subject

(* Semantic cross-check: encode a syllogism over a tiny universe and
   verify that rule-validity coincides with semantic validity (checked by
   enumerating all set assignments over a 3-element universe; 3 elements
   suffice to refute every invalid AEIO form under the modern reading). *)
let semantic_check syll =
  let universe = [ 0; 1; 2 ] in
  let subsets =
    (* All subsets of the universe as membership predicates. *)
    List.init 8 (fun mask x -> mask land (1 lsl x) <> 0)
  in
  let holds pred (p : Syllogism.proposition) s_of =
    ignore pred;
    let s_set = s_of p.Syllogism.subject and p_set = s_of p.Syllogism.predicate in
    match p.Syllogism.form with
    | Syllogism.A -> List.for_all (fun x -> (not (s_set x)) || p_set x) universe
    | Syllogism.E -> List.for_all (fun x -> not (s_set x && p_set x)) universe
    | Syllogism.I -> List.exists (fun x -> s_set x && p_set x) universe
    | Syllogism.O -> List.exists (fun x -> s_set x && not (p_set x)) universe
  in
  let terms =
    List.sort_uniq String.compare
      Syllogism.
        [
          syll.major.subject;
          syll.major.predicate;
          syll.minor.subject;
          syll.minor.predicate;
          syll.conclusion.subject;
          syll.conclusion.predicate;
        ]
  in
  match terms with
  | [ t1; t2; _t3 ] ->
      let ok = ref true in
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              List.iter
                (fun s3 ->
                  let s_of t =
                    if t = t1 then s1 else if t = t2 then s2 else s3
                  in
                  if
                    holds () syll.Syllogism.major s_of
                    && holds () syll.Syllogism.minor s_of
                    && not (holds () syll.Syllogism.conclusion s_of)
                  then ok := false)
                subsets)
            subsets)
        subsets;
      Some !ok
  | _ -> None

let test_rules_match_semantics () =
  List.iter
    (fun syll ->
      match semantic_check syll with
      | None -> ()
      | Some semantically_valid ->
          let rule_valid = Syllogism.is_valid syll in
          if Bool.equal rule_valid semantically_valid then ()
          else if (not rule_valid) && semantically_valid then
            (* The classical rules are sound but reject the five forms
               needing existential import; under the modern reading those
               are semantically invalid too (empty sets), so with subsets
               including the empty set the two must agree exactly. *)
            Alcotest.failf "rules reject a semantically valid form: %s"
              (Format.asprintf "%a" Syllogism.pp syll)
          else
            Alcotest.failf "rules accept a semantically invalid form: %s"
              (Format.asprintf "%a" Syllogism.pp syll))
    (Syllogism.all_moods_figures ())

let () =
  Alcotest.run "argus-logic"
    [
      ( "prop",
        [
          Alcotest.test_case "parse/print cases" `Quick test_prop_parse_print;
          Alcotest.test_case "synonyms" `Quick test_prop_parse_synonyms;
          Alcotest.test_case "parse errors" `Quick test_prop_parse_errors;
          Alcotest.test_case "vars order" `Quick test_prop_vars_order;
          Alcotest.test_case "subst" `Quick test_subst;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest nnf_preserves_semantics;
          QCheck_alcotest.to_alcotest nnf_is_nnf;
        ] );
      ( "sat",
        [
          Alcotest.test_case "basic entailment" `Quick test_entails_basic;
          Alcotest.test_case "model counting" `Quick test_count_models;
          Alcotest.test_case "pure-literal elimination" `Quick
            test_pure_literal_elimination;
          Alcotest.test_case "witness prefilter and memo" `Quick
            test_quick_witness_and_memo;
          QCheck_alcotest.to_alcotest dpll_agrees_with_bruteforce;
          QCheck_alcotest.to_alcotest validity_agrees_with_bruteforce;
          QCheck_alcotest.to_alcotest direct_cnf_equisatisfiable;
          QCheck_alcotest.to_alcotest array_dpll_agrees_with_naive_tseitin;
          QCheck_alcotest.to_alcotest array_dpll_agrees_with_naive_direct;
          QCheck_alcotest.to_alcotest array_dpll_model_satisfies_cnf;
          QCheck_alcotest.to_alcotest model_satisfies;
          QCheck_alcotest.to_alcotest entailment_reflexive;
          QCheck_alcotest.to_alcotest entailment_monotone;
        ] );
      ( "term",
        [
          Alcotest.test_case "basic unification" `Quick test_unify_basic;
          Alcotest.test_case "occurs check" `Quick test_occurs_check;
          Alcotest.test_case "parsing" `Quick test_term_parse;
          QCheck_alcotest.to_alcotest unify_produces_unifier;
          QCheck_alcotest.to_alcotest unify_reflexive;
          QCheck_alcotest.to_alcotest term_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest subst_compose_is_sequential;
        ] );
      ( "natded",
        [
          Alcotest.test_case "Haley 2008 proof" `Quick test_haley_proof_checks;
          Alcotest.test_case "pretty print" `Quick test_haley_pretty_print;
          Alcotest.test_case "bad citation" `Quick test_bad_citation;
          Alcotest.test_case "rule mismatch" `Quick test_rule_mismatch;
          Alcotest.test_case "empty proof" `Quick test_empty_proof;
          Alcotest.test_case "reductio" `Quick test_reductio;
          Alcotest.test_case "or elimination" `Quick test_or_elim;
          Alcotest.test_case "excluded middle" `Quick test_excluded_middle;
          Alcotest.test_case "mutations rejected" `Quick test_mutation_rejected;
          QCheck_alcotest.to_alcotest generated_proofs_check;
        ] );
      ( "proof-text",
        [
          Alcotest.test_case "parse Haley file" `Quick test_proof_text_parse;
          Alcotest.test_case "numbering optional" `Quick
            test_proof_text_numbering_optional;
          Alcotest.test_case "errors" `Quick test_proof_text_errors;
          Alcotest.test_case "rule coverage" `Quick
            test_proof_text_rule_coverage;
          Alcotest.test_case "Haley round-trip" `Quick
            test_proof_text_haley_roundtrip;
          QCheck_alcotest.to_alcotest proof_text_roundtrip;
        ] );
      ( "syllogism",
        [
          Alcotest.test_case "15 valid forms" `Quick
            test_exactly_fifteen_valid_forms;
          Alcotest.test_case "name list" `Quick test_named_forms_are_valid;
          Alcotest.test_case "Barbara" `Quick test_barbara;
          Alcotest.test_case "undistributed middle" `Quick
            test_undistributed_middle;
          Alcotest.test_case "illicit major" `Quick test_illicit_major;
          Alcotest.test_case "exclusive premises" `Quick test_exclusive_premises;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "conversion" `Quick test_conversion;
          Alcotest.test_case "rules match semantics" `Slow
            test_rules_match_semantics;
        ] );
    ]
