open Argus_experiments

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let xs = List.init 20 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "same stream" true (xs = ys)

let test_prng_seed_sensitivity () =
  let a = Prng.create 7 and b = Prng.create 8 in
  Alcotest.(check bool) "different streams" false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_float_range () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_prng_int_range () =
  let rng = Prng.create 2 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of range: %d" x
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_gaussian_moments () =
  let rng = Prng.create 3 in
  let xs = List.init 20000 (fun _ -> Prng.gaussian rng ~mean:5.0 ~sd:2.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  Alcotest.(check bool) "mean close" true (Float.abs (m -. 5.0) < 0.1);
  Alcotest.(check bool) "sd close" true (Float.abs (sd -. 2.0) < 0.1)

let test_prng_bernoulli_rate () =
  let rng = Prng.create 4 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10000.0 in
  Alcotest.(check bool) "rate close" true (Float.abs (rate -. 0.3) < 0.02)

let test_prng_split_independent () =
  let rng = Prng.create 5 in
  let a = Prng.split rng and b = Prng.split rng in
  Alcotest.(check bool) "split streams differ" false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_stream () =
  (* [stream] is pure: it derives a per-index generator without
     advancing the parent, so trial k draws the same numbers whether the
     trials run in order, out of order, or on different domains. *)
  let rng = Prng.create 7 in
  let before = Prng.copy rng in
  let s0 = Prng.stream rng 0 and s1 = Prng.stream rng 1 in
  Alcotest.(check bool)
    "parent not advanced" true
    (Prng.next_int64 before = Prng.next_int64 rng);
  Alcotest.(check bool)
    "distinct indices differ" false
    (Prng.next_int64 s0 = Prng.next_int64 s1);
  let draws t = List.init 5 (fun _ -> Prng.float t) in
  Alcotest.(check bool)
    "same index replays the same draws" true
    (draws (Prng.stream before 3) = draws (Prng.stream before 3));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.stream: index must be non-negative") (fun () ->
      ignore (Prng.stream rng (-1)))

let test_prng_gaussian_spare_stream_isolated () =
  (* The banked Box-Muller half is per-generator state: a stream must
     not inherit or disturb its parent's spare. *)
  let rng = Prng.create 8 in
  ignore (Prng.gaussian rng ~mean:0.0 ~sd:1.0);
  (* parent now holds a spare *)
  let replay = Prng.copy rng in
  let s = Prng.stream rng 0 in
  let xs = List.init 3 (fun _ -> Prng.gaussian s ~mean:0.0 ~sd:1.0) in
  let ys =
    let s' = Prng.stream replay 0 in
    List.init 3 (fun _ -> Prng.gaussian s' ~mean:0.0 ~sd:1.0)
  in
  Alcotest.(check bool) "stream draws reproducible" true (xs = ys);
  Alcotest.(check bool)
    "parent's banked half intact" true
    (Prng.gaussian rng ~mean:0.0 ~sd:1.0
    = Prng.gaussian replay ~mean:0.0 ~sd:1.0)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 6 in
  let arr = Array.init 10 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (Array.to_list sorted = List.init 10 Fun.id)

(* --- Stats --- *)

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "variance" 1.0 (Stats.variance [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 1.5
    (Stats.median [ 1.0; 2.0; 0.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile 0.0 [ 0.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "p100" 1.0 (Stats.percentile 100.0 [ 0.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean [])

let test_t_cdf_known_values () =
  (* CDF(0) = 0.5 for any df; CDF(1.96, large df) ~ 0.975. *)
  Alcotest.(check (float 1e-6)) "cdf at 0" 0.5 (Stats.student_t_cdf 0.0 10.0);
  let v = Stats.student_t_cdf 1.96 1000.0 in
  Alcotest.(check bool) "large-df normal limit" true (Float.abs (v -. 0.975) < 0.002);
  (* t distribution with df=1 is Cauchy: CDF(1) = 0.75. *)
  let c = Stats.student_t_cdf 1.0 1.0 in
  Alcotest.(check bool) "Cauchy quartile" true (Float.abs (c -. 0.75) < 0.001)

let test_welch_t () =
  let xs = [ 5.0; 6.0; 5.5; 6.2; 5.8 ] in
  let ys = [ 8.0; 8.5; 7.9; 8.2; 8.4 ] in
  let r = Stats.welch_t xs ys in
  Alcotest.(check bool) "clearly different" true (r.Stats.p < 0.001);
  Alcotest.(check bool) "direction" true (r.Stats.t < 0.0);
  let same = Stats.welch_t xs xs in
  Alcotest.(check bool) "same data: p near 1" true (same.Stats.p > 0.95)

let test_welch_degenerate () =
  let r = Stats.welch_t [ 1.0 ] [ 2.0 ] in
  Alcotest.(check (float 1e-9)) "p = 1" 1.0 r.Stats.p

let test_cohens_d () =
  let d = Stats.cohens_d [ 1.0; 2.0; 3.0 ] [ 4.0; 5.0; 6.0 ] in
  Alcotest.(check (float 1e-9)) "d = -3" (-3.0) d

let test_pearson () =
  let perfect = [ (1.0, 2.0); (2.0, 4.0); (3.0, 6.0) ] in
  Alcotest.(check (float 1e-9)) "perfect positive" 1.0 (Stats.pearson_r perfect);
  let inverse = [ (1.0, 3.0); (2.0, 2.0); (3.0, 1.0) ] in
  Alcotest.(check (float 1e-9)) "perfect negative" (-1.0)
    (Stats.pearson_r inverse);
  Alcotest.(check (float 1e-9)) "degenerate" 0.0
    (Stats.pearson_r [ (1.0, 1.0) ]);
  Alcotest.(check (float 1e-9)) "zero variance" 0.0
    (Stats.pearson_r [ (1.0, 5.0); (1.0, 7.0); (1.0, 9.0) ])

let test_fleiss_kappa () =
  (* Perfect agreement. *)
  let perfect = [| [| 5; 0 |]; [| 0; 5 |]; [| 5; 0 |] |] in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Stats.fleiss_kappa perfect);
  (* Split judgments give low kappa. *)
  let split = [| [| 3; 2 |]; [| 2; 3 |]; [| 3; 2 |]; [| 2; 3 |] |] in
  Alcotest.(check bool) "split is low" true (Stats.fleiss_kappa split < 0.2);
  Alcotest.check_raises "ragged"
    (Invalid_argument "fleiss_kappa: unequal rater counts") (fun () ->
      ignore (Stats.fleiss_kappa [| [| 2; 0 |]; [| 3; 1 |] |]))

let ci_contains_mean =
  QCheck.Test.make ~name:"ci95 brackets the mean" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 20) (float_bound_exclusive 100.0))
    (fun xs ->
      let m = Stats.mean xs in
      let lo, hi = Stats.ci95 xs in
      lo <= m +. 1e-9 && m <= hi +. 1e-9)

(* --- Experiment A --- *)

let result_a = Exp_a.run Exp_a.default_config

let test_a_deterministic () =
  let r2 = Exp_a.run Exp_a.default_config in
  Alcotest.(check bool) "same result" true (result_a = r2)

let test_a_duty_costs_time () =
  Alcotest.(check bool) "both-duties arm is slower" true
    (result_a.Exp_a.both_duties.Exp_a.mean_minutes
    > result_a.Exp_a.informal_only.Exp_a.mean_minutes);
  Alcotest.(check bool) "significant" true
    (result_a.Exp_a.time_test.Stats.p < 0.01)

let test_a_tool_perfect_on_formal () =
  Alcotest.(check int) "tool finds all seeded formal fallacies"
    result_a.Exp_a.tool_formal_seeded result_a.Exp_a.tool_formal_found;
  Alcotest.(check int) "no false positives on informal seeds" 0
    result_a.Exp_a.tool_false_positives

let test_a_humans_miss_some () =
  let arm = result_a.Exp_a.both_duties in
  Alcotest.(check bool) "humans with the duty still miss formal fallacies"
    true
    (arm.Exp_a.formal_found < arm.Exp_a.formal_seeded);
  let incidental = result_a.Exp_a.informal_only in
  Alcotest.(check bool) "duty beats incidental detection" true
    (arm.Exp_a.formal_found > incidental.Exp_a.formal_found)

let test_a_reviewer_overlap () =
  (* Greenwell's Section V.C observation: each reviewer overlooked some
     fallacies the other flagged. *)
  let o = result_a.Exp_a.overlap in
  Alcotest.(check bool) "first missed some the second found" true
    (o.Exp_a.second_only > 0);
  Alcotest.(check bool) "second missed some the first found" true
    (o.Exp_a.first_only > 0);
  Alcotest.(check int) "partition covers the 45 instances" 45
    (o.Exp_a.first_only + o.Exp_a.second_only + o.Exp_a.both + o.Exp_a.neither)

(* --- Experiment B --- *)

let result_b = Exp_b.run Exp_b.default_config

let test_b_deterministic () =
  Alcotest.(check bool) "same result" true (result_b = Exp_b.run Exp_b.default_config)

let test_b_learning_effect () =
  Alcotest.(check bool) "later tasks are faster" true
    (result_b.Exp_b.learning_ratio < 1.0)

let test_b_expertise_effect () =
  Alcotest.(check bool) "experts are faster per node" true
    (result_b.Exp_b.expert_minutes_per_node
    < result_b.Exp_b.novice_minutes_per_node);
  Alcotest.(check bool) "formalisation is costly" true
    (result_b.Exp_b.minutes_for_100_node_argument > 100.0)

(* --- Experiment C --- *)

let result_c = Exp_c.run Exp_c.default_config

let test_c_deterministic () =
  Alcotest.(check bool) "same result" true (result_c = Exp_c.run Exp_c.default_config)

let test_c_formal_slower_for_everyone () =
  List.iter
    (fun rr ->
      if rr.Exp_c.formal_minutes <= rr.Exp_c.informal_minutes then
        Alcotest.failf "formal faster for %s"
          (Argus_core.Lifecycle.role_to_string rr.Exp_c.role))
    result_c.Exp_c.per_role

let test_c_gap_tracks_literacy () =
  (* The least logic-literate role suffers the largest comprehension
     drop; the most literate the smallest. *)
  let gaps = result_c.Exp_c.comprehension_gap_vs_literacy in
  let by_literacy = List.sort (fun (a, _) (b, _) -> compare a b) gaps in
  let least = snd (List.hd by_literacy) in
  let most = snd (List.nth by_literacy (List.length by_literacy - 1)) in
  Alcotest.(check bool) "monotone-ish relationship" true (least > most)

let test_c_gap_literacy_correlation_negative () =
  (* Higher literacy means a smaller comprehension gap: strongly
     negative correlation. *)
  Alcotest.(check bool) "strongly negative" true
    (result_c.Exp_c.gap_literacy_correlation < -0.7)

let test_c_engineers_keep_comprehension () =
  let eng =
    List.find
      (fun rr -> rr.Exp_c.role = Argus_core.Lifecycle.Design_engineer)
      result_c.Exp_c.per_role
  in
  let mgr =
    List.find
      (fun rr -> rr.Exp_c.role = Argus_core.Lifecycle.Manager)
      result_c.Exp_c.per_role
  in
  Alcotest.(check bool) "engineers out-comprehend managers on formal" true
    (eng.Exp_c.formal_comprehension > mgr.Exp_c.formal_comprehension)

(* --- Experiment D --- *)

let result_d = Exp_d.run Exp_d.default_config

let test_d_deterministic () =
  Alcotest.(check bool) "same result" true (result_d = Exp_d.run Exp_d.default_config)

let test_d_checker_agreed () =
  (* Every checkable defect was really flagged by Pattern.instantiate,
     and every semantic defect really passed. *)
  Alcotest.(check bool) "real checker behaved as classified" true
    result_d.Exp_d.tool_checker_agreed

let test_d_tool_reduces_residual_defects () =
  Alcotest.(check bool) "fewer residual defects with the tool" true
    (result_d.Exp_d.residual_rate_tool < result_d.Exp_d.residual_rate_manual)

let test_d_semantic_defects_survive_tool () =
  (* The tool arm still has residual defects: the semantically-wrong
     values no checker can catch. *)
  Alcotest.(check bool) "tool arm residuals exist" true
    (result_d.Exp_d.tool.Exp_d.residual_defects > 0)

(* --- Experiment E --- *)

let result_e = Exp_e.run Exp_e.default_config

let test_e_deterministic () =
  Alcotest.(check bool) "same result" true (result_e = Exp_e.run Exp_e.default_config)

let test_e_ground_truth_shape () =
  let gt = result_e.Exp_e.ground_truth in
  let v e = List.assoc e gt in
  (* E1 and E2 are each fully load-bearing; E3/E4 are redundant pair
     members with small relative impact. *)
  Alcotest.(check bool) "E1 critical" true (v "E1" > 0.9);
  Alcotest.(check bool) "E2 critical" true (v "E2" > 0.9);
  Alcotest.(check bool) "E3 partial" true (v "E3" < 0.4);
  Alcotest.(check bool) "E4 partial" true (v "E4" < 0.4)

let test_e_probing_faster_but_coarser () =
  Alcotest.(check bool) "probing is faster" true
    (result_e.Exp_e.probing.Exp_e.mean_minutes
    < result_e.Exp_e.tracing.Exp_e.mean_minutes);
  Alcotest.(check bool) "probing agrees more (it is mechanical)" true
    (result_e.Exp_e.probing.Exp_e.kappa > result_e.Exp_e.tracing.Exp_e.kappa);
  Alcotest.(check bool)
    "but probing is less accurate on matter-of-degree evidence" true
    (result_e.Exp_e.probing.Exp_e.mean_abs_error
    > result_e.Exp_e.tracing.Exp_e.mean_abs_error)

let test_e_categorise () =
  Alcotest.(check bool) "negligible" true (Exp_e.categorise 0.05 = Exp_e.Negligible);
  Alcotest.(check bool) "moderate" true (Exp_e.categorise 0.2 = Exp_e.Moderate);
  Alcotest.(check bool) "critical" true (Exp_e.categorise 0.8 = Exp_e.Critical)

(* Pretty-printers do not raise and mention their experiment. *)
let test_pp_smoke () =
  let checks =
    [
      (Format.asprintf "%a" Exp_a.pp result_a, "Experiment A");
      (Format.asprintf "%a" Exp_b.pp result_b, "Experiment B");
      (Format.asprintf "%a" Exp_c.pp result_c, "Experiment C");
      (Format.asprintf "%a" Exp_d.pp result_d, "Experiment D");
      (Format.asprintf "%a" Exp_e.pp result_e, "Experiment E");
    ]
  in
  List.iter
    (fun (s, tag) ->
      let nh = String.length s and nn = String.length tag in
      let rec go i =
        if i + nn > nh then false else String.sub s i nn = tag || go (i + 1)
      in
      if not (go 0) then Alcotest.failf "output does not mention %s" tag)
    checks

let () =
  Alcotest.run "argus-experiments"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "stream is pure" `Quick test_prng_stream;
          Alcotest.test_case "stream isolates gaussian spare" `Quick
            test_prng_gaussian_spare_stream_isolated;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "t cdf" `Quick test_t_cdf_known_values;
          Alcotest.test_case "welch" `Quick test_welch_t;
          Alcotest.test_case "welch degenerate" `Quick test_welch_degenerate;
          Alcotest.test_case "cohen's d" `Quick test_cohens_d;
          Alcotest.test_case "pearson" `Quick test_pearson;
          Alcotest.test_case "fleiss kappa" `Quick test_fleiss_kappa;
          QCheck_alcotest.to_alcotest ci_contains_mean;
        ] );
      ( "exp-a",
        [
          Alcotest.test_case "deterministic" `Quick test_a_deterministic;
          Alcotest.test_case "duty costs time" `Quick test_a_duty_costs_time;
          Alcotest.test_case "tool perfect on formal" `Quick
            test_a_tool_perfect_on_formal;
          Alcotest.test_case "humans miss some" `Quick test_a_humans_miss_some;
          Alcotest.test_case "reviewer overlap" `Quick test_a_reviewer_overlap;
        ] );
      ( "exp-b",
        [
          Alcotest.test_case "deterministic" `Quick test_b_deterministic;
          Alcotest.test_case "learning effect" `Quick test_b_learning_effect;
          Alcotest.test_case "expertise effect" `Quick test_b_expertise_effect;
        ] );
      ( "exp-c",
        [
          Alcotest.test_case "deterministic" `Quick test_c_deterministic;
          Alcotest.test_case "formal slower" `Quick
            test_c_formal_slower_for_everyone;
          Alcotest.test_case "gap tracks literacy" `Quick
            test_c_gap_tracks_literacy;
          Alcotest.test_case "correlation negative" `Quick
            test_c_gap_literacy_correlation_negative;
          Alcotest.test_case "engineers vs managers" `Quick
            test_c_engineers_keep_comprehension;
        ] );
      ( "exp-d",
        [
          Alcotest.test_case "deterministic" `Quick test_d_deterministic;
          Alcotest.test_case "checker agreed" `Quick test_d_checker_agreed;
          Alcotest.test_case "tool reduces residuals" `Quick
            test_d_tool_reduces_residual_defects;
          Alcotest.test_case "semantic defects survive" `Quick
            test_d_semantic_defects_survive_tool;
        ] );
      ( "exp-e",
        [
          Alcotest.test_case "deterministic" `Quick test_e_deterministic;
          Alcotest.test_case "ground truth shape" `Quick
            test_e_ground_truth_shape;
          Alcotest.test_case "probing faster but coarser" `Quick
            test_e_probing_faster_but_coarser;
          Alcotest.test_case "categorise" `Quick test_e_categorise;
        ] );
      ("pp", [ Alcotest.test_case "smoke" `Quick test_pp_smoke ]);
    ]
