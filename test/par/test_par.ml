module Pool = Argus_par.Pool

(* The determinism contract: every operation returns results
   bit-identical to the sequential path for any worker count.  The
   workload-level equalities (experiments, corpus scan, batch check)
   are appended once those modules grow their [?pool] parameter. *)

let test_jobs = [ 1; 2; 8 ]

let with_pools f = List.iter (fun j -> Pool.with_pool ~jobs:j (f j)) test_jobs

let test_map_matches_sequential () =
  with_pools (fun j pool ->
      let arr = Array.init 1003 (fun i -> (i * 7919) mod 257) in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        (Printf.sprintf "map_array jobs=%d" j)
        (Array.map f arr)
        (Pool.map_array ~pool f arr);
      Alcotest.(check (array int))
        (Printf.sprintf "mapi_array jobs=%d" j)
        (Array.mapi (fun i x -> i + f x) arr)
        (Pool.mapi_array ~pool (fun i x -> i + f x) arr);
      Alcotest.(check (array int))
        (Printf.sprintf "init jobs=%d" j)
        (Array.init 517 (fun i -> i * 3))
        (Pool.init ~pool 517 (fun i -> i * 3));
      Alcotest.(check (list int))
        (Printf.sprintf "map_list jobs=%d" j)
        (List.map f (Array.to_list arr))
        (Pool.map_list ~pool f (Array.to_list arr)))

let test_map_edge_sizes () =
  with_pools (fun j pool ->
      Alcotest.(check (array int))
        (Printf.sprintf "empty jobs=%d" j)
        [||]
        (Pool.map_array ~pool succ [||]);
      Alcotest.(check (array int))
        (Printf.sprintf "singleton jobs=%d" j)
        [| 42 |]
        (Pool.map_array ~pool succ [| 41 |]))

let test_map_reduce_property () =
  (* For an associative-with-unit combine, map_reduce must equal the
     sequential left fold whatever the worker count. *)
  let prop =
    QCheck.Test.make ~count:50 ~name:"map_reduce = sequential fold"
      QCheck.(pair (small_list small_int) (int_range 1 8))
      (fun (xs, jobs) ->
        let arr = Array.of_list xs in
        let seq =
          Array.fold_left (fun acc x -> acc + ((2 * x) + 1)) 0 arr
        in
        Pool.with_pool ~jobs (fun pool ->
            Pool.map_reduce ~pool
              ~map:(fun x -> (2 * x) + 1)
              ~combine:( + ) ~init:0 arr
            = seq))
  in
  QCheck_alcotest.to_alcotest prop

let test_map_reduce_order () =
  (* A non-commutative combine (list concat) pins the left-to-right
     index order. *)
  with_pools (fun j pool ->
      let arr = Array.init 100 Fun.id in
      Alcotest.(check (list int))
        (Printf.sprintf "index order jobs=%d" j)
        (Array.to_list arr)
        (Pool.map_reduce ~pool ~map:(fun i -> [ i ]) ~combine:( @ ) ~init:[]
           arr))

let test_exception_propagates () =
  with_pools (fun j pool ->
      Alcotest.check_raises
        (Printf.sprintf "exception jobs=%d" j)
        (Failure "boom")
        (fun () ->
          ignore
            (Pool.map_array ~pool
               (fun x -> if x = 37 then failwith "boom" else x)
               (Array.init 500 Fun.id))));
  (* The pool survives a failed operation. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      (try
         ignore
           (Pool.map_array ~pool (fun _ -> failwith "boom") (Array.init 50 Fun.id))
       with Failure _ -> ());
      Alcotest.(check (array int))
        "usable after failure"
        (Array.init 50 succ)
        (Pool.map_array ~pool succ (Array.init 50 Fun.id)))

let test_no_chunk_abandonment () =
  (* Regression: a failing chunk must not abandon the chunks still
     queued — at most the failing chunk's own tail is lost, every other
     chunk runs to completion.  The counter is atomic because workers
     bump it from several domains. *)
  List.iter
    (fun jobs ->
      let processed = Atomic.make 0 in
      let n = 500 in
      let chunk = max 1 ((n + (4 * jobs) - 1) / (4 * jobs)) in
      (try
         Pool.with_pool ~jobs (fun pool ->
             ignore
               (Pool.map_array ~pool
                  (fun x ->
                    if x = 100 then failwith "boom"
                    else begin
                      Atomic.incr processed;
                      x
                    end)
                  (Array.init n Fun.id)))
       with Failure _ -> ());
      let got = Atomic.get processed in
      Alcotest.(check bool)
        (Printf.sprintf "only the failing chunk's tail lost jobs=%d (got %d)"
           jobs got)
        true
        (got >= n - chunk && got < n))
    [ 2; 8 ]

let test_map_result_isolates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let n = 200 in
          let results =
            Pool.map_result ~pool
              (fun x -> if x mod 50 = 17 then failwith "boom" else x * 2)
              (Array.init n Fun.id)
          in
          Array.iteri
            (fun i r ->
              match r with
              | Ok y ->
                  Alcotest.(check int)
                    (Printf.sprintf "slot %d jobs=%d" i jobs)
                    (i * 2) y
              | Error f ->
                  Alcotest.(check bool)
                    (Printf.sprintf "failure only where raised jobs=%d" jobs)
                    true
                    (i mod 50 = 17 && f.Pool.exn = Failure "boom"))
            results;
          Alcotest.(check int)
            (Printf.sprintf "failure count jobs=%d" jobs)
            4
            (Array.fold_left
               (fun acc r -> match r with Error _ -> acc + 1 | Ok _ -> acc)
               0 results)))
    [ 1; 2; 8 ]

let test_map_result_injected_fault () =
  (* A fault injected at the per-item probe lands in exactly the keyed
     slot, whatever the worker count. *)
  let module Fault = Argus_rt.Fault in
  List.iter
    (fun jobs ->
      let spec =
        { Fault.probe = "pool.task"; key = Some "17"; rate = 1.0; seed = 0 }
      in
      Fault.with_spec spec (fun () ->
          Pool.with_pool ~jobs (fun pool ->
              let results = Pool.map_result ~pool succ (Array.init 64 Fun.id) in
              Array.iteri
                (fun i r ->
                  match (i, r) with
                  | 17, Error { Pool.exn = Fault.Injected "pool.task"; _ } -> ()
                  | 17, _ ->
                      Alcotest.failf "slot 17 not faulted (jobs=%d)" jobs
                  | _, Ok y -> Alcotest.(check int) "value" (i + 1) y
                  | _, Error _ ->
                      Alcotest.failf "stray failure at %d (jobs=%d)" i jobs)
                results)))
    [ 1; 2; 8 ];
  (* rate 0: no slot fails; rate 1 unkeyed: every slot fails. *)
  let all rate =
    { Fault.probe = "pool.task"; key = None; rate; seed = 9 }
  in
  Fault.with_spec (all 0.0) (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          Array.iter
            (function
              | Ok _ -> ()
              | Error _ -> Alcotest.fail "rate 0 must never fire")
            (Pool.map_result ~pool succ (Array.init 64 Fun.id))));
  Fault.with_spec (all 1.0) (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          Array.iter
            (function
              | Error _ -> ()
              | Ok _ -> Alcotest.fail "rate 1 must always fire")
            (Pool.map_result ~pool succ (Array.init 64 Fun.id))))

let test_pool_chunk_fault_isolated () =
  (* A fault at the chunk hand-out probe loses (at most) that chunk;
     map_result still returns, in order, with other items Ok. *)
  let module Fault = Argus_rt.Fault in
  List.iter
    (fun jobs ->
      let spec =
        { Fault.probe = "pool.chunk"; key = Some "0"; rate = 1.0; seed = 3 }
      in
      Fault.with_spec spec (fun () ->
          Pool.with_pool ~jobs (fun pool ->
              let n = 300 in
              let results = Pool.map_result ~pool succ (Array.init n Fun.id) in
              Alcotest.(check int)
                (Printf.sprintf "length jobs=%d" jobs)
                n (Array.length results);
              let ok = ref 0 and failed = ref 0 in
              Array.iteri
                (fun i r ->
                  match r with
                  | Ok y ->
                      incr ok;
                      Alcotest.(check int) "in order" (i + 1) y
                  | Error _ -> incr failed)
                results;
              Alcotest.(check bool)
                (Printf.sprintf "first chunk lost jobs=%d" jobs)
                true (!failed > 0);
              Alcotest.(check bool)
                (Printf.sprintf "rest survives jobs=%d" jobs)
                true
                (!ok >= n - 64))))
    [ 2; 8 ]

let test_no_pool_is_sequential () =
  let arr = Array.init 100 Fun.id in
  Alcotest.(check (array int))
    "map_array no pool" (Array.map succ arr)
    (Pool.map_array succ arr);
  Alcotest.(check int)
    "map_reduce no pool" 4950
    (Pool.map_reduce ~map:Fun.id ~combine:( + ) ~init:0 arr)

let test_default_jobs_env () =
  (* ARGUS_JOBS is read at pool-default time; we can only test the
     parse here because the environment is process-global. *)
  let j = Pool.default_jobs () in
  Alcotest.(check bool) "at least one job" true (j >= 1)

let test_counters_flow () =
  Argus_obs.Obs.reset ();
  Pool.with_pool ~jobs:2 (fun pool ->
      ignore (Pool.map_array ~pool succ (Array.init 100 Fun.id)));
  let count name =
    match List.assoc_opt name (Argus_obs.Metrics.counters ()) with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check int) "par.tasks counts items" 99 (count "par.tasks");
  Alcotest.(check bool) "par.chunks positive" true (count "par.chunks" > 0)

(* --- Workload equality: every parallelized family must produce the
   same result as its sequential run, for any worker count. --- *)

open Argus_experiments

let with_jobs f =
  List.iter (fun jobs -> Pool.with_pool ~jobs (fun pool -> f ~pool ~jobs)) [ 1; 2; 8 ]

let test_exp_a_equal () =
  let cfg = { Exp_a.default_config with Exp_a.subjects_per_arm = 7 } in
  let seq = Exp_a.run cfg in
  with_jobs (fun ~pool ~jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "exp-a identical at jobs=%d" jobs)
        true
        (Exp_a.run ~pool cfg = seq))

let test_exp_b_equal () =
  let cfg = { Exp_b.default_config with Exp_b.n_subjects = 6 } in
  let seq = Exp_b.run cfg in
  with_jobs (fun ~pool ~jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "exp-b identical at jobs=%d" jobs)
        true
        (Exp_b.run ~pool cfg = seq))

let test_exp_c_equal () =
  let cfg = { Exp_c.default_config with Exp_c.subjects_per_role = 6 } in
  let seq = Exp_c.run cfg in
  with_jobs (fun ~pool ~jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "exp-c identical at jobs=%d" jobs)
        true
        (Exp_c.run ~pool cfg = seq))

let test_exp_d_equal () =
  let cfg = { Exp_d.default_config with Exp_d.trials_per_arm = 9 } in
  let seq = Exp_d.run cfg in
  with_jobs (fun ~pool ~jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "exp-d identical at jobs=%d" jobs)
        true
        (Exp_d.run ~pool cfg = seq))

let test_exp_e_equal () =
  let cfg = { Exp_e.default_config with Exp_e.n_assessors = 5 } in
  let seq = Exp_e.run cfg in
  with_jobs (fun ~pool ~jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "exp-e identical at jobs=%d" jobs)
        true
        (Exp_e.run ~pool cfg = seq))

let test_fallacy_scan_equal () =
  let module Formal = Argus_fallacy.Formal in
  let module Greenwell = Argus_fallacy.Greenwell in
  let args =
    List.map (fun i -> i.Greenwell.argument) Greenwell.corpus
  in
  let seq = Formal.check_many args in
  with_jobs (fun ~pool ~jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "corpus scan identical at jobs=%d" jobs)
        true
        (Formal.check_many ~pool args = seq))

let test_modular_check_equal () =
  let module Node = Argus_gsn.Node in
  let module Structure = Argus_gsn.Structure in
  let module Modular = Argus_gsn.Modular in
  let id = Argus_core.Id.of_string in
  (* Twelve modules; module 3 carries a well-formedness defect (dangling
     solution evidence) and module 5 cites a missing module, so the
     equality below covers diagnostics, not just the happy path. *)
  let mk i =
    let g = Printf.sprintf "N%d_G" i in
    let sn = Printf.sprintf "N%d_Sn" i in
    let ev = Printf.sprintf "N%d_E" i in
    let nodes =
      [
        Node.goal g (Printf.sprintf "module %d claim holds" i);
        Node.solution ~evidence:(if i = 3 then "missing" else ev) sn "results";
      ]
      @
      if i <> 5 then []
      else
        [
          Node.make ~id:(id "Away")
            ~node_type:(Node.Away_goal (id "Nowhere"))
            "cited claim holds";
        ]
    in
    let links =
      [ (Structure.Supported_by, g, sn) ]
      @ if i <> 5 then [] else [ (Structure.Supported_by, g, "Away") ]
    in
    Structure.of_nodes ~links
      ~evidence:
        [
          Argus_core.Evidence.make ~id:(id ev)
            ~kind:Argus_core.Evidence.Analysis "analysis";
        ]
      nodes
  in
  let collection =
    List.fold_left
      (fun acc i ->
        Modular.add_module ~name:(id (Printf.sprintf "N%d" i)) (mk i) acc)
      Modular.empty
      (List.init 12 Fun.id)
  in
  let seq = Modular.check collection in
  Alcotest.(check bool) "collection has diagnostics" true (seq <> []);
  with_jobs (fun ~pool ~jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "modular check identical at jobs=%d" jobs)
        true
        (Modular.check ~pool collection = seq))

let () =
  Alcotest.run "argus-par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
          test_map_reduce_property ();
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_order;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "no chunk abandonment" `Quick
            test_no_chunk_abandonment;
          Alcotest.test_case "map_result isolates" `Quick
            test_map_result_isolates;
          Alcotest.test_case "map_result injected fault" `Quick
            test_map_result_injected_fault;
          Alcotest.test_case "chunk fault isolated" `Quick
            test_pool_chunk_fault_isolated;
          Alcotest.test_case "no pool" `Quick test_no_pool_is_sequential;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_env;
          Alcotest.test_case "counters" `Quick test_counters_flow;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "exp-a parallel = sequential" `Quick
            test_exp_a_equal;
          Alcotest.test_case "exp-b parallel = sequential" `Quick
            test_exp_b_equal;
          Alcotest.test_case "exp-c parallel = sequential" `Quick
            test_exp_c_equal;
          Alcotest.test_case "exp-d parallel = sequential" `Quick
            test_exp_d_equal;
          Alcotest.test_case "exp-e parallel = sequential" `Quick
            test_exp_e_equal;
          Alcotest.test_case "fallacy scan parallel = sequential" `Quick
            test_fallacy_scan_equal;
          Alcotest.test_case "modular check parallel = sequential" `Quick
            test_modular_check_equal;
        ] );
    ]
