(* Regression gate over two bench runs.

   Usage: compare.exe BASELINE.json CURRENT.json [--threshold PCT]
                      [--require-improved KERNEL]...
                      [--require-speedup SLOW:FAST:RATIO]...
          compare.exe --summary RESULTS.json

   [--require-improved KERNEL] (repeatable) inverts the gate for that
   kernel: the run fails unless KERNEL is present in both files and
   strictly faster than baseline.  This pins a PR's headline
   optimisation — a later change that quietly gives the win back fails
   CI even though it would pass the regression threshold.

   [--require-speedup SLOW:FAST:RATIO] (repeatable) gates a ratio
   WITHIN the current run: the run fails unless both kernels are
   present in CURRENT.json and SLOW is at least RATIO times slower
   than FAST.  Where --require-improved pins a win against history,
   this pins a structural invariant of one run — e.g. that an
   incremental store edit stays two orders of magnitude under the full
   re-check it replaces — so it holds even when the baseline predates
   the kernels or the host changes speed.

   Reads the "timings_ns_per_run" table of each argus-bench/1 results
   file, prints a per-kernel delta table, and exits non-zero when any
   kernel present in both runs is slower than baseline * (1 + PCT/100).
   Default threshold: 25%.  Kernels present in only one file are
   reported but never fail the gate (benchmarks come and go across
   PRs); I/O or parse problems exit with status 2.

   Kernels whose name contains "svc-", "par-", "store-wal" or
   "store-recover" are advisory: the first time a request round-trip
   over a real Unix socket, the second fan work across OCaml domains,
   and the store durability pair append to and replay real files — all
   dominated by scheduling or filesystem latency rather than CPU work,
   far too wall-clock-bound to gate on (on shared hardware the par-
   scaling kernels swing ±30% run to run, and a WAL append's cost is
   mostly the page cache's mood).  Their deltas are printed (and the
   baseline records them for trajectory tracking) but they never fail
   the gate.

   The service round-trip latency quantiles recorded by the bench's
   [bench.svc-*] histograms are printed as a second advisory section,
   including the traced-vs-untraced overhead of arming request-scoped
   telemetry; [--summary] prints just that section for one results
   file (the CI job log echo). *)

module Json = Argus_core.Json

let fail fmt =
  Format.kasprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let read_timings path =
  let text =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> fail "%s" msg
  in
  match Json.of_string text with
  | Error msg -> fail "%s: %s" path msg
  | Ok json -> (
      match Json.member "timings_ns_per_run" json with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) ->
              match v with Json.Num ns -> Some (k, ns) | _ -> None)
            kvs
      | _ -> fail "%s: no timings_ns_per_run object" path)

(* The [bench.svc-*] histograms of a results file: client-observed
   round-trip milliseconds per service kernel. *)
let read_service_histograms path =
  let text =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> fail "%s" msg
  in
  match Json.of_string text with
  | Error msg -> fail "%s: %s" path msg
  | Ok json -> (
      match
        Option.bind
          (Json.member "metrics" json)
          (Json.member "histograms")
      with
      | Some (Json.Obj kvs) ->
          List.filter
            (fun (name, _) -> String.starts_with ~prefix:"bench.svc-" name)
            kvs
      | _ -> [])

let hfield stats k =
  match Json.member k stats with Some (Json.Num n) -> Some n | _ -> None

let print_service_quantiles path =
  match read_service_histograms path with
  | [] -> ()
  | hs ->
      Format.printf "@.service round-trip latency (ms, client-observed):@.";
      Format.printf "%-34s %8s %9s %9s %9s %9s@." "kernel" "count" "p50"
        "p90" "p99" "max";
      List.iter
        (fun (name, stats) ->
          let f k = Option.value (hfield stats k) ~default:0. in
          Format.printf "%-34s %8.0f %9.3f %9.3f %9.3f %9.3f@." name
            (f "count") (f "p50") (f "p90") (f "p99") (f "max"))
        hs;
      (match
         ( List.assoc_opt "bench.svc-roundtrip" hs,
           List.assoc_opt "bench.svc-roundtrip-traced" hs )
       with
      | Some plain, Some traced -> (
          match (hfield plain "mean", hfield traced "mean") with
          | Some p, Some t when p > 0. ->
              let pct = (t -. p) /. p *. 100. in
              Format.printf
                "opt-in wire tracing cost: %+.1f%% mean round-trip (full \
                 span capture + tree on the wire)@."
                pct
          | _ -> ())
      | _ -> ())

(* The ISSUE acceptance target for always-on telemetry: the plain
   [svc-roundtrip] kernel — which runs with histograms, flight
   recorder and trace_id minting armed — must not be more than 10%
   slower than the committed baseline.  Advisory like all svc-*
   numbers. *)
let print_armed_overhead baseline current =
  let find timings =
    List.find_opt
      (fun (name, _) -> String.ends_with ~suffix:"svc-roundtrip" name)
      timings
  in
  match (find baseline, find current) with
  | Some (_, base), Some (_, cur) when base > 0. ->
      Format.printf
        "armed telemetry on svc-roundtrip: %+.1f%% vs baseline (advisory \
         target < 10%%)@."
        ((cur -. base) /. base *. 100.)
  | _ -> ()

let () =
  let rec parse paths threshold summary required speedups = function
    | [] -> (List.rev paths, threshold, summary, List.rev required,
             List.rev speedups)
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t -> parse paths t summary required speedups rest
        | None -> fail "--threshold expects a number, got %S" v)
    | "--summary" :: rest -> parse paths threshold true required speedups rest
    | "--require-improved" :: name :: rest ->
        parse paths threshold summary (name :: required) speedups rest
    | "--require-speedup" :: spec :: rest -> (
        match String.split_on_char ':' spec with
        | [ slow; fast; ratio ] -> (
            match float_of_string_opt ratio with
            | Some r when r > 0. ->
                parse paths threshold summary required
                  ((slow, fast, r) :: speedups)
                  rest
            | _ -> fail "--require-speedup: bad ratio in %S" spec)
        | _ -> fail "--require-speedup expects SLOW:FAST:RATIO, got %S" spec)
    | a :: rest -> parse (a :: paths) threshold summary required speedups rest
  in
  let paths, threshold, summary, required, speedups =
    parse [] 25.0 false [] [] (List.tl (Array.to_list Sys.argv))
  in
  if summary then begin
    match paths with
    | [ path ] ->
        print_service_quantiles path;
        exit 0
    | _ -> fail "usage: compare.exe --summary RESULTS.json"
  end;
  match paths with
  | [ baseline_path; current_path ] ->
      let baseline = read_timings baseline_path
      and current = read_timings current_path in
      Format.printf "%-34s %14s %14s %9s@." "kernel" "baseline ns"
        "current ns" "delta";
      let regressions = ref [] in
      List.iter
        (fun (name, cur) ->
          match List.assoc_opt name baseline with
          | None -> Format.printf "%-34s %14s %14.0f %9s@." name "-" cur "new"
          | Some base ->
              let advisory =
                (* e.g. "argus/svc-roundtrip", "argus/par-exp-b" *)
                let contains sub =
                  let n = String.length name and m = String.length sub in
                  let rec at i =
                    i + m <= n && (String.sub name i m = sub || at (i + 1))
                  in
                  at 0
                in
                contains "svc-" || contains "par-"
                || contains "store-wal" || contains "store-recover"
              in
              let pct = (cur -. base) /. base *. 100. in
              let flag =
                if pct > threshold && advisory then "  (advisory)"
                else if pct > threshold then begin
                  regressions := (name, pct) :: !regressions;
                  "  << REGRESSED"
                end
                else ""
              in
              Format.printf "%-34s %14.0f %14.0f %+8.1f%%%s@." name base cur
                pct flag)
        current;
      List.iter
        (fun (name, base) ->
          if not (List.mem_assoc name current) then
            Format.printf "%-34s %14.0f %14s %9s@." name base "-" "gone")
        baseline;
      print_service_quantiles current_path;
      print_armed_overhead baseline current;
      let unimproved =
        List.filter_map
          (fun name ->
            match
              (List.assoc_opt name baseline, List.assoc_opt name current)
            with
            | Some base, Some cur when cur < base ->
                Format.printf
                  "required improvement held: %s (%.0f -> %.0f ns, %.1fx)@."
                  name base cur (base /. cur);
                None
            | Some base, Some cur ->
                Some
                  (Format.asprintf "%s did not improve (%.0f -> %.0f ns)" name
                     base cur)
            | _ -> Some (name ^ " missing from baseline or current run"))
          required
      in
      let unheld_speedups =
        List.filter_map
          (fun (slow, fast, ratio) ->
            match
              (List.assoc_opt slow current, List.assoc_opt fast current)
            with
            | Some s, Some f when f > 0. ->
                let got = s /. f in
                if got >= ratio then begin
                  Format.printf
                    "required speedup held: %s runs %.0fx under %s (need \
                     %.0fx)@."
                    fast got slow ratio;
                  None
                end
                else
                  Some
                    (Format.asprintf
                       "%s is only %.1fx faster than %s (need %.0fx)" fast got
                       slow ratio)
            | _ ->
                Some
                  (Format.asprintf "%s or %s missing from current run" slow
                     fast))
          speedups
      in
      let failed = ref false in
      (match List.rev !regressions with
      | [] ->
          Format.printf "@.no kernel regressed more than %g%%@." threshold
      | rs ->
          Format.printf "@.%d kernel(s) regressed more than %g%%:@."
            (List.length rs) threshold;
          List.iter
            (fun (name, pct) -> Format.printf "  %s (+%.1f%%)@." name pct)
            rs;
          failed := true);
      (match unimproved with
      | [] -> ()
      | msgs ->
          Format.printf "@.%d required improvement(s) not held:@."
            (List.length msgs);
          List.iter (fun m -> Format.printf "  %s@." m) msgs;
          failed := true);
      (match unheld_speedups with
      | [] -> ()
      | msgs ->
          Format.printf "@.%d required speedup(s) not held:@."
            (List.length msgs);
          List.iter (fun m -> Format.printf "  %s@." m) msgs;
          failed := true);
      if !failed then exit 1
  | _ ->
      fail
        "usage: compare.exe BASELINE.json CURRENT.json [--threshold PCT] \
         [--require-improved KERNEL]... [--require-speedup SLOW:FAST:RATIO]..."
