(* Regression gate over two bench runs.

   Usage: compare.exe BASELINE.json CURRENT.json [--threshold PCT]

   Reads the "timings_ns_per_run" table of each argus-bench/1 results
   file, prints a per-kernel delta table, and exits non-zero when any
   kernel present in both runs is slower than baseline * (1 + PCT/100).
   Default threshold: 25%.  Kernels present in only one file are
   reported but never fail the gate (benchmarks come and go across
   PRs); I/O or parse problems exit with status 2.

   Kernels whose name contains "svc-" are advisory: they time a
   request round-trip over a real Unix socket, so they measure
   cross-domain scheduling latency, not CPU work — far too
   wall-clock-bound for the smoke quota to gate on.  Their deltas are
   printed (and the baseline records them for trajectory tracking) but
   they never fail the gate. *)

module Json = Argus_core.Json

let fail fmt =
  Format.kasprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let read_timings path =
  let text =
    match In_channel.with_open_text path In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> fail "%s" msg
  in
  match Json.of_string text with
  | Error msg -> fail "%s: %s" path msg
  | Ok json -> (
      match Json.member "timings_ns_per_run" json with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) ->
              match v with Json.Num ns -> Some (k, ns) | _ -> None)
            kvs
      | _ -> fail "%s: no timings_ns_per_run object" path)

let () =
  let rec parse paths threshold = function
    | [] -> (List.rev paths, threshold)
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t -> parse paths t rest
        | None -> fail "--threshold expects a number, got %S" v)
    | a :: rest -> parse (a :: paths) threshold rest
  in
  let paths, threshold =
    parse [] 25.0 (List.tl (Array.to_list Sys.argv))
  in
  match paths with
  | [ baseline_path; current_path ] ->
      let baseline = read_timings baseline_path
      and current = read_timings current_path in
      Format.printf "%-34s %14s %14s %9s@." "kernel" "baseline ns"
        "current ns" "delta";
      let regressions = ref [] in
      List.iter
        (fun (name, cur) ->
          match List.assoc_opt name baseline with
          | None -> Format.printf "%-34s %14s %14.0f %9s@." name "-" cur "new"
          | Some base ->
              let advisory =
                (* e.g. "argus/svc-roundtrip" *)
                let sub = "svc-" in
                let n = String.length name and m = String.length sub in
                let rec at i =
                  i + m <= n && (String.sub name i m = sub || at (i + 1))
                in
                at 0
              in
              let pct = (cur -. base) /. base *. 100. in
              let flag =
                if pct > threshold && advisory then "  (advisory)"
                else if pct > threshold then begin
                  regressions := (name, pct) :: !regressions;
                  "  << REGRESSED"
                end
                else ""
              in
              Format.printf "%-34s %14.0f %14.0f %+8.1f%%%s@." name base cur
                pct flag)
        current;
      List.iter
        (fun (name, base) ->
          if not (List.mem_assoc name current) then
            Format.printf "%-34s %14.0f %14s %9s@." name base "-" "gone")
        baseline;
      (match List.rev !regressions with
      | [] ->
          Format.printf "@.no kernel regressed more than %g%%@." threshold
      | rs ->
          Format.printf "@.%d kernel(s) regressed more than %g%%:@."
            (List.length rs) threshold;
          List.iter
            (fun (name, pct) -> Format.printf "  %s (+%.1f%%)@." name pct)
            rs;
          exit 1)
  | _ -> fail "usage: compare.exe BASELINE.json CURRENT.json [--threshold PCT]"
