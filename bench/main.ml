(* The reproduction harness: regenerates every table and figure of the
   paper (printing computed vs reported), runs the five Section VI
   experiment simulations, and times the machinery with Bechamel (one
   Test.make per reproduced artefact plus the core kernels).

   Run with: dune exec bench/main.exe

   Flags: [--smoke] skips the reproduction sections and runs a short
   Bechamel quota (for the @bench-smoke regression gate, see
   bench/compare.ml); [-o FILE] writes the results JSON to FILE instead
   of bench/results.json. *)

module Survey = Argus_survey.Selection
module Queries = Argus_survey.Queries
module Informal = Argus_fallacy.Informal
module Formal = Argus_fallacy.Formal
module Greenwell = Argus_fallacy.Greenwell
module Engine = Argus_prolog.Engine
module Compile = Argus_prolog.Compile
module Exec = Argus_prolog.Exec
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused
module Term = Argus_logic.Term
module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded
module Sat = Argus_logic.Sat
module Syllogism = Argus_logic.Syllogism
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Pattern = Argus_patterns.Pattern
module Proofgen = Argus_proofgen.Proofgen
module Modular = Argus_gsn.Modular
module Pool = Argus_par.Pool
module Store = Argus_store.Store
module Wal = Argus_store.Wal
module Recover = Argus_store.Recover
open Argus_experiments

let section title =
  Format.printf "@.==== %s ====@.@." title

(* --- Table I --- *)

let table1 () =
  section "Table I: papers selected in the first selection phase";
  let t = Survey.table1 Survey.corpus in
  Format.printf "%a@." Survey.pp_table1 t;
  Format.printf "reported by the paper: IEEE 12/13, ACM 17/7, Springer 24/2, \
                 Scholar 8/1; 72 unique (54 safety, 23 security)@.";
  Format.printf "phase two yield: %d (paper: 20)@."
    (Survey.selected_after_phase2 Survey.corpus)

(* --- Survey derived counts --- *)

let survey_counts () =
  section "Survey counts (Sections IV-VI)";
  Format.printf "%-60s %9s %9s@." "count" "computed" "reported";
  List.iter
    (fun (what, computed, reported) ->
      Format.printf "%-60s %9d %9d%s@." what computed reported
        (if computed = reported then "" else "   << MISMATCH"))
    (Queries.report ())

(* --- Figure 1 --- *)

let figure1 () =
  section "Figure 1: the Desert Bank argument";
  let goal = Result.get_ok (Term.of_string "adjacent(desert_bank, river)") in
  (match Engine.prove Informal.desert_bank goal with
  | Some d ->
      Format.printf "formally derivable (as the paper shows):@.%a"
        Engine.pp_derivation d
  | None -> Format.printf "NOT derivable — mismatch with the paper!@.");
  Format.printf "equivocation candidates flagged for human review: %s@."
    (String.concat ", "
       (Informal.equivocation_candidates Informal.desert_bank))

(* --- Greenwell fallacy counts (Section V.B) --- *)

let greenwell () =
  section "Greenwell et al. fallacy instances (Section V.B)";
  Format.printf "%-36s %9s %9s %22s@." "kind" "corpus" "reported"
    "formal detector hits";
  List.iter
    (fun (kind, reported) ->
      let instances =
        List.filter (fun i -> i.Greenwell.kind = kind) Greenwell.corpus
      in
      let hits =
        List.length
          (List.filter
             (fun i -> Formal.check_propositional i.Greenwell.argument <> [])
             instances)
      in
      Format.printf "%-36s %9d %9d %22d@."
        (Greenwell.kind_to_string kind)
        (List.length instances) reported hits)
    Greenwell.reported_counts;
  Format.printf
    "total: %d instances; the formal checker flags none of them — and the \
     eight Damer formal fallacies are all detected on positive controls: "
    (List.length Greenwell.corpus);
  (* Positive controls: each of the eight formal fallacies, detected. *)
  let a = Prop.Var "a" and b = Prop.Var "b" in
  let detected =
    [
      List.mem Formal.Begging_the_question
        (Formal.check_propositional
           { Formal.premises = [ a; b ]; conclusion = a });
      List.mem Formal.Incompatible_premises
        (Formal.check_propositional
           { Formal.premises = [ a; Prop.Not a ]; conclusion = b });
      List.mem Formal.Premise_conclusion_contradiction
        (Formal.check_propositional
           { Formal.premises = [ a ]; conclusion = Prop.Not a });
      List.mem Formal.Denying_the_antecedent
        (Formal.check_propositional
           {
             Formal.premises = [ Prop.Implies (a, b); Prop.Not a ];
             conclusion = Prop.Not b;
           });
      List.mem Formal.Affirming_the_consequent
        (Formal.check_propositional
           { Formal.premises = [ Prop.Implies (a, b); b ]; conclusion = a });
      (let from = Syllogism.prop Syllogism.A "s" "p" in
       List.mem Formal.False_conversion
         (Formal.check_conversion
            { Formal.from; to_ = Syllogism.converse from }));
      List.mem Formal.Undistributed_middle
        (Formal.check_syllogism
           Syllogism.
             {
               major = prop A "dog" "animal";
               minor = prop A "cat" "animal";
               conclusion = prop A "cat" "dog";
             });
      List.mem Formal.Illicit_distribution
        (Formal.check_syllogism
           Syllogism.
             {
               major = prop A "m" "p";
               minor = prop E "s" "m";
               conclusion = prop E "s" "p";
             });
    ]
  in
  Format.printf "%d/8@."
    (List.length (List.filter Fun.id detected))

(* --- Experiments --- *)

let experiments () =
  section "Experiment VI.A (simulated)";
  Format.printf "%a" Exp_a.pp (Exp_a.run Exp_a.default_config);
  section "Experiment VI.B (simulated)";
  Format.printf "%a" Exp_b.pp (Exp_b.run Exp_b.default_config);
  section "Experiment VI.C (simulated)";
  Format.printf "%a" Exp_c.pp (Exp_c.run Exp_c.default_config);
  section "Experiment VI.D (simulated, real checker in the tool arm)";
  Format.printf "%a" Exp_d.pp (Exp_d.run Exp_d.default_config);
  section "Experiment VI.E (simulated, real procedures)";
  Format.printf "%a" Exp_e.pp (Exp_e.run Exp_e.default_config)

(* --- Proof-to-argument size (the Basir 'too many details' point) --- *)

let proofgen_sizes () =
  section "Proof-to-argument abstraction (Basir et al.'s complaint)";
  let p = Prop.of_string_exn in
  (* A proof with single-citation bookkeeping steps (Split, Reiterate) —
     exactly the detail the generated argument drags along. *)
  let proof =
    Natded.
      [
        { formula = p "a & b"; rule = Premise };
        { formula = p "a"; rule = And_elim_left 1 };
        { formula = p "a"; rule = Reiterate 2 };
        { formula = p "a -> c"; rule = Premise };
        { formula = p "c"; rule = Imp_elim (4, 3) };
        { formula = p "c -> safe"; rule = Premise };
        { formula = p "safe"; rule = Imp_elim (6, 5) };
      ]
  in
  match Natded.check proof with
  | Error _ -> Format.printf "unexpected: proof rejected@."
  | Ok checked ->
      let g = Proofgen.generate checked in
      let a = Proofgen.abstract g in
      Format.printf
        "generated argument: %d nodes; after abstraction: %d nodes \
         (well-formed before and after: %b/%b)@."
        (Proofgen.node_count g) (Proofgen.node_count a)
        (Wellformed.is_well_formed g)
        (Wellformed.is_well_formed a)

(* --- Bechamel micro-benchmarks --- *)

let term_exn s = Result.get_ok (Term.of_string s)

(* A 12-argument framework with a mix of chains and cycles. *)
let bench_af =
  Argus_dialectic.Af.of_lists
    ~arguments:(List.init 12 (fun i -> Printf.sprintf "a%d" i))
    ~attacks:
      (List.init 11 (fun i ->
           (Printf.sprintf "a%d" i, Printf.sprintf "a%d" (i + 1)))
      @ [ ("a11", "a4"); ("a7", "a2") ])

let bench_ec =
  Argus_eventcalc.Eventcalc.make
    ~initially:[ term_exn "friends(u, s)" ]
    ~axioms:
      [
        {
          Argus_eventcalc.Eventcalc.event = term_exn "tap(u, s)";
          conditions = [ term_exn "friends(u, s)" ];
          initiates = [ term_exn "visible(u, s)" ];
          terminates = [];
        };
        {
          Argus_eventcalc.Eventcalc.event = term_exn "unfriend(u, s)";
          conditions = [];
          initiates = [];
          terminates = [ term_exn "friends(u, s)"; term_exn "visible(u, s)" ];
        };
      ]
    (List.init 10 (fun i ->
         ( i,
           if i mod 4 = 3 then term_exn "unfriend(u, s)"
           else term_exn "tap(u, s)" )))

let bench_kaos =
  let ltl = Argus_ltl.Ltl.of_string_exn in
  Argus_kaos.Kaos.(
    empty
    |> add (goal ~formal:(ltl "G (close -> F clear)") "G_top" "avoid")
    |> add ~parent:"G_top"
         (goal ~formal:(ltl "G (close -> tracked)") "G_a" "track")
    |> add ~parent:"G_top"
         (goal ~formal:(ltl "G (tracked -> F clear)") "G_b" "resolve")
    |> add ~parent:"G_a" (requirement ~agent:"sw" "R_a" "sense")
    |> add ~parent:"G_b" (requirement ~agent:"pilot" "R_b" "manoeuvre"))

let ablation_formula =
  Prop.of_string_exn
    "((a | b) & (c | d) & (e | f) & (g | h)) -> ((a & c) | (b & d) | (e & g) | (f & h))"

(* A deep chain case for the well-formedness and hicase ablations. *)
let deep_case =
  let nodes =
    List.concat_map
      (fun i ->
        [
          Argus_gsn.Node.goal (Printf.sprintf "G%d" i)
            (Printf.sprintf "level %d claim is safe" i);
          Argus_gsn.Node.strategy (Printf.sprintf "S%d" i) "decompose";
        ])
      (List.init 20 Fun.id)
    @ [ Argus_gsn.Node.solution ~evidence:"E" "Sn" "evidence" ]
  in
  let links =
    List.concat_map
      (fun i ->
        [
          (Structure.Supported_by, Printf.sprintf "G%d" i, Printf.sprintf "S%d" i);
          ( Structure.Supported_by,
            Printf.sprintf "S%d" i,
            if i = 19 then "Sn" else Printf.sprintf "G%d" (i + 1) );
        ])
      (List.init 20 Fun.id)
  in
  Structure.of_nodes ~links
    ~evidence:
      [
        Argus_core.Evidence.make
          ~id:(Argus_core.Id.of_string "E")
          ~kind:Argus_core.Evidence.Analysis "analysis";
      ]
    nodes

(* A 16-module collection: each module is a small self-contained case,
   chained by away goals (module i cites module i+1's root), so both
   the per-module well-formedness fan-out and the cross-module rules
   have work to do. *)
let bench_modular =
  let module Node = Argus_gsn.Node in
  let id = Argus_core.Id.of_string in
  let n_modules = 16 in
  let mk i =
    let g = Printf.sprintf "M%d_G" i in
    let s = Printf.sprintf "M%d_S" i in
    let sn = Printf.sprintf "M%d_Sn" i in
    let ev = Printf.sprintf "M%d_E" i in
    let nodes =
      [
        Node.goal g (Printf.sprintf "module %d obligations are met" i);
        Node.strategy s "argue over obligations";
        Node.solution ~evidence:ev sn "analysis results";
      ]
      @
      if i = n_modules - 1 then []
      else
        let away = Printf.sprintf "M%d_G" (i + 1) in
        [
          Node.make ~id:(id away)
            ~node_type:(Node.Away_goal (id (Printf.sprintf "M%d" (i + 1))))
            "cited module's obligations are met";
        ]
    in
    let links =
      [
        (Structure.Supported_by, g, s);
        (Structure.Supported_by, s, sn);
      ]
      @
      if i = n_modules - 1 then []
      else
        [ (Structure.Supported_by, s, Printf.sprintf "M%d_G" (i + 1)) ]
    in
    Structure.of_nodes ~links
      ~evidence:
        [
          Argus_core.Evidence.make ~id:(id ev)
            ~kind:Argus_core.Evidence.Analysis "analysis";
        ]
      nodes
  in
  List.fold_left
    (fun acc i ->
      Modular.add_module ~name:(id (Printf.sprintf "M%d" i)) (mk i) acc)
    Modular.empty
    (List.init n_modules Fun.id)

(* A bushy-and-shallow case for the incremental-store kernels: one
   root goal fanned over [strategies] strategies of [leaves] undeveloped
   leaf goals each.  Shallow keeps the Merkle ancestor cone of any leaf
   at three nodes; bushy keeps the node count high.  Sibling leaf texts
   share most of their content words, so the equivocation pair scan
   runs but stays quiet — the store's dirty-cone cost, not a diagnostic
   flood, is what these kernels time. *)
let bench_store_case ~strategies ~leaves =
  let module Node = Argus_gsn.Node in
  let id = Argus_core.Id.of_string in
  let root = Node.goal "G0" "the system is acceptably safe in every mode" in
  let nodes =
    root
    :: List.concat_map
         (fun i ->
           Node.strategy
             (Printf.sprintf "S%d" i)
             (Printf.sprintf "argue over the modes of operating region %d" i)
           :: List.init leaves (fun j ->
                  Node.make
                    ~id:(id (Printf.sprintf "G%d_%d" i j))
                    ~node_type:Node.Goal ~status:Node.Undeveloped
                    (Printf.sprintf
                       "operating region %d mode %d remains safe during \
                        sustained operation"
                       i j)))
         (List.init strategies Fun.id)
  in
  let links =
    List.concat_map
      (fun i ->
        (Structure.Supported_by, "G0", Printf.sprintf "S%d" i)
        :: List.init leaves (fun j ->
               ( Structure.Supported_by,
                 Printf.sprintf "S%d" i,
                 Printf.sprintf "G%d_%d" i j )))
      (List.init strategies Fun.id)
  in
  Structure.of_nodes ~links nodes

(* ~110k nodes for the headline edit-one-node kernels, ~11k for the
   churn kernel that rebuilds shape against a warm verdict memo.  Built
   inside each kernel's Bechamel resource, never at top level: a live
   100k-node heap makes every minor collection scan it, which was
   measured to tax the unrelated sub-microsecond kernels several-fold.
   Scoping the case to the kernel keeps the other timings honest. *)
let store_case_100k () = bench_store_case ~strategies:10_000 ~leaves:10
let store_case_10k () = bench_store_case ~strategies:1_000 ~leaves:10

let store_edit_texts =
  [|
    "operating region 42 mode 7 remains safe during sustained operation";
    "operating region 42 mode 7 remains safe after the controller rework";
  |]

(* Scratch directories for the durability kernels: each allocation
   gets its own, deleted when the kernel's resource is freed. *)
let bench_tmp_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "argus-bench-%s-%d-%d" name (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let rec bench_rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> bench_rm_rf (Filename.concat path e))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* A par-* kernel owns its pool only for the duration of its own
   measurement (Bechamel's [uniq] resource): parked worker domains are
   not free — while any live, every minor collection is a multi-domain
   stop-the-world handshake, which benches allocation-heavy sequential
   kernels ~2x slower.  Scoping the pool to the kernel keeps the
   sequential timings honest. *)
let par_kernel ~name ~jobs f =
  let open Bechamel in
  Test.make_with_resource ~name Test.uniq
    ~allocate:(fun () -> Pool.create ~jobs ())
    ~free:Pool.shutdown (Staged.stage f)

(* A svc-* kernel owns a running [argus serve] instance on a loopback
   Unix socket plus one persistent client connection; each run is one
   request/response round-trip through the real wire protocol.  Like
   the par-* pools, the server is scoped to the kernel's own
   measurement so its worker domain does not tax the others. *)
let svc_kernel ~name ~queue_capacity req_line =
  let open Bechamel in
  (* Client-side round-trip latency, observed per run into the
     registry: Bechamel's OLS slope gives the mean, the histogram
     carries the p50/p99 that end up in results.json and the README's
     service numbers. *)
  let h_rtt = Argus_obs.Metrics.Histogram.make ("bench." ^ name) in
  Test.make_with_resource ~name Test.uniq
    ~allocate:(fun () ->
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "argus-bench-%d-%s.sock" (Unix.getpid ()) name)
      in
      let cfg =
        {
          (Argus_svc.Server.default_config ~socket_path:path) with
          Argus_svc.Server.jobs = 1;
          queue_capacity;
        }
      in
      let h = Argus_svc.Server.spawn cfg in
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (h, path, fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd))
    ~free:(fun (h, path, fd, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Argus_svc.Server.stop h);
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (Staged.stage (fun (_, _, _, ic, oc) ->
         let t0 = Unix.gettimeofday () in
         output_string oc req_line;
         flush oc;
         ignore (input_line ic);
         Argus_obs.Metrics.Histogram.observe h_rtt
           ((Unix.gettimeofday () -. t0) *. 1000.)))

let svc_request_line ?(trace = false) () =
  let req =
    Argus_svc.Protocol.request ~id:"bench"
      ~source:{|case "b" { goal G1 "b holds" { undeveloped } }|}
      ~filename:"bench.arg" ~trace Argus_svc.Protocol.Check
  in
  Argus_core.Json.to_string (Argus_svc.Protocol.request_to_json req) ^ "\n"

let svc_check_request_line = svc_request_line ()

(* A combined refutation query in the Argus_kaos style — a conjunction
   of small goal formulas over shared atoms — sized past the labeller's
   memo gate, so [ltl.memo_hits] moves under bench (test/ltl pins the
   gate itself). *)
let bench_ltl_combined =
  let ltl = Argus_ltl.Ltl.of_string_exn in
  ( ltl
      "(G (close -> F clear)) & ((G (close -> tracked)) & ((G (tracked -> F \
       clear)) & !(G (close -> F clear))))",
    Argus_ltl.Ltl.Trace.make
      ~prefix:[ [ "close" ] ]
      ~loop:[ [ "close"; "tracked" ]; [ "clear" ]; [] ] )

let bench_subjects =
  let open Bechamel in
  let goal = term_exn "adjacent(desert_bank, river)" in
  let prop_formula =
    Prop.of_string_exn
      "(a -> b) & (b -> c) & (c -> d) & a -> d | (e <-> ~f) & (g | h)"
  in
  let haley =
    let p = Prop.of_string_exn in
    Natded.
      [
        { formula = p "i -> v"; rule = Premise };
        { formula = p "c -> h"; rule = Premise };
        { formula = p "y -> v & c"; rule = Premise };
        { formula = p "d -> y"; rule = Premise };
        { formula = p "d"; rule = Premise };
        { formula = p "y"; rule = Imp_elim (4, 5) };
        { formula = p "v & c"; rule = Imp_elim (3, 6) };
        { formula = p "v"; rule = And_elim_left 7 };
        { formula = p "c"; rule = And_elim_right 7 };
        { formula = p "h"; rule = Imp_elim (2, 9) };
        { formula = p "d -> h"; rule = Imp_intro (5, 10) };
      ]
  in
  let sample_case =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G1", "S1");
          (Structure.Supported_by, "S1", "G2");
          (Structure.Supported_by, "S1", "G3");
          (Structure.Supported_by, "G2", "Sn1");
          (Structure.Supported_by, "G3", "Sn2");
        ]
      ~evidence:
        [
          Argus_core.Evidence.make
            ~id:(Argus_core.Id.of_string "E1")
            ~kind:Argus_core.Evidence.Analysis "analysis";
        ]
      [
        Argus_gsn.Node.goal "G1" "top claim is safe";
        Argus_gsn.Node.strategy "S1" "argue over hazards";
        Argus_gsn.Node.goal "G2" "hazard one is managed";
        Argus_gsn.Node.goal "G3" "hazard two is managed";
        Argus_gsn.Node.solution ~evidence:"E1" "Sn1" "analysis results";
        Argus_gsn.Node.solution ~evidence:"E1" "Sn2" "analysis results";
      ]
  in
  let hazard_pattern =
    Pattern.make ~name:"bench"
      ~params:
        [
          { Pattern.pname = "system"; ptype = Pattern.Pstring };
          { Pattern.pname = "hazard"; ptype = Pattern.Plist Pattern.Pstring };
        ]
      ~replicate:[ ("G_h", "hazard") ]
      (Structure.of_nodes
         ~links:
           [
             (Structure.Supported_by, "G_top", "G_h");
             (Structure.Supported_by, "G_h", "Sn");
           ]
         ~evidence:
           [
             Argus_core.Evidence.make
               ~id:(Argus_core.Id.of_string "E")
               ~kind:Argus_core.Evidence.Analysis "analysis";
           ]
         [
           Argus_gsn.Node.goal "G_top" "{system} is safe";
           Argus_gsn.Node.goal "G_h" "{hazard} is managed";
           Argus_gsn.Node.solution ~evidence:"E" "Sn" "results";
         ])
  in
  let binding =
    [
      ("system", Pattern.Vstr "S");
      ( "hazard",
        Pattern.Vlist (List.init 8 (fun i -> Pattern.Vstr (Printf.sprintf "h%d" i)))
      );
    ]
  in
  let small_exp_a = { Exp_a.default_config with Exp_a.subjects_per_arm = 5 } in
  let small_exp_d = { Exp_d.default_config with Exp_d.trials_per_arm = 20 } in
  let greenwell_args =
    List.map (fun i -> i.Greenwell.argument) Greenwell.corpus
  in
  (* Compiled kernels (DESIGN.md §13): program and query compiled once,
     case interned once — the amortised steady state a service or a
     corpus sweep runs in.  The *-vs-interpreted / intern-cost kernels
     keep the un-amortised costs visible next to them. *)
  let fig1_cp = Compile.program Informal.desert_bank in
  let fig1_q = Compile.query [ goal ] in
  let sample_ir = Caseir.intern sample_case in
  let deep_ir = Caseir.intern deep_case in
  (* Direct CNF in which [p] and [q] appear with a single polarity, so
     DPLL's pure-literal elimination fires (Tseitin-encoded queries
     structurally never contain pure literals — DESIGN.md section 7). *)
  let pure_cnf =
    Sat.cnf_of_prop
      (Prop.of_string_exn
         "(p | a) & (p | ~a) & (q | a) & (q | ~b) & (b | ~a) & (a | b)")
  in
  [
    Test.make ~name:"table1-pipeline" (Staged.stage (fun () ->
        ignore (Survey.table1 Survey.corpus)));
    Test.make ~name:"survey-counts" (Staged.stage (fun () ->
        ignore (Queries.report ())));
    Test.make ~name:"figure1-resolution" (Staged.stage (fun () ->
        ignore (Exec.provable fig1_cp fig1_q)));
    Test.make ~name:"prolog-compiled-vs-interpreted" (Staged.stage (fun () ->
        ignore (Engine.provable Informal.desert_bank goal)));
    Test.make ~name:"ir-intern-cost" (Staged.stage (fun () ->
        ignore (Caseir.intern deep_case)));
    Test.make ~name:"fused-corpus-check" (Staged.stage (fun () ->
        ignore (Fused.check sample_ir);
        ignore (Fused.check deep_ir)));
    Test.make ~name:"greenwell-corpus-check" (Staged.stage (fun () ->
        List.iter
          (fun i -> ignore (Formal.check_propositional i.Greenwell.argument))
          Greenwell.corpus));
    Test.make ~name:"exp-a-small" (Staged.stage (fun () ->
        ignore (Exp_a.run small_exp_a)));
    Test.make ~name:"exp-b" (Staged.stage (fun () ->
        ignore (Exp_b.run Exp_b.default_config)));
    Test.make ~name:"exp-c" (Staged.stage (fun () ->
        ignore (Exp_c.run Exp_c.default_config)));
    Test.make ~name:"exp-d-small" (Staged.stage (fun () ->
        ignore (Exp_d.run small_exp_d)));
    Test.make ~name:"exp-e" (Staged.stage (fun () ->
        ignore (Exp_e.run Exp_e.default_config)));
    Test.make ~name:"dpll-sat" (Staged.stage (fun () ->
        ignore (Sat.satisfiable prop_formula)));
    Test.make ~name:"natded-check" (Staged.stage (fun () ->
        ignore (Natded.check haley)));
    Test.make ~name:"gsn-wellformed" (Staged.stage (fun () ->
        ignore (Wellformed.check sample_case)));
    Test.make ~name:"pattern-instantiate-8" (Staged.stage (fun () ->
        ignore (Pattern.instantiate hazard_pattern binding)));
    Test.make ~name:"syllogism-all-256" (Staged.stage (fun () ->
        List.iter
          (fun s -> ignore (Syllogism.violations s))
          (Syllogism.all_moods_figures ())));
    (* New-substrate kernels. *)
    Test.make ~name:"af-grounded" (Staged.stage (fun () ->
        ignore (Argus_dialectic.Af.grounded bench_af)));
    Test.make ~name:"eventcalc-denial" (Staged.stage (fun () ->
        ignore
          (Argus_eventcalc.Eventcalc.denial bench_ec
             ~when_not:(term_exn "friends(u, s)")
             (term_exn "visible(u, s)"))));
    Test.make ~name:"kaos-refute-50" (Staged.stage (fun () ->
        ignore
          (Argus_kaos.Kaos.verify_refinement ~traces:50 bench_kaos
             (Argus_core.Id.of_string "G_top"))));
    (* Ablations: design choices DESIGN.md calls out. *)
    Test.make ~name:"ablation-cnf-tseitin" (Staged.stage (fun () ->
        ignore (Sat.solve (Sat.tseitin ablation_formula))));
    Test.make ~name:"ablation-cnf-direct" (Staged.stage (fun () ->
        ignore (Sat.solve (Sat.cnf_of_prop ablation_formula))));
    Test.make ~name:"ablation-wf-with-cycle-check" (Staged.stage (fun () ->
        ignore (Wellformed.check deep_case)));
    Test.make ~name:"ablation-hicase-visible-depth1" (Staged.stage (fun () ->
        ignore
          (Argus_gsn.Hicase.visible
             (Argus_gsn.Hicase.collapse_to_depth 1
                (Argus_gsn.Hicase.of_structure deep_case)))));
    Test.make ~name:"dpll-pure-literal" (Staged.stage (fun () ->
        ignore (Sat.solve pure_cnf)));
    Test.make ~name:"ltl-label-combined" (Staged.stage (fun () ->
        let f, tr = bench_ltl_combined in
        ignore (Argus_ltl.Ltl.holds tr f)));
    Test.make ~name:"modular-wf-16" (Staged.stage (fun () ->
        ignore (Fused.check_modular bench_modular)));
    (* Incremental store (DESIGN.md §14).  The pair to read together:
       [store-full-recheck-100k] is what every edit used to cost —
       re-intern the whole case and run the fused checker — and
       [store-edit-1-of-100k] is what the store makes it cost: patch
       one leaf's text by digest, then fetch a full verdict assembled
       from memoized per-node findings.  compare.exe --require-speedup
       gates the ratio at 50x. *)
    Test.make_with_resource ~name:"store-full-recheck-100k" Test.uniq
      ~allocate:store_case_100k
      ~free:(fun _ -> ())
      (Staged.stage (fun case ->
           ignore (Fused.check ~lints:true (Caseir.intern case))));
    (let flip = ref 0 in
     Test.make_with_resource ~name:"store-edit-1-of-100k" Test.uniq
       ~allocate:(fun () ->
         let st = Store.create () in
         let d = ref (Store.put st (store_case_100k ())) in
         (* Prime the one-off costs a long-lived store has already
            paid — first verdict assembly and the root-confidence memo
            — so the kernel times the steady per-edit state. *)
         ignore (Store.verdict st ~digest:!d);
         (st, d))
       ~free:(fun _ -> ())
       (Staged.stage (fun (st, d) ->
            incr flip;
            let text = store_edit_texts.(!flip land 1) in
            (match
               Store.patch st ~digest:!d
                 [ Store.Set_text (Argus_core.Id.of_string "G42_7", text) ]
             with
            | Ok d' -> d := d'
            | Error e -> failwith (Store.error_message e));
            match Store.verdict st ~digest:!d with
            | Ok v -> ignore v.Store.result
            | Error e -> failwith (Store.error_message e))));
    (* Cold put: intern, digest and verdict 100k nodes into a fresh
       store — the store's worst case, for honest amortisation
       arithmetic next to the edit kernel. *)
    Test.make_with_resource ~name:"store-put-100k" Test.uniq
      ~allocate:store_case_100k
      ~free:(fun _ -> ())
      (Staged.stage (fun case ->
           let st = Store.create () in
           ignore (Store.put st case)));
    (* Shape churn: a mixed batch (text edit plus unlink/relink) forces
       the full-rebuild path, but against a warm arena and verdict
       memo, so it times rebuild-with-reuse rather than from-scratch
       checking. *)
    (let flip = ref 0 in
     Test.make_with_resource ~name:"store-patch-churn" Test.uniq
       ~allocate:(fun () ->
         let st = Store.create () in
         let d = ref (Store.put st (store_case_10k ())) in
         ignore (Store.verdict st ~digest:!d);
         (st, d))
       ~free:(fun _ -> ())
       (Staged.stage (fun (st, d) ->
            incr flip;
            let text = store_edit_texts.(!flip land 1) in
            let id = Argus_core.Id.of_string in
            (match
               Store.patch st ~digest:!d
                 [
                   Store.Set_text (id "G42_7", text);
                   Store.Unlink
                     (Structure.Supported_by, id "S999", id "G999_9");
                   Store.Link (Structure.Supported_by, id "S999", id "G999_9");
                 ]
             with
            | Ok d' -> d := d'
            | Error e -> failwith (Store.error_message e));
            match Store.verdict st ~digest:!d with
            | Ok v -> ignore v.Store.result
            | Error e -> failwith (Store.error_message e))));
    (* Durability kernels (DESIGN.md §15).  [store-wal-append] is the
       write-path tax a durable server adds to every acked patch:
       frame, checksum and append one Patch record, under sync=never
       so the kernel times the code, not the disk (the fsync cost is a
       disk property; the sync policy that pays it is the operator's
       call).  [store-recover-100k] is restart cost: Recover.load of a
       data dir whose WAL holds one ~110k-node put — Marshal decode,
       re-intern, and Merkle digest verification, the same work
       `argus serve --store --data-dir` does before its first accept.
       Both touch the filesystem, so compare.exe treats them as
       advisory (see the store- rule there). *)
    (let seq = ref 0 in
     let edit =
       [
         Store.Set_text
           ( Argus_core.Id.of_string "G42_7",
             "operating region 42 mode 7 remains safe after the rework" );
       ]
     in
     Test.make_with_resource ~name:"store-wal-append" Test.uniq
       ~allocate:(fun () ->
         let dir = bench_tmp_dir "wal" in
         (dir, Wal.openw ~sync:Wal.Never (Recover.wal_path dir)))
       ~free:(fun (dir, wal) ->
         Wal.close wal;
         bench_rm_rf dir)
       (Staged.stage (fun (_, wal) ->
            incr seq;
            Wal.append wal
              {
                Wal.seq = !seq;
                op = Wal.Patch (String.make 32 'a', edit);
                digest = String.make 32 'b';
              })));
    Test.make_with_resource ~name:"store-recover-100k" Test.uniq
      ~allocate:(fun () ->
        let dir = bench_tmp_dir "recover" in
        let case = store_case_100k () in
        let wal = Wal.openw ~sync:Wal.Always (Recover.wal_path dir) in
        Wal.append wal
          {
            Wal.seq = 1;
            op = Wal.Put (Wellformed.Standard, case);
            digest = Store.digest_of case;
          };
        Wal.close wal;
        dir)
      ~free:bench_rm_rf
      (Staged.stage (fun dir ->
           match Recover.load ~dir () with
           | Ok outcome -> ignore outcome.Recover.store
           | Error msg -> failwith msg));
    (* Parallel-runtime kernels (argus.par): same workloads as their
       sequential counterparts above, fanned out over a pool.  Results
       are bit-identical to sequential by the pool's determinism
       contract, so these time only the runtime. *)
    par_kernel ~name:"par-exp-a-small" ~jobs:4 (fun pool ->
        ignore (Exp_a.run ~pool small_exp_a));
    par_kernel ~name:"par-exp-b" ~jobs:4 (fun pool ->
        ignore (Exp_b.run ~pool Exp_b.default_config));
    par_kernel ~name:"par-exp-e" ~jobs:4 (fun pool ->
        ignore (Exp_e.run ~pool Exp_e.default_config));
    par_kernel ~name:"par-greenwell-corpus-check" ~jobs:4 (fun pool ->
        ignore (Formal.check_many ~pool greenwell_args));
    par_kernel ~name:"par-modular-wf-16" ~jobs:4 (fun pool ->
        ignore (Fused.check_modular ~pool bench_modular));
    (* Jobs scaling: the same kernel at 1, 2 and 4 workers.  On a
       single-core host jobs=1 wins and the curve is flat — that is
       the point of recording it. *)
    par_kernel ~name:"par-exp-e-jobs1" ~jobs:1 (fun pool ->
        ignore (Exp_e.run ~pool Exp_e.default_config));
    par_kernel ~name:"par-exp-e-jobs2" ~jobs:2 (fun pool ->
        ignore (Exp_e.run ~pool Exp_e.default_config));
    par_kernel ~name:"par-exp-e-jobs4" ~jobs:4 (fun pool ->
        ignore (Exp_e.run ~pool Exp_e.default_config));
    (* Budget overhead: the same workloads as [figure1-resolution] and
       [dpll-sat] but threaded through a limited budget generous enough
       never to exhaust — what the probe points cost when armed.  The
       compare gate holds these (like everything else) within 25% of
       the recorded baseline; the unbudgeted kernels above pin the
       disarmed cost. *)
    Test.make ~name:"rt-budget-overhead-prolog" (Staged.stage (fun () ->
        let b = Argus_rt.Budget.make ~fuel:max_int () in
        ignore (Engine.provable ~budget:b Informal.desert_bank goal)));
    Test.make ~name:"rt-budget-overhead-dpll" (Staged.stage (fun () ->
        let b = Argus_rt.Budget.make ~fuel:max_int () in
        ignore (Sat.satisfiable ~budget:b prop_formula)));

    (* Service layer (DESIGN.md §11): a full request round-trip through
       the wire protocol, and the overload path — a zero-capacity queue
       answers svc/overloaded from the acceptor without touching a
       worker, so shedding must stay much cheaper than serving. *)
    svc_kernel ~name:"svc-roundtrip" ~queue_capacity:64
      svc_check_request_line;
    svc_kernel ~name:"svc-shed-overload" ~queue_capacity:0
      svc_check_request_line;
    (* The same round-trip with request-scoped tracing armed: the
       telemetry acceptance gate — capture plus span serialisation must
       stay a small fraction of the untraced round-trip (compare.exe
       prints the ratio in its advisory section). *)
    svc_kernel ~name:"svc-roundtrip-traced" ~queue_capacity:64
      (svc_request_line ~trace:true ());
  ]

let run_benchmarks ~quota () =
  section "Bechamel micro-benchmarks (ns per run)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let test = Test.make_grouped ~name:"argus" ~fmt:"%s/%s" bench_subjects in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort compare rows in
  List.filter_map
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] ->
          Format.printf "%-32s %14.0f ns/run@." name ns;
          Some (name, ns)
      | _ ->
          Format.printf "%-32s %14s@." name "n/a";
          None)
    rows

(* Persist the run for trajectory tracking: per-artefact timings plus
   the engine counters the workloads accumulated (the counters run even
   with tracing disabled, so this costs nothing extra). *)
let write_results ?path timings =
  let module Json = Argus_core.Json in
  let json =
    Json.Obj
      [
        ("schema", Json.Str "argus-bench/1");
        ( "timings_ns_per_run",
          Json.Obj (List.map (fun (n, ns) -> (n, Json.Num ns)) timings) );
        ("metrics", Argus_obs.Metrics.to_json ());
      ]
  in
  let path =
    match path with
    | Some p -> p
    | None ->
        if Sys.file_exists "bench" && Sys.is_directory "bench" then
          Filename.concat "bench" "results.json"
        else "results.json"
  in
  match open_out path with
  | oc ->
      output_string oc (Json.to_string ~indent:true json);
      output_char oc '\n';
      close_out oc;
      Format.printf "@.wrote %s@." path
  | exception Sys_error msg ->
      Format.eprintf "@.could not write %s: %s@." path msg

let () =
  let argv = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" argv in
  let rec out_path = function
    | "-o" :: p :: _ -> Some p
    | _ :: rest -> out_path rest
    | [] -> None
  in
  if not smoke then begin
    table1 ();
    survey_counts ();
    figure1 ();
    greenwell ();
    proofgen_sizes ();
    experiments ()
  end;
  (* The sub-microsecond kernels need the longer quota: at 0.25s their
     run-to-run spread on a shared VM exceeds the bench-smoke gate. *)
  let timings = run_benchmarks ~quota:(if smoke then 0.05 else 1.0) () in
  write_results ?path:(out_path argv) timings;
  Format.printf "@.done.@."
