module Json = Argus_core.Json
module Diagnostic = Argus_core.Diagnostic
module Budget = Argus_rt.Budget
module Dsl = Argus_dsl.Dsl
module Wellformed = Argus_gsn.Wellformed
module Modular = Argus_gsn.Modular
module Informal = Argus_fallacy.Informal
module Program = Argus_prolog.Program
module Engine = Argus_prolog.Engine
module Exec = Argus_prolog.Exec
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused
module Lterm = Argus_logic.Term
module Proof_text = Argus_logic.Proof_text
module Natded = Argus_logic.Natded
module Prop = Argus_logic.Prop
module Confidence = Argus_confidence.Confidence
module Store = Argus_store.Store
module Durable = Argus_store.Durable

let budget_diags = function None -> [] | Some b -> Budget.diagnostics b

let report_payload ds = [ ("report", Diagnostic.report_to_json ds) ]

let report_response ~id ds =
  Protocol.ok ~id
    ~exit_code:(if Diagnostic.has_errors ds then 1 else 0)
    (report_payload ds)

(* A user-input failure that is not a structured diagnostic (program
   or goal parse errors): exit 1 with a message payload. *)
let input_error ~id fmt =
  Printf.ksprintf
    (fun msg -> Protocol.ok ~id ~exit_code:1 [ ("message", Json.Str msg) ])
    fmt

let check (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  let ruleset =
    match req.Protocol.ruleset with
    | "denney-pai" -> Wellformed.Denney_pai_2013
    | _ -> Wellformed.Standard
  in
  let lint structure =
    if req.Protocol.lints then Fused.lint ?budget (Caseir.intern structure)
    else []
  in
  match
    Dsl.parse_collection ~filename:req.Protocol.filename req.Protocol.source
  with
  | Error ds -> report_response ~id ds
  | Ok [ case ] when case.Dsl.module_name = None ->
      (* Single-case fast path: one interning, one fused pass. *)
      let fused =
        Fused.check ~ruleset ?budget ~lints:req.Protocol.lints
          (Caseir.intern case.Dsl.structure)
      in
      let ds =
        fused.Fused.wf @ Dsl.validate_metadata case @ fused.Fused.informal
        @ budget_diags budget
      in
      report_response ~id ds
  | Ok cases -> (
      match Dsl.to_modular cases with
      | Error ds -> report_response ~id ds
      | Ok collection ->
          let ds =
            Fused.check_modular collection
            @ List.concat_map Dsl.validate_metadata cases
            @ List.concat_map (fun c -> lint c.Dsl.structure) cases
            @ budget_diags budget
          in
          report_response ~id ds)

let fallacies (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  match Dsl.parse ~filename:req.Protocol.filename req.Protocol.source with
  | Error ds -> report_response ~id ds
  | Ok case ->
      let ds =
        Fused.lint ?budget (Caseir.intern case.Dsl.structure)
        @ budget_diags budget
      in
      report_response ~id ds

let prove (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  match Program.of_string req.Protocol.source with
  | Error e -> input_error ~id "program error: %s" e
  | Ok program -> (
      match req.Protocol.goal with
      | None -> input_error ~id "prove needs a \"goal\" field"
      | Some goal_text -> (
          match Lterm.of_string goal_text with
          | Error e -> input_error ~id "goal error: %s" e
          | Ok goal ->
              let derivation =
                match budget with
                | None -> Exec.prove_term program goal
                | Some b -> Exec.prove_term ~budget:b program goal
              in
              let warnings = budget_diags budget in
              let payload =
                [
                  ("derivable", Json.Bool (derivation <> None));
                  ( "derivation",
                    match derivation with
                    | None -> Json.Null
                    | Some d ->
                        Json.Str
                          (Format.asprintf "%a" Engine.pp_derivation d) );
                ]
                @
                if warnings = [] then []
                else report_payload warnings
              in
              Protocol.ok ~id
                ~exit_code:
                  (if derivation = None || warnings <> [] then 1 else 0)
                payload))

let probe (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  match Proof_text.parse req.Protocol.source with
  | Error e -> input_error ~id "proof error: %s" e
  | Ok proof -> (
      match Natded.check proof with
      | Error ds -> report_response ~id ds
      | Ok checked ->
          let probes =
            List.map
              (fun premise ->
                let countermodel =
                  Confidence.probe_counterexample ?budget checked premise
                in
                Json.Obj
                  [
                    ("premise", Json.Str (Prop.to_string premise));
                    ("load_bearing", Json.Bool (countermodel <> None));
                    ( "countermodel",
                      match countermodel with
                      | None -> Json.Null
                      | Some model ->
                          Json.Obj
                            (List.map (fun (v, b) -> (v, Json.Bool b)) model)
                    );
                  ])
              checked.Natded.premises
          in
          let warnings = budget_diags budget in
          Protocol.ok ~id
            ~exit_code:(if warnings = [] then 0 else 1)
            ([
               ( "theorem",
                 Json.Str (Prop.to_string (Natded.theorem checked)) );
               ("probes", Json.List probes);
             ]
            @ if warnings = [] then [] else report_payload warnings))

let handle (req : Protocol.request) ~budget =
  match req.Protocol.op with
  | Protocol.Check -> check req ~budget
  | Protocol.Fallacies -> fallacies req ~budget
  | Protocol.Prove -> prove req ~budget
  | Protocol.Probe -> probe req ~budget
  | Protocol.Health | Protocol.Stats ->
      Protocol.error ~id:req.Protocol.id ~code:"svc/bad-request"
        (Printf.sprintf "%s is answered by the server, not a worker"
           (Protocol.op_to_string req.Protocol.op))
  | Protocol.Put | Protocol.Patch | Protocol.Verdict ->
      Protocol.error ~id:req.Protocol.id ~code:"svc/bad-request"
        (Printf.sprintf
           "%s needs a stateful server: start it with \"argus serve --store\""
           (Protocol.op_to_string req.Protocol.op))

(* --- the stateful handler: store ops over a shared Durable.t --- *)

(* Each refusal keeps its own wire code so `argus call` (and any
   client) can tell "that digest is gone" from "your batch is
   malformed" from "the disk failed and the store is read-only" —
   only the last one means "retry after an operator restart". *)
let store_error ~id (e : Durable.error) =
  let code =
    match e with
    | Durable.Store_error (Store.Unknown_digest _) -> "svc/unknown-digest"
    | Durable.Store_error (Store.Bad_edit _) -> "svc/bad-request"
    | Durable.Read_only _ -> "svc/store-read-only"
  in
  Protocol.error ~id ~code (Durable.error_message e)

let put store (req : Protocol.request) =
  let id = req.Protocol.id in
  let ruleset =
    match req.Protocol.ruleset with
    | "denney-pai" -> Wellformed.Denney_pai_2013
    | _ -> Wellformed.Standard
  in
  match
    Dsl.parse_collection ~filename:req.Protocol.filename req.Protocol.source
  with
  | Error ds -> report_response ~id ds
  | Ok [ case ] when case.Dsl.module_name = None -> (
      match Durable.put ~ruleset store case.Dsl.structure with
      | Error e -> store_error ~id e
      | Ok digest ->
          (* The seq echo is the retry audit trail: a client that had
             to resend sees whether its write committed once or twice
             (the digest cannot tell — replays converge on it). *)
          Protocol.ok ~id ~exit_code:0
            [ ("digest", Json.Str digest); ("seq", Json.int (Durable.seq store)) ])
  | Ok _ ->
      Protocol.error ~id ~code:"svc/bad-request"
        "put stores exactly one unnamed case"

let with_digest (req : Protocol.request) k =
  match req.Protocol.digest with
  | None ->
      Protocol.error ~id:req.Protocol.id ~code:"svc/bad-request"
        (Printf.sprintf "%s needs a \"digest\" field"
           (Protocol.op_to_string req.Protocol.op))
  | Some digest -> k digest

let patch store (req : Protocol.request) =
  let id = req.Protocol.id in
  with_digest req (fun digest ->
      match Durable.patch store ~digest req.Protocol.edits with
      | Error e -> store_error ~id e
      | Ok digest' ->
          Protocol.ok ~id ~exit_code:0
            [ ("digest", Json.Str digest'); ("seq", Json.int (Durable.seq store)) ])

let verdict store (req : Protocol.request) =
  let id = req.Protocol.id in
  with_digest req (fun digest ->
      match Durable.verdict store ~digest with
      | Error e -> store_error ~id e
      | Ok v ->
          let ds =
            v.Store.result.Fused.wf @ v.Store.result.Fused.informal
          in
          Protocol.ok ~id
            ~exit_code:(if Diagnostic.has_errors ds then 1 else 0)
            [
              ("digest", Json.Str v.Store.vdigest);
              ("report", Diagnostic.report_to_json ds);
              ("confidence", Json.Num v.Store.confidence);
              ("from_memo", Json.Bool v.Store.from_memo);
            ])

let with_store store (req : Protocol.request) ~budget =
  match req.Protocol.op with
  | Protocol.Put -> put store req
  | Protocol.Patch -> patch store req
  | Protocol.Verdict -> verdict store req
  | _ -> handle req ~budget
