module Json = Argus_core.Json
module Diagnostic = Argus_core.Diagnostic
module Budget = Argus_rt.Budget
module Dsl = Argus_dsl.Dsl
module Wellformed = Argus_gsn.Wellformed
module Modular = Argus_gsn.Modular
module Informal = Argus_fallacy.Informal
module Program = Argus_prolog.Program
module Engine = Argus_prolog.Engine
module Exec = Argus_prolog.Exec
module Caseir = Argus_ir.Caseir
module Fused = Argus_ir.Fused
module Lterm = Argus_logic.Term
module Proof_text = Argus_logic.Proof_text
module Natded = Argus_logic.Natded
module Prop = Argus_logic.Prop
module Confidence = Argus_confidence.Confidence

let budget_diags = function None -> [] | Some b -> Budget.diagnostics b

let report_payload ds = [ ("report", Diagnostic.report_to_json ds) ]

let report_response ~id ds =
  Protocol.ok ~id
    ~exit_code:(if Diagnostic.has_errors ds then 1 else 0)
    (report_payload ds)

(* A user-input failure that is not a structured diagnostic (program
   or goal parse errors): exit 1 with a message payload. *)
let input_error ~id fmt =
  Printf.ksprintf
    (fun msg -> Protocol.ok ~id ~exit_code:1 [ ("message", Json.Str msg) ])
    fmt

let check (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  let ruleset =
    match req.Protocol.ruleset with
    | "denney-pai" -> Wellformed.Denney_pai_2013
    | _ -> Wellformed.Standard
  in
  let lint structure =
    if req.Protocol.lints then Fused.lint ?budget (Caseir.intern structure)
    else []
  in
  match
    Dsl.parse_collection ~filename:req.Protocol.filename req.Protocol.source
  with
  | Error ds -> report_response ~id ds
  | Ok [ case ] when case.Dsl.module_name = None ->
      (* Single-case fast path: one interning, one fused pass. *)
      let fused =
        Fused.check ~ruleset ?budget ~lints:req.Protocol.lints
          (Caseir.intern case.Dsl.structure)
      in
      let ds =
        fused.Fused.wf @ Dsl.validate_metadata case @ fused.Fused.informal
        @ budget_diags budget
      in
      report_response ~id ds
  | Ok cases -> (
      match Dsl.to_modular cases with
      | Error ds -> report_response ~id ds
      | Ok collection ->
          let ds =
            Modular.check collection
            @ List.concat_map Dsl.validate_metadata cases
            @ List.concat_map (fun c -> lint c.Dsl.structure) cases
            @ budget_diags budget
          in
          report_response ~id ds)

let fallacies (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  match Dsl.parse ~filename:req.Protocol.filename req.Protocol.source with
  | Error ds -> report_response ~id ds
  | Ok case ->
      let ds =
        Fused.lint ?budget (Caseir.intern case.Dsl.structure)
        @ budget_diags budget
      in
      report_response ~id ds

let prove (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  match Program.of_string req.Protocol.source with
  | Error e -> input_error ~id "program error: %s" e
  | Ok program -> (
      match req.Protocol.goal with
      | None -> input_error ~id "prove needs a \"goal\" field"
      | Some goal_text -> (
          match Lterm.of_string goal_text with
          | Error e -> input_error ~id "goal error: %s" e
          | Ok goal ->
              let derivation =
                match budget with
                | None -> Exec.prove_term program goal
                | Some b -> Exec.prove_term ~budget:b program goal
              in
              let warnings = budget_diags budget in
              let payload =
                [
                  ("derivable", Json.Bool (derivation <> None));
                  ( "derivation",
                    match derivation with
                    | None -> Json.Null
                    | Some d ->
                        Json.Str
                          (Format.asprintf "%a" Engine.pp_derivation d) );
                ]
                @
                if warnings = [] then []
                else report_payload warnings
              in
              Protocol.ok ~id
                ~exit_code:
                  (if derivation = None || warnings <> [] then 1 else 0)
                payload))

let probe (req : Protocol.request) ~budget =
  let id = req.Protocol.id in
  match Proof_text.parse req.Protocol.source with
  | Error e -> input_error ~id "proof error: %s" e
  | Ok proof -> (
      match Natded.check proof with
      | Error ds -> report_response ~id ds
      | Ok checked ->
          let probes =
            List.map
              (fun premise ->
                let countermodel =
                  Confidence.probe_counterexample ?budget checked premise
                in
                Json.Obj
                  [
                    ("premise", Json.Str (Prop.to_string premise));
                    ("load_bearing", Json.Bool (countermodel <> None));
                    ( "countermodel",
                      match countermodel with
                      | None -> Json.Null
                      | Some model ->
                          Json.Obj
                            (List.map (fun (v, b) -> (v, Json.Bool b)) model)
                    );
                  ])
              checked.Natded.premises
          in
          let warnings = budget_diags budget in
          Protocol.ok ~id
            ~exit_code:(if warnings = [] then 0 else 1)
            ([
               ( "theorem",
                 Json.Str (Prop.to_string (Natded.theorem checked)) );
               ("probes", Json.List probes);
             ]
            @ if warnings = [] then [] else report_payload warnings))

let handle (req : Protocol.request) ~budget =
  match req.Protocol.op with
  | Protocol.Check -> check req ~budget
  | Protocol.Fallacies -> fallacies req ~budget
  | Protocol.Prove -> prove req ~budget
  | Protocol.Probe -> probe req ~budget
  | Protocol.Health | Protocol.Stats ->
      Protocol.error ~id:req.Protocol.id ~code:"svc/bad-request"
        (Printf.sprintf "%s is answered by the server, not a worker"
           (Protocol.op_to_string req.Protocol.op))
