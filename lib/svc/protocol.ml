module Json = Argus_core.Json
module Id = Argus_core.Id
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Store = Argus_store.Store

type op =
  | Check
  | Prove
  | Fallacies
  | Probe
  | Health
  | Stats
  | Put
  | Patch
  | Verdict

type request = {
  id : string;
  op : op;
  source : string;
  filename : string;
  goal : string option;
  ruleset : string;
  lints : bool;
  deadline_ms : float option;
  fuel : int option;
  trace : bool;
  trace_id : string option;
  format : string option;
  digest : string option;
  edits : Store.edit list;
}

type response = {
  rid : string;
  outcome : (int * (string * Json.t) list, string * string) result;
  rtrace_id : string option;
}

let op_to_string = function
  | Check -> "check"
  | Prove -> "prove"
  | Fallacies -> "fallacies"
  | Probe -> "probe"
  | Health -> "health"
  | Stats -> "stats"
  | Put -> "put"
  | Patch -> "patch"
  | Verdict -> "verdict"

let op_of_string = function
  | "check" -> Some Check
  | "prove" -> Some Prove
  | "fallacies" -> Some Fallacies
  | "probe" -> Some Probe
  | "health" -> Some Health
  | "stats" -> Some Stats
  | "put" -> Some Put
  | "patch" -> Some Patch
  | "verdict" -> Some Verdict
  | _ -> None

let request ?(id = "") ?(source = "") ?(filename = "<request>") ?goal
    ?(ruleset = "standard") ?(lints = false) ?deadline_ms ?fuel
    ?(trace = false) ?trace_id ?format ?digest ?(edits = []) op =
  {
    id;
    op;
    source;
    filename;
    goal;
    ruleset;
    lints;
    deadline_ms;
    fuel;
    trace;
    trace_id;
    format;
    digest;
    edits;
  }

(* --- the edit codec (patch requests) --- *)

let status_to_string = function
  | Node.Developed -> "developed"
  | Node.Undeveloped -> "undeveloped"
  | Node.Uninstantiated -> "uninstantiated"
  | Node.Undeveloped_uninstantiated -> "undeveloped-uninstantiated"

let status_of_string = function
  | "developed" -> Some Node.Developed
  | "undeveloped" -> Some Node.Undeveloped
  | "uninstantiated" -> Some Node.Uninstantiated
  | "undeveloped-uninstantiated" -> Some Node.Undeveloped_uninstantiated
  | _ -> None

let link_to_string = function
  | Structure.Supported_by -> "supported-by"
  | Structure.In_context_of -> "in-context-of"

let link_of_string = function
  | "supported-by" -> Some Structure.Supported_by
  | "in-context-of" -> Some Structure.In_context_of
  | _ -> None

let link_edit_json op kind src dst =
  Json.Obj
    [
      ("op", Json.Str op);
      ("kind", Json.Str (link_to_string kind));
      ("src", Json.Str (Id.to_string src));
      ("dst", Json.Str (Id.to_string dst));
    ]

let edit_to_json = function
  | Store.Set_text (id, text) ->
      Json.Obj
        [
          ("op", Json.Str "set-text");
          ("id", Json.Str (Id.to_string id));
          ("text", Json.Str text);
        ]
  | Store.Add_node n ->
      Json.Obj
        ([
           ("op", Json.Str "add-node");
           ("id", Json.Str (Id.to_string n.Node.id));
           ("type", Json.Str (Node.type_to_string n.Node.node_type));
           ("text", Json.Str n.Node.text);
         ]
        @ (if n.Node.status = Node.Developed then []
           else [ ("status", Json.Str (status_to_string n.Node.status)) ])
        @
        match n.Node.evidence with
        | None -> []
        | Some ev -> [ ("evidence", Json.Str (Id.to_string ev)) ])
  | Store.Remove_node id ->
      Json.Obj
        [ ("op", Json.Str "remove-node"); ("id", Json.Str (Id.to_string id)) ]
  | Store.Link (kind, src, dst) -> link_edit_json "link" kind src dst
  | Store.Unlink (kind, src, dst) -> link_edit_json "unlink" kind src dst

let edit_of_json json =
  let req name =
    match Json.member name json with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "edit field %S must be a string" name)
  in
  let req_id name =
    match req name with
    | Error _ as e -> e
    | Ok s -> (
        match Id.of_string_opt s with
        | Some id -> Ok id
        | None -> Error (Printf.sprintf "edit field %S: bad id %S" name s))
  in
  let link_edit ctor =
    match req "kind" with
    | Error _ as e -> e
    | Ok k -> (
        match link_of_string k with
        | None ->
            Error
              (Printf.sprintf
                 "edit field \"kind\" must be \"supported-by\" or \
                  \"in-context-of\", not %S"
                 k)
        | Some kind -> (
            match (req_id "src", req_id "dst") with
            | Ok src, Ok dst -> Ok (ctor kind src dst)
            | (Error _ as e), _ | _, (Error _ as e) -> e))
  in
  match json with
  | Json.Obj _ -> (
      match req "op" with
      | Error _ as e -> e
      | Ok "set-text" -> (
          match (req_id "id", req "text") with
          | Ok id, Ok text -> Ok (Store.Set_text (id, text))
          | (Error _ as e), _ | _, (Error _ as e) -> e)
      | Ok "add-node" -> (
          match (req_id "id", req "type", req "text") with
          | Ok id, Ok ty, Ok text -> (
              match Node.type_of_string ty with
              | None -> Error (Printf.sprintf "edit: unknown node type %S" ty)
              | Some node_type -> (
                  let status =
                    match Json.member "status" json with
                    | None | Some Json.Null -> Ok None
                    | Some (Json.Str s) -> (
                        match status_of_string s with
                        | Some st -> Ok (Some st)
                        | None ->
                            Error
                              (Printf.sprintf "edit: unknown status %S" s))
                    | Some _ -> Error "edit field \"status\" must be a string"
                  in
                  let evidence =
                    match Json.member "evidence" json with
                    | None | Some Json.Null -> Ok None
                    | Some (Json.Str s) -> (
                        match Id.of_string_opt s with
                        | Some ev -> Ok (Some ev)
                        | None ->
                            Error
                              (Printf.sprintf
                                 "edit field \"evidence\": bad id %S" s))
                    | Some _ ->
                        Error "edit field \"evidence\" must be a string"
                  in
                  match (status, evidence) with
                  | Ok status, Ok evidence ->
                      Ok
                        (Store.Add_node
                           (Node.make ~id ~node_type ?status ?evidence text))
                  | (Error _ as e), _ | _, (Error _ as e) -> e))
          | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e)
            ->
              e)
      | Ok "remove-node" -> (
          match req_id "id" with
          | Ok id -> Ok (Store.Remove_node id)
          | Error _ as e -> e)
      | Ok "link" -> link_edit (fun k s d -> Store.Link (k, s, d))
      | Ok "unlink" -> link_edit (fun k s d -> Store.Unlink (k, s, d))
      | Ok op -> Error (Printf.sprintf "unknown edit op %S" op))
  | _ -> Error "each edit must be a JSON object"

let edits_of_json = function
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          match (acc, edit_of_json item) with
          | Error _, _ -> acc
          | _, (Error _ as e) -> e
          | Ok es, Ok e -> Ok (e :: es))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "field \"edits\" must be a list"

let request_to_json r =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    ((if r.id = "" then [] else [ ("id", Json.Str r.id) ])
    @ [ ("op", Json.Str (op_to_string r.op)) ]
    @ (if r.source = "" then [] else [ ("source", Json.Str r.source) ])
    @ (if r.filename = "<request>" then []
       else [ ("filename", Json.Str r.filename) ])
    @ opt "goal" (fun g -> Json.Str g) r.goal
    @ (if r.ruleset = "standard" then []
       else [ ("ruleset", Json.Str r.ruleset) ])
    @ (if r.lints then [ ("lints", Json.Bool true) ] else [])
    @ opt "deadline_ms" (fun d -> Json.Num d) r.deadline_ms
    @ opt "fuel" (fun f -> Json.int f) r.fuel
    @ (if r.trace then [ ("trace", Json.Bool true) ] else [])
    @ opt "trace_id" (fun t -> Json.Str t) r.trace_id
    @ opt "format" (fun f -> Json.Str f) r.format
    @ opt "digest" (fun d -> Json.Str d) r.digest
    @
    if r.edits = [] then []
    else [ ("edits", Json.List (List.map edit_to_json r.edits)) ])

let str_field name json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let num_field name json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Num n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let bool_field name json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let ( let* ) = Result.bind

let request_of_json json =
  match json with
  | Json.Obj _ ->
      let* op_str = str_field "op" json in
      let* op =
        match op_str with
        | None -> Error "missing \"op\" field"
        | Some s -> (
            match op_of_string s with
            | Some op -> Ok op
            | None -> Error (Printf.sprintf "unknown op %S" s))
      in
      let* id = str_field "id" json in
      let* source = str_field "source" json in
      let* filename = str_field "filename" json in
      let* goal = str_field "goal" json in
      let* ruleset = str_field "ruleset" json in
      let* lints = bool_field "lints" json in
      let* deadline_ms = num_field "deadline_ms" json in
      let* deadline_ms =
        match deadline_ms with
        | Some d when not (Float.is_finite d && d >= 0.) ->
            Error "field \"deadline_ms\" must be a finite non-negative number"
        | d -> Ok d
      in
      let* fuel = num_field "fuel" json in
      (* [int_of_float] is unspecified for NaN and out-of-range floats,
         so validate before converting: client-supplied garbage becomes
         svc/bad-request, never a bogus budget. *)
      let* fuel =
        match fuel with
        | None -> Ok None
        | Some f when Float.is_integer f && f >= 0. && f <= 1e15 ->
            Ok (Some (int_of_float f))
        | Some _ ->
            Error
              "field \"fuel\" must be a non-negative integer (at most 1e15)"
      in
      let* trace = bool_field "trace" json in
      let* trace_id = str_field "trace_id" json in
      let* format = str_field "format" json in
      let* digest = str_field "digest" json in
      let* edits =
        match Json.member "edits" json with
        | None | Some Json.Null -> Ok []
        | Some j -> edits_of_json j
      in
      Ok
        {
          id = Option.value id ~default:"";
          op;
          source = Option.value source ~default:"";
          filename = Option.value filename ~default:"<request>";
          goal;
          ruleset = Option.value ruleset ~default:"standard";
          lints = Option.value lints ~default:false;
          deadline_ms;
          fuel;
          trace = Option.value trace ~default:false;
          trace_id;
          format;
          digest;
          edits;
        }
  | _ -> Error "request must be a JSON object"

let request_of_line line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok json -> request_of_json json

let ok ?trace_id ~id ~exit_code payload =
  { rid = id; outcome = Ok (exit_code, payload); rtrace_id = trace_id }

let error ?trace_id ~id ~code message =
  { rid = id; outcome = Error (code, message); rtrace_id = trace_id }

let with_trace_id trace_id r = { r with rtrace_id = trace_id }

let response_to_json r =
  (* The trace id rides right after [id] in every response, success or
     failure, so a client can correlate even a shed request. *)
  let tid =
    match r.rtrace_id with
    | None -> []
    | Some t -> [ ("trace_id", Json.Str t) ]
  in
  match r.outcome with
  | Ok (exit_code, payload) ->
      Json.Obj
        ((("id", Json.Str r.rid) :: tid)
        @ ("status", Json.Str "ok")
          :: ("exit", Json.int exit_code)
          :: payload)
  | Error (code, message) ->
      Json.Obj
        ((("id", Json.Str r.rid) :: tid)
        @ [
            ("status", Json.Str "error");
            ("code", Json.Str code);
            ("message", Json.Str message);
          ])

let response_to_line r = Json.to_string (response_to_json r) ^ "\n"

let response_of_line line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok json -> (
      let* id = str_field "id" json in
      let id = Option.value id ~default:"" in
      let* trace_id = str_field "trace_id" json in
      let* status = str_field "status" json in
      match status with
      | Some "ok" -> (
          match Json.member "exit" json with
          | Some (Json.Num n) ->
              let payload =
                match json with
                | Json.Obj kvs ->
                    List.filter
                      (fun (k, _) ->
                        k <> "id" && k <> "status" && k <> "exit"
                        && k <> "trace_id")
                      kvs
                | _ -> []
              in
              Ok (ok ?trace_id ~id ~exit_code:(int_of_float n) payload)
          | _ -> Error "ok response needs a numeric \"exit\"")
      | Some "error" ->
          let* code = str_field "code" json in
          let* message = str_field "message" json in
          Ok
            (error ?trace_id ~id
               ~code:(Option.value code ~default:"svc/unknown")
               (Option.value message ~default:""))
      | Some s -> Error (Printf.sprintf "unknown status %S" s)
      | None -> Error "missing \"status\" field")

let exit_code_of_response r =
  match r.outcome with Ok (code, _) -> code | Error _ -> 2
