(** The chaos load harness behind [argus bench-serve].

    Open-loop load: arrivals are drawn from a Poisson process anchored
    at the start of the run (exponential inter-arrival times via the
    seeded {!Argus_core.Prng}), so the offered rate does not adapt to
    server slowness — a worker that falls behind its schedule issues
    the overdue requests back-to-back instead of silently thinning the
    load, which is what distinguishes an open-loop harness from a
    closed-loop one that can never overload anything.

    Two kinds of well-behaved traffic:
    - {e retrying workers} drive {!Client} (pooling, seeded-backoff
      retries, failover across the endpoint list) one call at a time;
    - one {e pipelining worker} writes every currently-due request in
      a single batch on a raw connection and then collects the batch's
      responses — exercising the server's multiple-frames-per-read
      path — reconnecting (with endpoint failover) when the
      connection dies and accounting every outstanding request to the
      taxonomy rather than forgetting it.

    With [chaos] set, a menagerie of misbehaving clients runs
    alongside: a byte-dribbler (feeds a frame one byte at a time, far
    slower than the server's read deadline), a mid-frame disconnector,
    a never-reader (sends requests, never reads responses) and a
    garbage-writer — all seeded from the same root, so the abuse
    schedule is reproducible.

    Every issued request is resolved into exactly one taxonomy bucket:
    ["ok"], a server error code (["svc/overloaded"], ...) or a client
    failure code (["connect"], ["timeout"], ["closed"],
    ["bad-response"]).  [resolved = offered] is the harness's no-hang
    invariant; {!run} never blocks past [duration_s] plus the drain
    grace. *)

type config = {
  endpoints : Endpoint.t list;  (** Failover order. *)
  duration_s : float;
  rate : float;  (** Total offered load, requests per second. *)
  clients : int;  (** Retrying workers (the pipeliner is extra). *)
  chaos : bool;  (** Spawn the misbehaving-client menagerie. *)
  seed : int;
}

val default_config : Endpoint.t list -> config
(** 10 s, 200 req/s, 4 retrying workers + the pipeliner, no chaos,
    seed 42. *)

type result = {
  wall_s : float;
  offered : int;  (** Requests actually issued. *)
  resolved : int;  (** Requests accounted to a taxonomy bucket. *)
  ok : int;
  shed : int;  (** [svc/overloaded] + [svc/breaker-open]. *)
  taxonomy : (string * int) list;  (** Bucket -> count, sorted. *)
  throughput_rps : float;  (** [ok / wall_s]. *)
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  chaos_conns : int;  (** Connections the misbehavers opened. *)
  client_counters : (string * int) list;
      (** The [svc.client.*] counters after the run — retries,
          failover, stale pool hits. *)
}

val run : config -> result
(** Blocks for roughly [duration_s].  Raises [Invalid_argument] on an
    empty endpoint list, a non-positive rate or duration. *)

val result_to_json : config -> result -> Argus_core.Json.t
(** The [bench_serve] section published into bench/results.json. *)

val pp : Format.formatter -> result -> unit
