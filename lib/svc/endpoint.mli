(** Service endpoints: where a server listens and a client connects.

    Two address families.  [Unix_path p] is the original Unix-domain
    socket; [Tcp (host, port)] is the hostile-network transport.  The
    textual form accepted by [--connect] and [--listen] is either a
    filesystem path (anything containing ['/'] or not matching
    [HOST:PORT]) or [HOST:PORT] with a numeric port — [127.0.0.1:0]
    asks the kernel for an ephemeral port ([0] is only meaningful for
    listeners; {!connect} rejects it). *)

type t = Unix_path of string | Tcp of string * int

val of_string : string -> (t, string) result
(** [HOST:PORT] (numeric port, host non-empty) parses as [Tcp];
    everything else is a [Unix_path].  An empty string is an error. *)

val to_string : t -> string
(** Round-trips [of_string]; [Tcp] renders as [HOST:PORT]. *)

val pp : Format.formatter -> t -> unit

val resolve : string -> int -> Unix.sockaddr option
(** Resolve [host, port] to a stream socket address, preferring IPv4;
    [None] when the host does not resolve.  Shared by {!connect} and
    the server's [--listen] binding. *)

val connect : ?timeout_ms:float -> t -> (Unix.file_descr, string) result
(** Open a blocking-mode connected socket.  TCP sockets get
    [TCP_NODELAY] (the protocol is request-response single lines —
    Nagle would serialise every round trip with delayed ACKs).  The
    connect itself is attempted non-blocking under [timeout_ms]
    (default 5000; [<= 0.] means no bound), so a black-holed host
    costs a bounded wait, not a kernel-default 2-minute hang.  On any
    failure the descriptor is closed and an error message returned;
    never raises. *)
