(** Readiness engine for the acceptor: "which of these descriptors can
    be read, within this deadline?".

    Two backends behind one interface.  [Poll] drives {!wait} through a
    [poll(2)] C stub — no [FD_SETSIZE] ceiling, so the server's
    connection cap is bounded by [RLIMIT_NOFILE] and config, not by the
    1024-slot [fd_set] that made the old [select] loop raise once a
    descriptor's {i number} crossed 1024.  [Select] is a portable
    fallback over [Unix.select] retaining that ceiling; it exists so the
    engine (and everything above it) can be differentially tested
    against the stub, and as the escape hatch on platforms without the
    stub.

    The registered set is maintained incrementally — {!add} and
    {!remove} are O(1) (dense array + slot table, remove swaps with the
    last entry) — so a wait over n descriptors costs one O(n) kernel
    call and nothing more per iteration.  The engine is single-owner:
    the acceptor registers, waits, and dispatches; worker domains never
    touch it (they wake the acceptor through its self-pipe instead). *)

type backend = Poll | Select

type t

val poll_available : unit -> bool
(** Whether the [poll(2)] stub is usable on this platform. *)

val create : ?backend:backend -> unit -> t
(** Default backend: [Poll] when {!poll_available}, else [Select]. *)

val backend : t -> backend

val backend_name : t -> string
(** ["poll"] or ["select"] — surfaced in the server's stats payload. *)

val add : t -> Unix.file_descr -> unit
(** Register a descriptor for readability.  Adding a registered
    descriptor is a no-op. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister; unknown descriptors are a no-op. *)

val mem : t -> Unix.file_descr -> bool

val registered : t -> int
(** Number of registered descriptors; O(1). *)

val wait : t -> timeout_ms:float -> Unix.file_descr list
(** Block until at least one registered descriptor is readable (or has
    hung up — the caller must be woken to reap), the timeout expires,
    or a signal lands.  [timeout_ms < 0.] blocks indefinitely.  Returns
    the readable descriptors — [[]] on timeout or [EINTR] (the caller
    recomputes its deadlines and re-enters). *)

val nofile_raise : int -> int
(** [nofile_raise want] raises the process's soft [RLIMIT_NOFILE]
    toward [want] (clamped at the hard limit) and returns the resulting
    soft limit.  Used by the capacity tests; never raises. *)
