(** The [argus serve] daemon: a Unix-domain-socket and/or TCP server
    speaking the line-delimited JSON {!Protocol}, dispatching to a
    supervised {!Supervisor} pool.

    The acceptor runs single-threaded over a {!Readiness} engine
    ([poll(2)] where available, [select] fallback): it owns admission
    (shedding, breaker refusals, [health] and [stats] are answered
    without touching a worker — monitoring keeps working when the queue
    is full), workers write their responses back through the
    originating connection's write lock, in completion order.  The loop
    blocks until the next {e computed} deadline — frame read deadlines
    and idle reaps are timers, not polls — and is woken through a
    self-pipe by whichever thread finishes a connection.  Every parsed
    request gets a trace id (client-sent or server-minted) echoed in
    its response; [trace: true] requests return their server-side span
    tree in the payload.  The write lock also guards the connection's
    lifecycle: a descriptor is only closed under it, so a worker
    mid-reply can never write into a recycled fd.  A client that
    half-closes its write side ([shutdown(SHUT_WR)]) after sending
    still receives every pending response — the connection is reaped
    only once nothing remains in flight on it.

    Hostile-network defenses, per connection: [TCP_NODELAY] on accepted
    TCP sockets; a frame read deadline ([read_deadline_ms]) clocked
    from the {e first} byte of a partial frame, so a byte-dribbling
    slow-loris client forfeits its connection however steady its drip;
    an idle reaper ([idle_timeout_ms]) for half-open peers that never
    write again; [SO_SNDTIMEO] for peers that never read.  Faults on
    the I/O edges ([svc.net.read], [svc.net.write], [svc.net.accept])
    forfeit exactly the connection they bit, never the acceptor.

    Graceful drain: SIGTERM or SIGINT (or {!stop}) makes the server
    stop accepting — the listening sockets are closed, the Unix socket
    unlinked — then drain queued and in-flight work under [drain_ms],
    flush the {!Argus_obs} counters, and exit by the 0/1/2 taxonomy: 0
    clean drain, 1 drain deadline expired with work abandoned, 2
    internal error.  SIGPIPE is ignored: a client that hangs up
    mid-response costs exactly its own connection.

    Flight recorder: {!run} servers dump {!Supervisor.flight} as JSONL
    to stderr on SIGUSR1, on drain, and after a worker crash;
    {!spawn} servers (tests, bench) never dump. *)

type config = {
  socket_path : string;
      (** Unix-domain listener path; [""] disables the Unix listener
          (then [listen] must be set). *)
  listen : string option;
      (** TCP listener as [HOST:PORT]; port [0] asks the kernel for an
          ephemeral port (readable back through [port_file] or
          {!tcp_port}).  [None] disables TCP. *)
  port_file : string option;
      (** When set and a TCP listener is bound, the bound port is
          written here (a line with the decimal port) before serving —
          how tests and scripts find a [--listen host:0] server. *)
  jobs : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  max_deadline_ms : float option;
  max_fuel : int option;
  drain_ms : float;  (** Drain deadline on shutdown. *)
  breaker_failures : int;
  breaker_cooldown_ms : float;
  max_line_bytes : int;
      (** A connection sending a longer request line is answered
          [svc/bad-request] and closed — bounded buffering, like the
          queue. *)
  max_conns : int;
      (** Simultaneous-connection cap: at the cap the listeners leave
          the readiness set, so further clients wait in the listen
          backlog.  With the poll backend the only other ceiling is
          [RLIMIT_NOFILE]; the select fallback still caps near
          [FD_SETSIZE]. *)
  write_timeout_ms : float;
      (** [SO_SNDTIMEO] on accepted sockets: a client that stops
          reading forfeits its connection once a reply write blocks
          this long, instead of wedging a worker domain forever on a
          full socket buffer.  [<= 0.] disables the bound. *)
  idle_timeout_ms : float;
      (** A connection with nothing buffered, nothing in flight and no
          read activity for this long is reaped — half-open peers do
          not hold descriptors forever.  [<= 0.] disables. *)
  read_deadline_ms : float;
      (** A partial request frame must complete within this bound,
          clocked from its first byte: the slow-loris defense.  The
          offender is answered [svc/bad-request] and closed.  [<= 0.]
          disables. *)
  slow_ms : float option;
      (** Flight-record requests slower than this many milliseconds
          (admission to reply); [None] disables. *)
}

val default_config : socket_path:string -> config
(** jobs {!Argus_par.Pool.default_jobs}, capacity 64, no deadline
    defaults, 5 s drain, breaker 5 failures / 1 s cooldown, 8 MiB
    lines, 4096 connections, 5 s write timeout, 60 s idle timeout,
    10 s read deadline, no TCP listener, no slow threshold. *)

val run :
  ?handler:
    (Protocol.request -> budget:Argus_rt.Budget.t option -> Protocol.response) ->
  ?extra_stats:(unit -> (string * Argus_core.Json.t) list) ->
  ?on_drain:(unit -> unit) ->
  config ->
  int
(** Bind, serve until SIGTERM/SIGINT, drain, return the exit code.
    The default handler is {!Handlers.handle}.  [extra_stats] fields
    (the durable store's mode and cursors) are appended to both the
    [health] and [stats] payloads; [on_drain] runs after the workers
    drain and before exit — where the durable store flushes and
    fsyncs its WAL.  Raises [Failure] if no listener is configured or
    a listener cannot bind. *)

type handle
(** A server running in a background domain — the bench and test
    harness entry point ({!run} installs signal handlers, which are
    process-wide; [spawn] does not). *)

val spawn :
  ?handler:
    (Protocol.request -> budget:Argus_rt.Budget.t option -> Protocol.response) ->
  ?extra_stats:(unit -> (string * Argus_core.Json.t) list) ->
  ?on_drain:(unit -> unit) ->
  config ->
  handle
(** The listeners are bound and listening when [spawn] returns: a
    client may connect immediately. *)

val tcp_port : handle -> int option
(** The bound TCP port ([--listen host:0] resolves the kernel's pick),
    [None] when no TCP listener was configured. *)

val stop : handle -> int
(** Request drain, wake the acceptor, join the server domain, return
    its exit code. *)
