(** The [argus serve] daemon: a Unix-domain-socket server speaking the
    line-delimited JSON {!Protocol}, dispatching to a supervised
    {!Supervisor} pool.

    The acceptor runs single-threaded over [select]: it owns admission
    (shedding, breaker refusals, [health] and [stats] are answered
    without touching a worker — monitoring keeps working when the queue
    is full), workers write their responses back through the
    originating connection's write lock, in completion order.  Every
    parsed request gets a trace id (client-sent or server-minted)
    echoed in its response; [trace: true] requests return their
    server-side span tree in the payload.  That
    lock also guards the connection's lifecycle: a descriptor is only
    closed under it, so a worker mid-reply can never write into a
    recycled fd.  A client that half-closes its write side
    ([shutdown(SHUT_WR)]) after sending still receives every pending
    response — the connection is reaped only once nothing remains in
    flight on it.

    Graceful drain: SIGTERM or SIGINT (or {!stop}) makes the server
    stop accepting — the listening socket is closed and unlinked — then
    drain queued and in-flight work under [drain_ms], flush the
    {!Argus_obs} counters, and exit by the 0/1/2 taxonomy: 0 clean
    drain, 1 drain deadline expired with work abandoned, 2 internal
    error.  SIGPIPE is ignored: a client that hangs up mid-response
    costs exactly its own connection.

    Flight recorder: {!run} servers dump {!Supervisor.flight} as JSONL
    to stderr on SIGUSR1, on drain, and after a worker crash;
    {!spawn} servers (tests, bench) never dump. *)

type config = {
  socket_path : string;
  jobs : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  max_deadline_ms : float option;
  max_fuel : int option;
  drain_ms : float;  (** Drain deadline on shutdown. *)
  breaker_failures : int;
  breaker_cooldown_ms : float;
  max_line_bytes : int;
      (** A connection sending a longer request line is answered
          [svc/bad-request] and closed — bounded buffering, like the
          queue. *)
  max_conns : int;
      (** Simultaneous-connection cap: at the cap the listener leaves
          the [select] set, so further clients wait in the listen
          backlog instead of pushing a descriptor past [FD_SETSIZE]
          (where [select] raises and would take the service down). *)
  write_timeout_ms : float;
      (** [SO_SNDTIMEO] on accepted sockets: a client that stops
          reading forfeits its connection once a reply write blocks
          this long, instead of wedging a worker domain forever on a
          full socket buffer.  [<= 0.] disables the bound. *)
  slow_ms : float option;
      (** Flight-record requests slower than this many milliseconds
          (admission to reply); [None] disables. *)
}

val default_config : socket_path:string -> config
(** jobs {!Argus_par.Pool.default_jobs}, capacity 64, no deadline
    defaults, 5 s drain, breaker 5 failures / 1 s cooldown, 8 MiB
    lines, 512 connections, 5 s write timeout, no slow threshold. *)

val run :
  ?handler:
    (Protocol.request -> budget:Argus_rt.Budget.t option -> Protocol.response) ->
  ?extra_stats:(unit -> (string * Argus_core.Json.t) list) ->
  ?on_drain:(unit -> unit) ->
  config ->
  int
(** Bind, serve until SIGTERM/SIGINT, drain, return the exit code.
    The default handler is {!Handlers.handle}.  [extra_stats] fields
    (the durable store's mode and cursors) are appended to both the
    [health] and [stats] payloads; [on_drain] runs after the workers
    drain and before exit — where the durable store flushes and
    fsyncs its WAL. *)

type handle
(** A server running in a background domain — the bench and test
    harness entry point ({!run} installs signal handlers, which are
    process-wide; [spawn] does not). *)

val spawn :
  ?handler:
    (Protocol.request -> budget:Argus_rt.Budget.t option -> Protocol.response) ->
  ?extra_stats:(unit -> (string * Argus_core.Json.t) list) ->
  ?on_drain:(unit -> unit) ->
  config ->
  handle
(** The socket is bound and listening when [spawn] returns: a client
    may connect immediately. *)

val stop : handle -> int
(** Request drain, join the server domain, return its exit code. *)
