module Json = Argus_core.Json
module Budget = Argus_rt.Budget
module Breaker = Argus_rt.Breaker
module Retry = Argus_rt.Retry
module Fault = Argus_rt.Fault
module Counter = Argus_obs.Counter
module Histogram = Argus_obs.Metrics.Histogram
module Ring = Argus_obs.Ring
module Span = Argus_obs.Span
module Trace = Argus_obs.Trace

let c_accepted = Counter.make "svc.accepted"
let c_shed = Counter.make "svc.shed"
let c_breaker_open = Counter.make "svc.breaker_open"
let c_restarts = Counter.make "svc.restarts"

(* Registered here so the name exists in the registry even before the
   first retrying call site (the [argus call] connect loop) runs. *)
let c_retried = Counter.make "svc.retried"
let _ = c_retried

let h_latency = Histogram.make "svc.request_latency_ms"

(* Per-kind latency: one histogram per op, so [stats] can answer
   "p99 of prove" separately from the probe traffic diluting it.
   [Histogram.make] is idempotent and the op set is closed, so looking
   up by name at completion time is safe from any worker domain. *)
let h_latency_op op = Histogram.make ("svc.request_latency_ms." ^ op)

(* The flight recorder: every control-plane decision the service makes
   lands here, so the moments before an incident can be dumped after
   the fact (SIGUSR1, drain, worker crash) with no tracing armed in
   advance. *)
let flight = Ring.make ~name:"svc.flight" ~capacity:512

let record_transition op before after =
  if before <> after then
    Ring.record flight ~kind:"breaker"
      [
        ("op", Json.Str op);
        ("from", Json.Str (Breaker.state_to_string before));
        ("to", Json.Str (Breaker.state_to_string after));
      ]

(* Breaker calls wrapped to catch state edges for the flight recorder —
   the breaker itself stays oblivious. *)
let breaker_admit b op =
  let s0 = Breaker.state b in
  let admitted = Breaker.admit b in
  record_transition op s0 (Breaker.state b);
  admitted

let breaker_success b op =
  let s0 = Breaker.state b in
  Breaker.success b;
  record_transition op s0 (Breaker.state b)

let breaker_failure b op =
  let s0 = Breaker.state b in
  Breaker.failure b;
  record_transition op s0 (Breaker.state b)

let breaker_cancel b op =
  let s0 = Breaker.state b in
  Breaker.cancel b;
  record_transition op s0 (Breaker.state b)

type worker_state = Idle | Busy | Restarting

let worker_state_to_string = function
  | Idle -> "idle"
  | Busy -> "busy"
  | Restarting -> "restarting"

type budget_policy = {
  default_deadline_ms : float option;
  max_deadline_ms : float option;
  max_fuel : int option;
}

type config = {
  jobs : int;
  queue_capacity : int;
  restart_policy : Retry.policy;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  budget : budget_policy;
  slow_ms : float option;
  on_crash : unit -> unit;
  now_ms : unit -> float;
  sleep_ms : float -> unit;
}

let default_config =
  {
    jobs = 1;
    queue_capacity = 64;
    restart_policy = Retry.default_policy;
    breaker_failures = 5;
    breaker_cooldown_ms = 1000.;
    budget =
      { default_deadline_ms = None; max_deadline_ms = None; max_fuel = None };
    slow_ms = None;
    on_crash = ignore;
    now_ms = (fun () -> Unix.gettimeofday () *. 1000.);
    sleep_ms = (fun ms -> if ms > 0. then Unix.sleepf (ms /. 1000.));
  }

type job = {
  req : Protocol.request;
  budget : Budget.t option;
  reply : Protocol.response -> unit;
  admitted_ms : float;
}

type slot = {
  mutable state : worker_state;
  mutable consecutive : int;
  mutable exited : bool;
}

type t = {
  cfg : config;
  handler :
    Protocol.request -> budget:Budget.t option -> Protocol.response;
  q : job Queue.t;
  slots : slot array;
  mutable domains : unit Domain.t array;
  mu : Mutex.t;
  idle : Condition.t;  (** Signalled when [inflight] drops or a worker exits. *)
  mutable inflight : int;  (** Admitted jobs not yet replied to. *)
  mutable is_accepting : bool;
  mutable total_restarts : int;
  mutable drained : bool;
  breakers : (string, Breaker.t) Hashtbl.t;  (** Guarded by [mu]. *)
}

let breaker_of t op =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.breakers op with
      | Some b -> b
      | None ->
          let b =
            Breaker.make ~failures:t.cfg.breaker_failures
              ~cooldown_ms:t.cfg.breaker_cooldown_ms ~now_ms:t.cfg.now_ms
              ~name:op ()
          in
          Hashtbl.add t.breakers op b;
          b)

(* The request's effective budget: server default deadline, client
   override clamped by the server max, fuel clamped likewise.  Minted
   at admission so queue wait counts against the deadline. *)
let mint_budget policy (req : Protocol.request) =
  let clamp upper v =
    match upper with None -> v | Some u -> Float.min u v
  in
  let deadline_ms =
    match req.Protocol.deadline_ms with
    | Some d when d > 0. -> Some (clamp policy.max_deadline_ms d)
    | Some _ | None -> (
        match policy.default_deadline_ms with
        | Some d -> Some d
        | None ->
            (* Even without a default, an explicit server max caps
               deadline-less requests. *)
            policy.max_deadline_ms)
  in
  let fuel =
    match (req.Protocol.fuel, policy.max_fuel) with
    | Some f, Some m -> Some (min f m)
    | Some f, None -> Some f
    | None, _ -> None
  in
  let spec =
    { Budget.deadline_ms; fuel; max_depth = None; max_solutions = None }
  in
  if Budget.spec_is_unlimited spec then None else Some (Budget.of_spec spec)

let finish t (job : job) resp =
  (* A reply callback that raises (client hung up mid-write) must not
     count as a worker crash — the request itself succeeded. *)
  (try job.reply resp with _ -> ());
  let ms = t.cfg.now_ms () -. job.admitted_ms in
  let op = Protocol.op_to_string job.req.Protocol.op in
  Histogram.observe h_latency ms;
  Histogram.observe (h_latency_op op) ms;
  (match t.cfg.slow_ms with
  | Some threshold when ms > threshold ->
      Ring.record flight ~kind:"slow"
        [
          ("id", Json.Str job.req.Protocol.id);
          ("op", Json.Str op);
          ("ms", Json.Num ms);
          ("threshold_ms", Json.Num threshold);
        ]
  | _ -> ());
  Mutex.protect t.mu (fun () ->
      t.inflight <- t.inflight - 1;
      Condition.broadcast t.idle)

let set_state t i st =
  Mutex.protect t.mu (fun () -> t.slots.(i).state <- st)

(* Run the handler; when the request asked for a trace, capture its
   span tree on this worker domain and splice it into a successful
   payload.  An untraced request never touches the capture machinery
   (the span fast path stays two loads). *)
let run_handler t (job : job) op =
  if not job.req.Protocol.trace then t.handler job.req ~budget:job.budget
  else begin
    let resp, tree =
      Span.capture
        ~name:("svc." ^ op)
        (fun () -> t.handler job.req ~budget:job.budget)
    in
    match resp.Protocol.outcome with
    | Ok (code, payload) ->
        {
          resp with
          Protocol.outcome =
            Ok (code, payload @ [ ("trace", Trace.span_to_json tree) ]);
        }
    | Error _ -> resp
  end

let worker t i =
  let slot = t.slots.(i) in
  let rec loop () =
    match Queue.pop t.q with
    | None ->
        Mutex.protect t.mu (fun () ->
            slot.exited <- true;
            Condition.broadcast t.idle)
    | Some job -> (
        set_state t i Busy;
        let op = Protocol.op_to_string job.req.Protocol.op in
        let breaker = breaker_of t op in
        match
          Fault.point ~key:job.req.Protocol.id "svc.request";
          run_handler t job op
        with
        | resp ->
            breaker_success breaker op;
            finish t job resp;
            Mutex.protect t.mu (fun () ->
                slot.consecutive <- 0;
                slot.state <- Idle);
            loop ()
        | exception e ->
            (* Let it crash: the victim request gets a typed error, the
               breaker hears about it, and this worker restarts after a
               capped deterministic backoff.  Queued jobs are untouched.
               Restart bookkeeping happens before the reply: once the
               victim's answer is out (and [await_idle] can return),
               the restart is already on the books. *)
            breaker_failure breaker op;
            Counter.incr c_restarts;
            let attempt =
              Mutex.protect t.mu (fun () ->
                  slot.consecutive <- slot.consecutive + 1;
                  slot.state <- Restarting;
                  t.total_restarts <- t.total_restarts + 1;
                  slot.consecutive)
            in
            Ring.record flight ~kind:"restart"
              [
                ("worker", Json.int i);
                ("attempt", Json.int attempt);
                ("id", Json.Str job.req.Protocol.id);
                ("op", Json.Str op);
                ("error", Json.Str (Printexc.to_string e));
              ];
            finish t job
              (Protocol.error ~id:job.req.Protocol.id ~code:"rt/internal-error"
                 (Printexc.to_string e));
            (* The crash hook runs after the victim's reply is out, so a
               flight dump already shows the restart it reports. *)
            (try t.cfg.on_crash () with _ -> ());
            t.cfg.sleep_ms
              (Retry.delay_ms t.cfg.restart_policy
                 ~key:(Printf.sprintf "svc.worker-%d" i)
                 ~attempt);
            set_state t i Idle;
            loop ())
  in
  loop ()

let create ?(config = default_config) ~handler () =
  let jobs = max 1 config.jobs in
  let t =
    {
      cfg = { config with jobs };
      handler;
      q = Queue.create ~capacity:config.queue_capacity;
      slots =
        Array.init jobs (fun _ ->
            { state = Idle; consecutive = 0; exited = false });
      domains = [||];
      mu = Mutex.create ();
      idle = Condition.create ();
      inflight = 0;
      is_accepting = true;
      total_restarts = 0;
      drained = false;
      breakers = Hashtbl.create 8;
    }
  in
  t.domains <- Array.init jobs (fun i -> Domain.spawn (fun () -> worker t i));
  t

let submit t req ~reply =
  let accepting = Mutex.protect t.mu (fun () -> t.is_accepting) in
  if not accepting then
    reply
      (Protocol.error ~id:req.Protocol.id ~code:"svc/draining"
         "server is draining; not accepting new requests")
  else
    let op = Protocol.op_to_string req.Protocol.op in
    let breaker = breaker_of t op in
    if not (breaker_admit breaker op) then begin
      Counter.incr c_breaker_open;
      reply
        (Protocol.error ~id:req.Protocol.id ~code:"svc/breaker-open"
           (Printf.sprintf
              "circuit breaker for %S is open (recent %s requests crashed)"
              op op))
    end
    else begin
      let job =
        {
          req;
          budget = mint_budget t.cfg.budget req;
          reply;
          admitted_ms = t.cfg.now_ms ();
        }
      in
      Mutex.protect t.mu (fun () -> t.inflight <- t.inflight + 1);
      (* Stamp admission before the push: a worker can pop and even
         finish the job before this domain gets to record the event,
         so the default now-clock would misorder admit after slow. *)
      let admit_wall_ms = Unix.gettimeofday () *. 1000. in
      match Queue.push t.q job with
      | `Accepted ->
          Counter.incr c_accepted;
          Ring.record ~ts_ms:admit_wall_ms flight ~kind:"admit"
            [
              ("id", Json.Str req.Protocol.id);
              ("op", Json.Str op);
              ("depth", Json.int (Queue.depth t.q));
            ]
      | `Shed ->
          Mutex.protect t.mu (fun () ->
              t.inflight <- t.inflight - 1;
              Condition.broadcast t.idle);
          (* Give back the half-open trial this job may have taken. *)
          breaker_cancel breaker op;
          Counter.incr c_shed;
          Ring.record flight ~kind:"shed"
            [
              ("id", Json.Str req.Protocol.id);
              ("op", Json.Str op);
              ("depth", Json.int (Queue.depth t.q));
            ];
          reply
            (Protocol.error ~id:req.Protocol.id ~code:"svc/overloaded"
               (Printf.sprintf "queue full (%d waiting); request shed"
                  (Queue.depth t.q)))
    end

let queue_depth t = Queue.depth t.q

let worker_states t =
  Mutex.protect t.mu (fun () ->
      Array.map (fun s -> (s.state, s.consecutive)) t.slots)

let restarts t = Mutex.protect t.mu (fun () -> t.total_restarts)

let breaker_states t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun op b acc -> (op, Breaker.state b) :: acc) t.breakers [])
  |> List.sort compare

let accepting t = Mutex.protect t.mu (fun () -> t.is_accepting)

let await_idle t =
  Mutex.protect t.mu (fun () ->
      while t.inflight > 0 do
        Condition.wait t.idle t.mu
      done)

let drain t ~deadline_ms =
  let already = Mutex.protect t.mu (fun () ->
      let d = t.drained in
      t.is_accepting <- false;
      t.drained <- true;
      d)
  in
  if already then true
  else begin
    Ring.record flight ~kind:"drain"
      [ ("queue_depth", Json.int (Queue.depth t.q)) ];
    Queue.close t.q;
    let deadline = t.cfg.now_ms () +. deadline_ms in
    let rec wait () =
      let all_exited =
        Mutex.protect t.mu (fun () ->
            Array.for_all (fun s -> s.exited) t.slots)
      in
      if all_exited then begin
        Array.iter Domain.join t.domains;
        t.domains <- [||];
        true
      end
      else if t.cfg.now_ms () >= deadline then false
      else begin
        t.cfg.sleep_ms 2.;
        wait ()
      end
    in
    wait ()
  end
