(** Resilient line-protocol client: connection pooling, seeded-backoff
    retries, per-attempt deadlines carved from an overall budget, and
    failover across a list of endpoints.

    The failure semantics mirror the server's: every call resolves
    within its budget — a {!Protocol.response} (possibly a typed error
    the server chose to send) or a typed {!error} — and never hangs.
    Retries follow the deterministic schedule of {!Argus_rt.Retry}
    ([delay_ms] is a pure function of the policy seed, the key and the
    attempt number), so a test that fixes the policy sees the same
    backoff on every run.

    Retry safety per op: everything keyed by case digest — [verdict],
    [patch] addressing — or stateless — [check], [prove], [fallacies],
    [probe], [health], [stats] — is idempotent and retried blindly;
    [put] re-stores identical content at an identical digest.  [patch]
    is the one write whose blind replay commits twice — harmlessly for
    state (the store is content-addressed: the replay converges on the
    same digest) but visibly in the WAL.  A retried [patch] is
    therefore only accepted on a fresh [seq] echo in its ack — the
    audit trail that lets the caller detect the duplicate; against a
    server too old to echo [seq], the retried ack is refused as
    {!Bad_response}.  (DESIGN.md §16 has the full table.)

    A connection that died while pooled (the server restarted between
    calls) is detected on first use — failure before a single response
    byte — discarded, and replaced without consuming a retry attempt:
    stale pool entries are the client's own problem, not the
    network's. *)

type error =
  | Connect_failed of string
      (** No endpoint accepted a connection within the attempt
          budget. *)
  | Timeout of string  (** The overall deadline expired. *)
  | Closed of string
      (** A connection died mid-exchange and the retry budget is
          spent. *)
  | Bad_response of string
      (** The server answered something unparseable — or a retried
          patch ack without a [seq] echo. *)

val error_message : error -> string

val error_code : error -> string
(** Stable taxonomy key: ["connect"], ["timeout"], ["closed"],
    ["bad-response"] — the chaos harness buckets failures by it. *)

type t

val create :
  ?policy:Argus_rt.Retry.policy ->
  ?overall_deadline_ms:float ->
  ?pool_size:int ->
  Endpoint.t list ->
  t
(** [policy] defaults to 12 attempts, 25 ms base, 400 ms cap —
    generous enough that scripts may start a server in the background
    and call immediately.  [overall_deadline_ms] (default 30 000)
    bounds the whole call including every retry and backoff sleep;
    each attempt gets [remaining / attempts_left], floored at 50 ms,
    as its connect timeout and [SO_SNDTIMEO]/[SO_RCVTIMEO].
    [pool_size] (default 2) idle connections are kept per endpoint.
    Raises [Invalid_argument] on an empty endpoint list. *)

val endpoints : t -> Endpoint.t list

val call : ?op:Protocol.op -> t -> string -> (Protocol.response, error) result
(** One request line (no trailing newline), one response.  [op] tells
    the client which retry-safety rule applies; omitting it assumes an
    idempotent op. *)

val call_request : t -> Protocol.request -> (Protocol.response, error) result
(** {!call} on the encoded request, with the op taken from it. *)

val close : t -> unit
(** Close every pooled connection.  The client remains usable (fresh
    connections will be opened). *)
