(** Bounded admission queue with load shedding.

    The acceptor thread pushes, worker domains pop.  Admission is
    strict: at or past the high-water mark [capacity], {!push} refuses
    immediately ([`Shed]) instead of blocking or growing without bound
    — the caller answers the client with [svc/overloaded] and the
    process's memory stays proportional to [capacity], not to the
    request arrival rate.  [capacity = 0] sheds everything (useful to
    pin the shed path in benches and cram tests).

    {!close} starts a drain: further pushes shed, pops keep returning
    queued items until the queue is empty and then return [None],
    telling each worker to exit its loop.

    Gauge: [svc.queue_depth] (current depth; its max is the observed
    high-water mark). *)

type 'a t

val create : capacity:int -> 'a t
(** Negative capacities are treated as 0. *)

val capacity : 'a t -> int
val depth : 'a t -> int

val push : 'a t -> 'a -> [ `Accepted | `Shed ]
(** Never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item arrives or the queue is closed and empty;
    [None] only after close-and-drain. *)

val close : 'a t -> unit
(** Idempotent.  Wakes every blocked {!pop}. *)

val is_closed : 'a t -> bool
