module Json = Argus_core.Json
module Metrics = Argus_obs.Metrics
module Ring = Argus_obs.Ring
module Fault = Argus_rt.Fault
module Counter = Metrics.Counter
module Gauge = Metrics.Gauge

type config = {
  socket_path : string;
  listen : string option;
  port_file : string option;
  jobs : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  max_deadline_ms : float option;
  max_fuel : int option;
  drain_ms : float;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  max_line_bytes : int;
  max_conns : int;
  write_timeout_ms : float;
  idle_timeout_ms : float;
  read_deadline_ms : float;
  slow_ms : float option;
}

let default_config ~socket_path =
  {
    socket_path;
    listen = None;
    port_file = None;
    jobs = Argus_par.Pool.default_jobs ();
    queue_capacity = 64;
    default_deadline_ms = None;
    max_deadline_ms = None;
    max_fuel = None;
    drain_ms = 5000.;
    breaker_failures = 5;
    breaker_cooldown_ms = 1000.;
    max_line_bytes = 8 * 1024 * 1024;
    max_conns = 4096;
    write_timeout_ms = 5000.;
    idle_timeout_ms = 60_000.;
    read_deadline_ms = 10_000.;
    slow_ms = None;
  }

(* Net-layer telemetry.  The fault counters mirror the three probe
   points on the I/O edges: a fired probe always forfeits exactly one
   connection (never the acceptor), and the counter says which edge. *)
let c_net_accepted = Counter.make "svc.net.accepted"
let c_net_fault_accept = Counter.make "svc.net.fault.accept"
let c_net_fault_read = Counter.make "svc.net.fault.read"
let c_net_fault_write = Counter.make "svc.net.fault.write"
let c_net_reaped_idle = Counter.make "svc.net.reaped.idle"
let c_net_reaped_frame = Counter.make "svc.net.reaped.read_deadline"
let g_net_conns = Gauge.make "svc.net.conns"

let now_ms () = Unix.gettimeofday () *. 1000.

type conn = {
  fd : Unix.file_descr;
  kind : [ `Unix | `Tcp ];
  rbuf : Buffer.t;
  wmu : Mutex.t;
      (** Serialises every write to [fd], every mutation of [alive],
          [eof] and [inflight], and — crucially — the final
          [Unix.close]: a worker domain mid-reply can never race the
          acceptor closing (and the kernel recycling) the
          descriptor. *)
  notify : unit -> unit;
      (** Wake the acceptor and queue this connection for reaping —
          called by whichever thread discovers the connection finished
          (worker delivering the last reply, writer hitting a dead
          peer).  The acceptor no longer scans for corpses. *)
  mutable alive : bool;  (** Write side usable; guarded by [wmu]. *)
  mutable eof : bool;
      (** Client half-closed its write side (read returned 0).  Set by
          the acceptor, under [wmu] so a worker retiring the last
          in-flight reply reads it consistently. *)
  mutable inflight : int;
      (** Requests admitted on this connection and not yet replied to;
          guarded by [wmu].  Incremented by the acceptor, decremented by
          whichever thread delivers the reply. *)
  mutable last_ms : float;
      (** Last read activity — the idle reaper's clock.  Acceptor
          only. *)
  mutable frame_since : float;
      (** When the current partial frame started waiting ([nan] = no
          partial frame buffered).  A frame must complete within
          [read_deadline_ms] however slowly its bytes dribble in — the
          slow-loris bound.  Acceptor only. *)
}

(* Workers and the acceptor both write responses; each goes through the
   connection's write lock.  A dead peer (EPIPE — SIGPIPE is ignored)
   just marks the connection for reaping; so does a peer that stops
   reading, once SO_SNDTIMEO expires a write with EAGAIN — the reply is
   forfeit, but the worker is back in the pool in bounded time.  The
   [svc.net.write] probe injects exactly that outcome. *)
let write_locked conn s =
  if conn.alive then
    match Fault.point "svc.net.write" with
    | exception Fault.Injected _ ->
        Counter.incr c_net_fault_write;
        conn.alive <- false;
        conn.notify ()
    | () ->
        let b = Bytes.of_string s in
        let n = Bytes.length b in
        let rec go off =
          if off < n then
            match Unix.write conn.fd b off (n - off) with
            | written -> go (off + written)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
            | exception Unix.Unix_error (_, _, _) ->
                conn.alive <- false;
                conn.notify ()
        in
        go 0

let write_line conn s = Mutex.protect conn.wmu (fun () -> write_locked conn s)

(* Deliver a worker's reply: flush and retire the in-flight slot in one
   critical section, so a reap can never observe "no requests pending"
   while the response bytes are still unwritten.  If this was the last
   pending reply on a finished connection, wake the acceptor to close
   it — nobody is polling for it. *)
let write_reply conn s =
  Mutex.protect conn.wmu (fun () ->
      write_locked conn s;
      conn.inflight <- conn.inflight - 1;
      if conn.inflight = 0 && ((not conn.alive) || conn.eof) then
        conn.notify ())

type t = {
  cfg : config;
  sup : Supervisor.t;
  listeners : (Unix.file_descr * [ `Unix | `Tcp ]) list;
  tcp_port : int option;
      (** The bound TCP port — the kernel's pick when [--listen] asked
          for port 0. *)
  engine : Readiness.t;
  stop : bool Atomic.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
      (** Live connections keyed by descriptor: O(1) dispatch and an
          O(1) [Hashtbl.length] for the connection cap — the old list
          walked O(n) per readable fd and per loop iteration. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
      (** Self-pipe: the readiness loop blocks until the next computed
          deadline, so anything that changes its work from outside —
          a worker retiring the last reply on a finished connection,
          {!stop} — writes a byte here instead of relying on a poll
          tick that no longer exists. *)
  dmu : Mutex.t;
  mutable dead : conn list;
      (** Reap queue, guarded by [dmu]: connections whose owner
          discovered them finished.  Drained by the acceptor after each
          readiness wait. *)
  mutable sweep_at : float;
      (** Earliest idle/read deadline across all connections (infinity
          when none): the readiness timeout is computed from it, never
          polled.  Maintained lazily — armed when a deadline is
          created, recomputed exactly by each sweep. *)
  mutable next_id : int;
  mutable next_trace : int;
  flight_dump : bool ref;
      (** Dump the flight recorder to stderr on drain and on worker
          crashes.  Only [run] arms it — the embedded [spawn] servers
          used by tests and the bench stay quiet. *)
  dump_requested : bool Atomic.t;  (** Set by the SIGUSR1 handler. *)
  extra_stats : (unit -> (string * Json.t) list) option;
      (** Handler-owned facts (the durable store's mode/cursors)
          appended to both the [health] and [stats] payloads. *)
  on_drain : (unit -> unit) option;
      (** Runs after the workers drain, before exit — where the
          durable store flushes and fsyncs its WAL. *)
}

let dump_flight () = Ring.dump stderr Supervisor.flight

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error _ -> ()
(* EAGAIN means a wake byte is already pending — good enough. *)

let workers_json t =
  Supervisor.worker_states t.sup |> Array.to_list
  |> List.map (fun (st, consecutive) ->
         Json.Obj
           [
             ("state", Json.Str (Supervisor.worker_state_to_string st));
             ("consecutive_restarts", Json.int consecutive);
           ])

let breakers_json t =
  Supervisor.breaker_states t.sup
  |> List.map (fun (op, st) ->
         (op, Json.Str (Argus_rt.Breaker.state_to_string st)))

let extra_stats_fields t =
  match t.extra_stats with None -> [] | Some f -> f ()

let health_json t =
  [
    ("ready", Json.Bool (Supervisor.accepting t.sup));
    ("queue_depth", Json.int (Supervisor.queue_depth t.sup));
    ("queue_capacity", Json.int t.cfg.queue_capacity);
    ("jobs", Json.int t.cfg.jobs);
    ("restarts", Json.int (Supervisor.restarts t.sup));
    ("workers", Json.List (workers_json t));
    ("breakers", Json.Obj (breakers_json t));
    ("metrics", Metrics.to_json ());
  ]
  @ extra_stats_fields t

(* The [stats] payload: health facts plus the full registry with
   bucket-estimated latency quantiles, and a server timestamp so a
   polling client ([argus top]) can turn counter deltas into rates
   without trusting its own clock skew. *)
let latency_prefix = "svc.request_latency_ms"

let stats_json t =
  let quantiles (s : Metrics.histogram_stats) =
    Json.Obj
      [
        ("count", Json.int s.Metrics.hcount);
        ("mean", Json.Num s.Metrics.hmean);
        ("p50", Json.Num s.Metrics.hp50);
        ("p90", Json.Num s.Metrics.hp90);
        ("p99", Json.Num s.Metrics.hp99);
        ("max", Json.Num s.Metrics.hmax);
      ]
  in
  let latency =
    Metrics.histograms ()
    |> List.filter_map (fun (name, s) ->
           if name = latency_prefix then Some ("all", quantiles s)
           else
             let pfx = latency_prefix ^ "." in
             if String.starts_with ~prefix:pfx name then
               let klen = String.length pfx in
               Some (String.sub name klen (String.length name - klen),
                     quantiles s)
             else None)
  in
  [
    ("now_ms", Json.Num (Unix.gettimeofday () *. 1000.));
    ("ready", Json.Bool (Supervisor.accepting t.sup));
    ("queue_depth", Json.int (Supervisor.queue_depth t.sup));
    ("queue_capacity", Json.int t.cfg.queue_capacity);
    ("jobs", Json.int t.cfg.jobs);
    ("restarts", Json.int (Supervisor.restarts t.sup));
    ("conns", Json.int (Hashtbl.length t.conns));
    ("max_conns", Json.int t.cfg.max_conns);
    ("readiness", Json.Str (Readiness.backend_name t.engine));
    ("workers", Json.List (workers_json t));
    ("breakers", Json.Obj (breakers_json t));
    ( "counters",
      Json.Obj
        (List.map (fun (n, v) -> (n, Json.int v)) (Metrics.counters ())) );
    ( "gauges",
      Json.Obj
        (List.map
           (fun (n, (v, m)) ->
             (n, Json.Obj [ ("value", Json.int v); ("max", Json.int m) ]))
           (Metrics.gauges ())) );
    ("latency_ms", Json.Obj latency);
    ("flight_recorded", Json.int (Ring.recorded Supervisor.flight));
  ]
  @ extra_stats_fields t

let stats_response t (req : Protocol.request) =
  let id = req.Protocol.id in
  match req.Protocol.format with
  | Some "prometheus" ->
      Protocol.ok ~id ~exit_code:0
        [
          ("content_type", Json.Str "text/plain; version=0.0.4");
          ("body", Json.Str (Argus_obs.Prom.render ()));
        ]
  | None | Some "json" -> Protocol.ok ~id ~exit_code:0 (stats_json t)
  | Some other ->
      Protocol.error ~id ~code:"svc/bad-request"
        (Printf.sprintf "unknown stats format %S (try json or prometheus)"
           other)

let handle_line t conn line =
  match Protocol.request_of_line line with
  | Error e ->
      write_line conn
        (Protocol.response_to_line
           (Protocol.error ~id:"" ~code:"svc/bad-request" e))
  | Ok req ->
      let req =
        if req.Protocol.id <> "" then req
        else begin
          t.next_id <- t.next_id + 1;
          { req with Protocol.id = Printf.sprintf "r%d" t.next_id }
        end
      in
      (* Every parsed request gets a trace id — the client's when it
         sent one, server-minted otherwise — echoed in its response
         whatever the outcome, so even a shed request correlates. *)
      let trace_id =
        match req.Protocol.trace_id with
        | Some tid -> tid
        | None ->
            t.next_trace <- t.next_trace + 1;
            Printf.sprintf "t%d" t.next_trace
      in
      let req = { req with Protocol.trace_id = Some trace_id } in
      let stamp = Protocol.with_trace_id (Some trace_id) in
      (match req.Protocol.op with
      | Protocol.Health ->
          write_line conn
            (Protocol.response_to_line
               (stamp
                  (Protocol.ok ~id:req.Protocol.id ~exit_code:0
                     (health_json t))))
      | Protocol.Stats ->
          (* Answered on the acceptor like health: monitoring must keep
             working when the queue is saturated or the workers hung. *)
          write_line conn
            (Protocol.response_to_line (stamp (stats_response t req)))
      | _ ->
          Mutex.protect conn.wmu (fun () ->
              conn.inflight <- conn.inflight + 1);
          Supervisor.submit t.sup req ~reply:(fun resp ->
              write_reply conn (Protocol.response_to_line (stamp resp))))

(* Split off every complete line in the connection's read buffer. *)
let drain_lines t conn =
  let data = Buffer.contents conn.rbuf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | exception Not_found -> raise Exit
       | nl ->
           let line = String.sub data !start (nl - !start) in
           start := nl + 1;
           if String.trim line <> "" then handle_line t conn line
     done
   with Exit -> ());
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !start (n - !start);
  if Buffer.length conn.rbuf > t.cfg.max_line_bytes then
    Mutex.protect conn.wmu (fun () ->
        write_locked conn
          (Protocol.response_to_line
             (Protocol.error ~id:"" ~code:"svc/bad-request"
                (Printf.sprintf "request line exceeds %d bytes"
                   t.cfg.max_line_bytes)));
        conn.alive <- false)

(* Arm the deadline sweep no later than [at]; exact recomputation
   happens inside the sweep itself. *)
let arm_sweep t at = if at < t.sweep_at then t.sweep_at <- at

(* Close a finished connection — acceptor only.  [try_lock] keeps a
   slow reply flush (bounded by SO_SNDTIMEO) from stalling the
   acceptor: a contended connection is retried on a short timer rather
   than polled.  Closing under [wmu] means a straggling writer finds
   [alive] false, never a recycled descriptor. *)
let reap_now t conn =
  if Hashtbl.mem t.conns conn.fd then
    if Mutex.try_lock conn.wmu then begin
      let finished = (not conn.alive) || (conn.eof && conn.inflight = 0) in
      if finished then begin
        conn.alive <- false;
        (try Unix.close conn.fd with Unix.Unix_error _ -> ());
        Mutex.unlock conn.wmu;
        Hashtbl.remove t.conns conn.fd;
        Readiness.remove t.engine conn.fd;
        Gauge.set g_net_conns (Hashtbl.length t.conns)
      end
      else Mutex.unlock conn.wmu
    end
    else begin
      Mutex.protect t.dmu (fun () -> t.dead <- conn :: t.dead);
      arm_sweep t (now_ms () +. 25.)
    end

(* Forfeit: the write side is done for (I/O error, injected fault,
   protocol violation, missed deadline) — mark and close. *)
let forfeit t conn =
  Mutex.protect conn.wmu (fun () -> conn.alive <- false);
  reap_now t conn

let read_chunk_size = 65536

let service_conn t conn =
  match Fault.point "svc.net.read" with
  | exception Fault.Injected _ ->
      (* A hostile network bit this read: the connection is forfeit,
         the acceptor and every other connection keep going. *)
      Counter.incr c_net_fault_read;
      forfeit t conn
  | () -> (
      let buf = Bytes.create read_chunk_size in
      match Unix.read conn.fd buf 0 read_chunk_size with
      | 0 ->
          (* Half-close, not hang-up: a client may shutdown(SHUT_WR)
             after its last request and still be reading.  Stop polling
             the fd but keep it open until every in-flight reply is
             delivered; the last [write_reply] wakes us to close it. *)
          Mutex.protect conn.wmu (fun () -> conn.eof <- true);
          Readiness.remove t.engine conn.fd;
          conn.frame_since <- Float.nan;
          reap_now t conn
      | n ->
          let now = now_ms () in
          conn.last_ms <- now;
          Buffer.add_subbytes conn.rbuf buf 0 n;
          drain_lines t conn;
          (* Frame deadline bookkeeping: a partial frame keeps the
             clock of its *first* byte — a dribbling client makes
             progress but never resets the bound. *)
          if Buffer.length conn.rbuf = 0 then conn.frame_since <- Float.nan
          else if Float.is_nan conn.frame_since then begin
            conn.frame_since <- now;
            if t.cfg.read_deadline_ms > 0. then
              arm_sweep t (now +. t.cfg.read_deadline_ms)
          end;
          if not conn.alive then reap_now t conn
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> forfeit t conn)

let accept_loop t lfd kind =
  let continue = ref true in
  while !continue && Hashtbl.length t.conns < t.cfg.max_conns do
    match Unix.accept ~cloexec:true lfd with
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
    | fd, _ -> (
        match Fault.point "svc.net.accept" with
        | exception Fault.Injected _ ->
            (* The handshake "failed": drop the would-be connection on
               the floor — the client's connect retry owns recovery. *)
            Counter.incr c_net_fault_accept;
            (try Unix.close fd with Unix.Unix_error _ -> ())
        | () ->
            (* Bound every reply write: a client that stops reading gets
               its connection forfeited after the send timeout instead
               of wedging a worker domain on a full socket buffer.
               (<= 0 disables.) *)
            if t.cfg.write_timeout_ms > 0. then
              (try
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO
                   (t.cfg.write_timeout_ms /. 1000.)
               with Unix.Unix_error _ -> ());
            if kind = `Tcp then
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
            let now = now_ms () in
            let rec conn =
              {
                fd;
                kind;
                rbuf = Buffer.create 256;
                wmu = Mutex.create ();
                notify =
                  (fun () ->
                    Mutex.protect t.dmu (fun () ->
                        t.dead <- conn :: t.dead);
                    wake t);
                alive = true;
                eof = false;
                inflight = 0;
                last_ms = now;
                frame_since = Float.nan;
              }
            in
            Hashtbl.replace t.conns fd conn;
            Readiness.add t.engine fd;
            Counter.incr c_net_accepted;
            Gauge.set g_net_conns (Hashtbl.length t.conns);
            if t.cfg.idle_timeout_ms > 0. then
              arm_sweep t (now +. t.cfg.idle_timeout_ms))
  done

(* The deadline sweep: runs only when [sweep_at] says a deadline may be
   due, walks every connection once, enforces idle and frame deadlines,
   and recomputes the exact next deadline.  Per-event work in the
   readiness loop stays O(1); the O(n) walk is amortised over the
   deadline intervals themselves (tens of seconds). *)
let sweep t now =
  let next = ref infinity in
  let frame_victims = ref [] in
  let idle_victims = ref [] in
  Hashtbl.iter
    (fun _ conn ->
      if conn.alive then begin
        (if t.cfg.read_deadline_ms > 0. && not (Float.is_nan conn.frame_since)
         then
           let dl = conn.frame_since +. t.cfg.read_deadline_ms in
           if now >= dl then frame_victims := conn :: !frame_victims
           else if dl < !next then next := dl);
        if
          t.cfg.idle_timeout_ms > 0.
          && conn.inflight = 0
          && Float.is_nan conn.frame_since
          && not conn.eof
        then begin
          let dl = conn.last_ms +. t.cfg.idle_timeout_ms in
          if now >= dl then idle_victims := conn :: !idle_victims
          else if dl < !next then next := dl
        end
      end)
    t.conns;
  List.iter
    (fun conn ->
      Counter.incr c_net_reaped_frame;
      write_line conn
        (Protocol.response_to_line
           (Protocol.error ~id:"" ~code:"svc/bad-request"
              (Printf.sprintf
                 "read deadline exceeded: frame incomplete after %.0f ms"
                 t.cfg.read_deadline_ms)));
      forfeit t conn)
    !frame_victims;
  List.iter
    (fun conn ->
      Counter.incr c_net_reaped_idle;
      forfeit t conn)
    !idle_victims;
  t.sweep_at <- !next

(* Keep the listeners registered exactly while there is room: at the
   cap further clients wait in the listen backlog instead of consuming
   descriptors (and under [select] fallback, instead of pushing an fd
   past FD_SETSIZE where select raises). *)
let arm_listeners t =
  let under = Hashtbl.length t.conns < t.cfg.max_conns in
  List.iter
    (fun (lfd, _) ->
      if under then Readiness.add t.engine lfd
      else Readiness.remove t.engine lfd)
    t.listeners

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let drain_dead t =
  let batch = Mutex.protect t.dmu (fun () ->
      let d = t.dead in
      t.dead <- [];
      d)
  in
  List.iter (fun conn -> reap_now t conn) batch

let serve_loop t =
  let code =
    try
      Readiness.add t.engine t.wake_r;
      while not (Atomic.get t.stop) do
        let now = now_ms () in
        if now >= t.sweep_at then sweep t now;
        (* Retry contended reaps before blocking: a failed [try_lock]
           re-arms [sweep_at] a few ms out, so the wait below stays
           bounded while anything is pending. *)
        drain_dead t;
        arm_listeners t;
        (* Block until the next computed deadline — or forever when
           there is none.  Everything that could create earlier work
           (a new deadline, a finished connection, stop) either arms
           [sweep_at] on this thread or writes the self-pipe. *)
        let timeout_ms =
          if t.sweep_at = infinity then -1. else Float.max 0. (t.sweep_at -. now)
        in
        let ready = Readiness.wait t.engine ~timeout_ms in
        (* Service data before accepting: an accept may reuse a
           descriptor number closed earlier in this very batch, and a
           stale readiness entry must never reach the newcomer. *)
        let conn_ready, other =
          List.partition (fun fd -> Hashtbl.mem t.conns fd) ready
        in
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.conns fd with
            | Some conn -> service_conn t conn
            | None -> ())
          conn_ready;
        List.iter
          (fun fd ->
            if fd = t.wake_r then drain_wake t
            else
              match List.find_opt (fun (lfd, _) -> lfd = fd) t.listeners with
              | Some (lfd, kind) -> accept_loop t lfd kind
              | None -> ())
          other;
        drain_dead t;
        (* SIGUSR1 lands as an EINTR out of the wait; the handler only
           sets a flag and the dump happens here, on the acceptor,
           outside signal context. *)
        if Atomic.get t.dump_requested then begin
          Atomic.set t.dump_requested false;
          dump_flight ()
        end
      done;
      (* Drain: close the door, let the workers finish what is queued
         and in flight, under the drain deadline. *)
      List.iter
        (fun (lfd, _) ->
          try Unix.close lfd with Unix.Unix_error _ -> ())
        t.listeners;
      if t.cfg.socket_path <> "" then
        (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
      let drained = Supervisor.drain t.sup ~deadline_ms:t.cfg.drain_ms in
      (* Workers are quiet now: flush handler-owned state (the durable
         store's WAL fsync) while the process is still in charge. *)
      (match t.on_drain with None -> () | Some f -> f ());
      (* Every reply is out (or abandoned with its worker past the
         deadline); close what is left under each connection's write
         lock so a straggling writer finds [alive] false rather than a
         recycled descriptor. *)
      Hashtbl.iter
        (fun _ c ->
          Mutex.protect c.wmu (fun () ->
              c.alive <- false;
              try Unix.close c.fd with Unix.Unix_error _ -> ()))
        t.conns;
      Hashtbl.reset t.conns;
      (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
      (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
      if !(t.flight_dump) then dump_flight ();
      if drained then 0 else 1
    with e ->
      Printf.eprintf "argus serve: internal error: %s\n%!"
        (Printexc.to_string e);
      2
  in
  (* Flush counters/spans to whatever sinks are configured. *)
  Argus_obs.Obs.finish ();
  code

let bind_unix path =
  (* A stale socket file from a crashed predecessor would make bind
     fail; remove it if it is a socket (never clobber a regular file). *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 256;
  Unix.set_nonblock fd;
  fd

let bind_tcp spec =
  match Endpoint.of_string spec with
  | Error e -> failwith e
  | Ok (Endpoint.Unix_path _) ->
      failwith (Printf.sprintf "--listen expects HOST:PORT, got %S" spec)
  | Ok (Endpoint.Tcp (host, port)) -> (
      match Endpoint.resolve host port with
      | None -> failwith (Printf.sprintf "--listen %s: host does not resolve" spec)
      | Some addr ->
          let fd =
            Unix.socket ~cloexec:true
              (Unix.domain_of_sockaddr addr)
              Unix.SOCK_STREAM 0
          in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd addr;
          Unix.listen fd 256;
          Unix.set_nonblock fd;
          let bound =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> Some p
            | _ -> None
          in
          (fd, bound))

let make ?(handler = Handlers.handle) ?extra_stats ?on_drain cfg =
  (* The connection cap is config + RLIMIT_NOFILE, not FD_SETSIZE:
     ask for headroom above [max_conns] (listeners, self-pipe, the
     store's descriptors) while we still can. *)
  ignore (Readiness.nofile_raise (cfg.max_conns + 64));
  let listeners = ref [] in
  let tcp_port = ref None in
  if cfg.socket_path <> "" then
    listeners := (bind_unix cfg.socket_path, `Unix) :: !listeners;
  (match cfg.listen with
  | None -> ()
  | Some spec ->
      let fd, port = bind_tcp spec in
      tcp_port := port;
      listeners := (fd, `Tcp) :: !listeners);
  if !listeners = [] then
    failwith "argus serve: no listener (give a socket path or --listen)";
  (* The bound port is only useful if whoever asked for port 0 can read
     it back; tests do, through the port file. *)
  (match cfg.port_file, !tcp_port with
  | Some f, Some p ->
      let oc = open_out f in
      Printf.fprintf oc "%d\n" p;
      close_out oc
  | _ -> ());
  let flight_dump = ref false in
  let sup_config =
    {
      Supervisor.default_config with
      Supervisor.jobs = cfg.jobs;
      queue_capacity = cfg.queue_capacity;
      breaker_failures = cfg.breaker_failures;
      breaker_cooldown_ms = cfg.breaker_cooldown_ms;
      budget =
        {
          Supervisor.default_deadline_ms = cfg.default_deadline_ms;
          max_deadline_ms = cfg.max_deadline_ms;
          max_fuel = cfg.max_fuel;
        };
      slow_ms = cfg.slow_ms;
      on_crash = (fun () -> if !flight_dump then dump_flight ());
    }
  in
  let sup = Supervisor.create ~config:sup_config ~handler () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    cfg;
    sup;
    listeners = !listeners;
    tcp_port = !tcp_port;
    engine = Readiness.create ();
    stop = Atomic.make false;
    conns = Hashtbl.create 256;
    wake_r;
    wake_w;
    dmu = Mutex.create ();
    dead = [];
    sweep_at = infinity;
    next_id = 0;
    next_trace = 0;
    flight_dump;
    dump_requested = Atomic.make false;
    extra_stats;
    on_drain;
  }

let listen_summary t =
  let ep = function
    | _, `Unix -> t.cfg.socket_path
    | _, `Tcp ->
        let port = match t.tcp_port with Some p -> p | None -> 0 in
        let host =
          match t.cfg.listen with
          | Some spec -> (
              match Endpoint.of_string spec with
              | Ok (Endpoint.Tcp (h, _)) -> h
              | _ -> "0.0.0.0")
          | None -> "0.0.0.0"
        in
        Printf.sprintf "%s:%d" host port
  in
  String.concat ", " (List.map ep t.listeners)

let run ?handler ?extra_stats ?on_drain cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = make ?handler ?extra_stats ?on_drain cfg in
  t.flight_dump := true;
  let request_stop _ = Atomic.set t.stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle (fun _ -> Atomic.set t.dump_requested true));
  Printf.eprintf "argus serve: listening on %s (jobs=%d, queue=%d)\n%!"
    (listen_summary t) cfg.jobs cfg.queue_capacity;
  serve_loop t

type handle = { t : t; domain : int Domain.t }

let spawn ?handler ?extra_stats ?on_drain cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = make ?handler ?extra_stats ?on_drain cfg in
  { t; domain = Domain.spawn (fun () -> serve_loop t) }

let tcp_port h = h.t.tcp_port

let stop h =
  Atomic.set h.t.stop true;
  wake h.t;
  Domain.join h.domain
