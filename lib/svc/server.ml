module Json = Argus_core.Json
module Metrics = Argus_obs.Metrics
module Ring = Argus_obs.Ring

type config = {
  socket_path : string;
  jobs : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  max_deadline_ms : float option;
  max_fuel : int option;
  drain_ms : float;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  max_line_bytes : int;
  max_conns : int;
  write_timeout_ms : float;
  slow_ms : float option;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Argus_par.Pool.default_jobs ();
    queue_capacity = 64;
    default_deadline_ms = None;
    max_deadline_ms = None;
    max_fuel = None;
    drain_ms = 5000.;
    breaker_failures = 5;
    breaker_cooldown_ms = 1000.;
    max_line_bytes = 8 * 1024 * 1024;
    max_conns = 512;
    write_timeout_ms = 5000.;
    slow_ms = None;
  }

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wmu : Mutex.t;
      (** Serialises every write to [fd], every mutation of [alive] and
          [inflight], and — crucially — the final [Unix.close]: a worker
          domain mid-reply can never race the acceptor closing (and the
          kernel recycling) the descriptor. *)
  mutable alive : bool;  (** Write side usable; guarded by [wmu]. *)
  mutable eof : bool;
      (** Client half-closed its write side (read returned 0).  Set and
          read by the acceptor only. *)
  mutable inflight : int;
      (** Requests admitted on this connection and not yet replied to;
          guarded by [wmu].  Incremented by the acceptor, decremented by
          whichever thread delivers the reply. *)
}

(* Workers and the acceptor both write responses; each goes through the
   connection's write lock.  A dead peer (EPIPE — SIGPIPE is ignored)
   just marks the connection for reaping; so does a peer that stops
   reading, once SO_SNDTIMEO expires a write with EAGAIN — the reply is
   forfeit, but the worker is back in the pool in bounded time. *)
let write_locked conn s =
  if conn.alive then
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write conn.fd b off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (_, _, _) -> conn.alive <- false
    in
    go 0

let write_line conn s = Mutex.protect conn.wmu (fun () -> write_locked conn s)

(* Deliver a worker's reply: flush and retire the in-flight slot in one
   critical section, so the reap below can never observe "no requests
   pending" while the response bytes are still unwritten. *)
let write_reply conn s =
  Mutex.protect conn.wmu (fun () ->
      write_locked conn s;
      conn.inflight <- conn.inflight - 1)

type t = {
  cfg : config;
  sup : Supervisor.t;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  mutable conns : conn list;
  mutable next_id : int;
  mutable next_trace : int;
  flight_dump : bool ref;
      (** Dump the flight recorder to stderr on drain and on worker
          crashes.  Only [run] arms it — the embedded [spawn] servers
          used by tests and the bench stay quiet. *)
  dump_requested : bool Atomic.t;  (** Set by the SIGUSR1 handler. *)
  extra_stats : (unit -> (string * Json.t) list) option;
      (** Handler-owned facts (the durable store's mode/cursors)
          appended to both the [health] and [stats] payloads. *)
  on_drain : (unit -> unit) option;
      (** Runs after the workers drain, before exit — where the
          durable store flushes and fsyncs its WAL. *)
}

let dump_flight () = Ring.dump stderr Supervisor.flight

let workers_json t =
  Supervisor.worker_states t.sup |> Array.to_list
  |> List.map (fun (st, consecutive) ->
         Json.Obj
           [
             ("state", Json.Str (Supervisor.worker_state_to_string st));
             ("consecutive_restarts", Json.int consecutive);
           ])

let breakers_json t =
  Supervisor.breaker_states t.sup
  |> List.map (fun (op, st) ->
         (op, Json.Str (Argus_rt.Breaker.state_to_string st)))

let extra_stats_fields t =
  match t.extra_stats with None -> [] | Some f -> f ()

let health_json t =
  [
    ("ready", Json.Bool (Supervisor.accepting t.sup));
    ("queue_depth", Json.int (Supervisor.queue_depth t.sup));
    ("queue_capacity", Json.int t.cfg.queue_capacity);
    ("jobs", Json.int t.cfg.jobs);
    ("restarts", Json.int (Supervisor.restarts t.sup));
    ("workers", Json.List (workers_json t));
    ("breakers", Json.Obj (breakers_json t));
    ("metrics", Metrics.to_json ());
  ]
  @ extra_stats_fields t

(* The [stats] payload: health facts plus the full registry with
   bucket-estimated latency quantiles, and a server timestamp so a
   polling client ([argus top]) can turn counter deltas into rates
   without trusting its own clock skew. *)
let latency_prefix = "svc.request_latency_ms"

let stats_json t =
  let quantiles (s : Metrics.histogram_stats) =
    Json.Obj
      [
        ("count", Json.int s.Metrics.hcount);
        ("mean", Json.Num s.Metrics.hmean);
        ("p50", Json.Num s.Metrics.hp50);
        ("p90", Json.Num s.Metrics.hp90);
        ("p99", Json.Num s.Metrics.hp99);
        ("max", Json.Num s.Metrics.hmax);
      ]
  in
  let latency =
    Metrics.histograms ()
    |> List.filter_map (fun (name, s) ->
           if name = latency_prefix then Some ("all", quantiles s)
           else
             let pfx = latency_prefix ^ "." in
             if String.starts_with ~prefix:pfx name then
               let klen = String.length pfx in
               Some (String.sub name klen (String.length name - klen),
                     quantiles s)
             else None)
  in
  [
    ("now_ms", Json.Num (Unix.gettimeofday () *. 1000.));
    ("ready", Json.Bool (Supervisor.accepting t.sup));
    ("queue_depth", Json.int (Supervisor.queue_depth t.sup));
    ("queue_capacity", Json.int t.cfg.queue_capacity);
    ("jobs", Json.int t.cfg.jobs);
    ("restarts", Json.int (Supervisor.restarts t.sup));
    ("workers", Json.List (workers_json t));
    ("breakers", Json.Obj (breakers_json t));
    ( "counters",
      Json.Obj
        (List.map (fun (n, v) -> (n, Json.int v)) (Metrics.counters ())) );
    ( "gauges",
      Json.Obj
        (List.map
           (fun (n, (v, m)) ->
             (n, Json.Obj [ ("value", Json.int v); ("max", Json.int m) ]))
           (Metrics.gauges ())) );
    ("latency_ms", Json.Obj latency);
    ("flight_recorded", Json.int (Ring.recorded Supervisor.flight));
  ]
  @ extra_stats_fields t

let stats_response t (req : Protocol.request) =
  let id = req.Protocol.id in
  match req.Protocol.format with
  | Some "prometheus" ->
      Protocol.ok ~id ~exit_code:0
        [
          ("content_type", Json.Str "text/plain; version=0.0.4");
          ("body", Json.Str (Argus_obs.Prom.render ()));
        ]
  | None | Some "json" -> Protocol.ok ~id ~exit_code:0 (stats_json t)
  | Some other ->
      Protocol.error ~id ~code:"svc/bad-request"
        (Printf.sprintf "unknown stats format %S (try json or prometheus)"
           other)

let handle_line t conn line =
  match Protocol.request_of_line line with
  | Error e ->
      write_line conn
        (Protocol.response_to_line
           (Protocol.error ~id:"" ~code:"svc/bad-request" e))
  | Ok req ->
      let req =
        if req.Protocol.id <> "" then req
        else begin
          t.next_id <- t.next_id + 1;
          { req with Protocol.id = Printf.sprintf "r%d" t.next_id }
        end
      in
      (* Every parsed request gets a trace id — the client's when it
         sent one, server-minted otherwise — echoed in its response
         whatever the outcome, so even a shed request correlates. *)
      let trace_id =
        match req.Protocol.trace_id with
        | Some tid -> tid
        | None ->
            t.next_trace <- t.next_trace + 1;
            Printf.sprintf "t%d" t.next_trace
      in
      let req = { req with Protocol.trace_id = Some trace_id } in
      let stamp = Protocol.with_trace_id (Some trace_id) in
      (match req.Protocol.op with
      | Protocol.Health ->
          write_line conn
            (Protocol.response_to_line
               (stamp
                  (Protocol.ok ~id:req.Protocol.id ~exit_code:0
                     (health_json t))))
      | Protocol.Stats ->
          (* Answered on the acceptor like health: monitoring must keep
             working when the queue is saturated or the workers hung. *)
          write_line conn
            (Protocol.response_to_line (stamp (stats_response t req)))
      | _ ->
          Mutex.protect conn.wmu (fun () ->
              conn.inflight <- conn.inflight + 1);
          Supervisor.submit t.sup req ~reply:(fun resp ->
              write_reply conn (Protocol.response_to_line (stamp resp))))

(* Split off every complete line in the connection's read buffer. *)
let drain_lines t conn =
  let data = Buffer.contents conn.rbuf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | exception Not_found -> raise Exit
       | nl ->
           let line = String.sub data !start (nl - !start) in
           start := nl + 1;
           if String.trim line <> "" then handle_line t conn line
     done
   with Exit -> ());
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !start (n - !start);
  if Buffer.length conn.rbuf > t.cfg.max_line_bytes then
    Mutex.protect conn.wmu (fun () ->
        write_locked conn
          (Protocol.response_to_line
             (Protocol.error ~id:"" ~code:"svc/bad-request"
                (Printf.sprintf "request line exceeds %d bytes"
                   t.cfg.max_line_bytes)));
        conn.alive <- false)

let read_chunk_size = 65536

let service_conn t conn =
  let buf = Bytes.create read_chunk_size in
  match Unix.read conn.fd buf 0 read_chunk_size with
  | 0 ->
      (* Half-close, not hang-up: a client may shutdown(SHUT_WR) after
         its last request and still be reading.  Stop polling the fd
         but keep it open until every in-flight reply is delivered;
         [reap] does the close. *)
      conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.rbuf buf 0 n;
      drain_lines t conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) ->
      Mutex.protect conn.wmu (fun () -> conn.alive <- false)

let accept_conn t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
      (* Bound every reply write: a client that stops reading gets its
         connection forfeited after the send timeout instead of wedging
         a worker domain on a full socket buffer.  (<= 0 disables.) *)
      if t.cfg.write_timeout_ms > 0. then
        (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO
               (t.cfg.write_timeout_ms /. 1000.)
         with Unix.Unix_error _ -> ());
      t.conns <-
        {
          fd;
          rbuf = Buffer.create 256;
          wmu = Mutex.create ();
          alive = true;
          eof = false;
          inflight = 0;
        }
        :: t.conns
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()

(* A connection is finished when its write side is forfeit ([alive]
   false) or the client half-closed and every admitted request has been
   answered.  Both conditions are stable once observed from the
   acceptor: [eof] only it sets, and [inflight] can only grow through
   [handle_line], which it also runs.  The close happens under [wmu] so
   it cannot race a worker mid-write (the kernel could recycle the fd
   number for a fresh accept, cross-wiring responses); [try_lock] keeps
   a slow flush — bounded by SO_SNDTIMEO — from stalling the accept
   loop: an unlucky connection is simply reaped on a later tick. *)
let reap t =
  t.conns <-
    List.filter
      (fun c ->
        let finished = (not c.alive) || (c.eof && c.inflight = 0) in
        if not finished then true
        else if Mutex.try_lock c.wmu then begin
          c.alive <- false;
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          Mutex.unlock c.wmu;
          false
        end
        else true)
      t.conns

let bind_listen cfg =
  (* A stale socket file from a crashed predecessor would make bind
     fail; remove it if it is a socket (never clobber a regular file). *)
  (match Unix.lstat cfg.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink cfg.socket_path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen fd 64;
  fd

let serve_loop t =
  let code =
    try
      while not (Atomic.get t.stop) do
        (* Only live, still-sending connections are polled (a half-
           closed fd would report readable-at-EOF forever).  Past
           [max_conns] the listener drops out of the set too: further
           clients wait in the listen backlog instead of pushing an fd
           past FD_SETSIZE, where [select] would raise and take the
           whole service down. *)
        let fds =
          List.filter_map
            (fun c -> if c.alive && not c.eof then Some c.fd else None)
            t.conns
        in
        let fds =
          if List.length t.conns < t.cfg.max_conns then t.listen_fd :: fds
          else fds
        in
        match Unix.select fds [] [] 0.1 with
        | readable, _, _ ->
            List.iter
              (fun fd ->
                if fd = t.listen_fd then accept_conn t
                else
                  match List.find_opt (fun c -> c.fd = fd) t.conns with
                  | Some conn -> service_conn t conn
                  | None -> ())
              readable;
            reap t
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      ; (* SIGUSR1 lands as an EINTR out of select; the handler only
           sets a flag and the dump happens here, on the acceptor,
           outside signal context. *)
        if Atomic.get t.dump_requested then begin
          Atomic.set t.dump_requested false;
          dump_flight ()
        end
      done;
      (* Drain: close the door, let the workers finish what is queued
         and in flight, under the drain deadline. *)
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink t.cfg.socket_path
       with Unix.Unix_error _ -> ());
      let drained = Supervisor.drain t.sup ~deadline_ms:t.cfg.drain_ms in
      (* Workers are quiet now: flush handler-owned state (the durable
         store's WAL fsync) while the process is still in charge. *)
      (match t.on_drain with None -> () | Some f -> f ());
      (* Every reply is out (or abandoned with its worker past the
         deadline); close what is left under each connection's write
         lock so a straggling writer finds [alive] false rather than a
         recycled descriptor. *)
      List.iter
        (fun c ->
          Mutex.protect c.wmu (fun () ->
              c.alive <- false;
              try Unix.close c.fd with Unix.Unix_error _ -> ()))
        t.conns;
      t.conns <- [];
      if !(t.flight_dump) then dump_flight ();
      if drained then 0 else 1
    with e ->
      Printf.eprintf "argus serve: internal error: %s\n%!"
        (Printexc.to_string e);
      2
  in
  (* Flush counters/spans to whatever sinks are configured. *)
  Argus_obs.Obs.finish ();
  code

let make ?(handler = Handlers.handle) ?extra_stats ?on_drain cfg =
  let listen_fd = bind_listen cfg in
  let flight_dump = ref false in
  let sup_config =
    {
      Supervisor.default_config with
      Supervisor.jobs = cfg.jobs;
      queue_capacity = cfg.queue_capacity;
      breaker_failures = cfg.breaker_failures;
      breaker_cooldown_ms = cfg.breaker_cooldown_ms;
      budget =
        {
          Supervisor.default_deadline_ms = cfg.default_deadline_ms;
          max_deadline_ms = cfg.max_deadline_ms;
          max_fuel = cfg.max_fuel;
        };
      slow_ms = cfg.slow_ms;
      on_crash = (fun () -> if !flight_dump then dump_flight ());
    }
  in
  let sup = Supervisor.create ~config:sup_config ~handler () in
  {
    cfg;
    sup;
    listen_fd;
    stop = Atomic.make false;
    conns = [];
    next_id = 0;
    next_trace = 0;
    flight_dump;
    dump_requested = Atomic.make false;
    extra_stats;
    on_drain;
  }

let run ?handler ?extra_stats ?on_drain cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = make ?handler ?extra_stats ?on_drain cfg in
  t.flight_dump := true;
  let request_stop _ = Atomic.set t.stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle (fun _ -> Atomic.set t.dump_requested true));
  Printf.eprintf "argus serve: listening on %s (jobs=%d, queue=%d)\n%!"
    cfg.socket_path cfg.jobs cfg.queue_capacity;
  serve_loop t

type handle = { t : t; domain : int Domain.t }

let spawn ?handler ?extra_stats ?on_drain cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = make ?handler ?extra_stats ?on_drain cfg in
  { t; domain = Domain.spawn (fun () -> serve_loop t) }

let stop h =
  Atomic.set h.t.stop true;
  Domain.join h.domain
