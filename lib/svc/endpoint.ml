type t = Unix_path of string | Tcp of string * int

let of_string s =
  if s = "" then Error "empty endpoint"
  else if String.contains s '/' then Ok (Unix_path s)
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_path s)
    | Some i ->
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        let numeric =
          port <> "" && String.for_all (fun c -> c >= '0' && c <= '9') port
        in
        if host = "" then
          Error (Printf.sprintf "endpoint %S: empty host" s)
        else if not numeric then Ok (Unix_path s)
        else
          let p = int_of_string port in
          if p < 0 || p > 65535 then
            Error (Printf.sprintf "endpoint %S: port out of range" s)
          else Ok (Tcp (host, p))

let to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let pp fmt t = Format.pp_print_string fmt (to_string t)

let resolve host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  with
  | { Unix.ai_addr; _ } :: _ -> Some ai_addr
  | [] -> (
      (* No IPv4 answer: take whatever family resolves. *)
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr; _ } :: _ -> Some ai_addr
      | [] -> None)

(* Non-blocking connect under a deadline: connect returns EINPROGRESS,
   select on writability, then SO_ERROR tells whether the handshake
   succeeded.  A plain blocking connect would hang for the kernel
   default (minutes) against a black-holed address — exactly the
   hostile case the client must bound. *)
let connect_deadline fd addr timeout_ms =
  Unix.set_nonblock fd;
  let finish () = Unix.clear_nonblock fd in
  match Unix.connect fd addr with
  | () ->
      finish ();
      Ok ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
    -> (
      let timeout = if timeout_ms <= 0. then -1. else timeout_ms /. 1000. in
      match Unix.select [] [ fd ] [] timeout with
      | _, [ _ ], _ -> (
          match Unix.getsockopt_error fd with
          | None ->
              finish ();
              Ok ()
          | Some err -> Error (Unix.error_message err))
      | _ -> Error "connect timed out"
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let connect ?(timeout_ms = 5000.) t =
  let mk dom = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
  let attempt fd addr =
    match connect_deadline fd addr timeout_ms with
    | Ok () -> Ok fd
    | Error e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" (to_string t) e)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" (to_string t)
                 (Printexc.to_string e))
  in
  match t with
  | Unix_path p -> attempt (mk Unix.PF_UNIX) (Unix.ADDR_UNIX p)
  | Tcp (_, 0) ->
      Error (Printf.sprintf "connect %s: port 0 is listen-only" (to_string t))
  | Tcp (host, port) -> (
      match resolve host port with
      | None ->
          Error (Printf.sprintf "connect %s: host does not resolve"
                   (to_string t))
      | Some addr -> (
          let dom = Unix.domain_of_sockaddr addr in
          let fd = mk dom in
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          match attempt fd addr with
          | Ok fd -> Ok fd
          | Error e -> Error e))
