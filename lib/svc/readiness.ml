external poll_read_stub : Unix.file_descr array -> int -> int -> int array
  = "argus_poll_read"

external nofile_raise_stub : int -> int = "argus_nofile_raise"
external poll_available_stub : unit -> bool = "argus_poll_available"

let poll_available () = poll_available_stub ()
let nofile_raise want = nofile_raise_stub want

type backend = Poll | Select

(* Dense array of registered fds plus an fd -> slot table: add appends,
   remove swaps the last entry into the vacated slot.  The array is
   passed to the poll stub as-is (fds are small ints on Unix), so a
   wait allocates nothing proportional to the registered set beyond the
   kernel call itself. *)
type t = {
  be : backend;
  mutable fds : Unix.file_descr array;
  mutable n : int;
  slots : (Unix.file_descr, int) Hashtbl.t;
}

let create ?backend () =
  let be =
    match backend with
    | Some b -> b
    | None -> if poll_available () then Poll else Select
  in
  {
    be;
    fds = Array.make 64 Unix.stdin;
    n = 0;
    slots = Hashtbl.create 64;
  }

let backend t = t.be
let backend_name t = match t.be with Poll -> "poll" | Select -> "select"
let registered t = t.n
let mem t fd = Hashtbl.mem t.slots fd

let add t fd =
  if not (Hashtbl.mem t.slots fd) then begin
    if t.n = Array.length t.fds then begin
      let bigger = Array.make (2 * t.n) Unix.stdin in
      Array.blit t.fds 0 bigger 0 t.n;
      t.fds <- bigger
    end;
    t.fds.(t.n) <- fd;
    Hashtbl.replace t.slots fd t.n;
    t.n <- t.n + 1
  end

let remove t fd =
  match Hashtbl.find_opt t.slots fd with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.slots fd;
      let last = t.n - 1 in
      if slot <> last then begin
        let moved = t.fds.(last) in
        t.fds.(slot) <- moved;
        Hashtbl.replace t.slots moved slot
      end;
      t.n <- last

let wait_poll t ~timeout_ms =
  let timeout =
    if timeout_ms < 0. then -1
    else if timeout_ms = 0. then 0
    else max 1 (int_of_float (Float.ceil timeout_ms))
  in
  let ready = poll_read_stub t.fds t.n timeout in
  (* Indices were computed against the array we passed; [t] is
     single-owner so nothing mutated it during the call. *)
  Array.fold_left (fun acc i -> t.fds.(i) :: acc) [] ready

let wait_select t ~timeout_ms =
  let fds = Array.to_list (Array.sub t.fds 0 t.n) in
  let timeout = if timeout_ms < 0. then -1. else timeout_ms /. 1000. in
  match Unix.select fds [] [] timeout with
  | readable, _, _ -> readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let wait t ~timeout_ms =
  if t.n = 0 then begin
    (* Nothing registered: just sleep out the timeout (a signal still
       interrupts).  select with empty sets is the portable sleep; an
       infinite timeout sleeps in bounded chunks so the caller can
       still notice a stop flag. *)
    let secs =
      if timeout_ms < 0. then 3600. else max 0. (timeout_ms /. 1000.)
    in
    (try ignore (Unix.select [] [] [] secs)
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    []
  end
  else
    match t.be with
    | Poll -> wait_poll t ~timeout_ms
    | Select -> wait_select t ~timeout_ms
