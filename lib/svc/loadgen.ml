module Prng = Argus_core.Prng
module Json = Argus_core.Json

type config = {
  endpoints : Endpoint.t list;
  duration_s : float;
  rate : float;
  clients : int;
  chaos : bool;
  seed : int;
}

let default_config endpoints =
  { endpoints; duration_s = 10.; rate = 200.; clients = 4; chaos = false;
    seed = 42 }

type result = {
  wall_s : float;
  offered : int;
  resolved : int;
  ok : int;
  shed : int;
  taxonomy : (string * int) list;
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  chaos_conns : int;
  client_counters : (string * int) list;
}

let now_s () = Unix.gettimeofday ()

(* --- per-worker accounting, merged after the joins --- *)

type tally = {
  mutable issued : int;
  tax : (string, int) Hashtbl.t;
  mutable lats : float list; (* milliseconds *)
}

let new_tally () = { issued = 0; tax = Hashtbl.create 8; lats = [] }

let record t bucket lat_ms =
  Hashtbl.replace t.tax bucket
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.tax bucket));
  if lat_ms >= 0. then t.lats <- lat_ms :: t.lats

(* --- the request mix --- *)

let valid_source = {|case "lg" { goal G1 "the load holds" { undeveloped } }|}
let broken_source = {|case "lg" { goal G1 |}

let pick_request rng ~id =
  match Prng.int rng 20 with
  | 0 | 1 -> Protocol.request ~id Protocol.Health
  | 2 | 3 -> Protocol.request ~id Protocol.Stats
  | 4 | 5 ->
      (* Parse errors resolve as an ok response with exit 1 — still a
         full round-trip through the diagnostics path. *)
      Protocol.request ~id ~source:broken_source ~filename:"lg.arg"
        Protocol.Check
  | _ ->
      Protocol.request ~id ~source:valid_source ~filename:"lg.arg"
        Protocol.Check

let request_line req = Json.to_string (Protocol.request_to_json req)

let bucket_of_response (resp : Protocol.response) =
  match resp.Protocol.outcome with
  | Ok _ -> "ok"
  | Error (code, _) -> code

(* --- retrying workers: Client-driven, one call at a time --- *)

(* Open-loop schedule: [next] advances by exponential steps from the
   anchor regardless of how long calls take; a slow stretch leaves a
   backlog of overdue arrivals that are then issued back-to-back. *)
let retry_worker ~eps ~rng ~t_end ~rate_per ~wid () =
  let client = Client.create ~overall_deadline_ms:5_000. eps in
  let tally = new_tally () in
  let next = ref (now_s ()) in
  let n = ref 0 in
  let rec loop () =
    next := !next +. Prng.exponential rng ~rate:rate_per;
    if !next < t_end && now_s () < t_end then begin
      let now = now_s () in
      if !next > now then Unix.sleepf (!next -. now);
      incr n;
      tally.issued <- tally.issued + 1;
      let req = pick_request rng ~id:(Printf.sprintf "w%d-%d" wid !n) in
      let t0 = now_s () in
      let bucket =
        match Client.call_request client req with
        | Ok resp -> bucket_of_response resp
        | Error e -> Client.error_code e
        | exception _ -> "closed"
      in
      record tally bucket ((now_s () -. t0) *. 1000.);
      loop ()
    end
  in
  loop ();
  Client.close client;
  tally

(* --- the pipelining worker: raw connection, batched frames --- *)

type rawconn = { rfd : Unix.file_descr; rbuf : Buffer.t }

let close_raw rc = try Unix.close rc.rfd with Unix.Unix_error _ -> ()

let raw_connect eps =
  let n = Array.length eps in
  let rec walk k =
    if k >= n then None
    else
      match Endpoint.connect ~timeout_ms:1_000. eps.(k) with
      | Ok fd ->
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25
           with Unix.Unix_error _ -> ());
          Some { rfd = fd; rbuf = Buffer.create 4096 }
      | Error _ -> walk (k + 1)
  in
  walk 0

let raw_read_line rc ~deadline_at =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let data = Buffer.contents rc.rbuf in
    match String.index_opt data '\n' with
    | Some nl ->
        let line = String.sub data 0 nl in
        Buffer.clear rc.rbuf;
        Buffer.add_substring rc.rbuf data (nl + 1)
          (String.length data - nl - 1);
        Ok line
    | None ->
        if now_s () >= deadline_at then Error "timeout"
        else (
          match Unix.read rc.rfd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "closed"
          | n ->
              Buffer.add_subbytes rc.rbuf chunk 0 n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              go ()
          | exception Unix.Unix_error _ -> Error "closed")
  in
  go ()

let raw_send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* Pipelining emerges from the open-loop schedule: every arrival that
   is currently due goes out in one write; the batch's responses are
   then collected together.  The server sees true multi-frame reads. *)
let pipeline_worker ~eps ~rng ~t_end ~rate_per ~wid () =
  let eps = Array.of_list eps in
  let tally = new_tally () in
  let next = ref (now_s ()) in
  let n = ref 0 in
  let conn = ref None in
  let rec due acc =
    (* At least one arrival per batch; then everything already due. *)
    if !next < t_end && (acc = 0 || !next <= now_s ()) then begin
      next := !next +. Prng.exponential rng ~rate:rate_per;
      due (acc + 1)
    end
    else acc
  in
  let rec loop () =
    if now_s () >= t_end then ()
    else
      let batch = due 0 in
      if batch = 0 then ()
      else begin
        let now = now_s () in
        (* [next] already points past the batch; wait for the batch's
           first arrival only if we are ahead of schedule. *)
        let first_at = !next in
        if batch = 1 && first_at > now then
          Unix.sleepf (Float.min (first_at -. now) (t_end -. now));
        tally.issued <- tally.issued + batch;
        let lines =
          String.concat ""
            (List.init batch (fun _ ->
                 incr n;
                 request_line
                   (pick_request rng ~id:(Printf.sprintf "p%d-%d" wid !n))
                 ^ "\n"))
        in
        let rc =
          match !conn with
          | Some rc -> Some rc
          | None ->
              conn := raw_connect eps;
              !conn
        in
        (match rc with
        | None ->
            for _ = 1 to batch do record tally "connect" (-1.) done;
            Unix.sleepf 0.05
        | Some rc ->
            let t0 = now_s () in
            if not (raw_send_all rc.rfd lines) then begin
              for _ = 1 to batch do record tally "closed" (-1.) done;
              close_raw rc;
              conn := None
            end
            else begin
              let deadline_at = now_s () +. 5_000. /. 1000. in
              let rec collect k =
                if k < batch then
                  match raw_read_line rc ~deadline_at with
                  | Ok line ->
                      let bucket =
                        match Protocol.response_of_line line with
                        | Ok resp -> bucket_of_response resp
                        | Error _ -> "bad-response"
                      in
                      record tally bucket ((now_s () -. t0) *. 1000.);
                      collect (k + 1)
                  | Error kind ->
                      (* Everything still outstanding resolves to the
                         failure bucket; the connection is done for. *)
                      for _ = k + 1 to batch do
                        record tally kind (-1.)
                      done;
                      close_raw rc;
                      conn := None
              in
              collect 0
            end);
        loop ()
      end
  in
  loop ();
  (match !conn with Some rc -> close_raw rc | None -> ());
  tally

(* --- the misbehaving-client menagerie --- *)

type misbehaviour = Dribbler | Midframe | Neverread | Garbage

let misbehaviours = [ Dribbler; Midframe; Neverread; Garbage ]

let misbehave kind ~eps ~rng ~t_end () =
  let eps = Array.of_list eps in
  let conns = ref 0 in
  let one = Bytes.create 1 in
  let line =
    request_line (pick_request rng ~id:"evil") ^ "\n"
  in
  while now_s () < t_end do
    match raw_connect eps with
    | None -> Unix.sleepf 0.05
    | Some rc ->
        incr conns;
        (try
           (match kind with
           | Dribbler ->
               (* One byte every 50 ms: a legitimate-looking frame
                  that will never complete before any sane read
                  deadline. *)
               let stop_at = Float.min t_end (now_s () +. 2.) in
               let i = ref 0 in
               while now_s () < stop_at && !i < String.length line do
                 Bytes.set one 0 line.[!i];
                 ignore (Unix.write rc.rfd one 0 1);
                 incr i;
                 Unix.sleepf 0.05
               done
           | Midframe ->
               let cut = 1 + Prng.int rng (String.length line - 1) in
               ignore
                 (raw_send_all rc.rfd (String.sub line 0 cut));
               Unix.sleepf (0.005 +. Prng.float rng *. 0.02)
           | Neverread ->
               for _ = 1 to 4 do
                 ignore (raw_send_all rc.rfd line)
               done;
               Unix.sleepf (Float.min 0.5 (Float.max 0. (t_end -. now_s ())))
           | Garbage ->
               let b =
                 String.init 256 (fun _ ->
                     Char.chr (Prng.int rng 256))
               in
               ignore (raw_send_all rc.rfd (b ^ "\n"));
               Unix.sleepf 0.02)
         with _ -> ());
        close_raw rc
  done;
  !conns

(* --- quantiles and the merge --- *)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let run cfg =
  if cfg.endpoints = [] then invalid_arg "Loadgen.run: no endpoints";
  if cfg.rate <= 0. then invalid_arg "Loadgen.run: rate must be positive";
  if cfg.duration_s <= 0. then
    invalid_arg "Loadgen.run: duration must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let root = Prng.create cfg.seed in
  let t0 = now_s () in
  let t_end = t0 +. cfg.duration_s in
  let workers = max 1 cfg.clients in
  let rate_per = cfg.rate /. float_of_int (workers + 1) in
  let retriers =
    List.init workers (fun w ->
        Domain.spawn
          (retry_worker ~eps:cfg.endpoints ~rng:(Prng.stream root w) ~t_end
             ~rate_per ~wid:w))
  in
  let pipeliner =
    Domain.spawn
      (pipeline_worker ~eps:cfg.endpoints
         ~rng:(Prng.stream root workers)
         ~t_end ~rate_per ~wid:workers)
  in
  let menagerie =
    if not cfg.chaos then []
    else
      List.mapi
        (fun i kind ->
          Domain.spawn
            (misbehave kind ~eps:cfg.endpoints
               ~rng:(Prng.stream root (1000 + i))
               ~t_end))
        misbehaviours
  in
  let tallies = List.map Domain.join retriers @ [ Domain.join pipeliner ] in
  let chaos_conns =
    List.fold_left (fun acc d -> acc + Domain.join d) 0 menagerie
  in
  let wall_s = now_s () -. t0 in
  let tax = Hashtbl.create 8 in
  let offered = List.fold_left (fun acc t -> acc + t.issued) 0 tallies in
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace tax k
            (v + Option.value ~default:0 (Hashtbl.find_opt tax k)))
        t.tax)
    tallies;
  let taxonomy =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tax [] |> List.sort compare
  in
  let resolved = List.fold_left (fun acc (_, v) -> acc + v) 0 taxonomy in
  let bucket k = Option.value ~default:0 (Hashtbl.find_opt tax k) in
  let ok = bucket "ok" in
  let shed = bucket "svc/overloaded" + bucket "svc/breaker-open" in
  let lats =
    Array.of_list (List.concat_map (fun t -> t.lats) tallies)
  in
  Array.sort compare lats;
  {
    wall_s;
    offered;
    resolved;
    ok;
    shed;
    taxonomy;
    throughput_rps = (if wall_s > 0. then float_of_int ok /. wall_s else 0.);
    p50_ms = quantile lats 0.5;
    p99_ms = quantile lats 0.99;
    max_ms = (if Array.length lats = 0 then 0. else lats.(Array.length lats - 1));
    chaos_conns;
    client_counters =
      List.filter
        (fun (n, _) -> String.length n > 11 && String.sub n 0 11 = "svc.client.")
        (Argus_obs.Metrics.counters ());
  }

let result_to_json cfg r =
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ( "endpoints",
              Json.List
                (List.map
                   (fun e -> Json.Str (Endpoint.to_string e))
                   cfg.endpoints) );
            ("duration_s", Json.Num cfg.duration_s);
            ("rate", Json.Num cfg.rate);
            ("clients", Json.int cfg.clients);
            ("chaos", Json.Bool cfg.chaos);
            ("seed", Json.int cfg.seed);
          ] );
      ("wall_s", Json.Num r.wall_s);
      ("offered", Json.int r.offered);
      ("resolved", Json.int r.resolved);
      ("ok", Json.int r.ok);
      ("shed", Json.int r.shed);
      ("throughput_rps", Json.Num r.throughput_rps);
      ("p50_ms", Json.Num r.p50_ms);
      ("p99_ms", Json.Num r.p99_ms);
      ("max_ms", Json.Num r.max_ms);
      ("chaos_conns", Json.int r.chaos_conns);
      ( "taxonomy",
        Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) r.taxonomy) );
      ( "client_counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.int v)) r.client_counters) );
    ]

let pp ppf r =
  Format.fprintf ppf
    "offered %d, resolved %d (%s), ok %d, shed %d@.%.1f req/s ok; latency \
     p50 %.2f ms, p99 %.2f ms, max %.2f ms@.chaos connections: %d@.taxonomy: %s@."
    r.offered r.resolved
    (if r.resolved = r.offered then "no request left behind"
     else "MISSING RESOLUTIONS")
    r.ok r.shed r.throughput_rps r.p50_ms r.p99_ms r.max_ms r.chaos_conns
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.taxonomy))
