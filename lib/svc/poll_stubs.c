/* poll(2) binding for the readiness engine, plus an RLIMIT_NOFILE
 * helper for the >FD_SETSIZE capacity tests.
 *
 * The interface is deliberately tiny: the OCaml side keeps a dense
 * int array of file descriptors and asks "which indices are ready to
 * read within this timeout?".  poll is stateless — the fd set is
 * passed on every call — so there is no kernel-side registration to
 * keep in sync, and the engine's add/remove stay pure OCaml. */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#ifndef _WIN32
#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>

/* argus_poll_read fds nfds timeout_ms -> ready index array.
 *
 * [fds] is an int array; only the first [nfds] entries are live.  A
 * negative timeout blocks indefinitely.  Readiness means POLLIN,
 * POLLHUP or POLLERR — hang-ups must wake the acceptor so it can reap.
 * EINTR returns the empty array (the caller recomputes deadlines and
 * re-enters); any other error raises Unix_error. */
CAMLprim value argus_poll_read(value v_fds, value v_nfds, value v_timeout)
{
  CAMLparam3(v_fds, v_nfds, v_timeout);
  CAMLlocal1(v_ready);
  int nfds = Int_val(v_nfds);
  int timeout = Int_val(v_timeout);
  struct pollfd *pfds;
  int i, rc, nready;

  if (nfds < 0) caml_invalid_argument("argus_poll_read: negative nfds");
  pfds = caml_stat_alloc(sizeof(struct pollfd) * (nfds > 0 ? nfds : 1));
  for (i = 0; i < nfds; i++) {
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = POLLIN;
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  rc = poll(pfds, (nfds_t)nfds, timeout);
  caml_acquire_runtime_system();

  if (rc < 0) {
    int err = errno;
    caml_stat_free(pfds);
    if (err == EINTR) {
      v_ready = caml_alloc_tuple(0);
      CAMLreturn(v_ready);
    }
    unix_error(err, "poll", Nothing);
  }

  nready = 0;
  for (i = 0; i < nfds; i++)
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) nready++;
  v_ready = caml_alloc_tuple(nready);
  nready = 0;
  for (i = 0; i < nfds; i++)
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
      Store_field(v_ready, nready++, Val_int(i));
  caml_stat_free(pfds);
  CAMLreturn(v_ready);
}

/* argus_nofile_raise want -> effective soft limit.
 *
 * Raise the soft RLIMIT_NOFILE toward [want] (clamped to the hard
 * limit, which an unprivileged process may always do) and return the
 * resulting soft limit.  The capacity tests use this so ">512
 * concurrent connections" holds even under the 1024-fd default of
 * stock CI runners.  Never raises: on any failure it just reports the
 * current soft limit. */
CAMLprim value argus_nofile_raise(value v_want)
{
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(v_want);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(1024);
  if (rl.rlim_cur < want) {
    rlim_t target = want;
    if (rl.rlim_max != RLIM_INFINITY && target > rl.rlim_max)
      target = rl.rlim_max;
    if (target > rl.rlim_cur) {
      struct rlimit nrl = rl;
      nrl.rlim_cur = target;
      if (setrlimit(RLIMIT_NOFILE, &nrl) == 0) rl.rlim_cur = target;
    }
  }
  if (rl.rlim_cur == RLIM_INFINITY) return Val_long(1 << 20);
  return Val_long((long)rl.rlim_cur);
}

CAMLprim value argus_poll_available(value unit)
{
  (void)unit;
  return Val_true;
}

#else /* _WIN32: select-only platform; the OCaml side falls back. */

CAMLprim value argus_poll_read(value v_fds, value v_nfds, value v_timeout)
{
  (void)v_fds; (void)v_nfds; (void)v_timeout;
  caml_failwith("argus_poll_read: unavailable on this platform");
}

CAMLprim value argus_nofile_raise(value v_want)
{
  (void)v_want;
  return Val_long(512);
}

CAMLprim value argus_poll_available(value unit)
{
  (void)unit;
  return Val_false;
}

#endif
