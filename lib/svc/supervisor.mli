(** Supervised worker pool: the "let it crash" core of [argus serve].

    A supervisor owns [jobs] long-lived worker domains pulling requests
    off a bounded {!Queue}.  The robustness contract (DESIGN.md §11):

    - a worker whose handler raises (a bug, or an {!Argus_rt.Fault}
      injection at the ["svc.request"] probe, keyed by request id)
      answers its in-flight request with a typed [rt/internal-error]
      response, then restarts — re-entering its pull loop after a
      capped, seeded-jitter backoff ({!Argus_rt.Retry.delay_ms}).  The
      rest of the queue is untouched;
    - admission refuses instead of blocking: past the queue's high-water
      mark a request is answered [svc/overloaded] immediately;
    - each request kind has an {!Argus_rt.Breaker}: after
      [breaker_failures] consecutive crashes of that kind, further
      requests of the kind are answered [svc/breaker-open] without
      touching a worker, until a cooldown admits a half-open trial;
    - each admitted request gets a fresh {!Argus_rt.Budget} minted from
      the server-side default, the client's override and the server
      max (the deadline clock starts at admission, so time spent
      queued counts against it).

    The clock and the backoff sleep are injectable, so unit tests
    replay restart and breaker schedules deterministically; replies are
    delivered on worker domains via the [reply] callback passed to
    {!submit} (the server's callback writes the response line under the
    connection's write lock).

    Counters: [svc.accepted], [svc.shed], [svc.breaker_open],
    [svc.restarts]; histograms [svc.request_latency_ms] (aggregate) and
    [svc.request_latency_ms.<op>] (per request kind); gauge
    [svc.queue_depth].

    Telemetry: every admission, shed, breaker transition, worker
    restart, drain and over-threshold slow request is also recorded in
    the {!flight} ring; a request with [trace = true] has its handler
    run under {!Argus_obs.Span.capture} and the resulting span tree
    spliced into the successful payload as ["trace"]. *)

type worker_state = Idle | Busy | Restarting

type budget_policy = {
  default_deadline_ms : float option;
      (** Deadline applied when the client sends none. *)
  max_deadline_ms : float option;
      (** Upper clamp on client-requested deadlines. *)
  max_fuel : int option;  (** Upper clamp on client-requested fuel. *)
}

type config = {
  jobs : int;  (** Worker domains (min 1). *)
  queue_capacity : int;
  restart_policy : Argus_rt.Retry.policy;
      (** Backoff between a worker crash and its restart;
          [max_attempts] is ignored — workers always restart. *)
  breaker_failures : int;  (** [<= 0] disables the breakers. *)
  breaker_cooldown_ms : float;
  budget : budget_policy;
  slow_ms : float option;
      (** Requests slower than this (admission to reply, ms) get a
          ["slow"] flight-recorder event; [None] disables. *)
  on_crash : unit -> unit;
      (** Called on a worker domain after a crash's typed reply is out
          and the restart is booked — the server hooks a flight-recorder
          dump here.  Exceptions are swallowed. *)
  now_ms : unit -> float;
  sleep_ms : float -> unit;
}

val default_config : config
(** jobs 1, capacity 64, {!Argus_rt.Retry.default_policy} restarts,
    breaker 5 failures / 1 s cooldown, no budget limits, no slow
    threshold, no crash hook, real clock and sleep. *)

val flight : Argus_obs.Ring.t
(** The service flight recorder (ring ["svc.flight"], capacity 512). *)

type t

val create :
  ?config:config ->
  handler:
    (Protocol.request -> budget:Argus_rt.Budget.t option -> Protocol.response) ->
  unit ->
  t

val submit :
  t -> Protocol.request -> reply:(Protocol.response -> unit) -> unit
(** Never blocks.  Exactly one [reply] per submission, from a worker
    domain on success/crash or synchronously from the caller on
    shedding, breaker refusal or drain ([svc/draining]). *)

val queue_depth : t -> int
val worker_states : t -> (worker_state * int) array
(** Per worker: state and consecutive-restart count. *)

val restarts : t -> int
(** Total worker restarts since creation. *)

val breaker_states : t -> (string * Argus_rt.Breaker.state) list
(** One entry per request kind seen so far, sorted by kind. *)

val accepting : t -> bool

val await_idle : t -> unit
(** Block until no request is queued or in flight.  (Test and bench
    synchronisation point; the server uses {!drain}.) *)

val drain : t -> deadline_ms:float -> bool
(** Stop accepting, let queued and in-flight work finish, join the
    workers.  [false] when the deadline expired with workers still
    busy (their domains are then left to die with the process).
    Idempotent. *)

val worker_state_to_string : worker_state -> string
