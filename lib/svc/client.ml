module Retry = Argus_rt.Retry
module Counter = Argus_obs.Metrics.Counter
module Gauge = Argus_obs.Metrics.Gauge

type error =
  | Connect_failed of string
  | Timeout of string
  | Closed of string
  | Bad_response of string

let error_message = function
  | Connect_failed m -> Printf.sprintf "cannot connect: %s" m
  | Timeout m -> Printf.sprintf "deadline expired: %s" m
  | Closed m -> Printf.sprintf "connection lost: %s" m
  | Bad_response m -> Printf.sprintf "bad response: %s" m

let error_code = function
  | Connect_failed _ -> "connect"
  | Timeout _ -> "timeout"
  | Closed _ -> "closed"
  | Bad_response _ -> "bad-response"

let c_retries = Counter.make "svc.client.retries"
let c_failover = Counter.make "svc.client.failover"
let c_stale = Counter.make "svc.client.stale_pooled"
let g_pool_idle = Gauge.make "svc.client.pool_idle"

(* A pooled connection keeps its read buffer: a response can arrive in
   pieces across reads, and any residue after the response line means
   the server desynced — such a connection is never pooled again. *)
type pconn = { pfd : Unix.file_descr; pbuf : Buffer.t }

type t = {
  eps : Endpoint.t array;
  policy : Retry.policy;
  overall_ms : float;
  pool_size : int;
  mu : Mutex.t;
  pool : (int, pconn list) Hashtbl.t;
  mutable preferred : int;
      (** Endpoint index to try first — advanced past an endpoint that
          failed mid-exchange, so the next attempt (and the next call)
          starts at the survivor: failover memory. *)
}

let default_policy =
  {
    Retry.default_policy with
    Retry.max_attempts = 12;
    base_delay_ms = 25.;
    max_delay_ms = 400.;
  }

let create ?(policy = default_policy) ?(overall_deadline_ms = 30_000.)
    ?(pool_size = 2) eps =
  if eps = [] then invalid_arg "Client.create: empty endpoint list";
  {
    eps = Array.of_list eps;
    policy;
    overall_ms = overall_deadline_ms;
    pool_size;
    mu = Mutex.create ();
    pool = Hashtbl.create 4;
    preferred = 0;
  }

let endpoints t = Array.to_list t.eps

let now_ms () = Unix.gettimeofday () *. 1000.

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let take_pooled t idx =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.pool idx with
      | Some (pc :: rest) ->
          Hashtbl.replace t.pool idx rest;
          Gauge.add g_pool_idle (-1);
          Some pc
      | _ -> None)

let return_pooled t idx pc =
  let pooled =
    Buffer.length pc.pbuf = 0
    && Mutex.protect t.mu (fun () ->
           let cur =
             Option.value ~default:[] (Hashtbl.find_opt t.pool idx)
           in
           if List.length cur < t.pool_size then begin
             Hashtbl.replace t.pool idx (pc :: cur);
             Gauge.add g_pool_idle 1;
             true
           end
           else false)
  in
  if not pooled then close_fd pc.pfd

let close t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.iter
        (fun _ pcs ->
          List.iter
            (fun pc ->
              Gauge.add g_pool_idle (-1);
              close_fd pc.pfd)
            pcs)
        t.pool;
      Hashtbl.reset t.pool)

(* --- one request/response exchange on an open connection --- *)

type exchange_failure =
  | Stale of string
      (** Died before yielding a single response byte — on a pooled
          connection this means "the pool entry was dead", a free
          retry. *)
  | Fail of string  (** Died mid-exchange or timed out. *)

let set_timeouts fd ms =
  let s = Float.max 0.05 (ms /. 1000.) in
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
   with Unix.Unix_error _ -> ());
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
  with Unix.Unix_error _ -> ()

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          Error (off > 0, Unix.error_message e)
  in
  go 0

(* Read one '\n'-terminated line into/out of [pc.pbuf].  [deadline_at]
   caps the whole wait: SO_RCVTIMEO bounds each read, and the loop
   re-checks the clock so dribbled bytes cannot extend the wait
   forever. *)
let recv_line pc ~deadline_at =
  let chunk = Bytes.create 65536 in
  let rec go got_any =
    let data = Buffer.contents pc.pbuf in
    match String.index_opt data '\n' with
    | Some nl ->
        let line = String.sub data 0 nl in
        Buffer.clear pc.pbuf;
        Buffer.add_substring pc.pbuf data (nl + 1)
          (String.length data - nl - 1);
        Ok line
    | None ->
        if now_ms () >= deadline_at then Error (got_any, "response timed out")
        else (
          match Unix.read pc.pfd chunk 0 (Bytes.length chunk) with
          | 0 -> Error (got_any, "server closed the connection")
          | n ->
              Buffer.add_subbytes pc.pbuf chunk 0 n;
              go true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go got_any
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              Error (got_any, "response timed out")
          | exception Unix.Unix_error (e, _, _) ->
              Error (got_any, Unix.error_message e))
  in
  go (Buffer.length pc.pbuf > 0)

let exchange pc line ~attempt_ms ~deadline_at =
  set_timeouts pc.pfd attempt_ms;
  match send_all pc.pfd (line ^ "\n") with
  | Error (false, e) -> Error (Stale (Printf.sprintf "write: %s" e))
  | Error (true, e) -> Error (Fail (Printf.sprintf "write: %s" e))
  | Ok () -> (
      match recv_line pc ~deadline_at:(Float.min deadline_at (now_ms () +. attempt_ms)) with
      | Error (false, e) -> Error (Stale e)
      | Error (true, e) -> Error (Fail e)
      | Ok resp_line -> Ok resp_line)

(* --- the retry/failover driver --- *)

let seq_echoed (resp : Protocol.response) =
  match resp.Protocol.outcome with
  | Error _ -> true (* typed refusals are authoritative, nothing committed *)
  | Ok (_, payload) -> List.mem_assoc "seq" payload

let call ?op t line =
  let is_patch = op = Some Protocol.Patch in
  let deadline_at = now_ms () +. t.overall_ms in
  let n = Array.length t.eps in
  let key = Endpoint.to_string t.eps.(0) in
  let last_err = ref (Connect_failed "no attempt made") in
  let resent = ref false in
  (* Patch audit rule: an ack that may be the answer to a *resent*
     frame must carry the seq echo (see .mli). *)
  let admit resp =
    if is_patch && !resent && not (seq_echoed resp) then
      Error
        (Bad_response
           "retried patch ack carries no seq echo; cannot audit for a \
            duplicate commit")
    else Ok resp
  in
  let rec attempt_loop attempt =
    if attempt > t.policy.Retry.max_attempts then Error !last_err
    else
      let remaining = deadline_at -. now_ms () in
      if remaining <= 0. then
        Error (Timeout (error_message !last_err))
      else begin
        (* Carve this attempt's slice out of what is left, so early
           attempts cannot starve later ones of their chance. *)
        let attempts_left = t.policy.Retry.max_attempts - attempt + 1 in
        let attempt_ms =
          Float.min remaining
            (Float.max 50. (remaining /. float_of_int attempts_left))
        in
        let backoff_and_next err =
          last_err := err;
          Counter.incr c_retries;
          let d = Retry.delay_ms t.policy ~key ~attempt in
          let d = Float.min d (Float.max 0. (deadline_at -. now_ms ())) in
          if d > 0. then Unix.sleepf (d /. 1000.);
          attempt_loop (attempt + 1)
        in
        (* Stale pooled connections are consumed (and discarded) here
           without burning an attempt; at most [pool_size] of them can
           exist per endpoint, so this terminates. *)
        let rec via_pool () =
          match take_pooled t t.preferred with
          | None -> None
          | Some pc -> (
              match exchange pc line ~attempt_ms ~deadline_at with
              | Ok resp_line -> Some (`Line (t.preferred, pc, resp_line))
              | Error (Stale _) ->
                  Counter.incr c_stale;
                  close_fd pc.pfd;
                  resent := true;
                  via_pool ()
              | Error (Fail e) ->
                  close_fd pc.pfd;
                  resent := true;
                  Some (`Fail e))
        in
        let fresh () =
          (* Walk the endpoint list from the preferred one: connect
             failover.  The first endpoint that completes a connect
             gets the exchange. *)
          let rec walk k =
            if k >= n then `NoConnect
            else
              let idx = (t.preferred + k) mod n in
              match
                Endpoint.connect ~timeout_ms:attempt_ms t.eps.(idx)
              with
              | Error e ->
                  last_err := Connect_failed e;
                  walk (k + 1)
              | Ok fd ->
                  if idx <> t.preferred then begin
                    Counter.incr c_failover;
                    t.preferred <- idx
                  end;
                  let pc = { pfd = fd; pbuf = Buffer.create 256 } in
                  (match exchange pc line ~attempt_ms ~deadline_at with
                  | Ok resp_line -> `Line (idx, pc, resp_line)
                  | Error (Stale e) | Error (Fail e) ->
                      close_fd pc.pfd;
                      resent := true;
                      `Fail e)
          in
          walk 0
        in
        let outcome =
          match via_pool () with
          | Some (`Line _ as l) -> l
          | Some (`Fail e) -> `Fail e
          | None -> fresh ()
        in
        match outcome with
        | `Line (idx, pc, resp_line) -> (
            match Protocol.response_of_line resp_line with
            | Ok resp -> (
                return_pooled t idx pc;
                match admit resp with
                | Ok resp -> Ok resp
                | Error e -> Error e)
            | Error e ->
                (* Desynced stream: never reuse, retry on a fresh
                   connection. *)
                close_fd pc.pfd;
                resent := true;
                backoff_and_next (Bad_response e))
        | `Fail e ->
            (* The endpoint we were exchanging with died mid-call:
               start the next attempt at its neighbour. *)
            t.preferred <- (t.preferred + 1) mod n;
            backoff_and_next (Closed e)
        | `NoConnect -> backoff_and_next !last_err
      end
  in
  attempt_loop 1

let call_request t req =
  let line = Argus_core.Json.to_string (Protocol.request_to_json req) in
  call ~op:req.Protocol.op t line
