(** The standard request handlers: one service request in, one
    response out, running the same engines as the CLI subcommands.

    [handle] never writes to channels and never raises on bad {e
    input} — malformed sources come back as an [Ok] response with exit
    1 and a diagnostics payload, mirroring the CLI exit taxonomy.  A
    genuine crash (a bug, or an injected fault) escapes to the
    supervisor, which is the whole point: the supervisor owns the
    crash protocol.

    Budget ownership: the supervisor mints the budget, so [handle]
    appends the budget's diagnostics to its report but the exhaustion
    state is recorded on the supervisor's value. *)

val handle :
  Protocol.request -> budget:Argus_rt.Budget.t option -> Protocol.response
(** [Health] requests are answered by the server before the queue and
    are a [svc/bad-request] error here.  The store ops ([Put], [Patch],
    [Verdict]) are [svc/bad-request] too — this is the stateless
    handler; start the server with a store to serve them. *)

val with_store :
  Argus_store.Durable.t ->
  Protocol.request ->
  budget:Argus_rt.Budget.t option ->
  Protocol.response
(** The stateful handler: [Put] parses the source (one unnamed case)
    and interns it, answering its digest; [Patch] applies the edit
    batch to the addressed case, answering the new digest; [Verdict]
    answers the stored case's report (byte-identical to a [check] of
    the same source), its root confidence, and whether it came
    entirely from cache.  Unknown digests are [svc/unknown-digest],
    bad edit batches are [svc/bad-request], and a store tripped into
    read-only by a disk failure answers [svc/store-read-only] with
    the cause.  Everything else delegates to {!handle}.  The store
    serialises internally, so one store may back all workers. *)
