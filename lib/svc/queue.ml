let g_depth = Argus_obs.Metrics.Gauge.make "svc.queue_depth"

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  items : 'a Stdlib.Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Stdlib.Queue.create ();
    capacity = max 0 capacity;
    closed = false;
  }

let capacity t = t.capacity

let depth t = Mutex.protect t.mu (fun () -> Stdlib.Queue.length t.items)

let push t x =
  Mutex.protect t.mu (fun () ->
      if t.closed || Stdlib.Queue.length t.items >= t.capacity then `Shed
      else begin
        Stdlib.Queue.add x t.items;
        Argus_obs.Metrics.Gauge.set g_depth (Stdlib.Queue.length t.items);
        Condition.signal t.nonempty;
        `Accepted
      end)

let pop t =
  Mutex.protect t.mu (fun () ->
      let rec wait () =
        if not (Stdlib.Queue.is_empty t.items) then begin
          let x = Stdlib.Queue.take t.items in
          Argus_obs.Metrics.Gauge.set g_depth (Stdlib.Queue.length t.items);
          Some x
        end
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mu;
          wait ()
        end
      in
      wait ())

let close t =
  Mutex.protect t.mu (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed t = Mutex.protect t.mu (fun () -> t.closed)
