(** The serve wire protocol: line-delimited JSON over a local socket.

    One request per line, one response line per request, in completion
    order (the [id] field correlates them).  The grammar is documented
    in DESIGN.md §11; this module is the single codec both the server
    and the [argus call] client use, so the two cannot drift.

    Requests:
    {v
    {"id": "r1", "op": "check", "source": "case \"t\" { ... }",
     "filename": "t.arg", "ruleset": "standard", "lints": false,
     "deadline_ms": 500, "fuel": 100000}
    v}
    [op] is one of [check], [prove] (needs ["goal"]), [fallacies],
    [probe], [health], [stats] — plus the stateful store ops [put]
    (source in, digest out), [patch] (["digest"] + ["edits"] in, new
    digest out) and [verdict] (["digest"] in, report + confidence
    out), answered only by a server started with a store.  An edit is
    [{"op": "set-text", "id", "text"}], [{"op": "add-node", "id",
    "type", "text", "status"?, "evidence"?}], [{"op": "remove-node",
    "id"}] or [{"op": "link"|"unlink", "kind":
    "supported-by"|"in-context-of", "src", "dst"}]; a malformed edit
    rejects the whole request as [svc/bad-request].  Everything but
    [op] is optional: a
    missing [id] is assigned by the server, [source] defaults to empty.
    ["trace": true] asks the server to capture the request's span tree
    and return it in the payload; ["trace_id"] names the request for
    correlation (minted by the server when absent and echoed in the
    response); ["format"] selects the [stats] exposition (["json"],
    the default, or ["prometheus"]).

    Responses: [{"id", "trace_id"?, "status": "ok", "exit": 0|1,
    ...payload}] or [{"id", "trace_id"?, "status": "error", "code",
    "message"}].  Error codes: [svc/bad-request], [svc/overloaded],
    [svc/breaker-open], [svc/draining], [rt/internal-error].

    Both decoders ignore unknown fields, so either end can grow the
    schema without breaking the other. *)

type op =
  | Check
  | Prove
  | Fallacies
  | Probe
  | Health
  | Stats
  | Put
  | Patch
  | Verdict

type request = {
  id : string;
  op : op;
  source : string;
  filename : string;  (** Label used in diagnostics; default ["<request>"]. *)
  goal : string option;  (** [prove] only. *)
  ruleset : string;  (** [check] only: ["standard"] or ["denney-pai"]. *)
  lints : bool;  (** [check] only. *)
  deadline_ms : float option;  (** Client deadline; the server clamps it. *)
  fuel : int option;
  trace : bool;  (** Capture and return this request's span tree. *)
  trace_id : string option;  (** Correlation id; server-minted if absent. *)
  format : string option;  (** [stats] only: ["json"] or ["prometheus"]. *)
  digest : string option;  (** [patch]/[verdict]: the case address. *)
  edits : Argus_store.Store.edit list;  (** [patch] only. *)
}

type response = {
  rid : string;
  outcome : (int * (string * Argus_core.Json.t) list, string * string) result;
      (** [Ok (exit_code, payload)] or [Error (code, message)]. *)
  rtrace_id : string option;
      (** Echo of the request's (possibly server-minted) trace id. *)
}

val op_to_string : op -> string
val op_of_string : string -> op option

val request : ?id:string -> ?source:string -> ?filename:string ->
  ?goal:string -> ?ruleset:string -> ?lints:bool -> ?deadline_ms:float ->
  ?fuel:int -> ?trace:bool -> ?trace_id:string -> ?format:string ->
  ?digest:string -> ?edits:Argus_store.Store.edit list -> op -> request

val edit_to_json : Argus_store.Store.edit -> Argus_core.Json.t
val edit_of_json : Argus_core.Json.t -> (Argus_store.Store.edit, string) result

val request_to_json : request -> Argus_core.Json.t

val request_of_json : Argus_core.Json.t -> (request, string) result
(** Rejects unknown [op], non-object payloads and ill-typed fields —
    including a [fuel] that is not a non-negative integral number in
    range, or a [deadline_ms] that is negative or not finite.  A
    missing [id] becomes [""] (the server assigns one). *)

val request_of_line : string -> (request, string) result

val ok : ?trace_id:string -> id:string -> exit_code:int ->
  (string * Argus_core.Json.t) list -> response

val error : ?trace_id:string -> id:string -> code:string -> string -> response

val with_trace_id : string option -> response -> response
(** Stamp (or clear) the echoed trace id — the server applies this to
    every response on its way out, wherever it was built. *)

val response_to_json : response -> Argus_core.Json.t
val response_to_line : response -> string
(** Compact JSON plus the trailing newline. *)

val response_of_line : string -> (response, string) result
(** The client-side decoder. *)

val exit_code_of_response : response -> int
(** The CLI taxonomy: an [Ok] response carries its own 0/1; any
    [Error] response is 2. *)
