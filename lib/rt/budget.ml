module Diagnostic = Argus_core.Diagnostic

type reason = Deadline | Fuel | Depth | Solutions
type exhaustion = { reason : reason; engine : string; steps : int }

(* Limits are encoded without options so the hot checks are integer
   compares: [max_int] fuel/depth/solutions and [infinity] deadline
   mean "absent".  [limited] short-circuits every probe on the shared
   {!unlimited} value, which therefore is never written to and is safe
   to share across domains. *)
type t = {
  limited : bool;
  deadline : float;  (** absolute [Unix.gettimeofday] time *)
  fuel : int;
  max_depth : int;
  max_solutions : int;
  mutable steps : int;
  mutable solutions : int;
  mutable state : exhaustion option;
  mutable depth_hit : bool;
}

type spec = {
  deadline_ms : float option;
  fuel : int option;
  max_depth : int option;
  max_solutions : int option;
}

let spec_unlimited =
  { deadline_ms = None; fuel = None; max_depth = None; max_solutions = None }

let spec_of_env () =
  let float_env name =
    match Sys.getenv_opt name with
    | None -> None
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some v when v > 0. -> Some v
        | _ -> None)
  in
  let int_env name =
    match Sys.getenv_opt name with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v > 0 -> Some v
        | _ -> None)
  in
  {
    deadline_ms = float_env "ARGUS_DEADLINE_MS";
    fuel = int_env "ARGUS_FUEL";
    max_depth = None;
    max_solutions = None;
  }

let spec_is_unlimited s =
  s.deadline_ms = None && s.fuel = None && s.max_depth = None
  && s.max_solutions = None

let c_exhausted = Argus_obs.Counter.make "rt.budget_exhausted"
let c_deadline_hits = Argus_obs.Counter.make "rt.deadline_hits"

let unlimited =
  {
    limited = false;
    deadline = infinity;
    fuel = max_int;
    max_depth = max_int;
    max_solutions = max_int;
    steps = 0;
    solutions = 0;
    state = None;
    depth_hit = false;
  }

let make ?deadline_ms ?fuel ?max_depth ?max_solutions () =
  let pos_int v = match v with Some n when n > 0 -> n | _ -> max_int in
  let deadline =
    match deadline_ms with
    | Some ms when ms > 0. -> Unix.gettimeofday () +. (ms /. 1000.)
    | _ -> infinity
  in
  let fuel = pos_int fuel
  and max_depth = pos_int max_depth
  and max_solutions = pos_int max_solutions in
  let limited =
    deadline < infinity || fuel < max_int || max_depth < max_int
    || max_solutions < max_int
  in
  if not limited then unlimited
  else
    {
      limited;
      deadline;
      fuel;
      max_depth;
      max_solutions;
      steps = 0;
      solutions = 0;
      state = None;
      depth_hit = false;
    }

let of_spec s =
  make ?deadline_ms:s.deadline_ms ?fuel:s.fuel ?max_depth:s.max_depth
    ?max_solutions:s.max_solutions ()

let is_limited b = b.limited

let exhaust b ~engine reason =
  if b.state = None then begin
    b.state <- Some { reason; engine; steps = b.steps };
    Argus_obs.Counter.incr c_exhausted;
    if reason = Deadline then Argus_obs.Counter.incr c_deadline_hits
  end

(* The wall clock is consulted once per [deadline_mask + 1] steps:
   [Unix.gettimeofday] costs ~25 ns, a counter bump ~1. *)
let deadline_mask = 255

let tick b ~engine =
  if not b.limited then true
  else
    match b.state with
    | Some _ -> false
    | None ->
        let s = b.steps + 1 in
        b.steps <- s;
        if s > b.fuel then begin
          exhaust b ~engine Fuel;
          false
        end
        else if
          b.deadline < infinity
          && s land deadline_mask = 0
          && Unix.gettimeofday () > b.deadline
        then begin
          exhaust b ~engine Deadline;
          false
        end
        else true

let ticks b ~engine n =
  if not b.limited then true
  else
    match b.state with
    | Some _ -> false
    | None ->
        let s = b.steps + n in
        b.steps <- s;
        if s > b.fuel then begin
          exhaust b ~engine Fuel;
          false
        end
        else if b.deadline < infinity && Unix.gettimeofday () > b.deadline
        then begin
          exhaust b ~engine Deadline;
          false
        end
        else true

let depth_cap (b : t) = b.max_depth

let note_depth b ~engine =
  ignore engine;
  if b.limited then b.depth_hit <- true

let note_solution b ~engine =
  if not b.limited then true
  else begin
    let n = b.solutions + 1 in
    b.solutions <- n;
    if n >= b.max_solutions then begin
      exhaust b ~engine Solutions;
      false
    end
    else b.state = None
  end

let steps b = b.steps
let exhausted b = b.state
let depth_pruned b = b.depth_hit

let reason_to_string = function
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Depth -> "depth"
  | Solutions -> "solution cap"

let diagnostics b =
  let fatal =
    match b.state with
    | None -> []
    | Some { reason; engine; steps } ->
        [
          Diagnostic.warningf ~code:"rt/budget-exhausted"
            "budget-exhausted: %s after %d steps (%s); result may be \
             incomplete"
            engine steps (reason_to_string reason);
        ]
  in
  let depth =
    if b.depth_hit then
      [
        Diagnostic.warning ~code:"rt/budget-exhausted"
          "budget-exhausted: branches pruned at the depth cap; result may \
           be incomplete";
      ]
    else []
  in
  fatal @ depth
