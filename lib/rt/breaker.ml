type state = Closed | Open | Half_open

type t = {
  bname : string;
  failures : int;
  cooldown_ms : float;
  now_ms : unit -> float;
  mu : Mutex.t;
  mutable st : state;
  mutable consecutive : int;
  mutable opened_at : float;
}

let c_opened = Argus_obs.Counter.make "rt.breaker_open"

let default_now_ms () = Unix.gettimeofday () *. 1000.

let make ?(failures = 5) ?(cooldown_ms = 1000.) ?(now_ms = default_now_ms)
    ~name () =
  {
    bname = name;
    failures;
    cooldown_ms;
    now_ms;
    mu = Mutex.create ();
    st = Closed;
    consecutive = 0;
    opened_at = 0.;
  }

let name t = t.bname

(* Caller holds [t.mu]. *)
let refresh t =
  if t.st = Open && t.now_ms () -. t.opened_at >= t.cooldown_ms then
    t.st <- Half_open

let state t =
  Mutex.protect t.mu (fun () ->
      refresh t;
      t.st)

let admit t =
  Mutex.protect t.mu (fun () ->
      refresh t;
      match t.st with
      | Closed -> true
      | Open -> false
      | Half_open ->
          (* One trial at a time: mark it taken by moving opened_at
             forward so a concurrent admit sees a fresh cooldown. *)
          if t.opened_at = Float.infinity then false
          else begin
            t.opened_at <- Float.infinity;
            true
          end)

let cancel t =
  Mutex.protect t.mu (fun () ->
      if t.st = Half_open && t.opened_at = Float.infinity then
        t.opened_at <- 0.)

let success t =
  Mutex.protect t.mu (fun () ->
      t.consecutive <- 0;
      t.st <- Closed)

let open_now t =
  t.st <- Open;
  t.opened_at <- t.now_ms ();
  Argus_obs.Counter.incr c_opened

let failure t =
  Mutex.protect t.mu (fun () ->
      t.consecutive <- t.consecutive + 1;
      match t.st with
      | Half_open -> open_now t
      | Closed when t.failures > 0 && t.consecutive >= t.failures ->
          open_now t
      | Closed | Open -> ())

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
