module Prng = Argus_core.Prng

type policy = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  multiplier : float;
  jitter : float;
  seed : int;
}

let default_policy =
  {
    max_attempts = 5;
    base_delay_ms = 10.;
    max_delay_ms = 1000.;
    multiplier = 2.0;
    jitter = 0.5;
    seed = 0;
  }

let c_retries = Argus_obs.Counter.make "rt.retries"

let delay_ms policy ~key ~attempt =
  let attempt = max 1 attempt in
  let raw =
    policy.base_delay_ms
    *. (policy.multiplier ** float_of_int (attempt - 1))
  in
  let capped = Float.min policy.max_delay_ms raw in
  let jitter = Float.max 0. (Float.min 1. policy.jitter) in
  if jitter = 0. then capped
  else
    (* Same recipe as Fault.draw: the jitter fraction is pure in
       (seed, key, attempt), so schedules replay exactly. *)
    let g = Prng.create (policy.seed lxor Hashtbl.hash (key, attempt)) in
    capped *. (1. -. (jitter *. Prng.float g))

let run ?(policy = default_policy) ?(sleep_ms = fun ms -> Unix.sleepf (ms /. 1000.))
    ?(retryable = fun _ -> true) ?(on_retry = fun ~attempt:_ _ -> ()) ~key f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception e ->
        if attempt >= max 1 policy.max_attempts || not (retryable e) then
          Error e
        else begin
          Argus_obs.Counter.incr c_retries;
          on_retry ~attempt e;
          sleep_ms (delay_ms policy ~key ~attempt);
          go (attempt + 1)
        end
  in
  go 1
