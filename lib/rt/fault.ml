module Prng = Argus_core.Prng

type spec = { probe : string; key : string option; rate : float; seed : int }

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected probe ->
        Some (Printf.sprintf "injected fault at probe %s" probe)
    | _ -> None)

let c_injected = Argus_obs.Counter.make "rt.faults_injected"

(* A plain ref, not an atomic: it is written at process start (or by
   [with_spec] before a test spawns its pool) and only read afterwards;
   domain spawn establishes the necessary happens-before. *)
let active : spec option ref = ref None

(* Invocation counter for unkeyed probes; atomic so parallel callers
   consume distinct draw indices. *)
let calls = Atomic.make 0

let set s =
  active := s;
  Atomic.set calls 0

let current () = !active

let parse_spec s =
  let fail () =
    Error
      (Printf.sprintf
         "malformed fault spec %S (expected probe[@key]:rate[:seed])" s)
  in
  match String.split_on_char ':' s with
  | [] | [ _ ] -> fail ()
  | probe_part :: rate_part :: rest -> (
      let seed_ok, seed =
        match rest with
        | [] -> (true, 0)
        | [ seed_part ] -> (
            match int_of_string_opt (String.trim seed_part) with
            | Some n -> (true, n)
            | None -> (false, 0))
        | _ -> (false, 0)
      in
      let probe, key =
        match String.index_opt probe_part '@' with
        | None -> (probe_part, None)
        | Some i ->
            ( String.sub probe_part 0 i,
              Some
                (String.sub probe_part (i + 1)
                   (String.length probe_part - i - 1)) )
      in
      match float_of_string_opt (String.trim rate_part) with
      | Some rate when seed_ok && probe <> "" && rate >= 0. ->
          Ok { probe; key; rate; seed }
      | _ -> fail ())

let configure_from_env () =
  match Sys.getenv_opt "ARGUS_FAULT" with
  | None | Some "" -> ()
  | Some s -> (
      match parse_spec s with
      | Ok spec -> set (Some spec)
      | Error msg -> Printf.eprintf "argus: ignoring ARGUS_FAULT: %s\n%!" msg)

let with_spec spec f =
  let previous = !active in
  set (Some spec);
  Fun.protect ~finally:(fun () -> set previous) f

(* The draw for a given index is a pure function of the seed and the
   probe identity — scheduling cannot perturb it. *)
let draw spec ~salt =
  spec.rate >= 1.0
  ||
  let g = Prng.create (spec.seed lxor Hashtbl.hash (spec.probe, salt)) in
  Prng.float g < spec.rate

let point ?key probe =
  match !active with
  | None -> ()
  | Some spec ->
      if
        String.equal spec.probe probe
        && (match spec.key with
           | None -> true
           | Some k -> (
               match key with Some k' -> String.equal k k' | None -> false))
        &&
        match key with
        | Some k -> draw spec ~salt:(`Key k)
        | None -> draw spec ~salt:(`Call (Atomic.fetch_and_add calls 1))
      then begin
        Argus_obs.Counter.incr c_injected;
        raise (Injected probe)
      end
