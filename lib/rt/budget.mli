(** Cooperative resource budgets for the engines.

    A budget bounds how much work an engine call may do — wall-clock
    deadline, step ("fuel") counter, recursion depth, solution count —
    and is checked at the engines' probe points.  Exhaustion never
    raises: the engine stops exploring, returns the partial result it
    has, and the budget records what gave out, so the caller can attach
    a structured [Diagnostic.warning] (code ["rt/budget-exhausted"]) to
    its report instead of hanging or crashing on adversarial input.

    Ownership convention: {e whoever creates the budget reports it} —
    engines thread the value through but never emit its diagnostics
    themselves, so a budget shared across several engine calls yields
    exactly one warning.

    A budget is single-domain mutable state: create one per task (the
    batch checker creates one per file), never share one across a
    {!Argus_par.Pool} fan-out.  {!unlimited} is the exception — it is
    never mutated and may be shared freely; every check against it is a
    single load-and-branch, which is what keeps the budgeted hot paths
    within the bench regression gate ([rt-budget-overhead-*]).

    Counters: [rt.budget_exhausted] (budgets that gave out),
    [rt.deadline_hits] (the subset that hit the wall clock). *)

type t

type reason =
  | Deadline  (** Wall-clock deadline passed. *)
  | Fuel  (** Step counter exhausted. *)
  | Depth  (** A branch was pruned at the budget's depth cap. *)
  | Solutions  (** The solution cap was reached; the result is truncated. *)

type exhaustion = { reason : reason; engine : string; steps : int }
(** What gave out, in which engine, after how many consumed steps. *)

(** A budget description, separate from the running state so the CLI
    can parse flags once and mint a fresh budget per file. *)
type spec = {
  deadline_ms : float option;  (** Relative to budget creation. *)
  fuel : int option;
  max_depth : int option;
  max_solutions : int option;
}

val spec_unlimited : spec

val spec_of_env : unit -> spec
(** [ARGUS_DEADLINE_MS] and [ARGUS_FUEL] (unparsable or non-positive
    values are ignored). *)

val spec_is_unlimited : spec -> bool

val make :
  ?deadline_ms:float ->
  ?fuel:int ->
  ?max_depth:int ->
  ?max_solutions:int ->
  unit ->
  t
(** A fresh budget; the deadline clock starts now.  Non-positive limits
    are treated as absent. *)

val of_spec : spec -> t

val unlimited : t
(** The shared no-limit budget: never exhausts, never mutated.  Engines
    use it as the default for their [?budget] parameters. *)

val is_limited : t -> bool

val tick : t -> engine:string -> bool
(** Consume one fuel step.  [false] means the budget is exhausted (now
    or previously) and the engine must stop and return what it has.
    The wall clock is consulted every 256 steps, so a pure-deadline
    budget still costs only a counter bump per probe. *)

val ticks : t -> engine:string -> int -> bool
(** Consume [n] steps at once (batch probe points, e.g. one LTL
    subformula labelling over [n] positions).  Checks the deadline
    unconditionally. *)

val depth_cap : t -> int
(** The depth limit, [max_int] when absent — engines clamp their own
    depth parameter with [min]. *)

val note_depth : t -> engine:string -> unit
(** Record that a branch was pruned at the budget's depth cap.  Unlike
    the other limits this is not fatal: the search goes on, but the
    result is marked incomplete and {!diagnostics} will say so. *)

val note_solution : t -> engine:string -> bool
(** Record one emitted solution.  [false] when this solution reaches
    the cap: the engine must stop enumerating and the result is marked
    truncated. *)

val steps : t -> int
val exhausted : t -> exhaustion option
(** The fatal exhaustion (deadline, fuel or solution cap), if any.
    When [None] and {!depth_pruned} is [false], the result of the
    budgeted call is complete — identical to the unbudgeted run. *)

val depth_pruned : t -> bool

val reason_to_string : reason -> string

val diagnostics : t -> Argus_core.Diagnostic.t list
(** Zero, one or two warnings with code ["rt/budget-exhausted"], e.g.
    ["budget-exhausted: sat after 10000 steps (fuel)"]. *)
