(** Per-request-class circuit breaker.

    A breaker guards one class of work (the service layer keeps one per
    request kind).  It opens after [failures] {e consecutive} failures
    — further work is refused immediately instead of being handed to a
    worker — and half-opens once [cooldown_ms] has elapsed, letting a
    single trial through: the trial's success closes the breaker, its
    failure re-opens it (and restarts the cooldown clock).  This keeps
    a poisoned input class (every request of kind X crashes its
    worker) from consuming the whole pool's throughput with
    crash-restart cycles, while still re-probing the class
    periodically.

    The clock is injectable so unit tests drive open → half-open →
    closed transitions deterministically; the service passes the real
    monotonic clock.  All operations are thread-safe (admission happens
    on the acceptor thread, outcomes on worker domains).

    Counter: [rt.breaker_open] (transitions into [Open]). *)

type state = Closed | Open | Half_open

type t

val make :
  ?failures:int ->
  ?cooldown_ms:float ->
  ?now_ms:(unit -> float) ->
  name:string ->
  unit ->
  t
(** [failures] defaults to 5 ([<= 0] disables the breaker: it never
    opens); [cooldown_ms] defaults to 1000; [now_ms] defaults to a
    monotonic wall-clock in milliseconds.  [name] labels the breaker in
    health reports. *)

val name : t -> string
val state : t -> state
(** Consults the clock: an [Open] breaker whose cooldown has elapsed
    reports (and becomes) [Half_open]. *)

val admit : t -> bool
(** May this unit of work proceed?  [Closed] admits; [Open] refuses
    until the cooldown elapses, at which point the breaker half-opens
    and admits exactly one trial; [Half_open] refuses while that trial
    is in flight. *)

val cancel : t -> unit
(** Return an {!admit}-granted half-open trial that will not run after
    all (e.g. the request was shed at the queue): another trial becomes
    grantable immediately.  No-op in other states. *)

val success : t -> unit
(** Record a completed unit: closes a half-open breaker, resets the
    consecutive-failure count. *)

val failure : t -> unit
(** Record a failed unit: re-opens a half-open breaker immediately,
    opens a closed one at the failure threshold. *)

val state_to_string : state -> string
