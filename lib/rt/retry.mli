(** Generic retry with exponential backoff and seeded jitter.

    The service layer uses this in two places: restarting a crashed
    worker (the supervision loop of {!Argus_svc.Supervisor}) and
    transient I/O such as a client connecting to a server that is still
    binding its socket.  Delays grow geometrically from
    [base_delay_ms] up to [max_delay_ms] and are then jittered
    *deterministically*: the jitter draw is a pure function of
    [(seed, key, attempt)] through {!Argus_core.Prng}, so a test that
    fixes the policy seed sees the exact same backoff schedule on every
    run — the same discipline as {!Argus_rt.Fault}.

    Counter: [rt.retries] (one per re-attempt, not per call). *)

type policy = {
  max_attempts : int;  (** Total attempts, including the first. *)
  base_delay_ms : float;  (** Delay before the second attempt. *)
  max_delay_ms : float;  (** Cap on any single delay. *)
  multiplier : float;  (** Geometric growth factor. *)
  jitter : float;
      (** Fraction of the delay randomised away, in [0, 1]: the
          effective delay is [d * (1 - jitter * u)] with [u] uniform in
          [0, 1). *)
  seed : int;  (** Jitter PRNG seed. *)
}

val default_policy : policy
(** 5 attempts, 10 ms base, 1 s cap, 2.0 multiplier, 0.5 jitter,
    seed 0. *)

val delay_ms : policy -> key:string -> attempt:int -> float
(** Delay to sleep after failed attempt number [attempt] (1-based).
    Pure: same policy, key and attempt give the same delay. *)

val run :
  ?policy:policy ->
  ?sleep_ms:(float -> unit) ->
  ?retryable:(exn -> bool) ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  key:string ->
  (unit -> 'a) ->
  ('a, exn) result
(** [run ~key f] calls [f] up to [policy.max_attempts] times, sleeping
    [delay_ms] between attempts.  A non-[retryable] exception (default:
    everything is retryable) aborts immediately; the result is the
    first success or the last exception.  [sleep_ms] defaults to a real
    [Unix.sleepf] — tests inject a recorder.  [on_retry] fires before
    each re-attempt. *)
