(** Deterministic fault injection at named probe points.

    The engines and the pool call {!point} at their probe points (the
    table lives in DESIGN.md §10).  Normally this is a single load and
    branch — injection is off unless activated, either from the
    environment ([ARGUS_FAULT=probe[@key]:rate:seed]) or
    programmatically ({!with_spec}), in which case a matching probe
    raises {!Injected} with the configured probability.

    Draws are deterministic, never scheduling-dependent: a probe called
    with [?key] derives its decision purely from [(seed, probe, key)],
    so e.g. ["check.file"] keyed by filename fails the same files
    whatever [--jobs] is; an unkeyed probe draws from [(seed, probe,
    k)] where [k] is a global invocation counter — the multiset of
    firing draws is fixed by the seed, though which caller receives
    which draw may vary under parallelism.  With [rate >= 1] a matching
    probe always fires.

    Counter: [rt.faults_injected]. *)

type spec = {
  probe : string;  (** Probe point name, e.g. ["pool.chunk"]. *)
  key : string option;
      (** When set, only probe calls with this exact key match. *)
  rate : float;  (** Injection probability in [0, 1]. *)
  seed : int;
}

exception Injected of string
(** Raised by a firing probe; the payload is the probe name. *)

val parse_spec : string -> (spec, string) result
(** [probe:rate:seed] with an optional [@key] suffix on the probe name,
    e.g. ["check.file@g3.arg:1:42"] or ["pool.chunk:0.5:7"].  The seed
    may be omitted ([probe:rate]) and defaults to 0. *)

val set : spec option -> unit
(** Activate (or with [None] deactivate) injection process-wide.  Call
    before spawning worker domains. *)

val current : unit -> spec option

val configure_from_env : unit -> unit
(** Parse [ARGUS_FAULT] and {!set} the result; a malformed value is
    reported on stderr and ignored. *)

val with_spec : spec -> (unit -> 'a) -> 'a
(** Run with injection active, restoring the previous state after
    (also on exception) — the test harness entry point. *)

val point : ?key:string -> string -> unit
(** Declare a probe point.  No-op unless a matching spec is active and
    the deterministic draw fires, in which case it raises
    {!Injected}. *)
