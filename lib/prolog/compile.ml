module Term = Argus_logic.Term
module Symbol = Argus_core.Symbol

(* WAM-lite clause compilation.  Each clause becomes a flat instruction
   array: the head is pre-flattened into get/unify instructions executed
   against a stack of subject subterms seeded with the goal (so the same
   code handles read mode — matching existing structure — and write mode
   — building structure into an unbound goal argument), and each body
   goal becomes a postfix build program over the clause's register file.
   Variables are register indices; the functor table below adds
   switch-on-symbol first-argument dispatch per predicate.  [Exec] runs
   the result; [Engine.solve] stays as the interpreted oracle. *)

(* Head instructions, executed left to right, one subject consumed per
   instruction.  A subject is the (dereferenced) runtime subterm the
   instruction must match; [H_struct] pushes its argument subterms so
   the following instructions match the subtree in preorder. *)
type instr =
  | H_const of Symbol.t  (** Subject must be the atom, or bind it. *)
  | H_struct of Symbol.t * int
      (** Subject must have this functor/arity (push its arguments), or
          be unbound (bind a fresh open structure and push its cells). *)
  | H_var of int  (** First occurrence: store the subject in a register. *)
  | H_val of int  (** Later occurrence: full unify against the register. *)

(* Body-goal instructions: postfix builders producing the goal term. *)
type ginstr =
  | P_var of int  (** Push the register (allocating it if still unset). *)
  | P_const of Symbol.t
  | P_struct of Symbol.t * int  (** Pop [n] arguments, push the structure. *)

(* What a clause head's first argument can match — same discrimination
   as the interpreted engine's index, so both admit identical candidate
   lists (and count identical index hits/misses). *)
type farg = FAny | FSym of Symbol.t * int

type cclause = {
  c_idx : int;  (** Position in the source program (derivations cite it). *)
  c_head : instr array;  (** Pre-flattened head, preorder. *)
  c_body : ginstr array array;  (** One postfix program per body goal. *)
  c_nregs : int;
  c_first : farg;
}

module Key_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal ((a1, b1) : t) (a2, b2) = a1 = a2 && b1 = b2
  let hash ((a, b) : t) = (a * 65599) + b
end)

type pred = {
  pr_bucket : cclause array;
      (** This predicate/arity's candidates in program order,
          variable-head clauses merged in. *)
  pr_switch : cclause array Key_tbl.t;
      (** First-argument functor/arity -> admitted candidates. *)
  pr_anyfirst : cclause array;
      (** Candidates admitting any first argument — the switch result
          for functors no clause head mentions. *)
}

type t = {
  cp_total : int;  (** Clauses in the source program (miss accounting). *)
  cp_preds : pred Key_tbl.t;
  cp_var_heads : cclause array;  (** For goals matching no predicate. *)
  cp_all : cclause array;  (** Every clause, program order (variable goals). *)
}

let clause_count cp = cp.cp_total

let compile_clause idx (c : Program.clause) =
  let regs = Hashtbl.create 8 in
  let nregs = ref 0 in
  let reg v =
    match Hashtbl.find_opt regs v with
    | Some i -> (i, false)
    | None ->
        let i = !nregs in
        incr nregs;
        Hashtbl.add regs v i;
        (i, true)
  in
  let head_code = ref [] in
  let rec flat_head t =
    match t with
    | Term.Var v ->
        let i, first = reg v in
        head_code := (if first then H_var i else H_val i) :: !head_code
    | Term.App (f, []) -> head_code := H_const f :: !head_code
    | Term.App (f, args) ->
        head_code := H_struct (f, List.length args) :: !head_code;
        List.iter flat_head args
  in
  flat_head c.Program.head;
  let body_goal g =
    let code = ref [] in
    let rec go = function
      | Term.Var v ->
          let i, _ = reg v in
          code := P_var i :: !code
      | Term.App (f, []) -> code := P_const f :: !code
      | Term.App (f, args) ->
          List.iter go args;
          code := P_struct (f, List.length args) :: !code
    in
    go g;
    Array.of_list (List.rev !code)
  in
  let body = List.map body_goal c.Program.body in
  let first =
    match c.Program.head with
    | Term.Var _ | Term.App (_, []) -> FAny
    | Term.App (_, first :: _) -> (
        match first with
        | Term.Var _ -> FAny
        | Term.App (f, args) -> FSym (f, List.length args))
  in
  {
    c_idx = idx;
    c_head = Array.of_list (List.rev !head_code);
    c_body = Array.of_list body;
    c_nregs = !nregs;
    c_first = first;
  }

(* The head's principal functor, [None] for a bare-variable head. *)
let head_key c =
  match c.c_head.(0) with
  | H_const f -> Some ((f :> int), 0)
  | H_struct (f, n) -> Some ((f :> int), n)
  | H_var _ | H_val _ -> None

let admits_first g k c =
  match c.c_first with
  | FAny -> true
  | FSym (h, m) -> Symbol.equal g h && m = k

let program_uncached (p : Program.t) =
  let all = Array.of_list (List.mapi compile_clause p) in
  let alist = Array.to_list all in
  let var_heads =
    Array.of_list (List.filter (fun c -> head_key c = None) alist)
  in
  let preds = Key_tbl.create 16 in
  Array.iter
    (fun c ->
      match head_key c with
      | None -> ()
      | Some key ->
          if not (Key_tbl.mem preds key) then begin
            let bucket =
              Array.of_list
                (List.filter
                   (fun c' ->
                     match head_key c' with
                     | None -> true (* variable heads resolve any goal *)
                     | Some key' -> key' = key)
                   alist)
            in
            let blist = Array.to_list bucket in
            let anyfirst =
              Array.of_list
                (List.filter (fun c' -> c'.c_first = FAny) blist)
            in
            let switch = Key_tbl.create 8 in
            Array.iter
              (fun c' ->
                match c'.c_first with
                | FAny -> ()
                | FSym (g, k) ->
                    let skey = ((g :> int), k) in
                    if not (Key_tbl.mem switch skey) then
                      Key_tbl.add switch skey
                        (Array.of_list
                           (List.filter (admits_first g k) blist)))
              bucket;
            Key_tbl.add preds key
              { pr_bucket = bucket; pr_switch = switch; pr_anyfirst = anyfirst }
          end)
    all;
  {
    cp_total = Array.length all;
    cp_preds = preds;
    cp_var_heads = var_heads;
    cp_all = all;
  }

(* Compiled-program cache.  Programs are immutable lists, so the
   compiled form of a given list value never goes stale; the cache is
   keyed on physical identity.  Unlike the one-entry cache PR 2 gave the
   interpreted engine, this one holds several programs per domain
   (Domain.DLS keeps it lock-free), so alternating queries over two
   programs — the corpus scans, the differential tests — no longer
   recompile on every call.  [prolog.compilations] counts actual
   builds; a steady value under a query workload means the cache is
   doing its job. *)
let c_compilations = Argus_obs.Counter.make "prolog.compilations"
let cache_capacity = 8

let cache_key : (Program.t * t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let program (p : Program.t) =
  let cache = Domain.DLS.get cache_key in
  let rec find = function
    | [] -> None
    | (q, cp) :: _ when q == p -> Some cp
    | _ :: rest -> find rest
  in
  match find !cache with
  | Some cp -> cp
  | None ->
      Argus_obs.Counter.incr c_compilations;
      let cp = program_uncached p in
      let entries = (p, cp) :: !cache in
      cache :=
        (if List.length entries > cache_capacity then
           List.filteri (fun i _ -> i < cache_capacity) entries
         else entries);
      cp

(* --- Query compilation --- *)

type query = {
  q_goals : ginstr array array;  (** One postfix program per goal. *)
  q_nregs : int;
  q_vars : (string * int) array;
      (** Query variable name -> register, first-occurrence order —
          what [Exec.solutions] reads bindings back through. *)
}

let query goals =
  let regs = Hashtbl.create 8 in
  let order = ref [] in
  let nregs = ref 0 in
  let reg v =
    match Hashtbl.find_opt regs v with
    | Some i -> i
    | None ->
        let i = !nregs in
        incr nregs;
        Hashtbl.add regs v i;
        order := (v, i) :: !order;
        i
  in
  let goal g =
    let code = ref [] in
    let rec go = function
      | Term.Var v -> code := P_var (reg v) :: !code
      | Term.App (f, []) -> code := P_const f :: !code
      | Term.App (f, args) ->
          List.iter go args;
          code := P_struct (f, List.length args) :: !code
    in
    go g;
    Array.of_list (List.rev !code)
  in
  let gs = List.map goal goals in
  {
    q_goals = Array.of_list gs;
    q_nregs = !nregs;
    q_vars = Array.of_list (List.rev !order);
  }
