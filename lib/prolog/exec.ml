module Term = Argus_logic.Term
module Symbol = Argus_core.Symbol
module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

(* Bytecode executor for {!Compile}d programs.

   Runtime terms use destructive binding: a variable is a mutable cell,
   bound once and undone on backtracking via the trail, so resolving a
   goal never rebuilds substitution lists the way the interpreted
   engine does.  Backtracking is an explicit choice-point stack (one
   record per goal with untried candidates) instead of the
   interpreter's Seq-of-closures.

   The machine is counter- and budget-exact with [Engine.solve]: both
   admit identical candidate lists (hits/misses), tick the budget once
   per candidate tried, count one unification per candidate and one
   backtrack per failed head match, give body goals [depth - 1] and
   sibling goals the same depth, and emit solutions in identical order
   — the differential tests in test/prolog assert all of this. *)

let c_clause_tries = Argus_obs.Counter.make "prolog.clause_tries"
let c_unifications = Argus_obs.Counter.make "prolog.unifications"
let c_backtracks = Argus_obs.Counter.make "prolog.backtracks"
let c_depth_abandoned = Argus_obs.Counter.make "prolog.depth_abandonments"
let c_solutions = Argus_obs.Counter.make "prolog.solutions"
let c_index_hits = Argus_obs.Counter.make "prolog.index_hits"
let c_index_misses = Argus_obs.Counter.make "prolog.index_misses"
let c_compiled_calls = Argus_obs.Counter.make "prolog.compiled_calls"
let c_table_hits = Argus_obs.Counter.make "prolog.table_hits"

type rt = Struct of Symbol.t * rt array | Ref of cell
and cell = { mutable v : rt option; vid : int }

let rec deref t =
  match t with Ref { v = Some u; _ } -> deref u | _ -> t

(* Derivation skeleton filled in during the search: a node per resolved
   goal, children slots filled as the body goals are resolved in turn.
   Re-matching a goal after backtracking overwrites its slot with a
   node holding fresh child slots, so stale fills are unreachable and
   the slots read at solution time always describe the committed
   proof. *)
type node = { d_rt : rt; d_idx : int; d_children : node option ref array }
type gentry = { g_rt : rt; g_depth : int; g_slot : node option ref }

type kpt = {
  k_goals : gentry list;  (** Goal list whose head this point resolves. *)
  k_goal : rt;  (** The dereferenced selected goal. *)
  k_cands : Compile.cclause array;
  mutable k_next : int;
  k_trail : int;
}

type state = {
  mutable s_trail : cell array;
  mutable s_trail_top : int;
  mutable s_fresh : int;
  s_skel : bool;
      (** Whether to record the derivation skeleton.  Only [prove]
          reads it, so the decision entry points skip the per-resolution
          node and slot allocations entirely. *)
  (* Counter traffic batched into locals, flushed once per call — same
     reasoning as [Engine.provable]: a sharded increment costs ~10x a
     plain one. *)
  mutable s_tries : int;
  mutable s_unifs : int;
  mutable s_backs : int;
  mutable s_abandoned : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_sols : int;
}

let dummy_cell = { v = None; vid = -1 }

let new_state ~skel () =
  {
    s_trail = Array.make 64 dummy_cell;
    s_trail_top = 0;
    s_fresh = 0;
    s_skel = skel;
    s_tries = 0;
    s_unifs = 0;
    s_backs = 0;
    s_abandoned = 0;
    s_hits = 0;
    s_misses = 0;
    s_sols = 0;
  }

let flush st =
  let s = Argus_obs.Counter.current_shard () in
  Argus_obs.Counter.shard_add s c_clause_tries st.s_tries;
  Argus_obs.Counter.shard_add s c_unifications st.s_unifs;
  Argus_obs.Counter.shard_add s c_backtracks st.s_backs;
  Argus_obs.Counter.shard_add s c_depth_abandoned st.s_abandoned;
  Argus_obs.Counter.shard_add s c_index_hits st.s_hits;
  Argus_obs.Counter.shard_add s c_index_misses st.s_misses;
  Argus_obs.Counter.shard_add s c_solutions st.s_sols

let fresh_rt st =
  let c = { v = None; vid = st.s_fresh } in
  st.s_fresh <- st.s_fresh + 1;
  Ref c

let bind st c t =
  c.v <- Some t;
  let n = Array.length st.s_trail in
  if st.s_trail_top >= n then begin
    let bigger = Array.make (2 * n) dummy_cell in
    Array.blit st.s_trail 0 bigger 0 n;
    st.s_trail <- bigger
  end;
  st.s_trail.(st.s_trail_top) <- c;
  st.s_trail_top <- st.s_trail_top + 1

let undo st mark =
  while st.s_trail_top > mark do
    st.s_trail_top <- st.s_trail_top - 1;
    st.s_trail.(st.s_trail_top).v <- None
  done

let rec occurs c t =
  match deref t with
  | Ref c' -> c' == c
  | Struct (_, args) ->
      let n = Array.length args in
      let rec go i = i < n && (occurs c args.(i) || go (i + 1)) in
      go 0

(* General unification (register/subject collisions from non-linear
   heads, i.e. [H_val]).  Occurs check kept for parity with
   [Term.unify_under]. *)
let rec unify st a b =
  let a = deref a and b = deref b in
  match (a, b) with
  | Ref ca, Ref cb ->
      if ca == cb then true
      else begin
        bind st ca b;
        true
      end
  | Ref c, t | t, Ref c ->
      if occurs c t then false
      else begin
        bind st c t;
        true
      end
  | Struct (f, xs), Struct (g, ys) ->
      Symbol.equal f g
      && Array.length xs = Array.length ys
      && begin
           let n = Array.length xs in
           let rec go i = i >= n || (unify st xs.(i) ys.(i) && go (i + 1)) in
           go 0
         end

let push_args args rest =
  let acc = ref rest in
  for j = Array.length args - 1 downto 0 do
    acc := args.(j) :: !acc
  done;
  !acc

(* Run a clause's head code against the goal.  Subjects are consumed
   one per instruction; [H_struct] against an unbound subject switches
   that subtree into write mode by binding an open structure whose
   fresh cells become the next subjects. *)
let run_head st code goal regs =
  let n = Array.length code in
  let rec step i subjects =
    i >= n
    ||
    match subjects with
    | [] -> assert false
    | subj :: rest -> (
        match code.(i) with
        | Compile.H_var r ->
            regs.(r) <- Some (deref subj);
            step (i + 1) rest
        | Compile.H_val r -> (
            match regs.(r) with
            | Some t -> unify st t subj && step (i + 1) rest
            | None -> assert false)
        | Compile.H_const f -> (
            match deref subj with
            | Struct (g, args) ->
                Symbol.equal f g && Array.length args = 0 && step (i + 1) rest
            | Ref c ->
                bind st c (Struct (f, [||]));
                step (i + 1) rest)
        | Compile.H_struct (f, k) -> (
            match deref subj with
            | Struct (g, args) ->
                Symbol.equal f g
                && Array.length args = k
                && step (i + 1) (push_args args rest)
            | Ref c ->
                let args = Array.make k (Struct (f, [||])) in
                for j = 0 to k - 1 do
                  args.(j) <- fresh_rt st
                done;
                bind st c (Struct (f, args));
                step (i + 1) (push_args args rest)))
  in
  step 0 [ goal ]

let dummy_rt = Struct (Symbol.intern "", [||])

(* Build a body goal (postfix code) over the clause's registers.
   Registers the head never touched belong to body-only variables and
   materialise as fresh cells on first use. *)
let build st code (regs : rt option array) =
  let stack = ref [] in
  let n = Array.length code in
  for i = 0 to n - 1 do
    match code.(i) with
    | Compile.P_var r ->
        let t =
          match regs.(r) with
          | Some t -> t
          | None ->
              let t = fresh_rt st in
              regs.(r) <- Some t;
              t
        in
        stack := t :: !stack
    | Compile.P_const f -> stack := Struct (f, [||]) :: !stack
    | Compile.P_struct (f, k) ->
        let args = Array.make k dummy_rt in
        let s = ref !stack in
        for j = k - 1 downto 0 do
          match !s with
          | t :: tl ->
              args.(j) <- t;
              s := tl
          | [] -> assert false
        done;
        stack := Struct (f, args) :: !s
  done;
  match !stack with [ t ] -> t | _ -> assert false

(* Candidate dispatch — the compiled mirror of the interpreter's
   [admitted_candidates], admitting the same clauses in the same order
   for every goal (the arrays were precomputed per first-argument
   functor at compile time, so the per-goal work is two table hits). *)
let admitted (cp : Compile.t) g =
  match g with
  | Ref _ -> cp.Compile.cp_all
  | Struct (f, args) -> (
      let n = Array.length args in
      match Compile.Key_tbl.find_opt cp.Compile.cp_preds ((f :> int), n) with
      | None -> cp.Compile.cp_var_heads
      | Some pr ->
          if n = 0 then pr.Compile.pr_bucket
          else (
            match deref args.(0) with
            | Ref _ -> pr.Compile.pr_bucket
            | Struct (g0, gargs) -> (
                match
                  Compile.Key_tbl.find_opt pr.Compile.pr_switch
                    ((g0 :> int), Array.length gargs)
                with
                | Some arr -> arr
                | None -> pr.Compile.pr_anyfirst)))

type solution_action = Continue | Stop

(* The resolution loop.  [skip_level] selects the interpreter flavour
   being mirrored on budget exhaustion: [Engine.solve]'s lazy Seq still
   offers every remaining candidate one (failing) tick as it unwinds,
   while [Engine.provable] abandons a whole candidate list at the first
   failing tick — step counts must match whichever oracle the caller
   diffs against.  All calls are tail calls: deep searches cost heap
   (the choice-point list), not stack. *)
let search st (cp : Compile.t) goals0 ~skip_level ~budget ~budget_caps_depth
    ~on_solution =
  let cps = ref [] in
  let rec solve goals =
    match goals with
    | [] -> ( match on_solution () with Continue -> backtrack () | Stop -> ())
    | e :: _ ->
        if e.g_depth <= 0 then begin
          st.s_abandoned <- st.s_abandoned + 1;
          if budget_caps_depth then Budget.note_depth budget ~engine:"prolog";
          backtrack ()
        end
        else begin
          let g = deref e.g_rt in
          let cands = admitted cp g in
          let n = Array.length cands in
          st.s_hits <- st.s_hits + n;
          st.s_misses <- st.s_misses + (cp.Compile.cp_total - n);
          let k =
            {
              k_goals = goals;
              k_goal = g;
              k_cands = cands;
              k_next = 0;
              k_trail = st.s_trail_top;
            }
          in
          cps := k :: !cps;
          advance k
        end
  and advance k =
    if k.k_next >= Array.length k.k_cands then begin
      cps := List.tl !cps;
      backtrack ()
    end
    else begin
      let c = k.k_cands.(k.k_next) in
      k.k_next <- k.k_next + 1;
      if not (Budget.tick budget ~engine:"prolog") then
        if skip_level then begin
          cps := List.tl !cps;
          backtrack ()
        end
        else advance k
      else begin
        st.s_tries <- st.s_tries + 1;
        st.s_unifs <- st.s_unifs + 1;
        let regs = Array.make c.Compile.c_nregs None in
        if run_head st c.Compile.c_head k.k_goal regs then begin
          match k.k_goals with
          | [] -> assert false
          | e :: rest ->
              let nbody = Array.length c.Compile.c_body in
              let slots =
                if st.s_skel then begin
                  let slots = Array.init nbody (fun _ -> ref None) in
                  e.g_slot :=
                    Some
                      {
                        d_rt = e.g_rt;
                        d_idx = c.Compile.c_idx;
                        d_children = slots;
                      };
                  slots
                end
                else [||]
              in
              let depth' = e.g_depth - 1 in
              let entries = Array.make nbody e in
              for i = 0 to nbody - 1 do
                entries.(i) <-
                  {
                    g_rt = build st c.Compile.c_body.(i) regs;
                    g_depth = depth';
                    g_slot = (if st.s_skel then slots.(i) else e.g_slot);
                  }
              done;
              let rec cons i acc =
                if i < 0 then acc else cons (i - 1) (entries.(i) :: acc)
              in
              solve (cons (nbody - 1) rest)
        end
        else begin
          st.s_backs <- st.s_backs + 1;
          undo st k.k_trail;
          advance k
        end
      end
    end
  and backtrack () =
    match !cps with
    | [] -> ()
    | k :: _ ->
        undo st k.k_trail;
        advance k
  in
  solve goals0

let rec readback t =
  match deref t with
  | Struct (f, args) -> Term.App (f, List.map readback (Array.to_list args))
  | Ref c -> Term.Var ("_G" ^ string_of_int c.vid)

let rec extract (n : node) : Engine.derivation =
  {
    Engine.goal = readback n.d_rt;
    clause_index = n.d_idx;
    children =
      List.map
        (fun slot ->
          match !slot with Some m -> extract m | None -> assert false)
        (Array.to_list n.d_children);
  }

(* Instantiate a compiled query: one register file per run, goal terms
   built fresh so successive runs never see each other's bindings.
   Goals build front to back so fresh cells number in reading order. *)
let prepare st (q : Compile.query) depth =
  let qregs = Array.make q.Compile.q_nregs None in
  let ngoals = Array.length q.Compile.q_goals in
  let slots =
    if st.s_skel then Array.init ngoals (fun _ -> ref None)
    else Array.make ngoals (ref None)
  in
  let built = Array.make ngoals dummy_rt in
  for i = 0 to ngoals - 1 do
    built.(i) <- build st q.Compile.q_goals.(i) qregs
  done;
  let entries = ref [] in
  for i = ngoals - 1 downto 0 do
    entries :=
      { g_rt = built.(i); g_depth = depth; g_slot = slots.(i) } :: !entries
  done;
  (qregs, slots, !entries)

(* Decision tabling, WAM-lite edition of SLG tabling's answer tables:
   a [provable] verdict depends only on the compiled program, the
   compiled query and the depth cap — no binding escapes — so repeat
   decision queries (the corpus sweeps, the service's hot checks)
   answer from a small per-domain table keyed on physical identity.
   Only the boolean entry point tables (derivations and solution lists
   stay live), and only under an unlimited budget: a limited budget's
   ticks are observable and must be consumed by a real search.  Counted
   by [prolog.table_hits]; the span, fault probe and
   [prolog.compiled_calls] still fire on a hit, so tracing and fault
   injection see tabled calls too. *)
let table_capacity = 32

let table_key : (Compile.t * Compile.query * int * bool) list ref Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> ref [])

let run_provable ~max_depth ~budget cprog q =
  let st = new_state ~skel:false () in
  let budget_caps_depth = Budget.depth_cap budget <= max_depth in
  let max_depth = min max_depth (Budget.depth_cap budget) in
  let _qregs, _slots, goals = prepare st q max_depth in
  let found = ref false in
  let on_solution () =
    st.s_sols <- st.s_sols + 1;
    found := true;
    Stop
  in
  Fun.protect
    ~finally:(fun () -> flush st)
    (fun () ->
      search st cprog goals ~skip_level:true ~budget ~budget_caps_depth
        ~on_solution);
  !found

let provable ?(max_depth = 64) ?(budget = Budget.unlimited) cprog q =
  Argus_obs.Span.with_ ~name:"prolog.provable" @@ fun () ->
  Fault.point "prolog.provable";
  Argus_obs.Counter.incr c_compiled_calls;
  if Budget.is_limited budget then run_provable ~max_depth ~budget cprog q
  else begin
    let table = Domain.DLS.get table_key in
    let rec find = function
      | [] -> None
      | (p, q', d, r) :: _ when p == cprog && q' == q && d = max_depth ->
          Some r
      | _ :: rest -> find rest
    in
    match find !table with
    | Some r ->
        Argus_obs.Counter.incr c_table_hits;
        r
    | None ->
        let r = run_provable ~max_depth ~budget cprog q in
        let entries = (cprog, q, max_depth, r) :: !table in
        table :=
          (if List.length entries > table_capacity then
             List.filteri (fun i _ -> i < table_capacity) entries
           else entries);
        r
  end

let solutions ?(max_depth = 64) ?(budget = Budget.unlimited) ?(limit = 10)
    cprog q =
  Argus_obs.Span.with_ ~name:"prolog.solutions" @@ fun () ->
  Fault.point "prolog.solve";
  Argus_obs.Counter.incr c_compiled_calls;
  if limit <= 0 then []
  else begin
    let st = new_state ~skel:false () in
    let budget_caps_depth = Budget.depth_cap budget <= max_depth in
    let max_depth = min max_depth (Budget.depth_cap budget) in
    let qregs, _slots, goals = prepare st q max_depth in
    let out = ref [] in
    let count = ref 0 in
    let on_solution () =
      st.s_sols <- st.s_sols + 1;
      let bs =
        List.map
          (fun (v, r) ->
            ( v,
              match qregs.(r) with
              | Some t -> readback t
              | None -> Term.Var v ))
          (Array.to_list q.Compile.q_vars)
      in
      out := bs :: !out;
      incr count;
      if Budget.note_solution budget ~engine:"prolog" && !count < limit then
        Continue
      else Stop
    in
    Fun.protect
      ~finally:(fun () -> flush st)
      (fun () ->
        search st cprog goals ~skip_level:false ~budget ~budget_caps_depth
          ~on_solution);
    List.rev !out
  end

let prove ?(max_depth = 64) ?(budget = Budget.unlimited) cprog q =
  Argus_obs.Span.with_ ~name:"prolog.prove" @@ fun () ->
  Fault.point "prolog.solve";
  Argus_obs.Counter.incr c_compiled_calls;
  let st = new_state ~skel:true () in
  let budget_caps_depth = Budget.depth_cap budget <= max_depth in
  let max_depth = min max_depth (Budget.depth_cap budget) in
  let _qregs, slots, goals = prepare st q max_depth in
  let result = ref None in
  let on_solution () =
    st.s_sols <- st.s_sols + 1;
    ignore (Budget.note_solution budget ~engine:"prolog");
    (* Single-goal queries only, like [Engine.prove]'s [[ deriv ]]
       pattern: a conjunction has no single root derivation. *)
    if Array.length slots = 1 then begin
      match !(slots.(0)) with
      | Some n -> result := Some (extract n)
      | None -> ()
    end;
    Stop
  in
  Fun.protect
    ~finally:(fun () -> flush st)
    (fun () ->
      search st cprog goals ~skip_level:false ~budget ~budget_caps_depth
        ~on_solution);
  !result

(* Convenience entry points mirroring the [Engine] signatures: compile
   (through the caches) and run.  The query compiles per call — cheap
   next to the search, and the CLI paths that use these run one query
   per process anyway; hot callers should pre-compile with
   [Compile.query] and call the versions above. *)

let provable_term ?max_depth ?budget program goal =
  provable ?max_depth ?budget (Compile.program program)
    (Compile.query [ goal ])

let solutions_term ?max_depth ?budget ?limit program goal =
  solutions ?max_depth ?budget ?limit (Compile.program program)
    (Compile.query [ goal ])

let prove_term ?max_depth ?budget program goal =
  prove ?max_depth ?budget (Compile.program program) (Compile.query [ goal ])
