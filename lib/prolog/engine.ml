module Term = Argus_logic.Term
module Symbol = Argus_core.Symbol
module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

type derivation = {
  goal : Term.t;
  clause_index : int;
  children : derivation list;
}

(* Engine counters (see the catalogue in DESIGN.md).  A failed
   unification is what sends SLD resolution to the next alternative, so
   it doubles as the backtrack count.  [index_hits] counts clauses the
   dispatch index admitted for a goal, [index_misses] clauses it ruled
   out without freshening or unifying.  Invariants: hits + misses equal
   index lookups times program size, and clause_tries <= hits (answer
   Seqs are lazy, so an admitted clause the caller never forces is a
   hit but not a try). *)
let c_clause_tries = Argus_obs.Counter.make "prolog.clause_tries"
let c_unifications = Argus_obs.Counter.make "prolog.unifications"
let c_backtracks = Argus_obs.Counter.make "prolog.backtracks"
let c_depth_abandoned = Argus_obs.Counter.make "prolog.depth_abandonments"
let c_solutions = Argus_obs.Counter.make "prolog.solutions"
let c_index_hits = Argus_obs.Counter.make "prolog.index_hits"
let c_index_misses = Argus_obs.Counter.make "prolog.index_misses"

(* Freshen a clause's variables with a globally-unique suffix so that
   resolution never confuses clause variables across uses. *)
let freshen counter (c : Program.clause) =
  incr counter;
  let suffix = string_of_int !counter in
  {
    Program.head = Term.rename ~suffix c.Program.head;
    body = List.map (Term.rename ~suffix) c.Program.body;
  }

(* --- Clause indexing --- *)

(* What a clause head's first argument can match: [FAny] (a variable, or
   the head has no arguments or is itself a variable) matches every
   goal; [FSym (f, n)] only matches goals whose first argument is a
   variable or has principal functor [f/n]. *)
type farg = FAny | FSym of Symbol.t * int

type entry = {
  idx : int;  (** Position in the source program (derivations cite it). *)
  clause : Program.clause;
  first_arg : farg;
  ground : bool;  (** Ground clauses skip freshening entirely. *)
}

(* Dispatch keys are (symbol id, arity) pairs; a hand-rolled hash keeps
   the hot bucket lookup free of the polymorphic-hash C call. *)
module Key_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal ((a1, b1) : t) (a2, b2) = a1 = a2 && b1 = b2
  let hash ((a, b) : t) = (a * 65599) + b
end)

type compiled = {
  total : int;  (** Number of clauses in the source program. *)
  buckets : entry list Key_tbl.t;
      (** Per predicate/arity, candidates in program order.  Clauses
          whose head is a bare variable are merged into every bucket
          (and kept in [var_heads] for goals that match no bucket). *)
  var_heads : entry list;
  all : entry list;  (** Every clause, program order (variable goals). *)
}

let clause_is_ground (c : Program.clause) =
  Term.is_ground c.Program.head && List.for_all Term.is_ground c.Program.body

let compile_uncached (program : Program.t) =
  let entries =
    List.mapi
      (fun idx clause ->
        let first_arg =
          match clause.Program.head with
          | Term.Var _ | Term.App (_, []) -> FAny
          | Term.App (_, first :: _) -> (
              match first with
              | Term.Var _ -> FAny
              | Term.App (f, args) -> FSym (f, List.length args))
        in
        { idx; clause; first_arg; ground = clause_is_ground clause })
      program
  in
  let var_heads =
    List.filter
      (fun e ->
        match e.clause.Program.head with Term.Var _ -> true | _ -> false)
      entries
  in
  let buckets = Key_tbl.create 16 in
  List.iter
    (fun e ->
      match e.clause.Program.head with
      | Term.Var _ -> ()
      | Term.App (f, args) ->
          let key = ((f :> int), List.length args) in
          if not (Key_tbl.mem buckets key) then
            (* Clauses with variable heads can resolve any goal, so they
               belong to every bucket, interleaved in program order. *)
            Key_tbl.add buckets key
              (List.filter
                 (fun e' ->
                   match e'.clause.Program.head with
                   | Term.Var _ -> true
                   | Term.App (g, args') ->
                       Symbol.equal f g && List.length args' = List.length args)
                 entries))
    entries;
  { total = List.length entries; buckets; var_heads; all = entries }

(* Programs are immutable lists, so the dispatch table for a given list
   value never changes: a physical-identity cache makes repeated
   [solve]/[provable] calls on the same program (the common pattern in
   the CLI and benchmarks) reuse the compiled index instead of
   rebuilding it per query.  The cache holds several programs per
   domain (the original one-entry slot thrashed as soon as two programs
   alternated, e.g. a corpus scan interleaving cases) and lives in
   [Domain.DLS] so pool workers never contend.  [prolog.compilations]
   counts actual builds — the regression test for the thrash asserts it
   stays flat under alternation. *)
let c_compilations = Argus_obs.Counter.make "prolog.compilations"
let cache_capacity = 8

let compile_cache : (Program.t * compiled) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let compile (program : Program.t) =
  let cache = Domain.DLS.get compile_cache in
  let rec find = function
    | [] -> None
    | (p, c) :: _ when p == program -> Some c
    | _ :: rest -> find rest
  in
  match find !cache with
  | Some c -> c
  | None ->
      Argus_obs.Counter.incr c_compilations;
      let c = compile_uncached program in
      let entries = (program, c) :: !cache in
      cache :=
        (if List.length entries > cache_capacity then
           List.filteri (fun i _ -> i < cache_capacity) entries
         else entries);
      c

(* Candidates for a goal, cheapest filter first: predicate/arity
   dispatch, then first-argument discrimination.  Returns candidates in
   program order; counts hits and misses against the full program so
   the index's selectivity is visible in traces. *)
let admitted_candidates compiled goal =
  match goal with
  | Term.Var _ -> compiled.all
  | Term.App (f, args) -> (
      let bucket =
        match
          Key_tbl.find_opt compiled.buckets ((f :> int), List.length args)
        with
        | Some es -> es
        | None -> compiled.var_heads
      in
      match args with
      | [] -> bucket
      | first :: _ -> (
          match first with
          | Term.Var _ -> bucket
          | Term.App (g, gargs) ->
              let k = List.length gargs in
              List.filter
                (fun e ->
                  match e.first_arg with
                  | FAny -> true
                  | FSym (h, n) -> Symbol.equal g h && n = k)
                bucket))

let candidates compiled goal =
  let admitted = admitted_candidates compiled goal in
  let n = List.length admitted in
  Argus_obs.Counter.add c_index_hits n;
  Argus_obs.Counter.add c_index_misses (compiled.total - n);
  admitted

let solve_compiled ?(max_depth = 64) ?(budget = Budget.unlimited) compiled
    goals =
  Fault.point "prolog.solve";
  let counter = ref 0 in
  (* The budget's depth cap clamps (subsumes) the engine's own bound;
     pruning at a budget-imposed cap is recorded so the caller can
     report incompleteness, while pruning at the engine default stays
     silent, as it always was. *)
  let budget_caps_depth = Budget.depth_cap budget <= max_depth in
  let max_depth = min max_depth (Budget.depth_cap budget) in
  (* Resolve [goals] left to right under [subst]; yields the extended
     substitution and one derivation per goal. *)
  let rec solve_goals subst goals depth :
      (Term.Subst.t * derivation list) Seq.t =
    match goals with
    | [] -> Seq.return (subst, [])
    | goal :: rest ->
        if depth <= 0 then begin
          Argus_obs.Counter.incr c_depth_abandoned;
          if budget_caps_depth then Budget.note_depth budget ~engine:"prolog";
          Seq.empty
        end
        else
          let goal_now = Term.Subst.apply subst goal in
          candidates compiled goal_now
          |> List.to_seq
          |> Seq.concat_map (fun entry ->
                 if not (Budget.tick budget ~engine:"prolog") then Seq.empty
                 else begin
                 Argus_obs.Counter.incr c_clause_tries;
                 (* Freshening is lazy: only clauses the index admitted
                    pay for it, and ground clauses never do. *)
                 let c =
                   if entry.ground then entry.clause
                   else freshen counter entry.clause
                 in
                 Argus_obs.Counter.incr c_unifications;
                 match Term.unify_under subst goal_now c.Program.head with
                 | None ->
                     Argus_obs.Counter.incr c_backtracks;
                     Seq.empty
                 | Some subst ->
                     solve_goals subst c.Program.body (depth - 1)
                     |> Seq.concat_map (fun (subst, body_derivs) ->
                            solve_goals subst rest depth
                            |> Seq.map (fun (subst, rest_derivs) ->
                                   let deriv =
                                     {
                                       goal = Term.Subst.apply subst goal;
                                       clause_index = entry.idx;
                                       children = body_derivs;
                                     }
                                   in
                                   (subst, deriv :: rest_derivs)))
                 end)
  in
  (* Stream solutions through the budget's solution cap: after the cap
     is reached the tail is cut and the budget records the
     truncation. *)
  let rec capped seq () =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (solution, rest) ->
        Argus_obs.Counter.incr c_solutions;
        if Budget.note_solution budget ~engine:"prolog" then
          Seq.Cons (solution, capped rest)
        else Seq.Cons (solution, Seq.empty)
  in
  capped (solve_goals Term.Subst.empty goals max_depth)

let solve ?max_depth ?budget program goals =
  solve_compiled ?max_depth ?budget (compile program) goals

(* The textbook engine PR 2 replaced: linear scan over all clauses,
   each freshened eagerly before unification can fail.  Retained as the
   differential-testing oracle for the indexed engine. *)
let solve_naive ?(max_depth = 64) program goals =
  let counter = ref 0 in
  let indexed = List.mapi (fun i c -> (i, c)) program in
  let rec solve_goals subst goals depth :
      (Term.Subst.t * derivation list) Seq.t =
    match goals with
    | [] -> Seq.return (subst, [])
    | goal :: rest ->
        if depth <= 0 then Seq.empty
        else
          let goal_now = Term.Subst.apply subst goal in
          indexed |> List.to_seq
          |> Seq.concat_map (fun (index, clause) ->
                 let c = freshen counter clause in
                 match Term.unify_under subst goal_now c.Program.head with
                 | None -> Seq.empty
                 | Some subst ->
                     solve_goals subst c.Program.body (depth - 1)
                     |> Seq.concat_map (fun (subst, body_derivs) ->
                            solve_goals subst rest depth
                            |> Seq.map (fun (subst, rest_derivs) ->
                                   let deriv =
                                     {
                                       goal = Term.Subst.apply subst goal;
                                       clause_index = index;
                                       children = body_derivs;
                                     }
                                   in
                                   (subst, deriv :: rest_derivs))))
  in
  solve_goals Term.Subst.empty goals max_depth

let bindings_for goals subst =
  let seen = Hashtbl.create 16 in
  List.concat_map Term.vars goals
  |> List.filter_map (fun v ->
         if Hashtbl.mem seen v then None
         else begin
           Hashtbl.add seen v ();
           Some (v, Term.Subst.apply subst (Term.Var v))
         end)

let solutions ?max_depth ?budget ?(limit = 10) program goal =
  Argus_obs.Span.with_ ~name:"prolog.solutions" @@ fun () ->
  let rec take n seq =
    if n <= 0 then []
    else
      match Seq.uncons seq with
      | None -> []
      | Some ((subst, _), rest) ->
          bindings_for [ goal ] subst :: take (n - 1) rest
  in
  take limit (solve ?max_depth ?budget program [ goal ])

(* Provability needs no bindings and no derivations, so it skips the
   [Seq] machinery of [solve_compiled] for a direct backtracking
   search.  Structure, candidate order, depth accounting and counters
   mirror [solve_goals] exactly — only the success representation
   differs — so [provable] agrees with [solve] on every program. *)
let provable ?(max_depth = 64) ?(budget = Budget.unlimited) program goal =
  Argus_obs.Span.with_ ~name:"prolog.provable" @@ fun () ->
  Fault.point "prolog.provable";
  let compiled = compile program in
  let counter = ref 0 in
  let budget_caps_depth = Budget.depth_cap budget <= max_depth in
  let max_depth = min max_depth (Budget.depth_cap budget) in
  (* Counter traffic is batched into locals and flushed once per call:
     a sharded increment costs ~10x a plain one, and the search loop
     below performs tens of them per query. *)
  let tries = ref 0
  and unifs = ref 0
  and backs = ref 0
  and abandoned = ref 0
  and hits = ref 0
  and misses = ref 0 in
  let rec sat subst goals depth k =
    match goals with
    | [] -> k subst
    | goal :: rest ->
        if depth <= 0 then begin
          incr abandoned;
          if budget_caps_depth then Budget.note_depth budget ~engine:"prolog";
          false
        end
        else
          let goal_now = Term.Subst.apply subst goal in
          let rec try_candidates = function
            | [] -> false
            | entry :: more ->
                if not (Budget.tick budget ~engine:"prolog") then false
                else begin
                incr tries;
                let c =
                  if entry.ground then entry.clause
                  else freshen counter entry.clause
                in
                incr unifs;
                (match Term.unify_under subst goal_now c.Program.head with
                | None ->
                    incr backs;
                    try_candidates more
                | Some subst ->
                    sat subst c.Program.body (depth - 1) (fun subst ->
                        sat subst rest depth k)
                    || try_candidates more)
                end
          in
          let admitted = admitted_candidates compiled goal_now in
          let n = List.length admitted in
          hits := !hits + n;
          misses := !misses + (compiled.total - n);
          try_candidates admitted
  in
  Fun.protect
    ~finally:(fun () ->
      let s = Argus_obs.Counter.current_shard () in
      Argus_obs.Counter.shard_add s c_clause_tries !tries;
      Argus_obs.Counter.shard_add s c_unifications !unifs;
      Argus_obs.Counter.shard_add s c_backtracks !backs;
      Argus_obs.Counter.shard_add s c_depth_abandoned !abandoned;
      Argus_obs.Counter.shard_add s c_index_hits !hits;
      Argus_obs.Counter.shard_add s c_index_misses !misses)
    (fun () ->
      if sat Term.Subst.empty [ goal ] max_depth (fun _ -> true) then begin
        Argus_obs.Counter.incr c_solutions;
        true
      end
      else false)

let prove ?max_depth ?budget program goal =
  Argus_obs.Span.with_ ~name:"prolog.prove" @@ fun () ->
  match Seq.uncons (solve ?max_depth ?budget program [ goal ]) with
  | Some ((subst, [ deriv ]), _) ->
      (* Resolve remaining variables in the recorded goals. *)
      let rec finalise d =
        {
          d with
          goal = Term.Subst.apply subst d.goal;
          children = List.map finalise d.children;
        }
      in
      Some (finalise deriv)
  | Some ((_, _), _) | None -> None

let rec derivation_size d =
  1 + List.fold_left (fun acc c -> acc + derivation_size c) 0 d.children

let pp_derivation ppf deriv =
  let rec go indent d =
    Format.fprintf ppf "%s%a   [clause %d]@." indent Term.pp d.goal
      d.clause_index;
    List.iter (go (indent ^ "  ")) d.children
  in
  go "" deriv
