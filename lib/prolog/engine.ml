module Term = Argus_logic.Term

type derivation = {
  goal : Term.t;
  clause_index : int;
  children : derivation list;
}

(* Engine counters (see the catalogue in DESIGN.md).  A failed
   unification is what sends SLD resolution to the next alternative, so
   it doubles as the backtrack count. *)
let c_clause_tries = Argus_obs.Counter.make "prolog.clause_tries"
let c_unifications = Argus_obs.Counter.make "prolog.unifications"
let c_backtracks = Argus_obs.Counter.make "prolog.backtracks"
let c_depth_abandoned = Argus_obs.Counter.make "prolog.depth_abandonments"
let c_solutions = Argus_obs.Counter.make "prolog.solutions"

(* Freshen a clause's variables with a globally-unique suffix so that
   resolution never confuses clause variables across uses. *)
let freshen counter (c : Program.clause) =
  incr counter;
  let suffix = string_of_int !counter in
  {
    Program.head = Term.rename ~suffix c.Program.head;
    body = List.map (Term.rename ~suffix) c.Program.body;
  }

let solve ?(max_depth = 64) program goals =
  let counter = ref 0 in
  let indexed = List.mapi (fun i c -> (i, c)) program in
  (* Resolve [goals] left to right under [subst]; yields the extended
     substitution and one derivation per goal. *)
  let rec solve_goals subst goals depth :
      (Term.Subst.t * derivation list) Seq.t =
    match goals with
    | [] -> Seq.return (subst, [])
    | goal :: rest ->
        if depth <= 0 then begin
          Argus_obs.Counter.incr c_depth_abandoned;
          Seq.empty
        end
        else
          let goal_now = Term.Subst.apply subst goal in
          indexed |> List.to_seq
          |> Seq.concat_map (fun (index, clause) ->
                 Argus_obs.Counter.incr c_clause_tries;
                 let c = freshen counter clause in
                 Argus_obs.Counter.incr c_unifications;
                 match Term.unify_under subst goal_now c.Program.head with
                 | None ->
                     Argus_obs.Counter.incr c_backtracks;
                     Seq.empty
                 | Some subst ->
                     solve_goals subst c.Program.body (depth - 1)
                     |> Seq.concat_map (fun (subst, body_derivs) ->
                            solve_goals subst rest depth
                            |> Seq.map (fun (subst, rest_derivs) ->
                                   let deriv =
                                     {
                                       goal = Term.Subst.apply subst goal;
                                       clause_index = index;
                                       children = body_derivs;
                                     }
                                   in
                                   (subst, deriv :: rest_derivs))))
  in
  solve_goals Term.Subst.empty goals max_depth
  |> Seq.map (fun solution ->
         Argus_obs.Counter.incr c_solutions;
         solution)

let bindings_for goals subst =
  let seen = Hashtbl.create 16 in
  List.concat_map Term.vars goals
  |> List.filter_map (fun v ->
         if Hashtbl.mem seen v then None
         else begin
           Hashtbl.add seen v ();
           Some (v, Term.Subst.apply subst (Term.Var v))
         end)

let solutions ?max_depth ?(limit = 10) program goal =
  Argus_obs.Span.with_ ~name:"prolog.solutions" @@ fun () ->
  let rec take n seq =
    if n <= 0 then []
    else
      match Seq.uncons seq with
      | None -> []
      | Some ((subst, _), rest) ->
          bindings_for [ goal ] subst :: take (n - 1) rest
  in
  take limit (solve ?max_depth program [ goal ])

let provable ?max_depth program goal =
  Argus_obs.Span.with_ ~name:"prolog.provable" @@ fun () ->
  not (Seq.is_empty (solve ?max_depth program [ goal ]))

let prove ?max_depth program goal =
  Argus_obs.Span.with_ ~name:"prolog.prove" @@ fun () ->
  match Seq.uncons (solve ?max_depth program [ goal ]) with
  | Some ((subst, [ deriv ]), _) ->
      (* Resolve remaining variables in the recorded goals. *)
      let rec finalise d =
        {
          d with
          goal = Term.Subst.apply subst d.goal;
          children = List.map finalise d.children;
        }
      in
      Some (finalise deriv)
  | Some ((_, _), _) | None -> None

let rec derivation_size d =
  1 + List.fold_left (fun acc c -> acc + derivation_size c) 0 d.children

let pp_derivation ppf deriv =
  let rec go indent d =
    Format.fprintf ppf "%s%a   [clause %d]@." indent Term.pp d.goal
      d.clause_index;
    List.iter (go (indent ^ "  ")) d.children
  in
  go "" deriv
