(** Bytecode execution of {!Compile}d programs: destructive-binding
    runtime terms, a trail, and an explicit choice-point stack.

    Exactly the search {!Engine.solve} performs — same candidate
    admission (so the [prolog.index_*] counters agree), same
    clause-try/unification/backtrack accounting, same depth semantics
    (body goals one deeper, siblings level), same budget tick per
    candidate and solution-cap truncation, same solution order — just
    without substitution lists, freshening or [Seq] closures on the hot
    path.  The differential tests in test/prolog hold the two engines
    to that, including equal {!Argus_rt.Budget.exhausted} step counts.

    [prolog.compiled_calls] counts entries through this module.  Spans
    and fault probes mirror the interpreter's
    ([prolog.provable]/[prolog.solutions]/[prolog.prove], probe
    ["prolog.solve"] / ["prolog.provable"]). *)

val provable :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  Compile.t ->
  Compile.query ->
  bool

val solutions :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  ?limit:int ->
  Compile.t ->
  Compile.query ->
  (string * Argus_logic.Term.t) list list
(** First [limit] (default 10) solutions as bindings of the query's
    variables, in first-occurrence order.  Variables left unbound by a
    solution read back as fresh ["_G<n>"] names (the interpreter keeps
    source names there — compare up to renaming). *)

val prove :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  Compile.t ->
  Compile.query ->
  Engine.derivation option
(** First derivation of a single-goal query, fully instantiated —
    clause indices identical to {!Engine.prove}'s. *)

(** Compile-and-run conveniences (program through the per-domain cache,
    query compiled per call) for one-shot callers like the CLI. *)

val provable_term :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  Program.t ->
  Argus_logic.Term.t ->
  bool

val solutions_term :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  ?limit:int ->
  Program.t ->
  Argus_logic.Term.t ->
  (string * Argus_logic.Term.t) list list

val prove_term :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  Program.t ->
  Argus_logic.Term.t ->
  Engine.derivation option
