(** SLD resolution over Horn-clause programs.

    Depth-first, leftmost-goal selection, clauses tried in program order
    — the strategy of a textbook Prolog interpreter.  A depth bound
    keeps recursive programs (like Figure 1's [adjacent/2] rule)
    explorable without divergence; solutions stream lazily.

    The engine resolves against a {!compiled} dispatch table rather
    than scanning the clause list: clauses are keyed by predicate
    symbol and arity, discriminated on the principal functor of the
    head's first argument, and freshened lazily — only after the index
    admits them (ground clauses are never freshened at all).  The
    [prolog.index_hits]/[prolog.index_misses] counters record the
    index's selectivity; clause order, and therefore the solution
    order, is exactly that of the naive engine.

    Every solution carries a {!derivation} tree recording which clause
    resolved each goal — the raw material the proof-to-argument
    generator (Basir/Denney pipeline) and the Figure 1 demonstration
    render.

    Resource governance: every entry point takes an optional
    [?budget] ({!Argus_rt.Budget.t}, default unlimited).  The budget is
    ticked once per clause candidate tried, its depth cap clamps
    [max_depth] (with pruning at a budget-imposed cap recorded via
    [note_depth]), and its solution cap truncates the answer stream.
    On exhaustion the engine stops and returns what it has — a partial
    [Seq], or [false] from {!provable} — and the caller reads
    {!Argus_rt.Budget.exhausted} / [diagnostics] to report
    incompleteness.  Fault probes ["prolog.solve"] and
    ["prolog.provable"] fire at entry (DESIGN.md §10). *)

type derivation = {
  goal : Argus_logic.Term.t;  (** The resolved goal, fully instantiated. *)
  clause_index : int;  (** Index of the program clause used (0-based). *)
  children : derivation list;  (** One per body goal of that clause. *)
}

type compiled
(** A program compiled to a predicate/arity-keyed dispatch table with
    first-argument discrimination.  Compile once, query many times. *)

val compile : Program.t -> compiled

val solve_compiled :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  compiled ->
  Argus_logic.Term.t list ->
  (Argus_logic.Term.Subst.t * derivation list) Seq.t
(** Like {!solve} against a pre-compiled program. *)

val solve :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  Program.t ->
  Argus_logic.Term.t list ->
  (Argus_logic.Term.Subst.t * derivation list) Seq.t
(** [solve program goals] enumerates solutions of the conjunction of
    [goals].  [max_depth] (default 64) bounds the resolution depth;
    branches deeper than that are abandoned (so a looping program yields
    finitely many of its solutions rather than diverging).  The
    substitution covers the goals' variables (plus internal renamings —
    use {!bindings_for} to restrict).  Compiles the program first; call
    {!solve_compiled} to amortise that over repeated queries. *)

val solve_naive :
  ?max_depth:int ->
  Program.t ->
  Argus_logic.Term.t list ->
  (Argus_logic.Term.Subst.t * derivation list) Seq.t
(** The textbook engine: linear clause scan, eager freshening, no
    index.  Solution-for-solution equivalent to {!solve}; retained as
    the differential-testing oracle (and it leaves the engine counters
    untouched). *)

val bindings_for :
  Argus_logic.Term.t list ->
  Argus_logic.Term.Subst.t ->
  (string * Argus_logic.Term.t) list
(** Restrict a solution substitution to the variables of the original
    query, fully resolved. *)

val solutions :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  ?limit:int ->
  Program.t ->
  Argus_logic.Term.t ->
  (string * Argus_logic.Term.t) list list
(** First [limit] (default 10) solutions of a single-goal query, as
    variable bindings. *)

val provable :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  Program.t ->
  Argus_logic.Term.t ->
  bool

val prove :
  ?max_depth:int ->
  ?budget:Argus_rt.Budget.t ->
  Program.t ->
  Argus_logic.Term.t ->
  derivation option
(** First derivation of the goal, if any — what Figure 1 prints. *)

val derivation_size : derivation -> int
val pp_derivation : Format.formatter -> derivation -> unit
(** Indented tree: goal, then the clause used, then sub-derivations. *)
