module Term = Argus_logic.Term

type clause = { head : Term.t; body : Term.t list }
type t = clause list

let fact head = { head; body = [] }
let rule head body = { head; body }

let clause_vars c =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add t =
    List.iter
      (fun v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end)
      (Term.vars t)
  in
  add c.head;
  List.iter add c.body;
  List.rev !out

let predicates prog =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun c ->
      match c.head with
      | Term.App (f, args) ->
          let key = (Argus_core.Symbol.name f, List.length args) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some key
          end
      | Term.Var _ -> None)
    prog

let pp_clause ppf c =
  match c.body with
  | [] -> Format.fprintf ppf "%a." Term.pp c.head
  | body ->
      Format.fprintf ppf "%a :- %a." Term.pp c.head
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Term.pp)
        body

let pp ppf prog =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    pp_clause ppf prog

let to_string prog = Format.asprintf "%a" pp prog

(* --- Parser --- *)

exception Parse_error of string

type token = Ident of string | Lparen | Rparen | Comma | Turnstile | Dot

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenise s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '%' ->
          let j = ref i in
          while !j < n && s.[!j] <> '\n' do
            incr j
          done;
          go !j acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '.' -> go (i + 1) (Dot :: acc)
      | ':' when i + 1 < n && s.[i + 1] = '-' -> go (i + 2) (Turnstile :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

let is_variable_name name =
  String.length name > 0
  && ((name.[0] >= 'A' && name.[0] <= 'Z') || name.[0] = '_')

let parse tokens =
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        toks := rest;
        t
  in
  let rec p_term () =
    match advance () with
    | Ident name -> (
        if is_variable_name name then Term.Var name
        else
          match peek () with
          | Some Lparen ->
              ignore (advance ());
              Term.app name (p_args [])
          | _ -> Term.const name)
    | _ -> raise (Parse_error "expected a term")
  and p_args acc =
    let t = p_term () in
    match advance () with
    | Comma -> p_args (t :: acc)
    | Rparen -> List.rev (t :: acc)
    | _ -> raise (Parse_error "expected ',' or ')' in argument list")
  in
  let p_clause () =
    let head = p_term () in
    match advance () with
    | Dot -> { head; body = [] }
    | Turnstile ->
        let rec p_body acc =
          let t = p_term () in
          match advance () with
          | Comma -> p_body (t :: acc)
          | Dot -> List.rev (t :: acc)
          | _ -> raise (Parse_error "expected ',' or '.' in clause body")
        in
        { head; body = p_body [] }
    | _ -> raise (Parse_error "expected '.' or ':-' after clause head")
  in
  let rec p_program acc =
    match peek () with
    | None -> List.rev acc
    | Some _ -> p_program (p_clause () :: acc)
  in
  p_program []

let of_string s =
  match parse (tokenise s) with
  | prog -> Ok prog
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok p -> p | Error msg -> failwith msg
