(** WAM-lite compilation of Horn-clause programs.

    Translates each clause into flat instruction arrays — pre-flattened
    get/unify instructions for the head, postfix put instructions for
    body goals, variables as register indices — and the program into a
    predicate table with switch-on-symbol first-argument dispatch.
    {!Exec} runs the result with a trail and an explicit choice-point
    stack; the interpreted {!Engine.solve} is the differential oracle,
    and the candidate lists both engines admit for any goal are
    identical (so index counters agree too).

    The representation is exposed: [Exec] and the benchmarks pattern
    match on it, and the instruction listing in DESIGN.md §13 documents
    it.  Treat it as internal elsewhere.

    Compiled programs are cached per domain on physical program
    identity (several entries, unlike the interpreter's original
    one-entry cache), counted by [prolog.compilations]. *)

(** Head instructions, one subject subterm consumed each. *)
type instr =
  | H_const of Argus_core.Symbol.t
  | H_struct of Argus_core.Symbol.t * int
  | H_var of int
  | H_val of int

(** Body-goal build instructions, postfix. *)
type ginstr =
  | P_var of int
  | P_const of Argus_core.Symbol.t
  | P_struct of Argus_core.Symbol.t * int

type farg = FAny | FSym of Argus_core.Symbol.t * int

type cclause = {
  c_idx : int;
  c_head : instr array;
  c_body : ginstr array array;
  c_nregs : int;
  c_first : farg;
}

module Key_tbl : Hashtbl.S with type key = int * int

type pred = {
  pr_bucket : cclause array;
  pr_switch : cclause array Key_tbl.t;
  pr_anyfirst : cclause array;
}

type t = {
  cp_total : int;
  cp_preds : pred Key_tbl.t;
  cp_var_heads : cclause array;
  cp_all : cclause array;
}

val clause_count : t -> int

val program : Program.t -> t
(** Compile a program, through the per-domain cache. *)

val program_uncached : Program.t -> t
(** Compile without touching the cache (for benchmarks that measure
    compilation itself). *)

type query = {
  q_goals : ginstr array array;
  q_nregs : int;
  q_vars : (string * int) array;
}

val query : Argus_logic.Term.t list -> query
(** Compile a conjunction of goals once, to run many times. *)
