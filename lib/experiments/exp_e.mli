(** Experiment VI.E — complication of evidence sufficiency judgments.

    The paper compares two procedures for judging what rides on an item
    of evidence: tracing paths in a graphical argument (GSN's claimed
    strength) versus Rushby's proposal to "assess impact by eliminating
    the corresponding formal premise and rerunning the proof checker".
    It also notes what Rushby leaves open — how to judge evidence whose
    failure is {e a matter of degree} — and proposes measuring time and
    inter-assessor agreement: "if many assessors report similar values,
    they might be right or wrong, but if they report very different
    values, at least some must be wrong."

    Both procedures are implemented for real here:
    {!Argus_confidence.Confidence.impact_by_tracing} over a specimen GSN
    case, and {!Argus_confidence.Confidence.probe_premise} over its
    formalised counterpart.  The assessor model adds per-procedure
    reading noise; ground truth is the confidence-propagation
    sensitivity of each evidence item, so the harness can report
    accuracy as well as agreement — including the probing procedure's
    characteristic failure on matter-of-degree evidence (a binary probe
    reads a partial dependence as total). *)

type config = {
  seed : int;
  n_assessors : int;
  minutes_per_traced_node : float;
  minutes_per_probe : float;
  probe_setup_minutes : float;
  tracing_noise_sd : float;  (** Noise on perceived impact, tracing. *)
  probing_noise_sd : float;
}

val default_config : config

type category = Negligible | Moderate | Critical

type procedure_result = {
  mean_minutes : float;
  kappa : float;  (** Fleiss' kappa across assessors over evidence items. *)
  mean_abs_error : float;
      (** Mean |perceived - true| impact, against the
          confidence-propagation ground truth. *)
}

type result = {
  config : config;
  n_evidence_items : int;
  ground_truth : (string * float) list;
      (** Evidence id to true sensitivity. *)
  tracing : procedure_result;
  probing : procedure_result;
}

val categorise : float -> category
val run : ?pool:Argus_par.Pool.t -> config -> result
(** Deterministic for any [?pool]: each assessor draws from a per-index
    PRNG stream of the procedure's generator. *)

val pp : Format.formatter -> result -> unit
