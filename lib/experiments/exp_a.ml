module Prop = Argus_logic.Prop
module Formal = Argus_fallacy.Formal
module Greenwell = Argus_fallacy.Greenwell
module Pool = Argus_par.Pool

type config = {
  seed : int;
  subjects_per_arm : int;
  n_arguments : int;
  steps_per_argument : int;
  formal_seed_rate : float;
  informal_seed_rate : float;
  minutes_per_step : float;
  formal_duty_overhead : float;
  p_informal_detect : float;
  p_formal_detect_with_duty : float;
  p_formal_detect_incidental : float;
}

let default_config =
  {
    seed = 42;
    subjects_per_arm = 30;
    n_arguments = 6;
    steps_per_argument = 30;
    formal_seed_rate = 0.06;
    informal_seed_rate = 0.10;
    minutes_per_step = 1.5;
    formal_duty_overhead = 1.35;
    p_informal_detect = 0.55;
    p_formal_detect_with_duty = 0.65;
    p_formal_detect_incidental = 0.15;
  }

type arm_result = {
  mean_minutes : float;
  ci_minutes : float * float;
  formal_seeded : int;
  formal_found : int;
  informal_seeded : int;
  informal_found : int;
}

type reviewer_overlap = {
  first_only : int;
  second_only : int;
  both : int;
  neither : int;
}

type result = {
  config : config;
  informal_only : arm_result;
  both_duties : arm_result;
  tool_formal_found : int;
  tool_formal_seeded : int;
  tool_false_positives : int;
  time_test : Stats.t_test;
  overlap : reviewer_overlap;
}

(* A reviewable step: sound, or carrying a seeded fallacy. *)
type step =
  | Sound
  | Formal_fallacy of Formal.propositional
  | Informal_fallacy of Greenwell.instance

(* Concrete formal-fallacy instances, varied by index so no two are the
   same argument. *)
let formal_instance rng k =
  let a = Prop.Var (Printf.sprintf "a%d" k)
  and b = Prop.Var (Printf.sprintf "b%d" k) in
  match Prng.int rng 5 with
  | 0 ->
      (* Affirming the consequent. *)
      { Formal.premises = [ Prop.Implies (a, b); b ]; conclusion = a }
  | 1 ->
      (* Denying the antecedent. *)
      {
        Formal.premises = [ Prop.Implies (a, b); Prop.Not a ];
        conclusion = Prop.Not b;
      }
  | 2 ->
      (* Begging the question. *)
      { Formal.premises = [ a; b ]; conclusion = a }
  | 3 ->
      (* Incompatible premises. *)
      { Formal.premises = [ a; Prop.Not a ]; conclusion = b }
  | _ ->
      (* Premise/conclusion contradiction. *)
      { Formal.premises = [ a ]; conclusion = Prop.Not a }

let build_corpus cfg rng =
  List.init cfg.n_arguments (fun _ ->
      List.init cfg.steps_per_argument (fun k ->
          if Prng.bernoulli rng cfg.formal_seed_rate then
            Formal_fallacy (formal_instance rng k)
          else if Prng.bernoulli rng cfg.informal_seed_rate then
            Informal_fallacy (Prng.pick rng Greenwell.corpus)
          else Sound))

type duty = Informal_only | Both

let review_subject cfg rng duty corpus =
  let minutes = ref 0.0 in
  let formal_found = ref 0 and informal_found = ref 0 in
  let step_time () =
    let base = Prng.lognormal rng ~mu:(log cfg.minutes_per_step) ~sigma:0.35 in
    match duty with
    | Informal_only -> base
    | Both -> base *. cfg.formal_duty_overhead
  in
  List.iter
    (fun argument ->
      List.iter
        (fun step ->
          minutes := !minutes +. step_time ();
          match step with
          | Sound -> ()
          | Informal_fallacy _ ->
              if Prng.bernoulli rng cfg.p_informal_detect then
                incr informal_found
          | Formal_fallacy _ ->
              let p =
                match duty with
                | Both -> cfg.p_formal_detect_with_duty
                | Informal_only -> cfg.p_formal_detect_incidental
              in
              if Prng.bernoulli rng p then incr formal_found)
        argument)
    corpus;
  (!minutes, !formal_found, !informal_found)

let seeded_counts corpus =
  List.fold_left
    (fun (f, i) argument ->
      List.fold_left
        (fun (f, i) step ->
          match step with
          | Sound -> (f, i)
          | Formal_fallacy _ -> (f + 1, i)
          | Informal_fallacy _ -> (f, i + 1))
        (f, i) argument)
    (0, 0) corpus

let run_arm ?pool cfg rng duty corpus =
  (* Each subject reviews with their own PRNG stream, indexed by
     subject number, so splitting subjects across domains draws the
     same numbers as the sequential loop. *)
  let runs =
    Pool.init ?pool cfg.subjects_per_arm (fun i ->
        review_subject cfg (Prng.stream rng i) duty corpus)
    |> Array.to_list
  in
  let minutes = List.map (fun (m, _, _) -> m) runs in
  let formal_seeded, informal_seeded = seeded_counts corpus in
  let per_subject f =
    (* Average findings per subject, rounded: what one review pass of
       the corpus yields. *)
    let total = List.fold_left (fun acc r -> acc + f r) 0 runs in
    total / max 1 (List.length runs)
  in
  ( {
      mean_minutes = Stats.mean minutes;
      ci_minutes = Stats.ci95 minutes;
      formal_seeded;
      formal_found = per_subject (fun (_, f, _) -> f);
      informal_seeded;
      informal_found = per_subject (fun (_, _, i) -> i);
    },
    minutes )

(* Two independent reviewers over the 45 Greenwell instances: the
   Section V.C comparison ("each overlooked some fallacies that the
   other flagged"). *)
let reviewer_overlap cfg rng =
  List.fold_left
    (fun acc (_ : Greenwell.instance) ->
      let r1 = Prng.bernoulli rng cfg.p_informal_detect in
      let r2 = Prng.bernoulli rng cfg.p_informal_detect in
      match (r1, r2) with
      | true, false -> { acc with first_only = acc.first_only + 1 }
      | false, true -> { acc with second_only = acc.second_only + 1 }
      | true, true -> { acc with both = acc.both + 1 }
      | false, false -> { acc with neither = acc.neither + 1 })
    { first_only = 0; second_only = 0; both = 0; neither = 0 }
    Greenwell.corpus

let run ?pool cfg =
  let rng = Prng.create cfg.seed in
  let corpus = build_corpus cfg (Prng.split rng) in
  let arm_i, minutes_i =
    run_arm ?pool cfg (Prng.split rng) Informal_only corpus
  in
  let arm_b, minutes_b = run_arm ?pool cfg (Prng.split rng) Both corpus in
  let overlap = reviewer_overlap cfg (Prng.split rng) in
  (* The tool arm: run the real detector over every seeded step — pure
     per-step checks, merged by summing in step order. *)
  let steps = Array.of_list (List.concat corpus) in
  let seeded, found, fps =
    Pool.map_reduce ?pool
      ~map:(fun step ->
        match step with
        | Sound -> (0, 0, 0)
        | Formal_fallacy arg ->
            (1, (if Formal.check_propositional arg <> [] then 1 else 0), 0)
        | Informal_fallacy inst ->
            ( 0,
              0,
              if Formal.check_propositional inst.Greenwell.argument <> [] then 1
              else 0 ))
      ~combine:(fun (a, b, c) (a', b', c') -> (a + a', b + b', c + c'))
      ~init:(0, 0, 0) steps
  in
  {
    config = cfg;
    informal_only = arm_i;
    both_duties = arm_b;
    tool_formal_found = found;
    tool_formal_seeded = seeded;
    tool_false_positives = fps;
    time_test = Stats.welch_t minutes_b minutes_i;
    overlap;
  }

let pp_arm ppf name arm =
  let lo, hi = arm.ci_minutes in
  Format.fprintf ppf
    "%-14s  %7.1f min [%6.1f, %6.1f]   formal %2d/%-2d   informal %2d/%-2d@."
    name arm.mean_minutes lo hi arm.formal_found arm.formal_seeded
    arm.informal_found arm.informal_seeded

let pp ppf r =
  Format.fprintf ppf
    "Experiment A: automatic identification of formal fallacies@.";
  Format.fprintf ppf
    "  (review time and fallacies found, per full corpus pass)@.";
  pp_arm ppf "informal-only" r.informal_only;
  pp_arm ppf "both-duties" r.both_duties;
  Format.fprintf ppf
    "tool            instant            formal %2d/%-2d   false positives %d@."
    r.tool_formal_found r.tool_formal_seeded r.tool_false_positives;
  Format.fprintf ppf "time difference: Welch t = %.2f, p = %.4f@."
    r.time_test.Stats.t r.time_test.Stats.p;
  Format.fprintf ppf
    "two-reviewer comparison over the 45 Greenwell instances (V.C): %d by \
     first only, %d by second only, %d by both, %d by neither@."
    r.overlap.first_only r.overlap.second_only r.overlap.both
    r.overlap.neither
