(** Experiment VI.C — restriction of the reading audience.

    The paper: "we could experimentally measure reading speed and
    comprehension, using an informal version of the specimen argument
    as a control.  Subjects should be selected from the backgrounds
    that might be expected of an argument reader.  A questionnaire
    should be used to collect information about each subject's
    background and training."

    Subjects are drawn per {!Argus_core.Lifecycle.role}; each role's
    probability of fluency in symbolic logic comes from
    {!Argus_core.Lifecycle.logic_literacy} (software engineers learn
    formal logic at university; managers and mechanical engineers not
    necessarily).  Every subject reads an informal and a formal version
    of the same specimen argument; the harness reports per-role reading
    time and comprehension for both versions. *)

type config = {
  seed : int;
  subjects_per_role : int;
  informal_words : int;  (** Length of the informal specimen. *)
  formal_words : int;
      (** Prose remaining in the formal version (symbol definitions,
          connective text). *)
  formal_formula_symbols : int;  (** Symbols to be decoded. *)
  base_wpm : float;  (** Mean reading speed, words per minute. *)
  literate_symbol_spm : float;
      (** Symbols per minute for a logic-fluent reader. *)
  illiterate_symbol_spm : float;
  base_comprehension : float;  (** Informal-version quiz score mean. *)
  literate_formal_comprehension : float;
  illiterate_formal_comprehension : float;
}

val default_config : config

type role_result = {
  role : Argus_core.Lifecycle.role;
  n_literate : int;
  n_subjects : int;
  informal_minutes : float;
  formal_minutes : float;
  informal_comprehension : float;
  formal_comprehension : float;
}

type result = {
  config : config;
  per_role : role_result list;
  comprehension_gap_vs_literacy : (float * float) list;
      (** Per role: (logic-literacy parameter, formal-informal
          comprehension gap) — the correlation the study would plot. *)
  gap_literacy_correlation : float;
      (** Pearson r of the pairs above; strongly negative when the gap
          shrinks with literacy, the audience-restriction signature. *)
}

val run : ?pool:Argus_par.Pool.t -> config -> result
(** Deterministic for any [?pool]: each subject draws from a per-index
    PRNG stream of their role's generator. *)

val pp : Format.formatter -> result -> unit
