type config = {
  seed : int;
  n_subjects : int;
  n_tasks : int;
  nodes_per_argument : int;
  minutes_per_node : float;
  expertise_saving : float;
  learning_exponent : float;
}

let default_config =
  {
    seed = 42;
    n_subjects = 24;
    n_tasks = 6;
    nodes_per_argument = 30;
    minutes_per_node = 12.0;
    expertise_saving = 0.45;
    learning_exponent = 0.25;
  }

type result = {
  config : config;
  mean_minutes_first_task : float;
  mean_minutes_last_task : float;
  learning_ratio : float;
  novice_minutes_per_node : float;
  expert_minutes_per_node : float;
  expertise_test : Stats.t_test;
  minutes_for_100_node_argument : float;
}

type subject = { expertise : float }

let task_minutes cfg rng subject ~task_index =
  let practice =
    (float_of_int (task_index + 1)) ** -.cfg.learning_exponent
  in
  let skill = 1.0 -. (cfg.expertise_saving *. subject.expertise) in
  let per_node () =
    Prng.lognormal rng ~mu:(log cfg.minutes_per_node) ~sigma:0.4
    *. practice *. skill
  in
  let total = ref 0.0 in
  for _ = 1 to cfg.nodes_per_argument do
    total := !total +. per_node ()
  done;
  !total

let run ?pool cfg =
  let rng = Prng.create cfg.seed in
  let subjects =
    List.init cfg.n_subjects (fun _ -> { expertise = Prng.float rng })
  in
  (* Each subject's per-task times, in task order; subject [i] draws
     from their own PRNG stream, so trajectories are identical whether
     subjects run sequentially or across domains. *)
  let subject_arr = Array.of_list subjects in
  let trajectories =
    Argus_par.Pool.mapi_array ?pool
      (fun i s ->
        let srng = Prng.stream rng i in
        (s, List.init cfg.n_tasks (fun k -> task_minutes cfg srng s ~task_index:k)))
      subject_arr
    |> Array.to_list
  in
  let task k = List.map (fun (_, ts) -> List.nth ts k) trajectories in
  let first = task 0 and last = task (cfg.n_tasks - 1) in
  (* Per-node steady-state time per subject: last task / nodes. *)
  let per_node_last =
    List.map
      (fun (s, ts) ->
        (s, List.nth ts (cfg.n_tasks - 1) /. float_of_int cfg.nodes_per_argument))
      trajectories
  in
  let median_expertise =
    Stats.median (List.map (fun (s, _) -> s.expertise) per_node_last)
  in
  let novice =
    List.filter_map
      (fun (s, t) -> if s.expertise < median_expertise then Some t else None)
      per_node_last
  in
  let expert =
    List.filter_map
      (fun (s, t) -> if s.expertise >= median_expertise then Some t else None)
      per_node_last
  in
  let mean_first = Stats.mean first and mean_last = Stats.mean last in
  {
    config = cfg;
    mean_minutes_first_task = mean_first;
    mean_minutes_last_task = mean_last;
    learning_ratio = (if mean_first > 0.0 then mean_last /. mean_first else 1.0);
    novice_minutes_per_node = Stats.mean novice;
    expert_minutes_per_node = Stats.mean expert;
    expertise_test = Stats.welch_t novice expert;
    minutes_for_100_node_argument =
      100.0 *. Stats.mean (List.map snd per_node_last);
  }

let pp ppf r =
  Format.fprintf ppf "Experiment B: the effort of formalisation@.";
  Format.fprintf ppf
    "  first task %.0f min -> last task %.0f min (practice ratio %.2f)@."
    r.mean_minutes_first_task r.mean_minutes_last_task r.learning_ratio;
  Format.fprintf ppf
    "  per node: novices %.1f min, experts %.1f min (Welch t = %.2f, p = %.4f)@."
    r.novice_minutes_per_node r.expert_minutes_per_node
    r.expertise_test.Stats.t r.expertise_test.Stats.p;
  Format.fprintf ppf
    "  projected cost of formalising a 100-node argument: %.0f minutes@."
    r.minutes_for_100_node_argument
