module Id = Argus_core.Id
module Evidence = Argus_core.Evidence
module Prop = Argus_logic.Prop
module Natded = Argus_logic.Natded
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Confidence = Argus_confidence.Confidence

type config = {
  seed : int;
  n_assessors : int;
  minutes_per_traced_node : float;
  minutes_per_probe : float;
  probe_setup_minutes : float;
  tracing_noise_sd : float;
  probing_noise_sd : float;
}

let default_config =
  {
    seed = 42;
    n_assessors = 12;
    minutes_per_traced_node = 2.0;
    minutes_per_probe = 0.5;
    probe_setup_minutes = 10.0;
    tracing_noise_sd = 0.15;
    probing_noise_sd = 0.05;
  }

type category = Negligible | Moderate | Critical

let categorise x =
  if x < 0.10 then Negligible else if x < 0.40 then Moderate else Critical

type procedure_result = {
  mean_minutes : float;
  kappa : float;
  mean_abs_error : float;
}

type result = {
  config : config;
  n_evidence_items : int;
  ground_truth : (string * float) list;
  tracing : procedure_result;
  probing : procedure_result;
}

(* --- The specimen case ---

   Four evidence items.  E1 and E2 each fully carry one hazard claim
   (critical); E3 and E4 jointly support a third claim through a
   disjunctive goal, so each alone matters only partially — the
   "matter of degree" case the paper says Rushby's scheme does not
   address. *)
let specimen =
  Structure.of_nodes
    ~links:
      [
        (Structure.Supported_by, "G_root", "S_all");
        (Structure.Supported_by, "S_all", "G_h1");
        (Structure.Supported_by, "S_all", "G_h2");
        (Structure.Supported_by, "S_all", "G_h3");
        (Structure.Supported_by, "G_h1", "Sn1");
        (Structure.Supported_by, "G_h2", "Sn2");
        (Structure.Supported_by, "G_h3", "Sn3");
        (Structure.Supported_by, "G_h3", "Sn4");
      ]
    ~evidence:
      [
        Evidence.make ~id:(Id.of_string "E1") ~kind:Evidence.Analysis
          "interlock timing analysis";
        Evidence.make ~id:(Id.of_string "E2") ~kind:Evidence.Test_results
          "fault-injection campaign";
        Evidence.make ~id:(Id.of_string "E3") ~kind:Evidence.Field_data
          "two years of field returns";
        Evidence.make ~id:(Id.of_string "E4") ~kind:Evidence.Simulation
          "Monte-Carlo wear model";
      ]
    [
      Node.goal "G_root" "The machine is acceptably safe";
      Node.strategy "S_all" "Argument over all identified hazards";
      Node.goal "G_h1" "Hazard H1 (crush) is acceptably managed";
      Node.goal "G_h2" "Hazard H2 (runaway) is acceptably managed";
      Node.goal "G_h3" "Hazard H3 (wear-out) is acceptably managed";
      Node.solution ~evidence:"E1" "Sn1" "Timing analysis";
      Node.solution ~evidence:"E2" "Sn2" "Fault injection results";
      Node.solution ~evidence:"E3" "Sn3" "Field data";
      Node.solution ~evidence:"E4" "Sn4" "Wear simulation";
    ]

(* Formal counterpart: premises e1..e4 with e3 | e4 jointly implying the
   third hazard claim, and the conjunction implying safety. *)
let formal_counterpart =
  let p = Prop.of_string_exn in
  let proof =
    Natded.
      [
        { formula = p "e1"; rule = Premise };
        { formula = p "e2"; rule = Premise };
        { formula = p "e3"; rule = Premise };
        { formula = p "e1 -> h1"; rule = Premise };
        { formula = p "e2 -> h2"; rule = Premise };
        { formula = p "e3 | e4 -> h3"; rule = Premise };
        { formula = p "h1 & h2 & h3 -> safe"; rule = Premise };
        { formula = p "h1"; rule = Imp_elim (4, 1) };
        { formula = p "h2"; rule = Imp_elim (5, 2) };
        { formula = p "e3 | e4"; rule = Or_intro_left 3 };
        { formula = p "h3"; rule = Imp_elim (6, 10) };
        { formula = p "h1 & h2"; rule = And_intro (8, 9) };
        { formula = p "h1 & h2 & h3"; rule = And_intro (12, 11) };
        { formula = p "safe"; rule = Imp_elim (7, 13) };
      ]
  in
  Result.get_ok (Natded.check proof)

let evidence_premise = function
  | "E1" -> Prop.Var "e1"
  | "E2" -> Prop.Var "e2"
  | "E3" -> Prop.Var "e3"
  | "E4" -> Prop.Var "e4"  (* Not a premise: probing cannot even ask. *)
  | _ -> invalid_arg "evidence_premise"

let evidence_ids = [ "E1"; "E2"; "E3"; "E4" ]

let trust (_ : Evidence.t) = 0.9

let ground_truth () =
  List.map
    (fun eid ->
      (eid, Confidence.sensitivity ~trust specimen (Id.of_string eid)))
    evidence_ids

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let run ?pool cfg =
  let rng = Prng.create cfg.seed in
  let truth = ground_truth () in
  let baseline = Confidence.root_confidence ~trust specimen in
  let relative (eid, s) = (eid, if baseline > 0.0 then s /. baseline else s) in
  let truth_rel = List.map relative truth in
  (* The traced-node count and the probe verdict for an evidence item
     do not depend on the assessor, so run the Confidence kernels once
     per item instead of once per assessor per item. *)
  let traced_lengths =
    List.map
      (fun (eid, _) ->
        List.length (Confidence.impact_by_tracing specimen (Id.of_string eid)))
      truth_rel
  in
  let probe_verdicts =
    List.map
      (fun (eid, _) ->
        let premise = evidence_premise eid in
        let is_premise =
          List.exists (Prop.equal premise)
            formal_counterpart.Natded.premises
        in
        if is_premise then Confidence.probe_premise formal_counterpart premise
        else true)
      truth_rel
  in
  (* One assessor's judgments for each evidence item, under a
     procedure.  Returns (minutes, perceived) per item. *)
  let tracing_assessor rng =
    List.map2
      (fun (_, true_rel) n_traced ->
        let minutes =
          float_of_int n_traced
          *. Prng.lognormal rng ~mu:(log cfg.minutes_per_traced_node)
               ~sigma:0.3
        in
        let perceived =
          clamp01
            (Prng.gaussian rng ~mean:true_rel ~sd:cfg.tracing_noise_sd)
        in
        (minutes, perceived))
      truth_rel traced_lengths
  in
  let probing_assessor rng =
    List.map2
      (fun (_, _) still_follows ->
        let minutes =
          cfg.probe_setup_minutes /. float_of_int (List.length evidence_ids)
          +. Prng.lognormal rng ~mu:(log cfg.minutes_per_probe) ~sigma:0.3
        in
        (* The probe is binary: a broken proof reads as total
           dependence, an intact one as negligible — the coarseness the
           paper notes for matter-of-degree evidence. *)
        let mean = if still_follows then 0.05 else 0.95 in
        let perceived =
          clamp01 (Prng.gaussian rng ~mean ~sd:cfg.probing_noise_sd)
        in
        (minutes, perceived))
      truth_rel probe_verdicts
  in
  let run_procedure assessor =
    (* Assessor [i] draws from stream [i] of the procedure's generator,
       so judgments are identical whether assessors run sequentially or
       split across domains. *)
    let proc_rng = Prng.split rng in
    let all =
      Argus_par.Pool.init ?pool cfg.n_assessors (fun i ->
          assessor (Prng.stream proc_rng i))
      |> Array.to_list
    in
    let minutes =
      List.concat_map (fun judgments -> List.map fst judgments) all
    in
    (* Agreement matrix: evidence items x categories. *)
    let n_items = List.length evidence_ids in
    let matrix = Array.make_matrix n_items 3 0 in
    List.iter
      (fun judgments ->
        List.iteri
          (fun i (_, perceived) ->
            let j =
              match categorise perceived with
              | Negligible -> 0
              | Moderate -> 1
              | Critical -> 2
            in
            matrix.(i).(j) <- matrix.(i).(j) + 1)
          judgments)
      all;
    let errors =
      List.concat_map
        (fun judgments ->
          List.map2
            (fun (_, perceived) (_, true_rel) ->
              Float.abs (perceived -. true_rel))
            judgments truth_rel)
        all
    in
    {
      mean_minutes = Stats.mean minutes;
      kappa = Stats.fleiss_kappa matrix;
      mean_abs_error = Stats.mean errors;
    }
  in
  let tracing = run_procedure tracing_assessor in
  let probing = run_procedure probing_assessor in
  {
    config = cfg;
    n_evidence_items = List.length evidence_ids;
    ground_truth = truth_rel;
    tracing;
    probing;
  }

let pp ppf r =
  Format.fprintf ppf
    "Experiment E: complication of evidence sufficiency judgments@.";
  Format.fprintf ppf "  ground truth (relative impact): %s@."
    (String.concat ", "
       (List.map
          (fun (e, s) -> Printf.sprintf "%s=%.2f" e s)
          r.ground_truth));
  let line name p =
    Format.fprintf ppf
      "  %-8s %.1f min/judgment, Fleiss kappa %.2f, mean |error| %.2f@."
      name p.mean_minutes p.kappa p.mean_abs_error
  in
  line "tracing" r.tracing;
  line "probing" r.probing
