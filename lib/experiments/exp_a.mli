(** Experiment VI.A — the ability to automatically identify formal
    fallacies.

    The paper's protocol: "one group of volunteers reviews an argument
    for informal fallacies only, the other for both informal and formal
    fallacies, and the experimenters measure time taken.  The number of
    formal fallacies missed in manual review can be counted."

    The simulation builds a corpus of arguments seeded with known formal
    fallacies (generated so that {!Argus_fallacy.Formal} provably
    detects them — the tool arm runs the {e real} detector) and known
    informal fallacies (drawn from the Greenwell corpus, which the
    detector provably passes).  Stochastic reviewer models fill the two
    human arms. *)

type config = {
  seed : int;
  subjects_per_arm : int;
  n_arguments : int;  (** Arguments each subject reviews. *)
  steps_per_argument : int;  (** Inference steps per argument. *)
  formal_seed_rate : float;  (** P(step carries a formal fallacy). *)
  informal_seed_rate : float;
  minutes_per_step : float;  (** Median review minutes per step. *)
  formal_duty_overhead : float;
      (** Multiplier on per-step time for the both-duties arm. *)
  p_informal_detect : float;  (** Human hit rate on informal fallacies. *)
  p_formal_detect_with_duty : float;
  p_formal_detect_incidental : float;
      (** Hit rate on formal fallacies when not looking for them. *)
}

val default_config : config

type arm_result = {
  mean_minutes : float;
  ci_minutes : float * float;
  formal_seeded : int;
  formal_found : int;
  informal_seeded : int;
  informal_found : int;
}

type reviewer_overlap = {
  first_only : int;  (** Instances only reviewer 1 found. *)
  second_only : int;
  both : int;
  neither : int;
}

type result = {
  config : config;
  informal_only : arm_result;
  both_duties : arm_result;
  tool_formal_found : int;  (** Real detector hits on the seeded corpus. *)
  tool_formal_seeded : int;
  tool_false_positives : int;
      (** Real detector hits on the informal (Greenwell-style) seeds —
          expected 0, the paper's Section V.B point. *)
  time_test : Stats.t_test;  (** Both-duties vs informal-only minutes. *)
  overlap : reviewer_overlap;
      (** Two independent reviewers over the 45 Greenwell instances —
          the Section V.C observation that "each overlooked some
          fallacies that the other flagged". *)
}

val run : ?pool:Argus_par.Pool.t -> config -> result
(** Results are identical for any [?pool] (or none): subjects and
    tool-arm steps use per-index PRNG streams and pure checks, merged
    in index order. *)

val pp : Format.formatter -> result -> unit
