(** Experiment VI.B — the effort of formalisation.

    The paper: "This cost could be measured by observing volunteers
    performing the formalisation task and measuring the time needed.
    (The study design would have to account for learning effects and
    for the impact of formal methods expertise.)"

    Each simulated subject formalises a sequence of informal arguments
    into symbolic logic.  Per-node formalisation time follows a
    lognormal baseline, reduced by formal-methods expertise and by a
    power-law practice curve over successive tasks — the two covariates
    the paper says the design must account for. *)

type config = {
  seed : int;
  n_subjects : int;
  n_tasks : int;  (** Arguments per subject, in sequence. *)
  nodes_per_argument : int;
  minutes_per_node : float;  (** Median for a novice's first task. *)
  expertise_saving : float;
      (** Fractional time saved at expertise 1.0 (e.g. 0.45). *)
  learning_exponent : float;
      (** Power-law practice curve exponent (e.g. 0.25). *)
}

val default_config : config

type result = {
  config : config;
  mean_minutes_first_task : float;
  mean_minutes_last_task : float;
  learning_ratio : float;  (** last / first; < 1 shows learning. *)
  novice_minutes_per_node : float;  (** Expertise below median. *)
  expert_minutes_per_node : float;
  expertise_test : Stats.t_test;  (** Novice vs expert per-node times. *)
  minutes_for_100_node_argument : float;
      (** Projected cost of formalising a mid-sized case, post-practice,
          averaged over the subject pool. *)
}

val run : ?pool:Argus_par.Pool.t -> config -> result
(** Deterministic for any [?pool]: each subject's trajectory draws from
    a per-subject PRNG stream. *)

val pp : Format.formatter -> result -> unit
