module Pattern = Argus_patterns.Pattern
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Evidence = Argus_core.Evidence
module Id = Argus_core.Id

type defect =
  | Omitted_binding
  | Wrong_type
  | Out_of_range
  | Inconsistent_replacement
  | Semantically_wrong_value

type config = {
  seed : int;
  trials_per_arm : int;
  defect_rate : float;
  semantic_share : float;
  p_review_catch : float;
  p_review_catch_semantic : float;
  minutes_manual : float;
  minutes_tool : float;
  minutes_review : float;
  minutes_rework : float;
}

let default_config =
  {
    seed = 42;
    trials_per_arm = 200;
    defect_rate = 0.30;
    semantic_share = 0.25;
    p_review_catch = 0.60;
    p_review_catch_semantic = 0.25;
    minutes_manual = 35.0;
    minutes_tool = 22.0;
    minutes_review = 15.0;
    minutes_rework = 6.0;
  }

type arm_result = {
  trials : int;
  defects_injected : int;
  defects_caught : int;
  residual_defects : int;
  mean_minutes : float;
}

type result = {
  config : config;
  manual : arm_result;
  tool : arm_result;
  tool_checker_agreed : bool;
  residual_rate_manual : float;
  residual_rate_tool : float;
  time_test : Stats.t_test;
}

(* The specimen pattern: argue over each hazard, with a bounded CPU
   utilisation side-claim (the Matsuno range example). *)
let specimen_pattern =
  let structure =
    Structure.of_nodes
      ~links:
        [
          (Structure.Supported_by, "G_top", "S_hazards");
          (Structure.Supported_by, "S_hazards", "G_hazard");
          (Structure.Supported_by, "G_hazard", "Sn_hazard");
          (Structure.Supported_by, "G_top", "G_util");
          (Structure.Supported_by, "G_util", "Sn_util");
        ]
      ~evidence:
        [
          Evidence.make ~id:(Id.of_string "E_hz") ~kind:Evidence.Analysis
            "hazard analysis";
          Evidence.make ~id:(Id.of_string "E_util") ~kind:Evidence.Analysis
            "schedulability analysis";
        ]
      [
        Node.goal "G_top" "{system} is acceptably safe";
        Node.strategy "S_hazards" "Argument over each identified hazard";
        Node.goal "G_hazard" "Hazard {hazard} is acceptably managed";
        Node.solution ~evidence:"E_hz" "Sn_hazard" "Analysis of {hazard}";
        Node.goal "G_util" "CPU utilisation stays below {util} percent";
        Node.solution ~evidence:"E_util" "Sn_util" "Schedulability analysis";
      ]
  in
  Pattern.make ~name:"hazard-avoidance"
    ~params:
      [
        { Pattern.pname = "system"; ptype = Pattern.Pstring };
        {
          Pattern.pname = "util";
          ptype = Pattern.Pint { min = Some 0; max = Some 100 };
        };
        { Pattern.pname = "hazard"; ptype = Pattern.Plist Pattern.Pstring };
      ]
    ~replicate:[ ("G_hazard", "hazard") ]
    structure

let correct_binding k =
  [
    ("system", Pattern.Vstr (Printf.sprintf "System %d" k));
    ("util", Pattern.Vint 70);
    ( "hazard",
      Pattern.Vlist
        [ Pattern.Vstr "loss of control"; Pattern.Vstr "unintended activation" ]
    );
  ]

(* The would-be mistake of trial [k], arm-independent: both arms face
   the same schedule (a paired design), and the tool arm simply cannot
   commit an inconsistent replacement (the tool does the substitution). *)
let defect_schedule cfg rng =
  List.init cfg.trials_per_arm (fun _ ->
      if not (Prng.bernoulli rng cfg.defect_rate) then None
      else if Prng.bernoulli rng cfg.semantic_share then
        Some Semantically_wrong_value
      else
        Some
          (Prng.pick rng
             [ Omitted_binding; Wrong_type; Out_of_range; Inconsistent_replacement ]))

let corrupt_binding defect binding =
  match defect with
  | Omitted_binding -> List.remove_assoc "util" binding
  | Wrong_type ->
      ("util", Pattern.Vstr "Railway hazards") :: List.remove_assoc "util" binding
  | Out_of_range ->
      ("util", Pattern.Vint 250) :: List.remove_assoc "util" binding
  | Semantically_wrong_value ->
      (* Type-correct but wrong: the analysed bound was 70. *)
      ("util", Pattern.Vint 99) :: List.remove_assoc "util" binding
  | Inconsistent_replacement -> binding

let checker_catches defect binding =
  match Pattern.instantiate specimen_pattern (corrupt_binding defect binding) with
  | Error _ -> true
  | Ok _ -> false

let run ?pool cfg =
  let rng = Prng.create cfg.seed in
  let schedule = defect_schedule cfg (Prng.split rng) in
  let manual_rng = Prng.split rng and tool_rng = Prng.split rng in
  let schedule_arr = Array.of_list schedule in
  (* Both arms draw trial [k]'s numbers from stream [k] of the arm's
     generator and merge counts in trial order, so the results are
     identical whether trials run sequentially or across domains. *)
  let manual_trials =
    Argus_par.Pool.mapi_array ?pool
      (fun k defect ->
        let rng = Prng.stream manual_rng k in
        let t =
          Prng.lognormal rng ~mu:(log cfg.minutes_manual) ~sigma:0.3
          +. Prng.lognormal rng ~mu:(log cfg.minutes_review) ~sigma:0.3
        in
        match defect with
        | None -> (t, 0, 0, 0)
        | Some d ->
            let p =
              match d with
              | Semantically_wrong_value -> cfg.p_review_catch_semantic
              | _ -> cfg.p_review_catch
            in
            if Prng.bernoulli rng p then (t, 1, 1, 0) else (t, 1, 0, 1))
      schedule_arr
  in
  let manual_minutes =
    Array.to_list (Array.map (fun (t, _, _, _) -> t) manual_trials)
  in
  let sum4 f = Array.fold_left (fun acc x -> acc + f x) 0 manual_trials in
  let m_injected = sum4 (fun (_, i, _, _) -> i) in
  let m_caught = sum4 (fun (_, _, c, _) -> c) in
  let m_residual = sum4 (fun (_, _, _, r) -> r) in
  (* Tool arm: same schedule, and the checker is real. *)
  let tool_trials =
    Argus_par.Pool.mapi_array ?pool
      (fun k defect ->
        let rng = Prng.stream tool_rng k in
        let base = Prng.lognormal rng ~mu:(log cfg.minutes_tool) ~sigma:0.3 in
        let binding = correct_binding k in
        match defect with
        | None -> (base, 0, 0, 0, true)
        | Some Inconsistent_replacement ->
            (* The tool substitutes mechanically: the mistake cannot be
               committed in the first place. *)
            (base, 1, 1, 0, true)
        | Some d ->
            let caught = checker_catches d binding in
            let agreed = caught = (d <> Semantically_wrong_value) in
            if caught then
              let rework =
                Prng.lognormal rng ~mu:(log cfg.minutes_rework) ~sigma:0.3
              in
              (base +. rework, 1, 1, 0, agreed)
            else (base, 1, 0, 1, agreed))
      schedule_arr
  in
  let tool_minutes =
    Array.to_list (Array.map (fun (t, _, _, _, _) -> t) tool_trials)
  in
  let sum5 f = Array.fold_left (fun acc x -> acc + f x) 0 tool_trials in
  let t_injected = sum5 (fun (_, i, _, _, _) -> i) in
  let t_caught = sum5 (fun (_, _, c, _, _) -> c) in
  let t_residual = sum5 (fun (_, _, _, r, _) -> r) in
  let checker_agreed =
    Array.for_all (fun (_, _, _, _, a) -> a) tool_trials
  in
  let arm trials injected caught residual minutes =
    {
      trials;
      defects_injected = injected;
      defects_caught = caught;
      residual_defects = residual;
      mean_minutes = Stats.mean minutes;
    }
  in
  let manual =
    arm cfg.trials_per_arm m_injected m_caught m_residual manual_minutes
  in
  let tool =
    arm cfg.trials_per_arm t_injected t_caught t_residual tool_minutes
  in
  {
    config = cfg;
    manual;
    tool;
    tool_checker_agreed = checker_agreed;
    residual_rate_manual =
      float_of_int manual.residual_defects /. float_of_int manual.trials;
    residual_rate_tool =
      float_of_int tool.residual_defects /. float_of_int tool.trials;
    time_test = Stats.welch_t tool_minutes manual_minutes;
  }

let pp_arm ppf name a =
  Format.fprintf ppf
    "  %-8s %4d trials  %3d defects injected, %3d caught, %3d residual, \
     %.1f min/trial@."
    name a.trials a.defects_injected a.defects_caught a.residual_defects
    a.mean_minutes

let pp ppf r =
  Format.fprintf ppf
    "Experiment D: more reliably correct pattern instantiation@.";
  pp_arm ppf "manual" r.manual;
  pp_arm ppf "tool" r.tool;
  Format.fprintf ppf
    "  residual defect rate: manual %.3f vs tool %.3f; checker agreed: %b@."
    r.residual_rate_manual r.residual_rate_tool r.tool_checker_agreed;
  Format.fprintf ppf "  time difference: Welch t = %.2f, p = %.4f@."
    r.time_test.Stats.t r.time_test.Stats.p
