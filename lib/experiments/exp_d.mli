(** Experiment VI.D — more reliably correct pattern instantiation.

    The paper: "we could measure and compare defect rates between
    volunteers who instantiate informal patterns and review them and
    volunteers that use a formalised pattern instantiation tool with
    parameter checking.  We could also measure whether the proposed
    mechanism speeds up or slows down argument creation."

    The tool arm is not a model: every trial's binding is fed to the
    {e real} {!Argus_patterns.Pattern.instantiate} checker, and "caught"
    means the checker actually returned an error.  Injected defects
    cover the classes the Matsuno papers discuss (omitted binding,
    type mismatch, out-of-range value, inconsistent manual replacement)
    plus one the paper predicts no checker can catch: a type-correct but
    semantically wrong value. *)

type defect =
  | Omitted_binding
  | Wrong_type
  | Out_of_range
  | Inconsistent_replacement  (** Only possible in the manual arm. *)
  | Semantically_wrong_value
      (** Type-correct but wrong; invisible to the checker. *)

type config = {
  seed : int;
  trials_per_arm : int;
  defect_rate : float;  (** P(a trial's instantiation has a defect). *)
  semantic_share : float;
      (** Share of defects that are semantically-wrong-value. *)
  p_review_catch : float;  (** Manual review hit rate on visible defects. *)
  p_review_catch_semantic : float;
  minutes_manual : float;  (** Median manual instantiation minutes. *)
  minutes_tool : float;  (** Median tool-assisted entry minutes. *)
  minutes_review : float;
  minutes_rework : float;  (** Cost of fixing a tool-caught defect. *)
}

val default_config : config

type arm_result = {
  trials : int;
  defects_injected : int;
  defects_caught : int;
  residual_defects : int;
  mean_minutes : float;
}

type result = {
  config : config;
  manual : arm_result;
  tool : arm_result;
  tool_checker_agreed : bool;
      (** The real checker flagged exactly the checkable defect classes
          (and passed the semantic ones) in every trial. *)
  residual_rate_manual : float;
  residual_rate_tool : float;
  time_test : Stats.t_test;  (** Tool vs manual trial minutes. *)
}

val run : ?pool:Argus_par.Pool.t -> config -> result
(** Deterministic for any [?pool]: each trial draws from a per-trial
    PRNG stream and counts merge in trial order. *)

val pp : Format.formatter -> result -> unit
