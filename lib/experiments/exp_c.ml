module Lifecycle = Argus_core.Lifecycle

type config = {
  seed : int;
  subjects_per_role : int;
  informal_words : int;
  formal_words : int;
  formal_formula_symbols : int;
  base_wpm : float;
  literate_symbol_spm : float;
  illiterate_symbol_spm : float;
  base_comprehension : float;
  literate_formal_comprehension : float;
  illiterate_formal_comprehension : float;
}

let default_config =
  {
    seed = 42;
    subjects_per_role = 40;
    informal_words = 1200;
    formal_words = 500;
    formal_formula_symbols = 420;
    base_wpm = 220.0;
    literate_symbol_spm = 55.0;
    illiterate_symbol_spm = 14.0;
    base_comprehension = 0.80;
    literate_formal_comprehension = 0.82;
    illiterate_formal_comprehension = 0.45;
  }

type role_result = {
  role : Lifecycle.role;
  n_literate : int;
  n_subjects : int;
  informal_minutes : float;
  formal_minutes : float;
  informal_comprehension : float;
  formal_comprehension : float;
}

type result = {
  config : config;
  per_role : role_result list;
  comprehension_gap_vs_literacy : (float * float) list;
  gap_literacy_correlation : float;
}

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let subject_run cfg rng role =
  let literate = Prng.bernoulli rng (Lifecycle.logic_literacy role) in
  let wpm = Float.max 60.0 (Prng.gaussian rng ~mean:cfg.base_wpm ~sd:35.0) in
  let informal_minutes = float_of_int cfg.informal_words /. wpm in
  let spm =
    let mean =
      if literate then cfg.literate_symbol_spm else cfg.illiterate_symbol_spm
    in
    Float.max 2.0 (Prng.gaussian rng ~mean ~sd:(0.25 *. mean))
  in
  let formal_minutes =
    (float_of_int cfg.formal_words /. wpm)
    +. (float_of_int cfg.formal_formula_symbols /. spm)
  in
  let informal_comprehension =
    clamp01 (Prng.gaussian rng ~mean:cfg.base_comprehension ~sd:0.08)
  in
  let formal_comprehension =
    let mean =
      if literate then cfg.literate_formal_comprehension
      else cfg.illiterate_formal_comprehension
    in
    clamp01 (Prng.gaussian rng ~mean ~sd:0.10)
  in
  (literate, informal_minutes, formal_minutes, informal_comprehension,
   formal_comprehension)

let run ?pool cfg =
  let rng = Prng.create cfg.seed in
  let per_role =
    List.map
      (fun role ->
        let rng = Prng.split rng in
        (* Subject [i] draws from stream [i] of the role's generator, so
           the role's numbers do not depend on how subjects are split
           across domains. *)
        let runs =
          Argus_par.Pool.init ?pool cfg.subjects_per_role (fun i ->
              subject_run cfg (Prng.stream rng i) role)
          |> Array.to_list
        in
        let pick f = List.map f runs in
        {
          role;
          n_literate =
            List.length (List.filter (fun (l, _, _, _, _) -> l) runs);
          n_subjects = cfg.subjects_per_role;
          informal_minutes = Stats.mean (pick (fun (_, m, _, _, _) -> m));
          formal_minutes = Stats.mean (pick (fun (_, _, m, _, _) -> m));
          informal_comprehension =
            Stats.mean (pick (fun (_, _, _, c, _) -> c));
          formal_comprehension = Stats.mean (pick (fun (_, _, _, _, c) -> c));
        })
      Lifecycle.all_roles
  in
  let comprehension_gap_vs_literacy =
    List.map
      (fun r ->
        ( Lifecycle.logic_literacy r.role,
          r.informal_comprehension -. r.formal_comprehension ))
      per_role
  in
  {
    config = cfg;
    per_role;
    comprehension_gap_vs_literacy;
    gap_literacy_correlation = Stats.pearson_r comprehension_gap_vs_literacy;
  }

let pp ppf r =
  Format.fprintf ppf "Experiment C: restriction of the reading audience@.";
  Format.fprintf ppf "  %-22s %8s %13s %13s %12s %12s@." "role" "literate"
    "informal min" "formal min" "informal c." "formal c.";
  List.iter
    (fun rr ->
      Format.fprintf ppf "  %-22s %4d/%-3d %13.1f %13.1f %12.2f %12.2f@."
        (Lifecycle.role_to_string rr.role)
        rr.n_literate rr.n_subjects rr.informal_minutes rr.formal_minutes
        rr.informal_comprehension rr.formal_comprehension)
    r.per_role;
  Format.fprintf ppf
    "  correlation of comprehension gap with logic literacy: r = %.2f@."
    r.gap_literacy_correlation
