(** Well-formedness checking of GSN structures.

    Two rule sets:

    - {!Standard} follows the GSN Community Standard's prose syntax
      rules: goals may be supported by goals, strategies or solutions;
      strategies by goals; contextual elements support nothing; the
      SupportedBy relation is acyclic; solutions are leaves; and
      "solutions cannot be in the context of an away goal" (the rule the
      paper quotes in Section II.B).

    - {!Denney_pai_2013} reproduces the formalisation of Denney and
      Pai's SAFECOMP 2013 paper {e including its discrepancy}: their
      rule [(n -> m) ∧ l(n) = g ⇒ l(m) ∈ {{s, e, a, j, c}}] forbids
      goal-to-goal support, which the standard explicitly allows — the
      paper points this out in Section III.I.  Under this rule set a
      goal directly supported by a goal is an error
      (["gsn/dp-goal-under-goal"]). *)

type ruleset = Standard | Denney_pai_2013

val check :
  ?ruleset:ruleset -> Structure.t -> Argus_core.Diagnostic.t list
(** Diagnostics carry codes under ["gsn/"].  Errors:
    ["gsn/dangling-link"], ["gsn/bad-support-link"],
    ["gsn/bad-context-link"], ["gsn/solution-in-context-of-away-goal"],
    ["gsn/cycle"], ["gsn/no-root"], ["gsn/unsupported-goal"],
    ["gsn/undeveloped-strategy"], ["gsn/unknown-evidence"],
    ["gsn/empty-text"], ["gsn/placeholder-text"], and (strict set only)
    ["gsn/dp-goal-under-goal"].  Warnings: ["gsn/multiple-roots"],
    ["gsn/root-not-goal"], ["gsn/undeveloped-with-support"],
    ["gsn/solution-without-evidence"], ["gsn/unreachable"],
    ["gsn/non-propositional-goal"], ["gsn/uninstantiated"],
    ["gsn/weak-evidence"]. *)

val is_well_formed : ?ruleset:ruleset -> Structure.t -> bool
(** No errors (warnings allowed). *)

val error_codes : string list
(** All error codes the checker can emit, for the experiment harness's
    defect classification. *)

(** {2 Rule predicates}

    The pure per-link / per-node predicates behind the checker, exposed
    so the fused array-IR checker ({!Argus_ir.Fused}) applies literally
    the same rules rather than a re-transcription of them. *)

val support_target_ok : Node.node_type -> Node.node_type -> bool
(** [support_target_ok src dst]: may [src] be supported by [dst]? *)

val context_source_ok : Node.node_type -> bool
val context_target_ok : Node.node_type -> bool

val has_placeholder : string -> bool
(** Text still contains a [{placeholder}]. *)

val claims_universally : string -> bool
(** Text contains a universal marker ("all", "always", "never",
    "every", "any") — the paper's wcet example hinges on one. *)
