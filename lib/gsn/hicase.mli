(** Hierarchical safety cases ("hicases", Denney, Pai & Whiteside).

    A hicase is an argument structure plus a fold state: any node may be
    {e collapsed}, hiding its supported subtree (and that subtree's
    contextual elements) from the rendered view.  The motivation in the
    surveyed paper is reading large cases on screen: formalised syntax
    is what makes fold/unfold well-defined.

    The central invariant, checked by property tests: the visible
    structure of any fold state of a well-formed case is well-formed,
    with collapsed nodes rendered as undeveloped.  *)

type t

val of_structure : Structure.t -> t
(** Fully expanded view. *)

val structure : t -> Structure.t
(** The underlying, complete structure (never mutated by folding). *)

val collapsed : t -> Argus_core.Id.Set.t

val collapse : Argus_core.Id.t -> t -> t
(** Mark a node collapsed.  Collapsing an unknown node or a leaf is a
    no-op.  Nested collapses are allowed; the outermost wins in the
    view. *)

val expand : Argus_core.Id.t -> t -> t
val expand_all : t -> t
val toggle : Argus_core.Id.t -> t -> t

val is_visible : Argus_core.Id.t -> t -> bool
(** Whether the node appears in the current view (i.e. is not hidden
    inside some collapsed subtree).  A collapsed node is itself
    visible; its supportees are not. *)

val visible : ?budget:Argus_rt.Budget.t -> t -> Structure.t
(** The view: hidden nodes and their links removed; collapsed nodes
    re-marked {!Node.Undeveloped} so the view remains a well-formed
    argument fragment.  The budget (default unlimited) is ticked once
    per node visited; on exhaustion the traversal stops and the view is
    a partial fragment with the budget marked (check
    {!Argus_rt.Budget.exhausted}).  The ["hicase.visible"] fault probe
    fires at entry (DESIGN.md §10). *)

val visible_count : t -> int

val collapse_to_depth : int -> t -> t
(** Collapse every node at the given depth from the root(s) (depth 0 =
    roots), producing the "level-k overview" reading the hicases paper
    describes. *)
