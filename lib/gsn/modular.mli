(** Modular GSN: collections of argument modules.

    The GSN standard's modular extension lets one module's argument
    cite another's goals ({e away goals}), reference whole supporting
    modules, and state inter-module {e contracts}.  A single
    {!Structure.t} holds one module; this module checks a whole
    {e collection}: every away goal must name a module in the
    collection and a public goal within it, module references must
    resolve, contracts must name modules on both sides, and the
    module-dependency graph must be acyclic.

    This is the context for the syntax rule the paper quotes
    ("solutions cannot be in the context of an away goal", enforced
    per-module by {!Wellformed.check}); here the cross-module half of
    the story is checked. *)

type t
(** A collection of named modules. *)

val empty : t

val add_module :
  name:Argus_core.Id.t ->
  ?public:Argus_core.Id.t list ->
  Structure.t ->
  t ->
  t
(** Adds (or replaces) a module.  [public] lists the goals other
    modules may cite with away goals; defaults to the module's root
    goals. *)

val find : Argus_core.Id.t -> t -> Structure.t option
val module_names : t -> Argus_core.Id.t list
val public_goals : Argus_core.Id.t -> t -> Argus_core.Id.t list

val dependencies : Argus_core.Id.t -> t -> Argus_core.Id.t list
(** Modules this module cites via away goals, module references or
    contracts, without duplicates. *)

val check : ?pool:Argus_par.Pool.t -> t -> Argus_core.Diagnostic.t list
(** Runs {!Wellformed.check} on each module — across the pool's domains
    when [?pool] is given, with identical diagnostics in either mode —
    (diagnostics prefixed with the module name in the message), plus
    the cross-module rules, codes under ["modular/"]:
    - ["modular/unknown-module"] — an away goal, module reference or
      contract names a module not in the collection;
    - ["modular/away-goal-target"] — the cited module has no goal with
      the away goal's id (an away goal displays the referenced goal's
      identifier, so the ids must match);
    - ["modular/private-goal"] (warning) — the cited goal exists but is
      not public;
    - ["modular/dependency-cycle"] — the module dependency graph is
      cyclic. *)

val check_with :
  ?pool:Argus_par.Pool.t ->
  wf:(Structure.t -> Argus_core.Diagnostic.t list) ->
  t ->
  Argus_core.Diagnostic.t list
(** {!check} with the per-module well-formedness checker injected —
    the seam that lets a compiled checker (lib/ir's fused pass) run
    per module while the cross-module rules stay here.  [wf] must be
    extensionally equal to {!Wellformed.check} for the result to match
    {!check}. *)

val is_well_formed : t -> bool
