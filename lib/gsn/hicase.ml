module Id = Argus_core.Id
module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

type t = { structure : Structure.t; collapsed : Id.Set.t }

let of_structure structure = { structure; collapsed = Id.Set.empty }
let structure t = t.structure
let collapsed t = t.collapsed

let collapse id t =
  match Structure.find id t.structure with
  | None -> t
  | Some _ ->
      if Structure.children Structure.Supported_by id t.structure = [] then t
      else { t with collapsed = Id.Set.add id t.collapsed }

let expand id t = { t with collapsed = Id.Set.remove id t.collapsed }
let expand_all t = { t with collapsed = Id.Set.empty }

let toggle id t =
  if Id.Set.mem id t.collapsed then expand id t else collapse id t

(* Nodes hidden by the fold state: strict supported-descendants of a
   collapsed node, not re-rooted elsewhere...  visibility is defined by
   traversal from the roots that stops below collapsed nodes. *)
let visible_ids ?(budget = Budget.unlimited) t =
  let rec go visited id =
    (* On exhaustion the traversal stops where it stands — the view is
       a partial (but well-formed) fragment and the budget is marked. *)
    if Id.Set.mem id visited || not (Budget.tick budget ~engine:"hicase")
    then visited
    else
      let visited = Id.Set.add id visited in
      let visited =
        List.fold_left
          (fun acc ctx -> Id.Set.add ctx acc)
          visited
          (Structure.context_of id t.structure)
      in
      if Id.Set.mem id t.collapsed then visited
      else
        List.fold_left go visited
          (Structure.children Structure.Supported_by id t.structure)
  in
  List.fold_left go Id.Set.empty (Structure.roots t.structure)

let is_visible id t = Id.Set.mem id (visible_ids t)

let visible ?budget t =
  Fault.point "hicase.visible";
  let keep = visible_ids ?budget t in
  let restricted = Structure.restrict keep t.structure in
  Structure.map_nodes
    (fun n ->
      if
        Id.Set.mem n.Node.id t.collapsed
        && Structure.children Structure.Supported_by n.Node.id restricted = []
      then { n with Node.status = Node.Undeveloped }
      else n)
    restricted

let visible_count t = Id.Set.cardinal (visible_ids t)

let collapse_to_depth depth t =
  let rec go d t id =
    if d = depth then collapse id t
    else
      List.fold_left (go (d + 1))
        t
        (Structure.children Structure.Supported_by id t.structure)
  in
  List.fold_left (go 0) (expand_all t) (Structure.roots t.structure)
