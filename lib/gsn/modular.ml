module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic

type entry = { structure : Structure.t; public : Id.t list }

type t = { modules : entry Id.Map.t; order : Id.t list }

let empty = { modules = Id.Map.empty; order = [] }

let add_module ~name ?public structure t =
  let public =
    match public with Some p -> p | None -> Structure.roots structure
  in
  {
    modules = Id.Map.add name { structure; public } t.modules;
    order =
      (if List.exists (Id.equal name) t.order then t.order
       else t.order @ [ name ]);
  }

let find name t =
  Option.map (fun e -> e.structure) (Id.Map.find_opt name t.modules)

let module_names t = t.order

let public_goals name t =
  match Id.Map.find_opt name t.modules with
  | Some e -> e.public
  | None -> []

let cited_modules structure =
  Structure.fold_nodes
    (fun n acc ->
      match n.Node.node_type with
      | Node.Away_goal m | Node.Module_ref m | Node.Contract m ->
          if List.exists (Id.equal m) acc then acc else acc @ [ m ]
      | Node.Goal | Node.Strategy | Node.Solution | Node.Context
      | Node.Assumption | Node.Justification ->
          acc)
    structure []

let dependencies name t =
  match Id.Map.find_opt name t.modules with
  | None -> []
  | Some e -> cited_modules e.structure

let dependency_cycle t =
  let rec visit path visited name =
    if List.exists (Id.equal name) path then Some (List.rev (name :: path))
    else if Id.Set.mem name visited then None
    else
      List.fold_left
        (fun found dep ->
          match found with
          | Some _ -> found
          | None -> visit (name :: path) visited dep)
        None (dependencies name t)
  in
  let visited = ref Id.Set.empty in
  List.fold_left
    (fun found name ->
      match found with
      | Some _ -> found
      | None ->
          let r = visit [] !visited name in
          if r = None then visited := Id.Set.add name !visited;
          r)
    None t.order

let check_with ?pool ~wf t =
  let out = ref [] in
  let add d = out := d :: !out in
  (* Per-module well-formedness, with module-qualified messages.  Each
     module's check is independent, so the collection fans out across
     the pool; diagnostics come back in module order either way. *)
  let per_module =
    Argus_par.Pool.map_list ?pool
      (fun name ->
        match Id.Map.find_opt name t.modules with
        | None -> []
        | Some e ->
            List.map
              (fun d ->
                {
                  d with
                  Diagnostic.message =
                    Printf.sprintf "[module %s] %s" (Id.to_string name)
                      d.Diagnostic.message;
                })
              (wf e.structure))
      t.order
  in
  List.iter (List.iter add) per_module;
  (* Cross-module rules. *)
  List.iter
    (fun name ->
      match Id.Map.find_opt name t.modules with
      | None -> ()
      | Some e ->
          Structure.fold_nodes
            (fun n () ->
              match n.Node.node_type with
              | Node.Away_goal target -> (
                  match Id.Map.find_opt target t.modules with
                  | None ->
                      add
                        (Diagnostic.errorf ~code:"modular/unknown-module"
                           ~subjects:[ n.Node.id; target ]
                           "[module %s] away goal cites unknown module %s"
                           (Id.to_string name) (Id.to_string target))
                  | Some cited -> (
                      match Structure.find n.Node.id cited.structure with
                      | Some { Node.node_type = Node.Goal; _ } ->
                          if
                            not
                              (List.exists (Id.equal n.Node.id) cited.public)
                          then
                            add
                              (Diagnostic.warningf
                                 ~code:"modular/private-goal"
                                 ~subjects:[ n.Node.id; target ]
                                 "[module %s] away goal cites a goal that \
                                  module %s does not publish"
                                 (Id.to_string name) (Id.to_string target))
                      | Some _ | None ->
                          add
                            (Diagnostic.errorf
                               ~code:"modular/away-goal-target"
                               ~subjects:[ n.Node.id; target ]
                               "[module %s] module %s has no goal %s"
                               (Id.to_string name) (Id.to_string target)
                               (Id.to_string n.Node.id))))
              | Node.Module_ref target | Node.Contract target ->
                  if not (Id.Map.mem target t.modules) then
                    add
                      (Diagnostic.errorf ~code:"modular/unknown-module"
                         ~subjects:[ n.Node.id; target ]
                         "[module %s] reference to unknown module %s"
                         (Id.to_string name) (Id.to_string target))
              | Node.Goal | Node.Strategy | Node.Solution | Node.Context
              | Node.Assumption | Node.Justification ->
                  ())
            e.structure ())
    t.order;
  (match dependency_cycle t with
  | None -> ()
  | Some witness ->
      add
        (Diagnostic.errorf ~code:"modular/dependency-cycle" ~subjects:witness
           "module dependencies are cyclic"));
  Diagnostic.sort (List.rev !out)

let check ?pool t = check_with ?pool ~wf:Wellformed.check t
let is_well_formed t = not (Diagnostic.has_errors (check t))
