module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence

type ruleset = Standard | Denney_pai_2013

let error_codes =
  [
    "gsn/dangling-link";
    "gsn/bad-support-link";
    "gsn/bad-context-link";
    "gsn/solution-in-context-of-away-goal";
    "gsn/cycle";
    "gsn/no-root";
    "gsn/unsupported-goal";
    "gsn/undeveloped-strategy";
    "gsn/unknown-evidence";
    "gsn/empty-text";
    "gsn/placeholder-text";
    "gsn/dp-goal-under-goal";
  ]

let support_target_ok src dst =
  match (src : Node.node_type) with
  | Node.Goal | Node.Away_goal _ -> (
      match (dst : Node.node_type) with
      | Node.Goal | Node.Away_goal _ | Node.Strategy | Node.Solution
      | Node.Module_ref _ | Node.Contract _ ->
          true
      | Node.Context | Node.Assumption | Node.Justification -> false)
  | Node.Strategy -> (
      match dst with
      | Node.Goal | Node.Away_goal _ | Node.Module_ref _ | Node.Contract _ ->
          true
      | Node.Strategy | Node.Solution | Node.Context | Node.Assumption
      | Node.Justification ->
          false)
  | Node.Solution | Node.Context | Node.Assumption | Node.Justification
  | Node.Module_ref _ | Node.Contract _ ->
      false

let context_source_ok = function
  | Node.Goal | Node.Away_goal _ | Node.Strategy -> true
  | Node.Solution | Node.Context | Node.Assumption | Node.Justification
  | Node.Module_ref _ | Node.Contract _ ->
      false

let context_target_ok = function
  | Node.Context | Node.Assumption | Node.Justification | Node.Away_goal _ ->
      true
  | Node.Goal | Node.Strategy | Node.Solution | Node.Module_ref _
  | Node.Contract _ ->
      false

let has_placeholder text =
  String.contains text '{' && String.contains text '}'

let universal_markers = [ "all"; "always"; "never"; "every"; "any" ]

let claims_universally text =
  let words =
    List.map String.lowercase_ascii (Argus_core.Textutil.words text)
  in
  List.exists (fun w -> List.mem w universal_markers) words

(* Checker counters (catalogue in DESIGN.md). *)
let c_nodes_visited = Argus_obs.Counter.make "gsn.wf.nodes_visited"
let c_links_checked = Argus_obs.Counter.make "gsn.wf.links_checked"
let c_findings = Argus_obs.Counter.make "gsn.wf.findings"

let check ?(ruleset = Standard) structure =
  Argus_obs.Span.with_ ~name:"gsn.wellformed" @@ fun () ->
  let out = ref [] in
  let add d =
    Argus_obs.Counter.incr c_findings;
    out := d :: !out
  in
  let node id = Structure.find id structure in
  (* Link rules. *)
  Argus_obs.Span.with_ ~name:"gsn.wellformed.links" (fun () ->
  List.iter
    (fun (kind, src, dst) ->
      Argus_obs.Counter.incr c_links_checked;
      match (node src, node dst) with
      | None, _ | _, None ->
          add
            (Diagnostic.errorf ~code:"gsn/dangling-link" ~subjects:[ src; dst ]
               "link references a missing node")
      | Some s, Some d -> (
          match kind with
          | Structure.Supported_by ->
              if not (support_target_ok s.Node.node_type d.Node.node_type) then
                add
                  (Diagnostic.errorf ~code:"gsn/bad-support-link"
                     ~subjects:[ src; dst ]
                     "a %s cannot be supported by a %s"
                     (Node.type_to_string s.Node.node_type)
                     (Node.type_to_string d.Node.node_type))
              else if
                ruleset = Denney_pai_2013
                && s.Node.node_type = Node.Goal
                && d.Node.node_type = Node.Goal
              then
                add
                  (Diagnostic.errorf ~code:"gsn/dp-goal-under-goal"
                     ~subjects:[ src; dst ]
                     "goal directly supports a goal (forbidden by the \
                      Denney-Pai 2013 formalisation, though the GSN \
                      standard allows it)")
          | Structure.In_context_of ->
              let bad_src = not (context_source_ok s.Node.node_type) in
              let bad_dst = not (context_target_ok d.Node.node_type) in
              if bad_src || bad_dst then
                if
                  (match s.Node.node_type with
                  | Node.Away_goal _ -> true
                  | _ -> false)
                  && d.Node.node_type = Node.Solution
                then
                  add
                    (Diagnostic.errorf
                       ~code:"gsn/solution-in-context-of-away-goal"
                       ~subjects:[ src; dst ]
                       "a solution cannot be in the context of an away goal")
                else
                  add
                    (Diagnostic.errorf ~code:"gsn/bad-context-link"
                       ~subjects:[ src; dst ]
                       "%s cannot be in the context of %s"
                       (Node.type_to_string d.Node.node_type)
                       (Node.type_to_string s.Node.node_type))))
    (Structure.links structure));
  (* Cycles. *)
  Argus_obs.Span.with_ ~name:"gsn.wellformed.cycles" (fun () ->
  match Structure.has_cycle structure with
  | None -> ()
  | Some witness ->
      add
        (Diagnostic.errorf ~code:"gsn/cycle" ~subjects:witness
           "the SupportedBy relation is cyclic"));
  (* Roots and reachability. *)
  let roots = Structure.roots structure in
  (if Structure.size structure > 0 then
     match roots with
     | [] ->
         add
           (Diagnostic.error ~code:"gsn/no-root"
              "no root element (every non-contextual node is supported)")
     | [ root ] -> (
         match node root with
         | Some n when n.Node.node_type <> Node.Goal ->
             add
               (Diagnostic.warningf ~code:"gsn/root-not-goal"
                  ~subjects:[ root ] "the root element is a %s, not a goal"
                  (Node.type_to_string n.Node.node_type))
         | _ -> ())
     | _ :: _ :: _ ->
         add
           (Diagnostic.warningf ~code:"gsn/multiple-roots" ~subjects:roots
              "%d root elements (a connected argument has one)"
              (List.length roots)));
  let reachable =
    List.fold_left
      (fun acc root ->
        let sub = Structure.supported_subtree root structure in
        let with_ctx =
          List.concat_map (fun id -> Structure.context_of id structure) sub
        in
        Id.Set.union acc (Id.Set.of_list (sub @ with_ctx)))
      Id.Set.empty roots
  in
  (* Per-node rules. *)
  Argus_obs.Span.with_ ~name:"gsn.wellformed.nodes" (fun () ->
  List.iter
    (fun n ->
      Argus_obs.Counter.incr c_nodes_visited;
      let id = n.Node.id in
      let support_children =
        Structure.children Structure.Supported_by id structure
      in
      if String.trim n.Node.text = "" then
        add
          (Diagnostic.errorf ~code:"gsn/empty-text" ~subjects:[ id ]
             "node has no text");
      (match n.Node.status with
      | Node.Developed ->
          if has_placeholder n.Node.text then
            add
              (Diagnostic.errorf ~code:"gsn/placeholder-text" ~subjects:[ id ]
                 "developed node still contains a {placeholder}")
      | Node.Uninstantiated | Node.Undeveloped_uninstantiated ->
          add
            (Diagnostic.warningf ~code:"gsn/uninstantiated" ~subjects:[ id ]
               "node awaits instantiation")
      | Node.Undeveloped ->
          if support_children <> [] then
            add
              (Diagnostic.warningf ~code:"gsn/undeveloped-with-support"
                 ~subjects:[ id ]
                 "node is marked undeveloped yet has supporting elements"));
      (match n.Node.node_type with
      | Node.Goal ->
          if
            support_children = []
            && (n.Node.status = Node.Developed
               || n.Node.status = Node.Uninstantiated)
          then
            add
              (Diagnostic.errorf ~code:"gsn/unsupported-goal" ~subjects:[ id ]
                 "goal is neither supported nor marked undeveloped");
          if not (Node.looks_propositional n.Node.text) then
            add
              (Diagnostic.warningf ~code:"gsn/non-propositional-goal"
                 ~subjects:[ id ]
                 "goal text does not read as a proposition")
      | Node.Strategy ->
          if
            support_children = []
            && (n.Node.status = Node.Developed
               || n.Node.status = Node.Uninstantiated)
          then
            add
              (Diagnostic.errorf ~code:"gsn/undeveloped-strategy"
                 ~subjects:[ id ]
                 "strategy has no supporting goals and is not marked \
                  undeveloped")
      | Node.Solution -> (
          match n.Node.evidence with
          | None ->
              add
                (Diagnostic.warningf ~code:"gsn/solution-without-evidence"
                   ~subjects:[ id ] "solution cites no evidence item")
          | Some ev_id -> (
              match Structure.find_evidence ev_id structure with
              | None ->
                  add
                    (Diagnostic.errorf ~code:"gsn/unknown-evidence"
                       ~subjects:[ id; ev_id ]
                       "solution cites an unregistered evidence item")
              | Some ev ->
                  (* The paper's wcet example: a universal claim resting
                     on evidence that cannot support universals. *)
                  let parents =
                    Structure.parents Structure.Supported_by id structure
                  in
                  List.iter
                    (fun pid ->
                      match node pid with
                      | Some p
                        when Node.is_goal_like p.Node.node_type
                             && claims_universally p.Node.text
                             && not
                                  (Evidence.supports_kind ev.Evidence.kind
                                     Evidence.Universal) ->
                          add
                            (Diagnostic.warningf ~code:"gsn/weak-evidence"
                               ~subjects:[ pid; id ]
                               "universal claim rests on %s evidence"
                               (Evidence.kind_to_string ev.Evidence.kind))
                      | _ -> ())
                    parents))
      | Node.Context | Node.Assumption | Node.Justification | Node.Away_goal _
      | Node.Module_ref _ | Node.Contract _ ->
          ());
      if (not (Id.Set.mem id reachable)) && roots <> [] then
        add
          (Diagnostic.warningf ~code:"gsn/unreachable" ~subjects:[ id ]
             "node is not reachable from any root"))
    (Structure.nodes structure));
  Diagnostic.sort (List.rev !out)

let is_well_formed ?ruleset structure =
  not (Diagnostic.has_errors (check ?ruleset structure))
