module Id = Argus_core.Id
module Evidence = Argus_core.Evidence

type link = Supported_by | In_context_of

type t = {
  node_map : Node.t Id.Map.t;
  node_order : Id.t list;  (** Insertion order, newest last. *)
  link_list : (link * Id.t * Id.t) list;  (** Insertion order, newest last. *)
  evidence_map : Evidence.t Id.Map.t;
  evidence_order : Id.t list;
}

let empty =
  {
    node_map = Id.Map.empty;
    node_order = [];
    link_list = [];
    evidence_map = Id.Map.empty;
    evidence_order = [];
  }

let mem id t = Id.Map.mem id t.node_map

let add_node node t =
  let order =
    if mem node.Node.id t then t.node_order else t.node_order @ [ node.Node.id ]
  in
  { t with node_map = Id.Map.add node.Node.id node t.node_map; node_order = order }

let remove_node id t =
  {
    t with
    node_map = Id.Map.remove id t.node_map;
    node_order = List.filter (fun i -> not (Id.equal i id)) t.node_order;
    link_list =
      List.filter
        (fun (_, s, d) -> not (Id.equal s id || Id.equal d id))
        t.link_list;
  }

let connect kind ~src ~dst t =
  let l = (kind, src, dst) in
  if List.mem l t.link_list then t else { t with link_list = t.link_list @ [ l ] }

let disconnect kind ~src ~dst t =
  { t with link_list = List.filter (fun l -> l <> (kind, src, dst)) t.link_list }

let add_evidence ev t =
  let order =
    if Id.Map.mem ev.Evidence.id t.evidence_map then t.evidence_order
    else t.evidence_order @ [ ev.Evidence.id ]
  in
  {
    t with
    evidence_map = Id.Map.add ev.Evidence.id ev t.evidence_map;
    evidence_order = order;
  }

(* Bulk construction: same semantics as folding {!add_node},
   {!add_evidence} and {!connect} over the lists — duplicate ids keep
   their first position in the order (the newest payload wins),
   duplicate links keep their first occurrence — but built with
   reversed accumulators and a duplicate set instead of re-scanning
   and appending, so a 100k-node case assembles in O(n log n) rather
   than the fold's O(n^2). *)
module Link_set = Set.Make (struct
  type t = link * Id.t * Id.t

  let compare = Stdlib.compare
end)

let of_nodes ?(links = []) ?(evidence = []) node_list =
  let node_map, node_order_rev =
    List.fold_left
      (fun (m, order) n ->
        let order =
          if Id.Map.mem n.Node.id m then order else n.Node.id :: order
        in
        (Id.Map.add n.Node.id n m, order))
      (Id.Map.empty, []) node_list
  in
  let evidence_map, evidence_order_rev =
    List.fold_left
      (fun (m, order) e ->
        let order =
          if Id.Map.mem e.Evidence.id m then order else e.Evidence.id :: order
        in
        (Id.Map.add e.Evidence.id e m, order))
      (Id.Map.empty, []) evidence
  in
  let _, link_list_rev =
    List.fold_left
      (fun (seen, acc) (kind, src, dst) ->
        let l = (kind, Id.of_string src, Id.of_string dst) in
        if Link_set.mem l seen then (seen, acc)
        else (Link_set.add l seen, l :: acc))
      (Link_set.empty, []) links
  in
  {
    node_map;
    node_order = List.rev node_order_rev;
    link_list = List.rev link_list_rev;
    evidence_map;
    evidence_order = List.rev evidence_order_rev;
  }

let find id t = Id.Map.find_opt id t.node_map

let find_exn id t =
  match find id t with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Structure.find_exn: %s" (Id.to_string id))

let nodes t = List.filter_map (fun id -> find id t) t.node_order
let size t = Id.Map.cardinal t.node_map
let links t = t.link_list

let evidence t =
  List.filter_map (fun id -> Id.Map.find_opt id t.evidence_map) t.evidence_order

let find_evidence id t = Id.Map.find_opt id t.evidence_map

let children kind id t =
  List.filter_map
    (fun (k, s, d) -> if k = kind && Id.equal s id then Some d else None)
    t.link_list

let parents kind id t =
  List.filter_map
    (fun (k, s, d) -> if k = kind && Id.equal d id then Some s else None)
    t.link_list

let roots t =
  let supported =
    List.filter_map
      (fun (k, _, d) -> if k = Supported_by then Some d else None)
      t.link_list
    |> Id.Set.of_list
  in
  List.filter
    (fun id ->
      (not (Id.Set.mem id supported))
      &&
      match find id t with
      | Some n -> not (Node.is_contextual n.Node.node_type)
      | None -> false)
    t.node_order

let supported_subtree id t =
  let rec go visited acc id =
    if Id.Set.mem id visited then (visited, acc)
    else
      let visited = Id.Set.add id visited in
      let acc = id :: acc in
      List.fold_left
        (fun (visited, acc) child -> go visited acc child)
        (visited, acc)
        (children Supported_by id t)
  in
  let _, acc = go Id.Set.empty [] id in
  List.rev acc

let context_of id t = children In_context_of id t

let has_cycle t =
  (* DFS over Supported_by with a recursion stack; returns the stack
     when a back edge is found. *)
  let rec visit path visited id =
    if List.exists (Id.equal id) path then
      Some (List.rev (id :: path))
    else if Id.Set.mem id visited then None
    else
      let path = id :: path in
      List.fold_left
        (fun found child ->
          match found with Some _ -> found | None -> visit path visited child)
        None
        (children Supported_by id t)
  in
  (* Visit every node as a potential entry; keep a global visited set to
     stay linear-ish (nodes proven cycle-free are skipped). *)
  let visited = ref Id.Set.empty in
  List.fold_left
    (fun found id ->
      match found with
      | Some _ -> found
      | None ->
          let r = visit [] !visited id in
          if r = None then visited := Id.Set.add id !visited;
          r)
    None t.node_order

let map_nodes f t =
  {
    t with
    node_map =
      Id.Map.map
        (fun n ->
          let n' = f n in
          if not (Id.equal n'.Node.id n.Node.id) then
            invalid_arg "Structure.map_nodes: node id changed";
          n')
        t.node_map;
  }

let fold_nodes f t init = List.fold_left (fun acc n -> f n acc) init (nodes t)

let restrict keep t =
  {
    t with
    node_map = Id.Map.filter (fun id _ -> Id.Set.mem id keep) t.node_map;
    node_order = List.filter (fun id -> Id.Set.mem id keep) t.node_order;
    link_list =
      List.filter
        (fun (_, s, d) -> Id.Set.mem s keep && Id.Set.mem d keep)
        t.link_list;
  }

let equal a b =
  Id.Map.equal Node.equal a.node_map b.node_map
  && List.sort compare a.link_list = List.sort compare b.link_list
  && Id.Map.equal Evidence.equal a.evidence_map b.evidence_map

(* --- Rendering --- *)

let dot_shape = function
  | Node.Goal -> "box"
  | Node.Away_goal _ -> "box"
  | Node.Strategy -> "parallelogram"
  | Node.Solution -> "circle"
  | Node.Context -> "box"
  | Node.Assumption | Node.Justification -> "ellipse"
  | Node.Module_ref _ -> "folder"
  | Node.Contract _ -> "tab"

let dot_style = function
  | Node.Context -> ", style=rounded"
  | Node.Away_goal _ -> ", peripheries=2"
  | _ -> ""

let escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph gsn {\n  rankdir=TB;\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=%s%s, label=\"%s\\n%s\"];\n"
           (Id.to_string n.Node.id)
           (dot_shape n.Node.node_type)
           (dot_style n.Node.node_type)
           (Id.to_string n.Node.id)
           (escape n.Node.text)))
    (nodes t);
  List.iter
    (fun (kind, s, d) ->
      let style = match kind with Supported_by -> "solid" | In_context_of -> "dashed" in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [style=%s];\n" (Id.to_string s)
           (Id.to_string d) style))
    t.link_list;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_outline ppf t =
  let rec go indent visited id =
    match find id t with
    | None -> ()
    | Some n ->
        Format.fprintf ppf "%s%a@." indent Node.pp n;
        if Id.Set.mem id visited then
          Format.fprintf ppf "%s  (cycle)@." indent
        else begin
          let visited = Id.Set.add id visited in
          List.iter
            (fun c ->
              match find c t with
              | Some cn when Node.is_contextual cn.Node.node_type ->
                  Format.fprintf ppf "%s  ~ %a@." indent Node.pp cn
              | _ -> ())
            (context_of id t);
          List.iter (go (indent ^ "  ") visited) (children Supported_by id t)
        end
  in
  List.iter (go "" Id.Set.empty) (roots t)
