(** Heuristic lints for informal fallacies.

    Section IV.C's point is that mechanical verification {e cannot} show
    the absence of informal fallacies.  What a tool {e can} do is raise
    candidates for human review.  These lints do exactly that — every
    finding is a warning, never a verdict.

    The flagship is the equivocation candidate detector for Horn-clause
    knowledge bases, which flags Figure 1's ['bank'] because the symbol
    occurs in argument positions of different predicates — the footprint
    an equivocation leaves once natural language is compressed into
    symbols. *)

val desert_bank_program : string
(** The Figure 1 knowledge base, verbatim in Prolog syntax. *)

val desert_bank : Argus_prolog.Program.t
(** Parsed form of {!desert_bank_program}. *)

val equivocation_candidates : Argus_prolog.Program.t -> string list
(** Constants that occur in two or more distinct (predicate, argument
    position) roles across the program — each a candidate for meaning
    different things in different clauses.  For {!desert_bank} this is
    exactly [["bank"]]. *)

val argues_from_ignorance : string -> bool
(** The text-level predicate behind ["informal/argument-from-ignorance"]
    (case-insensitive phrase scan), exposed so the fused array-IR
    checker ({!Argus_ir.Fused}) shares it. *)

val default_walk_fuel : int
(** Fuel of the internal budget the circular-support walk runs under
    when the caller passes none (10,000 steps). *)

val check_structure :
  ?budget:Argus_rt.Budget.t ->
  Argus_gsn.Structure.t ->
  Argus_core.Diagnostic.t list
(** GSN-level informal-fallacy lints, warning codes under ["informal/"]:
    - ["informal/circular-support"] — a descendant goal restates an
      ancestor goal's text (normalised);
    - ["informal/argument-from-ignorance"] — node text argues from
      absence of evidence ("no evidence that", "has never been
      observed", "not been shown");
    - ["informal/equivocation-candidate"] — a content word that appears
      in several sibling goals with otherwise-disjoint vocabulary,
      suggesting the word may be doing double duty.

    The circular-support walk always runs under a budget: the caller's
    when [?budget] is given (the caller then owns reporting its
    exhaustion), otherwise an internal 10k-step one whose truncation is
    reported here as an ["rt/budget-exhausted"] warning. *)
