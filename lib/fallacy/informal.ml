module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Textutil = Argus_core.Textutil
module Term = Argus_logic.Term
module Program = Argus_prolog.Program
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Budget = Argus_rt.Budget

let desert_bank_program =
  {|% Figure 1: a flawed argument that passes formal validation.
is_a(desert_bank, bank).
adjacent(bank, river).
adjacent(X, Y) :- is_a(X, Z), adjacent(Z, Y).
|}

let desert_bank = Program.of_string_exn desert_bank_program

(* Roles of constants: every (predicate, argument index) position a
   constant occupies, across clause heads and bodies. *)
let constant_roles program =
  let roles = Hashtbl.create 32 in
  let note name role =
    let existing = Option.value ~default:[] (Hashtbl.find_opt roles name) in
    if not (List.mem role existing) then
      Hashtbl.replace roles name (role :: existing)
  in
  let scan_atom t =
    match t with
    | Term.App (pred, args) ->
        let pred = Argus_core.Symbol.name pred in
        List.iteri
          (fun i arg ->
            match arg with
            | Term.App (c, []) -> note (Argus_core.Symbol.name c) (pred, i)
            | Term.App _ | Term.Var _ -> ())
          args
    | Term.Var _ -> ()
  in
  List.iter
    (fun c ->
      scan_atom c.Program.head;
      List.iter scan_atom c.Program.body)
    program;
  roles

let equivocation_candidates program =
  let roles = constant_roles program in
  Hashtbl.fold
    (fun name rs acc -> if List.length rs >= 2 then name :: acc else acc)
    roles []
  |> List.sort String.compare

let ignorance_phrases =
  [
    "no evidence that";
    "no evidence of";
    "has never been observed";
    "have never been observed";
    "not been shown";
    "never been demonstrated";
    "absence of any report";
    "no counterexample";
  ]

let contains_ci hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 || nn > nh then false
  else
    let rec go i =
      if i + nn > nh then false else String.sub hay i nn = needle || go (i + 1)
    in
    go 0

let argues_from_ignorance text =
  List.exists (contains_ci text) ignorance_phrases

(* Path enumeration on a dense DAG is exponential and a lint need not
   be exhaustive, so the circular-support walk always runs under a
   budget: the caller's if one was passed, otherwise an internal
   10k-step one whose truncation this module reports itself (the
   caller cannot see a budget it never created). *)
let default_walk_fuel = 10_000

let check_structure ?budget structure =
  let budget, internal =
    match budget with
    | Some b -> (b, false)
    | None -> (Budget.make ~fuel:default_walk_fuel (), true)
  in
  let out = ref [] in
  let add d = out := d :: !out in
  (* Circular support: descendant goal restating an ancestor goal.  The
     walk carries the path (for the restatement check) and cuts cycles
     so it terminates on arbitrary graphs. *)
  let norm text = String.concat " " (Textutil.content_words text) in
  let rec walk ancestors on_path id =
    if Id.Set.mem id on_path || not (Budget.tick budget ~engine:"informal")
    then ()
    else
      match Structure.find id structure with
      | None -> ()
      | Some n ->
          let here = norm n.Node.text in
          if
            Node.is_goal_like n.Node.node_type
            && here <> ""
            && List.exists
                 (fun (aid, atext) ->
                   (not (Id.equal aid id)) && atext = here)
                 ancestors
          then
            add
              (Diagnostic.warningf ~code:"informal/circular-support"
                 ~subjects:[ id ]
                 "goal restates an ancestor goal's claim");
          let ancestors' =
            if Node.is_goal_like n.Node.node_type then (id, here) :: ancestors
            else ancestors
          in
          let on_path' = Id.Set.add id on_path in
          List.iter
            (walk ancestors' on_path')
            (Structure.children Structure.Supported_by id structure)
  in
  List.iter (walk [] Id.Set.empty) (Structure.roots structure);
  if internal then List.iter add (Budget.diagnostics budget);
  (* Argument from ignorance. *)
  List.iter
    (fun n ->
      if argues_from_ignorance n.Node.text then
        add
          (Diagnostic.warningf ~code:"informal/argument-from-ignorance"
             ~subjects:[ n.Node.id ]
             "claim argued from absence of evidence; confirm the search \
              procedure was adequate"))
    (Structure.nodes structure);
  (* Equivocation candidates among sibling goals: a shared content word
     whose surrounding vocabularies are otherwise disjoint. *)
  let goal_children id =
    Structure.children Structure.Supported_by id structure
    |> List.filter_map (fun cid ->
           match Structure.find cid structure with
           | Some c when Node.is_goal_like c.Node.node_type -> Some c
           | _ -> None)
  in
  List.iter
    (fun n ->
      let siblings = goal_children n.Node.id in
      if List.length siblings >= 2 then
        let word_sets =
          List.map
            (fun s ->
              (s.Node.id, Textutil.content_words s.Node.text))
            siblings
        in
        let rec pairs = function
          | [] -> []
          | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
        in
        List.iter
          (fun (((id1 : Id.t), ws1), (id2, ws2)) ->
            let shared = List.filter (fun w -> List.mem w ws2) ws1 in
            let only1 = List.filter (fun w -> not (List.mem w ws2)) ws1 in
            let only2 = List.filter (fun w -> not (List.mem w ws1)) ws2 in
            match shared with
            | [ word ]
              when List.length only1 >= 3 && List.length only2 >= 3 ->
                add
                  (Diagnostic.warningf
                     ~code:"informal/equivocation-candidate"
                     ~subjects:[ id1; id2 ]
                     "the word %S links otherwise-unrelated sibling goals; \
                      check it means the same thing in both"
                     word)
            | _ -> ())
          (pairs word_sets))
    (Structure.nodes structure);
  Diagnostic.sort (List.rev !out)
