(** Detection of the formal fallacies.

    Section IV.A of the paper lists the eight formal fallacies of
    Damer's textbook: (1) begging the question, (2) incompatible
    premises, (3) contradiction between premise and conclusion,
    (4) denying the antecedent, (5) affirming the consequent, (6) false
    conversion, (7) undistributed middle term, and (8) illicit
    distribution of an end term.  This module detects all eight —
    1–5 over propositional arguments (via SAT and inference-shape
    analysis), 6–8 over categorical syllogisms (via distribution
    analysis) — which is precisely the mechanical check the surveyed
    formalisation proposals could deliver. *)

type finding =
  | Begging_the_question
      (** The conclusion is (equivalent to) one of the premises. *)
  | Incompatible_premises  (** The premises are jointly unsatisfiable. *)
  | Premise_conclusion_contradiction
      (** Some premise contradicts the conclusion. *)
  | Denying_the_antecedent
      (** [A -> B, ~A |- ~B] shape, not otherwise entailed. *)
  | Affirming_the_consequent  (** [A -> B, B |- A] shape. *)
  | False_conversion
      (** Inferring the converse of an A- or O-form proposition. *)
  | Undistributed_middle
  | Illicit_distribution
      (** Illicit major or minor (an end term distributed in the
          conclusion but not in its premise). *)

(** A propositional argument: premises and a conclusion. *)
type propositional = {
  premises : Argus_logic.Prop.t list;
  conclusion : Argus_logic.Prop.t;
}

(** A single-premise conversion inference over a categorical
    proposition. *)
type conversion = {
  from : Argus_logic.Syllogism.proposition;
  to_ : Argus_logic.Syllogism.proposition;
}

val check_propositional :
  ?budget:Argus_rt.Budget.t -> propositional -> finding list
(** Fallacies 1–5.  The conditional-shape fallacies (4, 5) are only
    reported when the argument is {e not} valid — [A -> B, B, B -> A
    |- A] affirms nothing.  Begging the question is reported when the
    conclusion is syntactically equal or SAT-equivalent to a premise.
    The budget (default unlimited) governs the underlying SAT queries;
    when it is exhausted the findings may be incomplete (check
    {!Argus_rt.Budget.exhausted}). *)

val is_valid_propositional :
  ?budget:Argus_rt.Budget.t -> propositional -> bool
(** Premises entail the conclusion. *)

val check_many :
  ?budget:Argus_rt.Budget.t ->
  ?pool:Argus_par.Pool.t ->
  propositional list ->
  finding list list
(** [check_propositional] over every argument — across the pool's
    domains when [?pool] is given — with findings in input order,
    identical to the sequential map for any worker count.  A limited
    budget forces the sequential path (a budget is one mutable
    accumulator and is not shared across domains). *)

val check_syllogism : Argus_logic.Syllogism.t -> finding list
(** Fallacies 7 and 8 (plus nothing else; the non-distribution
    syllogistic rules are reported by {!Argus_logic.Syllogism.violations}
    but are not among Damer's eight). *)

val check_conversion : conversion -> finding list
(** Fallacy 6: the inference from a proposition to its converse is
    false conversion when the form does not convert simply (A and O). *)

val finding_to_string : finding -> string
val all_findings : finding list
