module Prop = Argus_logic.Prop
module Propmask = Argus_logic.Propmask
module Sat = Argus_logic.Sat
module Syllogism = Argus_logic.Syllogism

type finding =
  | Begging_the_question
  | Incompatible_premises
  | Premise_conclusion_contradiction
  | Denying_the_antecedent
  | Affirming_the_consequent
  | False_conversion
  | Undistributed_middle
  | Illicit_distribution

type propositional = { premises : Prop.t list; conclusion : Prop.t }

type conversion = {
  from : Syllogism.proposition;
  to_ : Syllogism.proposition;
}

let all_findings =
  [
    Begging_the_question;
    Incompatible_premises;
    Premise_conclusion_contradiction;
    Denying_the_antecedent;
    Affirming_the_consequent;
    False_conversion;
    Undistributed_middle;
    Illicit_distribution;
  ]

let finding_to_string = function
  | Begging_the_question -> "begging the question"
  | Incompatible_premises -> "incompatible premises"
  | Premise_conclusion_contradiction ->
      "contradiction between premise and conclusion"
  | Denying_the_antecedent -> "denying the antecedent"
  | Affirming_the_consequent -> "affirming the consequent"
  | False_conversion -> "false conversion"
  | Undistributed_middle -> "undistributed middle term"
  | Illicit_distribution -> "illicit distribution of an end term"

(* The decision procedures for one argument: bit-parallel truth tables
   (exact, allocation-free per query) when the argument fits in
   {!Propmask.max_vars} variables and no limited budget is in play,
   DPLL otherwise.  A limited budget pins us to the SAT path because
   its tick accounting — one tick per decision and propagation — is
   part of the observable contract; the mask path does no search and
   would starve the ticks.  Either way the verdicts are identical
   (test/fallacy holds the two procedures to that differentially). *)
let mask_env ?budget premises conclusion =
  match budget with
  | Some b when Argus_rt.Budget.is_limited b -> None
  | _ -> Propmask.env (conclusion :: premises)

let is_valid_propositional ?budget { premises; conclusion } =
  match mask_env ?budget premises conclusion with
  | Some e -> Propmask.entails e premises conclusion
  | None -> Sat.entails ?budget premises conclusion

let check_propositional_uncached ?budget { premises; conclusion } =
  let env = mask_env ?budget premises conclusion in
  let sat p =
    match env with
    | Some e -> Propmask.satisfiable e p
    | None -> Sat.satisfiable ?budget p
  in
  let equivalent p q =
    match env with
    | Some e -> Propmask.equivalent e p q
    | None -> Sat.equivalent ?budget p q
  in
  let entails ps c =
    match env with
    | Some e -> Propmask.entails e ps c
    | None -> Sat.entails ?budget ps c
  in
  let out = ref [] in
  let add f = if not (List.mem f !out) then out := f :: !out in
  (* 1. Begging the question: a premise equivalent to the conclusion.
     Only meaningful when the premises are consistent (otherwise
     everything is "equivalent" in the empty model set). *)
  let premises_consistent = sat (Prop.conj premises) in
  if
    premises_consistent
    && List.exists
         (fun p -> Prop.equal p conclusion || equivalent p conclusion)
         premises
  then add Begging_the_question;
  (* 2. Incompatible premises. *)
  if (not premises_consistent) && List.length premises > 1 then
    add Incompatible_premises;
  (* 3. Premise/conclusion contradiction: some single premise is
     inconsistent with the conclusion. *)
  if
    premises_consistent
    && List.exists
         (fun p -> not (sat (Prop.And (p, conclusion))))
         premises
  then add Premise_conclusion_contradiction;
  (* 4/5. Conditional-shape fallacies, only when not actually valid. *)
  if not (entails premises conclusion) then
    List.iter
      (fun p ->
        match p with
        | Prop.Implies (a, b) ->
            let rest = List.filter (fun q -> not (Prop.equal q p)) premises in
            let has f = List.exists (fun q -> Prop.equal q f) rest in
            if has (Prop.Not a) && Prop.equal conclusion (Prop.Not b) then
              add Denying_the_antecedent;
            if has b && Prop.equal conclusion a then
              add Affirming_the_consequent
        | _ -> ())
      premises;
  List.rev !out

(* Verdict memo — the analog of the Prolog side's compiled-program
   table.  The corpus sweeps (bench, experiments, [check_many]) re-ask
   about the same argument values every scan, so an unbudgeted check is
   answered from a small per-domain table keyed on the argument's
   physical identity: a pointer scan, no hashing of formulas.  Budgeted
   calls bypass it — their DPLL tick accounting is part of the
   observable contract and must run every time.  [Sat]'s own
   (structural) memo set the precedent; this one just sits a layer up,
   where the whole finding list can be reused. *)
let memo_capacity = 64

let memo_key : (propositional * finding list) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let check_propositional ?budget arg =
  match budget with
  | Some b when Argus_rt.Budget.is_limited b ->
      check_propositional_uncached ~budget:b arg
  | _ -> (
      let cache = Domain.DLS.get memo_key in
      let rec find = function
        | [] -> None
        | (a, fs) :: _ when a == arg -> Some fs
        | _ :: rest -> find rest
      in
      match find !cache with
      | Some fs -> fs
      | None ->
          let fs = check_propositional_uncached ?budget arg in
          let entries = (arg, fs) :: !cache in
          cache :=
            (if List.length entries > memo_capacity then
               List.filteri (fun i _ -> i < memo_capacity) entries
             else entries);
          fs)

let check_many ?budget ?pool args =
  (* Each argument's check is pure and independent; results come back
     in input order, so the scan is identical for any worker count.
     A budget is a single mutable accumulator, so a budgeted scan runs
     sequentially rather than sharing it across domains. *)
  match budget with
  | Some b when Argus_rt.Budget.is_limited b ->
      List.map (check_propositional ~budget:b) args
  | _ -> Argus_par.Pool.map_list ?pool check_propositional args

let check_syllogism syll =
  List.filter_map
    (fun v ->
      match (v : Syllogism.violation) with
      | Syllogism.Undistributed_middle -> Some Undistributed_middle
      | Syllogism.Illicit_major | Syllogism.Illicit_minor ->
          Some Illicit_distribution
      | Syllogism.Exclusive_premises | Syllogism.Affirmative_from_negative
      | Syllogism.Negative_from_affirmatives
      | Syllogism.Existential_from_universals | Syllogism.Malformed _ ->
          None)
    (Syllogism.violations syll)
  |> List.sort_uniq compare

let check_conversion { from; to_ } =
  let is_converse =
    to_.Syllogism.subject = from.Syllogism.predicate
    && to_.Syllogism.predicate = from.Syllogism.subject
    && to_.Syllogism.form = from.Syllogism.form
  in
  if is_converse && not (Syllogism.conversion_valid from.Syllogism.form) then
    [ False_conversion ]
  else []
