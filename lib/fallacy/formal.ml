module Prop = Argus_logic.Prop
module Sat = Argus_logic.Sat
module Syllogism = Argus_logic.Syllogism

type finding =
  | Begging_the_question
  | Incompatible_premises
  | Premise_conclusion_contradiction
  | Denying_the_antecedent
  | Affirming_the_consequent
  | False_conversion
  | Undistributed_middle
  | Illicit_distribution

type propositional = { premises : Prop.t list; conclusion : Prop.t }

type conversion = {
  from : Syllogism.proposition;
  to_ : Syllogism.proposition;
}

let all_findings =
  [
    Begging_the_question;
    Incompatible_premises;
    Premise_conclusion_contradiction;
    Denying_the_antecedent;
    Affirming_the_consequent;
    False_conversion;
    Undistributed_middle;
    Illicit_distribution;
  ]

let finding_to_string = function
  | Begging_the_question -> "begging the question"
  | Incompatible_premises -> "incompatible premises"
  | Premise_conclusion_contradiction ->
      "contradiction between premise and conclusion"
  | Denying_the_antecedent -> "denying the antecedent"
  | Affirming_the_consequent -> "affirming the consequent"
  | False_conversion -> "false conversion"
  | Undistributed_middle -> "undistributed middle term"
  | Illicit_distribution -> "illicit distribution of an end term"

let is_valid_propositional ?budget { premises; conclusion } =
  Sat.entails ?budget premises conclusion

let check_propositional ?budget ({ premises; conclusion } as arg) =
  let out = ref [] in
  let add f = if not (List.mem f !out) then out := f :: !out in
  (* 1. Begging the question: a premise equivalent to the conclusion.
     Only meaningful when the premises are consistent (otherwise
     everything is "equivalent" in the empty model set). *)
  let premises_consistent = Sat.satisfiable ?budget (Prop.conj premises) in
  if
    premises_consistent
    && List.exists
         (fun p ->
           Prop.equal p conclusion || Sat.equivalent ?budget p conclusion)
         premises
  then add Begging_the_question;
  (* 2. Incompatible premises. *)
  if (not premises_consistent) && List.length premises > 1 then
    add Incompatible_premises;
  (* 3. Premise/conclusion contradiction: some single premise is
     inconsistent with the conclusion. *)
  if
    premises_consistent
    && List.exists
         (fun p -> not (Sat.satisfiable ?budget (Prop.And (p, conclusion))))
         premises
  then add Premise_conclusion_contradiction;
  (* 4/5. Conditional-shape fallacies, only when not actually valid. *)
  if not (is_valid_propositional ?budget arg) then
    List.iter
      (fun p ->
        match p with
        | Prop.Implies (a, b) ->
            let rest = List.filter (fun q -> not (Prop.equal q p)) premises in
            let has f = List.exists (fun q -> Prop.equal q f) rest in
            if has (Prop.Not a) && Prop.equal conclusion (Prop.Not b) then
              add Denying_the_antecedent;
            if has b && Prop.equal conclusion a then
              add Affirming_the_consequent
        | _ -> ())
      premises;
  List.rev !out

let check_many ?budget ?pool args =
  (* Each argument's check is pure and independent; results come back
     in input order, so the scan is identical for any worker count.
     A budget is a single mutable accumulator, so a budgeted scan runs
     sequentially rather than sharing it across domains. *)
  match budget with
  | Some b when Argus_rt.Budget.is_limited b ->
      List.map (check_propositional ~budget:b) args
  | _ -> Argus_par.Pool.map_list ?pool check_propositional args

let check_syllogism syll =
  List.filter_map
    (fun v ->
      match (v : Syllogism.violation) with
      | Syllogism.Undistributed_middle -> Some Undistributed_middle
      | Syllogism.Illicit_major | Syllogism.Illicit_minor ->
          Some Illicit_distribution
      | Syllogism.Exclusive_premises | Syllogism.Affirmative_from_negative
      | Syllogism.Negative_from_affirmatives
      | Syllogism.Existential_from_universals | Syllogism.Malformed _ ->
          None)
    (Syllogism.violations syll)
  |> List.sort_uniq compare

let check_conversion { from; to_ } =
  let is_converse =
    to_.Syllogism.subject = from.Syllogism.predicate
    && to_.Syllogism.predicate = from.Syllogism.subject
    && to_.Syllogism.form = from.Syllogism.form
  in
  if is_converse && not (Syllogism.conversion_valid from.Syllogism.form) then
    [ False_conversion ]
  else []
