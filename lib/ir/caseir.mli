(** Array-backed interning of a GSN structure.

    {!Argus_gsn.Structure.t} is a persistent, edit-friendly
    representation; every traversal query scans its link list.  The
    fused checker ({!Fused}) instead runs over this flat form: an
    entity table mapping every id the structure mentions — nodes first,
    in insertion order, then dangling link endpoints in link-scan order
    — to a dense integer index, CSR-style adjacency arrays over those
    indices, and per-node caches of the text derivations the checkers
    recompute on every legacy run.

    Dangling endpoints are first-class entities because the legacy
    traversals propagate through them: a missing node's own outgoing
    links still feed reachability and the cycle search.  An entity
    index [i] names a real node iff [i < n_nodes].

    Intern once, check many times: the structure and its texts are
    immutable, so everything here — roots, reachability, content words
    — is computed a single time and amortised over every subsequent
    {!Fused.check}.  [ir.interned] counts interning passes. *)

type t = {
  structure : Argus_gsn.Structure.t;  (** The source, for evidence lookups. *)
  n_nodes : int;  (** Entities [0 .. n_nodes-1] are real nodes. *)
  n_entities : int;  (** Nodes plus dangling link endpoints. *)
  ids : Argus_core.Id.t array;  (** Entity index to id. *)
  nodes : Argus_gsn.Node.t array;  (** Length [n_nodes], insertion order. *)
  link_kind : Argus_gsn.Structure.link array;  (** Insertion order. *)
  link_src : int array;
  link_dst : int array;
  sup_out_off : int array;  (** CSR offsets, length [n_entities + 1]. *)
  sup_out : int array;  (** SupportedBy targets, link order per entity. *)
  sup_in_off : int array;
  sup_in : int array;  (** SupportedBy sources, link order per entity. *)
  ctx_out_off : int array;
  ctx_out : int array;  (** InContextOf targets, link order per entity. *)
  roots : int list;  (** As {!Argus_gsn.Structure.roots}, node order. *)
  reachable : bool array;
      (** {!Argus_gsn.Wellformed}'s reachability: the SupportedBy
          closure of the roots plus one InContextOf hop from it. *)
  goal_like : bool array;  (** Per node: {!Argus_gsn.Node.is_goal_like}. *)
  norm : string array;  (** Per node: normalised content-word text. *)
  content : string list array;
      (** Per node: {!Argus_core.Textutil.content_words}. *)
  ignorance : bool array;
      (** Per node: {!Argus_fallacy.Informal.argues_from_ignorance}. *)
  universal : bool array;
      (** Per goal-like node:
          {!Argus_gsn.Wellformed.claims_universally}. *)
  propositional : bool array;
      (** Per [Goal] node: {!Argus_gsn.Node.looks_propositional}. *)
}
(** Treat all fields as read-only; the checkers index them freely. *)

val intern : Argus_gsn.Structure.t -> t

val has_cycle : t -> Argus_core.Id.t list option
(** {!Argus_gsn.Structure.has_cycle} over the interned adjacency — the
    same entry order and DFS, so the same witness. *)
