(** Array-backed interning of a GSN structure.

    {!Argus_gsn.Structure.t} is a persistent, edit-friendly
    representation; every traversal query scans its link list.  The
    fused checker ({!Fused}) instead runs over this flat form: an
    entity table mapping every id the structure mentions — nodes first,
    in insertion order, then dangling link endpoints in link-scan order
    — to a dense integer index, CSR-style adjacency arrays over those
    indices, and per-node caches of the text derivations the checkers
    recompute on every legacy run.

    Dangling endpoints are first-class entities because the legacy
    traversals propagate through them: a missing node's own outgoing
    links still feed reachability and the cycle search.  An entity
    index [i] names a real node iff [i < n_nodes].

    Intern once, check many times: the structure and its texts are
    immutable, so everything here — roots, reachability, content words
    — is computed a single time and amortised over every subsequent
    {!Fused.check}.  [ir.interned] counts interning passes.

    For the incremental store (lib/store), [intern] accepts a
    [?derive] hook so text derivations can be hash-consed across
    cases, and {!set_node} patches the flat arrays in place for
    payload-only edits ([ir.patched] counts them). *)

type derived = {
  d_goal_like : bool;  (** {!Argus_gsn.Node.is_goal_like}. *)
  d_norm : string;  (** Normalised content-word text. *)
  d_content : string list;  (** {!Argus_core.Textutil.content_words}. *)
  d_ignorance : bool;
      (** {!Argus_fallacy.Informal.argues_from_ignorance}. *)
  d_universal : bool;
      (** {!Argus_gsn.Wellformed.claims_universally}; [false] unless
          goal-like. *)
  d_propositional : bool;
      (** {!Argus_gsn.Node.looks_propositional}; [true] unless a
          [Goal]. *)
}
(** Everything the checkers derive from one node payload, independent
    of the surrounding graph — the unit of hash-consing for the
    store's node arena. *)

type t = {
  structure : Argus_gsn.Structure.t;  (** The source, for evidence lookups. *)
  n_nodes : int;  (** Entities [0 .. n_nodes-1] are real nodes. *)
  n_entities : int;  (** Nodes plus dangling link endpoints. *)
  index : (string, int) Hashtbl.t;  (** Id string to entity index. *)
  ids : Argus_core.Id.t array;  (** Entity index to id. *)
  nodes : Argus_gsn.Node.t array;  (** Length [n_nodes], insertion order. *)
  link_kind : Argus_gsn.Structure.link array;  (** Insertion order. *)
  link_src : int array;
  link_dst : int array;
  sup_out_off : int array;  (** CSR offsets, length [n_entities + 1]. *)
  sup_out : int array;  (** SupportedBy targets, link order per entity. *)
  sup_in_off : int array;
  sup_in : int array;  (** SupportedBy sources, link order per entity. *)
  ctx_out_off : int array;
  ctx_out : int array;  (** InContextOf targets, link order per entity. *)
  roots : int list;  (** As {!Argus_gsn.Structure.roots}, node order. *)
  reachable : bool array;
      (** {!Argus_gsn.Wellformed}'s reachability: the SupportedBy
          closure of the roots plus one InContextOf hop from it. *)
  goal_like : bool array;  (** Per node: {!Argus_gsn.Node.is_goal_like}. *)
  norm : string array;  (** Per node: normalised content-word text. *)
  content : string list array;
      (** Per node: {!Argus_core.Textutil.content_words}. *)
  ignorance : bool array;
      (** Per node: {!Argus_fallacy.Informal.argues_from_ignorance}. *)
  universal : bool array;
      (** Per goal-like node:
          {!Argus_gsn.Wellformed.claims_universally}. *)
  propositional : bool array;
      (** Per [Goal] node: {!Argus_gsn.Node.looks_propositional}. *)
}
(** Treat all fields as read-only; the checkers index them freely. *)

val derive : Argus_gsn.Node.t -> derived
(** The default per-payload derivation — exactly what {!intern}
    computes per node when no hook is given. *)

val intern : ?derive:(Argus_gsn.Node.t -> derived) -> Argus_gsn.Structure.t -> t
(** [?derive] (default {!derive}) computes the per-node text
    derivations; a caller may substitute a memoised version — it must
    be extensionally equal to {!derive}. *)

val entity_index : t -> Argus_core.Id.t -> int option
(** The entity index of an id the structure mentions, if any. *)

val derive_cached : Argus_gsn.Node.t -> derived
(** {!derive} through a process-wide, bounded, domain-safe memo keyed
    by the payload content the derivations read (type and text) —
    extensionally equal to {!derive}, so safe as {!intern}'s hook.
    FIFO eviction; a miss just re-derives.  [ir.derive_hits] counts
    hits. *)

val set_node :
  ?derive:(Argus_gsn.Node.t -> derived) ->
  t ->
  Argus_gsn.Structure.t ->
  int ->
  Argus_gsn.Node.t ->
  t
(** [set_node ir structure i n] replaces node [i]'s payload in place —
    entity table, CSR adjacency, roots and reachability are untouched,
    so a one-node edit costs one {!derive}, not a rebuild.  [structure]
    is the already-edited source for the returned IR to carry.  The
    arrays are mutated: the returned IR shares them and [ir] must not
    be used afterwards.  Raises [Invalid_argument] if [n] changes the
    node's id or the contextual-ness of its type (those edits need a
    full re-intern). *)

val has_cycle : t -> Argus_core.Id.t list option
(** {!Argus_gsn.Structure.has_cycle} over the interned adjacency — the
    same entry order and DFS, so the same witness. *)
