(* Array-backed interning of a GSN structure.

   [Structure.t] is built for functional editing: nodes in an [Id.Map],
   links and orderings as lists, every child/parent query a full scan of
   the link list.  The checkers do thousands of such queries per case,
   so checking a case repeatedly (a service, the bench loops, the
   experiment sweeps) pays the scan cost every time.  Interning flattens
   the structure once into integer-indexed arrays — an entity table and
   CSR-style adjacency — after which every traversal the checkers need
   is an index walk.

   The entity table is the subtle part.  Link endpoints need not name
   existing nodes (the structure is deliberately permissive; the checker
   reports dangling endpoints), and the legacy traversals propagate
   {e through} missing ids: [Structure.supported_subtree] and
   [Structure.has_cycle] recurse into a dangling endpoint's own outgoing
   links.  So the table interns every id the structure mentions — the
   nodes first, in insertion order, then the dangling link endpoints in
   link-scan order — and the adjacency covers all of them.  An entity
   index [i] names a real node iff [i < n_nodes].

   Interning also caches the per-node text derivations the checkers
   recompute on every run (content words, the normalised claim text,
   the ignorance/universal/propositional predicates); the graph shape
   and the texts are immutable once interned, so these are plain
   arrays.  [ir.interned] counts interning passes.

   Two extensions serve the incremental store (lib/store).  [intern]
   takes an optional [?derive] hook so a caller can hash-cons the text
   derivations across cases — re-interning a patched structure then
   skips [Textutil.content_words] and friends for every node payload
   already seen.  And [set_node] patches the flat entity arrays in
   place for a payload-only edit (same id, same links, same
   contextual-ness), so a one-node text edit never rebuilds the CSR
   adjacency at all.  [ir.patched] counts in-place patches. *)

module Id = Argus_core.Id
module Textutil = Argus_core.Textutil
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Informal = Argus_fallacy.Informal

type derived = {
  d_goal_like : bool;
  d_norm : string;
  d_content : string list;
  d_ignorance : bool;
  d_universal : bool;
  d_propositional : bool;
}

type t = {
  structure : Structure.t;  (** The source, for evidence lookups. *)
  n_nodes : int;  (** Entities [0 .. n_nodes-1] are real nodes. *)
  n_entities : int;  (** Nodes plus dangling link endpoints. *)
  index : (string, int) Hashtbl.t;  (** Id string to entity index. *)
  ids : Id.t array;  (** Entity index to id; length [n_entities]. *)
  nodes : Node.t array;  (** Length [n_nodes], insertion order. *)
  link_kind : Structure.link array;  (** Links in insertion order. *)
  link_src : int array;
  link_dst : int array;
  sup_out_off : int array;  (** CSR offsets, length [n_entities + 1]. *)
  sup_out : int array;  (** SupportedBy targets, link order per entity. *)
  sup_in_off : int array;
  sup_in : int array;  (** SupportedBy sources, link order per entity. *)
  ctx_out_off : int array;
  ctx_out : int array;  (** InContextOf targets, link order per entity. *)
  roots : int list;  (** Unsupported non-contextual nodes, node order. *)
  reachable : bool array;
      (** Entity reachable from some root over SupportedBy, or in the
          context of such an entity — [Wellformed]'s reachability. *)
  goal_like : bool array;  (** Per node: {!Node.is_goal_like}. *)
  norm : string array;  (** Per node: normalised content-word text. *)
  content : string list array;  (** Per node: {!Textutil.content_words}. *)
  ignorance : bool array;  (** Per node: {!Informal.argues_from_ignorance}. *)
  universal : bool array;
      (** Per goal-like node: {!Wellformed.claims_universally}. *)
  propositional : bool array;
      (** Per [Goal] node: {!Node.looks_propositional}. *)
}

let c_interned = Argus_obs.Counter.make "ir.interned"
let c_patched = Argus_obs.Counter.make "ir.patched"

(* Everything the checkers derive from one node payload, independent of
   the surrounding graph — the unit of hash-consing for the store's
   arena. *)
let derive (n : Node.t) =
  let text = n.Node.text in
  let words = Textutil.content_words text in
  let gl = Node.is_goal_like n.Node.node_type in
  {
    d_goal_like = gl;
    d_norm = String.concat " " words;
    d_content = words;
    d_ignorance = Informal.argues_from_ignorance text;
    d_universal = (if gl then Wellformed.claims_universally text else false);
    d_propositional =
      (if n.Node.node_type = Node.Goal then Node.looks_propositional text
       else true);
  }

let intern ?(derive = derive) structure =
  Argus_obs.Counter.incr c_interned;
  let nodes = Array.of_list (Structure.nodes structure) in
  let n_nodes = Array.length nodes in
  let links = Array.of_list (Structure.links structure) in
  let n_links = Array.length links in
  (* Entity table: nodes first, then dangling endpoints as met. *)
  let index = Hashtbl.create (2 * (n_nodes + 1)) in
  Array.iteri
    (fun i n -> Hashtbl.replace index (Id.to_string n.Node.id) i)
    nodes;
  let extra = ref [] in
  let next = ref n_nodes in
  let entity id =
    let key = Id.to_string id in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add index key i;
        extra := id :: !extra;
        i
  in
  let link_kind = Array.make n_links Structure.Supported_by in
  let link_src = Array.make n_links 0 in
  let link_dst = Array.make n_links 0 in
  Array.iteri
    (fun k (kind, src, dst) ->
      link_kind.(k) <- kind;
      link_src.(k) <- entity src;
      link_dst.(k) <- entity dst)
    links;
  let n_entities = !next in
  let ids = Array.make (max 1 n_entities) (Id.of_string "x") in
  Array.iteri (fun i n -> ids.(i) <- n.Node.id) nodes;
  List.iteri (fun j id -> ids.(n_entities - 1 - j) <- id) !extra;
  (* CSR adjacency: count, prefix-sum, fill in link order. *)
  let csr select =
    let count = Array.make n_entities 0 in
    for k = 0 to n_links - 1 do
      match select k with
      | Some (at, _) -> count.(at) <- count.(at) + 1
      | None -> ()
    done;
    let off = Array.make (n_entities + 1) 0 in
    for i = 0 to n_entities - 1 do
      off.(i + 1) <- off.(i) + count.(i)
    done;
    let dat = Array.make off.(n_entities) 0 in
    let cursor = Array.copy off in
    for k = 0 to n_links - 1 do
      match select k with
      | Some (at, v) ->
          dat.(cursor.(at)) <- v;
          cursor.(at) <- cursor.(at) + 1
      | None -> ()
    done;
    (off, dat)
  in
  let sup_out_off, sup_out =
    csr (fun k ->
        if link_kind.(k) = Structure.Supported_by then
          Some (link_src.(k), link_dst.(k))
        else None)
  in
  let sup_in_off, sup_in =
    csr (fun k ->
        if link_kind.(k) = Structure.Supported_by then
          Some (link_dst.(k), link_src.(k))
        else None)
  in
  let ctx_out_off, ctx_out =
    csr (fun k ->
        if link_kind.(k) = Structure.In_context_of then
          Some (link_src.(k), link_dst.(k))
        else None)
  in
  (* Roots: no incoming SupportedBy, non-contextual type — node order. *)
  let roots = ref [] in
  for i = n_nodes - 1 downto 0 do
    if
      sup_in_off.(i + 1) = sup_in_off.(i)
      && not (Node.is_contextual nodes.(i).Node.node_type)
    then roots := i :: !roots
  done;
  let roots = !roots in
  (* Reachability: SupportedBy closure of the roots, plus the contexts
     of every entity in it (one hop, as the legacy checker unions
     [context_of] over subtree members). *)
  let supported = Array.make (max 1 n_entities) false in
  let rec mark i =
    if not supported.(i) then begin
      supported.(i) <- true;
      for k = sup_out_off.(i) to sup_out_off.(i + 1) - 1 do
        mark sup_out.(k)
      done
    end
  in
  List.iter mark roots;
  let reachable = Array.copy supported in
  for i = 0 to n_entities - 1 do
    if supported.(i) then
      for k = ctx_out_off.(i) to ctx_out_off.(i + 1) - 1 do
        reachable.(ctx_out.(k)) <- true
      done
  done;
  (* Cached text derivations. *)
  let goal_like = Array.make (max 1 n_nodes) false in
  let norm = Array.make (max 1 n_nodes) "" in
  let content = Array.make (max 1 n_nodes) [] in
  let ignorance = Array.make (max 1 n_nodes) false in
  let universal = Array.make (max 1 n_nodes) false in
  let propositional = Array.make (max 1 n_nodes) true in
  Array.iteri
    (fun i n ->
      let d = derive n in
      goal_like.(i) <- d.d_goal_like;
      content.(i) <- d.d_content;
      norm.(i) <- d.d_norm;
      ignorance.(i) <- d.d_ignorance;
      universal.(i) <- d.d_universal;
      propositional.(i) <- d.d_propositional)
    nodes;
  {
    structure;
    n_nodes;
    n_entities;
    index;
    ids;
    nodes;
    link_kind;
    link_src;
    link_dst;
    sup_out_off;
    sup_out;
    sup_in_off;
    sup_in;
    ctx_out_off;
    ctx_out;
    roots;
    reachable;
    goal_like;
    norm;
    content;
    ignorance;
    universal;
    propositional;
  }

let entity_index ir id = Hashtbl.find_opt ir.index (Id.to_string id)

(* A process-wide, bounded, domain-safe memo of [derive], keyed by the
   payload content the derivations read (type and text) — the
   derivation half of hash-consing a node.  Re-interning a structure
   whose payloads were seen before (the modular checker's per-module
   passes, the store's shape-edit rebuilds) skips the text analysis
   entirely; for a small module that analysis is ~90% of the intern
   cost.  FIFO eviction keeps the table bounded, and evicting never
   changes a result — a miss just re-derives.  [ir.derive_hits]
   counts hits. *)
let derive_memo_capacity = 1 lsl 16

let derive_tbl : (string, derived) Hashtbl.t = Hashtbl.create 4096
let derive_fifo : string Queue.t = Queue.create ()
let derive_mu = Mutex.create ()
let c_derive_hits = Argus_obs.Counter.make "ir.derive_hits"

let payload_key (n : Node.t) =
  Digest.string (Node.type_to_string n.Node.node_type ^ "\x00" ^ n.Node.text)

let derive_cached n =
  let key = payload_key n in
  Mutex.lock derive_mu;
  match Hashtbl.find_opt derive_tbl key with
  | Some d ->
      Mutex.unlock derive_mu;
      Argus_obs.Counter.incr c_derive_hits;
      d
  | None ->
      Mutex.unlock derive_mu;
      let d = derive n in
      Mutex.lock derive_mu;
      if not (Hashtbl.mem derive_tbl key) then begin
        Hashtbl.add derive_tbl key d;
        Queue.add key derive_fifo;
        if Queue.length derive_fifo > derive_memo_capacity then
          Hashtbl.remove derive_tbl (Queue.pop derive_fifo)
      end;
      Mutex.unlock derive_mu;
      d

(* Payload-only patch: replace node [i]'s payload and its cached text
   derivations in the flat arrays, leaving the entity table, CSR
   adjacency, roots and reachability untouched — they are functions of
   the ids and links only, which a payload edit preserves.  The one
   shape-relevant bit of a payload is whether its type is contextual
   (it feeds root detection), so a contextual-ness flip is refused and
   the caller re-interns.

   Mutates [ir]'s arrays in place: the returned value shares them, and
   the argument must not be used afterwards.  [structure] is the
   already-edited source the returned IR should carry (for evidence
   lookups). *)
let set_node ?(derive = derive) ir structure i n =
  if i < 0 || i >= ir.n_nodes then invalid_arg "Caseir.set_node: index";
  let old = ir.nodes.(i) in
  if not (Id.equal old.Node.id n.Node.id) then
    invalid_arg "Caseir.set_node: id change needs a re-intern";
  if
    Node.is_contextual old.Node.node_type
    <> Node.is_contextual n.Node.node_type
  then invalid_arg "Caseir.set_node: contextual-ness change needs a re-intern";
  Argus_obs.Counter.incr c_patched;
  ir.nodes.(i) <- n;
  let d = derive n in
  ir.goal_like.(i) <- d.d_goal_like;
  ir.norm.(i) <- d.d_norm;
  ir.content.(i) <- d.d_content;
  ir.ignorance.(i) <- d.d_ignorance;
  ir.universal.(i) <- d.d_universal;
  ir.propositional.(i) <- d.d_propositional;
  { ir with structure }

(* The legacy cycle search, verbatim over entity indices: DFS from each
   node entity in insertion order with the recursion stack as the path;
   entities proven cycle-free as entry points are skipped on later
   entries.  The witness (first back edge in this exact order) must
   match [Structure.has_cycle]'s, because it lands in a diagnostic's
   subject list. *)
let has_cycle ir =
  let cleared = Array.make (max 1 ir.n_entities) false in
  let rec visit path i =
    if List.mem i path then Some (List.rev (i :: path))
    else if cleared.(i) then None
    else
      let path = i :: path in
      let rec go k =
        if k >= ir.sup_out_off.(i + 1) then None
        else
          match visit path ir.sup_out.(k) with
          | Some _ as w -> w
          | None -> go (k + 1)
      in
      go ir.sup_out_off.(i)
  in
  let rec entries i =
    if i >= ir.n_nodes then None
    else
      match visit [] i with
      | Some w -> Some (List.map (fun e -> ir.ids.(e)) w)
      | None ->
          cleared.(i) <- true;
          entries (i + 1)
  in
  entries 0
