(* Array-backed interning of a GSN structure.

   [Structure.t] is built for functional editing: nodes in an [Id.Map],
   links and orderings as lists, every child/parent query a full scan of
   the link list.  The checkers do thousands of such queries per case,
   so checking a case repeatedly (a service, the bench loops, the
   experiment sweeps) pays the scan cost every time.  Interning flattens
   the structure once into integer-indexed arrays — an entity table and
   CSR-style adjacency — after which every traversal the checkers need
   is an index walk.

   The entity table is the subtle part.  Link endpoints need not name
   existing nodes (the structure is deliberately permissive; the checker
   reports dangling endpoints), and the legacy traversals propagate
   {e through} missing ids: [Structure.supported_subtree] and
   [Structure.has_cycle] recurse into a dangling endpoint's own outgoing
   links.  So the table interns every id the structure mentions — the
   nodes first, in insertion order, then the dangling link endpoints in
   link-scan order — and the adjacency covers all of them.  An entity
   index [i] names a real node iff [i < n_nodes].

   Interning also caches the per-node text derivations the checkers
   recompute on every run (content words, the normalised claim text,
   the ignorance/universal/propositional predicates); the graph shape
   and the texts are immutable once interned, so these are plain
   arrays.  [ir.interned] counts interning passes. *)

module Id = Argus_core.Id
module Textutil = Argus_core.Textutil
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Informal = Argus_fallacy.Informal

type t = {
  structure : Structure.t;  (** The source, for evidence lookups. *)
  n_nodes : int;  (** Entities [0 .. n_nodes-1] are real nodes. *)
  n_entities : int;  (** Nodes plus dangling link endpoints. *)
  ids : Id.t array;  (** Entity index to id; length [n_entities]. *)
  nodes : Node.t array;  (** Length [n_nodes], insertion order. *)
  link_kind : Structure.link array;  (** Links in insertion order. *)
  link_src : int array;
  link_dst : int array;
  sup_out_off : int array;  (** CSR offsets, length [n_entities + 1]. *)
  sup_out : int array;  (** SupportedBy targets, link order per entity. *)
  sup_in_off : int array;
  sup_in : int array;  (** SupportedBy sources, link order per entity. *)
  ctx_out_off : int array;
  ctx_out : int array;  (** InContextOf targets, link order per entity. *)
  roots : int list;  (** Unsupported non-contextual nodes, node order. *)
  reachable : bool array;
      (** Entity reachable from some root over SupportedBy, or in the
          context of such an entity — [Wellformed]'s reachability. *)
  goal_like : bool array;  (** Per node: {!Node.is_goal_like}. *)
  norm : string array;  (** Per node: normalised content-word text. *)
  content : string list array;  (** Per node: {!Textutil.content_words}. *)
  ignorance : bool array;  (** Per node: {!Informal.argues_from_ignorance}. *)
  universal : bool array;
      (** Per goal-like node: {!Wellformed.claims_universally}. *)
  propositional : bool array;
      (** Per [Goal] node: {!Node.looks_propositional}. *)
}

let c_interned = Argus_obs.Counter.make "ir.interned"

let intern structure =
  Argus_obs.Counter.incr c_interned;
  let nodes = Array.of_list (Structure.nodes structure) in
  let n_nodes = Array.length nodes in
  let links = Array.of_list (Structure.links structure) in
  let n_links = Array.length links in
  (* Entity table: nodes first, then dangling endpoints as met. *)
  let index = Hashtbl.create (2 * (n_nodes + 1)) in
  Array.iteri
    (fun i n -> Hashtbl.replace index (Id.to_string n.Node.id) i)
    nodes;
  let extra = ref [] in
  let next = ref n_nodes in
  let entity id =
    let key = Id.to_string id in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add index key i;
        extra := id :: !extra;
        i
  in
  let link_kind = Array.make n_links Structure.Supported_by in
  let link_src = Array.make n_links 0 in
  let link_dst = Array.make n_links 0 in
  Array.iteri
    (fun k (kind, src, dst) ->
      link_kind.(k) <- kind;
      link_src.(k) <- entity src;
      link_dst.(k) <- entity dst)
    links;
  let n_entities = !next in
  let ids = Array.make (max 1 n_entities) (Id.of_string "x") in
  Array.iteri (fun i n -> ids.(i) <- n.Node.id) nodes;
  List.iteri (fun j id -> ids.(n_entities - 1 - j) <- id) !extra;
  (* CSR adjacency: count, prefix-sum, fill in link order. *)
  let csr select =
    let count = Array.make n_entities 0 in
    for k = 0 to n_links - 1 do
      match select k with
      | Some (at, _) -> count.(at) <- count.(at) + 1
      | None -> ()
    done;
    let off = Array.make (n_entities + 1) 0 in
    for i = 0 to n_entities - 1 do
      off.(i + 1) <- off.(i) + count.(i)
    done;
    let dat = Array.make off.(n_entities) 0 in
    let cursor = Array.copy off in
    for k = 0 to n_links - 1 do
      match select k with
      | Some (at, v) ->
          dat.(cursor.(at)) <- v;
          cursor.(at) <- cursor.(at) + 1
      | None -> ()
    done;
    (off, dat)
  in
  let sup_out_off, sup_out =
    csr (fun k ->
        if link_kind.(k) = Structure.Supported_by then
          Some (link_src.(k), link_dst.(k))
        else None)
  in
  let sup_in_off, sup_in =
    csr (fun k ->
        if link_kind.(k) = Structure.Supported_by then
          Some (link_dst.(k), link_src.(k))
        else None)
  in
  let ctx_out_off, ctx_out =
    csr (fun k ->
        if link_kind.(k) = Structure.In_context_of then
          Some (link_src.(k), link_dst.(k))
        else None)
  in
  (* Roots: no incoming SupportedBy, non-contextual type — node order. *)
  let roots = ref [] in
  for i = n_nodes - 1 downto 0 do
    if
      sup_in_off.(i + 1) = sup_in_off.(i)
      && not (Node.is_contextual nodes.(i).Node.node_type)
    then roots := i :: !roots
  done;
  let roots = !roots in
  (* Reachability: SupportedBy closure of the roots, plus the contexts
     of every entity in it (one hop, as the legacy checker unions
     [context_of] over subtree members). *)
  let supported = Array.make (max 1 n_entities) false in
  let rec mark i =
    if not supported.(i) then begin
      supported.(i) <- true;
      for k = sup_out_off.(i) to sup_out_off.(i + 1) - 1 do
        mark sup_out.(k)
      done
    end
  in
  List.iter mark roots;
  let reachable = Array.copy supported in
  for i = 0 to n_entities - 1 do
    if supported.(i) then
      for k = ctx_out_off.(i) to ctx_out_off.(i + 1) - 1 do
        reachable.(ctx_out.(k)) <- true
      done
  done;
  (* Cached text derivations. *)
  let goal_like = Array.make (max 1 n_nodes) false in
  let norm = Array.make (max 1 n_nodes) "" in
  let content = Array.make (max 1 n_nodes) [] in
  let ignorance = Array.make (max 1 n_nodes) false in
  let universal = Array.make (max 1 n_nodes) false in
  let propositional = Array.make (max 1 n_nodes) true in
  Array.iteri
    (fun i n ->
      let text = n.Node.text in
      let words = Textutil.content_words text in
      let gl = Node.is_goal_like n.Node.node_type in
      goal_like.(i) <- gl;
      content.(i) <- words;
      norm.(i) <- String.concat " " words;
      ignorance.(i) <- Informal.argues_from_ignorance text;
      if gl then universal.(i) <- Wellformed.claims_universally text;
      if n.Node.node_type = Node.Goal then
        propositional.(i) <- Node.looks_propositional text)
    nodes;
  {
    structure;
    n_nodes;
    n_entities;
    ids;
    nodes;
    link_kind;
    link_src;
    link_dst;
    sup_out_off;
    sup_out;
    sup_in_off;
    sup_in;
    ctx_out_off;
    ctx_out;
    roots;
    reachable;
    goal_like;
    norm;
    content;
    ignorance;
    universal;
    propositional;
  }

(* The legacy cycle search, verbatim over entity indices: DFS from each
   node entity in insertion order with the recursion stack as the path;
   entities proven cycle-free as entry points are skipped on later
   entries.  The witness (first back edge in this exact order) must
   match [Structure.has_cycle]'s, because it lands in a diagnostic's
   subject list. *)
let has_cycle ir =
  let cleared = Array.make (max 1 ir.n_entities) false in
  let rec visit path i =
    if List.mem i path then Some (List.rev (i :: path))
    else if cleared.(i) then None
    else
      let path = i :: path in
      let rec go k =
        if k >= ir.sup_out_off.(i + 1) then None
        else
          match visit path ir.sup_out.(k) with
          | Some _ as w -> w
          | None -> go (k + 1)
      in
      go ir.sup_out_off.(i)
  in
  let rec entries i =
    if i >= ir.n_nodes then None
    else
      match visit [] i with
      | Some w -> Some (List.map (fun e -> ir.ids.(e)) w)
      | None ->
          cleared.(i) <- true;
          entries (i + 1)
  in
  entries 0
