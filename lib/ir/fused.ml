(* The fused checker: GSN well-formedness, the informal-fallacy lints
   and the CAE rules, each run as index walks over an interned case
   instead of three independent tree traversals over [Structure.t].

   This is a reimplementation, not a refactor: {!Argus_gsn.Wellformed},
   {!Argus_fallacy.Informal} and {!Argus_cae.Cae} keep their list-walk
   code and serve as the differential oracle (test/ir holds the two to
   byte-identical diagnostic lists, the same pattern the compiled
   Prolog engine uses against the interpreter).  Everything observable
   is preserved: diagnostics and their order after {!Diagnostic.sort}
   (the per-code emission orders below match the legacy per-code orders,
   and the sort is stable), the [gsn.wf.*] counters, the
   [gsn.wellformed*] spans, and the circular-support walk's budget
   ticks — one per visit, skipped for on-path ids, charged even for
   dangling endpoints, exactly as the legacy walk's short-circuit
   evaluates.  [ir.fused_passes] counts passes. *)

module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Node = Argus_gsn.Node
module Structure = Argus_gsn.Structure
module Wellformed = Argus_gsn.Wellformed
module Informal = Argus_fallacy.Informal
module Cae = Argus_cae.Cae
module Budget = Argus_rt.Budget
module Span = Argus_obs.Span
module Counter = Argus_obs.Counter

type result = { wf : Diagnostic.t list; informal : Diagnostic.t list }

let c_fused = Counter.make "ir.fused_passes"

(* The same counters [Wellformed] registers — [Counter.make] interns by
   name, so both checkers feed one catalogue entry. *)
let c_nodes_visited = Counter.make "gsn.wf.nodes_visited"
let c_links_checked = Counter.make "gsn.wf.links_checked"
let c_findings = Counter.make "gsn.wf.findings"

(* The per-node lints (argument-from-ignorance, equivocation among
   sibling goals) for node [i] — legacy runs these as two whole-node
   scans; here they ride the well-formedness node loop.  The stable
   {!Diagnostic.sort} groups findings back by code, so the interleaved
   emission sorts identically to the legacy scan-by-scan order. *)
let node_lints (ir : Caseir.t) i inf_add =
  let ids = ir.Caseir.ids in
  let n_nodes = ir.Caseir.n_nodes in
  let sup_out_off = ir.Caseir.sup_out_off and sup_out = ir.Caseir.sup_out in
  if ir.Caseir.ignorance.(i) then
    inf_add
      (Diagnostic.warningf ~code:"informal/argument-from-ignorance"
         ~subjects:[ ids.(i) ]
         "claim argued from absence of evidence; confirm the search \
          procedure was adequate");
  let goal_children = ref [] in
  for k = sup_out_off.(i + 1) - 1 downto sup_out_off.(i) do
    let j = sup_out.(k) in
    if j < n_nodes && ir.Caseir.goal_like.(j) then
      goal_children := j :: !goal_children
  done;
  match !goal_children with
  | _ :: _ :: _ as siblings ->
      let word_sets =
        List.map (fun j -> (j, ir.Caseir.content.(j))) siblings
      in
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.iter
        (fun ((j1, ws1), (j2, ws2)) ->
          let shared = List.filter (fun w -> List.mem w ws2) ws1 in
          let only1 = List.filter (fun w -> not (List.mem w ws2)) ws1 in
          let only2 = List.filter (fun w -> not (List.mem w ws1)) ws2 in
          match shared with
          | [ word ] when List.length only1 >= 3 && List.length only2 >= 3 ->
              inf_add
                (Diagnostic.warningf ~code:"informal/equivocation-candidate"
                   ~subjects:[ ids.(j1); ids.(j2) ]
                   "the word %S links otherwise-unrelated sibling goals; \
                    check it means the same thing in both"
                   word)
          | _ -> ())
        (pairs word_sets)
  | _ -> ()

(* The circular-support walk — the one lint that is a path traversal
   rather than a node scan, so it keeps its own (budgeted) walk.  Tick
   accounting matches the legacy walk exactly: one tick per visit,
   skipped for on-path ids (the [||] short-circuit), charged even for
   dangling endpoints. *)
let circular_walk ?budget (ir : Caseir.t) inf_add =
  let walk_budget, internal =
    match budget with
    | Some b -> (b, false)
    | None -> (Budget.make ~fuel:Informal.default_walk_fuel (), true)
  in
  let n_nodes = ir.Caseir.n_nodes in
  let sup_out_off = ir.Caseir.sup_out_off and sup_out = ir.Caseir.sup_out in
  let on_path = Array.make (max 1 ir.Caseir.n_entities) false in
  let rec walk ancestors i =
    if on_path.(i) || not (Budget.tick walk_budget ~engine:"informal") then ()
    else if i >= n_nodes then ()
    else begin
      let here = ir.Caseir.norm.(i) in
      let gl = ir.Caseir.goal_like.(i) in
      if
        gl && here <> ""
        && List.exists (fun (ai, atext) -> ai <> i && atext = here) ancestors
      then
        inf_add
          (Diagnostic.warningf ~code:"informal/circular-support"
             ~subjects:[ ir.Caseir.ids.(i) ]
             "goal restates an ancestor goal's claim");
      let ancestors' = if gl then (i, here) :: ancestors else ancestors in
      on_path.(i) <- true;
      for k = sup_out_off.(i) to sup_out_off.(i + 1) - 1 do
        walk ancestors' sup_out.(k)
      done;
      on_path.(i) <- false
    end
  in
  List.iter (walk []) ir.Caseir.roots;
  if internal then List.iter inf_add (Budget.diagnostics walk_budget)

(* One link's well-formedness findings, in [check]'s emission order.
   Counter accounting stays with the caller. *)
let link_findings_at ~ruleset (ir : Caseir.t) k wf_add =
  let n_nodes = ir.Caseir.n_nodes in
  let ids = ir.Caseir.ids in
  let nodes = ir.Caseir.nodes in
  let si = ir.Caseir.link_src.(k) and di = ir.Caseir.link_dst.(k) in
  let src = ids.(si) and dst = ids.(di) in
  if si >= n_nodes || di >= n_nodes then
    wf_add
      (Diagnostic.errorf ~code:"gsn/dangling-link" ~subjects:[ src; dst ]
         "link references a missing node")
  else
    let s = nodes.(si) and d = nodes.(di) in
    match ir.Caseir.link_kind.(k) with
    | Structure.Supported_by ->
        if
          not (Wellformed.support_target_ok s.Node.node_type d.Node.node_type)
        then
          wf_add
            (Diagnostic.errorf ~code:"gsn/bad-support-link"
               ~subjects:[ src; dst ] "a %s cannot be supported by a %s"
               (Node.type_to_string s.Node.node_type)
               (Node.type_to_string d.Node.node_type))
        else if
          ruleset = Wellformed.Denney_pai_2013
          && s.Node.node_type = Node.Goal
          && d.Node.node_type = Node.Goal
        then
          wf_add
            (Diagnostic.errorf ~code:"gsn/dp-goal-under-goal"
               ~subjects:[ src; dst ]
               "goal directly supports a goal (forbidden by the Denney-Pai \
                2013 formalisation, though the GSN standard allows it)")
    | Structure.In_context_of ->
        let bad_src = not (Wellformed.context_source_ok s.Node.node_type) in
        let bad_dst = not (Wellformed.context_target_ok d.Node.node_type) in
        if bad_src || bad_dst then
          if
            (match s.Node.node_type with
            | Node.Away_goal _ -> true
            | _ -> false)
            && d.Node.node_type = Node.Solution
          then
            wf_add
              (Diagnostic.errorf ~code:"gsn/solution-in-context-of-away-goal"
                 ~subjects:[ src; dst ]
                 "a solution cannot be in the context of an away goal")
          else
            wf_add
              (Diagnostic.errorf ~code:"gsn/bad-context-link"
                 ~subjects:[ src; dst ] "%s cannot be in the context of %s"
                 (Node.type_to_string d.Node.node_type)
                 (Node.type_to_string s.Node.node_type))

let cycle_into (ir : Caseir.t) wf_add =
  match Caseir.has_cycle ir with
  | None -> ()
  | Some witness ->
      wf_add
        (Diagnostic.errorf ~code:"gsn/cycle" ~subjects:witness
           "the SupportedBy relation is cyclic")

let roots_into (ir : Caseir.t) wf_add =
  let ids = ir.Caseir.ids and nodes = ir.Caseir.nodes in
  if ir.Caseir.n_nodes > 0 then
    match ir.Caseir.roots with
    | [] ->
        wf_add
          (Diagnostic.error ~code:"gsn/no-root"
             "no root element (every non-contextual node is supported)")
    | [ root ] ->
        let n = nodes.(root) in
        if n.Node.node_type <> Node.Goal then
          wf_add
            (Diagnostic.warningf ~code:"gsn/root-not-goal"
               ~subjects:[ ids.(root) ] "the root element is a %s, not a goal"
               (Node.type_to_string n.Node.node_type))
    | _ :: _ :: _ as roots ->
        wf_add
          (Diagnostic.warningf ~code:"gsn/multiple-roots"
             ~subjects:(List.map (fun i -> ids.(i)) roots)
             "%d root elements (a connected argument has one)"
             (List.length roots))

(* Node [i]'s well-formedness findings, in [check]'s emission order.
   These depend only on the node's payload, its support degree, its
   SupportedBy parents' (goal-like, universal) flags, the evidence
   table's answer for its citation, its reachability bit and whether
   the case has roots — the inputs the store's verdict memo keys
   over. *)
let node_findings_into (ir : Caseir.t) i wf_add =
  let n_nodes = ir.Caseir.n_nodes in
  let ids = ir.Caseir.ids in
  let nodes = ir.Caseir.nodes in
  let sup_out_off = ir.Caseir.sup_out_off in
  let n = nodes.(i) in
  let id = ids.(i) in
  let unsupported = sup_out_off.(i + 1) = sup_out_off.(i) in
  if String.trim n.Node.text = "" then
    wf_add
      (Diagnostic.errorf ~code:"gsn/empty-text" ~subjects:[ id ]
         "node has no text");
  (match n.Node.status with
  | Node.Developed ->
      if Wellformed.has_placeholder n.Node.text then
        wf_add
          (Diagnostic.errorf ~code:"gsn/placeholder-text" ~subjects:[ id ]
             "developed node still contains a {placeholder}")
  | Node.Uninstantiated | Node.Undeveloped_uninstantiated ->
      wf_add
        (Diagnostic.warningf ~code:"gsn/uninstantiated" ~subjects:[ id ]
           "node awaits instantiation")
  | Node.Undeveloped ->
      if not unsupported then
        wf_add
          (Diagnostic.warningf ~code:"gsn/undeveloped-with-support"
             ~subjects:[ id ]
             "node is marked undeveloped yet has supporting elements"));
  (match n.Node.node_type with
  | Node.Goal ->
      if
        unsupported
        && (n.Node.status = Node.Developed
           || n.Node.status = Node.Uninstantiated)
      then
        wf_add
          (Diagnostic.errorf ~code:"gsn/unsupported-goal" ~subjects:[ id ]
             "goal is neither supported nor marked undeveloped");
      if not ir.Caseir.propositional.(i) then
        wf_add
          (Diagnostic.warningf ~code:"gsn/non-propositional-goal"
             ~subjects:[ id ] "goal text does not read as a proposition")
  | Node.Strategy ->
      if
        unsupported
        && (n.Node.status = Node.Developed
           || n.Node.status = Node.Uninstantiated)
      then
        wf_add
          (Diagnostic.errorf ~code:"gsn/undeveloped-strategy" ~subjects:[ id ]
             "strategy has no supporting goals and is not marked undeveloped")
  | Node.Solution -> (
      match n.Node.evidence with
      | None ->
          wf_add
            (Diagnostic.warningf ~code:"gsn/solution-without-evidence"
               ~subjects:[ id ] "solution cites no evidence item")
      | Some ev_id -> (
          match Structure.find_evidence ev_id ir.Caseir.structure with
          | None ->
              wf_add
                (Diagnostic.errorf ~code:"gsn/unknown-evidence"
                   ~subjects:[ id; ev_id ]
                   "solution cites an unregistered evidence item")
          | Some ev ->
              for k = ir.Caseir.sup_in_off.(i)
                  to ir.Caseir.sup_in_off.(i + 1) - 1 do
                let pi = ir.Caseir.sup_in.(k) in
                if
                  pi < n_nodes
                  && ir.Caseir.goal_like.(pi)
                  && ir.Caseir.universal.(pi)
                  && not
                       (Evidence.supports_kind ev.Evidence.kind
                          Evidence.Universal)
                then
                  wf_add
                    (Diagnostic.warningf ~code:"gsn/weak-evidence"
                       ~subjects:[ ids.(pi); id ]
                       "universal claim rests on %s evidence"
                       (Evidence.kind_to_string ev.Evidence.kind))
              done))
  | Node.Context | Node.Assumption | Node.Justification | Node.Away_goal _
  | Node.Module_ref _ | Node.Contract _ ->
      ());
  if (not ir.Caseir.reachable.(i)) && ir.Caseir.roots <> [] then
    wf_add
      (Diagnostic.warningf ~code:"gsn/unreachable" ~subjects:[ id ]
         "node is not reachable from any root")

let check ?(ruleset = Wellformed.Standard) ?budget ?(lints = true)
    (ir : Caseir.t) =
  Counter.incr c_fused;
  let wf_out = ref [] in
  let wf_add d =
    Counter.incr c_findings;
    wf_out := d :: !wf_out
  in
  let inf_out = ref [] in
  let inf_add d = inf_out := d :: !inf_out in
  let n_nodes = ir.Caseir.n_nodes in
  Span.with_ ~name:"gsn.wellformed" (fun () ->
      (* Link rules. *)
      Span.with_ ~name:"gsn.wellformed.links" (fun () ->
          for k = 0 to Array.length ir.Caseir.link_kind - 1 do
            Counter.incr c_links_checked;
            link_findings_at ~ruleset ir k wf_add
          done);
      (* Cycles. *)
      Span.with_ ~name:"gsn.wellformed.cycles" (fun () ->
          cycle_into ir wf_add);
      (* Roots. *)
      roots_into ir wf_add;
      (* Per-node rules, with the per-node lints fused in. *)
      Span.with_ ~name:"gsn.wellformed.nodes" (fun () ->
          for i = 0 to n_nodes - 1 do
            Counter.incr c_nodes_visited;
            node_findings_into ir i wf_add;
            if lints then node_lints ir i inf_add
          done));
  if lints then circular_walk ?budget ir inf_add;
  {
    wf = Diagnostic.sort (List.rev !wf_out);
    informal = Diagnostic.sort (List.rev !inf_out);
  }

(* --- Per-unit entry points for the incremental store --- *)

(* Each returns its findings in [check]'s emission order, without
   firing the [gsn.wf.*] counters or [gsn.wellformed*] spans (those
   describe full passes; the store counts its own cache traffic).  A
   full verdict reassembled from these pieces — links, then cycle,
   then roots, then per-node findings in node order for [wf]; node
   lints in node order, then the walk, for [informal] — is
   byte-identical to {!check} once {!assemble} applies the same stable
   sort, because the sort only reorders across what the emission
   order already interleaves deterministically. *)

let collect f =
  let out = ref [] in
  f (fun d -> out := d :: !out);
  List.rev !out

let link_findings ?(ruleset = Wellformed.Standard) (ir : Caseir.t) =
  collect (fun add ->
      for k = 0 to Array.length ir.Caseir.link_kind - 1 do
        link_findings_at ~ruleset ir k add
      done)

let shape_findings (ir : Caseir.t) =
  collect (fun add ->
      cycle_into ir add;
      roots_into ir add)

let node_findings (ir : Caseir.t) i =
  collect (fun add -> node_findings_into ir i add)

let node_lint_findings (ir : Caseir.t) i =
  collect (fun add -> node_lints ir i add)

let walk_findings ?budget (ir : Caseir.t) =
  collect (fun add -> circular_walk ?budget ir add)

let assemble ~wf ~informal =
  { wf = Diagnostic.sort wf; informal = Diagnostic.sort informal }

(* --- Modular --- *)

(* The modular checker compiled onto the IR: each module's
   well-formedness runs as a fused pass over its interned form instead
   of the legacy tree walk, while the cross-module rules (away goals,
   module references, dependency cycles) stay in
   {!Argus_gsn.Modular}.  Byte-identical to
   {!Argus_gsn.Modular.check} because the per-module fused pass is
   byte-identical to {!Argus_gsn.Wellformed.check} (test/ir holds
   both equalities). *)
let check_modular ?pool m =
  Argus_gsn.Modular.check_with ?pool
    ~wf:(fun s ->
      (check ~lints:false (Caseir.intern ~derive:Caseir.derive_cached s)).wf)
    m

(* Lints alone, for callers that would have invoked only
   {!Argus_fallacy.Informal.check_structure} — no [gsn.wf.*] counters,
   no [gsn.wellformed*] spans, just the informal findings. *)
let lint ?budget (ir : Caseir.t) =
  Counter.incr c_fused;
  let inf_out = ref [] in
  let inf_add d = inf_out := d :: !inf_out in
  for i = 0 to ir.Caseir.n_nodes - 1 do
    node_lints ir i inf_add
  done;
  circular_walk ?budget ir inf_add;
  Diagnostic.sort (List.rev !inf_out)

(* --- CAE --- *)

type cae_ir = {
  n_cae_nodes : int;
  n_cae_entities : int;
  cae_ids : Id.t array;
  cae_nodes : Cae.node array;
  cae_src : int array;  (** Per link: the supported entity. *)
  cae_dst : int array;  (** Per link: the supporting entity. *)
  supp_off : int array;  (** CSR: supporters per entity, link order. *)
  supp : int array;
  is_supporter : bool array;  (** Entity appears as some link's dst. *)
}

let intern_cae cae =
  let nodes = Array.of_list (Cae.nodes cae) in
  let n_nodes = Array.length nodes in
  let links = Array.of_list (Cae.links cae) in
  let n_links = Array.length links in
  let index = Hashtbl.create (2 * (n_nodes + 1)) in
  Array.iteri
    (fun i n -> Hashtbl.replace index (Id.to_string n.Cae.id) i)
    nodes;
  let extra = ref [] in
  let next = ref n_nodes in
  let entity id =
    let key = Id.to_string id in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add index key i;
        extra := id :: !extra;
        i
  in
  let cae_src = Array.make n_links 0 in
  let cae_dst = Array.make n_links 0 in
  Array.iteri
    (fun k (src, dst) ->
      cae_src.(k) <- entity src;
      cae_dst.(k) <- entity dst)
    links;
  let n_entities = !next in
  let cae_ids = Array.make (max 1 n_entities) (Id.of_string "x") in
  Array.iteri (fun i n -> cae_ids.(i) <- n.Cae.id) nodes;
  List.iteri (fun j id -> cae_ids.(n_entities - 1 - j) <- id) !extra;
  let count = Array.make n_entities 0 in
  Array.iter (fun s -> count.(s) <- count.(s) + 1) cae_src;
  let supp_off = Array.make (n_entities + 1) 0 in
  for i = 0 to n_entities - 1 do
    supp_off.(i + 1) <- supp_off.(i) + count.(i)
  done;
  let supp = Array.make supp_off.(n_entities) 0 in
  let cursor = Array.copy supp_off in
  for k = 0 to n_links - 1 do
    let s = cae_src.(k) in
    supp.(cursor.(s)) <- cae_dst.(k);
    cursor.(s) <- cursor.(s) + 1
  done;
  let is_supporter = Array.make (max 1 n_entities) false in
  Array.iter (fun d -> is_supporter.(d) <- true) cae_dst;
  {
    n_cae_nodes = n_nodes;
    n_cae_entities = n_entities;
    cae_ids;
    cae_nodes = nodes;
    cae_src;
    cae_dst;
    supp_off;
    supp;
    is_supporter;
  }

let cae_type_string = function
  | Cae.Claim -> "claim"
  | Cae.Argument -> "argument"
  | Cae.Evidence_ref -> "evidence"

let check_cae ir =
  Counter.incr c_fused;
  let out = ref [] in
  let add d = out := d :: !out in
  let n_nodes = ir.n_cae_nodes in
  let ids = ir.cae_ids in
  for k = 0 to Array.length ir.cae_src - 1 do
    let si = ir.cae_src.(k) and di = ir.cae_dst.(k) in
    let src = ids.(si) and dst = ids.(di) in
    if si >= n_nodes || di >= n_nodes then
      add
        (Diagnostic.errorf ~code:"cae/dangling-link" ~subjects:[ src; dst ]
           "support link references a missing node")
    else
      let s = ir.cae_nodes.(si) and d = ir.cae_nodes.(di) in
      match (s.Cae.node_type, d.Cae.node_type) with
      | Cae.Claim, Cae.Argument
      | Cae.Argument, (Cae.Claim | Cae.Evidence_ref) ->
          ()
      | Cae.Claim, Cae.Evidence_ref ->
          add
            (Diagnostic.errorf ~code:"cae/bad-support" ~subjects:[ src; dst ]
               "evidence must support a claim via an argument node")
      | _ ->
          add
            (Diagnostic.errorf ~code:"cae/bad-support" ~subjects:[ src; dst ]
               "a %s cannot be supported by a %s"
               (cae_type_string s.Cae.node_type)
               (cae_type_string d.Cae.node_type))
  done;
  (* The legacy cycle test: path-only DFS from every node entity. *)
  let has_cycle =
    let rec visit path i =
      List.mem i path
      ||
      let path = i :: path in
      let rec go k =
        k < ir.supp_off.(i + 1) && (visit path ir.supp.(k) || go (k + 1))
      in
      go ir.supp_off.(i)
    in
    let rec entries i = i < n_nodes && (visit [] i || entries (i + 1)) in
    entries 0
  in
  if has_cycle then
    add (Diagnostic.error ~code:"cae/cycle" "the support relation is cyclic");
  let root_claims = ref false in
  for i = 0 to n_nodes - 1 do
    if ir.cae_nodes.(i).Cae.node_type = Cae.Claim && not ir.is_supporter.(i)
    then root_claims := true
  done;
  if n_nodes > 0 && not !root_claims then
    add (Diagnostic.error ~code:"cae/no-root" "no top-level claim");
  for i = 0 to n_nodes - 1 do
    let n = ir.cae_nodes.(i) in
    if String.trim n.Cae.text = "" then
      add
        (Diagnostic.errorf ~code:"cae/empty-text" ~subjects:[ ids.(i) ]
           "node has no text");
    let n_sup = ir.supp_off.(i + 1) - ir.supp_off.(i) in
    match n.Cae.node_type with
    | Cae.Claim ->
        let args = ref 0 in
        for k = ir.supp_off.(i) to ir.supp_off.(i + 1) - 1 do
          let j = ir.supp.(k) in
          if j < n_nodes && ir.cae_nodes.(j).Cae.node_type = Cae.Argument
          then incr args
        done;
        if (not n.Cae.premise) && !args = 0 then
          add
            (Diagnostic.errorf ~code:"cae/claim-without-argument"
               ~subjects:[ ids.(i) ]
               "claim is not a premise and has no supporting argument");
        if !args > 1 then
          add
            (Diagnostic.warningf ~code:"cae/multiple-arguments"
               ~subjects:[ ids.(i) ]
               "claim has %d argument nodes (the methodology expects one)"
               !args)
    | Cae.Argument ->
        if n_sup = 0 then
          add
            (Diagnostic.errorf ~code:"cae/empty-argument"
               ~subjects:[ ids.(i) ]
               "argument node cites no evidence or subclaims")
    | Cae.Evidence_ref ->
        if n_sup > 0 then
          add
            (Diagnostic.errorf ~code:"cae/evidence-not-leaf"
               ~subjects:[ ids.(i) ] "evidence must be a leaf")
  done;
  Diagnostic.sort (List.rev !out)
