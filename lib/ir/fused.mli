(** The fused checker: well-formedness and the informal-fallacy lints
    in one pass over an interned case ({!Caseir}), and the CAE rules
    over an interned CAE graph.

    A reimplementation with the legacy checkers as differential oracle:
    {!check} produces byte-identical diagnostic lists to
    {!Argus_gsn.Wellformed.check} and
    {!Argus_fallacy.Informal.check_structure} on the same structure —
    same findings, same order, same budget tick accounting for the
    circular-support walk — and {!check_cae} likewise matches
    {!Argus_cae.Cae.check} (test/ir holds them to it).  The
    [gsn.wf.*] counters and [gsn.wellformed*] spans fire exactly as
    the legacy checker's do; [ir.fused_passes] counts fused passes. *)

type result = {
  wf : Argus_core.Diagnostic.t list;
      (** As {!Argus_gsn.Wellformed.check}. *)
  informal : Argus_core.Diagnostic.t list;
      (** As {!Argus_fallacy.Informal.check_structure}; [[]] when the
          pass ran with [~lints:false]. *)
}

val check :
  ?ruleset:Argus_gsn.Wellformed.ruleset ->
  ?budget:Argus_rt.Budget.t ->
  ?lints:bool ->
  Caseir.t ->
  result
(** [budget] governs only the circular-support walk, exactly as in
    {!Argus_fallacy.Informal.check_structure}: when absent the walk
    runs under an internal {!Argus_fallacy.Informal.default_walk_fuel}
    budget whose exhaustion is reported in [informal].  [lints]
    (default [true]) set to [false] skips the lints — and hence never
    touches the budget, matching a caller that never invoked the
    legacy lint entry point. *)

val lint :
  ?budget:Argus_rt.Budget.t -> Caseir.t -> Argus_core.Diagnostic.t list
(** The informal lints alone — byte-identical to
    {!Argus_fallacy.Informal.check_structure}, without firing any
    [gsn.wf.*] counters or [gsn.wellformed*] spans, for callers that
    only lint. *)

(** {2 Per-unit entry points}

    The fused pass split into its independently recomputable units,
    for the incremental store (lib/store): each returns its findings
    in {!check}'s emission order, without firing the [gsn.wf.*]
    counters or spans.  Concatenating links, shape, then per-node
    findings in node order (resp. node lints in node order, then the
    walk) and applying {!assemble} reproduces {!check}
    byte-for-byte. *)

val link_findings :
  ?ruleset:Argus_gsn.Wellformed.ruleset ->
  Caseir.t ->
  Argus_core.Diagnostic.t list
(** All per-link findings, link order.  The only unit that reads the
    ruleset. *)

val shape_findings : Caseir.t -> Argus_core.Diagnostic.t list
(** The cycle witness and the root-count findings — the global graph
    shape. *)

val node_findings : Caseir.t -> int -> Argus_core.Diagnostic.t list
(** Node [i]'s well-formedness findings.  Reads only the node's
    payload, its support degree, its SupportedBy parents' universal
    flags, the evidence table's answer for its citation, its
    reachability bit and whether the case has roots. *)

val node_lint_findings : Caseir.t -> int -> Argus_core.Diagnostic.t list
(** Node [i]'s per-node lints (argument-from-ignorance, equivocation
    among its goal-like SupportedBy children). *)

val walk_findings :
  ?budget:Argus_rt.Budget.t -> Caseir.t -> Argus_core.Diagnostic.t list
(** The circular-support walk, with {!check}'s budget semantics
    (internal {!Argus_fallacy.Informal.default_walk_fuel} budget when
    absent, exhaustion reported in the result). *)

val assemble :
  wf:Argus_core.Diagnostic.t list ->
  informal:Argus_core.Diagnostic.t list ->
  result
(** The final stable sort {!check} applies; the inputs must be in
    {!check}'s emission order. *)

val check_modular :
  ?pool:Argus_par.Pool.t ->
  Argus_gsn.Modular.t ->
  Argus_core.Diagnostic.t list
(** The modular checker compiled onto the IR: per-module
    well-formedness as a fused pass over each module's interned form,
    cross-module rules from {!Argus_gsn.Modular}.  Byte-identical to
    {!Argus_gsn.Modular.check}. *)

type cae_ir

val intern_cae : Argus_cae.Cae.t -> cae_ir

val check_cae : cae_ir -> Argus_core.Diagnostic.t list
(** Byte-identical to {!Argus_cae.Cae.check}. *)
