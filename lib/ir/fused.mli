(** The fused checker: well-formedness and the informal-fallacy lints
    in one pass over an interned case ({!Caseir}), and the CAE rules
    over an interned CAE graph.

    A reimplementation with the legacy checkers as differential oracle:
    {!check} produces byte-identical diagnostic lists to
    {!Argus_gsn.Wellformed.check} and
    {!Argus_fallacy.Informal.check_structure} on the same structure —
    same findings, same order, same budget tick accounting for the
    circular-support walk — and {!check_cae} likewise matches
    {!Argus_cae.Cae.check} (test/ir holds them to it).  The
    [gsn.wf.*] counters and [gsn.wellformed*] spans fire exactly as
    the legacy checker's do; [ir.fused_passes] counts fused passes. *)

type result = {
  wf : Argus_core.Diagnostic.t list;
      (** As {!Argus_gsn.Wellformed.check}. *)
  informal : Argus_core.Diagnostic.t list;
      (** As {!Argus_fallacy.Informal.check_structure}; [[]] when the
          pass ran with [~lints:false]. *)
}

val check :
  ?ruleset:Argus_gsn.Wellformed.ruleset ->
  ?budget:Argus_rt.Budget.t ->
  ?lints:bool ->
  Caseir.t ->
  result
(** [budget] governs only the circular-support walk, exactly as in
    {!Argus_fallacy.Informal.check_structure}: when absent the walk
    runs under an internal {!Argus_fallacy.Informal.default_walk_fuel}
    budget whose exhaustion is reported in [informal].  [lints]
    (default [true]) set to [false] skips the lints — and hence never
    touches the budget, matching a caller that never invoked the
    legacy lint entry point. *)

val lint :
  ?budget:Argus_rt.Budget.t -> Caseir.t -> Argus_core.Diagnostic.t list
(** The informal lints alone — byte-identical to
    {!Argus_fallacy.Informal.check_structure}, without firing any
    [gsn.wf.*] counters or [gsn.wellformed*] spans, for callers that
    only lint. *)

type cae_ir

val intern_cae : Argus_cae.Cae.t -> cae_ir

val check_cae : cae_ir -> Argus_core.Diagnostic.t list
(** Byte-identical to {!Argus_cae.Cae.check}. *)
