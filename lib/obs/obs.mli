(** Toolkit-wide observability control.

    The CLI (and any embedder) configures tracing here; the engines only
    ever talk to {!Span} and {!Counter}/{!Histogram}.  Two outputs:

    - pretty: a span tree and metrics table on stderr ([--trace] or
      [ARGUS_TRACE=1]);
    - JSONL: one event per line to a file ([--trace-json FILE] or
      [ARGUS_TRACE_JSON=FILE]), parseable by [Argus_core.Json].

    Enabling either turns span recording on.  Counters run regardless —
    they are cheap and the bench harness reads them with tracing off. *)

val configure : ?trace:bool -> ?trace_json:string -> unit -> unit
(** Idempotent; flags accumulate ([configure ~trace:true ()] then
    [configure ~trace_json:"t.jsonl" ()] yields both sinks). *)

val configure_from_env : unit -> unit
(** Read [ARGUS_TRACE] (any value but "", "0", "false" enables the
    stderr report) and [ARGUS_TRACE_JSON] (a file path). *)

val active : unit -> bool
(** True when any sink is configured. *)

val finish : unit -> unit
(** Emit to the configured sinks.  Safe to call when inactive (does
    nothing), and more than once (re-emits the current state). *)

val reset : unit -> unit
(** Clear recorded spans, zero all metrics (gauges and their
    high-watermarks included) and empty every flight-recorder ring;
    sinks and registrations stay configured. *)
