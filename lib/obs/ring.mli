(** Flight recorder: a fixed-size, domain-safe ring buffer of
    structured events.

    The service layer records control-plane facts here as they happen —
    admissions, sheds, breaker transitions, worker restarts, slow
    requests, drain — so the moments just before an incident can be
    dumped as JSONL after the fact, with no tracing enabled in
    advance.  The ring is always on and strictly bounded: past
    [capacity] events the oldest are overwritten.

    Rings are registered globally by name (creation is idempotent, like
    counters) and {!Obs.reset} clears them via {!reset_all}. *)

type event = {
  ts_ms : float;  (** Wall-clock milliseconds since the epoch. *)
  kind : string;  (** e.g. ["shed"], ["breaker"], ["restart"]. *)
  fields : (string * Argus_core.Json.t) list;
}

type t

val make : name:string -> capacity:int -> t
(** Register (or fetch) the ring named [name].  [capacity] applies on
    first creation only and is clamped to at least 1. *)

val name : t -> string
val capacity : t -> int

val record :
  ?ts_ms:float -> t -> kind:string -> (string * Argus_core.Json.t) list -> unit
(** Append an event (thread- and domain-safe); [ts_ms] defaults to the
    current wall clock. *)

val events : t -> event list
(** The retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded (exceeds [capacity] once wrapped). *)

val clear : t -> unit

val reset_all : unit -> unit
(** Clear every registered ring (registrations survive). *)

val event_to_json : event -> Argus_core.Json.t
(** [{"type":"flight","ts_ms":...,"kind":...,...fields}] — one JSONL
    line per event. *)

val to_jsonl : t -> Argus_core.Json.t list

val dump : out_channel -> t -> unit
(** Write the retained events as JSONL and flush. *)
