(** Sinks: render the recorded spans and metrics.

    Two formats, matching the two consumers the experiments need — a
    human skimming stderr, and the JSONL trace files that
    [BENCH_*.json]-style trajectory tooling ingests. *)

val pp_report : Format.formatter -> unit -> unit
(** Span tree (µs) followed by the nonzero counters and histogram
    aggregates — the [--trace] stderr report. *)

val jsonl_events : unit -> Argus_core.Json.t list
(** One event per line: a [meta] header, every span in pre-order
    (with [depth] and the recording [domain]), every registered
    counter, every histogram with observations.  Each event round-trips
    through [Argus_core.Json.of_string]. *)

val pp_span_tree : Format.formatter -> Span.t list -> unit
(** The indented name/duration rendering used by [pp_report] — also
    what [argus call --trace] prints for a server-captured tree. *)

val span_to_json : Span.t -> Argus_core.Json.t
(** Nested single-value form ([children] as an array) for carrying a
    captured tree inside a service response payload. *)

val span_of_json : Argus_core.Json.t -> Span.t option
(** Inverse of {!span_to_json}; tolerant of missing numeric fields,
    [None] if [name] is absent. *)
