(** Sinks: render the recorded spans and metrics.

    Two formats, matching the two consumers the experiments need — a
    human skimming stderr, and the JSONL trace files that
    [BENCH_*.json]-style trajectory tooling ingests. *)

val pp_report : Format.formatter -> unit -> unit
(** Span tree (µs) followed by the nonzero counters and histogram
    aggregates — the [--trace] stderr report. *)

val jsonl_events : unit -> Argus_core.Json.t list
(** One event per line: a [meta] header, every span in pre-order
    (with [depth]), every registered counter, every histogram with
    observations.  Each event round-trips through
    [Argus_core.Json.of_string]. *)
