(* Alias so callers write [Argus_obs.Counter] rather than
   [Argus_obs.Metrics.Counter]. *)
include Metrics.Counter
