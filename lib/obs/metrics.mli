(** The global metrics registry: named counters and histograms.

    Counters are always on — an increment is one mutable-field store, so
    the engines keep their counters hot even when tracing output is
    disabled; the bench harness snapshots them after a run.  Creation is
    idempotent: [Counter.make name] returns the already-registered
    counter when the name exists, so modules can create their counters
    at load time without coordination.

    Names are dotted paths, [subsystem.metric] (e.g.
    ["prolog.unifications"]); the catalogue lives in DESIGN.md. *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or fetch) the counter named [name]. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Histogram : sig
  type t

  val make : string -> t
  (** Register (or fetch) the histogram named [name]. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val name : t -> string
end

type histogram_stats = {
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
  hmean : float;
  hp50 : float;  (** Median over a bounded reservoir of observations. *)
  hp90 : float;
}

val counters : unit -> (string * int) list
(** All registered counters, sorted by name. *)

val histograms : unit -> (string * histogram_stats) list
(** Registered histograms with at least one observation, sorted. *)

val reset : unit -> unit
(** Zero every counter and histogram (registrations survive). *)

val to_json : unit -> Argus_core.Json.t
(** [{"counters": {...}, "histograms": {...}}] snapshot. *)
