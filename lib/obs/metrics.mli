(** The global metrics registry: named counters and histograms.

    Counters are always on — an increment is one store into the current
    domain's shard, so the engines keep their counters hot even when
    tracing output is disabled; the bench harness snapshots them after a
    run.  Creation is idempotent: [Counter.make name] returns the
    already-registered counter when the name exists, so modules can
    create their counters at load time without coordination.

    The registry is domain-safe: each domain increments its own
    [Domain.DLS] shard (no locks on the hot path) and readers merge all
    shards.  Shards outlive their domain, so totals accumulated inside
    an {!Argus_par} pool are exact once the workers have been joined; a
    read concurrent with running workers may miss in-flight
    increments.

    Names are dotted paths, [subsystem.metric] (e.g.
    ["prolog.unifications"]); the catalogue lives in DESIGN.md. *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or fetch) the counter named [name]. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string

  type shard
  (** A handle on the calling domain's private cells.  Batch flushes
      (one lookup, several adds) use it to pay the domain-local lookup
      once instead of per counter.  A shard belongs to the domain that
      fetched it: never store one across a spawn or send it to another
      domain. *)

  val current_shard : unit -> shard
  val shard_add : shard -> t -> int -> unit
end

module Gauge : sig
  type t

  val make : string -> t
  (** Register (or fetch) the gauge named [name].  Unlike counters,
      gauges are point-in-time values (queue depth, live workers) set
      by the single owner of the measured quantity; they are not
      sharded — one atomic cell plus a high-watermark. *)

  val set : t -> int -> unit

  val add : t -> int -> unit
  (** Atomic delta (negative to decrement) — for quantities with more
      than one writer, e.g. a connection pool's idle count updated
      from several client domains, where read-modify-write through
      {!set} would lose updates. *)

  val value : t -> int
  val max_value : t -> int
  (** Highest value ever {!set} (since the last {!reset}). *)

  val name : t -> string
end

module Histogram : sig
  type t

  val make : string -> t
  (** Register (or fetch) the histogram named [name]. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val name : t -> string
end

type histogram_stats = {
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
  hmean : float;
  hp50 : float;
      (** Quantiles are estimated from the log-spaced buckets (linear
          interpolation within the covering bucket, clamped to the
          observed range); relative error is bounded by the factor-2
          bucket width. *)
  hp90 : float;
  hp99 : float;
  hbuckets : int array;
      (** Per-bucket observation counts, merged across shards; entry
          [i] counts observations [<= bucket_bounds().(i)], the last
          entry is the overflow bucket. *)
}

val bucket_bounds : unit -> float array
(** The shared log-spaced upper bucket bounds (factor-2 steps from 1e-3
    past 1e12) every histogram records into — exposition formats
    (Prometheus) publish these so scrapers can aggregate. *)

val counters : unit -> (string * int) list
(** All registered counters, sorted by name. *)

val histograms : unit -> (string * histogram_stats) list
(** Registered histograms with at least one observation, sorted. *)

val gauges : unit -> (string * (int * int)) list
(** Registered gauges as [(name, (value, max))], sorted by name. *)

val reset : unit -> unit
(** Zero every counter, histogram bucket, and gauge — including the
    gauges' high-watermarks (registrations survive). *)

val to_json : unit -> Argus_core.Json.t
(** [{"counters": {...}, "histograms": {...}}] snapshot. *)
