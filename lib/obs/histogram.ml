(* Alias so callers write [Argus_obs.Histogram] rather than
   [Argus_obs.Metrics.Histogram]. *)
include Metrics.Histogram
