type t = { name : string; start_ns : int; dur_ns : int; children : t list }

type node = {
  nname : string;
  nstart : int;
  mutable ndur : int;
  mutable nchildren : node list; (* newest first *)
}

(* Written by the main domain before any workers run; workers only
   read, so a plain ref is safe. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Wall time in ns, relative to module load so the ints stay small, the
   JSONL output is stable-ish across runs, and there is no racy
   first-call initialisation across domains. *)
let epoch = Unix.gettimeofday ()
let now_ns () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

(* Each domain keeps its own span stack and completed list, so workers
   record spans without locks or interleaving; [roots] merges the
   per-domain buffers (main domain's spans first) after the fact — in
   practice once a pool's workers have been joined.  Buffers outlive
   their domain. *)
type dshard = {
  mutable stack : node list;
  mutable completed : node list; (* newest first *)
}

let shards_mu = Mutex.create ()
let shards : dshard list ref = ref [] (* newest first *)

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { stack = []; completed = [] } in
      Mutex.protect shards_mu (fun () -> shards := s :: !shards);
      s)

let my_shard () = Domain.DLS.get shard_key

let rec freeze n =
  {
    name = n.nname;
    start_ns = n.nstart;
    dur_ns = n.ndur;
    children = List.rev_map freeze n.nchildren;
  }

let roots () =
  Mutex.protect shards_mu (fun () -> List.rev !shards)
  |> List.concat_map (fun s -> List.rev_map freeze s.completed)

let reset () =
  Mutex.protect shards_mu (fun () ->
      List.iter
        (fun s ->
          s.stack <- [];
          s.completed <- [])
        !shards)

let with_ ~name f =
  if not !enabled_flag then f ()
  else begin
    let sh = my_shard () in
    let n = { nname = name; nstart = now_ns (); ndur = 0; nchildren = [] } in
    sh.stack <- n :: sh.stack;
    let finish () =
      n.ndur <- now_ns () - n.nstart;
      Metrics.Histogram.observe
        (Metrics.Histogram.make ("span." ^ name))
        (float_of_int n.ndur);
      (* Pop up to and including [n]; anything above it was left open by
         an escaping exception and is discarded with its parent intact. *)
      let rec pop = function
        | top :: rest when top == n -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      sh.stack <- pop sh.stack;
      match sh.stack with
      | parent :: _ -> parent.nchildren <- n :: parent.nchildren
      | [] -> sh.completed <- n :: sh.completed
    in
    Fun.protect ~finally:finish f
  end
