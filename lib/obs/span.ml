type t = {
  name : string;
  start_ns : int;
  dur_ns : int;
  domain : int;
  children : t list;
}

type node = {
  nname : string;
  nstart : int;
  mutable ndur : int;
  mutable nchildren : node list; (* newest first *)
}

(* Written by the main domain before any workers run; workers only
   read, so a plain ref is safe. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Live request-scoped captures across all domains.  Checked on the
   [with_] fast path before any DLS lookup, so a process that never
   captures pays one extra atomic load per span site. *)
let n_captures = Atomic.make 0

(* Wall time in ns, relative to module load so the ints stay small, the
   JSONL output is stable-ish across runs, and there is no racy
   first-call initialisation across domains. *)
let epoch = Unix.gettimeofday ()
let now_ns () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

(* Each domain keeps its own span stack and completed list, so workers
   record spans without locks or interleaving; [roots] merges the
   per-domain buffers (main domain's spans first) after the fact — in
   practice once a pool's workers have been joined.  Buffers outlive
   their domain. *)
type dshard = {
  domain : int;
  mutable stack : node list;
  mutable completed : node list; (* newest first *)
  mutable capturing : bool;
}

let shards_mu = Mutex.create ()
let shards : dshard list ref = ref [] (* newest first *)

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          domain = (Domain.self () :> int);
          stack = [];
          completed = [];
          capturing = false;
        }
      in
      Mutex.protect shards_mu (fun () -> shards := s :: !shards);
      s)

let my_shard () = Domain.DLS.get shard_key

let rec freeze domain n =
  {
    name = n.nname;
    start_ns = n.nstart;
    dur_ns = n.ndur;
    domain;
    children = List.rev_map (freeze domain) n.nchildren;
  }

let roots () =
  Mutex.protect shards_mu (fun () -> List.rev !shards)
  |> List.concat_map (fun s -> List.rev_map (freeze s.domain) s.completed)

let reset () =
  Mutex.protect shards_mu (fun () ->
      List.iter
        (fun s ->
          s.stack <- [];
          s.completed <- [])
        !shards)

let record sh ~name f =
  let n = { nname = name; nstart = now_ns (); ndur = 0; nchildren = [] } in
  sh.stack <- n :: sh.stack;
  let finish () =
    n.ndur <- now_ns () - n.nstart;
    Metrics.Histogram.observe
      (Metrics.Histogram.make ("span." ^ name))
      (float_of_int n.ndur);
    (* Pop up to and including [n]; anything above it was left open by
       an escaping exception and is discarded with its parent intact. *)
    let rec pop = function
      | top :: rest when top == n -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    sh.stack <- pop sh.stack;
    match sh.stack with
    | parent :: _ -> parent.nchildren <- n :: parent.nchildren
    | [] -> sh.completed <- n :: sh.completed
  in
  Fun.protect ~finally:finish f

let with_ ~name f =
  (* Fast path when neither global tracing nor any capture is armed:
     one ref read and one atomic load, no DLS access. *)
  if (not !enabled_flag) && Atomic.get n_captures = 0 then f ()
  else begin
    let sh = my_shard () in
    if not (!enabled_flag || sh.capturing) then f ()
    else record sh ~name f
  end

(* Request-scoped capture: divert this domain's recording into a fresh
   buffer for the duration of [f] and hand back the completed tree.
   The surrounding stack/completed are saved and restored, so a capture
   in the middle of a globally-traced run leaves the global trace
   intact minus the captured interval. *)
let capture ~name f =
  let sh = my_shard () in
  let saved_stack = sh.stack and saved_completed = sh.completed in
  sh.stack <- [];
  sh.completed <- [];
  sh.capturing <- true;
  Atomic.incr n_captures;
  let restore () =
    Atomic.decr n_captures;
    sh.capturing <- false;
    sh.stack <- saved_stack;
    sh.completed <- saved_completed
  in
  match record sh ~name f with
  | v ->
      let root =
        match sh.completed with
        | n :: _ -> freeze sh.domain n
        | [] ->
            (* Unreachable: [record] always completes its root. *)
            { name; start_ns = 0; dur_ns = 0; domain = sh.domain; children = [] }
      in
      restore ();
      (v, root)
  | exception e ->
      restore ();
      raise e
