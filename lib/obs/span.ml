type t = { name : string; start_ns : int; dur_ns : int; children : t list }

type node = {
  nname : string;
  nstart : int;
  mutable ndur : int;
  mutable nchildren : node list; (* newest first *)
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Wall time in ns, relative to the first call so the ints stay small
   and the JSONL output is stable-ish across runs. *)
let epoch = ref None

let now_ns () =
  let t = Unix.gettimeofday () in
  let e =
    match !epoch with
    | Some e -> e
    | None ->
        epoch := Some t;
        t
  in
  int_of_float ((t -. e) *. 1e9)

let stack : node list ref = ref []
let completed : node list ref = ref [] (* newest first *)

let rec freeze n =
  {
    name = n.nname;
    start_ns = n.nstart;
    dur_ns = n.ndur;
    children = List.rev_map freeze n.nchildren;
  }

let roots () = List.rev_map freeze !completed

let reset () =
  stack := [];
  completed := []

let with_ ~name f =
  if not !enabled_flag then f ()
  else begin
    let n = { nname = name; nstart = now_ns (); ndur = 0; nchildren = [] } in
    stack := n :: !stack;
    let finish () =
      n.ndur <- now_ns () - n.nstart;
      Metrics.Histogram.observe
        (Metrics.Histogram.make ("span." ^ name))
        (float_of_int n.ndur);
      (* Pop up to and including [n]; anything above it was left open by
         an escaping exception and is discarded with its parent intact. *)
      let rec pop = function
        | top :: rest when top == n -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack;
      match !stack with
      | parent :: _ -> parent.nchildren <- n :: parent.nchildren
      | [] -> completed := n :: !completed
    in
    Fun.protect ~finally:finish f
  end
