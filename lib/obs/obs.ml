let pretty = ref false
let json_path : string option ref = ref None

let configure ?trace ?trace_json () =
  (match trace with
  | Some true ->
      pretty := true;
      Span.set_enabled true
  | Some false | None -> ());
  match trace_json with
  | Some path ->
      json_path := Some path;
      Span.set_enabled true
  | None -> ()

let configure_from_env () =
  (match Sys.getenv_opt "ARGUS_TRACE" with
  | Some ("" | "0" | "false") | None -> ()
  | Some _ -> configure ~trace:true ());
  match Sys.getenv_opt "ARGUS_TRACE_JSON" with
  | Some path when path <> "" -> configure ~trace_json:path ()
  | Some _ | None -> ()

let active () = !pretty || !json_path <> None

let finish () =
  (if !pretty then Format.eprintf "%a" Trace.pp_report ());
  match !json_path with
  | None -> ()
  | Some path -> (
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            List.iter
              (fun ev ->
                output_string oc (Argus_core.Json.to_string ev);
                output_char oc '\n')
              (Trace.jsonl_events ()))
      with Sys_error msg ->
        Format.eprintf "argus: cannot write trace file %s: %s@." path msg)

let reset () =
  Span.reset ();
  Metrics.reset ();
  Ring.reset_all ()
