(* Prometheus text exposition (version 0.0.4) of the metrics registry.

   Dotted registry names become legal Prometheus names under an
   [argus_] prefix (dots and other separators map to underscores):
   counters expose one sample, gauges two (value and high-watermark),
   histograms the standard cumulative [_bucket{le=...}] series over the
   shared log-spaced bounds plus [_sum] and [_count] — quantiles are
   left to the scraper, which can aggregate buckets across instances;
   the JSON stats exposition carries the point-estimated p50/p90/p99
   for humans and [argus top]. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let metric_name name = "argus_" ^ sanitize name

(* %h prints floats compactly but exactly enough to round-trip the
   bucket bounds; plain integers print without an exponent. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render_counters buf =
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Printf.bprintf buf "# TYPE %s counter\n%s %d\n" m m v)
    (Metrics.counters ())

let render_gauges buf =
  List.iter
    (fun (name, (v, mx)) ->
      let m = metric_name name in
      Printf.bprintf buf "# TYPE %s gauge\n%s %d\n" m m v;
      Printf.bprintf buf "# TYPE %s_max gauge\n%s_max %d\n" m m mx)
    (Metrics.gauges ())

let render_histograms buf =
  let bounds = Metrics.bucket_bounds () in
  List.iter
    (fun (name, s) ->
      let m = metric_name name in
      Printf.bprintf buf "# TYPE %s histogram\n" m;
      let cum = ref 0 in
      Array.iteri
        (fun i le ->
          cum := !cum + s.Metrics.hbuckets.(i);
          Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" m (num le) !cum)
        bounds;
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" m s.Metrics.hcount;
      Printf.bprintf buf "%s_sum %s\n" m (num s.Metrics.hsum);
      Printf.bprintf buf "%s_count %d\n" m s.Metrics.hcount)
    (Metrics.histograms ())

let render () =
  let buf = Buffer.create 4096 in
  render_counters buf;
  render_gauges buf;
  render_histograms buf;
  Buffer.contents buf
