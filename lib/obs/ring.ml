module Json = Argus_core.Json

(* A flight recorder: a fixed-size ring of structured events, always
   on, overwritten oldest-first.  Recording is a mutex-guarded array
   store — events are low-rate control-plane facts (admissions, sheds,
   breaker transitions, restarts), not per-span data, so a single lock
   shared by the acceptor thread and worker domains is cheap and keeps
   the event order globally consistent.  Rings register globally (like
   counters) so [Obs.reset] can clear them and creation is idempotent
   by name. *)

type event = { ts_ms : float; kind : string; fields : (string * Json.t) list }

type t = {
  name : string;
  mu : Mutex.t;
  buf : event option array;
  mutable next : int; (* slot the next event goes into *)
  mutable recorded : int; (* total ever recorded, for wrap detection *)
}

let registry_mu = Mutex.create ()
let rings_by_name : (string, t) Hashtbl.t = Hashtbl.create 4

let make ~name ~capacity =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt rings_by_name name with
      | Some r -> r
      | None ->
          let r =
            {
              name;
              mu = Mutex.create ();
              buf = Array.make (max 1 capacity) None;
              next = 0;
              recorded = 0;
            }
          in
          Hashtbl.add rings_by_name name r;
          r)

let name t = t.name
let capacity t = Array.length t.buf

let now_ms () = Unix.gettimeofday () *. 1000.

let record ?ts_ms t ~kind fields =
  let ts_ms = match ts_ms with Some t -> t | None -> now_ms () in
  Mutex.protect t.mu (fun () ->
      t.buf.(t.next) <- Some { ts_ms; kind; fields };
      t.next <- (t.next + 1) mod Array.length t.buf;
      t.recorded <- t.recorded + 1)

(* Oldest first.  With fewer events than capacity the ring has not
   wrapped and the prefix [0, next) is the history; after a wrap the
   history starts at [next]. *)
let events t =
  Mutex.protect t.mu (fun () ->
      let n = Array.length t.buf in
      let start = if t.recorded <= n then 0 else t.next in
      let len = min t.recorded n in
      List.init len (fun i ->
          match t.buf.((start + i) mod n) with
          | Some e -> e
          | None -> assert false))

let recorded t = Mutex.protect t.mu (fun () -> t.recorded)

let clear t =
  Mutex.protect t.mu (fun () ->
      Array.fill t.buf 0 (Array.length t.buf) None;
      t.next <- 0;
      t.recorded <- 0)

let reset_all () =
  let rings =
    Mutex.protect registry_mu (fun () ->
        Hashtbl.fold (fun _ r acc -> r :: acc) rings_by_name [])
  in
  List.iter clear rings

let event_to_json e =
  Json.Obj
    (("type", Json.Str "flight")
    :: ("ts_ms", Json.Num e.ts_ms)
    :: ("kind", Json.Str e.kind)
    :: e.fields)

let to_jsonl t = List.map event_to_json (events t)

let dump oc t =
  List.iter
    (fun ev ->
      output_string oc (Json.to_string ev);
      output_char oc '\n')
    (to_jsonl t);
  flush oc
