(** Hierarchical timed spans.

    [with_ ~name f] runs [f] and, when tracing is enabled, records a
    span covering the call.  Nesting is tracked with an explicit stack,
    so spans opened inside [f] become children; the completed trees are
    available from {!roots} in call order.  When tracing is disabled the
    cost of [with_] is a single flag test — the engines keep their spans
    in place unconditionally.

    Each completed span also feeds the histogram ["span.<name>"] in
    {!Metrics}, giving per-rule / per-phase duration aggregates for
    free.

    Timing uses the highest-resolution clock the sealed toolchain
    offers ([Unix.gettimeofday], microsecond wall time); durations are
    reported in nanoseconds so a true monotonic source can be dropped
    in without changing the format.

    Spans are domain-safe: each domain records into its own stack and
    completed buffer ([Domain.DLS]), so worker domains never interleave
    with the main thread; {!roots} merges the buffers, main domain
    first, and the trace sinks emit only after workers have joined. *)

type t = {
  name : string;
  start_ns : int;  (** Relative to the first span of the process. *)
  dur_ns : int;
  domain : int;  (** The domain that recorded the span. *)
  children : t list;  (** In call order. *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_ : name:string -> (unit -> 'a) -> 'a
(** Exception-safe: the span is closed (and recorded) even if [f]
    raises. *)

val capture : name:string -> (unit -> 'a) -> 'a * t
(** Request-scoped tracing: run [f] under a span named [name] recording
    into a private buffer on the calling domain, and return the
    completed tree alongside [f]'s result — independently of
    {!enabled}, without touching {!roots}.  The span sites inside [f]
    need no changes; any {!with_} they run on this domain lands in the
    captured tree.  When no capture (and no global trace) is armed,
    {!with_} still costs only two loads, so idle services keep the
    disabled-tracing fast path. *)

val roots : unit -> t list
(** Completed top-level spans, oldest first — per recording domain, the
    main domain's spans before any worker's. *)

val reset : unit -> unit
(** Drop all recorded spans (any open spans are detached). *)
