module Json = Argus_core.Json

let pp_span_tree ppf spans =
  let rec go indent (s : Span.t) =
    Format.fprintf ppf "%s%-*s %12.1f us@." indent
      (max 1 (40 - String.length indent))
      s.Span.name
      (float_of_int s.Span.dur_ns /. 1e3);
    List.iter (go (indent ^ "  ")) s.Span.children
  in
  List.iter (go "  ") spans

let pp_report ppf () =
  Format.fprintf ppf "== argus trace ==@.";
  (match Span.roots () with
  | [] -> ()
  | spans ->
      Format.fprintf ppf "spans:@.";
      pp_span_tree ppf spans);
  (match List.filter (fun (_, v) -> v <> 0) (Metrics.counters ()) with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "counters:@.";
      List.iter
        (fun (name, v) -> Format.fprintf ppf "  %-40s %12d@." name v)
        cs);
  (match Metrics.histograms () with
  | [] -> ()
  | hs ->
      Format.fprintf ppf "histograms (us):@.";
      Format.fprintf ppf "  %-40s %8s %10s %10s %10s@." "name" "count"
        "mean" "p90" "max";
      List.iter
        (fun (name, s) ->
          Format.fprintf ppf "  %-40s %8d %10.1f %10.1f %10.1f@." name
            s.Metrics.hcount (s.Metrics.hmean /. 1e3)
            (s.Metrics.hp90 /. 1e3) (s.Metrics.hmax /. 1e3))
        hs);
  Format.fprintf ppf "== end trace ==@."

(* Nested form for the service wire: one JSON value per tree, so a
   captured request trace travels inside a single response payload. *)
let rec span_to_json (s : Span.t) =
  Json.Obj
    [
      ("name", Json.Str s.Span.name);
      ("start_ns", Json.int s.Span.start_ns);
      ("dur_ns", Json.int s.Span.dur_ns);
      ("domain", Json.int s.Span.domain);
      ("children", Json.List (List.map span_to_json s.Span.children));
    ]

let rec span_of_json j =
  match j with
  | Json.Obj _ -> (
      let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
      let num k =
        match Json.member k j with
        | Some (Json.Num n) -> Some (int_of_float n)
        | _ -> None
      in
      match str "name" with
      | None -> None
      | Some name ->
          let children =
            match Json.member "children" j with
            | Some (Json.List cs) -> List.filter_map span_of_json cs
            | _ -> []
          in
          Some
            {
              Span.name;
              start_ns = Option.value ~default:0 (num "start_ns");
              dur_ns = Option.value ~default:0 (num "dur_ns");
              domain = Option.value ~default:0 (num "domain");
              children;
            })
  | _ -> None

let jsonl_events () =
  let meta =
    Json.Obj [ ("type", Json.Str "meta"); ("schema", Json.Str "argus-trace/1") ]
  in
  let span_events =
    let rec go depth (s : Span.t) acc =
      let ev =
        Json.Obj
          [
            ("type", Json.Str "span");
            ("name", Json.Str s.Span.name);
            ("depth", Json.int depth);
            ("start_ns", Json.int s.Span.start_ns);
            ("dur_ns", Json.int s.Span.dur_ns);
            ("domain", Json.int s.Span.domain);
          ]
      in
      List.fold_left (fun acc c -> go (depth + 1) c acc) (ev :: acc)
        s.Span.children
    in
    List.rev (List.fold_left (fun acc s -> go 0 s acc) [] (Span.roots ()))
  in
  let counter_events =
    List.map
      (fun (name, v) ->
        Json.Obj
          [
            ("type", Json.Str "counter");
            ("name", Json.Str name);
            ("value", Json.int v);
          ])
      (Metrics.counters ())
  in
  let histogram_events =
    List.map
      (fun (name, s) ->
        Json.Obj
          [
            ("type", Json.Str "histogram");
            ("name", Json.Str name);
            ("count", Json.int s.Metrics.hcount);
            ("sum", Json.Num s.Metrics.hsum);
            ("min", Json.Num s.Metrics.hmin);
            ("max", Json.Num s.Metrics.hmax);
            ("mean", Json.Num s.Metrics.hmean);
            ("p50", Json.Num s.Metrics.hp50);
            ("p90", Json.Num s.Metrics.hp90);
          ])
      (Metrics.histograms ())
  in
  (meta :: span_events) @ counter_events @ histogram_events
