module Json = Argus_core.Json

(* Domain-safe registry.  A counter or histogram is a name plus a dense
   id; the actual cells live in per-domain shards reached through
   [Domain.DLS], so the hot-path increment is a plain store into the
   current domain's own arrays — no locks, no contention.  Readers merge
   every shard under the registry mutex.  Shards are registered globally
   and outlive their domain, so totals accumulated inside a worker pool
   survive the workers' join and are exact once the domains have been
   joined (a concurrent read may miss in-flight increments, which is
   fine for monitoring). *)

(* Percentiles come from a bounded reservoir: the first [reservoir_size]
   observations per shard plus running count/sum/min/max over
   everything.  Spans observe durations here, so an unbounded store
   would grow with trace length. *)
let reservoir_size = 1024

type counter = { cname : string; cid : int }
type histogram = { hname : string; hid : int }

type hcell = {
  mutable obs_count : int;
  mutable obs_sum : float;
  mutable obs_min : float;
  mutable obs_max : float;
  buf : float array;
  mutable buf_len : int;
}

type shard = {
  mutable ccells : int array; (* indexed by counter id *)
  mutable hcells : hcell option array; (* indexed by histogram id *)
}

let registry_mu = Mutex.create ()
let locked f = Mutex.protect registry_mu f
let counters_by_name : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_by_name : (string, histogram) Hashtbl.t = Hashtbl.create 32
let n_counters = ref 0
let n_histograms = ref 0

(* Newest first; readers reverse so merge order is registration order
   (the main domain's shard first), keeping single-domain behaviour
   bit-identical to the pre-shard implementation. *)
let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { ccells = [||]; hcells = [||] } in
      locked (fun () -> shards := s :: !shards);
      s)

let my_shard () = Domain.DLS.get shard_key

let grown_length have need = max need ((2 * have) + 8)

let ensure_ccells s n =
  let have = Array.length s.ccells in
  if have < n then begin
    let a = Array.make (grown_length have n) 0 in
    Array.blit s.ccells 0 a 0 have;
    s.ccells <- a
  end

let ensure_hcells s n =
  let have = Array.length s.hcells in
  if have < n then begin
    let a = Array.make (grown_length have n) None in
    Array.blit s.hcells 0 a 0 have;
    s.hcells <- a
  end

module Counter = struct
  type t = counter

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt counters_by_name name with
        | Some c -> c
        | None ->
            let c = { cname = name; cid = !n_counters } in
            Stdlib.incr n_counters;
            Hashtbl.add counters_by_name name c;
            c)

  type shard' = shard
  type shard = shard'

  let current_shard () = my_shard ()

  let shard_add s c k =
    ensure_ccells s (c.cid + 1);
    s.ccells.(c.cid) <- s.ccells.(c.cid) + k

  let add c k = shard_add (my_shard ()) c k
  let incr c = add c 1

  (* Callers hold the registry mutex. *)
  let total_unlocked cid =
    List.fold_left
      (fun acc s ->
        if cid < Array.length s.ccells then acc + s.ccells.(cid) else acc)
      0 !shards

  let value c = locked (fun () -> total_unlocked c.cid)
  let name c = c.cname
end

let fresh_hcell () =
  {
    obs_count = 0;
    obs_sum = 0.;
    obs_min = infinity;
    obs_max = neg_infinity;
    buf = Array.make reservoir_size 0.;
    buf_len = 0;
  }

module Histogram = struct
  type t = histogram

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt histograms_by_name name with
        | Some h -> h
        | None ->
            let h = { hname = name; hid = !n_histograms } in
            Stdlib.incr n_histograms;
            Hashtbl.add histograms_by_name name h;
            h)

  let cell_of s h =
    ensure_hcells s (h.hid + 1);
    match s.hcells.(h.hid) with
    | Some c -> c
    | None ->
        let c = fresh_hcell () in
        s.hcells.(h.hid) <- Some c;
        c

  let observe h v =
    let c = cell_of (my_shard ()) h in
    c.obs_count <- c.obs_count + 1;
    c.obs_sum <- c.obs_sum +. v;
    if v < c.obs_min then c.obs_min <- v;
    if v > c.obs_max then c.obs_max <- v;
    if c.buf_len < reservoir_size then begin
      c.buf.(c.buf_len) <- v;
      c.buf_len <- c.buf_len + 1
    end

  (* Callers hold the registry mutex. *)
  let cells_unlocked hid =
    List.rev !shards
    |> List.filter_map (fun s ->
           if hid < Array.length s.hcells then s.hcells.(hid) else None)

  let count h =
    locked (fun () ->
        List.fold_left (fun acc c -> acc + c.obs_count) 0 (cells_unlocked h.hid))

  let sum h =
    locked (fun () ->
        List.fold_left (fun acc c -> acc +. c.obs_sum) 0. (cells_unlocked h.hid))

  let name h = h.hname
end

(* Gauges are point-in-time values (queue depth, worker count), not
   accumulators, so sharding them per domain would be meaningless: a
   gauge is one atomic cell plus a high-watermark, set by whoever owns
   the measured quantity. *)
type gauge = { gname : string; gcell : int Atomic.t; gmax : int Atomic.t }

let gauges_by_name : (string, gauge) Hashtbl.t = Hashtbl.create 8

module Gauge = struct
  type t = gauge

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt gauges_by_name name with
        | Some g -> g
        | None ->
            let g =
              { gname = name; gcell = Atomic.make 0; gmax = Atomic.make 0 }
            in
            Hashtbl.add gauges_by_name name g;
            g)

  let set g v =
    Atomic.set g.gcell v;
    let rec bump () =
      let m = Atomic.get g.gmax in
      if v > m && not (Atomic.compare_and_set g.gmax m v) then bump ()
    in
    bump ()

  let value g = Atomic.get g.gcell
  let max_value g = Atomic.get g.gmax
  let name g = g.gname
end

type histogram_stats = {
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
  hmean : float;
  hp50 : float;
  hp90 : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = int_of_float (q *. float_of_int (n - 1)) in
    sorted.(i)

(* Merge the per-shard cells for histogram [hid]; the reservoir is the
   shards' reservoirs concatenated in registration order, truncated to
   [reservoir_size].  Caller holds the registry mutex. *)
let stats_of_unlocked hid =
  let cells = Histogram.cells_unlocked hid in
  let count = List.fold_left (fun acc c -> acc + c.obs_count) 0 cells in
  let sum = List.fold_left (fun acc c -> acc +. c.obs_sum) 0. cells in
  let mn = List.fold_left (fun acc c -> min acc c.obs_min) infinity cells in
  let mx = List.fold_left (fun acc c -> max acc c.obs_max) neg_infinity cells in
  let total_buf = min reservoir_size (List.fold_left (fun acc c -> acc + c.buf_len) 0 cells) in
  let sorted = Array.make total_buf 0. in
  let filled = ref 0 in
  List.iter
    (fun c ->
      let take = min c.buf_len (total_buf - !filled) in
      Array.blit c.buf 0 sorted !filled take;
      filled := !filled + take)
    cells;
  Array.sort Float.compare sorted;
  {
    hcount = count;
    hsum = sum;
    hmin = (if count = 0 then 0. else mn);
    hmax = (if count = 0 then 0. else mx);
    hmean = (if count = 0 then 0. else sum /. float_of_int count);
    hp50 = quantile sorted 0.5;
    hp90 = quantile sorted 0.9;
  }

let counters () =
  locked (fun () ->
      Hashtbl.fold
        (fun name c acc -> (name, Counter.total_unlocked c.cid) :: acc)
        counters_by_name [])
  |> List.sort compare

let histograms () =
  locked (fun () ->
      Hashtbl.fold
        (fun name h acc ->
          let s = stats_of_unlocked h.hid in
          if s.hcount = 0 then acc else (name, s) :: acc)
        histograms_by_name [])
  |> List.sort compare

let gauges () =
  locked (fun () ->
      Hashtbl.fold
        (fun name g acc ->
          ((name, (Gauge.value g, Gauge.max_value g)) :: acc))
        gauges_by_name [])
  |> List.sort compare

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ g ->
          Atomic.set g.gcell 0;
          Atomic.set g.gmax 0)
        gauges_by_name;
      List.iter
        (fun s ->
          Array.fill s.ccells 0 (Array.length s.ccells) 0;
          Array.iter
            (function
              | None -> ()
              | Some c ->
                  c.obs_count <- 0;
                  c.obs_sum <- 0.;
                  c.obs_min <- infinity;
                  c.obs_max <- neg_infinity;
                  c.buf_len <- 0)
            s.hcells)
        !shards)

let to_json () =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.int v)) (counters ())) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (n, (v, m)) ->
               (n, Json.Obj [ ("value", Json.int v); ("max", Json.int m) ]))
             (gauges ())) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, s) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.int s.hcount);
                     ("sum", Json.Num s.hsum);
                     ("min", Json.Num s.hmin);
                     ("max", Json.Num s.hmax);
                     ("mean", Json.Num s.hmean);
                     ("p50", Json.Num s.hp50);
                     ("p90", Json.Num s.hp90);
                   ] ))
             (histograms ())) );
    ]
