module Json = Argus_core.Json

(* Domain-safe registry.  A counter or histogram is a name plus a dense
   id; the actual cells live in per-domain shards reached through
   [Domain.DLS], so the hot-path increment is a plain store into the
   current domain's own arrays — no locks, no contention.  Readers merge
   every shard under the registry mutex.  Shards are registered globally
   and outlive their domain, so totals accumulated inside a worker pool
   survive the workers' join and are exact once the domains have been
   joined (a concurrent read may miss in-flight increments, which is
   fine for monitoring). *)

(* Percentiles come from fixed log-spaced buckets: every histogram
   shares one bounds table (factor-2 steps from 1e-3 up past 1e12, wide
   enough for span nanoseconds and service milliseconds alike), so a
   cell is a constant-size count array whatever the observation volume —
   spans observe durations here, so an unbounded store would grow with
   trace length.  Quantiles interpolate within the covering bucket and
   are clamped to the observed [min, max]; the relative error is bounded
   by the factor-2 bucket width. *)
let bucket_base = 1e-3
let n_bounds = 51

let bounds =
  Array.init n_bounds (fun i -> bucket_base *. Float.of_int (1 lsl i))

let bucket_bounds () = Array.copy bounds

(* Smallest i with v <= bounds.(i); [n_bounds] is the overflow bucket. *)
let bucket_index v =
  if Float.is_nan v || v > bounds.(n_bounds - 1) then n_bounds
  else begin
    let lo = ref 0 and hi = ref (n_bounds - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

type counter = { cname : string; cid : int }
type histogram = { hname : string; hid : int }

type hcell = {
  mutable obs_count : int;
  mutable obs_sum : float;
  mutable obs_min : float;
  mutable obs_max : float;
  buckets : int array; (* length [n_bounds + 1]; last is overflow *)
}

type shard = {
  mutable ccells : int array; (* indexed by counter id *)
  mutable hcells : hcell option array; (* indexed by histogram id *)
}

let registry_mu = Mutex.create ()
let locked f = Mutex.protect registry_mu f
let counters_by_name : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_by_name : (string, histogram) Hashtbl.t = Hashtbl.create 32
let n_counters = ref 0
let n_histograms = ref 0

(* Newest first; readers reverse so merge order is registration order
   (the main domain's shard first), keeping single-domain behaviour
   bit-identical to the pre-shard implementation. *)
let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { ccells = [||]; hcells = [||] } in
      locked (fun () -> shards := s :: !shards);
      s)

let my_shard () = Domain.DLS.get shard_key

let grown_length have need = max need ((2 * have) + 8)

let ensure_ccells s n =
  let have = Array.length s.ccells in
  if have < n then begin
    let a = Array.make (grown_length have n) 0 in
    Array.blit s.ccells 0 a 0 have;
    s.ccells <- a
  end

let ensure_hcells s n =
  let have = Array.length s.hcells in
  if have < n then begin
    let a = Array.make (grown_length have n) None in
    Array.blit s.hcells 0 a 0 have;
    s.hcells <- a
  end

module Counter = struct
  type t = counter

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt counters_by_name name with
        | Some c -> c
        | None ->
            let c = { cname = name; cid = !n_counters } in
            Stdlib.incr n_counters;
            Hashtbl.add counters_by_name name c;
            c)

  type shard' = shard
  type shard = shard'

  let current_shard () = my_shard ()

  let shard_add s c k =
    ensure_ccells s (c.cid + 1);
    s.ccells.(c.cid) <- s.ccells.(c.cid) + k

  let add c k = shard_add (my_shard ()) c k
  let incr c = add c 1

  (* Callers hold the registry mutex. *)
  let total_unlocked cid =
    List.fold_left
      (fun acc s ->
        if cid < Array.length s.ccells then acc + s.ccells.(cid) else acc)
      0 !shards

  let value c = locked (fun () -> total_unlocked c.cid)
  let name c = c.cname
end

let fresh_hcell () =
  {
    obs_count = 0;
    obs_sum = 0.;
    obs_min = infinity;
    obs_max = neg_infinity;
    buckets = Array.make (n_bounds + 1) 0;
  }

module Histogram = struct
  type t = histogram

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt histograms_by_name name with
        | Some h -> h
        | None ->
            let h = { hname = name; hid = !n_histograms } in
            Stdlib.incr n_histograms;
            Hashtbl.add histograms_by_name name h;
            h)

  let cell_of s h =
    ensure_hcells s (h.hid + 1);
    match s.hcells.(h.hid) with
    | Some c -> c
    | None ->
        let c = fresh_hcell () in
        s.hcells.(h.hid) <- Some c;
        c

  let observe h v =
    let c = cell_of (my_shard ()) h in
    c.obs_count <- c.obs_count + 1;
    c.obs_sum <- c.obs_sum +. v;
    if v < c.obs_min then c.obs_min <- v;
    if v > c.obs_max then c.obs_max <- v;
    let b = bucket_index v in
    c.buckets.(b) <- c.buckets.(b) + 1

  (* Callers hold the registry mutex. *)
  let cells_unlocked hid =
    List.rev !shards
    |> List.filter_map (fun s ->
           if hid < Array.length s.hcells then s.hcells.(hid) else None)

  let count h =
    locked (fun () ->
        List.fold_left (fun acc c -> acc + c.obs_count) 0 (cells_unlocked h.hid))

  let sum h =
    locked (fun () ->
        List.fold_left (fun acc c -> acc +. c.obs_sum) 0. (cells_unlocked h.hid))

  let name h = h.hname
end

(* Gauges are point-in-time values (queue depth, worker count), not
   accumulators, so sharding them per domain would be meaningless: a
   gauge is one atomic cell plus a high-watermark, set by whoever owns
   the measured quantity. *)
type gauge = { gname : string; gcell : int Atomic.t; gmax : int Atomic.t }

let gauges_by_name : (string, gauge) Hashtbl.t = Hashtbl.create 8

module Gauge = struct
  type t = gauge

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt gauges_by_name name with
        | Some g -> g
        | None ->
            let g =
              { gname = name; gcell = Atomic.make 0; gmax = Atomic.make 0 }
            in
            Hashtbl.add gauges_by_name name g;
            g)

  let set g v =
    Atomic.set g.gcell v;
    let rec bump () =
      let m = Atomic.get g.gmax in
      if v > m && not (Atomic.compare_and_set g.gmax m v) then bump ()
    in
    bump ()

  let add g d =
    let v = Atomic.fetch_and_add g.gcell d + d in
    let rec bump () =
      let m = Atomic.get g.gmax in
      if v > m && not (Atomic.compare_and_set g.gmax m v) then bump ()
    in
    bump ()

  let value g = Atomic.get g.gcell
  let max_value g = Atomic.get g.gmax
  let name g = g.gname
end

type histogram_stats = {
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
  hmean : float;
  hp50 : float;
  hp90 : float;
  hp99 : float;
  hbuckets : int array;
}

(* Estimate the [q]-quantile from merged bucket counts: find the bucket
   holding the target rank, interpolate linearly within it, clamp to the
   exact observed range (a single spike never reads past the true
   max). *)
let quantile_of_buckets ~count ~mn ~mx buckets q =
  if count = 0 then 0.
  else begin
    let rank =
      max 1 (min count (int_of_float (Float.ceil (q *. float_of_int count))))
    in
    let i = ref 0 and cum = ref 0 in
    while !cum + buckets.(!i) < rank && !i < n_bounds do
      cum := !cum + buckets.(!i);
      Stdlib.incr i
    done;
    let lower = if !i = 0 then 0. else bounds.(!i - 1) in
    let upper = if !i >= n_bounds then mx else bounds.(!i) in
    let in_bucket = buckets.(!i) in
    let est =
      if in_bucket = 0 then upper
      else
        lower
        +. (upper -. lower)
           *. (float_of_int (rank - !cum) /. float_of_int in_bucket)
    in
    Float.max mn (Float.min mx est)
  end

(* Merge the per-shard cells for histogram [hid] — bucket counts add
   across shards.  Caller holds the registry mutex. *)
let stats_of_unlocked hid =
  let cells = Histogram.cells_unlocked hid in
  let count = List.fold_left (fun acc c -> acc + c.obs_count) 0 cells in
  let sum = List.fold_left (fun acc c -> acc +. c.obs_sum) 0. cells in
  let mn = List.fold_left (fun acc c -> min acc c.obs_min) infinity cells in
  let mx = List.fold_left (fun acc c -> max acc c.obs_max) neg_infinity cells in
  let buckets = Array.make (n_bounds + 1) 0 in
  List.iter
    (fun c ->
      Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) c.buckets)
    cells;
  let q = quantile_of_buckets ~count ~mn ~mx buckets in
  {
    hcount = count;
    hsum = sum;
    hmin = (if count = 0 then 0. else mn);
    hmax = (if count = 0 then 0. else mx);
    hmean = (if count = 0 then 0. else sum /. float_of_int count);
    hp50 = q 0.5;
    hp90 = q 0.9;
    hp99 = q 0.99;
    hbuckets = buckets;
  }

let counters () =
  locked (fun () ->
      Hashtbl.fold
        (fun name c acc -> (name, Counter.total_unlocked c.cid) :: acc)
        counters_by_name [])
  |> List.sort compare

let histograms () =
  locked (fun () ->
      Hashtbl.fold
        (fun name h acc ->
          let s = stats_of_unlocked h.hid in
          if s.hcount = 0 then acc else (name, s) :: acc)
        histograms_by_name [])
  |> List.sort compare

let gauges () =
  locked (fun () ->
      Hashtbl.fold
        (fun name g acc ->
          ((name, (Gauge.value g, Gauge.max_value g)) :: acc))
        gauges_by_name [])
  |> List.sort compare

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ g ->
          Atomic.set g.gcell 0;
          Atomic.set g.gmax 0)
        gauges_by_name;
      List.iter
        (fun s ->
          Array.fill s.ccells 0 (Array.length s.ccells) 0;
          Array.iter
            (function
              | None -> ()
              | Some c ->
                  c.obs_count <- 0;
                  c.obs_sum <- 0.;
                  c.obs_min <- infinity;
                  c.obs_max <- neg_infinity;
                  Array.fill c.buckets 0 (Array.length c.buckets) 0)
            s.hcells)
        !shards)

let to_json () =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.int v)) (counters ())) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (n, (v, m)) ->
               (n, Json.Obj [ ("value", Json.int v); ("max", Json.int m) ]))
             (gauges ())) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, s) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.int s.hcount);
                     ("sum", Json.Num s.hsum);
                     ("min", Json.Num s.hmin);
                     ("max", Json.Num s.hmax);
                     ("mean", Json.Num s.hmean);
                     ("p50", Json.Num s.hp50);
                     ("p90", Json.Num s.hp90);
                     ("p99", Json.Num s.hp99);
                   ] ))
             (histograms ())) );
    ]
