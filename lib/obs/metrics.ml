module Json = Argus_core.Json

type counter = { cname : string; mutable n : int }

(* Percentiles come from a bounded reservoir: the first [reservoir_size]
   observations plus running count/sum/min/max over everything.  Spans
   observe durations here, so an unbounded store would grow with trace
   length. *)
let reservoir_size = 1024

type histogram = {
  hname : string;
  mutable obs_count : int;
  mutable obs_sum : float;
  mutable obs_min : float;
  mutable obs_max : float;
  buf : float array;
  mutable buf_len : int;
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 32

module Counter = struct
  type t = counter

  let make name =
    match Hashtbl.find_opt counters_tbl name with
    | Some c -> c
    | None ->
        let c = { cname = name; n = 0 } in
        Hashtbl.add counters_tbl name c;
        c

  let incr c = c.n <- c.n + 1
  let add c k = c.n <- c.n + k
  let value c = c.n
  let name c = c.cname
end

module Histogram = struct
  type t = histogram

  let make name =
    match Hashtbl.find_opt histograms_tbl name with
    | Some h -> h
    | None ->
        let h =
          {
            hname = name;
            obs_count = 0;
            obs_sum = 0.;
            obs_min = infinity;
            obs_max = neg_infinity;
            buf = Array.make reservoir_size 0.;
            buf_len = 0;
          }
        in
        Hashtbl.add histograms_tbl name h;
        h

  let observe h v =
    h.obs_count <- h.obs_count + 1;
    h.obs_sum <- h.obs_sum +. v;
    if v < h.obs_min then h.obs_min <- v;
    if v > h.obs_max then h.obs_max <- v;
    if h.buf_len < reservoir_size then begin
      h.buf.(h.buf_len) <- v;
      h.buf_len <- h.buf_len + 1
    end

  let count h = h.obs_count
  let sum h = h.obs_sum
  let name h = h.hname
end

type histogram_stats = {
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
  hmean : float;
  hp50 : float;
  hp90 : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = int_of_float (q *. float_of_int (n - 1)) in
    sorted.(i)

let stats_of h =
  let sorted = Array.sub h.buf 0 h.buf_len in
  Array.sort Float.compare sorted;
  {
    hcount = h.obs_count;
    hsum = h.obs_sum;
    hmin = (if h.obs_count = 0 then 0. else h.obs_min);
    hmax = (if h.obs_count = 0 then 0. else h.obs_max);
    hmean = (if h.obs_count = 0 then 0. else h.obs_sum /. float_of_int h.obs_count);
    hp50 = quantile sorted 0.5;
    hp90 = quantile sorted 0.9;
  }

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.n) :: acc) counters_tbl []
  |> List.sort compare

let histograms () =
  Hashtbl.fold
    (fun name h acc ->
      if h.obs_count = 0 then acc else (name, stats_of h) :: acc)
    histograms_tbl []
  |> List.sort compare

let reset () =
  Hashtbl.iter (fun _ c -> c.n <- 0) counters_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.obs_count <- 0;
      h.obs_sum <- 0.;
      h.obs_min <- infinity;
      h.obs_max <- neg_infinity;
      h.buf_len <- 0)
    histograms_tbl

let to_json () =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.int v)) (counters ())) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, s) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.int s.hcount);
                     ("sum", Json.Num s.hsum);
                     ("min", Json.Num s.hmin);
                     ("max", Json.Num s.hmax);
                     ("mean", Json.Num s.hmean);
                     ("p50", Json.Num s.hp50);
                     ("p90", Json.Num s.hp90);
                   ] ))
             (histograms ())) );
    ]
