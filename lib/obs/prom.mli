(** Prometheus text exposition (format 0.0.4) of the metrics registry.

    Dotted registry names become [argus_]-prefixed Prometheus names
    (non-alphanumeric characters map to underscores).  Counters expose
    one sample; gauges expose the value and a [_max] high-watermark
    series; histograms expose the standard cumulative
    [_bucket{le="..."}] series over {!Metrics.bucket_bounds} plus
    [_sum] and [_count]. *)

val metric_name : string -> string
(** [metric_name "svc.accepted"] is ["argus_svc_accepted"]. *)

val render : unit -> string
(** The full exposition page for the current registry contents. *)
