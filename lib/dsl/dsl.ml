module Id = Argus_core.Id
module Loc = Argus_core.Loc
module Diagnostic = Argus_core.Diagnostic
module Evidence = Argus_core.Evidence
module Prop = Argus_logic.Prop
module Gsn = Argus_gsn
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Metadata = Argus_gsn.Metadata

type case = {
  module_name : Id.t option;
  title : string;
  ontology : Metadata.ontology;
  structure : Structure.t;
}

(* --- Lexer --- *)

type token_kind =
  | Word of string  (** Identifier or keyword. *)
  | Str of string
  | TLbrace
  | TRbrace
  | TLparen
  | TRparen
  | TComma

type token = { kind : token_kind; loc : Loc.t }

exception Syntax_error of string * Loc.t

(* Hardening caps: pathological input — multi-megabyte files, or
   nesting deep enough to overflow the recursive-descent formula
   parser — must come back as a syntax diagnostic (exit 1), never a
   stack overflow or unbounded allocation.  The limits are far above
   anything a legitimate case file reaches. *)
let max_input_bytes = 8 * 1024 * 1024
let max_nesting = 256
let max_formula_nesting = 512

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let tokenise ~filename s =
  let n = String.length s in
  let line = ref 1 and bol = ref 0 in
  let pos i = Loc.pos ~file:filename ~line:!line ~col:(i - !bol) () in
  let depth = ref 0 in
  let enter i =
    incr depth;
    if !depth > max_nesting then
      raise
        (Syntax_error
           ( Printf.sprintf "nesting exceeds %d levels" max_nesting,
             Loc.point (pos i) ))
  in
  let leave () = if !depth > 0 then decr depth in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | '\n' ->
          incr line;
          bol := i + 1;
          go (i + 1) acc
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '/' when i + 1 < n && s.[i + 1] = '/' ->
          let j = ref i in
          while !j < n && s.[!j] <> '\n' do
            incr j
          done;
          go !j acc
      | '{' ->
          enter i;
          go (i + 1) ({ kind = TLbrace; loc = Loc.point (pos i) } :: acc)
      | '}' ->
          leave ();
          go (i + 1) ({ kind = TRbrace; loc = Loc.point (pos i) } :: acc)
      | '(' ->
          enter i;
          go (i + 1) ({ kind = TLparen; loc = Loc.point (pos i) } :: acc)
      | ')' ->
          leave ();
          go (i + 1) ({ kind = TRparen; loc = Loc.point (pos i) } :: acc)
      | ',' -> go (i + 1) ({ kind = TComma; loc = Loc.point (pos i) } :: acc)
      | '"' ->
          let start = pos i in
          let buf = Buffer.create 32 in
          let rec scan j =
            if j >= n then
              raise (Syntax_error ("unterminated string", Loc.point start))
            else
              match s.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  Buffer.add_char buf s.[j + 1];
                  scan (j + 2)
              | '\n' ->
                  incr line;
                  bol := j + 1;
                  Buffer.add_char buf '\n';
                  scan (j + 1)
              | c ->
                  Buffer.add_char buf c;
                  scan (j + 1)
          in
          let next = scan (i + 1) in
          let tok =
            {
              kind = Str (Buffer.contents buf);
              loc = Loc.make start (pos (next - 1));
            }
          in
          go next (tok :: acc)
      | c when is_word_char c ->
          let start = pos i in
          let j = ref i in
          while !j < n && is_word_char s.[!j] do
            incr j
          done;
          let tok =
            {
              kind = Word (String.sub s i (!j - i));
              loc = Loc.make start (pos (!j - 1));
            }
          in
          go !j (tok :: acc)
      | c ->
          raise
            (Syntax_error
               (Printf.sprintf "unexpected character %C" c, Loc.point (pos i)))
  in
  go 0 []

(* --- Parser --- *)

type state = {
  mutable toks : token list;
  mutable last_loc : Loc.t;
  mutable diags : Diagnostic.t list;  (** Semantic issues, reverse order. *)
}

let peek st = match st.toks with [] -> None | t :: _ -> Some t.kind

let advance st =
  match st.toks with
  | [] -> raise (Syntax_error ("unexpected end of input", st.last_loc))
  | t :: rest ->
      st.toks <- rest;
      st.last_loc <- t.loc;
      t

let fail st msg = raise (Syntax_error (msg, st.last_loc))

let expect_word st w =
  match advance st with
  | { kind = Word w'; _ } when w = w' -> ()
  | { loc; _ } -> raise (Syntax_error (Printf.sprintf "expected %S" w, loc))

let expect st kind what =
  match advance st with
  | t when t.kind = kind -> t
  | { loc; _ } ->
      raise (Syntax_error (Printf.sprintf "expected %s" what, loc))

let p_string st what =
  match advance st with
  | { kind = Str s; _ } -> s
  | { loc; _ } ->
      raise (Syntax_error (Printf.sprintf "expected a string (%s)" what, loc))

let p_word st what =
  match advance st with
  | { kind = Word w; _ } -> w
  | { loc; _ } ->
      raise (Syntax_error (Printf.sprintf "expected a word (%s)" what, loc))

let p_id st what =
  let t = advance st in
  match t.kind with
  | Word w -> (
      match Id.of_string_opt w with
      | Some id -> id
      | None ->
          raise
            (Syntax_error (Printf.sprintf "invalid identifier %S (%s)" w what, t.loc)))
  | _ -> raise (Syntax_error (Printf.sprintf "expected an identifier (%s)" what, t.loc))

let semantic st d = st.diags <- d :: st.diags

(* Comma- or space-separated identifier list, ending before a word that
   is a body keyword or '}'. *)
let body_keywords =
  [
    "formal"; "meta"; "evidence"; "supported-by"; "in-context-of";
    "undeveloped"; "uninstantiated"; "undeveloped-uninstantiated";
  ]

let p_id_list st =
  let rec loop acc =
    match peek st with
    | Some (Word w) when not (List.mem w body_keywords) ->
        let id = p_id st "link target" in
        (match peek st with
        | Some TComma -> ignore (advance st)
        | _ -> ());
        loop (id :: acc)
    | _ -> List.rev acc
  in
  match loop [] with [] -> fail st "expected at least one identifier" | ids -> ids

let evidence_kinds = Evidence.all_kinds

let p_evidence st =
  let loc = st.last_loc in
  let id = p_id st "evidence id" in
  let kind_word = p_word st "evidence kind" in
  let kind =
    match Evidence.kind_of_string kind_word with
    | Some k -> k
    | None ->
        semantic st
          (Diagnostic.errorf ~code:"dsl/bad-evidence-kind" ~loc
             "unknown evidence kind %S (expected one of %s)" kind_word
             (String.concat ", " (List.map Evidence.kind_to_string evidence_kinds)));
        Evidence.Analysis
  in
  let description = p_string st "evidence description" in
  let source = ref None and strength = ref None in
  let rec opts () =
    match peek st with
    | Some (Word "source") ->
        ignore (advance st);
        source := Some (p_string st "evidence source");
        opts ()
    | Some (Word "strength") ->
        ignore (advance st);
        let w = p_word st "evidence strength" in
        (match Evidence.strength_of_string w with
        | Some s -> strength := Some s
        | None ->
            semantic st
              (Diagnostic.errorf ~code:"dsl/bad-strength" ~loc
                 "unknown evidence strength %S" w));
        opts ()
    | _ -> ()
  in
  opts ();
  Evidence.make ~id ~kind ?source:!source ?strength:!strength description

type node_props = {
  mutable status : Node.status;
  mutable formal : Prop.t option;
  mutable annotations : Metadata.annotation list;
  mutable evidence_ref : Id.t option;
  mutable supported : Id.t list;
  mutable contexts : Id.t list;
}

let p_node_body st =
  let props =
    {
      status = Node.Developed;
      formal = None;
      annotations = [];
      evidence_ref = None;
      supported = [];
      contexts = [];
    }
  in
  (match peek st with
  | Some TLbrace ->
      ignore (advance st);
      let rec loop () =
        match peek st with
        | Some TRbrace -> ignore (advance st)
        | Some (Word "undeveloped") ->
            ignore (advance st);
            props.status <- Node.Undeveloped;
            loop ()
        | Some (Word "uninstantiated") ->
            ignore (advance st);
            props.status <- Node.Uninstantiated;
            loop ()
        | Some (Word "undeveloped-uninstantiated") ->
            ignore (advance st);
            props.status <- Node.Undeveloped_uninstantiated;
            loop ()
        | Some (Word "formal") ->
            ignore (advance st);
            let loc = st.last_loc in
            let text = p_string st "formula" in
            (* [Prop.of_string] is recursive-descent: bound the paren
               depth before handing it a formula, or a hostile one
               overflows the stack instead of producing a
               diagnostic. *)
            let fdepth =
              let d = ref 0 and m = ref 0 in
              String.iter
                (fun c ->
                  if c = '(' then begin
                    incr d;
                    if !d > !m then m := !d
                  end
                  else if c = ')' then decr d)
                text;
              !m
            in
            if fdepth > max_formula_nesting then begin
              semantic st
                (Diagnostic.errorf ~code:"dsl/bad-formula" ~loc
                   "formula nesting exceeds %d levels" max_formula_nesting);
              loop ()
            end
            else begin
            (match Prop.of_string text with
            | Ok f -> props.formal <- Some f
            | Error e ->
                semantic st
                  (Diagnostic.errorf ~code:"dsl/bad-formula" ~loc
                     "cannot parse formula %S: %s" text e));
            loop ()
            end
        | Some (Word "meta") ->
            ignore (advance st);
            let loc = st.last_loc in
            let text = p_string st "annotation" in
            (match Metadata.annotation_of_string text with
            | Ok a -> props.annotations <- props.annotations @ [ a ]
            | Error e ->
                semantic st
                  (Diagnostic.errorf ~code:"dsl/bad-annotation" ~loc
                     "cannot parse annotation %S: %s" text e));
            loop ()
        | Some (Word "evidence") ->
            ignore (advance st);
            props.evidence_ref <- Some (p_id st "evidence reference");
            loop ()
        | Some (Word "supported-by") ->
            ignore (advance st);
            props.supported <- props.supported @ p_id_list st;
            loop ()
        | Some (Word "in-context-of") ->
            ignore (advance st);
            props.contexts <- props.contexts @ p_id_list st;
            loop ()
        | Some _ ->
            let t = advance st in
            raise (Syntax_error ("unexpected token in node body", t.loc))
        | None -> fail st "unterminated node body"
      in
      loop ()
  | _ -> ());
  props

let node_type_words =
  [
    "goal"; "strategy"; "solution"; "context"; "assumption"; "justification";
    "away-goal"; "module"; "contract";
  ]

let p_node st word =
  let node_type =
    match word with
    | "goal" -> Node.Goal
    | "strategy" -> Node.Strategy
    | "solution" -> Node.Solution
    | "context" -> Node.Context
    | "assumption" -> Node.Assumption
    | "justification" -> Node.Justification
    | "away-goal" | "module" | "contract" ->
        ignore (expect st TLparen "'('");
        let m = p_id st "module name" in
        ignore (expect st TRparen "')'");
        (match word with
        | "away-goal" -> Node.Away_goal m
        | "module" -> Node.Module_ref m
        | _ -> Node.Contract m)
    | _ -> fail st "expected a node type"
  in
  let id = p_id st "node id" in
  let text = p_string st "node text" in
  let props = p_node_body st in
  let node =
    Node.make ~id ~node_type ~status:props.status ?formal:props.formal
      ~annotations:props.annotations ?evidence:props.evidence_ref text
  in
  (node, props.supported, props.contexts)

let p_enum st =
  let name = p_word st "enumeration name" in
  ignore (expect st TLbrace "'{'");
  let rec members acc =
    match advance st with
    | { kind = TRbrace; _ } -> List.rev acc
    | { kind = Word w; _ } -> members (w :: acc)
    | { loc; _ } -> raise (Syntax_error ("expected an enum member or '}'", loc))
  in
  (name, members [])

let p_attr st enums =
  let name = p_word st "attribute name" in
  ignore (expect st TLparen "'('");
  let param_of_word loc w =
    match w with
    | "int" -> Metadata.Pint
    | "nat" -> Metadata.Pnat
    | "string" -> Metadata.Pstr
    | other ->
        if List.mem_assoc other enums then Metadata.Penum other
        else
          raise
            (Syntax_error
               (Printf.sprintf "unknown parameter type %S" other, loc))
  in
  let rec params acc =
    let t = advance st in
    match t.kind with
    | TRparen -> List.rev acc
    | Word w -> (
        let p = param_of_word t.loc w in
        match advance st with
        | { kind = TComma; _ } -> params (p :: acc)
        | { kind = TRparen; _ } -> List.rev (p :: acc)
        | { loc; _ } -> raise (Syntax_error ("expected ',' or ')'", loc)))
    | _ -> raise (Syntax_error ("expected a parameter type or ')'", t.loc))
  in
  Metadata.attr name (params [])

let p_case st =
  expect_word st "case";
  let module_name =
    match peek st with
    | Some (Word _) -> Some (p_id st "module name")
    | _ -> None
  in
  let title = p_string st "case title" in
  ignore (expect st TLbrace "'{'");
  let structure = ref Structure.empty in
  let enums = ref [] in
  let attrs = ref [] in
  let pending_links = ref [] in
  let seen_ids = Hashtbl.create 16 in
  let rec items () =
    match advance st with
    | { kind = TRbrace; _ } -> ()
    | { kind = Word "enum"; loc } ->
        let name, members = p_enum st in
        if List.mem_assoc name !enums then
          semantic st
            (Diagnostic.errorf ~code:"dsl/duplicate-enum" ~loc
               "enumeration %s declared twice" name)
        else enums := !enums @ [ (name, members) ];
        items ()
    | { kind = Word "attr"; _ } ->
        attrs := !attrs @ [ p_attr st !enums ];
        items ()
    | { kind = Word "evidence"; _ } ->
        structure := Structure.add_evidence (p_evidence st) !structure;
        items ()
    | { kind = Word w; loc } when List.mem w node_type_words ->
        let node, supported, contexts = p_node st w in
        if Hashtbl.mem seen_ids node.Node.id then
          semantic st
            (Diagnostic.errorf ~code:"dsl/duplicate-id" ~loc
               ~subjects:[ node.Node.id ] "node %s declared twice"
               (Id.to_string node.Node.id))
        else begin
          Hashtbl.add seen_ids node.Node.id ();
          structure := Structure.add_node node !structure;
          pending_links :=
            !pending_links
            @ List.map
                (fun d -> (Structure.Supported_by, node.Node.id, d))
                supported
            @ List.map
                (fun d -> (Structure.In_context_of, node.Node.id, d))
                contexts
        end;
        items ()
    | { loc; _ } ->
        raise
          (Syntax_error
             ( "expected a declaration (enum, attr, evidence or a node \
                type) or '}'",
               loc ))
  in
  items ();
  let structure =
    List.fold_left
      (fun s (kind, src, dst) -> Structure.connect kind ~src ~dst s)
      !structure !pending_links
  in
  {
    module_name;
    title;
    ontology = Metadata.ontology ~enums:!enums !attrs;
    structure;
  }

(* Shared parse driver: tokenise, run [body], collect diagnostics. *)
let run_parser ~filename text body =
  if String.length text > max_input_bytes then
    Error
      [
        Diagnostic.errorf ~code:"dsl/syntax"
          ~loc:(Loc.point (Loc.pos ~file:filename ~line:1 ~col:0 ()))
          "input is %d bytes; the limit is %d" (String.length text)
          max_input_bytes;
      ]
  else
  match tokenise ~filename text with
  | exception Syntax_error (msg, loc) ->
      Error [ Diagnostic.error ~code:"dsl/syntax" ~loc msg ]
  | tokens -> (
      let st = { toks = tokens; last_loc = Loc.dummy; diags = [] } in
      match body st with
      | result ->
          if Diagnostic.has_errors st.diags then
            Error (Diagnostic.sort (List.rev st.diags))
          else Ok result
      | exception Syntax_error (msg, loc) ->
          Error
            (Diagnostic.sort
               (Diagnostic.error ~code:"dsl/syntax" ~loc msg
               :: List.rev st.diags)))

let parse ?(filename = "<input>") text =
  run_parser ~filename text (fun st ->
      let case = p_case st in
      (match st.toks with
      | [] -> ()
      | t :: _ -> raise (Syntax_error ("trailing input after case", t.loc)));
      case)

let parse_collection ?(filename = "<input>") text =
  run_parser ~filename text (fun st ->
      let rec loop acc =
        match st.toks with
        | [] ->
            if acc = [] then
              raise (Syntax_error ("expected at least one case", st.last_loc))
            else List.rev acc
        | _ -> loop (p_case st :: acc)
      in
      loop [])

let to_modular cases =
  let errs = ref [] in
  let seen = Hashtbl.create 8 in
  let named =
    match cases with
    | [ ({ module_name = None; _ } as only) ] ->
        [ (Id.of_string "Main", only) ]
    | _ ->
        List.filter_map
          (fun case ->
            match case.module_name with
            | Some name -> Some (name, case)
            | None ->
                errs :=
                  Diagnostic.errorf ~code:"dsl/unnamed-module"
                    "case %S needs a module name in a multi-module file"
                    case.title
                  :: !errs;
                None)
          cases
  in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        errs :=
          Diagnostic.errorf ~code:"dsl/duplicate-module"
            "module %s declared twice" (Id.to_string name)
          :: !errs
      else Hashtbl.add seen name ())
    named;
  if !errs <> [] then Error (Diagnostic.sort (List.rev !errs))
  else
    Ok
      (List.fold_left
         (fun acc (name, case) ->
           Argus_gsn.Modular.add_module ~name case.structure acc)
         Argus_gsn.Modular.empty named)

let parse_exn ?filename text =
  match parse ?filename text with
  | Ok c -> c
  | Error ds ->
      failwith (Format.asprintf "%a" Diagnostic.pp_report ds)

(* --- Printer --- *)

let quote text =
  let buf = Buffer.create (String.length text + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    text;
  Buffer.add_char buf '"';
  Buffer.contents buf

let param_type_word enums = function
  | Metadata.Pint -> "int"
  | Metadata.Pnat -> "nat"
  | Metadata.Pstr -> "string"
  | Metadata.Penum e ->
      ignore enums;
      e

let print case =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match case.module_name with
  | Some m -> out "case %s %s {\n" (Id.to_string m) (quote case.title)
  | None -> out "case %s {\n" (quote case.title));
  List.iter
    (fun (name, members) ->
      out "  enum %s { %s }\n" name (String.concat " " members))
    case.ontology.Metadata.enums;
  List.iter
    (fun (decl : Metadata.attribute_decl) ->
      out "  attr %s (%s)\n" decl.Metadata.name
        (String.concat ", "
           (List.map (param_type_word case.ontology.Metadata.enums)
              decl.Metadata.params)))
    case.ontology.Metadata.attributes;
  List.iter
    (fun ev ->
      out "  evidence %s %s %s source %s strength %s\n"
        (Id.to_string ev.Evidence.id)
        (Evidence.kind_to_string ev.Evidence.kind)
        (quote ev.Evidence.description)
        (quote ev.Evidence.source)
        (Evidence.strength_to_string ev.Evidence.strength))
    (Structure.evidence case.structure);
  let links = Structure.links case.structure in
  List.iter
    (fun n ->
      let type_word =
        match n.Node.node_type with
        | Node.Goal -> "goal"
        | Node.Strategy -> "strategy"
        | Node.Solution -> "solution"
        | Node.Context -> "context"
        | Node.Assumption -> "assumption"
        | Node.Justification -> "justification"
        | Node.Away_goal m -> Printf.sprintf "away-goal(%s)" (Id.to_string m)
        | Node.Module_ref m -> Printf.sprintf "module(%s)" (Id.to_string m)
        | Node.Contract m -> Printf.sprintf "contract(%s)" (Id.to_string m)
      in
      out "  %s %s %s" type_word (Id.to_string n.Node.id) (quote n.Node.text);
      let body_lines = ref [] in
      let addl fmt = Printf.ksprintf (fun s -> body_lines := s :: !body_lines) fmt in
      (match n.Node.status with
      | Node.Developed -> ()
      | Node.Undeveloped -> addl "undeveloped"
      | Node.Uninstantiated -> addl "uninstantiated"
      | Node.Undeveloped_uninstantiated -> addl "undeveloped-uninstantiated");
      (match n.Node.formal with
      | Some f -> addl "formal %s" (quote (Prop.to_string f))
      | None -> ());
      List.iter
        (fun a ->
          addl "meta %s"
            (quote (Format.asprintf "%a" Metadata.pp_annotation a)))
        n.Node.annotations;
      (match n.Node.evidence with
      | Some e -> addl "evidence %s" (Id.to_string e)
      | None -> ());
      let targets kind =
        List.filter_map
          (fun (k, s, d) ->
            if k = kind && Id.equal s n.Node.id then Some (Id.to_string d)
            else None)
          links
      in
      (match targets Structure.Supported_by with
      | [] -> ()
      | ts -> addl "supported-by %s" (String.concat ", " ts));
      (match targets Structure.In_context_of with
      | [] -> ()
      | ts -> addl "in-context-of %s" (String.concat ", " ts));
      (match List.rev !body_lines with
      | [] -> out "\n"
      | lines ->
          out " {\n";
          List.iter (fun l -> out "    %s\n" l) lines;
          out "  }\n"))
    (Structure.nodes case.structure);
  out "}\n";
  Buffer.contents buf

let validate_metadata case =
  Structure.fold_nodes
    (fun n acc ->
      Metadata.validate case.ontology n.Node.annotations @ acc)
    case.structure []
  |> Diagnostic.sort
