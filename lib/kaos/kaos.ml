module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Prng = Argus_core.Prng
module Evidence = Argus_core.Evidence
module Ltl = Argus_ltl.Ltl
module Structure = Argus_gsn.Structure
module Gnode = Argus_gsn.Node

type kind = Goal | Requirement of string | Expectation of string

type node = {
  id : Id.t;
  kind : kind;
  description : string;
  formal : Ltl.t option;
}

type t = {
  node_map : node Id.Map.t;
  order : Id.t list;
  child_map : Id.t list Id.Map.t;  (** Parent to children, in order. *)
  parent_map : Id.t Id.Map.t;
}

let empty =
  {
    node_map = Id.Map.empty;
    order = [];
    child_map = Id.Map.empty;
    parent_map = Id.Map.empty;
  }

let add ?parent n t =
  let t =
    {
      t with
      node_map = Id.Map.add n.id n t.node_map;
      order =
        (if List.exists (Id.equal n.id) t.order then t.order
         else t.order @ [ n.id ]);
    }
  in
  match parent with
  | None -> t
  | Some p ->
      let pid = Id.of_string p in
      if not (Id.Map.mem pid t.node_map) then
        invalid_arg (Printf.sprintf "Kaos.add: unknown parent %s" p);
      let siblings = Option.value ~default:[] (Id.Map.find_opt pid t.child_map) in
      {
        t with
        child_map = Id.Map.add pid (siblings @ [ n.id ]) t.child_map;
        parent_map = Id.Map.add n.id pid t.parent_map;
      }

let goal ?formal id description =
  { id = Id.of_string id; kind = Goal; description; formal }

let requirement ?formal ~agent id description =
  { id = Id.of_string id; kind = Requirement agent; description; formal }

let expectation ?formal ~agent id description =
  { id = Id.of_string id; kind = Expectation agent; description; formal }

let find id t = Id.Map.find_opt id t.node_map

let children id t =
  Option.value ~default:[] (Id.Map.find_opt id t.child_map)
  |> List.filter_map (fun c -> find c t)

let roots t =
  List.filter_map
    (fun id ->
      if Id.Map.mem id t.parent_map then None else find id t)
    t.order

let size t = Id.Map.cardinal t.node_map

let check t =
  let out = ref [] in
  let add d = out := d :: !out in
  List.iter
    (fun id ->
      match find id t with
      | None -> ()
      | Some n -> (
          let kids = children id t in
          match n.kind with
          | Goal ->
              if kids = [] then
                add
                  (Diagnostic.errorf ~code:"kaos/unrefined-goal"
                     ~subjects:[ id ]
                     "goal is neither refined nor operationalised");
              if
                n.formal <> None
                && kids <> []
                && List.exists
                     (fun c -> c.kind = Goal && c.formal = None)
                     kids
              then
                add
                  (Diagnostic.warningf ~code:"kaos/informal-under-formal"
                     ~subjects:[ id ]
                     "formal goal refined by informal subgoals; the \
                      refinement cannot be verified")
          | Requirement _ | Expectation _ ->
              if kids <> [] then
                add
                  (Diagnostic.errorf ~code:"kaos/refined-requirement"
                     ~subjects:[ id ]
                     "requirements and expectations are leaves")))
    t.order;
  Diagnostic.sort (List.rev !out)

type verdict =
  | Verified_bounded of int
  | Refuted of Ltl.Trace.t
  | Not_applicable

let random_state rng atoms =
  List.filter (fun _ -> Prng.bernoulli rng 0.5) atoms

let random_trace rng atoms =
  let prefix_len = Prng.int rng 5 in
  let loop_len = 1 + Prng.int rng 3 in
  Ltl.Trace.make
    ~prefix:(List.init prefix_len (fun _ -> random_state rng atoms))
    ~loop:(List.init loop_len (fun _ -> random_state rng atoms))

let verify_refinement ?(traces = 500) ?(seed = 7) t id =
  match find id t with
  | None -> Not_applicable
  | Some parent -> (
      match parent.formal with
      | None -> Not_applicable
      | Some parent_formula ->
          let child_formulas =
            List.filter_map (fun c -> c.formal) (children id t)
          in
          if child_formulas = [] then Not_applicable
          else begin
            let atoms =
              List.sort_uniq String.compare
                (List.concat_map Ltl.atoms (parent_formula :: child_formulas))
            in
            let rng = Prng.create (seed + Hashtbl.hash (Id.to_string id)) in
            (* Per-conjunct checks, cheapest first to fail: most random
               traces violate some child formula, so the short-circuit
               skips the remaining labellings entirely.  (A single
               combined conjunction would share memoised atom
               labellings, but benches 4x slower: goal formulas are
               small enough that re-labelling beats hashing, and the
               conjunction forfeits the short-circuit.) *)
            let refutes trace =
              List.for_all (fun f -> Ltl.holds trace f) child_formulas
              && not (Ltl.holds trace parent_formula)
            in
            let rec search k =
              if k >= traces then Verified_bounded traces
              else
                let trace = random_trace rng atoms in
                if refutes trace then Refuted trace else search (k + 1)
            in
            search 0
          end)

let verify_all ?traces ?seed t =
  List.filter_map
    (fun id ->
      if Id.Map.find_opt id t.child_map = None then None
      else Some (id, verify_refinement ?traces ?seed t id))
    t.order

let to_gsn t =
  let s = ref Structure.empty in
  let add_gsn n = s := Structure.add_node n !s in
  let connect src dst =
    s := Structure.connect Structure.Supported_by ~src ~dst !s
  in
  List.iter
    (fun id ->
      match find id t with
      | None -> ()
      | Some n -> (
          let text =
            match n.formal with
            | Some f ->
                Printf.sprintf "%s (formally: %s)" n.description
                  (Ltl.to_string f)
            | None -> n.description
          in
          match n.kind with
          | Goal -> add_gsn (Gnode.make ~id ~node_type:Gnode.Goal text)
          | Requirement agent | Expectation agent ->
              let ev_id = Id.of_string ("E_" ^ Id.to_string id) in
              let sol_id = Id.of_string ("Sn_" ^ Id.to_string id) in
              add_gsn (Gnode.make ~id ~node_type:Gnode.Goal text);
              s :=
                Structure.add_evidence
                  (Evidence.make ~id:ev_id ~kind:Evidence.Expert_judgement
                     ~source:"KAOS responsibility assignment"
                     ~strength:Evidence.Existential
                     (Printf.sprintf "Responsibility assigned to %s" agent))
                  !s;
              add_gsn
                (Gnode.make ~id:sol_id ~node_type:Gnode.Solution
                   ~evidence:ev_id
                   (Printf.sprintf "Satisfied by agent %s" agent));
              connect id sol_id))
    t.order;
  (* Refinements become strategies. *)
  List.iter
    (fun id ->
      let kids = Option.value ~default:[] (Id.Map.find_opt id t.child_map) in
      if kids <> [] then begin
        let strat_id = Id.of_string ("S_" ^ Id.to_string id) in
        add_gsn
          (Gnode.make ~id:strat_id ~node_type:Gnode.Strategy
             "AND-refinement of the goal");
        connect id strat_id;
        List.iter (fun kid -> connect strat_id kid) kids
      end)
    t.order;
  !s

let pp ppf t =
  let rec go indent n =
    let tag =
      match n.kind with
      | Goal -> "goal"
      | Requirement a -> Printf.sprintf "requirement(%s)" a
      | Expectation a -> Printf.sprintf "expectation(%s)" a
    in
    Format.fprintf ppf "%s[%s] %a: %s" indent tag Id.pp n.id n.description;
    (match n.formal with
    | Some f -> Format.fprintf ppf "  {%s}" (Ltl.to_string f)
    | None -> ());
    Format.fprintf ppf "@.";
    List.iter (go (indent ^ "  ")) (children n.id t)
  in
  List.iter (go "") (roots t)
