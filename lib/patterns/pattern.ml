module Id = Argus_core.Id
module Diagnostic = Argus_core.Diagnostic
module Gsn = Argus_gsn
module Structure = Argus_gsn.Structure
module Node = Argus_gsn.Node
module Budget = Argus_rt.Budget
module Fault = Argus_rt.Fault

type param_type =
  | Pint of { min : int option; max : int option }
  | Pstring
  | Penum of string list
  | Plist of param_type

type param_decl = { pname : string; ptype : param_type }

type value =
  | Vint of int
  | Vstr of string
  | Venum of string
  | Vlist of value list

type binding = (string * value) list

type t = {
  name : string;
  description : string;
  params : param_decl list;
  structure : Structure.t;
  replicate : (Id.t * string) list;
}

let make ~name ?(description = "") ~params ?(replicate = []) structure =
  {
    name;
    description;
    params;
    structure;
    replicate = List.map (fun (n, p) -> (Id.of_string n, p)) replicate;
  }

(* Instantiation counters (catalogue in DESIGN.md). *)
let c_instantiations = Argus_obs.Counter.make "pattern.instantiations"
let c_nodes_emitted = Argus_obs.Counter.make "pattern.nodes_emitted"
let c_substitutions = Argus_obs.Counter.make "pattern.substitutions"

let placeholders text =
  let n = String.length text in
  let rec go i acc =
    if i >= n then List.rev acc
    else if text.[i] = '{' then
      match String.index_from_opt text i '}' with
      | None -> List.rev acc
      | Some j ->
          let name = String.sub text (i + 1) (j - i - 1) in
          go (j + 1) (name :: acc)
    else go (i + 1) acc
  in
  go 0 []

let rec value_type_ok ty v =
  match (ty, v) with
  | Pint { min; max }, Vint i ->
      (match min with None -> true | Some lo -> i >= lo)
      && (match max with None -> true | Some hi -> i <= hi)
  | Pstring, Vstr _ -> true
  | Penum members, Venum m -> List.mem m members
  | Plist elem_ty, Vlist vs -> List.for_all (value_type_ok elem_ty) vs
  | _, _ -> false

let rec value_to_text = function
  | Vint i -> string_of_int i
  | Vstr s -> s
  | Venum e -> e
  | Vlist vs -> String.concat ", " (List.map value_to_text vs)

let find_param t name = List.find_opt (fun d -> d.pname = name) t.params

let all_placeholders t =
  Structure.fold_nodes
    (fun n acc -> placeholders n.Node.text @ acc)
    t.structure []

let check_pattern t =
  Argus_obs.Span.with_ ~name:"pattern.check" @@ fun () ->
  let out = ref [] in
  let add d = out := d :: !out in
  let used = all_placeholders t in
  List.iter
    (fun ph ->
      if find_param t ph = None then
        add
          (Diagnostic.errorf ~code:"pattern/undeclared-placeholder"
             "placeholder {%s} has no parameter declaration" ph))
    (List.sort_uniq String.compare used);
  List.iter
    (fun d ->
      let driving = List.exists (fun (_, p) -> p = d.pname) t.replicate in
      if (not (List.mem d.pname used)) && not driving then
        add
          (Diagnostic.warningf ~code:"pattern/unused-param"
             "parameter %s is never used" d.pname))
    t.params;
  List.iter
    (fun (node_id, pname) ->
      (match find_param t pname with
      | Some { ptype = Plist _; _ } -> ()
      | Some _ ->
          add
            (Diagnostic.errorf ~code:"pattern/replicate-not-list"
               "replication of %s is driven by non-list parameter %s"
               (Id.to_string node_id) pname)
      | None ->
          add
            (Diagnostic.errorf ~code:"pattern/replicate-not-list"
               "replication of %s references undeclared parameter %s"
               (Id.to_string node_id) pname));
      if not (Structure.mem node_id t.structure) then
        add
          (Diagnostic.errorf ~code:"pattern/replicate-unknown-node"
             "replicated node %s is not in the pattern" (Id.to_string node_id)))
    t.replicate;
  (* Nested replication is unsupported: a replicated node must not be in
     the supported subtree of another. *)
  List.iter
    (fun (a, _) ->
      List.iter
        (fun (b, _) ->
          if not (Id.equal a b) then
            let sub = Structure.supported_subtree a t.structure in
            if List.exists (Id.equal b) sub then
              add
                (Diagnostic.errorf ~code:"pattern/nested-replication"
                   "replicated node %s lies inside replicated subtree of %s"
                   (Id.to_string b) (Id.to_string a)))
        t.replicate)
    t.replicate;
  Diagnostic.sort (List.rev !out)

(* Substitute scalar placeholders in one text under a lookup. *)
let subst_text lookup text =
  Argus_obs.Counter.incr c_substitutions;
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let rec go i =
    if i >= n then ()
    else if text.[i] = '{' then
      match String.index_from_opt text i '}' with
      | None ->
          Buffer.add_substring buf text i (n - i)
      | Some j ->
          let name = String.sub text (i + 1) (j - i - 1) in
          (match lookup name with
          | Some v -> Buffer.add_string buf (value_to_text v)
          | None -> Buffer.add_substring buf text i (j - i + 1));
          go (j + 1)
    else begin
      Buffer.add_char buf text.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let validate_binding t binding =
  let errs = ref [] in
  let add d = errs := d :: !errs in
  List.iter
    (fun d ->
      match List.assoc_opt d.pname binding with
      | None ->
          add
            (Diagnostic.errorf ~code:"instantiate/missing-param"
               "no value supplied for parameter %s" d.pname)
      | Some v ->
          if not (value_type_ok d.ptype v) then
            let code, detail =
              match (d.ptype, v) with
              | Pint { min; max }, Vint i ->
                  ( "instantiate/out-of-range",
                    Printf.sprintf "%d is outside [%s, %s]" i
                      (match min with Some lo -> string_of_int lo | None -> "-inf")
                      (match max with Some hi -> string_of_int hi | None -> "+inf")
                  )
              | Penum members, Venum m ->
                  ( "instantiate/not-a-member",
                    Printf.sprintf "%s is not one of {%s}" m
                      (String.concat ", " members) )
              | _ ->
                  ( "instantiate/type-mismatch",
                    Printf.sprintf "value for %s has the wrong type" d.pname )
            in
            add (Diagnostic.errorf ~code "%s: %s" d.pname detail))
    t.params;
  List.iter
    (fun (name, _) ->
      if find_param t name = None then
        add
          (Diagnostic.errorf ~code:"instantiate/unknown-param"
             "binding supplies unknown parameter %s" name))
    binding;
  List.rev !errs

let suffix_id suffix id = Id.of_string (Id.to_string id ^ "_" ^ suffix)

(* Raised when the budget runs out mid-expansion; caught at the
   [instantiate] top level, which reports the truncation through its
   [Error] channel (a half-expanded structure must never look like a
   successful instantiation). *)
exception Stopped

let instantiate ?(budget = Budget.unlimited) t binding =
  Argus_obs.Span.with_ ~name:"pattern.instantiate" @@ fun () ->
  Fault.point "pattern.instantiate";
  Argus_obs.Counter.incr c_instantiations;
  let errors = validate_binding t binding in
  let errors =
    errors
    @ List.filter_map
        (fun (node_id, pname) ->
          match List.assoc_opt pname binding with
          | Some (Vlist []) ->
              Some
                (Diagnostic.errorf ~code:"instantiate/empty-list"
                   "replication parameter %s is an empty list" pname)
          | Some _ | None -> ignore node_id; None)
        t.replicate
  in
  if errors <> [] then Error errors
  else begin
    try
    (* Phase 1: expand replications. *)
    let structure = ref t.structure in
    List.iter
      (fun (rep_id, pname) ->
        match List.assoc_opt pname binding with
        | Some (Vlist elements) ->
            let subtree_ids = Structure.supported_subtree rep_id !structure in
            let subtree_set = Id.Set.of_list subtree_ids in
            let ctx_ids =
              List.concat_map
                (fun id -> Structure.context_of id !structure)
                subtree_ids
            in
            let all_ids = Id.Set.union subtree_set (Id.Set.of_list ctx_ids) in
            let member id = Id.Set.mem id all_ids in
            let subtree_nodes =
              List.filter (fun n -> member n.Node.id) (Structure.nodes !structure)
            in
            let subtree_links =
              List.filter
                (fun (_, s, d) -> member s && member d)
                (Structure.links !structure)
            in
            let entry_parents =
              Structure.parents Structure.Supported_by rep_id !structure
            in
            (* Remove the template subtree. *)
            structure :=
              Id.Set.fold (fun id s -> Structure.remove_node id s) all_ids
                !structure;
            (* Add one copy per element. *)
            List.iteri
              (fun k element ->
                let suffix = string_of_int (k + 1) in
                let lookup name =
                  if name = pname then Some element else None
                in
                List.iter
                  (fun n ->
                    if not (Budget.tick budget ~engine:"pattern") then
                      raise Stopped;
                    Argus_obs.Counter.incr c_nodes_emitted;
                    let copy =
                      {
                        n with
                        Node.id = suffix_id suffix n.Node.id;
                        Node.text = subst_text lookup n.Node.text;
                      }
                    in
                    structure := Structure.add_node copy !structure)
                  subtree_nodes;
                List.iter
                  (fun (kind, s, d) ->
                    structure :=
                      Structure.connect kind ~src:(suffix_id suffix s)
                        ~dst:(suffix_id suffix d) !structure)
                  subtree_links;
                List.iter
                  (fun parent ->
                    structure :=
                      Structure.connect Structure.Supported_by ~src:parent
                        ~dst:(suffix_id suffix rep_id) !structure)
                  entry_parents)
              elements
        | Some _ | None -> ())
      t.replicate;
    (* Phase 2: substitute scalar parameters everywhere and clear
       instantiation marks. *)
    let scalar_lookup name =
      match List.assoc_opt name binding with
      | Some (Vlist _) -> None
      | Some v -> Some v
      | None -> None
    in
    let result =
      Structure.map_nodes
        (fun n ->
          if not (Budget.tick budget ~engine:"pattern") then raise Stopped;
          let text = subst_text scalar_lookup n.Node.text in
          let status =
            match n.Node.status with
            | Node.Uninstantiated -> Node.Developed
            | Node.Undeveloped_uninstantiated -> Node.Undeveloped
            | s -> s
          in
          { n with Node.text; Node.status })
        !structure
    in
    (* Phase 3: no placeholder survives. *)
    let leftovers =
      Structure.fold_nodes
        (fun n acc ->
          match placeholders n.Node.text with
          | [] -> acc
          | phs ->
              List.map
                (fun ph ->
                  Diagnostic.errorf ~code:"instantiate/unresolved-placeholder"
                    ~subjects:[ n.Node.id ]
                    "placeholder {%s} was not resolved" ph)
                phs
              @ acc)
        result []
    in
    if leftovers <> [] then Error leftovers else Ok result
    with Stopped -> Error (Budget.diagnostics budget)
  end
