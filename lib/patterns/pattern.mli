(** Parameterised GSN patterns with typed instantiation
    (Matsuno & Taguchi; Denney & Pai).

    A pattern is a GSN structure whose node texts contain [{param}]
    placeholders, plus typed parameter declarations — integers with
    optional ranges (the surveyed example restricts a claimed CPU
    utilisation to 0–100), strings, enumerations, and list parameters
    driving the standard's multiplicity extension: a node marked as
    replicated over a list parameter is copied once per element, with
    the subtree below it and the element bound inside each copy.

    {!instantiate} performs the type checking the surveyed papers
    advertise: a binding of ["Railway hazards"] to an integer-typed
    placeholder, an out-of-range utilisation, or a missing binding are
    all reported, and the output is guaranteed placeholder-free. *)

type param_type =
  | Pint of { min : int option; max : int option }
  | Pstring
  | Penum of string list
  | Plist of param_type  (** Multiplicity driver. *)

type param_decl = { pname : string; ptype : param_type }

type value =
  | Vint of int
  | Vstr of string
  | Venum of string
  | Vlist of value list

type binding = (string * value) list

type t = {
  name : string;
  description : string;
  params : param_decl list;
  structure : Argus_gsn.Structure.t;
      (** Node texts may contain [{param}]; node ids are the pattern's
          role names. *)
  replicate : (Argus_core.Id.t * string) list;
      (** Node id to list-parameter name: the node and its supported
          subtree are copied per element. *)
}

val make :
  name:string ->
  ?description:string ->
  params:param_decl list ->
  ?replicate:(string * string) list ->
  Argus_gsn.Structure.t ->
  t

val placeholders : string -> string list
(** [{x}] placeholder names appearing in a text, in order. *)

val check_pattern : t -> Argus_core.Diagnostic.t list
(** Pattern-definition lints, codes under ["pattern/"]:
    ["pattern/undeclared-placeholder"] — node text references a
    parameter that is not declared; ["pattern/unused-param"] (warning);
    ["pattern/replicate-not-list"] — replication driven by a non-list
    parameter; ["pattern/replicate-unknown-node"]. *)

val value_type_ok : param_type -> value -> bool

val instantiate :
  ?budget:Argus_rt.Budget.t ->
  t ->
  binding ->
  (Argus_gsn.Structure.t, Argus_core.Diagnostic.t list) result
(** Type-checks the binding and substitutes.  Error codes:
    ["instantiate/missing-param"], ["instantiate/unknown-param"],
    ["instantiate/type-mismatch"], ["instantiate/out-of-range"],
    ["instantiate/not-a-member"], ["instantiate/empty-list"].
    On success every placeholder is replaced and each replicated node's
    copies carry ids suffixed [_1], [_2], ...

    The budget (default unlimited) is ticked once per node expanded or
    substituted.  Exhaustion aborts the expansion and returns [Error]
    carrying the budget's own ["rt/budget-exhausted"] diagnostics — a
    half-expanded structure is never returned as [Ok].  The
    ["pattern.instantiate"] fault probe fires at entry
    (DESIGN.md §10). *)

val value_to_text : value -> string
(** How a value renders inside node text. *)
