(** Bit-parallel truth tables for formulas over at most {!max_vars}
    variables: the whole table lives in one native int (bit [r] = value
    under valuation [r], always 32 rows — unused variable slots
    duplicate rows, which mask comparisons cannot observe), connectives
    are word operations, and the decision procedures are mask
    comparisons.

    Exact — a truth table {e is} the propositional semantics — so
    answers agree with {!Sat} wherever both apply.  Intended as the
    small-formula fast path for the formal-fallacy detectors
    ({!Argus_fallacy.Formal}); budgeted queries stay on the DPLL path,
    which owns tick accounting.  [logic.mask_envs] counts environments
    built. *)

val max_vars : int
(** 5: 32 valuation rows, comfortably inside a native int. *)

type env
(** An interning of a variable set (≤ {!max_vars}) to truth-table
    columns.  Build once per argument, query many times. *)

val env : Prop.t list -> env option
(** [None] when the formulas mention more than {!max_vars} distinct
    variables (first-occurrence order, as {!Prop.vars}). *)

val mask : env -> Prop.t -> int
(** The formula's truth table.  @raise Invalid_argument on a variable
    the environment was not built over. *)

val satisfiable : env -> Prop.t -> bool
val valid : env -> Prop.t -> bool
val equivalent : env -> Prop.t -> Prop.t -> bool
val entails : env -> Prop.t list -> Prop.t -> bool
