(** CNF conversion and a DPLL satisfiability solver.

    This is the mechanical-verification back end: entailment and validity
    queries over {!Prop.t} power the formal-fallacy detectors
    (incompatible premises, premise/conclusion contradiction, begging the
    question up to equivalence) and Rushby-style what-if probing.

    The solver runs on int-encoded literals over variables interned per
    call, with an array assignment, an undo trail, and two-watched-literal
    unit propagation — no persistent maps or clause-list rebuilding on
    the search path.  {!Naive} retains the original persistent-map DPLL
    as a differential-testing oracle.

    Resource governance: the solving entry points take an optional
    [?budget] ({!Argus_rt.Budget.t}, default unlimited), ticked once
    per decision and once per propagated literal.  On exhaustion the
    search stops and the query answers as if unsatisfiable — callers
    that passed a budget must check {!Argus_rt.Budget.exhausted} and
    treat the answer as unknown when it is set.  Budgeted
    {!satisfiable} queries bypass the memo table so truncated answers
    are never cached.  The ["sat.decide"] fault probe fires at every
    decision (DESIGN.md §10). *)

type literal = { var : string; sign : bool }
type clause = literal list
type cnf = clause list

val cnf_of_prop : Prop.t -> cnf
(** Direct conversion via NNF and distribution.  Semantics-preserving but
    worst-case exponential; fine for the formula sizes arguments carry,
    and used as the test oracle for {!tseitin}. *)

val tseitin : Prop.t -> cnf
(** Equisatisfiable linear-size conversion.  Introduces fresh variables
    prefixed ["_ts"]; input formulas must not use that prefix. *)

val solve :
  ?budget:Argus_rt.Budget.t -> cnf -> (string * bool) list option
(** DPLL with two-watched-literal unit propagation and pure-literal
    preprocessing.  Returns a satisfying assignment covering every
    variable that occurs (sorted by name), or [None] when
    unsatisfiable (or when the budget ran out mid-search — check
    [Budget.exhausted]). *)

val satisfiable : ?budget:Argus_rt.Budget.t -> Prop.t -> bool
val valid : ?budget:Argus_rt.Budget.t -> Prop.t -> bool

val entails : ?budget:Argus_rt.Budget.t -> Prop.t list -> Prop.t -> bool
(** [entails premises conclusion]: every model of the premises satisfies
    the conclusion. *)

val equivalent : ?budget:Argus_rt.Budget.t -> Prop.t -> Prop.t -> bool

val models :
  ?budget:Argus_rt.Budget.t -> Prop.t -> (string * bool) list option
(** A model of the formula over exactly its own variables, or [None]. *)

type count =
  | Exact of int  (** every valuation was enumerated *)
  | At_least of int
      (** the budget cut the enumeration short; the true count is at
          least this *)

val count_models : ?budget:Argus_rt.Budget.t -> Prop.t -> count
(** Number of satisfying assignments over the formula's variables, by
    exhaustive enumeration.  Intended for formulas with at most ~20
    variables; used by tests and the confidence module.  The budget is
    ticked per valuation and its solution cap counts satisfying ones; a
    cut-off is reported as {!At_least}, never as an exact count. *)

module Naive : sig
  val solve : cnf -> (string * bool) list option
  (** The PR-1 persistent-map DPLL (unit propagation + pure-literal
      elimination, clause lists rebuilt per decision).  Equivalent to
      {!Sat.solve} on satisfiability; retained as the property-test
      oracle.  Does not touch the engine counters. *)
end
