(** CNF conversion and a DPLL satisfiability solver.

    This is the mechanical-verification back end: entailment and validity
    queries over {!Prop.t} power the formal-fallacy detectors
    (incompatible premises, premise/conclusion contradiction, begging the
    question up to equivalence) and Rushby-style what-if probing.

    The solver runs on int-encoded literals over variables interned per
    call, with an array assignment, an undo trail, and two-watched-literal
    unit propagation — no persistent maps or clause-list rebuilding on
    the search path.  {!Naive} retains the original persistent-map DPLL
    as a differential-testing oracle. *)

type literal = { var : string; sign : bool }
type clause = literal list
type cnf = clause list

val cnf_of_prop : Prop.t -> cnf
(** Direct conversion via NNF and distribution.  Semantics-preserving but
    worst-case exponential; fine for the formula sizes arguments carry,
    and used as the test oracle for {!tseitin}. *)

val tseitin : Prop.t -> cnf
(** Equisatisfiable linear-size conversion.  Introduces fresh variables
    prefixed ["_ts"]; input formulas must not use that prefix. *)

val solve : cnf -> (string * bool) list option
(** DPLL with two-watched-literal unit propagation and pure-literal
    preprocessing.  Returns a satisfying assignment covering every
    variable that occurs (sorted by name), or [None] when
    unsatisfiable. *)

val satisfiable : Prop.t -> bool
val valid : Prop.t -> bool
val entails : Prop.t list -> Prop.t -> bool
(** [entails premises conclusion]: every model of the premises satisfies
    the conclusion. *)

val equivalent : Prop.t -> Prop.t -> bool

val models : Prop.t -> (string * bool) list option
(** A model of the formula over exactly its own variables, or [None]. *)

val count_models : Prop.t -> int
(** Number of satisfying assignments over the formula's variables, by
    exhaustive enumeration.  Intended for formulas with at most ~20
    variables; used by tests and the confidence module. *)

module Naive : sig
  val solve : cnf -> (string * bool) list option
  (** The PR-1 persistent-map DPLL (unit propagation + pure-literal
      elimination, clause lists rebuilt per decision).  Equivalent to
      {!Sat.solve} on satisfiability; retained as the property-test
      oracle.  Does not touch the engine counters. *)
end
